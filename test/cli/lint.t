The escape-informed lint engine.

  $ alias nmlc=../../bin/nmlc.exe

A program with something to say: f's parameter is reusable but no cons
site is nil-guarded (LINT001), g's second parameter is only ever
forwarded (LINT004), and y is never used at all (LINT005).

  $ cat > noisy.nml <<'EOF'
  > letrec
  >   f l = cons (car l) nil;
  >   g n l = if n < 1 then 0 else g (n - 1) l;
  >   h x y = cons (car x) nil
  > in g 3 [4] + car (f [1, 2]) + car (h [5] [6])
  > EOF

  $ nmlc lint noisy.nml
  noisy.nml:2.9-2.25: warning[LINT001]: f misses in-place reuse of parameter l: its top spine is unshared and non-escaping (reuse budget 1) yet no cons site was rewritten to a destructive one — every site either precedes a later use of l or is not guarded by the emptiness test
  noisy.nml:3.11-3.43: warning[LINT004]: parameter l of g is a dead spine: it is spine-polymorphic and escapes nowhere (<0,0>) and g never traverses it — the whole structure is passed around for nothing
  noisy.nml:4.11-4.27: warning[LINT001]: h misses in-place reuse of parameter x: its top spine is unshared and non-escaping (reuse budget 1) yet no cons site was rewritten to a destructive one — every site either precedes a later use of x or is not guarded by the emptiness test
  noisy.nml:4.11-4.27: warning[LINT005]: binding y is never used
  noisy.nml:5.21-5.22: warning[LINT007]: a fresh 2-cell spine is passed to parameter 1 of f, but f only ever needs its head cell — every cell past the first is allocated for nothing
  
  lint: 5 finding(s), 0 suppressed
  [1]
  $ echo "exit: $?"
  exit: 0

JSON output is a single document:

  $ nmlc lint --format json noisy.nml
  {"schema": "nmlc/lint-v1", "findings": 5, "suppressed": 0, "diagnostics": [
    {"severity": "warning", "code": "LINT001", "loc": {"file": "noisy.nml", "start": {"line": 2, "col": 9}, "end": {"line": 2, "col": 25}}, "message": "f misses in-place reuse of parameter l: its top spine is unshared and non-escaping (reuse budget 1) yet no cons site was rewritten to a destructive one — every site either precedes a later use of l or is not guarded by the emptiness test", "notes": []},
    {"severity": "warning", "code": "LINT004", "loc": {"file": "noisy.nml", "start": {"line": 3, "col": 11}, "end": {"line": 3, "col": 43}}, "message": "parameter l of g is a dead spine: it is spine-polymorphic and escapes nowhere (<0,0>) and g never traverses it — the whole structure is passed around for nothing", "notes": []},
    {"severity": "warning", "code": "LINT001", "loc": {"file": "noisy.nml", "start": {"line": 4, "col": 11}, "end": {"line": 4, "col": 27}}, "message": "h misses in-place reuse of parameter x: its top spine is unshared and non-escaping (reuse budget 1) yet no cons site was rewritten to a destructive one — every site either precedes a later use of x or is not guarded by the emptiness test", "notes": []},
    {"severity": "warning", "code": "LINT005", "loc": {"file": "noisy.nml", "start": {"line": 4, "col": 11}, "end": {"line": 4, "col": 27}}, "message": "binding y is never used", "notes": []},
    {"severity": "warning", "code": "LINT007", "loc": {"file": "noisy.nml", "start": {"line": 5, "col": 21}, "end": {"line": 5, "col": 22}}, "message": "a fresh 2-cell spine is passed to parameter 1 of f, but f only ever needs its head cell — every cell past the first is allocated for nothing", "notes": []}
  ]}
  [1]
  $ echo "exit: $?"
  exit: 0

SARIF output carries the registry's rule metadata:

  $ nmlc lint --format sarif noisy.nml | head -12
  {"$schema": "https://json.schemastore.org/sarif-2.1.0.json", "version": "2.1.0", "runs": [
    {"tool": {"driver": {"name": "nmlc", "version": "1.0.0", "rules": [
      {"id": "LINT001", "shortDescription": {"text": "in-place reuse is licensed by the escape and sharing analyses but no destructive version was produced"}},
      {"id": "LINT002", "shortDescription": {"text": "the definition's result may share an argument spine at every call site, so no storage optimization can target it"}},
      {"id": "LINT003", "shortDescription": {"text": "Theorem-1 self-audit: s_i - k_i must agree across all monomorphic instances of a definition"}},
      {"id": "LINT004", "shortDescription": {"text": "a parameter spine with global escape <0,0> that the function never traverses"}},
      {"id": "LINT005", "shortDescription": {"text": "a binding that is never used"}},
      {"id": "LINT006", "shortDescription": {"text": "a conditional branch under a constant condition"}},
      {"id": "LINT007", "shortDescription": {"text": "a fresh multi-cell spine is passed to a parameter whose spine-liveness verdict is dead or head-only, so the callee never needs the cells"}},
      {"id": "LINT008", "shortDescription": {"text": "a destructive reuse candidate's consumed parameter is reported spine-shared by the sharing analysis: the in-place mutation would write through cells still reachable from the result"}}
    ]}}, "results": [
      {"ruleId": "LINT001", "level": "warning", "message": {"text": "f misses in-place reuse of parameter l: its top spine is unshared and non-escaping (reuse budget 1) yet no cons site was rewritten to a destructive one — every site either precedes a later use of l or is not guarded by the emptiness test"}, "locations": [
  $ echo "exit: $?"
  exit: 0

Rules can be disabled, restricted and re-levelled:

  $ nmlc lint --disable LINT001 --disable LINT004 --disable LINT005 noisy.nml
  noisy.nml:5.21-5.22: warning[LINT007]: a fresh 2-cell spine is passed to parameter 1 of f, but f only ever needs its head cell — every cell past the first is allocated for nothing
  
  lint: 1 finding(s), 0 suppressed
  [1]
  $ echo "exit: $?"
  exit: 0

  $ nmlc lint --only LINT005 noisy.nml
  noisy.nml:4.11-4.27: warning[LINT005]: binding y is never used
  
  lint: 1 finding(s), 0 suppressed
  [1]
  $ echo "exit: $?"
  exit: 0

  $ nmlc lint --only LINT005 --severity LINT005=error noisy.nml
  noisy.nml:4.11-4.27: error[LINT005]: binding y is never used
  
  lint: 1 finding(s), 0 suppressed
  [1]
  $ echo "exit: $?"
  exit: 0

  $ nmlc lint --only LINT999 noisy.nml
  error: --only: unknown rule LINT999 (known rules: LINT001, LINT002, LINT003, LINT004, LINT005, LINT006, LINT007, LINT008)
  [1]
  $ echo "exit: $?"
  exit: 0

Inline suppression comments silence a finding at its line (preceding or
trailing) without hiding the rest:

  $ cat > hushed.nml <<'EOF'
  > letrec
  >   (* nmlc-disable LINT001 *)
  >   f l = cons (car l) nil;
  >   g n l = if n < 1 then 0 else g (n - 1) l
  > in g 3 [4] + car (f [1, 2])
  > EOF

  $ nmlc lint hushed.nml
  hushed.nml:4.11-4.43: warning[LINT004]: parameter l of g is a dead spine: it is spine-polymorphic and escapes nowhere (<0,0>) and g never traverses it — the whole structure is passed around for nothing
  hushed.nml:5.21-5.22: warning[LINT007]: a fresh 2-cell spine is passed to parameter 1 of f, but f only ever needs its head cell — every cell past the first is allocated for nothing
  
  lint: 2 finding(s), 1 suppressed
  [1]
  $ echo "exit: $?"
  exit: 0

A clean program exits 0:

  $ nmlc lint -e 'letrec len l = if null l then 0 else 1 + len (cdr l) in len [1, 2]'
  lint: 0 finding(s), 0 suppressed
  $ echo "exit: $?"
  exit: 0

The Theorem-1 self-audit (LINT003) never fires on an honest solver; a
seeded corruption proves the audit is alive:

  $ nmlc lint -e 'letrec len l = if null l then 0 else 1 + len (cdr l) in len [1] + len [[1]]'
  lint: 0 finding(s), 0 suppressed
  $ echo "exit: $?"
  exit: 0

  $ nmlc lint --inject-fault invariance -e 'letrec len l = if null l then 0 else 1 + len (cdr l) in len [1] + len [[1]]'
  <command line>:1.16-1.52: error[LINT003]: Theorem 1 violated for parameter 1 of len: s_i - k_i differs across its monomorphic instances — the solver's summaries are inconsistent
    note: <command line>:1.16-1.52: instance len at int list list -> int: escapes=false, kept top spines 2
    note: <command line>:1.16-1.52: instance len_m2 at int list -> int: escapes=true, kept top spines 2
  
  lint: 1 finding(s), 0 suppressed
  [1]

  $ echo "exit: $?"
  exit: 0

Likewise the escape/sharing cross-check (LINT008) is silent while the
two analyses agree, and a seeded spine-sharing verdict proves it bites:

  $ nmlc lint --only LINT008 -e 'letrec append x y = if null x then y else cons (car x) (append (cdr x) y) in append [1] [2]'
  lint: 0 finding(s), 0 suppressed
  $ echo "exit: $?"
  exit: 0

  $ nmlc lint --only LINT008 --inject-fault sharing -e 'letrec append x y = if null x then y else cons (car x) (append (cdr x) y) in append [1] [2]'
  <command line>:1.21-1.73: error[LINT008]: destructive reuse of parameter x in append' mutates through a possibly shared spine: the sharing analysis reports S(append, 1) = spine-shared, so the recycled cells may still be reachable through the result — the escape and sharing analyses disagree about this parameter
  
  lint: 1 finding(s), 0 suppressed
  [1]

  $ echo "exit: $?"
  exit: 0

Batch linting shares the summary cache: the first run computes, the
second replays every record without a single fixpoint evaluation, and
the findings are byte-identical.

  $ mkdir corpus
  $ cp noisy.nml hushed.nml corpus/
  $ nmlc batch --lint corpus --jobs 2 --cache cache > cold.out
  [1]
  $ echo "exit: $?"
  exit: 0
  $ nmlc batch --lint corpus --jobs 2 --cache cache > warm.out
  [1]
  $ echo "exit: $?"
  exit: 0
  $ tail -1 cold.out
  lint: 2 file(s), 0 clean, 7 finding(s); 7 entry evaluation(s), 0 scc hit(s), 7 scc miss(es)
  $ tail -1 warm.out
  lint: 2 file(s), 0 clean, 7 finding(s); 0 entry evaluation(s), 7 scc hit(s), 0 scc miss(es)
  $ head -n -1 cold.out > cold.body && head -n -1 warm.out > warm.body
  $ cmp cold.body warm.body && echo "findings identical"
  findings identical
