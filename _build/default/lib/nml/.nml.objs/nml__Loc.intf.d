lib/nml/loc.mli: Format
