(** A storage simulator for [nml]: cons cells live in an addressed store
    with free-list allocation and mark-sweep collection, and the three
    optimizations of the paper are executable —

    - {e stack allocation} and {e block allocation/reclamation} via
      arenas ([Ir.WithArena]): cells allocated into an arena are ignored
      by the sweep and freed wholesale, without traversal, when the arena
      scope exits;
    - {e in-place reuse} via [Ir.Dcons], which overwrites an existing
      cell instead of allocating.

    The machine is deliberately simple — an environment interpreter with
    an explicit shadow stack for GC roots — because the paper's claims
    are about {e counts} (cells allocated, cells the collector must
    touch, reclamation without traversal), which {!Stats} captures
    exactly.

    Optionally ([~check_arenas:true]) the machine validates, at every
    arena exit, that no cell of the arena is reachable from the arena
    body's result or any live root — executing the safety obligation
    that the escape analysis discharges statically. *)

type t

type word =
  | Wint of int
  | Wbool of bool
  | Wnil
  | Wptr of int  (** address of a cons cell *)
  | Wpair of int  (** address of a pair cell (same store) *)
  | Wleaf
  | Wtree of int  (** address of a tree node (car=left, cdr=right + label) *)
  | Wclos of closure
  | Wprim of Nml.Ast.prim * word list
  | Wcons_at of Ir.alloc * word list  (** partially applied annotated cons *)
  | Wnode_at of Ir.alloc * word list  (** partially applied annotated node *)
  | Wdcons of word list  (** partially applied destructive cons *)
  | Wdnode of word list  (** partially applied destructive node *)

and closure

exception Error of string
exception Out_of_memory
exception Out_of_fuel

type chaos = {
  gc_period : int;
      (** [> 0]: force a collection at pseudo-random allocation points,
          on average one every [gc_period] allocations; [0] disables *)
  poison : bool;
      (** scribble over cells as they are freed (by the sweep or at arena
          exit) and fail any [car]/[cdr]/[fst]/[snd]/[label]/[left]/
          [right] read of a freed cell, so an unsound escape verdict
          becomes a deterministic crash instead of a silent wrong answer *)
  chaos_seed : int;
      (** seed of the machine's deterministic fault-injection PRNG; runs
          with equal seeds inject faults at identical points *)
}

val no_chaos : chaos
(** No forced collections, no poisoning: the machine of the seed. *)

val create :
  ?heap_size:int ->
  ?grow:bool ->
  ?check_arenas:bool ->
  ?fuel:int ->
  ?chaos:chaos ->
  ?config:Heap.config ->
  unit ->
  t
(** [heap_size] is the cell-store capacity (default 4096).  With
    [grow:false] the store never grows: exhausting it after a collection
    raises {!Out_of_memory} (default [grow:true], doubling).
    [check_arenas] enables the arena-safety validation (default false).
    [fuel] bounds evaluation steps.  [chaos] (default {!no_chaos})
    injects faults — forced collections and freed-cell poisoning — for
    the soundness harness ({!Check.Harness}).  [config] selects the
    storage policy (default {!Heap.legacy}, the seed machine;
    {!Heap.generational} adds the nursery, promotion, pretenuring and
    the pause-distribution counters). *)

val stats : t -> Stats.t

val config : t -> Heap.config
(** The storage configuration the machine was created with. *)

val live_cells : t -> int
(** Currently live (allocated, unfreed) cells. *)

val eval : t -> Ir.expr -> word
(** Evaluates a closed expression.
    @raise Error on dynamic type errors (cannot happen for well-typed
    programs), {!Out_of_memory}, {!Out_of_fuel}. *)

val run : t -> Nml.Surface.t -> word
(** Converts with {!Ir.of_program} and evaluates. *)

val read_value : t -> word -> Nml.Eval.value
(** Reads a first-order result out of the store as an interpreter value
    (for differential testing against {!Nml.Eval}).
    @raise Error on closures. *)

val cell_words : t -> int -> word * word * word
(** The [car], [cdr] and [lbl] words of the live cell at an address —
    the window the concrete-sharing oracle in the test harness uses to
    walk a result's cell graph and count actually-shared cells.
    @raise Error on a freed cell. *)

val collect : t -> unit
(** Forces a full garbage collection (normally triggered by allocation);
    under the generational policy this is a major collection, promoting
    every survivor. *)

val collect_minor : t -> unit
(** Forces a nursery collection under the generational policy (mark from
    the roots stopping at old cells, sweep only the nursery chain,
    promote survivors in place); a full collection under legacy. *)

val pp_word : t -> Format.formatter -> word -> unit
