(* A chaos client for the analysis daemon: a seeded storm of valid,
   malformed, oversized, mid-frame-disconnecting and boom-marked
   requests over real Unix-socket connections, collecting per-code
   response counts and — for every successful [analyze] of a file —
   the distinct result payloads seen per path.  The test harness feeds
   the latter to the three-way differential oracle: every distinct set
   must be a singleton, byte-identical to what [nmlc batch] prints for
   the same file, warm or cold.

   The storm itself asserts nothing beyond protocol sanity (ids echo
   verbatim, every frame is either answered or the connection drops at
   a known-lossy point); the caller owns the oracle. *)

module J = Nml.Json

type outcome = {
  sent : int;  (* frames (or deliberate partial frames) written *)
  results : int;  (* well-formed success responses *)
  errors : (string * int) list;  (* SRV code -> count, sorted *)
  reconnects : int;  (* connections dropped (by either side) *)
  anomalies : string list;  (* protocol violations: must stay empty *)
  outputs : (string, string list) Hashtbl.t;
      (* path -> distinct (code, output, errors) renderings seen *)
}

let connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_UNIX socket);
    fd
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

(* raw write for deliberately broken frames *)
let write_raw fd s =
  match Unix.write_substring fd s 0 (String.length s) with
  | _ -> true
  | exception Unix.Unix_error _ -> false

let analyze_payload ?(boom = false) ~id ~meth path =
  J.to_string
    (J.Obj
       [
         ("id", J.int id);
         ("method", J.Str meth);
         ( "params",
           J.Obj
             ([ ("path", J.Str path) ]
             @ if boom then [ ("boom", J.Bool true) ] else []) );
       ])

let storm ~socket ~files ~seed ~count =
  let rand = Random.State.make [| seed |] in
  let files = Array.of_list files in
  let pick_file () = files.(Random.State.int rand (Array.length files)) in
  let outputs = Hashtbl.create 16 in
  let errors = Hashtbl.create 8 in
  let anomalies = ref [] in
  let sent = ref 0 and results = ref 0 and reconnects = ref 0 in
  let conn = ref None in
  let drop_conn () =
    match !conn with
    | None -> ()
    | Some fd ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        conn := None;
        incr reconnects
  in
  let get_conn () =
    match !conn with
    | Some fd -> fd
    | None ->
        let fd = connect socket in
        conn := Some fd;
        fd
  in
  let record_error code =
    Hashtbl.replace errors code (1 + Option.value ~default:0 (Hashtbl.find_opt errors code))
  in
  let anomaly fmt = Printf.ksprintf (fun s -> anomalies := s :: !anomalies) fmt in
  (* Send one well-formed frame and classify the response.  [expect_drop]
     marks exchanges after which the server is allowed (or required) to
     close the connection. *)
  let roundtrip ?(expect_drop = false) ?check payload =
    incr sent;
    let fd = get_conn () in
    if not (Serve.Frame.write fd payload) then drop_conn ()
    else
      match Serve.Frame.read fd with
      | Error Serve.Frame.Closed -> if expect_drop then drop_conn () else (anomaly "connection closed without a response"; drop_conn ())
      | Error e ->
          anomaly "garbled response frame: %s" (Format.asprintf "%a" Serve.Frame.pp_error e);
          drop_conn ()
      | Ok resp -> (
          (match J.parse resp with
          | exception J.Parse_error msg -> anomaly "unparsable response: %s" msg
          | json -> (
              match J.member "error" json with
              | Some err -> (
                  match J.member "code" err with
                  | Some (J.Str c) -> record_error c
                  | _ -> anomaly "error response without a code")
              | None -> (
                  incr results;
                  match check with None -> () | Some f -> f json)));
          if expect_drop then drop_conn ())
  in
  let check_id id json =
    match J.member "id" json with
    | Some (J.Num n) when int_of_float n = id -> ()
    | _ -> anomaly "request %d: id not echoed verbatim" id
  in
  let record_output path json =
    match J.member "result" json with
    | Some r ->
        let s k = match J.member k r with Some (J.Str v) -> v | _ -> "" in
        let n k = match J.member k r with Some (J.Num v) -> int_of_float v | _ -> -1 in
        let rendering = Printf.sprintf "[%d]\n%s%s" (n "code") (s "output") (s "errors") in
        let seen = Option.value ~default:[] (Hashtbl.find_opt outputs path) in
        if not (List.mem rendering seen) then
          Hashtbl.replace outputs path (rendering :: seen)
    | None -> anomaly "success response without a result"
  in
  for i = 1 to count do
    match Random.State.int rand 100 with
    | r when r < 55 ->
        (* valid analyze of a real file: the differential's bread and butter *)
        let path = pick_file () in
        roundtrip
          ~check:(fun json ->
            check_id i json;
            record_output path json)
          (analyze_payload ~id:i ~meth:"analyze" path)
    | r when r < 65 ->
        roundtrip ~check:(check_id i)
          (analyze_payload ~id:i ~meth:(if r < 60 then "lint" else "vet") (pick_file ()))
    | r when r < 70 -> roundtrip ~check:(check_id i) (J.to_string (J.Obj [ ("id", J.int i); ("method", J.Str "status") ]))
    | r when r < 75 ->
        (* analyze of a path that does not exist: an in-band user error *)
        roundtrip ~check:(check_id i) (analyze_payload ~id:i ~meth:"analyze" "no-such-file.nml")
    | r when r < 80 ->
        (* well-framed garbage: SRV001, connection survives *)
        roundtrip "]]] this is not json {{{"
    | r when r < 84 ->
        (* well-formed JSON, invalid request: SRV002, connection survives *)
        roundtrip (J.to_string (J.Obj [ ("id", J.int i); ("method", J.Str "transmogrify") ]))
    | r when r < 88 ->
        (* corrupt length line: SRV001, then the server drops the line *)
        incr sent;
        let fd = get_conn () in
        if not (write_raw fd "not-a-length\n") then drop_conn ()
        else begin
          (match Serve.Frame.read fd with
          | Ok resp -> (
              match J.parse resp with
              | exception J.Parse_error _ -> anomaly "unparsable SRV001 response"
              | json -> (
                  match J.member "error" json with
                  | Some _ -> record_error "SRV001"
                  | None -> anomaly "bad length line answered with a result"))
          | Error _ -> ());
          drop_conn ()
        end
    | r when r < 92 ->
        (* oversized declaration (no payload ever sent): SRV003, then
           the server drops the line *)
        incr sent;
        let fd = get_conn () in
        if not (write_raw fd "99999999\n") then drop_conn ()
        else begin
          (match Serve.Frame.read fd with
          | Ok resp -> (
              match J.parse resp with
              | exception J.Parse_error _ -> anomaly "unparsable SRV003 response"
              | json -> (
                  match J.member "error" json with
                  | Some err
                    when J.member "code" err = Some (J.Str "SRV003") ->
                      record_error "SRV003"
                  | _ -> anomaly "oversized frame not answered with SRV003"))
          | Error _ -> ());
          drop_conn ()
        end
    | r when r < 96 ->
        (* mid-frame disconnect: declare 100 bytes, send 10, vanish *)
        incr sent;
        let fd = get_conn () in
        ignore (write_raw fd "100\n0123456789");
        drop_conn ()
    | _ ->
        (* boom marker: a crash when worker-crash/oom injection is armed,
           an ordinary analysis otherwise *)
        roundtrip (analyze_payload ~boom:true ~id:i ~meth:"analyze" (pick_file ()))
  done;
  drop_conn ();
  {
    sent = !sent;
    results = !results;
    errors =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) errors []);
    reconnects = !reconnects;
    anomalies = List.rev !anomalies;
    outputs;
  }
