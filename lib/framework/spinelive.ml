(* Spine-liveness analysis, in the spirit of Karkare–Sanyal–Khedker's
   heap reference analysis for functional programs: for every
   (definition, parameter) pair, which part of the argument's {e heap
   structure} does the callee ever need?

   Three flags per structural level: [dep] (the argument may be retained
   in the result — then everything reachable stays live), [head] (the
   first cell / its element is accessed: [car], [label], or a base-datum
   observation of a derived value) and [tail] (the spine is actually
   traversed past the head: [cdr], [null], [left], [right], [isleaf]).
   The verdicts:

   - [Dead]      — never touched, never returned: the whole argument is
                   garbage the moment the call begins;
   - [Head_only] — only the head cell is ever needed: every cell past
                   the first is dead on arrival (the Karkare-style
                   finding a collector can exploit by nulling the tail
                   reference, and LINT007 reports when the caller built
                   that spine fresh);
   - [Spine_live]— the spine is traversed but never retained: cells can
                   be reclaimed behind the traversal front;
   - [Live]      — may be retained in the result; nothing is reclaimable
                   without the escape analysis' finer spine counts.

   The generational heap reads [dead_spine_params] as pretenuring-style
   hints: arguments whose spine is dead need not be scavenged. *)

module Flags = struct
  let analysis_name = "spine-liveness"

  type t = { dep : bool; head : bool; tail : bool }

  let bot = { dep = false; head = false; tail = false }
  let top = { dep = true; head = true; tail = true }

  let join a b =
    { dep = a.dep || b.dep; head = a.head || b.head; tail = a.tail || b.tail }

  let equal a b = a.dep = b.dep && a.head = b.head && a.tail = b.tail

  let leq a b =
    ((not a.dep) || b.dep) && ((not a.head) || b.head) && ((not a.tail) || b.tail)

  let dep f = f.dep
  let mark_dep f = { f with dep = true }
  let detach f = { f with dep = false }

  (* observing a derived base datum is element-level evidence *)
  let observe f = { f with head = f.head || f.dep }

  (* extracting an element reads the head cell; if the element carries
     no spine structure of its own, retaining it does not retain any
     spine, so the dep bit is cleared — this is what separates
     [Head_only] (e.g. [fun l -> car l]) from [Live] *)
  let elem_view ~spined ~boxed:_ f =
    let f = { f with head = f.head || f.dep } in
    if spined then f else { f with dep = false }

  let force_tail f = { f with tail = f.tail || f.dep }
  let force_test f = { f with tail = f.tail || f.dep }

  (* projecting a pair component reads no list cell *)
  let force_proj f = f
end

module D = Flow.Make (Flags) ()
module Solver = Solver.Make (D)

type verdict = Dead | Head_only | Spine_live | Live

let verdict_name = function
  | Dead -> "dead"
  | Head_only -> "head-only"
  | Spine_live -> "spine-live"
  | Live -> "live"

let verdict_of_name = function
  | "dead" -> Some Dead
  | "head-only" -> Some Head_only
  | "spine-live" -> Some Spine_live
  | "live" -> Some Live
  | _ -> None

let verdict_doc = function
  | Dead -> "no cell of the argument is ever needed"
  | Head_only -> "only the head cell is needed; the rest of the spine is dead"
  | Spine_live -> "the spine is traversed but never retained"
  | Live -> "the argument may be retained in the result"

type arg_report = { a_index : int; a_verdict : verdict }

type def_report = {
  r_name : string;
  r_ty : string;  (* rendered simplest ground instance *)
  r_args : arg_report list;
}

let arg_verdict t name ~arg =
  let ty = Solver.instance_ty t name in
  let m = Nml.Ty.arity ty in
  if arg < 1 || arg > m then
    invalid_arg (Printf.sprintf "Spinelive.arg_verdict: %s has arity %d" name m);
  let v = Solver.value t name (Some ty) in
  Solver.with_state t @@ fun () ->
  let args =
    List.mapi
      (fun j aty -> if j = arg - 1 then D.probe aty else D.bottom aty)
      (Nml.Ty.arg_tys ty m)
  in
  let r = D.total (D.apply_all v args) in
  if r.Flags.dep then Live
  else if r.Flags.tail then Spine_live
  else if r.Flags.head then Head_only
  else Dead

let report t name =
  let ty = Solver.instance_ty t name in
  let m = Nml.Ty.arity ty in
  {
    r_name = name;
    r_ty = Nml.Ty.to_string ty;
    r_args =
      List.init m (fun i -> { a_index = i + 1; a_verdict = arg_verdict t name ~arg:(i + 1) });
  }

let pp_def_report ppf r =
  Format.fprintf ppf "@[<v 0>%s : %s" r.r_name r.r_ty;
  List.iter
    (fun a ->
      Format.fprintf ppf "@,  L(%s, %d) = %s  -- %s" r.r_name a.a_index
        (verdict_name a.a_verdict) (verdict_doc a.a_verdict))
    r.r_args;
  Format.fprintf ppf "@]"

(* Liveness hints for the heap layer and the lint engine: parameters
   whose spine past the head is provably dead inside the callee.
   Returns (definition, 1-based parameter indices) pairs; only
   list-typed parameters are reported (a dead int parameter is the dead
   param lint's business, not the collector's). *)
let dead_spine_params t =
  let prog = Solver.program t in
  List.filter_map
    (fun (name, _scheme) ->
      let ty = Solver.instance_ty t name in
      let m = Nml.Ty.arity ty in
      let is_list ty = match Nml.Ty.repr ty with Nml.Ty.List _ -> true | _ -> false in
      let idxs =
        Nml.Ty.arg_tys ty m
        |> List.mapi (fun i aty -> (i + 1, aty))
        |> List.filter_map (fun (i, aty) ->
               if is_list aty then
                 match arg_verdict t name ~arg:i with
                 | Dead | Head_only -> Some i
                 | Spine_live | Live -> None
               else None)
      in
      if idxs = [] then None else Some (name, idxs))
    prog.Nml.Infer.schemes
