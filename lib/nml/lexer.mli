(** Hand-written lexer for [nml].

    Supports nested [(* ... *)] comments and [--] line comments.  Every
    token is returned together with its source location.  Errors (stray
    characters, unterminated comments, integer overflow) raise {!Error}
    with a location and message. *)

exception Error of Loc.t * string

type spanned = { token : Token.t; loc : Loc.t }

val tokenize : ?file:string -> string -> spanned list
(** [tokenize ~file src] lexes all of [src]; the result always ends with a
    single [EOF] token.  @raise Error on malformed input. *)

val tokens : ?file:string -> string -> Token.t list
(** Like {!tokenize} but drops locations (convenient in tests). *)

val comments : ?file:string -> string -> (Loc.t * string) list
(** Every block comment of [src] in source order: the span of the whole
    [(* ... *)] and its body text (markers stripped; nested markers are
    kept verbatim).  The lint pass scans these for [nmlc-disable]
    suppression directives.  @raise Error on malformed input. *)
