(** Parallel batch analysis over a list of program files.

    Files are distributed over [jobs] domains (spawned with the stdlib
    [Domain.spawn]; [jobs <= 1] runs inline).  The default per-file job
    is exactly what [nmlc analyze] performs — optionally through the
    persistent summary cache — but the pool is analysis-agnostic: pass
    [~analyze] to distribute any job with the same {!result} shape (the
    lint engine rides it via [Lint.Batch]).  Each {!result} carries the
    rendered stdout/stderr text, so reporting is deterministic: results
    come back in input order regardless of completion order. *)

type result = {
  path : string;
  output : string;  (** what the corresponding subcommand prints on stdout *)
  errors : string;  (** ... and on stderr *)
  code : int;
      (** 0 clean, 1 diagnostics/user error, 124 internal,
          130 interrupted before analysis (a [~stop] drain) *)
  defs : int;
  findings : int;  (** lint findings ([0] in analyze mode) *)
  evaluations : int;  (** fixpoint entry evaluations ([0] = fully warm) *)
  scc_hits : int;
  scc_misses : int;
}

exception Injected_crash of string
(** Raised by the [NMLC_TEST_CRASH_FILE] hook {e outside} {!protect},
    so the pool-level guard (not the per-file one) must contain it. *)

val protect : string -> (unit -> result) -> result
(** Runs a per-file job under the driver's exception regime: toolchain
    errors become a rendered diagnostic with code [1], anything unknown
    becomes code [124] — one bad file never takes down the pool.
    Analysis callbacks passed to {!run} should wrap themselves in it
    (and {!run} additionally guards every callback, so even a job that
    raises through its own protection only costs its own slot). *)

val analyze_file : ?store:Store.t -> string -> result
(** One file, inline (the sequential baseline the differential tests
    compare the pool against). *)

val analyze_source : ?store:Store.t -> path:string -> string -> result
(** The same job on in-memory source text ([path] only labels
    diagnostics) — what [nmlc serve] runs for requests that carry a
    ["source"] instead of a ["path"]. *)

val run :
  ?analyze:(store:Store.t option -> string -> result) ->
  ?store:Store.t ->
  ?stop:(unit -> bool) ->
  jobs:int ->
  string list ->
  result list
(** Results in input order.  [stop] is polled between files; once it
    returns [true] the pool drains — in-flight files finish normally,
    unstarted files come back with code [130] and empty output. *)

val exit_code : result list -> int
(** The batch exit code under the driver's regime: [124] if any file hit
    an internal error, else [130] if the run was interrupted, else [1]
    if any file produced findings or errors, else [0]. *)
