(* Sharing/alias analysis, in the spirit of Hill & Spoto's
   abstract-interpretation derivation of sharing domains: for every
   (definition, parameter) pair, may the definition's {e result} share
   heap cells with that argument — and if so, can the shared cells sit
   on the result's spine (where a destructive [DCONS]/[DNODE] would
   overwrite them) or only inside its elements?

   The abstract heap is a set of sharing pairs.  Interprocedurally it is
   the variable⇄result pairs (one verdict per parameter, plus the
   derived parameter⇄parameter may-alias pairs: two arguments both
   retained in the result may alias each other through it), solved by
   {!Solver.Make} over the {!Flow} scaffolding exactly like the usage
   and spine-liveness Specs.  Intraprocedurally ({!Local}) it is a
   flow-sensitive variable⇄variable map carried per program point
   through lets, branches and constructions — the judgment
   [Optimize.Reuse] consults to license in-place reuse at let-bound
   intermediate spines and branch-local conses where Theorem 2's
   [d_f - max_i esc_i] bound proves nothing.

   Two flags per value: [dep] (the value may reach cells of the probed
   argument at all) and [sp] (some of those cells may sit in
   spine/constructor position of the value — the cells an in-place
   reuse would destroy).  The verdicts:

   - [Unshared]     — the result shares no cell with the argument: a
                      caller passing anything may treat the result as
                      entirely fresh as far as this argument goes;
   - [Shared_elem]  — cells may be shared, but never on the result's
                      spine (element-only sharing);
   - [Shared_spine] — the argument's cells may appear on the result's
                      spine: reusing the result in place is licensed
                      only when the argument itself was fresh. *)

module A = Nml.Ast
module Ty = Nml.Ty

module Flags = struct
  let analysis_name = "sharing"

  type t = { dep : bool; sp : bool }

  let bot = { dep = false; sp = false }
  let top = { dep = true; sp = true }
  let join a b = { dep = a.dep || b.dep; sp = a.sp || b.sp }
  let equal a b = a.dep = b.dep && a.sp = b.sp
  let leq a b = ((not a.dep) || b.dep) && ((not a.sp) || b.sp)

  let dep f = f.dep

  (* the probed argument's own cells are, trivially, spine cells *)
  let mark_dep _ = top

  (* consumed as a base datum (condition, comparison, arithmetic): no
     cell of the operand flows into the new value *)
  let detach _ = bot

  let observe f = f

  (* extracting an element: a base ([int]/[bool]) element carries no
     cells at all; a boxed element — a nested list, a tree, a pair, a
     closure — still consists of the argument's cells, and the
     constructor cell at its own top is one of them, so both bits
     survive.  ([spined] is the spine-liveness analysis' refinement; for
     sharing, a pair element is retention just like a list element.) *)
  let elem_view ~spined:_ ~boxed f = if boxed then f else bot

  let force_tail f = f
  let force_test f = f
  let force_proj f = f
end

module D = Flow.Make (Flags) ()
module Solver = Solver.Make (D)

type verdict = Unshared | Shared_elem | Shared_spine

let verdict_name = function
  | Unshared -> "unshared"
  | Shared_elem -> "element-shared"
  | Shared_spine -> "spine-shared"

let verdict_of_name = function
  | "unshared" -> Some Unshared
  | "element-shared" -> Some Shared_elem
  | "spine-shared" -> Some Shared_spine
  | _ -> None

let verdict_doc = function
  | Unshared -> "the result shares no cells with this argument"
  | Shared_elem -> "shared cells stay out of the result's spine"
  | Shared_spine -> "the result's spine may contain this argument's cells"

type arg_report = { a_index : int; a_verdict : verdict }

type def_report = {
  r_name : string;
  r_ty : string;  (* rendered simplest ground instance *)
  r_args : arg_report list;
  r_pairs : (int * int) list;
      (* argument pairs that may alias each other through the result *)
}

(* The verdict is instance-indexed like every summary in this framework:
   [S(head, 1)] at [int list -> int] is [Unshared] (an [int] element
   owns no cells), at [int list list -> int list] it is [Shared_spine]
   (the element {e is} the argument's structure).  [?inst] selects the
   ground instance to judge; the default is the simplest one, matching
   {!Solver.instance_ty} and the other analyses' reports. *)
let arg_verdict t ?inst name ~arg =
  let ty =
    match inst with Some ty -> ty | None -> Solver.instance_ty t name
  in
  let m = Ty.arity ty in
  if arg < 1 || arg > m then
    invalid_arg (Printf.sprintf "Alias.arg_verdict: %s has arity %d" name m);
  let arg_tys = Ty.arg_tys ty m in
  match Ty.repr (List.nth arg_tys (arg - 1)) with
  | Ty.Int | Ty.Bool ->
      (* a base-typed argument owns no heap cells, so nothing of it can
         be shared into the result — and probing it would smear its
         bits over values merely computed {e from} it *)
      Unshared
  | _ ->
      let v = Solver.value t name (Some ty) in
      Solver.with_state t @@ fun () ->
      let args =
        List.mapi
          (fun j aty -> if j = arg - 1 then D.probe aty else D.bottom aty)
          arg_tys
      in
      let r = D.total (D.apply_all v args) in
      if r.Flags.sp then Shared_spine
      else if r.Flags.dep then Shared_elem
      else Unshared

(* two arguments both retained in the result may reach each other's
   cells through it — the variable⇄variable side of the summary *)
let may_alias_pairs verdicts =
  let retained =
    List.filteri (fun _ (_, v) -> v <> Unshared) verdicts |> List.map fst
  in
  let rec pairs = function
    | [] -> []
    | i :: rest -> List.map (fun j -> (i, j)) rest @ pairs rest
  in
  pairs retained

let report t name =
  let ty = Solver.instance_ty t name in
  let m = Ty.arity ty in
  let verdicts =
    List.init m (fun i -> (i + 1, arg_verdict t name ~arg:(i + 1)))
  in
  {
    r_name = name;
    r_ty = Ty.to_string ty;
    r_args = List.map (fun (i, v) -> { a_index = i; a_verdict = v }) verdicts;
    r_pairs = may_alias_pairs verdicts;
  }

let pp_def_report ppf r =
  Format.fprintf ppf "@[<v 0>%s : %s" r.r_name r.r_ty;
  List.iter
    (fun a ->
      Format.fprintf ppf "@,  S(%s, %d) = %s  -- %s" r.r_name a.a_index
        (verdict_name a.a_verdict) (verdict_doc a.a_verdict))
    r.r_args;
  if r.r_pairs <> [] then
    Format.fprintf ppf "@,  may-alias:%a"
      (fun ppf ps ->
        List.iter (fun (i, j) -> Format.fprintf ppf " {%d,%d}" i j) ps)
      r.r_pairs;
  Format.fprintf ppf "@]"

(* ---- the flow-sensitive local judgment -------------------------------------

   [Local.depth] answers, at one program point of the surface program:
   how many top spine levels of this expression's value are certainly
   fresh and unshared?  It is the alias-side replacement for the purely
   syntactic Theorem-2 recursion: branches of an [if] are joined
   (branch-local conses), a [cons]/[node] cell just built is fresh at
   its own level, and a let-bound variable carries its right-hand
   side's freshness through the abstract heap (let-bound intermediate
   spines) — provided its occurrences project pairwise disjoint
   substructures, so no occurrence can destroy cells another reads.

   Definition calls go through the [resolve] callback, which is where
   the client combines this analysis' interprocedural verdicts with the
   escape-derived Theorem-2 bound (see {!Optimize.Reuse}). *)

module Local = struct
  (* saturating "infinite" freshness, safe under [1 + _] *)
  let inf = max_int / 2
  let succ_sat d = if d >= inf then inf else d + 1
  let pred_sat d = if d >= inf then inf else max 0 (d - 1)

  type env = (string * int) list

  let empty : env = []
  let bind env x d = (x, d) :: List.remove_assoc x env
  let unbind env x = List.remove_assoc x env

  let head_and_args e =
    let rec go acc = function A.App (_, f, a) -> go (a :: acc) f | h -> (h, acc) in
    go [] e

  (* occurrence paths of [x] in [e]: the chain of projections immediately
     wrapping each free occurrence, innermost first; two occurrences
     denote disjoint substructures iff neither path prefixes the other *)
  let occurrence_paths x e =
    let paths = ref [] in
    let rec go ctx e =
      match e with
      | A.Var (_, v) -> if String.equal v x then paths := ctx :: !paths
      | A.App (_, A.Prim (_, ((A.Car | A.Cdr | A.Label | A.Left | A.Right) as p)), e')
        ->
          go (p :: ctx) e'
      | A.App (_, f, a) ->
          go [] f;
          go [] a
      | A.Lam (_, p, b) -> if not (String.equal p x) then go [] b
      | A.If (_, c, t, f) ->
          go [] c;
          go [] t;
          go [] f
      | A.Letrec (_, bs, body) ->
          if not (List.exists (fun (p, _) -> String.equal p x) bs) then begin
            List.iter (fun (_, b) -> go [] b) bs;
            go [] body
          end
      | A.Const _ | A.Prim _ -> ()
    in
    go [] e;
    !paths

  let rec is_prefix p q =
    match (p, q) with
    | [], _ -> true
    | _, [] -> false
    | a :: p', b :: q' -> a = b && is_prefix p' q'

  let pairwise_disjoint paths =
    let rec check = function
      | [] -> true
      | p :: rest ->
          List.for_all (fun q -> (not (is_prefix p q)) && not (is_prefix q p)) rest
          && check rest
    in
    check paths

  let depth ~resolve env e =
    let rec go env e =
      match e with
      | A.Const (_, (A.Cnil | A.Cleaf)) -> inf (* no cells to share *)
      | A.Const _ -> 0
      | A.Var (_, v) -> ( match List.assoc_opt v env with Some d -> d | None -> 0)
      | A.Lam _ -> 0
      | A.If (_, _, t, f) -> min (go env t) (go env f)
      | A.Letrec (_, bs, body) ->
          go (List.fold_left (fun acc (x, _) -> unbind acc x) env bs) body
      | A.App (_, A.Lam (_, x, b), rhs) ->
          (* let sugar: the variable inherits its right-hand side's
             freshness through the abstract heap *)
          let d =
            if pairwise_disjoint (occurrence_paths x b) then go env rhs else 0
          in
          go (bind env x d) b
      | A.App (_, A.App (_, A.Prim (_, A.Cons), h), t) ->
          (* the cons cell itself is fresh; deeper levels are as fresh as
             the head, the tail extends the same spine *)
          min (go env t) (succ_sat (go env h))
      | A.App (_, A.App (_, A.App (_, A.Prim (_, A.Node), l), x), r) ->
          min (min (go env l) (go env r)) (succ_sat (go env x))
      | A.App (_, A.Prim (_, (A.Car | A.Label)), e') -> pred_sat (go env e')
      | A.App (_, A.Prim (_, (A.Cdr | A.Left | A.Right)), e') -> go env e'
      | A.App _ -> (
          match head_and_args e with
          | A.Var (_, h), (_ :: _ as args) -> (
              match resolve h with
              | Some unshared_given -> (
                  match unshared_given (List.map (go env) args) with
                  | d -> d
                  | exception (Invalid_argument _ | Not_found | Failure _) -> 0)
              | None -> 0)
          | _ -> 0)
      | A.Prim _ -> 0
    in
    go env e

  (* The interprocedural side of a call's freshness: if every argument
     is either never shared into the result or itself entirely fresh,
     every cell of the result is fresh or unshared — the result is
     unshared to its full spine count.  This is the clause that needs
     the sharing verdicts; the per-level Theorem-2 arithmetic is the
     escape analysis' business and the client takes the max of both. *)
  let call_unshared ~verdicts ~arg_spines ~result_spines ~args_fresh =
    (* [d = 0] means the argument's type has no list spines — for a
       base type that is harmless, but an arrow-typed argument also has
       spine count 0 while its closure may smuggle caller cells into
       the result, so a shared verdict there must block the rule *)
    if
      List.for_all2
        (fun (v, d) u -> v = Unshared || (d > 0 && u >= d))
        (List.combine verdicts arg_spines)
        args_fresh
    then result_spines
    else 0
end
