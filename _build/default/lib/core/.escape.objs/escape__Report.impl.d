lib/core/report.ml: Analysis Besc Dvalue Fixpoint Format List Nml Printf Semantics Sharing String
