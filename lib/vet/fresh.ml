module A = Nml.Ast
module Ir = Runtime.Ir
module Fix = Escape.Fixpoint
module Sh = Escape.Sharing
module Ty = Nml.Ty

(* saturating "infinite" freshness, safe under [1 + _] *)
let inf = max_int / 2
let succ_sat d = if d >= inf then inf else d + 1
let pred_sat d = if d >= inf then inf else max 0 (d - 1)

let head_and_args e =
  let rec go acc = function Ir.App (f, a) -> go (a :: acc) f | h -> (h, acc) in
  go [] e

let depth ?share t ~defs env e =
  let rec go env e =
    match e with
    | Ir.Const (A.Cnil | A.Cleaf) -> inf
    | Ir.Const _ -> 0
    | Ir.Var v -> ( match List.assoc_opt v env with Some d -> d | None -> 0)
    | Ir.If (_, th, el) -> min (go env th) (go env el)
    | Ir.WithArena (_, _, b) -> go env b
    | _ -> (
        match head_and_args e with
        (* a cons cell just built is fresh at level 1; deeper levels are
           as fresh as the head, the tail extends the same spine *)
        | (Ir.Prim A.Cons | Ir.ConsAt _), [ h; tl ] ->
            min (go env tl) (succ_sat (go env h))
        | Ir.Dcons, [ _src; h; tl ] -> min (go env tl) (succ_sat (go env h))
        | (Ir.Prim A.Node | Ir.NodeAt _), [ l; x; r ] ->
            min (min (go env l) (go env r)) (succ_sat (go env x))
        | Ir.Dnode, [ _src; l; x; r ] ->
            min (min (go env l) (go env r)) (succ_sat (go env x))
        | Ir.Prim (A.Car | A.Label), [ e' ] -> pred_sat (go env e')
        | Ir.Prim (A.Cdr | A.Left | A.Right), [ e' ] -> go env e'
        | Ir.Var h, (_ :: _ as args) -> (
            let g = Erase.base ~defs h in
            if not (List.mem g defs) then 0
            else
              match
                let inst = Fix.instance_ty t g in
                let m = List.length args in
                if Ty.arity inst <> m then 0
                else
                  let u = List.map (go env) args in
                  let t2 =
                    (Sh.result_unshared_given t g ~args_unshared:u).Sh.unshared_top
                  in
                  (* the verifier's own interprocedural sharing
                     summaries re-derive the alias-licensed clause the
                     per-level Theorem-2 arithmetic cannot: both are
                     lower bounds, so take the max *)
                  match share with
                  | None -> t2
                  | Some s ->
                      max t2
                        (Share.call_unshared s ~def:g
                           ~arg_spines:(List.map Ty.spines (Ty.arg_tys inst m))
                           ~result_spines:(Ty.spines (Ty.result_ty inst m))
                           ~args_fresh:u)
              with
              | d -> d
              | exception (Nml.Infer.Error _ | Invalid_argument _ | Not_found | Failure _)
                -> 0)
        | _ -> 0)
  in
  go env e
