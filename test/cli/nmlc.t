The nmlc driver, exercised on the shipped sample programs.

  $ alias nmlc=../../bin/nmlc.exe

Parsing and evaluation:

  $ nmlc eval ../../examples/programs/partition_sort.nml
  [1, 2, 3, 4, 5, 7]

  $ nmlc eval ../../examples/programs/zip_assoc.nml
  [20]

  $ nmlc typecheck ../../examples/programs/reverse.nml
  append : 'a list -> 'a list -> 'a list
  rev : 'a list -> 'a list
  main : int list

Analysis (the appendix's results):

  $ nmlc analyze ../../examples/programs/partition_sort.nml --local
  append : int list -> int list -> int list
    G(append, 1) = <1,0>  -- no spine of argument 1 escapes, only elements may
    G(append, 2) = <1,1>  -- top 0 of 1 spine(s) never escape; bottom 1 may escape
    sharing: top 0 of the result's 1 spine(s) are unshared in any call
  
  split : int -> int list -> int list -> int list -> int list list
    G(split, 1) = <0,0>  -- no part of argument 1 ever escapes
    G(split, 2) = <1,0>  -- no spine of argument 2 escapes, only elements may
    G(split, 3) = <1,1>  -- top 0 of 1 spine(s) never escape; bottom 1 may escape
    G(split, 4) = <1,1>  -- top 0 of 1 spine(s) never escape; bottom 1 may escape
    sharing: top 1 of the result's 2 spine(s) are unshared in any call
  
  ps : int list -> int list
    G(ps, 1) = <1,0>  -- no spine of argument 1 escapes, only elements may
    sharing: top 1 of the result's 1 spine(s) are unshared in any call
  
  
  call: ps on 1 argument(s)
    L(ps, 1) = <1,0>  -- top 1 of 1 spine(s) stay inside this call
  

Optimization and execution:

  $ nmlc run ../../examples/programs/reverse.nml --compare --heap 64
  baseline result: [8, 7, 6, 5, 4, 3, 2, 1]
  heap_allocs   44
  arena_allocs  0
  dcons_reuses  0
  gc_runs       0
  marked        0
  swept         0
  arena_freed   0
  heap_capacity 64
  peak_live     44
  
  optimized result: [8, 7, 6, 5, 4, 3, 2, 1]
  heap_allocs   8
  arena_allocs  0
  dcons_reuses  36
  gc_runs       0
  marked        0
  swept         0
  arena_freed   0
  heap_capacity 64
  peak_live     8
  

Monomorphization:

  $ nmlc mono -e 'letrec length l = if null l then 0 else 1 + length (cdr l) in length [1] + length [[2]]'
  letrec
    length l = if null l then 0 else 1 + length (cdr l);
    length_m2 l = if null l then 0 else 1 + length_m2 (cdr l)
  in length_m2 [1] + length [[2]]
  
  -- length specialized as length at int list list -> int
  -- length specialized as length_m2 at int list -> int

Errors are reported with positions:

  $ nmlc eval -e 'car nil'
  runtime error: car of nil
  [1]

  $ nmlc typecheck -e '1 + [2]'
  <command line>:1.1-1.6: error[TYPE001]: type mismatch: this expression has type int list but was expected of type int
  
  [1]


A little RPN calculator over instruction pairs:

  $ nmlc eval ../../examples/programs/calculator.nml
  35

  $ nmlc analyze ../../examples/programs/calculator.nml --fun exec
  exec : int list -> (int * int) list -> int list
    G(exec, 1) = <1,1>  -- top 0 of 1 spine(s) never escape; bottom 1 may escape
    G(exec, 2) = <1,0>  -- no spine of argument 2 escapes, only elements may
      component .fst = <0,0>  (never escapes)
      component .snd = <1,0>
    sharing: top 0 of the result's 1 spine(s) are unshared in any call
  

Trees:

  $ nmlc eval ../../examples/programs/bst.nml
  8

  $ nmlc analyze ../../examples/programs/bst.nml --fun tinsert
  tinsert : int -> int tree -> int tree
    G(tinsert, 1) = <1,0>  -- argument 1 (not a list) may escape
    G(tinsert, 2) = <1,1>  -- top 0 of 1 spine(s) never escape; bottom 1 may escape
    sharing: top 0 of the result's 1 spine(s) are unshared in any call
  

  $ nmlc analyze ../../examples/programs/bst.nml --fun mirror
  mirror : int tree -> int tree
    G(mirror, 1) = <1,0>  -- no spine of argument 1 escapes, only elements may
    sharing: top 1 of the result's 1 spine(s) are unshared in any call
  


Resource limits map to distinct exit codes (2 = heap, 3 = fuel):

  $ nmlc run -e 'letrec f l = f (cons 1 l) in f nil' --heap 8 --no-grow
  error: out of memory: the cell store is exhausted even after a collection (raise --heap, or drop --no-grow)
  [2]

  $ nmlc eval -e 'letrec f x = f x in f 0' --fuel 100
  error: out of fuel: the step budget is exhausted (raise --fuel)
  [3]

  $ nmlc run -e 'letrec f x = f x in f 0' --fuel 100
  error: out of fuel: the step budget is exhausted (raise --fuel)
  [3]

The differential soundness harness:

  $ nmlc check --count 10 --seed 42
  corpus: 16 checked, 16 ok, 0 skipped
  random: 10 checked, 10 ok, 0 skipped
  soundness: OK (differential oracle)

  $ nmlc check --count 5 --seed 42 --chaos
  corpus: 16 checked, 16 ok, 0 skipped
  random: 5 checked, 5 ok, 0 skipped
  soundness: OK (differential oracle, chaos on)

A deliberately broken optimizer verdict is caught, minimized, and turned
into a nonzero exit:

  $ nmlc check --count 5 --seed 7 --chaos --inject-fault arena > /dev/null 2>&1
  [1]

  $ nmlc check --count 5 --seed 7 --chaos --inject-fault dcons > /dev/null 2>&1
  [1]

Solver statistics and engine selection (the worklist engine is the
default; the legacy round-robin engine re-evaluates every entry each
pass and clears the application memo wholesale, visible in the counts):

  $ nmlc analyze ../../examples/programs/partition_sort.nml --fun ps --stats
  ps : int list -> int list
    G(ps, 1) = <1,0>  -- no spine of argument 1 escapes, only elements may
    sharing: top 1 of the result's 1 spine(s) are unshared in any call
  
  -- solver --
  engine              worklist
  passes              1
  entries             3
  entry evaluations   6
  iterations          6
  sccs                3 (largest 1)
  application cache   4368 hits, 41000 misses, 22 invalidated
  chain bound d       2
  capped              false
  -- storage (generational heap) --
  heap_allocs        28
  arena_allocs       0
  dcons_reuses       14
  gc_runs            0
  marked             0
  swept              0
  arena_freed        0
  heap_capacity      4096
  peak_live          28
  minor_gcs          0
  major_gcs          0
  promoted           0
  pretenured         0
  remembered         0
  regions_reclaimed  0

  $ nmlc analyze ../../examples/programs/partition_sort.nml --fun ps --stats --engine round-robin
  ps : int list -> int list
    G(ps, 1) = <1,0>  -- no spine of argument 1 escapes, only elements may
    sharing: top 1 of the result's 1 spine(s) are unshared in any call
  
  -- solver --
  engine              round-robin
  passes              4
  entries             3
  entry evaluations   10
  iterations          10
  sccs                0 (largest 0)
  application cache   8609 hits, 82325 misses, 0 invalidated
  chain bound d       2
  capped              false
  -- storage (generational heap) --
  heap_allocs        28
  arena_allocs       0
  dcons_reuses       14
  gc_runs            0
  marked             0
  swept              0
  arena_freed        0
  heap_capacity      4096
  peak_live          28
  minor_gcs          0
  major_gcs          0
  promoted           0
  pretenured         0
  remembered         0
  regions_reclaimed  0

The annotation verifier re-derives every proof obligation behind the
optimizer's destructive and arena annotations, independently of the
optimizer's own bookkeeping.  Clean programs audit clean:

  $ nmlc vet ../../examples/programs/reverse.nml
  vet: 6 annotation(s) audited, 0 finding(s)

  $ nmlc vet ../../examples/programs/partition_sort.nml --format json
  {"schema": "nmlc/vet-v1", "audited": 10, "findings": 0, "diagnostics": []}

A sabotaged transformation is rejected with a located, coded finding
(exit 1):

  $ nmlc vet ../../examples/programs/reverse.nml --inject-fault arena
  ../../examples/programs/reverse.nml:5.4-5.9: error[VET002]: arena 997 in the main expression does not delimit a saturated call of a known definition
  
  vet: 1 annotation(s) audited, 1 finding(s)
  [1]

  $ nmlc vet ../../examples/programs/reverse.nml --inject-fault dcons --format json
  {"schema": "nmlc/vet-v1", "audited": 0, "findings": 1, "diagnostics": [
    {"severity": "error", "code": "VET010", "loc": {"file": "../../examples/programs/reverse.nml", "start": {"line": 3, "col": 16}, "end": {"line": 3, "col": 68}}, "message": "dcons source in append is not an unshadowed leading parameter", "notes": []}
  ]}
  [1]

Seeded mutation testing: every unsound edit of the annotated program
must be detected, and a clean campaign exits 0:

  $ nmlc vet ../../examples/programs/reverse.nml --mutate 40
  vet: 3 mutation point(s), 40 draw(s), 40 detected, 0 survived

  $ nmlc vet ../../examples/programs/partition_sort.nml --mutate 60 --seed 5
  vet: 13 mutation point(s), 60 draw(s), 60 detected, 0 survived

Solver statistics as JSON (the same emitter as the benchmark
trajectory):

  $ nmlc analyze ../../examples/programs/reverse.nml --json
  {"schema": "nmlc/solver-stats-v1", "engine": "worklist", "passes": 2, "iterations": 4, "entries": 2, "evaluations": 4, "sccs": 2, "largest_scc": 1, "cache_hits": 90, "cache_misses": 306, "cache_invalidated": 6, "d_bound": 1, "capped": false, "heap": {"heap_allocs": 8, "arena_allocs": 0, "dcons_reuses": 36, "gc_runs": 0, "marked": 0, "swept": 0, "arena_freed": 0, "heap_capacity": 4096, "peak_live": 8, "minor_gcs": 0, "major_gcs": 0, "promoted": 0, "pretenured": 0, "remembered": 0, "regions_reclaimed": 0}}

Internal errors are distinguished from user errors by exit code 124
(the hook below forces one):

  $ NMLC_INTERNAL_ERROR=1 nmlc vet ../../examples/programs/reverse.nml
  nmlc: internal error: forced by NMLC_INTERNAL_ERROR
  [124]
