module Ty = Nml.Ty

type info = {
  func : string;
  result_spines : int;
  arg_spines : int list;
  arg_escapes : int list;
  unshared_top : int;
}

let base_info ?inst t fname =
  let inst = match inst with Some ty -> ty | None -> Fixpoint.instance_ty t fname in
  let verdicts = Analysis.global_all ~inst t fname in
  let arity = List.length verdicts in
  let result_spines = Ty.spines (Ty.result_ty inst arity) in
  let arg_spines = List.map (fun v -> v.Analysis.spines) verdicts in
  let arg_escapes = List.map Analysis.escaping_spines verdicts in
  (inst, { func = fname; result_spines; arg_spines; arg_escapes; unshared_top = 0 })

let result_unshared ?inst t fname =
  let _, info = base_info ?inst t fname in
  let worst = List.fold_left max 0 info.arg_escapes in
  { info with unshared_top = max 0 (info.result_spines - worst) }

let result_unshared_given ?inst t fname ~args_unshared =
  let _, info = base_info ?inst t fname in
  if List.length args_unshared <> List.length info.arg_spines then
    invalid_arg "Sharing.result_unshared_given: one unshared count per parameter expected";
  let shared_escaping =
    List.map2
      (fun (esc, d) u -> min esc (max 0 (d - u)))
      (List.combine info.arg_escapes info.arg_spines)
      args_unshared
  in
  let worst = List.fold_left max 0 shared_escaping in
  { info with unshared_top = max 0 (info.result_spines - worst) }

let call_fresh_depth t fname ~args_unshared =
  match
    let inst = Fixpoint.instance_ty t fname in
    if Ty.arity inst <> List.length args_unshared then 0
    else (result_unshared_given t fname ~args_unshared).unshared_top
  with
  | d -> d
  | exception (Nml.Infer.Error _ | Invalid_argument _ | Not_found) -> 0

let argument_unshared_after ?inst t fname ~arg ~args_unshared =
  let _, info = base_info ?inst t fname in
  if arg < 1 || arg > List.length info.arg_spines then
    invalid_arg "Sharing.argument_unshared_after: argument position out of range";
  let d_i = List.nth info.arg_spines (arg - 1) in
  let esc_i = List.nth info.arg_escapes (arg - 1) in
  let u_i = List.nth args_unshared (arg - 1) in
  max 0 (min u_i (d_i - esc_i))

let pp_info ppf i =
  Format.fprintf ppf
    "@[<hov 2>%s: result has %d spine(s),@ top %d unshared@ (arg spines %a, arg escapes %a)@]"
    i.func i.result_spines i.unshared_top
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Format.pp_print_int)
    i.arg_spines
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Format.pp_print_int)
    i.arg_escapes
