(* Tests for the differential soundness harness: the oracle passes on the
   corpus and on random programs (with and without chaos), deliberately
   broken optimizer verdicts are detected and minimized, a hand-broken IR
   fed through [check_ir] diverges, and the shrinker only proposes
   smaller well-typed programs. *)

module H = Check.Harness
module Shrink = Check.Shrink
module Ir = Runtime.Ir

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let chaos_cfg = { H.default with H.chaos = true }

let fail_counterexample c =
  Alcotest.failf "unexpected divergence: %a" H.pp_counterexample c

let expect_fail name verdict =
  match verdict with
  | H.Fail f -> f
  | H.Pass -> Alcotest.failf "%s: expected a divergence, got Pass" name
  | H.Skip r -> Alcotest.failf "%s: expected a divergence, got Skip (%s)" name r

(* ---- the oracle on sound inputs -------------------------------------------- *)

let oracle_tests =
  [
    Alcotest.test_case "builtin-corpus-passes" `Quick (fun () ->
        match H.check_corpus H.default H.builtin_corpus with
        | Ok s ->
            checki "all checked" (List.length H.builtin_corpus) s.H.checked;
            checki "all passed" s.H.checked (s.H.passed + s.H.skipped);
            checki "nothing skipped" 0 s.H.skipped
        | Error c -> fail_counterexample c);
    Alcotest.test_case "builtin-corpus-passes-under-chaos" `Quick (fun () ->
        match H.check_corpus chaos_cfg H.builtin_corpus with
        | Ok s -> checki "all passed" s.H.checked s.H.passed
        | Error c -> fail_counterexample c);
    Alcotest.test_case "random-programs-pass-under-chaos" `Quick (fun () ->
        match H.check_random chaos_cfg ~count:60 with
        | Ok s ->
            checki "all checked" 60 s.H.checked;
            (* generated programs are complete and first-order: few skips *)
            checkb "mostly passed" true (s.H.passed >= 50)
        | Error c -> fail_counterexample c);
    Alcotest.test_case "unparseable-is-skipped" `Quick (fun () ->
        match H.check_src H.default "car (" with
        | H.Skip _ -> ()
        | _ -> Alcotest.fail "expected Skip");
    Alcotest.test_case "ill-typed-is-skipped" `Quick (fun () ->
        match H.check_src H.default "1 + nil" with
        | H.Skip _ -> ()
        | _ -> Alcotest.fail "expected Skip");
    Alcotest.test_case "function-result-is-skipped" `Quick (fun () ->
        (* read_value cannot compare closures; the oracle must not call
           that a divergence *)
        match H.check_src H.default "fun x -> cons x nil" with
        | H.Skip _ -> ()
        | _ -> Alcotest.fail "expected Skip");
  ]

(* ---- injected faults are caught --------------------------------------------- *)

let fault_tests =
  [
    Alcotest.test_case "widened-arena-is-caught" `Quick (fun () ->
        let cfg = { chaos_cfg with H.fault = H.Widen_arena } in
        let f = expect_fail "widen" (H.check_src cfg "[1, 2]") in
        Alcotest.check Alcotest.string "stage" "sabotaged" f.H.stage);
    Alcotest.test_case "misused-dcons-is-caught" `Quick (fun () ->
        let cfg = { chaos_cfg with H.fault = H.Misuse_dcons } in
        let f = expect_fail "dcons" (H.check_src cfg "cons 1 (cons 2 nil)") in
        Alcotest.check Alcotest.string "stage" "sabotaged" f.H.stage);
    Alcotest.test_case "faults-need-a-cons-site" `Quick (fun () ->
        (* nothing to sabotage in a cons-free program *)
        checkb "dcons" true (H.sabotage H.Misuse_dcons (Nml.Surface.of_string "1 + 2") = None));
    Alcotest.test_case "random-search-finds-and-shrinks-the-fault" `Quick (fun () ->
        let cfg = { chaos_cfg with H.fault = H.Widen_arena } in
        match H.check_random cfg ~count:40 with
        | Ok _ -> Alcotest.fail "the injected fault was never caught"
        | Error c ->
            checkb "shrunk no larger than original" true
              (String.length c.H.shrunk <= String.length c.H.original);
            (* the minimized program must still exhibit the same failure *)
            (match H.check_src cfg c.H.shrunk with
            | H.Fail f -> Alcotest.check Alcotest.string "stage" c.H.failure.H.stage f.H.stage
            | _ -> Alcotest.fail "shrunk program no longer fails"));
  ]

(* ---- a hand-broken IR diverges ---------------------------------------------- *)

(* [let x = [7, 8] in mkpair (cons 9 nil) (car x)], but with the fresh
   cons replaced by [dcons x 9 nil]: the reuse clobbers x's head cell, so
   [car x] reads 9 instead of 7 — the kind of IR an unsound reuse verdict
   would emit. *)
let broken_reuse_src = "let x = [7, 8] in mkpair (cons 9 nil) (car x)"

let broken_reuse_ir =
  let open Ir in
  let int n = Const (Nml.Ast.Cint n) in
  let list_78 =
    App (App (ConsAt Heap, int 7), App (App (ConsAt Heap, int 8), Const Nml.Ast.Cnil))
  in
  App
    ( Lam
        ( "x",
          App
            ( App
                ( Prim Nml.Ast.Pair,
                  App (App (App (Dcons, Var "x"), int 9), Const Nml.Ast.Cnil) ),
              App (Prim Nml.Ast.Car, Var "x") ) ),
      list_78 )

let ir_tests =
  [
    Alcotest.test_case "sound-ir-passes" `Quick (fun () ->
        let ir = Ir.of_program (Nml.Surface.of_string broken_reuse_src) in
        match H.check_ir H.default ~src:broken_reuse_src ir with
        | H.Pass -> ()
        | H.Fail f -> Alcotest.failf "unexpected: %s vs %s" f.H.expected f.H.got
        | H.Skip r -> Alcotest.failf "unexpected Skip (%s)" r);
    Alcotest.test_case "broken-reuse-ir-diverges" `Quick (fun () ->
        let f =
          expect_fail "broken reuse"
            (H.check_ir H.default ~src:broken_reuse_src broken_reuse_ir)
        in
        checkb "answers differ" true (not (String.equal f.H.expected f.H.got)));
  ]

(* ---- the shrinker ------------------------------------------------------------ *)

let shrink_tests =
  [
    Alcotest.test_case "candidates-are-smaller-and-well-typed" `Quick (fun () ->
        let src = "letrec f l = if null l then nil else cons (car l) (f (cdr l)) in f [1, 2, 3]" in
        let cs = Shrink.candidates src in
        checkb "has candidates" true (cs <> []);
        List.iter
          (fun c ->
            checkb "strictly different" true (not (String.equal c src));
            (* every candidate must itself be shrinkable input, i.e. parse *)
            match Nml.Surface.of_string c with
            | _ -> ()
            | exception _ -> Alcotest.failf "candidate does not parse: %s" c)
          cs);
    Alcotest.test_case "unparseable-has-no-candidates" `Quick (fun () ->
        checki "none" 0 (List.length (Shrink.candidates "cons (")));
    Alcotest.test_case "minimize-reaches-a-small-program" `Quick (fun () ->
        (* minimize under "still conses" (the pretty-printer spells cons
           as ::) keeps one cons site but strips everything else *)
        let has_cons s =
          let rec go i =
            i + 2 <= String.length s && (String.sub s i 2 = "::" || go (i + 1))
          in
          go 0
        in
        let src = "letrec f l = if null l then nil else cons (car l) (f (cdr l)) in f [1, 2, 3]" in
        let min = Shrink.minimize ~still_failing:has_cons src in
        checkb "still has a cons" true (has_cons min);
        checkb "much smaller" true (String.length min < String.length src / 2));
  ]

let () =
  Alcotest.run "check"
    [
      ("oracle", oracle_tests);
      ("faults", fault_tests);
      ("broken-ir", ir_tests);
      ("shrink", shrink_tests);
    ]
