lib/optimize/liveness.ml: List Nml Set String
