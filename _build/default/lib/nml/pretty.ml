(* Precedence levels, mirroring the parser:
   0 expr (lambda/if/let/letrec)   1 or   2 and   3 cmp   4 cons(::)
   5 add   6 mul   7 app   8 atom *)

let prec_of_prim = function
  | Ast.Or -> 1
  | Ast.And -> 2
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 3
  | Ast.Cons -> 4
  | Ast.Add | Ast.Sub -> 5
  | Ast.Mul | Ast.Div | Ast.Mod -> 6
  | Ast.Not | Ast.Car | Ast.Cdr | Ast.Null | Ast.Pair | Ast.Fst | Ast.Snd | Ast.Node
  | Ast.Isleaf | Ast.Label | Ast.Left | Ast.Right ->
      7

(* Infix operators and their associativity side. *)
let infix_name = function
  | Ast.Or -> Some "or"
  | Ast.And -> Some "and"
  | Ast.Eq -> Some "="
  | Ast.Ne -> Some "<>"
  | Ast.Lt -> Some "<"
  | Ast.Le -> Some "<="
  | Ast.Gt -> Some ">"
  | Ast.Ge -> Some ">="
  | Ast.Cons -> Some "::"
  | Ast.Add -> Some "+"
  | Ast.Sub -> Some "-"
  | Ast.Mul -> Some "*"
  | Ast.Div -> Some "div"
  | Ast.Mod -> Some "mod"
  | Ast.Not | Ast.Car | Ast.Cdr | Ast.Null | Ast.Pair | Ast.Fst | Ast.Snd | Ast.Node
  | Ast.Isleaf | Ast.Label | Ast.Left | Ast.Right ->
      None

let right_assoc = function Ast.Cons | Ast.Or | Ast.And -> true | _ -> false
let non_assoc = function Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> true | _ -> false

(* Collects [cons e1 (cons e2 ... nil)] into Some [e1; e2; ...]. *)
let rec as_list_literal = function
  | Ast.Const (_, Ast.Cnil) -> Some []
  | Ast.App (_, Ast.App (_, Ast.Prim (_, Ast.Cons), hd), tl) ->
      Option.map (fun es -> hd :: es) (as_list_literal tl)
  | _ -> None

let rec collect_lams acc = function
  | Ast.Lam (_, x, b) -> collect_lams (x :: acc) b
  | e -> (List.rev acc, e)

let pp_gen ~sugar ppf e =
  let rec go prec ppf e =
    match e with
    | Ast.Const (_, Ast.Cint n) ->
        if n < 0 && prec > 5 then Format.fprintf ppf "(%d)" n else Format.pp_print_int ppf n
    | Ast.Const (_, Ast.Cbool b) -> Format.pp_print_bool ppf b
    | Ast.Const (_, Ast.Cnil) -> Format.pp_print_string ppf "nil"
    | Ast.Const (_, Ast.Cleaf) -> Format.pp_print_string ppf "leaf"
    | Ast.Prim (_, p) -> (
        match infix_name p with
        | Some _ when Ast.prim_of_name (Ast.prim_name p) = None ->
            (* operator primitive in argument position: parenthesized name *)
            Format.fprintf ppf "(fun a b -> a %s b)" (Ast.prim_name p)
        | _ -> Format.pp_print_string ppf (Ast.prim_name p))
    | Ast.Var (_, x) -> Format.pp_print_string ppf x
    | Ast.App (_, Ast.Prim (_, Ast.Not), a) ->
        paren prec 7 ppf (fun ppf -> Format.fprintf ppf "not %a" (go 8) a)
    | Ast.App (_, Ast.App (_, Ast.Prim (_, p), a), b) when infix_name p <> None ->
        let name = Option.get (infix_name p) in
        let opp = prec_of_prim p in
        let lp, rp =
          if right_assoc p then (opp + 1, opp)
          else if non_assoc p then (opp + 1, opp + 1)
          else (opp, opp + 1)
        in
        (match (p, if sugar then as_list_literal e else None) with
        | Ast.Cons, Some elems ->
            Format.fprintf ppf "@[<hov 1>[%a]@]"
              (Format.pp_print_list
                 ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
                 (go 0))
              elems
        | _ ->
            paren prec opp ppf (fun ppf ->
                Format.fprintf ppf "@[<hov 2>%a %s@ %a@]" (go lp) a name (go rp) b))
    | Ast.App (_, f, a) ->
        paren prec 7 ppf (fun ppf -> Format.fprintf ppf "@[<hov 2>%a@ %a@]" (go 7) f (go 8) a)
    | Ast.Lam _ ->
        let xs, body = collect_lams [] e in
        paren prec 0 ppf (fun ppf ->
            Format.fprintf ppf "@[<hov 2>fun %a ->@ %a@]"
              (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_string)
              xs (go 0) body)
    | Ast.If (_, c, t, f) ->
        paren prec 0 ppf (fun ppf ->
            Format.fprintf ppf "@[<hv 0>if %a@ then %a@ else %a@]" (go 0) c (go 0) t (go 0) f)
    | Ast.Letrec (_, bs, body) ->
        paren prec 0 ppf (fun ppf ->
            Format.fprintf ppf "@[<v 0>letrec@;<1 2>@[<v 0>%a@]@ in %a@]"
              (Format.pp_print_list
                 ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
                 pp_binding)
              bs (go 0) body)
  and pp_binding ppf (x, rhs) =
    let xs, body = collect_lams [] rhs in
    match xs with
    | [] -> Format.fprintf ppf "@[<hov 2>%s =@ %a@]" x (go 0) body
    | _ ->
        Format.fprintf ppf "@[<hov 2>%s %a =@ %a@]" x
          (Format.pp_print_list ~pp_sep:Format.pp_print_space Format.pp_print_string)
          xs (go 0) body
  and paren prec level ppf k =
    if prec > level then (
      Format.pp_print_string ppf "(";
      k ppf;
      Format.pp_print_string ppf ")")
    else k ppf
  in
  go 0 ppf e

let pp ppf e = pp_gen ~sugar:true ppf e
let pp_flat ppf e = pp_gen ~sugar:false ppf e
let to_string e = Format.asprintf "%a" pp e
