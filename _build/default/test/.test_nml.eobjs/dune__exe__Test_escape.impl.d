test/test_escape.ml: Alcotest Escape Format Gen List Nml Printf QCheck QCheck_alcotest Random String
