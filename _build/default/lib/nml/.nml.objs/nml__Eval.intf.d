lib/nml/eval.mli: Ast Format Surface
