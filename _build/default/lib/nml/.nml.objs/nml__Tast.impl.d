lib/nml/tast.ml: Ast Format List Loc Pretty Ty
