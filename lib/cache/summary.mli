(** JSON codec for definition summaries and the cache-aware analysis.

    The persistent cache stores, per callgraph SCC, the settled
    global-test summaries of the member definitions — the exact data the
    report printer consumes ({!Escape.Report.def_summary}), so a replayed
    entry renders bit-identically to a fresh solve. *)

type outcome = {
  summaries : Escape.Report.def_summary list;
      (** one per definition, in program order *)
  evaluations : int;
      (** fixpoint entry evaluations performed; [0] on a fully warm run *)
  scc_hits : int;  (** SCC records served from the store *)
  scc_misses : int;  (** SCC records that had to be (re)computed *)
}

val analyze : ?store:Store.t -> Nml.Infer.program -> outcome
(** Analyzes a whole program.  Without a store this is exactly a fresh
    solve; with one, each SCC's summaries are looked up by content key
    ({!Skey}) and only missing SCCs are solved (and written back). *)

(** {2 Codec internals, exposed for the cache unit tests} *)

val def_to_json : Escape.Report.def_summary -> Nml.Json.t
val def_of_json : Nml.Json.t -> Escape.Report.def_summary
val record_to_json : key:string -> Escape.Report.def_summary list -> Nml.Json.t

val record_of_json :
  key:string -> members:string list -> Nml.Json.t -> Escape.Report.def_summary list option
(** [None] on any schema, key or member mismatch — a miss, never an
    error. *)

exception Decode of string
