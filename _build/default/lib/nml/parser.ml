exception Error of Loc.t * string

type state = { toks : Lexer.spanned array; mutable pos : int }

let current st = st.toks.(st.pos)
let peek st = (current st).Lexer.token
let peek_loc st = (current st).Lexer.loc

let advance st =
  let sp = current st in
  if not (Token.equal sp.Lexer.token Token.EOF) then st.pos <- st.pos + 1;
  sp

let error st msg = raise (Error (peek_loc st, msg))

let expect st tok =
  let sp = current st in
  if Token.equal sp.Lexer.token tok then ignore (advance st)
  else
    error st
      (Printf.sprintf "expected %s but found %s" (Token.to_string tok)
         (Token.to_string sp.Lexer.token))

let expect_ident st =
  match peek st with
  | Token.IDENT x ->
      ignore (advance st);
      x
  | t -> error st (Printf.sprintf "expected an identifier but found %s" (Token.to_string t))

(* An identifier occurrence: a bound name is a variable; otherwise the
   alphabetic primitives (cons, car, cdr, null) denote constants. *)
let resolve_ident loc scope x =
  if List.mem x scope then Ast.Var (loc, x)
  else if String.equal x "leaf" then Ast.Const (loc, Ast.Cleaf)
  else
    match Ast.prim_of_name x with
    | Some p -> Ast.Prim (loc, p)
    | None -> Ast.Var (loc, x)

(* Infix applications span from the left operand to the right one (the
   operator's own location sits between them). *)
let binop l p lhs rhs =
  let loc = Loc.merge (Ast.loc lhs) (Ast.loc rhs) in
  Ast.App (loc, Ast.App (loc, Ast.Prim (l, p), lhs), rhs)

let starts_atom = function
  | Token.INT _ | Token.IDENT _ | Token.TRUE | Token.FALSE | Token.NIL | Token.LPAREN
  | Token.LBRACKET | Token.NOT ->
      true
  | _ -> false

let rec parse_expression st scope =
  match peek st with
  | Token.LAMBDA -> parse_lambda st scope
  | Token.FUN -> parse_fun st scope
  | Token.IF -> parse_if st scope
  | Token.LET -> parse_let st scope
  | Token.LETREC -> parse_letrec st scope
  | _ -> parse_or st scope

(* lambda(x). e   or   \x. e *)
and parse_lambda st scope =
  let start = peek_loc st in
  expect st Token.LAMBDA;
  let x =
    if Token.equal (peek st) Token.LPAREN then (
      expect st Token.LPAREN;
      let x = expect_ident st in
      expect st Token.RPAREN;
      x)
    else expect_ident st
  in
  expect st Token.DOT;
  let body = parse_expression st (x :: scope) in
  Ast.Lam (Loc.merge start (Ast.loc body), x, body)

(* fun x1 ... xn -> e *)
and parse_fun st scope =
  let start = peek_loc st in
  expect st Token.FUN;
  let rec params acc =
    match peek st with
    | Token.IDENT x ->
        ignore (advance st);
        params (x :: acc)
    | Token.ARROW -> List.rev acc
    | _ -> error st "expected a parameter or '->' in fun expression"
  in
  let xs = params [] in
  if xs = [] then error st "fun expression needs at least one parameter";
  expect st Token.ARROW;
  let body = parse_expression st (List.rev_append xs scope) in
  let e = Ast.lams xs body in
  (* restore the overall location on the outermost lambda *)
  match e with
  | Ast.Lam (_, x, b) -> Ast.Lam (Loc.merge start (Ast.loc body), x, b)
  | _ -> assert false

and parse_if st scope =
  let start = peek_loc st in
  expect st Token.IF;
  let c = parse_expression st scope in
  expect st Token.THEN;
  let t = parse_expression st scope in
  expect st Token.ELSE;
  let f = parse_expression st scope in
  Ast.If (Loc.merge start (Ast.loc f), c, t, f)

(* let x p1 ... pn = e1 in e2   ==>   (lambda(x). e2) (lambda(p1)...e1) *)
and parse_let st scope =
  let start = peek_loc st in
  expect st Token.LET;
  let x, rhs = parse_binding st scope ~recursive_name:None in
  expect st Token.IN;
  let body = parse_expression st (x :: scope) in
  let l = Loc.merge start (Ast.loc body) in
  Ast.App (l, Ast.Lam (l, x, body), rhs)

and parse_letrec st scope =
  let start = peek_loc st in
  expect st Token.LETREC;
  (* All binding names are in scope in every right-hand side. *)
  let names = scan_binding_names st in
  let scope' = List.rev_append names scope in
  let rec bindings acc =
    let x, rhs = parse_binding st scope' ~recursive_name:None in
    let acc = (x, rhs) :: acc in
    if Token.equal (peek st) Token.SEMI then (
      expect st Token.SEMI;
      if Token.equal (peek st) Token.IN then List.rev acc else bindings acc)
    else List.rev acc
  in
  let bs = bindings [] in
  expect st Token.IN;
  let body = parse_expression st scope' in
  Ast.Letrec (Loc.merge start (Ast.loc body), bs, body)

(* Pre-scans "x params = ... ;" groups to collect mutually recursive names
   without consuming tokens. *)
and scan_binding_names st =
  let i = ref st.pos in
  let names = ref [] in
  let depth = ref 0 in
  let continue = ref true in
  let n = Array.length st.toks in
  (* The name of a binding is the identifier right after LETREC or after a
     top-level ';'. *)
  (match st.toks.(!i).Lexer.token with
  | Token.IDENT x -> names := [ x ]
  | _ -> ());
  while !continue && !i < n - 1 do
    (match st.toks.(!i).Lexer.token with
    | Token.LPAREN | Token.LBRACKET -> incr depth
    | Token.RPAREN | Token.RBRACKET -> decr depth
    | Token.LETREC | Token.LET -> incr depth
    | Token.IN -> if !depth = 0 then continue := false else decr depth
    | Token.SEMI when !depth = 0 -> (
        match st.toks.(!i + 1).Lexer.token with
        | Token.IDENT x -> names := x :: !names
        | _ -> ())
    | Token.EOF -> continue := false
    | _ -> ());
    incr i
  done;
  List.rev !names

(* x p1 ... pn = e, returning (x, lambda(p1)...lambda(pn). e). *)
and parse_binding st scope ~recursive_name:_ =
  let x = expect_ident st in
  let rec params acc =
    match peek st with
    | Token.IDENT p ->
        ignore (advance st);
        params (p :: acc)
    | Token.EQ -> List.rev acc
    | _ -> error st "expected a parameter or '=' in binding"
  in
  let ps = params [] in
  expect st Token.EQ;
  let rhs_scope = List.rev_append ps (x :: scope) in
  let rhs = parse_expression st rhs_scope in
  (x, Ast.lams ps rhs)

and parse_or st scope =
  let lhs = parse_and st scope in
  if Token.equal (peek st) Token.OR then (
    let l = peek_loc st in
    expect st Token.OR;
    let rhs = parse_or st scope in
    binop l Ast.Or lhs rhs)
  else lhs

and parse_and st scope =
  let lhs = parse_cmp st scope in
  if Token.equal (peek st) Token.AND then (
    let l = peek_loc st in
    expect st Token.AND;
    let rhs = parse_and st scope in
    binop l Ast.And lhs rhs)
  else lhs

and parse_cmp st scope =
  let lhs = parse_cons st scope in
  let op =
    match peek st with
    | Token.EQ -> Some Ast.Eq
    | Token.NE -> Some Ast.Ne
    | Token.LT -> Some Ast.Lt
    | Token.LE -> Some Ast.Le
    | Token.GT -> Some Ast.Gt
    | Token.GE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some p ->
      let l = peek_loc st in
      ignore (advance st);
      let rhs = parse_cons st scope in
      binop l p lhs rhs

and parse_cons st scope =
  let lhs = parse_add st scope in
  if Token.equal (peek st) Token.CONS_OP then (
    let l = peek_loc st in
    expect st Token.CONS_OP;
    let rhs = parse_cons st scope in
    binop l Ast.Cons lhs rhs)
  else lhs

and parse_add st scope =
  let lhs =
    if Token.equal (peek st) Token.MINUS then (
      let l = peek_loc st in
      expect st Token.MINUS;
      match parse_mul st scope with
      | Ast.Const (cl, Ast.Cint n) -> Ast.Const (Loc.merge l cl, Ast.Cint (-n))
      | e -> binop l Ast.Sub (Ast.Const (l, Ast.Cint 0)) e)
    else parse_mul st scope
  in
  let rec loop lhs =
    match peek st with
    | Token.PLUS ->
        let l = peek_loc st in
        expect st Token.PLUS;
        loop (binop l Ast.Add lhs (parse_mul st scope))
    | Token.MINUS ->
        let l = peek_loc st in
        expect st Token.MINUS;
        loop (binop l Ast.Sub lhs (parse_mul st scope))
    | _ -> lhs
  in
  loop lhs

and parse_mul st scope =
  let rec loop lhs =
    match peek st with
    | Token.STAR ->
        let l = peek_loc st in
        expect st Token.STAR;
        loop (binop l Ast.Mul lhs (parse_app st scope))
    | Token.DIV ->
        let l = peek_loc st in
        expect st Token.DIV;
        loop (binop l Ast.Div lhs (parse_app st scope))
    | Token.MOD ->
        let l = peek_loc st in
        expect st Token.MOD;
        loop (binop l Ast.Mod lhs (parse_app st scope))
    | _ -> lhs
  in
  loop (parse_app st scope)

and parse_app st scope =
  let head = parse_atom st scope in
  let rec loop acc = if starts_atom (peek st) then loop (Ast.app acc [ parse_atom st scope ]) else acc in
  loop head

and parse_atom st scope =
  let l = peek_loc st in
  match peek st with
  | Token.INT n ->
      ignore (advance st);
      Ast.Const (l, Ast.Cint n)
  | Token.TRUE ->
      ignore (advance st);
      Ast.Const (l, Ast.Cbool true)
  | Token.FALSE ->
      ignore (advance st);
      Ast.Const (l, Ast.Cbool false)
  | Token.NIL ->
      ignore (advance st);
      Ast.Const (l, Ast.Cnil)
  | Token.IDENT x ->
      ignore (advance st);
      resolve_ident l scope x
  | Token.NOT ->
      ignore (advance st);
      Ast.app (Ast.Prim (l, Ast.Not)) [ parse_atom st scope ]
  | Token.LPAREN ->
      expect st Token.LPAREN;
      let e = parse_expression st scope in
      expect st Token.RPAREN;
      e
  | Token.LBRACKET ->
      expect st Token.LBRACKET;
      if Token.equal (peek st) Token.RBRACKET then (
        expect st Token.RBRACKET;
        Ast.Const (l, Ast.Cnil))
      else
        let rec elems acc =
          let e = parse_expression st scope in
          match peek st with
          | Token.COMMA | Token.SEMI ->
              ignore (advance st);
              elems (e :: acc)
          | Token.RBRACKET ->
              expect st Token.RBRACKET;
              List.rev (e :: acc)
          | t ->
              error st
                (Printf.sprintf "expected ',', ';' or ']' in list literal, found %s"
                   (Token.to_string t))
        in
        Ast.list_lit l (elems [])
  | t -> error st (Printf.sprintf "unexpected token %s" (Token.to_string t))

let parse ?(file = "<string>") src =
  let toks = Array.of_list (Lexer.tokenize ~file src) in
  let st = { toks; pos = 0 } in
  let e = parse_expression st [] in
  (match peek st with
  | Token.EOF -> ()
  | t -> error st (Printf.sprintf "trailing input starting with %s" (Token.to_string t)));
  e

let parse_expr = parse
