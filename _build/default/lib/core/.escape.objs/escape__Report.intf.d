lib/core/report.mli: Fixpoint Format Nml
