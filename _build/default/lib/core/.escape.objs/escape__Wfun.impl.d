lib/core/wfun.ml: Dvalue
