.PHONY: all build test check vet bench bench-smoke bench-gate batch-smoke lint-smoke serve-smoke framework-smoke sharing-smoke vm-smoke ci clean

all: build

build:
	dune build

test: build
	dune runtest

# The differential soundness harness with fault injection on.
check: build
	dune exec bin/nmlc.exe -- check --count 200 --seed 42 --chaos

# The independent annotation verifier over every shipped example, plus
# a seeded mutation-testing smoke (every unsound edit must be caught).
vet: build
	for f in examples/programs/*.nml; do \
	  dune exec bin/nmlc.exe -- vet $$f || exit 1; \
	done
	dune exec bin/nmlc.exe -- vet examples/programs/reverse.nml --mutate 40
	dune exec bin/nmlc.exe -- vet examples/programs/partition_sort.nml --mutate 60

# The full benchmark suite; S1/S2 write the solver trajectory artifact,
# S3/S4 the batch-scaling and summary-cache artifact, L1 the lint-cache
# throughput artifact, E1 the daemon edit-storm latency artifact, H1/H2
# the escape-guided heap throughput/pause artifact.  The final --history
# folds the whole trajectory into one schema-stable series.
bench: build
	dune exec bench/main.exe -- S1 S2 --json BENCH_PR2.json
	dune exec bench/main.exe -- --validate BENCH_PR2.json
	dune exec bench/main.exe -- S3 S4 --json BENCH_PR4.json
	dune exec bench/main.exe -- --validate BENCH_PR4.json
	dune exec bench/main.exe -- L1 --json BENCH_PR5.json
	dune exec bench/main.exe -- --validate BENCH_PR5.json
	dune exec bench/main.exe -- E1 --json BENCH_PR6.json
	dune exec bench/main.exe -- --validate BENCH_PR6.json
	dune exec bench/main.exe -- H1 H2 --json BENCH_PR7.json
	dune exec bench/main.exe -- --validate BENCH_PR7.json
	dune exec bench/main.exe -- S5 --json BENCH_PR8.json
	dune exec bench/main.exe -- --validate BENCH_PR8.json
	dune exec bench/main.exe -- V1 V2 --json BENCH_PR9.json
	dune exec bench/main.exe -- --validate BENCH_PR9.json
	dune exec bench/main.exe -- S6 --json BENCH_PR10.json
	dune exec bench/main.exe -- --validate BENCH_PR10.json
	dune exec bench/main.exe -- --history BENCH_PR2.json BENCH_PR4.json \
	  BENCH_PR5.json BENCH_PR6.json BENCH_PR7.json BENCH_PR8.json \
	  BENCH_PR9.json BENCH_PR10.json

# Tiny-budget solver benchmarks: exercises the --json trajectory end to
# end (emit, then re-parse and check the worklist-beats-round-robin and
# warm-cache-is-free invariants) without the full measurement quota.
bench-smoke: build
	dune exec bench/main.exe -- S1 S2 S3 S4 S5 S6 L1 E1 H1 H2 V1 V2 --smoke --json _build/bench_smoke.json
	dune exec bench/main.exe -- --validate _build/bench_smoke.json

# The perf trajectory gate: every committed benchmark artifact must still
# validate, and the deterministic headline metrics (evaluation and cell
# counts -- never wall clock) must be reproducible today within 20% of
# what the artifact recorded.
bench-gate: build
	dune exec bench/main.exe -- --gate BENCH_PR2.json BENCH_PR4.json \
	  BENCH_PR5.json BENCH_PR6.json BENCH_PR7.json BENCH_PR8.json \
	  BENCH_PR9.json BENCH_PR10.json

# The persistent cache end to end through the CLI: a second batch run
# over the unchanged examples must perform zero entry evaluations.
batch-smoke: build
	rm -rf _build/batch_smoke_cache
	dune exec bin/nmlc.exe -- batch examples/programs --jobs 2 \
	  --cache _build/batch_smoke_cache > /dev/null
	dune exec bin/nmlc.exe -- batch examples/programs --jobs 2 \
	  --cache _build/batch_smoke_cache | grep -q '; 0 entry evaluation(s)'

# The lint engine end to end through the CLI: every shipped example lints
# without an internal error, SARIF output is well-formed, and a warm
# cached batch replays the cold run's findings byte for byte.
lint-smoke: build
	for f in examples/programs/*.nml; do \
	  dune exec bin/nmlc.exe -- lint $$f > /dev/null; rc=$$?; \
	  if [ $$rc -gt 1 ]; then echo "lint $$f: exit $$rc"; exit 1; fi; \
	done
	dune exec bin/nmlc.exe -- lint --format sarif examples/programs/reverse.nml \
	  | grep -q '"version": "2.1.0"'
	rm -rf _build/lint_smoke_cache
	dune exec bin/nmlc.exe -- batch --lint examples/programs --jobs 2 \
	  --cache _build/lint_smoke_cache > _build/lint_smoke_cold.out; [ $$? -le 1 ]
	dune exec bin/nmlc.exe -- batch --lint examples/programs --jobs 2 \
	  --cache _build/lint_smoke_cache > _build/lint_smoke_warm.out; [ $$? -le 1 ]
	grep -q '; 0 entry evaluation(s)' _build/lint_smoke_warm.out
	head -n -1 _build/lint_smoke_cold.out > _build/lint_smoke_cold.body
	head -n -1 _build/lint_smoke_warm.out > _build/lint_smoke_warm.body
	cmp _build/lint_smoke_cold.body _build/lint_smoke_warm.body

# The pluggable-analysis surface end to end through the CLI: the registry
# lists every analysis, each one reports over a shipped example, and a
# warm cached batch rerun of a non-default analysis performs zero entry
# evaluations out of its own key namespace.
framework-smoke: build
	dune exec bin/nmlc.exe -- analyze --list-analyses | grep -q 'escape-x-usage'
	dune exec bin/nmlc.exe -- analyze examples/programs/reverse.nml \
	  --analysis usage | grep -q 'U(append, 1) = used'
	dune exec bin/nmlc.exe -- analyze examples/programs/reverse.nml \
	  --analysis spine-liveness | grep -q 'L(append, 1) = spine-live'
	dune exec bin/nmlc.exe -- analyze examples/programs/reverse.nml \
	  --analysis escape-x-usage | grep -q 'P(append, 1) = spine-scratch'
	rm -rf _build/framework_smoke_cache
	dune exec bin/nmlc.exe -- batch examples/programs --analysis usage --jobs 2 \
	  --cache _build/framework_smoke_cache > /dev/null
	dune exec bin/nmlc.exe -- batch examples/programs --analysis usage --jobs 2 \
	  --cache _build/framework_smoke_cache | grep -q '; 0 entry evaluation(s)'

# The sharing analysis end to end through the CLI: the registry lists it
# with its own cache namespace, the per-argument verdicts over a shipped
# example are the expected ones (append's first spine is rebuilt fresh,
# its second is stitched into the result), the alias-informed optimizer
# actually licenses reuse beyond Theorem 2 on the witness example, and a
# warm cached batch rerun performs zero entry evaluations out of the
# sharing namespace.
sharing-smoke: build
	dune exec bin/nmlc.exe -- analyze --list-analyses \
	  | grep -q 'nmlc/summary-cache-v2/sharing'
	dune exec bin/nmlc.exe -- analyze examples/programs/reverse.nml \
	  --analysis sharing | grep -q 'S(append, 1) = unshared'
	dune exec bin/nmlc.exe -- analyze examples/programs/reverse.nml \
	  --analysis sharing | grep -q 'S(append, 2) = spine-shared'
	dune exec bin/nmlc.exe -- run examples/programs/letspine_reuse.nml -O \
	  | grep -q 'dcons_reuses  5'
	rm -rf _build/sharing_smoke_cache
	dune exec bin/nmlc.exe -- batch examples/programs --analysis sharing --jobs 2 \
	  --cache _build/sharing_smoke_cache > /dev/null
	dune exec bin/nmlc.exe -- batch examples/programs --analysis sharing --jobs 2 \
	  --cache _build/sharing_smoke_cache | grep -q '; 0 entry evaluation(s)'

# The analysis daemon end to end through the CLI: a socket server with
# the slow-request fault armed, every method exercised by the one-shot
# client, the in-band error taxonomy (SRV001 on a garbage payload,
# SRV004 on a blown deadline), and a clean shutdown drain (exit 0).
serve-smoke: build
	rm -rf _build/serve_smoke && mkdir -p _build/serve_smoke
	set -e; \
	N=_build/default/bin/nmlc.exe; S=_build/serve_smoke/s.sock; \
	$$N serve --socket $$S --cache _build/serve_smoke/cache --jobs 2 \
	  --inject-fault slow-request --quiet & SRV=$$!; \
	for i in $$(seq 1 100); do [ -S $$S ] && break; sleep 0.1; done; \
	$$N serve --connect $$S --call status | grep -q '"workers": 2'; \
	$$N serve --connect $$S --call analyze --file examples/programs/reverse.nml \
	  | grep -q '"code": 0'; \
	$$N serve --connect $$S --call lint --file examples/programs/reverse.nml \
	  | grep -q '"findings"'; \
	$$N serve --connect $$S --call vet --file examples/programs/reverse.nml \
	  | grep -q '"code": 0'; \
	( $$N serve --connect $$S --raw 'this is not json' || true ) \
	  | grep -q 'SRV001'; \
	( $$N serve --connect $$S --call analyze \
	    --file examples/programs/reverse.nml --deadline-ms 1 || true ) \
	  | grep -q 'SRV004'; \
	$$N serve --connect $$S --call shutdown | grep -q '"stopping": true'; \
	wait $$SRV

# The bytecode backend end to end through the CLI: every shipped example
# runs on the VM with the same result and storage counters as the
# interpreter (optimized, generational), the compile command disassembles,
# and the differential oracle passes with the VM as its third leg.
vm-smoke: build
	set -e; N=_build/default/bin/nmlc.exe; \
	for f in examples/programs/*.nml; do \
	  $$N run $$f -O --policy generational --backend vm > _build/vm_smoke_vm.out; \
	  $$N run $$f -O --policy generational > _build/vm_smoke_interp.out; \
	  cmp _build/vm_smoke_vm.out _build/vm_smoke_interp.out \
	    || { echo "vm-smoke: $$f diverges between backends"; exit 1; }; \
	done
	dune exec bin/nmlc.exe -- compile examples/programs/reverse.nml --dump-bytecode \
	  | grep -q 'tailcall'
	dune exec bin/nmlc.exe -- check --count 40 --seed 7 --chaos

# Everything a merge must survive.
ci: build
	dune runtest
	dune build @soundness
	$(MAKE) vet
	$(MAKE) vm-smoke
	$(MAKE) bench-smoke
	$(MAKE) bench-gate
	$(MAKE) batch-smoke
	$(MAKE) lint-smoke
	$(MAKE) framework-smoke
	$(MAKE) sharing-smoke
	$(MAKE) serve-smoke

clean:
	dune clean
