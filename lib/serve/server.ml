(* The analysis daemon: accepts framed JSON-RPC requests over a Unix
   socket (one thread per connection) or stdio, keeps the summary store
   hot in memory (write-back, flushed periodically and on drain), and
   pushes analysis jobs onto the supervised worker pool.

   The robustness contract, end to end:

   - a malformed or oversized frame costs that connection, never the
     server (the framing self-synchronizes only at frame granularity,
     so the connection is closed after a structured SRV001/SRV003);
   - an unparsable or invalid payload in a well-formed frame costs
     nothing: SRV001/SRV002 goes back and the connection keeps going;
   - a request that outlives its deadline is abandoned — SRV004 to the
     client, cancellation hint to the worker, late result discarded;
   - a full queue sheds the oldest queued request (SRV005 with a
     retry-after hint sized to the backlog);
   - a crashed worker is reaped and respawned by the pool's supervisor,
     its input quarantined by content (SRV006 now, SRV007 on re-send);
   - SIGINT/SIGTERM (or a [shutdown] request) starts the drain:
     in-flight requests finish, new ones get SRV008, dirty summaries
     are flushed through the store's atomic-rename path, the socket is
     unlinked, and the process exits 0.

   Fault injection ([--inject-fault]) threads through here: frame
   corruption and cache corruption are applied at the connection/server
   layer, worker crash / OOM / slow request inside the handler. *)

module J = Nml.Json

type transport = Socket of string | Stdio

type config = {
  transport : transport;
  jobs : int;
  queue_cap : int;
  default_deadline_ms : int;  (* <= 0: no deadline *)
  max_frame : int;
  store : Cache.Store.t option;
  fault : Fault.t;
  handle_signals : bool;
  quiet : bool;
}

let default_config transport =
  {
    transport;
    jobs = 2;
    queue_cap = 64;
    default_deadline_ms = 30_000;
    max_frame = Frame.default_max;
    store = None;
    fault = Fault.None_;
    handle_signals = true;
    quiet = false;
  }

type t = {
  cfg : config;
  queue : Pool.job Squeue.t;
  stop : bool Atomic.t;
  in_flight : int Atomic.t;
  req_count : int Atomic.t;
  served : int Atomic.t;
  failed : int Atomic.t;
  timeouts : int Atomic.t;
  shed : int Atomic.t;
  malformed : int Atomic.t;
  invalid : int Atomic.t;
  crashes : int Atomic.t;
  qtable : (string, unit) Hashtbl.t;
  qlock : Mutex.t;
  mutable pool : Pool.t option;
}

let log t fmt =
  Printf.ksprintf
    (fun s ->
      if not t.cfg.quiet then begin
        output_string stderr s;
        output_char stderr '\n';
        flush stderr
      end)
    fmt

let quarantined t key =
  Mutex.lock t.qlock;
  let r = Hashtbl.mem t.qtable key in
  Mutex.unlock t.qlock;
  r

let quarantine t key =
  Mutex.lock t.qlock;
  if not (Hashtbl.mem t.qtable key) then Hashtbl.replace t.qtable key ();
  let n = Hashtbl.length t.qtable in
  Mutex.unlock t.qlock;
  n

let quarantine_count t =
  Mutex.lock t.qlock;
  let n = Hashtbl.length t.qtable in
  Mutex.unlock t.qlock;
  n

(* Deterministic (no clocks, no pids), so [status] is cram-testable. *)
let status_json t =
  let a = Atomic.get in
  let mem, dirty =
    match t.cfg.store with
    | None -> (0, 0)
    | Some s -> (Cache.Store.memory_entries s, Cache.Store.dirty_entries s)
  in
  let pool_stat f = match t.pool with None -> 0 | Some p -> f p in
  J.Obj
    [
      ("schema", J.Str "nmlc/serve-status-v1");
      ("workers", J.int t.cfg.jobs);
      ("served", J.int (a t.served));
      ("errors", J.int (a t.failed));
      ("timeouts", J.int (a t.timeouts));
      ("shed", J.int (a t.shed));
      ("malformed", J.int (a t.malformed));
      ("invalid", J.int (a t.invalid));
      ("crashes", J.int (a t.crashes));
      ("respawns", J.int (pool_stat Pool.respawns));
      ("discarded", J.int (pool_stat Pool.discarded));
      ("quarantined", J.int (quarantine_count t));
      ("queue_depth", J.int (Squeue.length t.queue));
      ("memory_entries", J.int mem);
      ("dirty_entries", J.int dirty);
      (* storage-machine activity aggregated across every evaluation this
         process ever ran (lint rules and vet mutants execute programs) *)
      ( "heap",
        J.Obj
          (List.map (fun (k, v) -> (k, J.int v)) (Runtime.Stats.global_row ())) );
      ("draining", J.Bool (a t.stop));
    ]

let retry_hint t = min 1000 (50 * (1 + Squeue.length t.queue))

let on_crash t job exn =
  Atomic.incr t.crashes;
  match (job : Pool.job option) with
  | None -> ()
  | Some job ->
      ignore (quarantine t job.Pool.key);
      ignore
        (Pool.complete job
           {
             Pool.body =
               Protocol.error ?id:job.Pool.req.Protocol.id
                 ~code:Protocol.srv_crash
                 (Printf.sprintf "worker crashed (%s); input quarantined"
                    (Printexc.to_string exn));
             is_error = true;
           })

(* Enqueue one analysis request and wait (poll, 2 ms) for its slot
   under the deadline.  Returns the rendered response. *)
let submit t (req : Protocol.request) =
  let n = 1 + Atomic.fetch_and_add t.req_count 1 in
  (match t.cfg.fault, t.cfg.store with
  | Fault.Cache_corrupt, Some store when n mod 5 = 0 ->
      ignore (Cache.Store.corrupt_memory store)
  | _ -> ());
  let deadline =
    let ms =
      match req.Protocol.deadline_ms with
      | Some ms -> ms
      | None -> t.cfg.default_deadline_ms
    in
    if ms <= 0 then None else Some (Unix.gettimeofday () +. (float_of_int ms /. 1000.))
  in
  let job =
    Pool.make_job ~req ~key:(Handler.quarantine_key req) ~deadline
  in
  let shed_resp (old : Pool.job) =
    Atomic.incr t.shed;
    ignore
      (Pool.complete old
         {
           Pool.body =
             Protocol.error ?id:old.Pool.req.Protocol.id
               ~retry_after_ms:(retry_hint t) ~code:Protocol.srv_overload
               "request shed: the queue is full";
           is_error = true;
         })
  in
  match Squeue.push t.queue job with
  | `Closed ->
      { Pool.body =
          Protocol.error ?id:req.Protocol.id ~code:Protocol.srv_draining
            "server is draining and accepts no new work";
        is_error = true }
  | (`Ok | `Shed _) as pushed ->
      (match pushed with `Shed old -> shed_resp old | `Ok -> ());
      let rec wait () =
        match Pool.peek job with
        | Some resp -> resp
        | None ->
            if Pool.expired ~now:(Unix.gettimeofday ()) job then begin
              Pool.abandon job;
              Atomic.incr t.timeouts;
              {
                Pool.body =
                  Protocol.error ?id:req.Protocol.id
                    ~retry_after_ms:(retry_hint t)
                    ~code:Protocol.srv_deadline
                    "deadline exceeded; the in-flight analysis is abandoned";
                is_error = true;
              }
            end
            else begin
              Thread.delay 0.002;
              wait ()
            end
      in
      wait ()

exception Peer_gone

(* One connection: read frames until EOF/stop, answer each. *)
let connection t ~rfd ~wfd =
  let frames = ref 0 in
  let send (resp : Pool.resp) =
    if resp.Pool.is_error then Atomic.incr t.failed else Atomic.incr t.served;
    if not (Frame.write wfd resp.Pool.body) then raise Peer_gone
  in
  let send_err ?id ?retry_after_ms ~code msg =
    send
      { Pool.body = Protocol.error ?id ?retry_after_ms ~code msg;
        is_error = true }
  in
  let corrupt payload =
    (* Malformed_frame fault: flip a byte in every 3rd inbound payload,
       as if the bytes were damaged in transit. *)
    if t.cfg.fault = Fault.Malformed_frame && !frames mod 3 = 0 && payload <> ""
    then begin
      let b = Bytes.of_string payload in
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x04));
      Bytes.to_string b
    end
    else payload
  in
  let rec loop () =
    match Frame.read ~max_len:t.cfg.max_frame rfd with
    | Error Frame.Closed -> ()
    | Error (Frame.Malformed msg) ->
        (* boundary lost: answer, then drop the connection *)
        Atomic.incr t.malformed;
        send_err ~code:Protocol.srv_malformed ("malformed frame: " ^ msg)
    | Error (Frame.Oversized n) ->
        (* the payload was never read: answer, then drop the connection *)
        Atomic.incr t.malformed;
        send_err ~code:Protocol.srv_oversized
          (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" n
             t.cfg.max_frame)
    | Ok payload -> (
        incr frames;
        match Protocol.parse (corrupt payload) with
        | Error (id, code, msg) ->
            Atomic.incr
              (if code = Protocol.srv_malformed then t.malformed else t.invalid);
            send_err ?id ~code msg;
            loop ()
        | Ok req -> (
            match req.Protocol.meth with
            | Protocol.Status ->
                send
                  { Pool.body = Protocol.ok ?id:req.Protocol.id (status_json t);
                    is_error = false };
                loop ()
            | Protocol.Shutdown ->
                send
                  { Pool.body =
                      Protocol.ok ?id:req.Protocol.id
                        (J.Obj [ ("stopping", J.Bool true) ]);
                    is_error = false };
                Atomic.set t.stop true
            | Protocol.Analyze | Protocol.Vet | Protocol.Lint ->
                if Atomic.get t.stop then begin
                  send_err ?id:req.Protocol.id ~code:Protocol.srv_draining
                    "server is draining and accepts no new work";
                  loop ()
                end
                else begin
                  Atomic.incr t.in_flight;
                  let resp =
                    Fun.protect
                      ~finally:(fun () -> Atomic.decr t.in_flight)
                      (fun () -> submit t req)
                  in
                  send resp;
                  loop ()
                end))
  in
  try loop () with Peer_gone -> ()

let flush_store t =
  match t.cfg.store with None -> 0 | Some s -> Cache.Store.flush s

let drain t =
  log t "serve: draining";
  (* let in-flight requests finish being answered (their connection
     threads hold them), bounded *)
  let deadline = Unix.gettimeofday () +. 10. in
  while
    (Atomic.get t.in_flight > 0 || Squeue.length t.queue > 0)
    && Unix.gettimeofday () < deadline
  do
    Thread.delay 0.01
  done;
  let stuck = match t.pool with None -> 0 | Some p -> Pool.drain p in
  let flushed = flush_store t in
  (match t.cfg.transport with
  | Socket path -> ( try Sys.remove path with Sys_error _ -> ())
  | Stdio -> ());
  log t
    "serve: drained (%d served, %d error(s), %d timeout(s), %d crash(es), %d \
     summary(ies) flushed%s)"
    (Atomic.get t.served) (Atomic.get t.failed) (Atomic.get t.timeouts)
    (Atomic.get t.crashes) flushed
    (if stuck = 0 then "" else Printf.sprintf ", %d worker(s) abandoned" stuck);
  0

let make cfg =
  let t =
    {
      cfg;
      queue = Squeue.create ~cap:cfg.queue_cap;
      stop = Atomic.make false;
      in_flight = Atomic.make 0;
      req_count = Atomic.make 0;
      served = Atomic.make 0;
      failed = Atomic.make 0;
      timeouts = Atomic.make 0;
      shed = Atomic.make 0;
      malformed = Atomic.make 0;
      invalid = Atomic.make 0;
      crashes = Atomic.make 0;
      qtable = Hashtbl.create 16;
      qlock = Mutex.create ();
      pool = None;
    }
  in
  let handler =
    Handler.handle
      { Handler.store = cfg.store; fault = cfg.fault; quarantined = quarantined t }
  in
  t.pool <-
    Some
      (Pool.create ~jobs:cfg.jobs ~queue:t.queue ~handler
         ~on_crash:(on_crash t));
  t

let serve_socket t path =
  (try Sys.remove path with Sys_error _ -> ());
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.bind lfd (Unix.ADDR_UNIX path);
  Unix.listen lfd 64;
  log t "serve: listening on %s" path;
  let last_flush = ref (Unix.gettimeofday ()) in
  while not (Atomic.get t.stop) do
    (match Unix.select [ lfd ] [] [] 0.2 with
    | [ _ ], _, _ -> (
        match Unix.accept lfd with
        | cfd, _ ->
            ignore
              (Thread.create
                 (fun () ->
                   Fun.protect
                     ~finally:(fun () -> try Unix.close cfd with Unix.Unix_error _ -> ())
                     (fun () -> connection t ~rfd:cfd ~wfd:cfd))
                 ())
        | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ())
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    let now = Unix.gettimeofday () in
    if now -. !last_flush > 2. then begin
      last_flush := now;
      ignore (flush_store t)
    end
  done;
  (try Unix.close lfd with Unix.Unix_error _ -> ())

let serve_stdio t =
  let conn_done = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        connection t ~rfd:Unix.stdin ~wfd:Unix.stdout;
        Atomic.set conn_done true)
      ()
  in
  let last_flush = ref (Unix.gettimeofday ()) in
  while not (Atomic.get t.stop || Atomic.get conn_done) do
    Thread.delay 0.05;
    let now = Unix.gettimeofday () in
    if now -. !last_flush > 2. then begin
      last_flush := now;
      ignore (flush_store t)
    end
  done;
  Atomic.set t.stop true;
  (* if the peer closed stdin the thread joins immediately; if the stop
     came from a signal while the thread blocks on read, exit around it *)
  if Atomic.get conn_done then Thread.join th

let run cfg =
  (* writes to sockets whose peer vanished must fail with EPIPE, not
     kill the process — chaos clients disconnect mid-frame on purpose *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let t = make cfg in
  if cfg.handle_signals then begin
    let stop_on _ = Atomic.set t.stop true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop_on);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_on)
  end;
  (match cfg.transport with
  | Socket path -> serve_socket t path
  | Stdio -> serve_stdio t);
  drain t

(* For in-process tests: start a server on [path] on a background
   thread, returning a function that requests the drain and waits for
   [run] to return. *)
let spawn cfg =
  let t = make cfg in
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let th =
    Thread.create
      (fun () ->
        (match cfg.transport with
        | Socket path -> serve_socket t path
        | Stdio -> serve_stdio t);
        ignore (drain t))
      ()
  in
  fun () ->
    Atomic.set t.stop true;
    Thread.join th
