(* Tests for the nml front end: lexer, parser, pretty printer, types,
   inference, and the standard semantics. *)

module T = Nml.Token
module L = Nml.Lexer
module A = Nml.Ast
module P = Nml.Parser
module Pretty = Nml.Pretty
module Ty = Nml.Ty
module Infer = Nml.Infer
module Tast = Nml.Tast
module Eval = Nml.Eval
module Surface = Nml.Surface
module Ex = Nml.Examples


let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* ---- lexer ------------------------------------------------------------- *)

let tokens_str src = String.concat " " (List.map T.to_string (L.tokens src))

let lexer_tests =
  let case name src expected =
    Alcotest.test_case name `Quick (fun () -> checks name expected (tokens_str src))
  in
  let error_case name src =
    Alcotest.test_case name `Quick (fun () ->
        match L.tokens src with
        | exception L.Error _ -> ()
        | _ -> Alcotest.fail "expected a lexer error")
  in
  [
    case "integers" "0 42 007" "0 42 7 <eof>";
    case "identifiers" "x foo foo_bar x1 x'" "x foo foo_bar x1 x' <eof>";
    case "keywords" "if then else let letrec in fun true false nil"
      "if then else let letrec in fun true false nil <eof>";
    case "bool-ops" "and or not div mod" "and or not div mod <eof>";
    case "operators" "+ - * = <> < <= > >= :: -> ." "+ - * = <> < <= > >= :: -> . <eof>";
    case "brackets" "( ) [ ] , ;" "( ) [ ] , ; <eof>";
    case "arrow-vs-minus" "a->b a - >b" "a -> b a - > b <eof>";
    case "cons-op" "1::2::nil" "1 :: 2 :: nil <eof>";
    case "lambda-backslash" "\\x. x" "lambda x . x <eof>";
    case "line-comment" "1 -- comment here\n2" "1 2 <eof>";
    case "line-comment-eof" "1 -- no newline" "1 <eof>";
    case "block-comment" "1 (* inside *) 2" "1 2 <eof>";
    case "nested-comment" "1 (* a (* b *) c *) 2" "1 2 <eof>";
    case "comment-with-minus" "1 (* -- *) 2" "1 2 <eof>";
    case "empty" "" "<eof>";
    case "whitespace-only" "  \t\n  " "<eof>";
    case "no-space-needed" "f(x)" "f ( x ) <eof>";
    error_case "unterminated-comment" "1 (* oops";
    error_case "stray-colon" "a : b";
    error_case "stray-char" "a # b";
    error_case "huge-int" "99999999999999999999999999";
    Alcotest.test_case "locations" `Quick (fun () ->
        let sps = L.tokenize ~file:"f" "ab\n  cd" in
        match sps with
        | [ a; b; _eof ] ->
            checks "loc a" "f:1.1-1.3" (Nml.Loc.to_string a.L.loc);
            checks "loc b" "f:2.3-2.5" (Nml.Loc.to_string b.L.loc)
        | _ -> Alcotest.fail "expected two tokens");
  ]

(* ---- parser ------------------------------------------------------------ *)

let parse = P.parse
let roundtrip e = P.parse (Pretty.to_string e)

let parser_tests =
  let case name src expected_pp =
    Alcotest.test_case name `Quick (fun () ->
        checks name expected_pp (Pretty.to_string (parse src)))
  in
  let equal_case name src1 src2 =
    Alcotest.test_case name `Quick (fun () ->
        checkb name true (A.equal (parse src1) (parse src2)))
  in
  let error_case name src =
    Alcotest.test_case name `Quick (fun () ->
        match parse src with
        | exception P.Error _ -> ()
        | _ -> Alcotest.fail "expected a parse error")
  in
  [
    case "int" "42" "42";
    case "negative-int" "-42" "-42";
    case "bool" "true" "true";
    case "nil" "nil" "nil";
    case "var" "x" "x";
    case "application" "f x y" "f x y";
    case "application-assoc" "(f x) y" "f x y";
    case "paren-arg" "f (g x)" "f (g x)";
    case "add" "1 + 2 + 3" "1 + 2 + 3";
    case "mul-binds-tighter" "1 + 2 * 3" "1 + 2 * 3";
    case "sub-left-assoc" "1 - 2 - 3" "1 - 2 - 3";
    case "parens-kept-when-needed" "(1 - 2) * 3" "(1 - 2) * 3";
    case "cmp" "1 < 2" "1 < 2";
    case "cons-right-assoc" "1 :: 2 :: nil" "[1, 2]";
    case "cons-partial" "1 :: x" "1 :: x";
    case "list-literal" "[1, 2, 3]" "[1, 2, 3]";
    case "list-semicolons" "[1; 2; 3]" "[1, 2, 3]";
    case "empty-list" "[]" "nil";
    case "nested-list" "[[1], [2, 3]]" "[[1], [2, 3]]";
    case "if" "if true then 1 else 2" "if true then 1 else 2";
    case "lambda-paper" "lambda(x). x" "fun x -> x";
    case "lambda-backslash" "\\x. x + 1" "fun x -> x + 1";
    case "fun-multi" "fun x y -> x" "fun x y -> x";
    case "and-or" "true and false or true" "true and false or true";
    case "not" "not true" "not true";
    case "prim-car" "car [1]" "car [1]";
    case "prim-null" "null nil" "null nil";
    case "unary-minus-expr" "-(x) + 1" "0 - x + 1";
    equal_case "let-sugar" "let x = 1 in x + 1" "(lambda(x). x + 1) 1";
    equal_case "let-params" "let f a b = a in f" "(lambda(f). f) (fun a b -> a)";
    equal_case "letrec-params" "letrec f x = x in f" "letrec f = lambda(x). x in f";
    equal_case "app-binds-tighter-than-cons" "car x :: cdr x" "(car x) :: (cdr x)";
    equal_case "cmp-of-sums" "x + 1 = y - 2" "(x + 1) = (y - 2)";
    equal_case "minus-number-arg" "f - 1" "(f) - (1)";
    Alcotest.test_case "letrec-structure" `Quick (fun () ->
        match parse "letrec f x = g x; g y = f y in f 1" with
        | A.Letrec (_, [ ("f", A.Lam _); ("g", A.Lam _) ], A.App _) -> ()
        | _ -> Alcotest.fail "unexpected structure");
    Alcotest.test_case "letrec-mutual-scope" `Quick (fun () ->
        (* g is known while parsing f's body: resolves as Var, not prim *)
        match parse "letrec f x = g x; g y = y in f" with
        | A.Letrec (_, [ (_, A.Lam (_, _, A.App (_, A.Var (_, "g"), _))); _ ], _) -> ()
        | _ -> Alcotest.fail "g should be a variable");
    Alcotest.test_case "prim-shadowing" `Quick (fun () ->
        match parse "lambda(car). car x" with
        | A.Lam (_, "car", A.App (_, A.Var (_, "car"), _)) -> ()
        | _ -> Alcotest.fail "bound car must be a variable");
    Alcotest.test_case "prim-unshadowed" `Quick (fun () ->
        match parse "car x" with
        | A.App (_, A.Prim (_, A.Car), _) -> ()
        | _ -> Alcotest.fail "free car must be the primitive");
    Alcotest.test_case "trailing-semi-in-letrec" `Quick (fun () ->
        match parse "letrec f x = x; in f 1" with
        | A.Letrec (_, [ ("f", _) ], _) -> ()
        | _ -> Alcotest.fail "unexpected structure");
    error_case "unclosed-paren" "(1 + 2";
    error_case "missing-in" "letrec f x = x f 1";
    error_case "empty-fun" "fun -> 1";
    error_case "trailing-tokens" "1 + 2 3 ) (";
    error_case "if-missing-else" "if true then 1";
    error_case "list-unterminated" "[1, 2";
    error_case "binding-without-eq" "letrec f x in f";
    Alcotest.test_case "list-of-application" `Quick (fun () ->
        (* [f x] is a one-element list whose element is an application *)
        checkb "equal" true (A.equal (parse "[f x]") (parse "cons (f x) nil")));
  ]

(* ---- pretty round-trips ------------------------------------------------ *)

let pretty_tests =
  let rt name src =
    Alcotest.test_case name `Quick (fun () ->
        let e = parse src in
        checkb name true (A.equal e (roundtrip e)))
  in
  List.map (fun (name, def) -> rt ("roundtrip-" ^ name) (Ex.wrap [ def ] "0")) Ex.all_defs
  @ [
      rt "roundtrip-ps-program" Ex.partition_sort_program;
      rt "roundtrip-map-pair" Ex.map_pair_program;
      rt "roundtrip-rev" Ex.rev_program;
      rt "roundtrip-deep-nest" "[[[1]]] :: [[[2]], [[3]]] :: nil";
      rt "roundtrip-ho" "fun f g x -> f (g x) (fun y -> g y)";
      rt "roundtrip-cond-chain" "if a then if b then 1 else 2 else 3";
      rt "roundtrip-neg" "0 - 1 - (0 - 2)";
      Alcotest.test_case "flat-printing-shows-cons" `Quick (fun () ->
          let s = Format.asprintf "%a" Pretty.pp_flat (parse "[1, 2]") in
          checkb "has ::" true
            (String.length s >= 2
            && (let found = ref false in
                String.iteri (fun i c -> if c = ':' && i + 1 < String.length s && s.[i + 1] = ':' then found := true) s;
                !found)));
    ]

(* ---- types ------------------------------------------------------------- *)

let ty_tests =
  let ilist = Ty.List Ty.Int in
  let iilist = Ty.List ilist in
  [
    Alcotest.test_case "spines" `Quick (fun () ->
        checki "int" 0 (Ty.spines Ty.Int);
        checki "bool" 0 (Ty.spines Ty.Bool);
        checki "int list" 1 (Ty.spines ilist);
        checki "int list list" 2 (Ty.spines iilist);
        checki "fun" 0 (Ty.spines (Ty.Arrow (ilist, ilist)));
        checki "fun list" 1 (Ty.spines (Ty.List (Ty.Arrow (Ty.Int, Ty.Int)))));
    Alcotest.test_case "arity" `Quick (fun () ->
        checki "int" 0 (Ty.arity Ty.Int);
        checki "i->i" 1 (Ty.arity (Ty.Arrow (Ty.Int, Ty.Int)));
        checki "i->i->i" 2 (Ty.arity (Ty.Arrow (Ty.Int, Ty.Arrow (Ty.Int, Ty.Int))));
        (* arity of a list is the arity of its element (Definition 2) *)
        checki "(i->i) list" 1 (Ty.arity (Ty.List (Ty.Arrow (Ty.Int, Ty.Int))));
        checki "returns list" 1 (Ty.arity (Ty.Arrow (Ty.Int, ilist))));
    Alcotest.test_case "shape-collapses-lists" `Quick (fun () ->
        (match Ty.shape iilist with
        | Ty.Sbase -> ()
        | Ty.Sarrow _ | Ty.Sprod _ -> Alcotest.fail "int list list should be base-shaped");
        (match Ty.shape (Ty.List (Ty.Arrow (Ty.Int, Ty.Int))) with
        | Ty.Sarrow _ -> ()
        | Ty.Sbase | Ty.Sprod _ ->
            Alcotest.fail "(int->int) list should be arrow-shaped");
        match Ty.shape (Ty.List (Ty.Prod (Ty.Int, Ty.Int))) with
        | Ty.Sprod _ -> ()
        | Ty.Sbase | Ty.Sarrow _ ->
            Alcotest.fail "(int * int) list should be product-shaped");
    Alcotest.test_case "max-list-depth" `Quick (fun () ->
        checki "simple" 2 (Ty.max_list_depth (Ty.Arrow (iilist, ilist)));
        checki "inner" 3 (Ty.max_list_depth (Ty.Arrow (Ty.List iilist, Ty.Int)));
        checki "none" 0 (Ty.max_list_depth (Ty.Arrow (Ty.Int, Ty.Bool))));
    Alcotest.test_case "pp" `Quick (fun () ->
        checks "list" "int list list" (Ty.to_string iilist);
        checks "arrow" "int -> int -> int"
          (Ty.to_string (Ty.Arrow (Ty.Int, Ty.Arrow (Ty.Int, Ty.Int))));
        checks "arrow-left" "(int -> int) -> int"
          (Ty.to_string (Ty.Arrow (Ty.Arrow (Ty.Int, Ty.Int), Ty.Int)));
        checks "fun-list" "(int -> int) list"
          (Ty.to_string (Ty.List (Ty.Arrow (Ty.Int, Ty.Int)))));
    Alcotest.test_case "result-and-args" `Quick (fun () ->
        let t = Ty.Arrow (Ty.Int, Ty.Arrow (ilist, iilist)) in
        checkb "result" true (Ty.equal iilist (Ty.result_ty t 2));
        checkb "args" true (List.for_all2 Ty.equal [ Ty.Int; ilist ] (Ty.arg_tys t 2)));
  ]

(* ---- inference --------------------------------------------------------- *)

let scheme_str prog name = Format.asprintf "%a" Infer.pp_scheme (Infer.def_scheme prog name)

let infer_program_of_defs defs = Infer.infer_program (Surface.of_string (Ex.wrap defs "0"))

let infer_tests =
  let scheme_case name defs fname expected =
    Alcotest.test_case name `Quick (fun () ->
        checks name expected (scheme_str (infer_program_of_defs defs) fname))
  in
  let error_case name src =
    Alcotest.test_case name `Quick (fun () ->
        match Infer.infer_program (Surface.of_string src) with
        | exception Infer.Error _ -> ()
        | _ -> Alcotest.fail "expected a type error")
  in
  [
    scheme_case "append" [ Ex.append_def ] "append" "'a list -> 'a list -> 'a list";
    scheme_case "split" [ Ex.split_def ] "split"
      "int -> int list -> int list -> int list -> int list list";
    scheme_case "ps" [ Ex.append_def; Ex.split_def; Ex.ps_def ] "ps" "int list -> int list";
    scheme_case "map" [ Ex.map_def ] "map" "('a -> 'b) -> 'a list -> 'b list";
    scheme_case "length" [ Ex.length_def ] "length" "'a list -> int";
    scheme_case "id" [ Ex.id_def ] "id" "'a -> 'a";
    scheme_case "konst" [ Ex.const_def ] "konst" "'a -> 'b -> 'a";
    scheme_case "compose" [ Ex.compose_def ] "compose"
      "('a -> 'b) -> ('c -> 'a) -> 'c -> 'b";
    scheme_case "foldr" [ Ex.foldr_def ] "foldr" "('a -> 'b -> 'b) -> 'b -> 'a list -> 'b";
    scheme_case "rev" [ Ex.append_def; Ex.rev_def ] "rev" "'a list -> 'a list";
    scheme_case "concat" [ Ex.append_def; Ex.concat_def ] "concat" "'a list list -> 'a list";
    scheme_case "create_list" [ Ex.create_list_def ] "create_list" "int -> int list";
    scheme_case "filter" [ Ex.filter_def ] "filter" "('a -> bool) -> 'a list -> 'a list";
    scheme_case "zip" [ Ex.zip_def ] "zip" "'a list -> 'b list -> ('a * 'b) list";
    scheme_case "fsts" [ Ex.unzip_fsts_def ] "fsts" "('a * 'b) list -> 'a list";
    scheme_case "snds" [ Ex.unzip_snds_def ] "snds" "('a * 'b) list -> 'b list";
    scheme_case "swap" [ Ex.swap_def ] "swap" "'a * 'b -> 'b * 'a";
    scheme_case "assoc" [ Ex.assoc_def ] "assoc" "'a -> int -> (int * 'a) list -> 'a";
    scheme_case "tmap" [ Ex.tmap_def ] "tmap" "('a -> 'b) -> 'a tree -> 'b tree";
    scheme_case "tinsert" [ Ex.tinsert_def ] "tinsert" "int -> int tree -> int tree";
    scheme_case "tsum" [ Ex.tsum_def ] "tsum" "int tree -> int";
    scheme_case "mirror" [ Ex.mirror_def ] "mirror" "'a tree -> 'a tree";
    scheme_case "flatten" [ Ex.append_def; Ex.flatten_def ] "flatten"
      "'a tree -> 'a list";
    Alcotest.test_case "main-type" `Quick (fun () ->
        let p = Infer.infer_program (Surface.of_string Ex.partition_sort_program) in
        checks "ps main" "int list" (Ty.to_string (Infer.main_ground p).Tast.ty));
    Alcotest.test_case "simplest-instance" `Quick (fun () ->
        let p = infer_program_of_defs [ Ex.map_def ] in
        checks "map inst" "(int -> int) -> int list -> int list"
          (Ty.to_string (Infer.simplest_instance p "map")));
    Alcotest.test_case "instantiate-at" `Quick (fun () ->
        let p = infer_program_of_defs [ Ex.append_def ] in
        let inst = Ty.Arrow (Ty.List (Ty.List Ty.Int),
                             Ty.Arrow (Ty.List (Ty.List Ty.Int), Ty.List (Ty.List Ty.Int))) in
        let t = Infer.instantiate_def p "append" (Some inst) in
        checks "append@2" "int list list -> int list list -> int list list"
          (Ty.to_string t.Tast.ty));
    Alcotest.test_case "instantiate-not-an-instance" `Quick (fun () ->
        let p = infer_program_of_defs [ Ex.length_def ] in
        match Infer.instantiate_def p "length" (Some Ty.Int) with
        | exception Infer.Error _ -> ()
        | _ -> Alcotest.fail "expected a type error");
    Alcotest.test_case "car-spine-annotation" `Quick (fun () ->
        (* car over int list list is car^2; over int list is car^1 *)
        let e = Infer.infer_expr (parse "lambda(x). car (car x)") in
        Tast.default_ground e;
        let anns = ref [] in
        let rec walk (t : Tast.texpr) =
          (match t.Tast.desc with
          | Tast.Prim Nml.Ast.Car -> anns := Tast.car_spines t :: !anns
          | _ -> ());
          match t.Tast.desc with
          | Tast.App (f, a) -> walk f; walk a
          | Tast.Lam (_, b) -> walk b
          | _ -> ()
        in
        walk e;
        Alcotest.(check (list int)) "annotations" [ 1; 2 ] (List.sort compare !anns));
    Alcotest.test_case "letrec-polymorphic-two-uses" `Quick (fun () ->
        (* length used at int list and at int list list *)
        let src = Ex.wrap [ Ex.length_def ] "length [1] + length [[1]]" in
        let p = Infer.infer_program (Surface.of_string src) in
        checks "main" "int" (Ty.to_string (Infer.main_ground p).Tast.ty));
    Alcotest.test_case "nested-letrec-monomorphic" `Quick (fun () ->
        (* nested letrec is not generalized: two instances clash *)
        let src = "letrec f x = (letrec g y = y in (g 1) + (if g true then 1 else 0)) in f" in
        match Infer.infer_program (Surface.of_string src) with
        | exception Infer.Error _ -> ()
        | _ -> Alcotest.fail "expected a type error (nested letrec is monomorphic)");
    error_case "unbound" "letrec f x = y in f";
    error_case "occurs-check" "letrec f x = x x in f";
    error_case "branch-mismatch" "if true then 1 else false";
    error_case "cond-not-bool" "if 1 then 2 else 3";
    error_case "arith-on-list" "1 + [2]";
    error_case "cons-mismatch" "cons 1 [true]";
    error_case "apply-non-function" "1 2";
    error_case "duplicate-letrec" "letrec f x = x; f y = y in f";
    error_case "car-of-int" "car 1";
    error_case "fst-of-int" "fst 1";
    error_case "label-of-list" "label [1]";
    error_case "node-arity-type" "node 1 2 3";
    error_case "pair-vs-list" "car (mkpair 1 2)";
    Alcotest.test_case "prod-type-printing" `Quick (fun () ->
        checks "prod" "int * bool" (Ty.to_string (Ty.Prod (Ty.Int, Ty.Bool)));
        checks "prod-list" "(int * bool) list"
          (Ty.to_string (Ty.List (Ty.Prod (Ty.Int, Ty.Bool))));
        checks "list-in-prod" "int list * bool"
          (Ty.to_string (Ty.Prod (Ty.List Ty.Int, Ty.Bool)));
        checks "prod-arrow" "int * bool -> int"
          (Ty.to_string (Ty.Arrow (Ty.Prod (Ty.Int, Ty.Bool), Ty.Int)));
        checks "nested-prod" "int * (bool * int)"
          (Ty.to_string (Ty.Prod (Ty.Int, Ty.Prod (Ty.Bool, Ty.Int))));
        checks "tree" "int tree" (Ty.to_string (Ty.Tree Ty.Int));
        checks "tree-of-list" "int list tree" (Ty.to_string (Ty.Tree (Ty.List Ty.Int))));
    Alcotest.test_case "tree-spines" `Quick (fun () ->
        checki "int tree" 1 (Ty.spines (Ty.Tree Ty.Int));
        checki "int list tree" 2 (Ty.spines (Ty.Tree (Ty.List Ty.Int)));
        checki "tree of trees" 2 (Ty.spines (Ty.Tree (Ty.Tree Ty.Int))));
  ]

(* ---- evaluation -------------------------------------------------------- *)

let eval_str src = Format.asprintf "%a" Eval.pp_value (Eval.run (Surface.of_string src))

let eval_tests =
  let case name src expected =
    Alcotest.test_case name `Quick (fun () -> checks name expected (eval_str src))
  in
  let error_case name src =
    Alcotest.test_case name `Quick (fun () ->
        match eval_str src with
        | exception Eval.Runtime_error _ -> ()
        | _ -> Alcotest.fail "expected a runtime error")
  in
  [
    case "arith" "1 + 2 * 3 - 4" "3";
    case "div-mod" "(17 div 5) :: (17 mod 5) :: nil" "[3, 2]";
    case "cmp" "[1 < 2, 2 <= 2, 3 > 4, 4 >= 5, 1 = 1, 1 <> 1]"
      "[true, true, false, false, true, false]";
    case "bool-ops" "[true and false, true or false, not true]" "[false, true, false]";
    case "if" "if 1 < 2 then 10 else 20" "10";
    case "list-ops" "car [1, 2] + car (cdr [1, 2])" "3";
    case "null" "[null nil, null [1]]" "[true, false]";
    case "let" "let x = 5 in x * x" "25";
    case "closure-capture" "let x = 1 in (fun y -> x + y) 2" "3";
    case "higher-order" "(fun f x -> f (f x)) (fun n -> n + 1) 0" "2";
    case "shadowing" "let x = 1 in let x = 2 in x" "2";
    case "partial-prim" "(cons 1) [2]" "[1, 2]";
    case "letrec-fact" "letrec fact n = if n = 0 then 1 else n * fact (n - 1) in fact 6" "720";
    case "letrec-mutual"
      "letrec even n = if n = 0 then true else odd (n - 1); odd n = if n = 0 then false else even (n - 1) in even 10"
      "true";
    case "ps-sorts" Ex.partition_sort_program "[1, 2, 3, 4, 5, 7]";
    case "ps-empty" (Ex.wrap [ Ex.append_def; Ex.split_def; Ex.ps_def ] "ps nil") "[]";
    case "ps-dups" (Ex.wrap [ Ex.append_def; Ex.split_def; Ex.ps_def ] "ps [3, 1, 3, 1]")
      "[1, 1, 3, 3]";
    case "map-pair" Ex.map_pair_program "[[1, 2], [3, 4], [5, 6]]";
    case "rev" Ex.rev_program "[5, 4, 3, 2, 1]";
    case "length" (Ex.wrap [ Ex.length_def ] "length [1, 2, 3]") "3";
    case "sum" (Ex.wrap [ Ex.sum_def ] "sum [1, 2, 3, 4]") "10";
    case "member" (Ex.wrap [ Ex.member_def ] "[member 2 [1, 2], member 5 [1, 2]]")
      "[true, false]";
    case "take-drop"
      (Ex.wrap [ Ex.take_def; Ex.drop_def ] "[take 2 [1, 2, 3], drop 2 [1, 2, 3]]")
      "[[1, 2], [3]]";
    case "nth" (Ex.wrap [ Ex.nth_def ] "nth 1 [10, 20, 30]") "20";
    case "last" (Ex.wrap [ Ex.last_def ] "last [1, 2, 3]") "3";
    case "filter" (Ex.wrap [ Ex.filter_def ] "filter (fun n -> n mod 2 = 0) [1, 2, 3, 4]")
      "[2, 4]";
    case "isort" (Ex.wrap [ Ex.insert_def; Ex.isort_def ] "isort [3, 1, 2]") "[1, 2, 3]";
    case "concat" (Ex.wrap [ Ex.append_def; Ex.concat_def ] "concat [[1], [2, 3], []]")
      "[1, 2, 3]";
    case "create-list" (Ex.wrap [ Ex.create_list_def ] "create_list 4") "[4, 3, 2, 1]";
    case "foldr" (Ex.wrap [ Ex.foldr_def ] "foldr (fun a b -> a + b) 0 [1, 2, 3]") "6";
    case "mkpair" "mkpair 1 true" "(1, true)";
    case "fst-snd" "fst (mkpair 1 2) + snd (mkpair 3 4)" "5";
    case "pair-nested" "mkpair (mkpair 1 2) [3]" "((1, 2), [3])";
    case "zip" (Ex.wrap [ Ex.zip_def ] "zip [1, 2] [true, false]")
      "[(1, true), (2, false)]";
    case "zip-uneven" (Ex.wrap [ Ex.zip_def ] "zip [1] [true, false]") "[(1, true)]";
    case "fsts" (Ex.wrap [ Ex.unzip_fsts_def ] "fsts [mkpair 1 2, mkpair 3 4]") "[1, 3]";
    case "snds" (Ex.wrap [ Ex.unzip_snds_def ] "snds [mkpair 1 2, mkpair 3 4]") "[2, 4]";
    case "swap" (Ex.wrap [ Ex.swap_def ] "swap (mkpair 1 true)") "(true, 1)";
    case "assoc-hit" (Ex.wrap [ Ex.assoc_def ] "assoc 0 2 [mkpair 1 10, mkpair 2 20]") "20";
    case "assoc-miss" (Ex.wrap [ Ex.assoc_def ] "assoc 0 9 [mkpair 1 10]") "0";
    case "leaf" "leaf" "leaf";
    case "node" "node leaf 1 leaf" "(node leaf 1 leaf)";
    case "tree-projections"
      "let t = node (node leaf 1 leaf) 2 leaf in label (left t) + label t" "3";
    case "tinsert-tsum"
      (Ex.wrap [ Ex.tinsert_def; Ex.tsum_def ] "tsum (tinsert 3 (tinsert 1 (tinsert 2 leaf)))")
      "6";
    case "tmap" (Ex.wrap [ Ex.tmap_def ] "tmap (fun n -> n * 10) (node leaf 4 leaf)")
      "(node leaf 40 leaf)";
    case "mirror"
      (Ex.wrap [ Ex.mirror_def ] "mirror (node (node leaf 1 leaf) 2 leaf)")
      "(node leaf 2 (node leaf 1 leaf))";
    case "flatten"
      (Ex.wrap [ Ex.append_def; Ex.flatten_def; Ex.tinsert_def ]
         "flatten (tinsert 2 (tinsert 3 (tinsert 1 leaf)))")
      "[1, 2, 3]";
    case "compose" (Ex.wrap [ Ex.compose_def ] "compose (fun a -> a * 2) (fun b -> b + 1) 5")
      "12";
    error_case "car-nil" "car nil";
    error_case "cdr-nil" "cdr nil";
    error_case "div-zero" "1 div 0";
    error_case "mod-zero" "1 mod 0";
    error_case "letrec-value-recursion" "letrec xs = cons 1 xs in xs";
    error_case "fst-of-list" "fst [1]";
    error_case "label-of-leaf" "label leaf";
    error_case "left-of-leaf" "left leaf";
    Alcotest.test_case "fuel-exhausts" `Quick (fun () ->
        let loop = "letrec f x = f x in f 0" in
        match Eval.run ~fuel:1000 (Surface.of_string loop) with
        | exception Eval.Out_of_fuel -> ()
        | _ -> Alcotest.fail "expected Out_of_fuel");
    Alcotest.test_case "fuel-sufficient" `Quick (fun () ->
        checkb "ok" true
          (Eval.equal_value (Eval.Vint 720)
             (Eval.run ~fuel:100000
                (Surface.of_string "letrec fact n = if n = 0 then 1 else n * fact (n - 1) in fact 6"))));
    Alcotest.test_case "value-conversions" `Quick (fun () ->
        let v = Eval.value_of_int_list [ 1; 2; 3 ] in
        Alcotest.(check (list int)) "roundtrip" [ 1; 2; 3 ] (Eval.int_list_of_value v));
    Alcotest.test_case "apply-value" `Quick (fun () ->
        let p = Surface.of_string (Ex.wrap [ Ex.append_def ] "0") in
        let env = Eval.defs_env p in
        let v =
          Eval.apply_value (Eval.lookup env "append")
            [ Eval.value_of_int_list [ 1 ]; Eval.value_of_int_list [ 2 ] ]
        in
        Alcotest.(check (list int)) "append" [ 1; 2 ] (Eval.int_list_of_value v));
  ]

(* ---- monomorphization ---------------------------------------------------- *)

let mono_tests =
  let copies r name =
    List.length
      (List.filter (fun (d, _, _) -> String.equal d name) r.Nml.Mono.instances)
  in
  [
    Alcotest.test_case "two-instances-two-copies" `Quick (fun () ->
        let src = Ex.wrap [ Ex.length_def ] "length [1] + length [[1]]" in
        let r = Nml.Mono.run (Surface.of_string src) in
        checki "copies" 2 (copies r "length");
        checkb "same value" true
          (Eval.equal_value
             (Eval.run (Surface.of_string src))
             (Eval.run r.Nml.Mono.program)));
    Alcotest.test_case "single-instance-keeps-name" `Quick (fun () ->
        let r = Nml.Mono.run (Surface.of_string Ex.partition_sort_program) in
        checkb "ps kept" true (List.mem_assoc "ps" r.Nml.Mono.program.Surface.defs);
        checki "one ps" 1 (copies r "ps");
        checkb "same value" true
          (Eval.equal_value
             (Eval.run (Surface.of_string Ex.partition_sort_program))
             (Eval.run r.Nml.Mono.program)));
    Alcotest.test_case "unused-defs-kept" `Quick (fun () ->
        let src = Ex.wrap [ Ex.length_def; Ex.sum_def ] "sum [1, 2]" in
        let r = Nml.Mono.run (Surface.of_string src) in
        checkb "length kept" true
          (List.mem_assoc "length" r.Nml.Mono.program.Surface.defs));
    Alcotest.test_case "deep-chain-of-instances" `Quick (fun () ->
        (* concat at two instances drags append along to two instances *)
        let src =
          Ex.wrap
            [ Ex.length_def; Ex.append_def; Ex.concat_def ]
            "length (concat [[1]]) + length (concat [[[2]]])"
        in
        let r = Nml.Mono.run (Surface.of_string src) in
        checkb "several appends" true (copies r "append" >= 2);
        checkb "same value" true
          (Eval.equal_value
             (Eval.run (Surface.of_string src))
             (Eval.run r.Nml.Mono.program)));
    Alcotest.test_case "mono-program-reinfers" `Quick (fun () ->
        let src = Ex.wrap [ Ex.length_def ] "length [1] + length [[1]]" in
        let r = Nml.Mono.run (Surface.of_string src) in
        let p = Nml.Infer.infer_program r.Nml.Mono.program in
        checks "main type" "int" (Ty.to_string (Nml.Infer.main_ground p).Tast.ty));
    Alcotest.test_case "collision-avoided" `Quick (fun () ->
        (* a user definition already named length_m2 must not clash *)
        let src =
          Ex.wrap
            [ Ex.length_def; "length_m2 x = x" ]
            "length [1] + length [[2]] + length_m2 0"
        in
        let r = Nml.Mono.run (Surface.of_string src) in
        let names = List.map fst r.Nml.Mono.program.Surface.defs in
        checki "all distinct" (List.length names)
          (List.length (List.sort_uniq compare names));
        checkb "same value" true
          (Eval.equal_value
             (Eval.run (Surface.of_string src))
             (Eval.run r.Nml.Mono.program)));
  ]

(* ---- property-based ----------------------------------------------------- *)

(* Well-scoped random expressions (no bare operator primitives, fresh
   binder names distinct from primitive names). *)
let gen_expr =
  let open QCheck.Gen in
  let var_name = oneofl [ "x0"; "x1"; "x2"; "x3"; "x4"; "y0"; "y1" ] in
  let rec gen scope n =
    let leaves =
      [
        (3, map (fun i -> A.int i) small_signed_int);
        (1, map (fun b -> A.bool b) bool);
        (1, return A.nil);
        (1, map (fun p -> A.Prim (Nml.Loc.dummy, p)) (oneofl [ A.Cons; A.Car; A.Cdr; A.Null ]));
      ]
      @ (if scope = [] then [] else [ (4, map A.var (oneofl scope)) ])
    in
    if n <= 1 then frequency leaves
    else
      frequency
        (leaves
        @ [
            ( 4,
              let* f = gen scope (n / 2) in
              let* a = gen scope (n / 2) in
              return (A.app f [ a ]) );
            ( 3,
              let* x = var_name in
              let* b = gen (x :: scope) (n - 1) in
              return (A.Lam (Nml.Loc.dummy, x, b)) );
            ( 2,
              let* c = gen scope (n / 3) in
              let* t = gen scope (n / 3) in
              let* f = gen scope (n / 3) in
              return (A.If (Nml.Loc.dummy, c, t, f)) );
            ( 1,
              let* x = var_name in
              let* rhs = gen (x :: scope) (n / 2) in
              let* body = gen (x :: scope) (n / 2) in
              return (A.Letrec (Nml.Loc.dummy, [ (x, rhs) ], body)) );
          ])
  in
  QCheck.Gen.sized_size (QCheck.Gen.int_range 1 40) (gen [])

let arb_expr = QCheck.make ~print:Pretty.to_string gen_expr

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~name:"pretty-parse roundtrip" ~count:500 arb_expr (fun e ->
          A.equal e (P.parse (Pretty.to_string e)));
      QCheck.Test.make ~name:"free-vars of closed examples are empty" ~count:1
        (QCheck.make (QCheck.Gen.return ())) (fun () ->
          List.for_all
            (fun (_, def) -> A.free_vars (P.parse (Ex.wrap [ def ] "0")) = [])
            [ ("append", Ex.append_def); ("map", Ex.map_def); ("id", Ex.id_def) ]);
      QCheck.Test.make ~name:"size positive and stable under roundtrip" ~count:200 arb_expr
        (fun e -> A.size e >= 1 && A.size (P.parse (Pretty.to_string e)) = A.size e);
      QCheck.Test.make ~name:"lexer never loops on printable garbage" ~count:200
        QCheck.(string_gen_of_size (Gen.int_range 0 30) Gen.printable)
        (fun s ->
          match L.tokens s with
          | _ -> true
          | exception L.Error _ -> true
          | exception Nml.Parser.Error _ -> true);
    ]

let () =
  Alcotest.run "nml"
    [
      ("lexer", lexer_tests);
      ("parser", parser_tests);
      ("pretty", pretty_tests);
      ("types", ty_tests);
      ("inference", infer_tests);
      ("evaluation", eval_tests);
      ("monomorphization", mono_tests);
      ("properties", qcheck_tests);
    ]
