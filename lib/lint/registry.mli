(** Rule registry and per-run configuration.

    Rules always run and are cached at their default severities; a
    {!config} is applied to findings at replay time ({!apply}), so one
    cached record serves every combination of [--only] / [--disable] /
    [--severity] flags. *)

val all : Rule.t list
val codes : unit -> string list
val find : string -> Rule.t option

type config = {
  only : string list;  (** when non-empty, run only these codes *)
  disabled : string list;
  severities : (string * Nml.Diagnostic.severity) list;
      (** per-code severity overrides *)
}

val default : config
(** Everything enabled at default severities. *)

val enabled : config -> string -> bool

val apply : config -> Nml.Diagnostic.t list -> Nml.Diagnostic.t list
(** Drops findings for disabled codes and rewrites severities. *)

val sarif_rules : unit -> (string * string) list
(** [(code, summary)] pairs for {!Nml.Diagnostic.to_sarif}'s rule
    metadata. *)
