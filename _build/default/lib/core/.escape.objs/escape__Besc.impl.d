lib/core/besc.ml: Format Int List
