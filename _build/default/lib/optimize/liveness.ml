module A = Nml.Ast
module S = Set.Make (String)

type site = { id : int; branch : (int * bool) list; nil_guarded : bool }

let fv e = S.of_list (A.free_vars e)

(* Does [x] occur free under an inner lambda?  If so its uses cannot be
   ordered statically and nothing is eligible. *)
let rec occurs_under_lambda x = function
  | A.Const _ | A.Prim _ | A.Var _ -> false
  | A.App (_, A.Lam (_, p, b), a) ->
      (* the let sugar: [b] runs exactly once, right after [a] *)
      ((not (String.equal p x)) && occurs_under_lambda x b) || occurs_under_lambda x a
  | A.Lam (_, p, b) -> (not (String.equal p x)) && List.mem x (A.free_vars b)
  | A.App (_, f, a) -> occurs_under_lambda x f || occurs_under_lambda x a
  | A.If (_, c, t, e) ->
      occurs_under_lambda x c || occurs_under_lambda x t || occurs_under_lambda x e
  | A.Letrec (_, bs, body) ->
      (* a letrec binding x itself shadows it everywhere in the group *)
      (not (List.exists (fun (p, _) -> String.equal p x) bs))
      && (List.exists (fun (_, b) -> occurs_under_lambda x b) bs
         || occurs_under_lambda x body)

(* Collects every saturated cons (and tree node) application together
   with its branch path and, when [param] is given, whether the parameter
   is dead after it.  [guarded] is a pair of flags: inside the else
   branch of [null param] / of [isleaf param]. *)
let collect ?param e =
  let sites = ref [] in
  let eligibles = ref [] in
  let nsites = ref [] in
  let neligibles = ref [] in
  let cons_counter = ref 0 in
  let node_counter = ref 0 in
  let if_counter = ref 0 in
  let defeated =
    match param with Some x -> occurs_under_lambda x e | None -> false
  in
  let rec go e ~k ~branch ~under_lambda ~shadowed ~guarded =
    match e with
    | A.Const _ | A.Prim _ | A.Var _ -> ()
    | A.App (_, A.App (_, A.Prim (_, A.Cons), e1), e2) ->
        let id = !cons_counter in
        incr cons_counter;
        let s = { id; branch = List.rev branch; nil_guarded = fst guarded } in
        sites := s :: !sites;
        (match param with
        | Some x
          when (not defeated) && (not under_lambda) && (not shadowed)
               && not (S.mem x k) ->
            eligibles := s :: !eligibles
        | _ -> ());
        go e1 ~k:(S.union (fv e2) k) ~branch ~under_lambda ~shadowed ~guarded;
        go e2 ~k ~branch ~under_lambda ~shadowed ~guarded
    | A.App (_, A.App (_, A.App (_, A.Prim (_, A.Node), e1), e2), e3) ->
        let id = !node_counter in
        incr node_counter;
        let s = { id; branch = List.rev branch; nil_guarded = snd guarded } in
        nsites := s :: !nsites;
        (match param with
        | Some x
          when (not defeated) && (not under_lambda) && (not shadowed)
               && not (S.mem x k) ->
            neligibles := s :: !neligibles
        | _ -> ());
        go e1 ~k:(S.union (fv e2) (S.union (fv e3) k)) ~branch ~under_lambda ~shadowed
          ~guarded;
        go e2 ~k:(S.union (fv e3) k) ~branch ~under_lambda ~shadowed ~guarded;
        go e3 ~k ~branch ~under_lambda ~shadowed ~guarded
    | A.App (_, A.Lam (_, p, b), e') ->
        (* the let sugar: [e'] evaluates first, then [b]; sites inside [b]
           are orderable, unlike a general lambda body.  Children are
           visited in the same order as the generic application case so
           cons numbering stays stable. *)
        let shadowed_b = shadowed || param = Some p in
        go b ~k ~branch ~under_lambda ~shadowed:shadowed_b ~guarded;
        go e' ~k:(S.union (S.remove p (fv b)) k) ~branch ~under_lambda ~shadowed ~guarded
    | A.App (_, f, a) ->
        go f ~k:(S.union (fv a) k) ~branch ~under_lambda ~shadowed ~guarded;
        go a ~k ~branch ~under_lambda ~shadowed ~guarded
    | A.Lam (_, p, b) ->
        let shadowed = shadowed || param = Some p in
        go b ~k:S.empty ~branch ~under_lambda:true ~shadowed ~guarded
    | A.If (_, c, t, e') ->
        let iid = !if_counter in
        incr if_counter;
        (* in the else-branch of [null param] / [isleaf param] the
           parameter is certainly a cell / a node *)
        let is_null_test =
          match (c, param) with
          | A.App (_, A.Prim (_, A.Null), A.Var (_, v)), Some x -> String.equal v x
          | _ -> false
        in
        let is_leaf_test =
          match (c, param) with
          | A.App (_, A.Prim (_, A.Isleaf), A.Var (_, v)), Some x -> String.equal v x
          | _ -> false
        in
        let gn, gt = guarded in
        go c ~k:(S.union (fv t) (S.union (fv e') k)) ~branch ~under_lambda ~shadowed
          ~guarded;
        go t ~k ~branch:((iid, true) :: branch) ~under_lambda ~shadowed
          ~guarded:(gn && not is_null_test, gt && not is_leaf_test);
        go e' ~k ~branch:((iid, false) :: branch) ~under_lambda ~shadowed
          ~guarded:(gn || is_null_test, gt || is_leaf_test)
    | A.Letrec (_, bs, body) ->
        let shadowed =
          shadowed || List.exists (fun (p, _) -> param = Some p) bs
        in
        let rec rhss = function
          | [] -> ()
          | (_, b) :: rest ->
              let later =
                List.fold_left (fun acc (_, b') -> S.union (fv b') acc) (fv body) rest
              in
              go b ~k:(S.union later k) ~branch ~under_lambda ~shadowed ~guarded;
              rhss rest
        in
        rhss bs;
        go body ~k ~branch ~under_lambda ~shadowed ~guarded
  in
  go e ~k:S.empty ~branch:[] ~under_lambda:false ~shadowed:false
    ~guarded:(false, false);
  ( (List.rev !sites, List.rev !eligibles),
    (List.rev !nsites, List.rev !neligibles) )

let cons_sites e = fst (fst (collect e))
let eligible_sites e ~param = snd (fst (collect ~param e))
let node_sites e = fst (snd (collect e))
let eligible_node_sites e ~param = snd (snd (collect ~param e))

let exclusive s1 s2 =
  let rec walk p1 p2 =
    match (p1, p2) with
    | (i1, b1) :: r1, (i2, b2) :: r2 when i1 = i2 ->
        if b1 <> b2 then true else walk r1 r2
    | _ -> false
  in
  walk s1.branch s2.branch

let select sites =
  List.fold_left
    (fun kept s -> if List.for_all (exclusive s) kept then kept @ [ s ] else kept)
    [] sites

let selected_sites e ~param = select (eligible_sites e ~param)
