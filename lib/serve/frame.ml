(* Length-prefixed framing over a file descriptor.

   One frame is an ASCII decimal byte count, a single '\n', and exactly
   that many payload bytes (the JSON-RPC document, which [Nml.Json]
   renders with its own trailing newline).  The length line makes the
   protocol self-synchronizing at frame granularity: a payload that
   fails to parse as JSON is fully consumed, so the connection survives
   it; only a corrupted *length line* (or a declared length beyond the
   limit) loses the frame boundary and forces the reader to drop the
   connection.

   Everything here is deliberately defensive: reads retry on EINTR,
   EOF at a frame boundary is a clean [Closed], EOF inside a frame is
   [Malformed] (the peer vanished mid-frame), and writes report a dead
   peer as [false] instead of raising. *)

type error =
  | Closed  (* EOF at a frame boundary: the peer is simply done *)
  | Malformed of string  (* unrecoverable framing damage: drop the connection *)
  | Oversized of int  (* declared length beyond the limit *)

let pp_error ppf = function
  | Closed -> Format.fprintf ppf "connection closed"
  | Malformed m -> Format.fprintf ppf "malformed frame: %s" m
  | Oversized n -> Format.fprintf ppf "oversized frame: %d bytes declared" n

let default_max = 4 * 1024 * 1024

let rec read_byte fd =
  let b = Bytes.create 1 in
  match Unix.read fd b 0 1 with
  | 0 -> None
  | _ -> Some (Bytes.get b 0)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_byte fd

(* the length line: at most 10 digits then '\n' *)
let read_length fd =
  let rec go acc digits =
    match read_byte fd with
    | None -> if digits = 0 then Error Closed else Error (Malformed "eof in length")
    | Some '\n' ->
        if digits = 0 then Error (Malformed "empty length") else Ok acc
    | Some ('0' .. '9' as c) ->
        if digits >= 10 then Error (Malformed "length line too long")
        else go ((acc * 10) + (Char.code c - Char.code '0')) (digits + 1)
    | Some c -> Error (Malformed (Printf.sprintf "byte %C in length" c))
  in
  go 0 0

let read_exactly fd len =
  let buf = Bytes.create len in
  let rec go off =
    if off >= len then Ok (Bytes.unsafe_to_string buf)
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> Error (Malformed "eof inside frame payload")
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) ->
          Error (Malformed (Unix.error_message e))
  in
  go 0

let read ?(max_len = default_max) fd =
  match read_length fd with
  | Error e -> Error e
  | Ok len -> if len > max_len then Error (Oversized len) else read_exactly fd len

let encode payload = Printf.sprintf "%d\n%s" (String.length payload) payload

let write fd payload =
  let s = encode payload in
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off >= len then true
    else
      match Unix.write fd b off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error _ -> false
  in
  go 0
