module Scc = struct
  let compute ~n ~succs =
    let index = Array.make (max n 1) (-1) in
    let lowlink = Array.make (max n 1) 0 in
    let on_stack = Array.make (max n 1) false in
    let stack = ref [] in
    let next = ref 0 in
    let comps = ref [] in
    let rec strong v =
      index.(v) <- !next;
      lowlink.(v) <- !next;
      incr next;
      stack := v :: !stack;
      on_stack.(v) <- true;
      List.iter
        (fun w ->
          if w >= 0 && w < n then
            if index.(w) < 0 then begin
              strong w;
              lowlink.(v) <- min lowlink.(v) lowlink.(w)
            end
            else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
        (succs v);
      if lowlink.(v) = index.(v) then begin
        let rec pop acc =
          match !stack with
          | w :: rest ->
              stack := rest;
              on_stack.(w) <- false;
              if w = v then w :: acc else pop (w :: acc)
          | [] -> acc
        in
        comps := pop [] :: !comps
      end
    in
    for v = 0 to n - 1 do
      if index.(v) < 0 then strong v
    done;
    (* Tarjan emits a component only after everything reachable from it,
       so reversing the emission accumulator yields dependencies first. *)
    List.rev !comps
end

type t = {
  names : string array;  (* program order *)
  edges : int list array;  (* i references edges.(i) *)
  by_name : (string, int) Hashtbl.t;
}

let of_program (prog : Infer.program) =
  let names = Array.of_list (List.map fst prog.Infer.schemes) in
  let n = Array.length names in
  let by_name = Hashtbl.create n in
  Array.iteri (fun i name -> Hashtbl.replace by_name name i) names;
  let edges =
    Array.map
      (fun name ->
        let tast = Infer.instantiate_def prog name None in
        List.filter_map (fun x -> Hashtbl.find_opt by_name x) (Tast.free_vars tast))
      names
  in
  { names; edges; by_name }

let defs t = Array.to_list t.names

let refs t name =
  match Hashtbl.find_opt t.by_name name with
  | None -> []
  | Some i -> List.map (fun j -> t.names.(j)) t.edges.(i)

let sccs t =
  Scc.compute ~n:(Array.length t.names) ~succs:(fun i -> t.edges.(i))
  |> List.map (List.map (fun i -> t.names.(i)))

let is_recursive t name =
  match Hashtbl.find_opt t.by_name name with
  | None -> false
  | Some i ->
      List.mem i t.edges.(i)
      || List.exists
           (fun comp -> List.length comp > 1 && List.mem i comp)
           (Scc.compute ~n:(Array.length t.names) ~succs:(fun j -> t.edges.(j)))
