(* A-normal form over the annotated storage IR.

   The lowering flattens [Runtime.Ir] expressions so that every
   intermediate value has a name: operands are atoms (constants and
   variables), every computation is let-bound or in result position.
   The storage annotations survive verbatim — an annotated cons site
   becomes a [Calloc] carrying its [Ir.alloc] target, [DCONS]/[DNODE]
   become [Creuse], and arena scopes become [Carena] blocks — so the
   bytecode backend can honor the optimizer's verdicts natively.

   Two invariants matter for the VM and are enforced by {!verify}:

   - primitives are saturated: the lowering eta-expands any
     first-class or under-applied primitive (including annotated cons
     and reuse operators) into an explicit lambda nest, so the VM has
     no partial-primitive value forms at all;

   - a generic application [Capp (f, args)] carries exactly one
     argument unless [f] is a letrec-bound lambda nest of that exact
     arity.  Grouped calls are what the closure converter turns into
     direct known calls; one-at-a-time application reproduces the
     machine's curried evaluation order (a closure body may run
     between consecutive argument evaluations, and that order is
     observable through errors and nontermination). *)

module Ast = Nml.Ast
module Ir = Runtime.Ir

type atom = Aconst of Ast.const | Avar of string

(* allocating constructors; pairs have no annotated sites, so their
   target is always [Ir.Heap] *)
type shape = Scons | Spair | Snode
type reuse = Rcons  (** dcons: cell, head, tail *) | Rnode  (** dnode: cell, left, label, right *)

type cexpr =
  | Catom of atom
  | Cprim of Ast.prim * atom list  (** saturated, non-allocating *)
  | Calloc of Ir.alloc * shape * atom list
  | Creuse of reuse * atom list
  | Capp of atom * atom list
  | Cif of atom * anf * anf
  | Clam of string * anf
  | Carena of Ir.arena_kind * int * anf
  | Cblock of anf  (** a scoped sub-computation (letrec in operand position) *)

and anf =
  | Alet of string * cexpr * anf
  | Aletrec of (string * anf) list * anf
  | Aret of cexpr

let shape_arity = function Scons | Spair -> 2 | Snode -> 3
let reuse_arity = function Rcons -> 3 | Rnode -> 4

(* ---- lowering ------------------------------------------------------------- *)

module SMap = Map.Make (String)

(* the syntactic lambda-nest depth of a letrec right-hand side: the
   arity at which a call to the binding can be compiled flat *)
let rec nest_arity = function Ir.Lam (_, b) -> 1 + nest_arity b | _ -> 0

let spine e =
  let rec go acc = function Ir.App (f, a) -> go (a :: acc) f | h -> (h, acc) in
  go [] e

let apps head args = List.fold_left (fun f a -> Ir.App (f, a)) head args

(* arity of a primitive-family head once saturated *)
let head_needs = function
  | Ir.Prim p -> Some (Ast.prim_arity p)
  | Ir.ConsAt _ -> Some 2
  | Ir.NodeAt _ -> Some 3
  | Ir.Dcons -> Some 3
  | Ir.Dnode -> Some 4
  | _ -> None

let lower (e : Ir.expr) : anf =
  let counter = ref 0 in
  let fresh () =
    let n = !counter in
    incr counter;
    Printf.sprintf "$%d" n
  in
  (* [arities]: letrec-bound lambda nests in scope, for call grouping *)
  let rec exp arities e : anf =
    match e with
    | Ir.If (c, t, f) ->
        atom arities c (fun a -> Aret (Cif (a, exp arities t, exp arities f)))
    | Ir.Letrec (bs, body) ->
        let arities' = letrec_arities arities bs in
        Aletrec
          (List.map (fun (x, rhs) -> (x, exp arities' rhs)) bs, exp arities' body)
    | e -> cexpr arities e (fun ce -> Aret ce)
  and letrec_arities arities bs =
    let cleared =
      List.fold_left (fun m (x, _) -> SMap.remove x m) arities bs
    in
    List.fold_left
      (fun m (x, rhs) ->
        match nest_arity rhs with 0 -> m | n -> SMap.add x n m)
      cleared bs
  and cexpr arities e (k : cexpr -> anf) : anf =
    match e with
    | Ir.Const c -> k (Catom (Aconst c))
    | Ir.Var x -> k (Catom (Avar x))
    | Ir.Lam (x, b) -> k (Clam (x, exp (SMap.remove x arities) b))
    | Ir.If (c, t, f) ->
        atom arities c (fun a -> k (Cif (a, exp arities t, exp arities f)))
    | Ir.Letrec _ -> k (Cblock (exp arities e))
    | Ir.WithArena (kind, sid, b) -> k (Carena (kind, sid, exp arities b))
    | Ir.App _ ->
        let head, args = spine e in
        app_spine arities head args k
    | (Ir.Prim _ | Ir.ConsAt _ | Ir.NodeAt _ | Ir.Dcons | Ir.Dnode) as h ->
        (* a first-class primitive: eta-expand so the value is an
           ordinary closure *)
        cexpr arities (eta h (Option.get (head_needs h))) k
  and eta h needed =
    let xs = List.init needed (fun i -> Printf.sprintf "$p%d" i) in
    List.fold_right
      (fun x acc -> Ir.Lam (x, acc))
      xs
      (apps h (List.map (fun x -> Ir.Var x) xs))
  and atom arities e (k : atom -> anf) : anf =
    cexpr arities e (fun ce ->
        match ce with
        | Catom a -> k a
        | ce ->
            let t = fresh () in
            Alet (t, ce, k (Avar t)))
  and atoms arities es (k : atom list -> anf) : anf =
    match es with
    | [] -> k []
    | e :: rest -> atom arities e (fun a -> atoms arities rest (fun az -> k (a :: az)))
  (* one-at-a-time currying from an already-evaluated function atom:
     preserves the machine's effect order exactly *)
  and chain arities f args k =
    match args with
    | [] -> k (Catom f)
    | [ a ] -> atom arities a (fun va -> k (Capp (f, [ va ])))
    | a :: rest ->
        atom arities a (fun va ->
            let t = fresh () in
            Alet (t, Capp (f, [ va ]), chain arities (Avar t) rest k))
  and app_spine arities head args k =
    match head_needs head with
    | Some needed when List.length args >= needed ->
        let first, rest = take needed args in
        atoms arities first (fun az ->
            let ce =
              match head with
              | Ir.Prim Ast.Cons -> Calloc (Ir.Heap, Scons, az)
              | Ir.Prim Ast.Pair -> Calloc (Ir.Heap, Spair, az)
              | Ir.Prim Ast.Node -> Calloc (Ir.Heap, Snode, az)
              | Ir.ConsAt al -> Calloc (al, Scons, az)
              | Ir.NodeAt al -> Calloc (al, Snode, az)
              | Ir.Dcons -> Creuse (Rcons, az)
              | Ir.Dnode -> Creuse (Rnode, az)
              | Ir.Prim p -> Cprim (p, az)
              | _ -> assert false
            in
            if rest = [] then k ce
            else
              let t = fresh () in
              Alet (t, ce, chain arities (Avar t) rest k))
    | Some _ ->
        (* under-applied primitive: its eta-expansion is a closure and
           the partial application is an ordinary PAP *)
        atom arities (eta head (Option.get (head_needs head))) (fun f ->
            chain arities f args k)
    | None -> (
        match head with
        | Ir.Var f when SMap.mem f arities ->
            let ar = SMap.find f arities in
            if List.length args >= ar then
              let first, rest = take ar args in
              atoms arities first (fun az ->
                  let ce = Capp (Avar f, az) in
                  if rest = [] then k ce
                  else
                    let t = fresh () in
                    Alet (t, ce, chain arities (Avar t) rest k))
            else atom arities head (fun f -> chain arities f args k)
        | _ -> atom arities head (fun f -> chain arities f args k))
  and take n xs =
    if n = 0 then ([], xs)
    else
      match xs with
      | [] -> ([], [])
      | x :: rest ->
          let a, b = take (n - 1) rest in
          (x :: a, b)
  in
  exp SMap.empty e

(* ---- free variables ------------------------------------------------------- *)

module SSet = Set.Make (String)

let fv_atom = function Aconst _ -> SSet.empty | Avar x -> SSet.singleton x
let fv_atoms az = List.fold_left (fun s a -> SSet.union s (fv_atom a)) SSet.empty az

let rec fv_cexpr = function
  | Catom a -> fv_atom a
  | Cprim (_, az) | Calloc (_, _, az) | Creuse (_, az) -> fv_atoms az
  | Capp (f, az) -> SSet.union (fv_atom f) (fv_atoms az)
  | Cif (c, t, f) -> SSet.union (fv_atom c) (SSet.union (fv_anf t) (fv_anf f))
  | Clam (x, b) -> SSet.remove x (fv_anf b)
  | Carena (_, _, b) | Cblock b -> fv_anf b

and fv_anf = function
  | Alet (x, ce, body) -> SSet.union (fv_cexpr ce) (SSet.remove x (fv_anf body))
  | Aletrec (bs, body) ->
      let bound = List.fold_left (fun s (x, _) -> SSet.add x s) SSet.empty bs in
      let inner =
        List.fold_left (fun s (_, rhs) -> SSet.union s (fv_anf rhs)) (fv_anf body) bs
      in
      SSet.diff inner bound
  | Aret ce -> fv_cexpr ce

let free_vars = fv_anf

(* ---- verification --------------------------------------------------------- *)

exception Bad of string

let bad fmt = Format.kasprintf (fun m -> raise (Bad m)) fmt

(* Eta-expansion parameters are the only binders spelled [$pN]; user
   identifiers cannot contain ['$'] and lowering temporaries are bare
   [$N].  The distinction matters for arity: lowering groups calls at
   the {e source} nest arity, and eta-expanding a partial constructor
   in the nest's body appends [$p] lambdas that must not count. *)
let is_eta_param x = String.length x >= 2 && x.[0] = '$' && x.[1] = 'p'

(* the arity at which a verified letrec binding may be called flat: the
   [Clam] nest depth of its right-hand side, not counting eta lambdas
   that follow a user lambda (they belong to the body, not the nest) *)
let rhs_arity a =
  let rec go seen_user = function
    | Aret (Clam (x, b)) when not (is_eta_param x && seen_user) ->
        1 + go (seen_user || not (is_eta_param x)) b
    | _ -> 0
  in
  go false a

let verify (a : anf) : (unit, string) result =
  (* scope: variable -> flat-call arity (0 = not a known nest) *)
  let check_atom scope = function
    | Aconst _ -> ()
    | Avar x -> if not (SMap.mem x scope) then bad "unbound variable %s" x
  in
  let rec check_cexpr scope = function
    | Catom a -> check_atom scope a
    | Cprim (p, az) ->
        (match p with
        | Ast.Cons | Ast.Pair | Ast.Node ->
            bad "allocating primitive %s outside Calloc" (Ast.prim_name p)
        | _ -> ());
        if List.length az <> Ast.prim_arity p then
          bad "primitive %s applied to %d arguments (arity %d)" (Ast.prim_name p)
            (List.length az) (Ast.prim_arity p);
        List.iter (check_atom scope) az
    | Calloc (_, shape, az) ->
        if List.length az <> shape_arity shape then
          bad "allocation with %d operands" (List.length az);
        List.iter (check_atom scope) az
    | Creuse (r, az) ->
        if List.length az <> reuse_arity r then
          bad "reuse with %d operands" (List.length az);
        List.iter (check_atom scope) az
    | Capp (f, az) ->
        check_atom scope f;
        List.iter (check_atom scope) az;
        let n = List.length az in
        if n < 1 then bad "application without arguments";
        if n > 1 then (
          match f with
          | Avar g when SMap.find_opt g scope = Some n -> ()
          | Avar g ->
              bad "grouped call of %s with %d arguments, but its known arity is %d" g
                n
                (Option.value ~default:0 (SMap.find_opt g scope))
          | Aconst _ -> bad "grouped call of a constant")
    | Cif (c, t, f) ->
        check_atom scope c;
        check_anf scope t;
        check_anf scope f
    | Clam (x, b) -> check_anf (SMap.add x 0 scope) b
    | Carena (_, _, b) | Cblock b -> check_anf scope b
  and check_anf scope = function
    | Alet (x, ce, body) ->
        check_cexpr scope ce;
        check_anf (SMap.add x 0 scope) body
    | Aletrec (bs, body) ->
        if bs = [] then bad "empty letrec";
        let names = List.map fst bs in
        if List.length (List.sort_uniq String.compare names) <> List.length names
        then bad "duplicate letrec binders";
        let scope' =
          List.fold_left (fun s (x, rhs) -> SMap.add x (rhs_arity rhs) s) scope bs
        in
        List.iter (fun (_, rhs) -> check_anf scope' rhs) bs;
        check_anf scope' body
    | Aret ce -> check_cexpr scope ce
  in
  match check_anf SMap.empty a with () -> Ok () | exception Bad m -> Error m

(* ---- pretty-printing ------------------------------------------------------ *)

let pp_atom ppf = function
  | Aconst (Ast.Cint n) -> Format.pp_print_int ppf n
  | Aconst (Ast.Cbool b) -> Format.pp_print_bool ppf b
  | Aconst Ast.Cnil -> Format.pp_print_string ppf "nil"
  | Aconst Ast.Cleaf -> Format.pp_print_string ppf "leaf"
  | Avar x -> Format.pp_print_string ppf x

let shape_name = function Scons -> "cons" | Spair -> "pair" | Snode -> "node"
let reuse_name = function Rcons -> "dcons" | Rnode -> "dnode"

let pp_alloc ppf = function
  | Ir.Heap -> ()
  | Ir.Arena i -> Format.fprintf ppf "@@a%d" i
  | Ir.Pretenured -> Format.pp_print_string ppf "@@old"

let pp_atoms ppf az =
  Format.pp_print_list ~pp_sep:Format.pp_print_space pp_atom ppf az

let rec pp_cexpr ppf = function
  | Catom a -> pp_atom ppf a
  | Cprim (p, az) ->
      Format.fprintf ppf "@[<hov 2>(%s@ %a)@]" (Ast.prim_name p) pp_atoms az
  | Calloc (al, shape, az) ->
      Format.fprintf ppf "@[<hov 2>(%s%a@ %a)@]" (shape_name shape) pp_alloc al
        pp_atoms az
  | Creuse (r, az) ->
      Format.fprintf ppf "@[<hov 2>(%s!@ %a)@]" (reuse_name r) pp_atoms az
  | Capp (f, az) -> Format.fprintf ppf "@[<hov 2>(%a@ %a)@]" pp_atom f pp_atoms az
  | Cif (c, t, f) ->
      Format.fprintf ppf "@[<v 2>(if %a@ then %a@ else %a)@]" pp_atom c pp t pp f
  | Clam (x, b) -> Format.fprintf ppf "@[<hov 2>(fun %s ->@ %a)@]" x pp b
  | Carena (k, sid, b) ->
      Format.fprintf ppf "@[<v 2>(%s a%d in@ %a)@]"
        (match k with Ir.Region -> "region" | Ir.Block -> "block")
        sid pp b
  | Cblock b -> Format.fprintf ppf "@[<v 2>(block@ %a)@]" pp b

and pp ppf = function
  | Alet (x, ce, body) ->
      Format.fprintf ppf "@[<v 0>@[<hov 2>let %s =@ %a in@]@ %a@]" x pp_cexpr ce pp
        body
  | Aletrec (bs, body) ->
      let pp_b ppf (x, rhs) = Format.fprintf ppf "@[<hov 2>%s =@ %a@]" x pp rhs in
      Format.fprintf ppf "@[<v 0>letrec@;<1 2>%a@ in@ %a@]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ and ")
           pp_b)
        bs pp body
  | Aret ce -> pp_cexpr ppf ce
