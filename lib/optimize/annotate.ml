module A = Nml.Ast
module Ir = Runtime.Ir
module An = Escape.Analysis

type stack_annotation = {
  func : string;
  arg : int;
  levels : int;
  arena : int;
  loc : Nml.Loc.t;  (** surface position of the annotated literal *)
}

type block_annotation = {
  consumer : string;
  producer : string;
  specialized : string;
  arena : int;
  loc : Nml.Loc.t;  (** surface position of the producer call *)
}

type report = {
  stack : stack_annotation list;
  block : block_annotation list;
  pretenure_sites : int;
      (** cons sites retargeted to [Ir.Pretenured]: escape-doomed literal
          spines and the result spine of main *)
}

(* Conses in result position build the result's top spine: the body
   itself, conditional branches, letrec bodies, the body of an
   immediately applied lambda (the let sugar) and the tail of a
   result-position cons. *)
let rec mark_result ~arena e =
  match e with
  | A.App (_, A.App (_, A.Prim (_, A.Cons), hd), tl) ->
      Ir.App (Ir.App (Ir.ConsAt (Ir.Arena arena), Ir.of_ast hd), mark_result ~arena tl)
  | A.If (_, c, t, f) -> Ir.If (Ir.of_ast c, mark_result ~arena t, mark_result ~arena f)
  | A.Letrec (_, bs, body) ->
      Ir.Letrec (List.map (fun (x, b) -> (x, Ir.of_ast b)) bs, mark_result ~arena body)
  | A.App (_, A.Lam (_, x, b), a) -> Ir.App (Ir.Lam (x, mark_result ~arena b), Ir.of_ast a)
  | e -> Ir.of_ast e

let has_result_cons rhs =
  let _, body = Shape.strip_lams rhs in
  let rec walk = function
    | A.App (_, A.App (_, A.Prim (_, A.Cons), _), _) -> true
    | A.If (_, _, t, f) -> walk t || walk f
    | A.Letrec (_, _, body) -> walk body
    | A.App (_, A.Lam (_, _, b), _) -> walk b
    | _ -> false
  in
  walk body

let specialize ~arena name rhs =
  let params, body = Shape.strip_lams rhs in
  let body = A.subst_var name (name ^ "_blk") body in
  let marked = mark_result ~arena body in
  List.fold_right (fun x acc -> Ir.Lam (x, acc)) params marked

(* Rewrites the top [levels] spine levels of a literal onto [target]. *)
let rec annotate_literal ~target ~levels ~recurse e =
  if levels <= 0 || not (Shape.is_literal_list e) then recurse e
  else
    match e with
    | A.Const (_, A.Cnil) -> Ir.Const A.Cnil
    | A.App (_, A.App (_, A.Prim (_, A.Cons), hd), tl) ->
        Ir.App
          ( Ir.App
              ( Ir.ConsAt target,
                annotate_literal ~target ~levels:(levels - 1) ~recurse hd ),
            annotate_literal ~target ~levels ~recurse tl )
    | _ -> recurse e

(* Conses building the top spine of main's result escape by definition —
   the program result is live until the very end.  Retargeting them to
   [Ir.Pretenured] lets a generational heap tenure them at birth instead
   of promoting them out of the nursery one collection later.  Arena-
   targeted sites are left alone (regions already bypass the nursery). *)
let rec pretenure_result count e =
  match e with
  | Ir.App (Ir.App ((Ir.Prim A.Cons | Ir.ConsAt Ir.Heap), hd), tl) ->
      incr count;
      Ir.App (Ir.App (Ir.ConsAt Ir.Pretenured, hd), pretenure_result count tl)
  | Ir.If (c, t, f) -> Ir.If (c, pretenure_result count t, pretenure_result count f)
  | Ir.Letrec (bs, body) -> Ir.Letrec (bs, pretenure_result count body)
  | Ir.App (Ir.Lam (x, b), a) -> Ir.App (Ir.Lam (x, pretenure_result count b), a)
  | Ir.WithArena (k, i, b) -> Ir.WithArena (k, i, pretenure_result count b)
  | e -> e

let annotate ~stack ~block ?(pretenure = false) t (surface : Nml.Surface.t) =
  let defs = surface.Nml.Surface.defs in
  let def_names = List.map fst defs in
  let stack_anns = ref [] in
  let block_anns = ref [] in
  let pret_sites = ref 0 in
  let specialized = ref [] in
  let next_region = ref 0 in
  let block_arena_of = Hashtbl.create 8 in
  let next_block = ref 1000 in
  let block_arena_for g =
    match Hashtbl.find_opt block_arena_of g with
    | Some a -> a
    | None ->
        let a = !next_block in
        incr next_block;
        Hashtbl.add block_arena_of g a;
        let rhs = List.assoc g defs in
        specialized := (g ^ "_blk", specialize ~arena:a g rhs) :: !specialized;
        a
  in
  let keep_of f args j =
    match An.local t f args ~arg:(j + 1) with
    | v -> An.non_escaping_top_spines v
    | exception (Nml.Infer.Error _ | Invalid_argument _) -> 0
  in
  let rec go e =
    match e with
    | A.Const (_, c) -> Ir.Const c
    | A.Prim (_, p) -> Ir.Prim p
    | A.Var (_, x) -> Ir.Var x
    | A.Lam (_, x, b) -> Ir.Lam (x, go b)
    | A.If (_, c, th, el) -> Ir.If (go c, go th, go el)
    | A.Letrec (_, bs, body) -> Ir.Letrec (List.map (fun (x, b) -> (x, go b)) bs, go body)
    | A.App (_, _, _) -> (
        let head, args = Shape.head_and_args e in
        match head with
        | A.Var (_, f) when List.mem f def_names ->
            let region = ref None in
            let blocks = ref [] in
            let arg_ir j a =
              if (stack || pretenure) && Shape.is_literal_list a then begin
                let keep = keep_of f args j in
                let levels = if stack then min keep (Shape.literal_depth a) else 0 in
                if stack && levels >= 1 then begin
                  let arena =
                    match !region with
                    | Some r -> r
                    | None ->
                        let r = !next_region in
                        incr next_region;
                        region := Some r;
                        r
                  in
                  stack_anns :=
                    { func = f; arg = j + 1; levels; arena; loc = A.loc a }
                    :: !stack_anns;
                  annotate_literal ~target:(Ir.Arena arena) ~levels ~recurse:go a
                end
                else if pretenure && keep = 0 && Shape.literal_depth a >= 1 then begin
                  (* the dual of the stack verdict: this literal's spine
                     escapes into the result, so it will survive every
                     nursery collection — tenure it at birth *)
                  let depth = Shape.literal_depth a in
                  pret_sites := !pret_sites + depth;
                  annotate_literal ~target:Ir.Pretenured ~levels:depth ~recurse:go a
                end
                else go a
              end
              else if block then begin
                match Shape.head_and_args a with
                | A.Var (_, g), (_ :: _ as gargs)
                  when List.mem g def_names
                       && has_result_cons (List.assoc g defs)
                       && keep_of f args j >= 1 ->
                    let arena = block_arena_for g in
                    blocks := (g, arena, A.loc a) :: !blocks;
                    List.fold_left
                      (fun acc ga -> Ir.App (acc, go ga))
                      (Ir.Var (g ^ "_blk"))
                      gargs
                | _ -> go a
              end
              else go a
            in
            let call =
              List.fold_left
                (fun (acc, j) a -> (Ir.App (acc, arg_ir j a), j + 1))
                (Ir.Var f, 0) args
              |> fst
            in
            let call =
              match !region with
              | Some r -> Ir.WithArena (Ir.Region, r, call)
              | None -> call
            in
            List.fold_left
              (fun acc (g, arena, gloc) ->
                block_anns :=
                  {
                    consumer = f;
                    producer = g;
                    specialized = g ^ "_blk";
                    arena;
                    loc = gloc;
                  }
                  :: !block_anns;
                Ir.WithArena (Ir.Block, arena, acc))
              call !blocks
        | _ -> List.fold_left (fun acc a -> Ir.App (acc, go a)) (go head) args)
  in
  let main' = go surface.Nml.Surface.main in
  let main' = if pretenure then pretenure_result pret_sites main' else main' in
  let defs_ir = List.map (fun (n, rhs) -> (n, Ir.of_ast rhs)) defs in
  let all_defs = defs_ir @ List.rev !specialized in
  let prog = match all_defs with [] -> main' | ds -> Ir.Letrec (ds, main') in
  ( prog,
    {
      stack = List.rev !stack_anns;
      block = List.rev !block_anns;
      pretenure_sites = !pret_sites;
    } )
