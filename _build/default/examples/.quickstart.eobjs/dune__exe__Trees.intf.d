examples/trees.mli:
