(* The persistent half of the summary cache, plus the optional
   in-memory tier the analysis server keeps hot.

   Disk layout: [root/ab/abcdef....json] — entries are sharded by the
   first two hex characters of their key so no directory grows
   unboundedly.  Writes go through a temporary file in the same shard
   followed by [Sys.rename]; the staging name embeds the pid, the domain
   id and a process-global counter, so no two writers — in this process
   or another — can ever share a staging file and interleave bytes.
   16 striped in-process mutexes additionally serialize writers from
   different domains of one process.  Entries are content-addressed (the
   key digests everything the payload depends on), so concurrent writers
   of one key write identical bytes and the last rename wins.

   The cache is strictly best-effort: every failure to read, parse or
   decode is a miss, and every failure to write is ignored.  A parse
   failure is retried a few times first — a torn read from a rogue
   writer that updates in place resolves at its next rename — so a
   corrupted or truncated entry can cost a re-solve, never an error.

   The memory tier is a mutex-guarded hash table in front of the disk
   tier; in write-back mode, saves only mark entries dirty and [flush]
   publishes them.  It is always rebuildable from disk: [reload] (one
   entry) and [drop_memory] (wholesale) are the self-heal paths when a
   resident process finds its in-memory copy corrupted. *)

type memory = {
  tbl : (string, Nml.Json.t) Hashtbl.t;
  dirty : (string, unit) Hashtbl.t;
  mlock : Mutex.t;
  write_back : bool;
}

type t = { root : string; locks : Mutex.t array; memory : memory option }

let stripes = 16

let create ?(memory = false) ?(write_back = false) root =
  let memory =
    if memory || write_back then
      Some
        {
          tbl = Hashtbl.create 64;
          dirty = Hashtbl.create 16;
          mlock = Mutex.create ();
          write_back;
        }
    else None
  in
  { root; locks = Array.init stripes (fun _ -> Mutex.create ()); memory }

let root t = t.root

let shard_of key = if String.length key >= 2 then String.sub key 0 2 else "xx"

let path_of t key = Filename.concat (Filename.concat t.root (shard_of key)) (key ^ ".json")

let stripe_of key = (Hashtbl.hash key) land (stripes - 1)

let with_stripe t key f =
  let m = t.locks.(stripe_of key) in
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let with_memory m f =
  Mutex.lock m.mlock;
  Fun.protect ~finally:(fun () -> Mutex.unlock m.mlock) f

let mkdir_p dir =
  (* no recursion needed beyond root/shard; tolerate races with other
     processes creating the same directories *)
  let ensure d = try Sys.mkdir d 0o755 with Sys_error _ -> () in
  ensure (Filename.dirname dir);
  ensure dir

(* ---- disk tier ------------------------------------------------------------- *)

let disk_load t ~key =
  let path = path_of t key in
  let attempt () =
    match In_channel.with_open_bin path In_channel.input_all with
    | contents -> ( try `Ok (Nml.Json.parse contents) with _ -> `Torn)
    | exception _ -> `Missing
  in
  (* A readable-but-unparsable file may be a torn read of an in-place
     (non-atomic) writer; an immediate re-read sees the complete entry
     once its rename lands.  A missing file is a genuine miss. *)
  let rec go retries =
    match attempt () with
    | `Ok j -> Some j
    | `Missing -> None
    | `Torn -> if retries <= 0 then None else go (retries - 1)
  in
  go 3

let tmp_counter = Atomic.make 0

let disk_save t ~key json =
  with_stripe t key @@ fun () ->
  try
    let final = path_of t key in
    mkdir_p (Filename.dirname final);
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d.%d" final (Unix.getpid ())
        (Domain.self () :> int)
        (Atomic.fetch_and_add tmp_counter 1)
    in
    Out_channel.with_open_bin tmp (fun oc ->
        Out_channel.output_string oc (Nml.Json.to_string json));
    Sys.rename tmp final
  with _ -> ()

(* ---- the two-tier interface ------------------------------------------------- *)

let load t ~key =
  match t.memory with
  | None -> disk_load t ~key
  | Some m -> (
      match with_memory m (fun () -> Hashtbl.find_opt m.tbl key) with
      | Some j -> Some j
      | None -> (
          match disk_load t ~key with
          | Some j ->
              with_memory m (fun () -> Hashtbl.replace m.tbl key j);
              Some j
          | None -> None))

let reload t ~key =
  (match t.memory with
  | None -> ()
  | Some m ->
      with_memory m (fun () ->
          Hashtbl.remove m.tbl key;
          Hashtbl.remove m.dirty key));
  load t ~key

let save t ~key json =
  match t.memory with
  | None -> disk_save t ~key json
  | Some m ->
      let defer =
        with_memory m (fun () ->
            Hashtbl.replace m.tbl key json;
            if m.write_back then Hashtbl.replace m.dirty key ();
            m.write_back)
      in
      if not defer then disk_save t ~key json

let flush t =
  match t.memory with
  | None -> 0
  | Some m ->
      (* snapshot and clear under the lock, write outside it; a save
         racing the flush just re-marks its key dirty for the next
         flush *)
      let pending =
        with_memory m (fun () ->
            let ks = Hashtbl.fold (fun k () acc -> k :: acc) m.dirty [] in
            Hashtbl.reset m.dirty;
            List.filter_map
              (fun k ->
                Option.map (fun v -> (k, v)) (Hashtbl.find_opt m.tbl k))
              ks)
      in
      List.iter (fun (key, json) -> disk_save t ~key json) pending;
      List.length pending

let drop_memory t =
  match t.memory with
  | None -> ()
  | Some m ->
      with_memory m (fun () ->
          Hashtbl.reset m.tbl;
          Hashtbl.reset m.dirty)

let corrupt_memory t =
  match t.memory with
  | None -> 0
  | Some m ->
      with_memory m (fun () ->
          let keys = Hashtbl.fold (fun k _ acc -> k :: acc) m.tbl [] in
          List.iter
            (fun k -> Hashtbl.replace m.tbl k (Nml.Json.Str "<corrupted>"))
            keys;
          Hashtbl.reset m.dirty;
          List.length keys)

let memory_entries t =
  match t.memory with
  | None -> 0
  | Some m -> with_memory m (fun () -> Hashtbl.length m.tbl)

let dirty_entries t =
  match t.memory with
  | None -> 0
  | Some m -> with_memory m (fun () -> Hashtbl.length m.dirty)

let cleanup_tmp t =
  let removed = ref 0 in
  let contains_tmp f =
    let rec at i =
      i + 5 <= String.length f
      && (String.sub f i 5 = ".tmp." || at (i + 1))
    in
    at 0
  in
  (try
     Array.iter
       (fun shard ->
         let dir = Filename.concat t.root shard in
         if Sys.is_directory dir then
           Array.iter
             (fun f ->
               if contains_tmp f then begin
                 (try Sys.remove (Filename.concat dir f) with Sys_error _ -> ());
                 incr removed
               end)
             (Sys.readdir dir))
       (Sys.readdir t.root)
   with Sys_error _ -> ());
  !removed
