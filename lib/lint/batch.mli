(** The per-file lint job for [nmlc batch --lint].

    Plugs into {!Cache.Batch.run} via its [~analyze] parameter: same
    exception regime, same result shape, with [findings] populated and
    the cache counters coming from the lint record store. *)

val analyze_file :
  ?config:Registry.config -> store:Cache.Store.t option -> string -> Cache.Batch.result
(** One file, inline: read, {!Engine.run}, render.  Exit code [1] when
    findings survive configuration and suppression, [0] otherwise. *)

val analyze_source :
  ?config:Registry.config ->
  store:Cache.Store.t option ->
  path:string ->
  string ->
  Cache.Batch.result
(** The same job on in-memory source text ([path] only labels
    diagnostics) — the [nmlc serve] entry point. *)
