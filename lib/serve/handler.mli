(** The per-request worker job.

    Dispatches one request to the same per-file entry points
    [nmlc batch] uses ({!Cache.Batch.analyze_file},
    {!Lint.Batch.analyze_file}, ...), so a successful response is
    byte-identical to the batch output for the same input.  Toolchain
    failures of the analyzed program are {e successful} RPCs carrying
    the rendered diagnostics; only server-side conditions become SRV
    errors.  {!Crash} and [Out_of_memory] escape on purpose (fault
    injection) — they exercise the pool's supervision path. *)

exception Crash of string

type t = {
  store : Cache.Store.t option;
  fault : Fault.t;
  quarantined : string -> bool;
}

val quarantine_key : Protocol.request -> string
(** The content-sensitive quarantine identity of a request's input:
    fixing a crashing file lifts its quarantine without a restart. *)

val handle : t -> Pool.job -> Pool.resp
