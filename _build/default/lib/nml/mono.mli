(** Whole-program monomorphization.

    The analysis of the paper "assumes that monomorphic type inference
    has already been performed" (section 3.1); {!Escape.Fixpoint} meets
    that assumption lazily, by re-typing definitions per demanded
    instance.  This pass makes it explicit: it produces an equivalent
    program in which every definition is duplicated once per ground
    instance reachable from the main expression, and every call site
    names its instance's copy.

    Specialized copies are named [f], [f_m2], [f_m3], ... in discovery
    order (the first instance keeps the original name).  Definitions not
    reachable from the main expression are kept at their simplest
    instance under their original name, so the program stays analyzable
    as a library.

    ML's [letrec] is monomorphic inside a recursive group, so the
    instance set is finite; a defensive cap guards against pathological
    growth and raises {!Too_many_instances}. *)

exception Too_many_instances

type result = {
  program : Surface.t;  (** the monomorphic program *)
  instances : (string * string * Ty.t) list;
      (** (original name, specialized name, ground instance) per copy *)
}

val monomorphize : ?max_instances:int -> Infer.program -> result
(** Default cap: 1000 instances. *)

val run : ?max_instances:int -> Surface.t -> result
(** Infers then monomorphizes. *)
