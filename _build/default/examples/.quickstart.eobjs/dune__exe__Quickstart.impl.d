examples/quickstart.ml: Escape Format List Nml Optimize Runtime
