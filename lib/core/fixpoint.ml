(* The escape fixpoint solver, since PR8 an instantiation of the
   analysis-agnostic engine: [Framework.Solver.Make] supplies the
   worklist/round-robin machinery (read frames, SCC condensation,
   selective invalidation, per-solver state), [Espec] supplies the
   escape domain and abstract semantics.  The [engine] and [stats]
   equations re-export the framework's shared types so existing
   pattern-matches ([Fixpoint.Worklist]) and field accesses keep
   compiling unchanged. *)

type engine = Framework.Solver.engine = Worklist | Round_robin

let engine_name = Framework.Solver.engine_name

type stats = Framework.Solver.stats = {
  stats_engine : engine;
  stats_passes : int;
  stats_iterations : int;
  stats_entries : int;
  stats_evaluations : int;
  stats_sccs : int;
  stats_largest_scc : int;
  stats_cache_hits : int;
  stats_cache_misses : int;
  stats_cache_invalidated : int;
  stats_dbound : int;
  stats_capped : bool;
}

include Framework.Solver.Make (Espec)
