lib/optimize/shape.ml: List Nml String
