lib/core/analysis.ml: Besc Dvalue Fixpoint Format List Nml Printf Wfun
