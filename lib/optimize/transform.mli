(** Driver combining the three storage optimizations.

    Given a program, runs the escape analysis once and applies, in order:

    + {e in-place reuse} ({!Reuse}) — rewrites definitions and call sites;
    + {e stack allocation} ({!Stackalloc}) — wraps main-expression calls
      whose literal arguments' spines provably stay inside the call;
    + {e block allocation} ({!Blockalloc}) — specializes producers whose
      result spine dies with its consumer.

    A call site claimed by the reuse substitution is not also
    stack-annotated: a reused cell becomes part of the callee's result,
    so it must not sit in an arena that dies at the call. *)

type options = {
  monomorphize : bool;
      (** specialize definitions per used instance first ({!Nml.Mono}), so
          every copy is analyzed and transformed at its own instance *)
  reuse : bool;
  alias_reuse : bool;
      (** judge call-site freshness with the flow-sensitive sharing
          analysis ({!Framework.Alias}) joined with the Theorem-2
          recursion; off = pure Theorem-2 baseline (only meaningful when
          [reuse] is on) *)
  stack : bool;
  block : bool;
  pretenure : bool;
      (** retarget escape-doomed cons sites (escaping literal spines, the
          result spine of main) to [Ir.Pretenured] — a generational-heap
          hint, semantically a plain heap allocation; off in {!all}
          because it only pays off under [Runtime.Heap.generational] *)
}

val all : options
(** Everything except [pretenure] on. *)

val none : options

type result = {
  ir : Runtime.Ir.expr;  (** the optimized program *)
  reuse_report : Reuse.report option;
  stack_report : Stackalloc.report option;
  block_report : Blockalloc.report option;
  pretenure_sites : int;  (** cons sites retargeted to [Ir.Pretenured] *)
}

val optimize : ?options:options -> Nml.Surface.t -> result
(** Builds a solver internally (after monomorphizing, when enabled). *)

val optimize_with : Escape.Fixpoint.t -> options -> Nml.Surface.t -> result
(** Like {!optimize} with a caller-supplied solver; the [monomorphize]
    option is ignored here (the solver must match the program). *)

val pp_report : Format.formatter -> result -> unit
