lib/core/semantics.ml: Besc Dvalue List Map Nml Probe String
