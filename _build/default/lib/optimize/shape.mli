(** Shared syntactic views used by the optimization passes. *)

val head_and_args : Nml.Ast.expr -> Nml.Ast.expr * Nml.Ast.expr list
(** Decomposes a (possibly nested) application into head and arguments;
    a non-application returns itself and []. *)

val strip_lams : Nml.Ast.expr -> string list * Nml.Ast.expr
(** Peels the outer lambdas of a definition's right-hand side. *)

val is_literal_list : Nml.Ast.expr -> bool
(** A cons chain ending in [nil] (elements arbitrary). *)

val literal_depth : Nml.Ast.expr -> int
(** How many nested spine levels the literal certainly has: a flat
    literal has depth 1; a literal of literals depth 2; a non-literal
    0.  Elements that are not literals bound the depth at 1. *)

val is_suffix_of : string -> Nml.Ast.expr -> bool
(** [x] under any chain of [cdr]/[left]/[right] — a substructure at the
    same spine level. *)

val is_literal_tree : Nml.Ast.expr -> bool
(** A [node]/[leaf] skeleton (labels arbitrary). *)
