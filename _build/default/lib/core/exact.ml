module Eval = Nml.Eval
module Infer = Nml.Infer
module Ty = Nml.Ty
module Ast = Nml.Ast

type observation = {
  esc : Besc.t;
  spines : int;
  escaped_cells : int;
  total_cells : int;
  trackable : bool;
}

(* Physical identity sets over interpreter values.  Observation sizes are
   test sized, so a linear scan is fine. *)
module Pset = struct
  type t = Eval.value list ref

  let create () : t = ref []
  let mem (s : t) v = List.memq v !s
  let add (s : t) v = if not (mem s v) then s := v :: !s
end

(* The spine targets of the interesting argument: every cons cell of its
   top [i]-th spine is paired with its *bottom* index [s - i + 1]; boxed
   structure below the spines — pairs, lists inside pairs, closures —
   gets bottom index 0 (indivisible parts of the object, the paper's
   [<1,0>]).  Closures are tracked as single objects; their captured
   environments are not targets (they may share global bindings that are
   not part of the argument). *)
let collect_targets v ~spines =
  let targets = ref [] in
  let add v bottom = targets := (v, bottom) :: !targets in
  let rec element v =
    match v with
    | Eval.Vcons (hd, tl) | Eval.Vpair (hd, tl) ->
        add v 0;
        element hd;
        element tl
    | Eval.Vnode (l, x, r) ->
        add v 0;
        element l;
        element x;
        element r
    | Eval.Vclos _ | Eval.Vprim _ -> add v 0
    | Eval.Vint _ | Eval.Vbool _ | Eval.Vnil | Eval.Vleaf -> ()
  in
  let rec walk v top =
    if top > spines then element v
    else
      match v with
      | Eval.Vnil | Eval.Vleaf -> ()
      | Eval.Vcons (hd, tl) ->
          add v (spines - top + 1);
          walk hd (top + 1);
          walk tl top
      | Eval.Vnode (l, x, r) ->
          (* node cells sit at the tree's own level; children stay there,
             labels descend *)
          add v (spines - top + 1);
          walk l top;
          walk x (top + 1);
          walk r top
      | Eval.Vpair _ | Eval.Vclos _ | Eval.Vprim _ | Eval.Vint _ | Eval.Vbool _ ->
          element v
  in
  if spines = 0 then element v else walk v 1;
  !targets

(* Everything reachable from a value, looking inside list structure and
   the environments captured by closures and partial applications. *)
let reachable v =
  let seen = Pset.create () in
  let rec walk v =
    if not (Pset.mem seen v) then begin
      Pset.add seen v;
      match v with
      | Eval.Vint _ | Eval.Vbool _ | Eval.Vnil | Eval.Vleaf -> ()
      | Eval.Vcons (hd, tl) | Eval.Vpair (hd, tl) ->
          walk hd;
          walk tl
      | Eval.Vnode (l, x, r) ->
          walk l;
          walk x;
          walk r
      | Eval.Vclos (_, _, env) -> walk_env env
      | Eval.Vprim (_, args) -> List.iter walk args
    end
  and walk_env env =
    (* only the values, and only those already forced *)
    List.iter walk (Eval.env_values env)
  in
  walk v;
  seen

let observe_value_call ?fuel (p : Nml.Surface.t) ~fname ~args ~arg ~spines =
  if arg < 1 || arg > List.length args then
    invalid_arg "Exact.observe_value_call: argument position out of range";
  let env = Eval.defs_env ?fuel p in
  let vf = Eval.lookup env fname in
  let interesting = List.nth args (arg - 1) in
  let targets = collect_targets interesting ~spines in
  let total_cells = List.length targets in
  let result = Eval.apply_value ?fuel vf args in
  let reach = reachable result in
  let escaped = List.filter (fun (cell, _) -> Pset.mem reach cell) targets in
  let esc =
    match escaped with
    | [] -> Besc.zero
    | _ -> Besc.one (List.fold_left (fun acc (_, b) -> max acc b) 0 escaped)
  in
  let trackable =
    total_cells > 0
    ||
    match interesting with
    | Eval.Vint _ | Eval.Vbool _ | Eval.Vnil | Eval.Vleaf -> false
    | _ -> true
  in
  { esc; spines; escaped_cells = List.length escaped; total_cells; trackable }

let observe_call ?fuel (p : Nml.Surface.t) ~fname ~args ~arg =
  if arg < 1 || arg > List.length args then
    invalid_arg "Exact.observe_call: argument position out of range";
  (* type the interesting argument to learn its spine count *)
  let prog = Infer.infer_program p in
  let tenv =
    List.fold_left
      (fun acc (x, s) -> Infer.bind_scheme x s acc)
      Infer.empty_env prog.Infer.schemes
  in
  let targ = Infer.infer_expr ~env:tenv (List.nth args (arg - 1)) in
  Nml.Tast.default_ground targ;
  let spines = Ty.spines targ.Nml.Tast.ty in
  let env = Eval.defs_env ?fuel p in
  let vargs = List.map (fun a -> Eval.eval ?fuel ~env a) args in
  observe_value_call ?fuel p ~fname ~args:vargs ~arg ~spines
