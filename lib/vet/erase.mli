(** Annotation erasure: back from the runtime {!Runtime.Ir} to the
    surface {!Nml.Ast}, forgetting every storage decision.

    The verifier re-derives each annotation's proof obligation against
    the {e unannotated} program, so its escape and sharing queries must
    be phrased over surface expressions.  Erasure maps [cons@arena] back
    to [cons], [DCONS]/[DNODE] back to [cons]/[node], drops arena
    delimiters, and renames the optimizer's derived definitions
    ([f'], [f_blk]) back to the definition they were split from, so that
    the type checker can see through redirected calls. *)

val base : defs:string list -> string -> string
(** [base ~defs n] is the definition [n] was derived from: [n] itself
    when it is in [defs], otherwise [n] stripped of a trailing ['] or
    [_blk] suffix when that stripped name is in [defs]. *)

val expr : defs:string list -> Runtime.Ir.expr -> Nml.Ast.expr
(** Erasure proper.  Locations are synthetic ({!Nml.Loc.dummy}). *)
