examples/partition_sort.mli:
