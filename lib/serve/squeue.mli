(** A bounded, load-shedding queue between connection threads and
    worker domains. *)

type 'a t

val create : cap:int -> 'a t

val push : 'a t -> 'a -> [ `Ok | `Shed of 'a | `Closed ]
(** Pushing onto a full queue admits the newcomer and hands back the
    evicted {e oldest} element; [`Closed] once {!close} was called. *)

val pop : 'a t -> 'a option
(** Blocks until an element is available; [None] once the queue is
    closed {e and} drained. *)

val close : 'a t -> unit
(** Starts the drain: refuses new pushes, wakes all consumers. *)

val length : 'a t -> int
