(** Closure conversion with flat environments and known-call
    optimization.

    Every lambda nest becomes one uncurried function in a global table;
    a closure is the function's id plus a flat array of captured values.
    Letrec-bound nests are {e known}: a grouped application at the
    nest's exact arity compiles to a direct [Kcall] passing the whole
    argument row at once.  Everything else goes through the generic
    one-argument [Kapp], which builds partial applications until the
    callee's arity is reached. *)

type atom = Anf.atom

type cexpr =
  | Katom of atom
  | Kprim of Nml.Ast.prim * atom list
  | Kalloc of Runtime.Ir.alloc * Anf.shape * atom list
  | Kreuse of Anf.reuse * atom list
  | Kclos of int * atom list  (** function id, captures in [free] order *)
  | Kcall of int * atom * atom list
      (** known flat call: function id, the closure (for its
          environment), the full argument row *)
  | Kapp of atom * atom  (** generic curried application *)
  | Kif of atom * kanf * kanf
  | Karena of Runtime.Ir.arena_kind * int * kanf
  | Kblock of kanf

and kanf =
  | Klet of string * cexpr * kanf
  | Kletrec of (string * kanf) list * kanf
  | Kret of cexpr

type fundef = {
  fid : int;
  fname : string;  (** binder name for letrec nests, ["anon"] otherwise *)
  params : string list;  (** uncurried parameter row *)
  free : string list;  (** flat environment layout *)
  body : kanf;
}

type report = {
  functions : int;
  known_call_sites : int;
  generic_app_sites : int;
  closure_sites : int;
  max_env : int;
}

type prog = { funs : fundef array; entry : kanf; report : report }

exception Internal of string

val convert : Anf.anf -> prog
(** Requires its input to satisfy {!Anf.verify}; raises {!Internal} on
    malformed input (a backend bug, not a user error). *)

val pp_report : Format.formatter -> report -> unit
