let value ~esc ty = Dvalue.w_value ~esc ty
let interesting ty = Dvalue.interesting ty
let boring ty = Dvalue.boring ty
