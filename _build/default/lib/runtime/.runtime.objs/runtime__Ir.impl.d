lib/runtime/ir.ml: Format List Nml
