lib/core/probe.mli: Dvalue Nml
