(** Sharded, best-effort JSON store for the summary cache, with an
    optional in-memory tier.

    On disk, entries live at [root/<k[0..1]>/<key>.json]; writes are
    staged in a uniquely-named temporary file (pid, domain and a global
    counter, so concurrent writers — including other {e processes} — can
    never interleave bytes in one staging file) and published with an
    atomic rename.  Reading anything that is missing, truncated or
    unparsable is a miss ([None]); a parse failure is retried a few
    times before giving up, so a torn read from a misbehaving writer
    costs at worst a re-solve, never an error.  Writing never raises —
    a failed write just forfeits the entry.

    With [~memory:true] the store additionally keeps every entry in a
    mutex-guarded hash table in front of the disk tier: loads are served
    from memory when possible and disk hits are promoted.  With
    [~write_back:true] saves only mark the entry dirty in memory;
    {!flush} publishes all dirty entries through the atomic-rename path
    (the server calls it periodically and on drain).  The memory tier is
    strictly a cache of the disk tier plus unflushed writes: {!reload}
    and {!drop_memory} rebuild it from [.nmlc-cache/] contents, which is
    the self-heal path when the in-memory tier is corrupted. *)

type t

val create : ?memory:bool -> ?write_back:bool -> string -> t
(** Wraps a cache root directory (created lazily on first save).
    [memory] (default [false]) enables the in-memory tier;
    [write_back] (default [false], implies [memory]) defers disk writes
    to {!flush}. *)

val root : t -> string

val load : t -> key:string -> Nml.Json.t option
(** Memory tier first, then disk (with the torn-read retry loop); a
    disk hit populates the memory tier. *)

val reload : t -> key:string -> Nml.Json.t option
(** Drops the entry from the memory tier and re-reads it from disk —
    the per-entry self-heal path a caller uses when a loaded entry
    fails to decode (the memory copy may be corrupted while the disk
    copy is fine). *)

val save : t -> key:string -> Nml.Json.t -> unit

val flush : t -> int
(** Publishes every dirty (write-back) entry to disk; returns how many
    were written.  [0] when there is no memory tier or nothing dirty. *)

val drop_memory : t -> unit
(** Empties the memory tier (entries and dirty marks).  Subsequent
    loads rebuild it lazily from disk. *)

val corrupt_memory : t -> int
(** Fault-injection hook ([nmlc serve --inject-fault cache-corrupt]):
    replaces every memory-tier entry with garbage and forgets dirty
    marks, as a crashed or misbehaving resident process would.  Returns
    how many entries were corrupted. *)

val memory_entries : t -> int
val dirty_entries : t -> int

val cleanup_tmp : t -> int
(** Removes leftover staging files ([*.tmp.*]) from every shard — the
    debris a killed writer can leave behind.  Returns how many were
    removed. *)
