lib/nml/examples.ml: Printf String
