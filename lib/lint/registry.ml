(* Rule registry and per-run configuration.

   Rules always *run* and cache their findings at default severities;
   the configuration is applied afterwards, when findings are replayed
   out of the cache, so one cached record serves every combination of
   --only/--disable/--severity flags. *)

module D = Nml.Diagnostic

let all = Rules.all
let codes () = List.map (fun r -> r.Rule.code) all
let find code = List.find_opt (fun r -> r.Rule.code = code) all

type config = {
  only : string list;
  disabled : string list;
  severities : (string * D.severity) list;
}

let default = { only = []; disabled = []; severities = [] }

let enabled config code =
  (config.only = [] || List.mem code config.only)
  && not (List.mem code config.disabled)

let apply config ds =
  List.filter_map
    (fun d ->
      if not (enabled config d.D.code) then None
      else
        match List.assoc_opt d.D.code config.severities with
        | None -> Some d
        | Some s -> Some { d with D.severity = s })
    ds

let sarif_rules () = List.map (fun r -> (r.Rule.code, r.Rule.summary)) all
