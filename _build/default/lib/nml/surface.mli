(** Programs as the paper presents them: a top-level [letrec] group of
    definitions and a main expression (section 3.1, [Pgm]). *)

type t = {
  defs : (string * Ast.expr) list;  (** mutually recursive definitions *)
  main : Ast.expr;
}

val of_expr : Ast.expr -> t
(** Splits a top-level [Letrec]; any other expression becomes a program
    with no definitions. *)

val to_expr : t -> Ast.expr

val of_string : ?file:string -> string -> t
(** Parse then split. *)

val def : t -> string -> Ast.expr
(** Right-hand side of a named definition.  @raise Not_found. *)

val names : t -> string list

val pp : Format.formatter -> t -> unit
