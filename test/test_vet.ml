(* Tests for the independent annotation verifier (lib/vet): the
   optimizer's output audits clean on the corpus and on random programs,
   every mutation point is detected and campaigns are reproducible, and
   hand-broken IRs trigger the intended finding codes. *)

module H = Check.Harness
module V = Vet.Verify
module M = Vet.Mutate
module D = Nml.Diagnostic
module A = Nml.Ast
module Ir = Runtime.Ir

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let optimize src =
  let s = Nml.Surface.of_string src in
  (s, (Optimize.Transform.optimize s).Optimize.Transform.ir)

let audit_src src =
  let s, ir = optimize src in
  V.audit ~source:s ir

let has_code c ds = List.exists (fun d -> String.equal d.D.code c) ds

let codes ds = String.concat " " (List.map (fun d -> d.D.code) ds)

(* ---- agreement: the optimizer's own output audits clean -------------------- *)

let agreement_tests =
  [
    Alcotest.test_case "corpus-audits-clean" `Quick (fun () ->
        List.iter
          (fun (name, src) ->
            let ds, s = audit_src src in
            if ds <> [] then
              Alcotest.failf "%s: unexpected findings: %s" name (codes ds);
            checki (name ^ " findings") 0 s.V.findings)
          H.builtin_corpus);
    Alcotest.test_case "corpus-audits-something" `Quick (fun () ->
        (* the verifier is not vacuous: the corpus carries annotations *)
        let total =
          List.fold_left
            (fun acc (_, src) -> acc + (snd (audit_src src)).V.audited)
            0 H.builtin_corpus
        in
        checkb "audited > 20 obligations" true (total > 20));
  ]

let qcheck_agreement =
  QCheck.Test.make ~count:120 ~name:"random-programs-audit-clean"
    (QCheck.make Gen.gen_any_program ~print:Fun.id)
    (fun src ->
      match audit_src src with
      | ds, _ -> ds = []
      | exception _ -> QCheck.assume_fail ())

(* ---- mutation testing: every point is detected ----------------------------- *)

let mutation_tests =
  [
    Alcotest.test_case "every-corpus-mutant-is-detected" `Quick (fun () ->
        List.iter
          (fun (name, src) ->
            let s, ir = optimize src in
            List.iter
              (fun p ->
                let ds, _ = V.audit ~source:s (Lazy.force p.M.mutant) in
                if not (D.has_errors ds) then
                  Alcotest.failf "%s: surviving mutant: %s" name p.M.label)
              (M.points ~source:s ir))
          H.builtin_corpus);
    Alcotest.test_case "corpus-has-mutation-points" `Quick (fun () ->
        let total =
          List.fold_left
            (fun acc (_, src) ->
              let s, ir = optimize src in
              acc + List.length (M.points ~source:s ir))
            0 H.builtin_corpus
        in
        checkb "some points exist" true (total > 10));
    Alcotest.test_case "campaign-is-deterministic" `Quick (fun () ->
        let src = Nml.Examples.partition_sort_program in
        let s, ir = optimize src in
        let a = M.campaign ~seed:3 ~count:40 ~source:s ir in
        let b = M.campaign ~seed:3 ~count:40 ~source:s ir in
        checki "points" a.M.points b.M.points;
        checki "detected" a.M.detected b.M.detected;
        checkb "survivors" true (a.M.survivors = b.M.survivors));
    Alcotest.test_case "campaign-detects-everything" `Quick (fun () ->
        let src = Nml.Examples.partition_sort_program in
        let s, ir = optimize src in
        let o = M.campaign ~seed:0 ~count:60 ~source:s ir in
        checki "all draws detected" o.M.draws o.M.detected;
        checkb "no survivors" true (o.M.survivors = []));
    Alcotest.test_case "redirect-family-is-not-vacuous" `Quick (fun () ->
        (* the original definition keeps an unprimed recursive call on a
           projection of its own parameter: redirecting it to the
           destructive variant must be an available mutation *)
        let s, ir = optimize Nml.Examples.rev_program in
        let pts = M.points ~source:s ir in
        checkb "has a redirect point" true
          (List.exists
             (fun p ->
               String.length p.M.label >= 8
               && String.equal (String.sub p.M.label 0 8) "redirect")
             pts));
  ]

(* ---- hand-broken IRs trigger the intended codes ---------------------------- *)

(* a copy function the analysis fully understands: parameter consumed,
   result fresh, so a guarded top-level reuse of l is legitimate *)
let copy_src = "letrec f l = if null l then nil else cons (car l) (f (cdr l)) in f [1, 2]"

let int n = Ir.Const (A.Cint n)
let nil = Ir.Const A.Cnil
let app2 f a b = Ir.App (Ir.App (f, a), b)
let dcons src h t = Ir.App (app2 Ir.Dcons src h, t)
let cons h t = app2 (Ir.Prim A.Cons) h t
let car e = Ir.App (Ir.Prim A.Car, e)
let cdr e = Ir.App (Ir.Prim A.Cdr, e)
let null e = Ir.App (Ir.Prim A.Null, e)

let ir_f body =
  Ir.Letrec
    ([ ("f", Ir.Lam ("l", body)) ], Ir.App (Ir.Var "f", cons (int 1) (cons (int 2) nil)))

let audit_ir body =
  let s = Nml.Surface.of_string copy_src in
  fst (V.audit ~source:s (ir_f body))

let guarded body_else = Ir.If (null (Ir.Var "l"), nil, body_else)

let unit_tests =
  [
    Alcotest.test_case "guarded-reuse-is-clean" `Quick (fun () ->
        let ds =
          audit_ir
            (guarded
               (dcons (Ir.Var "l") (car (Ir.Var "l"))
                  (Ir.App (Ir.Var "f", cdr (Ir.Var "l")))))
        in
        checkb ("clean, got: " ^ codes ds) true (ds = []));
    Alcotest.test_case "unguarded-reuse-is-VET011" `Quick (fun () ->
        let ds =
          audit_ir
            (dcons (Ir.Var "l") (car (Ir.Var "l"))
               (Ir.App (Ir.Var "f", cdr (Ir.Var "l"))))
        in
        checkb ("VET011 in: " ^ codes ds) true (has_code "VET011" ds));
    Alcotest.test_case "non-parameter-source-is-VET010" `Quick (fun () ->
        let ds =
          audit_ir (guarded (dcons (Ir.Var "q") (car (Ir.Var "l")) nil))
        in
        checkb ("VET010 in: " ^ codes ds) true (has_code "VET010" ds));
    Alcotest.test_case "read-after-destroy-is-VET012" `Quick (fun () ->
        (* the recycled root cell is read again by the later (cdr l) *)
        let ds =
          audit_ir
            (guarded
               (cons
                  (dcons (Ir.Var "l") (car (Ir.Var "l")) nil)
                  (Ir.App (Ir.Var "f", cdr (Ir.Var "l")))))
        in
        checkb ("VET012 in: " ^ codes ds) true (has_code "VET012" ds));
    Alcotest.test_case "unsaturated-dcons-is-VET017" `Quick (fun () ->
        let ds =
          audit_ir (guarded (app2 Ir.Dcons (Ir.Var "l") (car (Ir.Var "l"))))
        in
        checkb ("VET017 in: " ^ codes ds) true (has_code "VET017" ds));
    Alcotest.test_case "undeclared-arena-is-VET001" `Quick (fun () ->
        let ir =
          Ir.Letrec
            ( [ ("f", Ir.Lam ("l", guarded (cons (car (Ir.Var "l")) nil))) ],
              Ir.App (Ir.Var "f", app2 (Ir.ConsAt (Ir.Arena 7)) (int 1) nil) )
        in
        let s = Nml.Surface.of_string copy_src in
        let ds = fst (V.audit ~source:s ir) in
        checkb ("VET001 in: " ^ codes ds) true (has_code "VET001" ds));
    Alcotest.test_case "reopened-arena-is-VET005" `Quick (fun () ->
        let ir =
          Ir.Letrec
            ( [ ("f", Ir.Lam ("l", guarded (cons (car (Ir.Var "l")) nil))) ],
              Ir.WithArena
                ( Ir.Region,
                  2,
                  Ir.WithArena
                    ( Ir.Region,
                      2,
                      Ir.App (Ir.Var "f", app2 (Ir.ConsAt (Ir.Arena 2)) (int 1) nil)
                    ) ) )
        in
        let s = Nml.Surface.of_string copy_src in
        let ds = fst (V.audit ~source:s ir) in
        checkb ("VET005 in: " ^ codes ds) true (has_code "VET005" ds));
  ]

(* ---- dead-spine heap hints are independently re-derived -------------------- *)

let hint_tests =
  [
    Alcotest.test_case "derivable-hint-audits-clean" `Quick (fun () ->
        (* hd only ever takes the head of l: its spine past the first
           cell is dead, so the advisory hint is re-derivable *)
        let s, ir = optimize "letrec hd l = car l in hd [1, 2]" in
        let ds, sum = V.audit ~hints:[ ("hd", [ 1 ]) ] ~source:s ir in
        checkb ("clean, got: " ^ codes ds) true (ds = []);
        checkb "hint was audited" true (sum.V.audited >= 1));
    Alcotest.test_case "bogus-hint-is-VET018" `Quick (fun () ->
        (* sum null-tests l and forwards its tail through cdr: the spine
           is live, so the hint must be refused *)
        let s, ir =
          optimize
            "letrec sum l = if null l then 0 else car l + sum (cdr l) in \
             sum [1, 2]"
        in
        let ds, _ = V.audit ~hints:[ ("sum", [ 1 ]) ] ~source:s ir in
        checkb ("VET018 in: " ^ codes ds) true (has_code "VET018" ds));
    Alcotest.test_case "hint-for-dropped-def-is-vacuous" `Quick (fun () ->
        (* monomorphization never emits an instance of a name that does
           not exist: nothing to audit, nothing to report *)
        let s, ir = optimize "letrec hd l = car l in hd [1, 2]" in
        let ds, _ = V.audit ~hints:[ ("ghost", [ 1 ]) ] ~source:s ir in
        checkb ("clean, got: " ^ codes ds) true (ds = []));
  ]

(* ---- diagnostics carry usable source locations ----------------------------- *)

let loc_tests =
  [
    Alcotest.test_case "monomorphized-defs-keep-locations" `Quick (fun () ->
        let s = Nml.Surface.of_string ~file:"m.nml" Nml.Examples.map_pair_program in
        let m = Nml.Mono.run s in
        checkb "has instances" true (m.Nml.Mono.instances <> []);
        List.iter
          (fun (name, rhs) ->
            checkb (name ^ " has a real location") false
              (Nml.Loc.is_dummy (A.loc rhs)))
          m.Nml.Mono.program.Nml.Surface.defs);
    Alcotest.test_case "injected-fault-finding-has-a-location" `Quick (fun () ->
        let s = Nml.Surface.of_string ~file:"r.nml" Nml.Examples.rev_program in
        match H.sabotage H.Widen_arena s with
        | None -> Alcotest.fail "no arena to widen in rev_program"
        | Some ir ->
            let ds, _ = V.audit ~source:s ir in
            checkb "has findings" true (D.has_errors ds);
            checkb "some finding is located" true
              (List.exists (fun d -> not (Nml.Loc.is_dummy d.D.loc)) ds));
  ]

let () =
  Alcotest.run "vet"
    [
      ("agreement", agreement_tests);
      ("qcheck", [ QCheck_alcotest.to_alcotest qcheck_agreement ]);
      ("mutation", mutation_tests);
      ("findings", unit_tests);
      ("hints", hint_tests);
      ("locations", loc_tests);
    ]
