(* Tests for the lint engine: a firing and a non-firing witness per
   rule, the dead-parameter analysis, suppression comments, the
   registry's configuration semantics, per-SCC cache identity and
   invalidation, SARIF validated against a vendored minimal schema, and
   the no-dummy-location regression over the builtin corpus. *)

module D = Nml.Diagnostic
module J = Nml.Json

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let lint ?config ?store ?fault src =
  Lint.Engine.run ?config ?store ?fault ~file:"<test>" src

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let replace_once s ~old_part ~new_part =
  let n = String.length s and m = String.length old_part in
  let rec go i =
    if i + m > n then failwith "replace_once: not found"
    else if String.sub s i m = old_part then
      String.sub s 0 i ^ new_part ^ String.sub s (i + m) (n - i - m)
    else go (i + 1)
  in
  go 0

let codes_of o = List.map (fun d -> d.D.code) o.Lint.Engine.findings

let fires code o = List.mem code (codes_of o)

let check_fires src code =
  checkb (Printf.sprintf "%s fires on %s" code src) true (fires code (lint src))

let check_clean src code =
  checkb (Printf.sprintf "%s does not fire on %s" code src) false
    (fires code (lint src))

(* ---- witnesses: one firing and one non-firing program per rule ------------- *)

let unguarded_reuse = "letrec f l = cons (car l) nil in f [1, 2]"
let guarded_reuse =
  "letrec append x y = if null x then y else cons (car x) (append (cdr x) y) \
   in append [1] [2]"
let no_cons = "letrec length l = if null l then 0 else 1 + length (cdr l) in length [1]"
let forwarded = "letrec f n l = if n < 1 then 0 else f (n - 1) l in f 3 [1, 2]"
let forwarded_exempt =
  "letrec f n _l = if n < 1 then 0 else f (n - 1) _l in f 3 [1, 2]"
let unused_param = "letrec f x y = cons (car x) nil in f [1] [2]"
let unused_exempt = "letrec f x _y = cons (car x) nil in f [1] [2]"
let poly_len =
  "letrec len l = if null l then 0 else 1 + len (cdr l) in len [1] + len [[1]]"
let const_cond = "letrec f x = if true then x else cons 1 x in f [1]"

let rule_units =
  [
    Alcotest.test_case "LINT001-missed-reuse" `Quick (fun () ->
        (* eligible cons site, but not nil-guarded: Reuse produces no
           primed version while escape + sharing license one *)
        check_fires unguarded_reuse "LINT001";
        (* the guarded version gets a real Reuse candidate *)
        check_clean guarded_reuse "LINT001";
        (* no constructor site at all: nothing to rewrite *)
        check_clean no_cons "LINT001");
    Alcotest.test_case "LINT002-heap-doomed" `Quick (fun () ->
        (* append's result shares y's spine at every call site *)
        check_fires guarded_reuse "LINT002";
        (* f builds its result fresh: top spine provably unshared *)
        check_clean unguarded_reuse "LINT002");
    Alcotest.test_case "LINT003-fires-only-under-injection" `Quick (fun () ->
        check_clean poly_len "LINT003";
        let o = lint ~fault:Lint.Rule.Corrupt_invariance poly_len in
        checkb "corrupted instance row is caught" true (fires "LINT003" o);
        let d = List.find (fun d -> d.D.code = "LINT003") o.Lint.Engine.findings in
        checkb "violation carries per-instance notes" true
          (List.length d.D.notes >= 2);
        (* a single-instance program gives the audit nothing to compare *)
        let o = lint ~fault:Lint.Rule.Corrupt_invariance no_cons in
        checkb "no multi-instance definition, no audit" false (fires "LINT003" o));
    Alcotest.test_case "LINT003-row-comparison" `Quick (fun () ->
        checkb "agreeing rows" true
          (Lint.Rules.invariant_rows [ (true, 1); (true, 1); (true, 1) ]);
        checkb "escape verdicts differ" false
          (Lint.Rules.invariant_rows [ (true, 1); (false, 1) ]);
        checkb "kept counts differ while escaping" false
          (Lint.Rules.invariant_rows [ (true, 1); (true, 2) ]);
        (* nothing escapes: k = 0 and s_i may vary with the instance *)
        checkb "kept counts may differ when nothing escapes" true
          (Lint.Rules.invariant_rows [ (false, 1); (false, 2) ]));
    Alcotest.test_case "LINT004-dead-spine" `Quick (fun () ->
        check_fires forwarded "LINT004";
        (* traversal is a real use *)
        check_clean no_cons "LINT004";
        (* the underscore convention opts out *)
        check_clean forwarded_exempt "LINT004");
    Alcotest.test_case "LINT005-unused-binding" `Quick (fun () ->
        check_fires unused_param "LINT005";
        check_clean guarded_reuse "LINT005";
        check_clean unused_exempt "LINT005";
        (* a letrec binding unreachable from the body *)
        check_fires "letrec f x = letrec g = cons 1 x in x in f [1]" "LINT005");
    Alcotest.test_case "LINT006-unreachable-branch" `Quick (fun () ->
        check_fires const_cond "LINT006";
        check_clean no_cons "LINT006");
    Alcotest.test_case "LINT008-fires-only-under-injection" `Quick (fun () ->
        (* on a sound solver pair the escape and sharing analyses agree,
           so the cross-check is silent on every real candidate *)
        check_clean guarded_reuse "LINT008";
        let o = lint ~fault:Lint.Rule.Corrupt_sharing guarded_reuse in
        checkb "seeded spine-sharing verdict is caught" true (fires "LINT008" o);
        checkb "the finding is an error" true
          (List.exists
             (fun d -> d.D.code = "LINT008" && d.D.severity = D.Error)
             o.Lint.Engine.findings);
        (* no reuse candidate: nothing to cross-check, even when seeded *)
        let o = lint ~fault:Lint.Rule.Corrupt_sharing no_cons in
        checkb "no candidate, no audit" false (fires "LINT008" o));
    Alcotest.test_case "dead-params-analysis" `Quick (fun () ->
        let surface s = Nml.Surface.of_string s in
        (* pure forwarding, including through recursion *)
        checkb "forwarded param is dead" true
          (List.mem ("f", 2)
             (Lint.Rules.dead_params
                (surface "letrec f n l = if n < 1 then 0 else f (n - 1) l in f 1 [1]")));
        (* mutual forwarding: f passes to g, g back to f — still dead *)
        let mut =
          "letrec f n l = if n < 1 then 0 else g (n - 1) l; \
           g n l = f n l in f 2 [1]"
        in
        let dead = Lint.Rules.dead_params (surface mut) in
        checkb "mutual forwarding stays dead" true
          (List.mem ("f", 2) dead && List.mem ("g", 2) dead);
        (* forwarding into a using definition makes the chain used *)
        let used =
          "letrec len l = if null l then 0 else 1 + len (cdr l); \
           g l = len l in g [1]"
        in
        checkb "forwarding into a traversal is a use" false
          (List.mem ("g", 1) (Lint.Rules.dead_params (surface used)));
        checkb "never-occurring params are LINT005's business" false
          (List.mem ("f", 2)
             (Lint.Rules.dead_params (surface "letrec f x y = x in f 1 2"))));
  ]

(* ---- locations, suppression and configuration -------------------------------- *)

let findings_have_real_locations o =
  List.for_all (fun d -> not (Nml.Loc.is_dummy d.D.loc)) o.Lint.Engine.findings

let suppression_units =
  [
    Alcotest.test_case "parse-directive" `Quick (fun () ->
        checkb "plain comment" true (Lint.Suppress.parse_body " just words " = None);
        checkb "prefixed word is not a directive" true
          (Lint.Suppress.parse_body "nmlc-disabled" = None);
        checkb "bare directive" true (Lint.Suppress.parse_body " nmlc-disable " = Some []);
        checkb "one code" true
          (Lint.Suppress.parse_body "nmlc-disable lint001" = Some [ "LINT001" ]);
        checkb "comma list" true
          (Lint.Suppress.parse_body "nmlc-disable LINT001, LINT005"
          = Some [ "LINT001"; "LINT005" ]));
    Alcotest.test_case "preceding-line-suppresses" `Quick (fun () ->
        let o =
          lint "(* nmlc-disable LINT001 *)\nletrec f l = cons (car l) nil in f [1, 2]"
        in
        checkb "finding gone" false (fires "LINT001" o);
        checki "counted as suppressed" 1 o.Lint.Engine.suppressed);
    Alcotest.test_case "same-line-suppresses" `Quick (fun () ->
        let o =
          lint "letrec f l = cons (car l) nil in f [1, 2] (* nmlc-disable LINT001 *)"
        in
        checkb "finding gone" false (fires "LINT001" o);
        checki "counted as suppressed" 1 o.Lint.Engine.suppressed);
    Alcotest.test_case "other-code-does-not-suppress" `Quick (fun () ->
        let o =
          lint "(* nmlc-disable LINT005 *)\nletrec f l = cons (car l) nil in f [1, 2]"
        in
        checkb "LINT001 stays" true (fires "LINT001" o);
        checki "nothing suppressed" 0 o.Lint.Engine.suppressed);
    Alcotest.test_case "bare-directive-suppresses-everything" `Quick (fun () ->
        let o = lint "(* nmlc-disable *)\nletrec f x y = cons (car x) nil in f [1] [2]" in
        checki "all findings gone" 0 (List.length o.Lint.Engine.findings);
        checkb "all counted" true (o.Lint.Engine.suppressed >= 2));
    Alcotest.test_case "far-away-comment-does-not-suppress" `Quick (fun () ->
        let o =
          lint
            "(* nmlc-disable LINT001 *)\n\n\nletrec f l = cons (car l) nil in f [1, 2]"
        in
        checkb "LINT001 stays" true (fires "LINT001" o));
  ]

let config_units =
  [
    Alcotest.test_case "only-restricts" `Quick (fun () ->
        let config = { Lint.Registry.default with Lint.Registry.only = [ "LINT005" ] } in
        let o = lint ~config unused_param in
        checkb "LINT005 kept" true (fires "LINT005" o);
        checkb "LINT001 filtered" false (fires "LINT001" o));
    Alcotest.test_case "disable-drops" `Quick (fun () ->
        let config =
          { Lint.Registry.default with Lint.Registry.disabled = [ "LINT001" ] }
        in
        let o = lint ~config unused_param in
        checkb "LINT001 gone" false (fires "LINT001" o);
        checkb "LINT005 stays" true (fires "LINT005" o));
    Alcotest.test_case "severity-override" `Quick (fun () ->
        let config =
          {
            Lint.Registry.default with
            Lint.Registry.severities = [ ("LINT002", D.Error) ];
          }
        in
        let o = lint ~config guarded_reuse in
        let d = List.find (fun d -> d.D.code = "LINT002") o.Lint.Engine.findings in
        checkb "note promoted to error" true (d.D.severity = D.Error));
    Alcotest.test_case "default-severities" `Quick (fun () ->
        let o = lint guarded_reuse in
        let d = List.find (fun d -> d.D.code = "LINT002") o.Lint.Engine.findings in
        checkb "LINT002 defaults to note" true (d.D.severity = D.Note));
    Alcotest.test_case "registry-metadata" `Quick (fun () ->
        checki "eight rules" 8 (List.length Lint.Registry.all);
        List.iter
          (fun r ->
            checkb (r.Lint.Rule.code ^ " looks like LINT0xx") true
              (String.length r.Lint.Rule.code = 7
              && String.sub r.Lint.Rule.code 0 4 = "LINT");
            checkb (r.Lint.Rule.code ^ " has a summary") true (r.Lint.Rule.summary <> ""))
          Lint.Registry.all;
        let sorted = List.sort compare (Lint.Registry.codes ()) in
        checkb "codes are unique" true
          (List.length (List.sort_uniq compare sorted) = List.length sorted));
  ]

(* ---- the per-SCC findings cache ---------------------------------------------- *)

let tmp_counter = ref 0

let with_dir prefix f =
  incr tmp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "nmlc-lint-%s-%d-%d" prefix (Unix.getpid ()) !tmp_counter)
  in
  Sys.mkdir d 0o755;
  let rec rm_rf path =
    if Sys.is_directory path then begin
      Array.iter (fun x -> rm_rf (Filename.concat path x)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> try rm_rf d with Sys_error _ -> ()) (fun () -> f d)

let render o = Format.asprintf "%a" (D.render D.Human) o.Lint.Engine.findings

(* several SCCs so partial invalidation is observable: loner is
   independent of the append/rev chain *)
let cache_src =
  "letrec append x y = if null x then y else cons (car x) (append (cdr x) y); \
   rev l = if null l then nil else append (rev (cdr l)) (cons (car l) nil); \
   loner l = cons (car l) nil \
   in rev (append [1] [2])"

let cache_units =
  [
    Alcotest.test_case "warm-run-is-free-and-identical" `Quick (fun () ->
        with_dir "warm" @@ fun dir ->
        let store = Cache.Store.create dir in
        let cold = lint ~store cache_src in
        checkb "cold run misses" true (cold.Lint.Engine.scc_misses > 0);
        checkb "cold run evaluates" true (cold.Lint.Engine.evaluations > 0);
        let warm = lint ~store cache_src in
        checki "warm run evaluates nothing" 0 warm.Lint.Engine.evaluations;
        checki "warm run misses nothing" 0 warm.Lint.Engine.scc_misses;
        checkb "warm run hits" true (warm.Lint.Engine.scc_hits > 0);
        checks "byte-identical findings" (render cold) (render warm);
        checki "same suppressed count" cold.Lint.Engine.suppressed
          warm.Lint.Engine.suppressed);
    Alcotest.test_case "uncached-and-cached-agree" `Quick (fun () ->
        with_dir "agree" @@ fun dir ->
        let store = Cache.Store.create dir in
        let plain = lint cache_src in
        let cached = lint ~store cache_src in
        checks "identical findings" (render plain) (render cached));
    Alcotest.test_case "editing-one-def-respects-the-cone" `Quick (fun () ->
        with_dir "edit" @@ fun dir ->
        let store = Cache.Store.create dir in
        ignore (lint ~store cache_src);
        (* touch loner only: the append/rev records must replay *)
        let edited =
          replace_once cache_src ~old_part:"loner l = cons (car l) nil"
            ~new_part:"loner l = cons (car (cdr l)) nil"
        in
        let o = lint ~store edited in
        checkb "the changed SCC misses" true (o.Lint.Engine.scc_misses > 0);
        checkb "the untouched cone hits" true (o.Lint.Engine.scc_hits > 0));
    Alcotest.test_case "moving-a-definition-invalidates-its-record" `Quick (fun () ->
        with_dir "move" @@ fun dir ->
        let store = Cache.Store.create dir in
        let src = "letrec f l = cons (car l) nil in f [1, 2]" in
        let cold = lint ~store src in
        (* same definitions, shifted by a comment line: escape summaries
           may replay, but lint findings carry locations and must not *)
        let shifted = "(* moved *)\n" ^ src in
        let o = lint ~store shifted in
        checkb "shifted program recomputes" true (o.Lint.Engine.scc_misses > 0);
        let line d = d.D.loc.Nml.Loc.start_pos.Nml.Loc.line in
        checkb "findings follow the text" true
          (List.for_all2
             (fun a b -> line b = line a + 1)
             cold.Lint.Engine.findings o.Lint.Engine.findings));
    Alcotest.test_case "corrupted-records-are-misses" `Quick (fun () ->
        with_dir "corrupt" @@ fun dir ->
        let store = Cache.Store.create dir in
        let cold = lint ~store cache_src in
        (* smash every stored record *)
        Array.iter
          (fun shard ->
            let sdir = Filename.concat dir shard in
            if Sys.is_directory sdir then
              Array.iter
                (fun f ->
                  Out_channel.with_open_text (Filename.concat sdir f) (fun oc ->
                      Out_channel.output_string oc "{\"schema\": \"garbage\"}"))
                (Sys.readdir sdir))
          (Sys.readdir dir);
        let o = lint ~store cache_src in
        checki "nothing replays from garbage" 0 o.Lint.Engine.scc_hits;
        checks "findings recomputed identically" (render cold) (render o));
    Alcotest.test_case "fault-injection-bypasses-the-store" `Quick (fun () ->
        with_dir "fault" @@ fun dir ->
        let store = Cache.Store.create dir in
        ignore (lint ~store poly_len);
        let o = lint ~store ~fault:Lint.Rule.Corrupt_invariance poly_len in
        checkb "LINT003 fires despite a warm cache" true (fires "LINT003" o);
        checki "and reads nothing from it" 0 o.Lint.Engine.scc_hits;
        (* ... and the lie was not persisted *)
        let clean = lint ~store poly_len in
        checkb "store still clean" false (fires "LINT003" clean));
    Alcotest.test_case "config-applies-at-replay" `Quick (fun () ->
        with_dir "replay" @@ fun dir ->
        let store = Cache.Store.create dir in
        ignore (lint ~store cache_src);
        let config =
          { Lint.Registry.default with Lint.Registry.disabled = [ "LINT002" ] }
        in
        let o = lint ~config ~store cache_src in
        checki "replayed from cache" 0 o.Lint.Engine.scc_misses;
        checkb "disabled code filtered out of cached findings" false
          (fires "LINT002" o));
  ]

(* ---- SARIF against the vendored minimal schema -------------------------------- *)

(* A small JSON-Schema interpreter covering exactly the keywords the
   vendored schema uses: type, required, properties, items, enum,
   minItems, minimum.  Unknown keywords are rejected so the schema file
   cannot silently outgrow the interpreter. *)
let rec validate schema json path errors =
  let fail msg = errors := Printf.sprintf "%s: %s" path msg :: !errors in
  let known =
    [ "type"; "required"; "properties"; "items"; "enum"; "minItems"; "minimum" ]
  in
  match schema with
  | J.Obj fields ->
      List.iter
        (fun (k, _) ->
          if not (List.mem k known) then fail ("unknown schema keyword " ^ k))
        fields;
      (match J.member "type" schema with
      | Some (J.Str "object") -> (
          match json with J.Obj _ -> () | _ -> fail "expected an object")
      | Some (J.Str "array") -> (
          match json with J.Arr _ -> () | _ -> fail "expected an array")
      | Some (J.Str "string") -> (
          match json with J.Str _ -> () | _ -> fail "expected a string")
      | Some (J.Str "integer") -> (
          match json with
          | J.Num f when Float.is_integer f -> ()
          | _ -> fail "expected an integer")
      | Some _ -> fail "unsupported type"
      | None -> ());
      (match J.member "enum" schema with
      | Some (J.Arr allowed) ->
          if not (List.mem json allowed) then fail "value not in enum"
      | Some _ -> fail "malformed enum"
      | None -> ());
      (match (J.member "minimum" schema, json) with
      | Some (J.Num m), J.Num v -> if v < m then fail "below minimum"
      | _ -> ());
      (match (J.member "required" schema, json) with
      | Some (J.Arr req), (J.Obj _ as obj) ->
          List.iter
            (function
              | J.Str field ->
                  if J.member field obj = None then
                    fail ("missing required field " ^ field)
              | _ -> fail "malformed required")
            req
      | _ -> ());
      (match (J.member "properties" schema, json) with
      | Some (J.Obj props), (J.Obj fields : J.t) ->
          List.iter
            (fun (field, sub) ->
              match List.assoc_opt field props with
              | Some s -> validate s sub (path ^ "." ^ field) errors
              | None -> ())
            fields
      | _ -> ());
      (match (J.member "items" schema, json) with
      | Some s, J.Arr elems ->
          List.iteri
            (fun i e -> validate s e (Printf.sprintf "%s[%d]" path i) errors)
            elems
      | _ -> ());
      (match (J.member "minItems" schema, json) with
      | Some (J.Num m), J.Arr elems ->
          if List.length elems < int_of_float m then fail "too few items"
      | _ -> ())
  | _ -> fail "malformed schema node"

let sarif_schema =
  lazy
    (let name = "sarif-2.1.0-minimal.json" in
     let path = if Sys.file_exists name then name else Filename.concat "test" name in
     J.parse (In_channel.with_open_text path In_channel.input_all))

let schema_errors json =
  let errors = ref [] in
  validate (Lazy.force sarif_schema) json "$" errors;
  !errors

let check_valid_sarif name json =
  checks name "" (String.concat "; " (schema_errors json))

let sarif_units =
  [
    Alcotest.test_case "findings-validate" `Quick (fun () ->
        let o = lint unused_param in
        check_valid_sarif "two findings"
          (D.to_sarif ~rules:(Lint.Registry.sarif_rules ()) o.Lint.Engine.findings));
    Alcotest.test_case "empty-run-validates" `Quick (fun () ->
        check_valid_sarif "no findings"
          (D.to_sarif ~rules:(Lint.Registry.sarif_rules ()) []));
    Alcotest.test_case "notes-become-related-locations" `Quick (fun () ->
        let o = lint ~fault:Lint.Rule.Corrupt_invariance poly_len in
        let doc = D.to_sarif ~rules:(Lint.Registry.sarif_rules ()) o.Lint.Engine.findings in
        check_valid_sarif "LINT003 with notes" doc;
        checkb "relatedLocations present" true
          (contains (J.to_string doc) "relatedLocations"));
    Alcotest.test_case "LINT008-finding-validates-with-metadata" `Quick (fun () ->
        checkb "LINT008 has a SARIF rule row" true
          (List.mem_assoc "LINT008" (Lint.Registry.sarif_rules ()));
        let o = lint ~fault:Lint.Rule.Corrupt_sharing guarded_reuse in
        let doc = D.to_sarif ~rules:(Lint.Registry.sarif_rules ()) o.Lint.Engine.findings in
        check_valid_sarif "LINT008 finding" doc;
        checkb "LINT008 appears in the document" true
          (contains (J.to_string doc) "LINT008"));
    Alcotest.test_case "validator-rejects-broken-documents" `Quick (fun () ->
        (* prove the validator has teeth: drop a required field, then use
           an illegal level *)
        let o = lint unused_param in
        let doc = D.to_sarif o.Lint.Engine.findings in
        (match doc with
        | J.Obj fields ->
            let without_version = J.Obj (List.remove_assoc "version" fields) in
            checkb "missing version detected" true (schema_errors without_version <> [])
        | _ -> Alcotest.fail "sarif root is not an object");
        let bad_level =
          J.Obj
            [
              ("version", J.Str "2.1.0");
              ( "runs",
                J.Arr
                  [
                    J.Obj
                      [
                        ( "tool",
                          J.Obj [ ("driver", J.Obj [ ("name", J.Str "nmlc") ]) ] );
                        ( "results",
                          J.Arr
                            [
                              J.Obj
                                [
                                  ("level", J.Str "fatal");
                                  ( "message",
                                    J.Obj [ ("text", J.Str "boom") ] );
                                ];
                            ] );
                      ];
                  ] );
            ]
        in
        checkb "illegal level detected" true (schema_errors bad_level <> []));
    Alcotest.test_case "diagnostic-json-roundtrip" `Quick (fun () ->
        let o = lint ~fault:Lint.Rule.Corrupt_invariance poly_len in
        List.iter
          (fun d ->
            match D.of_json (D.to_json d) with
            | Some d' -> checkb "roundtrip" true (d = d')
            | None -> Alcotest.fail "of_json rejected to_json output")
          o.Lint.Engine.findings);
  ]

(* ---- locations: no finding may point nowhere ---------------------------------- *)

let location_units =
  [
    Alcotest.test_case "lint-findings-have-locations-on-the-corpus" `Quick (fun () ->
        List.iter
          (fun (name, src) ->
            let o = lint src in
            checkb (name ^ ": no dummy location") true (findings_have_real_locations o);
            checkb (name ^ ": no synthetic span in JSON") true
              (List.for_all
                 (fun d -> not (contains (J.to_string (D.to_json d)) "<synthetic>"))
                 o.Lint.Engine.findings))
          Check.Harness.builtin_corpus);
    Alcotest.test_case "vet-findings-have-locations-on-the-corpus" `Quick (fun () ->
        List.iter
          (fun (name, src) ->
            let s = Nml.Surface.of_string ~file:name src in
            let ir = (Optimize.Transform.optimize s).Optimize.Transform.ir in
            let ds, _ = Vet.Verify.audit ~source:s ir in
            checkb (name ^ ": vet diagnostics located") true
              (List.for_all (fun d -> not (Nml.Loc.is_dummy d.D.loc)) ds))
          Check.Harness.builtin_corpus);
  ]

(* ---- property tests ------------------------------------------------------------ *)

let prop_units =
  let count = 60 in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count ~name:"lint-never-crashes-and-is-deterministic"
         (QCheck.make Gen.gen_any_program) (fun src ->
           let a = lint src and b = lint src in
           render a = render b && a.Lint.Engine.suppressed = b.Lint.Engine.suppressed));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count ~name:"lint-cache-replay-is-identical"
         (QCheck.make Gen.gen_any_program) (fun src ->
           with_dir "prop" @@ fun dir ->
           let store = Cache.Store.create dir in
           let cold = lint ~store src in
           let warm = lint ~store src in
           render cold = render warm && warm.Lint.Engine.evaluations = 0));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count ~name:"findings-always-carry-real-locations"
         (QCheck.make Gen.gen_any_program) (fun src ->
           findings_have_real_locations (lint src)));
  ]

let () =
  Alcotest.run "lint"
    [
      ("rules", rule_units);
      ("suppression", suppression_units);
      ("config", config_units);
      ("cache", cache_units);
      ("sarif", sarif_units);
      ("locations", location_units);
      ("properties", prop_units);
    ]
