(** The verifier's own interprocedural sharing and spine-liveness
    summaries, derived from the annotated IR by a syntactic fixpoint.

    Zero code is shared with the analysis framework or the optimizer:
    {!Framework.Alias} decides what in-place reuse is sound to emit and
    {!Framework.Spinelive} which heap hints to hand the collector; this
    module independently re-derives both families of claims so
    {!Verify} can audit them ([VET015] through {!Fresh.depth},
    [VET018] for liveness hints). *)

type flags = { dep : bool; sp : bool }
(** May the result contain cells of the argument ([dep]); may such
    cells sit in spine/constructor position of the result ([sp]). *)

type t

val make : base:(string -> string) -> (string * Runtime.Ir.expr) list -> t
(** [make ~base defs] computes summaries for every definition that is
    its own base ([base n = n]); [base] resolves derived names ([f'],
    [f_blk]) back to the definition they were split from (sharing
    semantics are unchanged by the split). *)

val retained : t -> def:string -> arg:int -> flags
(** Sharing summary for the (1-based) argument; top for unknown
    definitions or out-of-range indices. *)

val spine_dead : t -> def:string -> arg:int -> bool
(** Does the verifier re-derive that the argument's spine past the head
    is never needed by the callee?  [false] for unknown definitions —
    an unverifiable hint is a finding, not a pass. *)

val call_unshared :
  t ->
  def:string ->
  arg_spines:int list ->
  result_spines:int ->
  args_fresh:int list ->
  int
(** Deliberately mirrors the licensing clause of the optimizer's alias
    client without sharing its code: if every argument shares nothing
    into the result or is itself fresh to its full (positive) spine
    count, the result is unshared to its full spine count; 0 otherwise. *)
