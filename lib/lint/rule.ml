(* The lint rule interface.

   A rule owns a stable LINT0xx code, default severity and one-line
   summary (surfaced as SARIF rule metadata), plus two checkers:

   - [check_scc] runs once per callgraph SCC and may only report
     evidence derivable from the SCC's members and their (transitive)
     callees — exactly the dependency cone the summary-cache key
     digests, so these findings can be persisted per SCC and
     invalidated with the escape summaries;
   - [check_program] runs once per program for evidence that is global
     by nature (the Theorem-1 self-audit needs the monomorphic
     instances demanded by the whole program; the main expression
     belongs to no SCC).

   Checkers emit findings at their *default* severity; per-run severity
   overrides and enable/disable filtering are applied at render time by
   {!Registry.apply}, never baked into cached records. *)

type fault = No_fault | Corrupt_invariance | Corrupt_sharing

type ctx = {
  surface : Nml.Surface.t;
  prog : Nml.Infer.program;
  solver : Escape.Fixpoint.t Lazy.t;
      (* forced only when a rule actually needs fixpoint results, so a
         fully warm cache run never evaluates an entry *)
  dead_params : (string * int) list Lazy.t;
      (* (definition, 1-based parameter): occurs in the body but is
         never truly used (see {!Rules.dead_params}) *)
  spinelive : Framework.Spinelive.Solver.t Lazy.t;
      (* the spine-liveness solver (LINT007's evidence), forced only
         when a rule needs liveness verdicts *)
  alias : Framework.Alias.Solver.t Lazy.t;
      (* the sharing solver (LINT008's evidence), forced only when a
         rule needs sharing verdicts *)
  fault : fault;
}

type t = {
  code : string;
  title : string;  (* short kebab-case slug, e.g. "missed-reuse" *)
  summary : string;  (* one line, shown in SARIF rule metadata *)
  severity : Nml.Diagnostic.severity;  (* default severity *)
  check_scc : ctx -> members:string list -> Nml.Diagnostic.t list;
  check_program : ctx -> Nml.Diagnostic.t list;
}

let solver ctx = Lazy.force ctx.solver
let no_scc _ ~members:_ = []
let no_program _ = []
