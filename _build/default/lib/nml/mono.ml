exception Too_many_instances

type result = {
  program : Surface.t;
  instances : (string * string * Ty.t) list;
}

module S = Set.Make (String)

let monomorphize ?(max_instances = 1000) (prog : Infer.program) =
  let def_names = List.map fst prog.Infer.schemes in
  let is_def x = List.mem x def_names in
  (* (original, instance key) -> specialized name *)
  let names : (string * string, string) Hashtbl.t = Hashtbl.create 16 in
  let used = ref (S.of_list def_names) in
  let per_def_count : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  (* worklist of (def, ground instance) still to specialize *)
  let pending = Queue.create () in
  let name_for def inst =
    let key = (def, Ty.to_string inst) in
    match Hashtbl.find_opt names key with
    | Some n -> n
    | None ->
        if Hashtbl.length names >= max_instances then raise Too_many_instances;
        let count = 1 + Option.value ~default:0 (Hashtbl.find_opt per_def_count def) in
        Hashtbl.replace per_def_count def count;
        let rec fresh candidate i =
          if S.mem candidate !used then fresh (Printf.sprintf "%s_m%d" def i) (i + 1)
          else candidate
        in
        let n =
          if count = 1 then def else fresh (Printf.sprintf "%s_m%d" def count) (count + 1)
        in
        used := S.add n !used;
        Hashtbl.replace names key n;
        order := (def, n, inst) :: !order;
        Queue.add (def, inst, n) pending;
        n
  in
  (* Converts a ground typed tree back to surface syntax, renaming every
     free occurrence of a definition to its instance's copy. *)
  let rec conv bound (e : Tast.texpr) : Ast.expr =
    match e.Tast.desc with
    | Tast.Const c -> Ast.Const (e.Tast.loc, c)
    | Tast.Prim p -> Ast.Prim (e.Tast.loc, p)
    | Tast.Var x ->
        if (not (S.mem x bound)) && is_def x then
          Ast.Var (e.Tast.loc, name_for x e.Tast.ty)
        else Ast.Var (e.Tast.loc, x)
    | Tast.App (f, a) -> Ast.App (e.Tast.loc, conv bound f, conv bound a)
    | Tast.Lam (x, b) -> Ast.Lam (e.Tast.loc, x, conv (S.add x bound) b)
    | Tast.If (c, t, f) -> Ast.If (e.Tast.loc, conv bound c, conv bound t, conv bound f)
    | Tast.Letrec (bs, body) ->
        let bound = List.fold_left (fun acc (x, _) -> S.add x acc) bound bs in
        Ast.Letrec
          ( e.Tast.loc,
            List.map (fun (x, b) -> (x, conv bound b)) bs,
            conv bound body )
  in
  let specialized = ref [] in
  let drain () =
    while not (Queue.is_empty pending) do
      let def, inst, sname = Queue.pop pending in
      let tast = Infer.instantiate_def prog def (Some inst) in
      specialized := (sname, conv S.empty tast) :: !specialized
    done
  in
  let main_ast = conv S.empty (Infer.main_ground prog) in
  drain ();
  (* keep library definitions nobody reached, at their simplest instance *)
  List.iter
    (fun name ->
      if not (Hashtbl.mem per_def_count name) then begin
        let tast = Infer.instantiate_def prog name None in
        ignore (name_for name tast.Tast.ty);
        drain ()
      end)
    def_names;
  (* emit copies grouped by original definition order, then discovery *)
  let defs =
    List.concat_map
      (fun def ->
        List.filter_map
          (fun (d, n, _) ->
            if String.equal d def then
              Some (n, List.assoc n !specialized)
            else None)
          (List.rev !order))
      def_names
  in
  {
    program = { Surface.defs; main = main_ast };
    instances = List.rev_map (fun (d, n, i) -> (d, n, i)) !order;
  }

let run ?max_instances surface = monomorphize ?max_instances (Infer.infer_program surface)
