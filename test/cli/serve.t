The analysis daemon over stdio: framed JSON-RPC requests on stdin,
framed responses on stdout.

  $ alias nmlc=../../bin/nmlc.exe

  $ cat > ok.nml <<'EOF'
  > letrec
  >   append x y = if null x then y else cons (car x) (append (cdr x) y)
  > in append [1] [2]
  > EOF

A tiny framing helper: ASCII decimal byte count, newline, payload.

  $ frame () { printf '%s\n%s' "${#1}" "$1"; }

One session, four requests: a status probe, an analysis, a well-framed
garbage payload (SRV001, the connection survives it), and a shutdown.
EOF on stdin would drain the server too; the shutdown makes it explicit.

  $ { frame '{"id": 1, "method": "status"}'
  >   frame '{"id": 2, "method": "analyze", "params": {"path": "ok.nml"}}'
  >   frame 'this is not json'
  >   frame '{"id": 3, "method": "shutdown"}'
  > } | nmlc serve --stdio --quiet --cache cache --jobs 1
  515
  {"id": 1, "result": {"schema": "nmlc/serve-status-v1", "workers": 1, "served": 0, "errors": 0, "timeouts": 0, "shed": 0, "malformed": 0, "invalid": 0, "crashes": 0, "respawns": 0, "discarded": 0, "quarantined": 0, "queue_depth": 0, "memory_entries": 0, "dirty_entries": 0, "heap": {"evals": 0, "steps": 0, "heap_allocs": 0, "arena_allocs": 0, "dcons_reuses": 0, "gc_runs": 0, "minor_gcs": 0, "major_gcs": 0, "promoted": 0, "pretenured": 0, "swept": 0, "arena_freed": 0, "regions_reclaimed": 0}, "draining": false}}
  432
  {"id": 2, "result": {"path": "ok.nml", "code": 0, "defs": 1, "findings": 0, "evaluations": 2, "scc_hits": 0, "scc_misses": 1, "output": "append : int list -> int list -> int list\n  G(append, 1) = <1,0>  -- no spine of argument 1 escapes, only elements may\n  G(append, 2) = <1,1>  -- top 0 of 1 spine(s) never escape; bottom 1 may escape\n  sharing: top 0 of the result's 1 spine(s) are unshared in any call\n\n\n", "errors": ""}}
  95
  {"error": {"code": "SRV001", "message": "unparsable JSON payload: expected true at offset 0"}}
  40
  {"id": 3, "result": {"stopping": true}}

The drain flushed the write-back tier: a second server over the same
cache directory serves the same analysis warm (zero evaluations,
byte-identical report).

  $ frame '{"id": 1, "method": "analyze", "params": {"path": "ok.nml"}}' \
  >   | nmlc serve --stdio --quiet --cache cache --jobs 1 | grep -c '"evaluations": 0'
  1

A request for a file that does not exist is an in-band user error (a
successful RPC whose result carries the diagnostic), not a server
failure.

  $ frame '{"id": 1, "method": "analyze", "params": {"path": "missing.nml"}}' \
  >   | nmlc serve --stdio --quiet --no-cache | grep -o '"code": 1'
  "code": 1

A request with neither path nor source is refused with SRV002; an
unknown method likewise.

  $ { frame '{"id": 1, "method": "analyze"}'
  >   frame '{"id": 2, "method": "transmogrify"}'
  > } | nmlc serve --stdio --quiet --no-cache | grep -o 'SRV00.'
  SRV002
  SRV002

An oversized frame is refused with SRV003 (and costs the connection,
which ends the stdio session).

  $ printf '999999999\n' | nmlc serve --stdio --quiet --no-cache | grep -o 'SRV003'
  SRV003

A corrupted length line is refused with SRV001.

  $ printf 'not-a-length\n' | nmlc serve --stdio --quiet --no-cache | grep -o 'SRV001'
  SRV001

The lifecycle log (without --quiet) narrates the drain.

  $ frame '{"id": 1, "method": "shutdown"}' \
  >   | nmlc serve --stdio --cache cache 2>&1 >/dev/null
  serve: draining
  serve: drained (1 served, 0 error(s), 0 timeout(s), 0 crash(es), 0 summary(ies) flushed)

Deadlines: with the slow-request fault armed, a 10 ms deadline expires
and the in-flight analysis is abandoned with SRV004.

  $ frame '{"id": 1, "method": "analyze", "params": {"path": "ok.nml", "deadline_ms": 10}}' \
  >   | nmlc serve --stdio --quiet --no-cache --inject-fault slow-request | grep -o 'SRV004'
  SRV004

The worker-crash fault: a boom-marked request kills its worker domain;
the supervisor answers SRV006, quarantines the input, and the next
boom-marked send of the same input is refused with SRV007 — while an
ordinary request for the same file is served normally by the respawned
worker.

  $ { frame '{"id": 1, "method": "analyze", "params": {"path": "ok.nml", "boom": true}}'
  >   frame '{"id": 2, "method": "analyze", "params": {"path": "ok.nml", "boom": true}}'
  >   frame '{"id": 3, "method": "analyze", "params": {"path": "ok.nml"}}'
  > } | nmlc serve --stdio --quiet --no-cache --jobs 1 --inject-fault worker-crash \
  >   | grep -o 'SRV006\|SRV007\|"code": 0'
  SRV006
  SRV007
  "code": 0
