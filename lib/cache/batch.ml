(* Parallel batch analysis: every input file is parsed, inferred and
   analyzed (through the summary cache when one is given) independently,
   on a pool of [Domain.spawn] workers pulling file indices from a shared
   atomic counter.  Workers share nothing but the striped store and the
   results array — each solver owns its private [Dvalue.state] — and
   every result carries its rendered output, so the driver can print a
   merged report in input order no matter which domain finished first.

   The pool is analysis-agnostic: [run ~analyze] distributes any
   per-file job with the same result shape (the lint engine rides it
   via [Lint.Batch]); the default job is the escape-summary analysis.

   Robustness: the per-file jobs protect themselves ([protect]), but the
   pool additionally guards every callback invocation, so an exception
   that escapes a job — a buggy callback, an asynchronous exception, a
   test-injected crash — becomes that one file's internal-error result
   instead of killing the worker domain and aborting the whole batch.
   A worker domain that dies anyway (or a [~stop] interruption) leaves
   its unprocessed slots to be reported as such, never as successes. *)

type result = {
  path : string;
  output : string;  (* what the corresponding subcommand prints on stdout *)
  errors : string;  (* ... and on stderr *)
  code : int;  (* 0 clean, 1 diagnostics/user error, 124 internal, 130 interrupted *)
  defs : int;
  findings : int;  (* lint findings (0 in analyze mode) *)
  evaluations : int;
  scc_hits : int;
  scc_misses : int;
}

let render_diag ~code loc msg =
  Format.asprintf "%a@."
    (Nml.Diagnostic.render Nml.Diagnostic.Human)
    [ Nml.Diagnostic.error ~code loc msg ]

let failed path ~code ~errors =
  {
    path;
    output = "";
    errors;
    code;
    defs = 0;
    findings = 0;
    evaluations = 0;
    scc_hits = 0;
    scc_misses = 0;
  }

(* The per-file part of the driver's exception regime, with the rendered
   text captured instead of printed.  Every analysis callback runs under
   it so one bad file never takes down the pool. *)
let protect path f =
  match f () with
  | r -> r
  | exception Nml.Lexer.Error (loc, msg) ->
      failed path ~code:1 ~errors:(render_diag ~code:"LEX001" loc msg)
  | exception Nml.Parser.Error (loc, msg) ->
      failed path ~code:1 ~errors:(render_diag ~code:"PARSE001" loc msg)
  | exception Nml.Infer.Error (loc, msg) ->
      failed path ~code:1 ~errors:(render_diag ~code:"TYPE001" loc msg)
  | exception Sys_error msg ->
      failed path ~code:1 ~errors:(Printf.sprintf "error: %s\n" msg)
  | exception (Failure msg | Invalid_argument msg) ->
      failed path ~code:1 ~errors:(Printf.sprintf "error: %s\n" msg)
  | exception e ->
      failed path ~code:124
        ~errors:(Printf.sprintf "nmlc: internal error: %s\n" (Printexc.to_string e))

exception Injected_crash of string

let () =
  Printexc.register_printer (function
    | Injected_crash path -> Some (Printf.sprintf "injected crash on %s" path)
    | _ -> None)

(* Test hooks for the robustness story, deliberately placed *outside*
   [protect]: NMLC_TEST_CRASH_FILE=<basename> raises through the job so
   the pool-level guard must catch it, NMLC_TEST_SLOW_MS=<ms> stalls
   every job so a signal can land mid-batch. *)
let test_hooks path =
  (match Sys.getenv_opt "NMLC_TEST_SLOW_MS" with
  | Some ms -> (
      match int_of_string_opt ms with
      | Some ms when ms > 0 -> (
          try Unix.sleepf (float_of_int ms /. 1000.)
          with Unix.Unix_error (Unix.EINTR, _, _) -> ())
      | _ -> ())
  | None -> ());
  match Sys.getenv_opt "NMLC_TEST_CRASH_FILE" with
  | Some base when String.equal (Filename.basename path) base ->
      raise (Injected_crash path)
  | _ -> ()

let of_source ?store ~path src =
  let prog = Nml.Infer.infer_program (Nml.Surface.of_string ~file:path src) in
  let o = Summary.analyze ?store prog in
  {
    path;
    output = Format.asprintf "%a@." Escape.Report.pp_program_summaries o.Summary.summaries;
    errors = "";
    code = 0;
    defs = List.length o.Summary.summaries;
    findings = 0;
    evaluations = o.Summary.evaluations;
    scc_hits = o.Summary.scc_hits;
    scc_misses = o.Summary.scc_misses;
  }

let analyze_source ?store ~path src = protect path (fun () -> of_source ?store ~path src)

let analyze_file ?store path =
  test_hooks path;
  protect path (fun () ->
      let src = In_channel.with_open_text path In_channel.input_all in
      of_source ?store ~path src)

let interrupted_result path =
  failed path ~code:130 ~errors:""

let run ?analyze ?store ?(stop = fun () -> false) ~jobs paths =
  let analyze =
    match analyze with
    | Some f -> f
    | None -> fun ~store path -> analyze_file ?store path
  in
  (* the pool-level guard: a job that raises through its own protection
     still only costs its own slot *)
  let safe_analyze path =
    match analyze ~store path with
    | r -> r
    | exception e ->
        failed path ~code:124
          ~errors:
            (Printf.sprintf "nmlc: internal error: %s\n" (Printexc.to_string e))
  in
  let paths = Array.of_list paths in
  let n = Array.length paths in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      if not (stop ()) then begin
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (safe_analyze paths.(i));
          loop ()
        end
      end
    in
    loop ()
  in
  let workers = max 1 (min jobs n) in
  if workers = 1 then worker ()
  else begin
    let spawned = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter (fun d -> try Domain.join d with _ -> ()) spawned
  end;
  (* a [None] slot means the file was never analyzed: either [stop]
     interrupted the pool, or a worker domain died outright *)
  Array.to_list
    (Array.mapi
       (fun i r ->
         match r with
         | Some r -> r
         | None ->
             if stop () then interrupted_result paths.(i)
             else
               failed paths.(i) ~code:124
                 ~errors:
                   (Printf.sprintf
                      "nmlc: internal error: worker died before analyzing %s\n"
                      paths.(i)))
       results)

let exit_code results =
  List.fold_left
    (fun acc r ->
      let rank c = if c = 124 then 3 else if c = 130 then 2 else min c 1 in
      if rank r.code > rank acc then r.code else acc)
    0 results
