lib/runtime/stats.ml: Format List
