lib/core/exact.ml: Besc List Nml
