(** Full-enumeration fixpoint engine for first-order programs — the
    ablation baseline for {!Fixpoint}.

    For a first-order definition every parameter and result is
    base-shaped after the list collapse, so its abstract function is
    exactly a finite table [B_e^n -> B_e] (the probe engine is exact on
    the same class, but lazy).  This engine materializes the tables,
    iterating all of them to a simultaneous fixpoint by enumerating the
    full argument space — the textbook cost the paper's conclusion
    worries about, quantified in experiment T8.

    Definitions are analyzed at their simplest monotyped instance;
    cross-definition references use the callee's table.  Programs with
    higher-order parameters, partially applied definitions or nested
    [letrec]s raise {!Higher_order}.  Immediately applied lambdas (the
    [let] sugar) are supported. *)

exception Higher_order of string

type t

val solve : Nml.Infer.program -> t
(** Builds and stabilizes all tables.
    @raise Higher_order when the program is outside the first-order
    fragment. *)

val of_source : string -> t

val d : t -> int
(** Chain bound used (largest spine count of the instance types). *)

val lookup : t -> string -> Besc.t list -> Besc.t
(** Table lookup, one basic escape value per parameter. *)

val global : t -> string -> arg:int -> Besc.t
(** The global escape test read off the table:
    [lookup t f [<0,0>; ...; <1,s_i>; ...; <0,0>]]. *)

val iterations : t -> int
(** Fixpoint rounds over the table set. *)

val entries : t -> int
(** Total number of table entries materialized. *)
