(* Usage / strictness analysis: for every (definition, parameter) pair,
   may the parameter's value be {e retained} in the result (the [dep]
   bit survives to the result), and is it {e inspected} while computing
   it (the [use] bit)?  The four-point verdict lattice

       unused ⊏ {carried, consumed} ⊏ used

   reads off both bits: [Carried] is a lazy pass-through (retained,
   never looked at), [Consumed] a strict consumer (inspected, never
   retained — after the call the argument is garbage unless the caller
   holds it), [Used] both, [Unused] neither.  [Consumed]-style facts are
   what the reduced product with the escape analysis turns into
   reclaim-after-call verdicts (see [Analyses.Product]). *)

module Flags = struct
  let analysis_name = "usage"

  type t = { dep : bool; use : bool }

  let bot = { dep = false; use = false }
  let top = { dep = true; use = true }
  let join a b = { dep = a.dep || b.dep; use = a.use || b.use }
  let equal a b = a.dep = b.dep && a.use = b.use
  let leq a b = ((not a.dep) || b.dep) && ((not a.use) || b.use)
  let dep f = f.dep
  let mark_dep f = { f with dep = true }
  let detach f = { f with dep = false }

  (* every way of touching the argument is a use; usage tracks retention
     of any part of the argument, so the dep bit always survives *)
  let observe f = { f with use = f.use || f.dep }
  let elem_view ~spined:_ ~boxed:_ = observe
  let force_tail = observe
  let force_test = observe
  let force_proj = observe
end

module D = Flow.Make (Flags) ()
module Solver = Solver.Make (D)

type verdict = Unused | Carried | Consumed | Used

let verdict_name = function
  | Unused -> "unused"
  | Carried -> "carried"
  | Consumed -> "consumed"
  | Used -> "used"

let verdict_of_name = function
  | "unused" -> Some Unused
  | "carried" -> Some Carried
  | "consumed" -> Some Consumed
  | "used" -> Some Used
  | _ -> None

let verdict_doc = function
  | Unused -> "never inspected, never retained"
  | Carried -> "retained in the result but never inspected"
  | Consumed -> "inspected but never retained in the result"
  | Used -> "inspected and may be retained in the result"

type arg_report = { a_index : int; a_verdict : verdict }

type def_report = {
  r_name : string;
  r_ty : string;  (* rendered simplest ground instance *)
  r_args : arg_report list;
}

(* The global-test harness: mark parameter [i] interesting, every other
   parameter boring, apply, read the flags off the result. *)
let arg_verdict t name ~arg =
  let ty = Solver.instance_ty t name in
  let m = Nml.Ty.arity ty in
  if arg < 1 || arg > m then
    invalid_arg (Printf.sprintf "Usage.arg_verdict: %s has arity %d" name m);
  let v = Solver.value t name (Some ty) in
  Solver.with_state t @@ fun () ->
  let args =
    List.mapi
      (fun j aty -> if j = arg - 1 then D.probe aty else D.bottom aty)
      (Nml.Ty.arg_tys ty m)
  in
  let r = D.total (D.apply_all v args) in
  match (Flags.dep r, r.Flags.use) with
  | false, false -> Unused
  | true, false -> Carried
  | false, true -> Consumed
  | true, true -> Used

let report t name =
  let ty = Solver.instance_ty t name in
  let m = Nml.Ty.arity ty in
  {
    r_name = name;
    r_ty = Nml.Ty.to_string ty;
    r_args =
      List.init m (fun i -> { a_index = i + 1; a_verdict = arg_verdict t name ~arg:(i + 1) });
  }

let pp_def_report ppf r =
  Format.fprintf ppf "@[<v 0>%s : %s" r.r_name r.r_ty;
  List.iter
    (fun a ->
      Format.fprintf ppf "@,  U(%s, %d) = %s  -- %s" r.r_name a.a_index
        (verdict_name a.a_verdict) (verdict_doc a.a_verdict))
    r.r_args;
  Format.fprintf ppf "@]"
