module Ty = Nml.Ty
module Tast = Nml.Tast
module Infer = Nml.Infer

type entry = {
  name : string;
  inst : Ty.t;
  tast : Tast.texpr;
  mutable value : Dvalue.t;
}

type t = {
  prog : Infer.program;
  cache : (string, entry) Hashtbl.t;  (* key: "name @ ground-type" *)
  mutable order : entry list;  (* insertion order, newest first *)
  mutable dbound : int;
  mutable stable : bool;
  mutable passes : int;
  max_iters : int;
  mutable ctx : Semantics.ctx;  (* hooks back into this record *)
}

let key name ty = name ^ " @ " ^ Ty.to_string ty

let absorb_tree_depth t tast =
  Tast.iter_tys (fun ty -> t.dbound <- max t.dbound (Ty.max_list_depth ty)) tast;
  Dvalue.ensure_d t.dbound

let is_def t name = List.mem_assoc name t.prog.Infer.schemes

let rec demand t name ty =
  let k = key name ty in
  match Hashtbl.find_opt t.cache k with
  | Some e -> e
  | None ->
      let tast = Infer.instantiate_def t.prog name (Some ty) in
      absorb_tree_depth t tast;
      let e = { name; inst = ty; tast; value = Dvalue.bottom tast.Tast.ty } in
      Hashtbl.add t.cache k e;
      t.order <- e :: t.order;
      t.stable <- false;
      e

and global_hook t name ty =
  if is_def t name then (demand t name ty).value
  else invalid_arg (Printf.sprintf "Fixpoint: unknown identifier %s" name)

let make ?(max_iters = 200) prog =
  let rec t =
    {
      prog;
      cache = Hashtbl.create 32;
      order = [];
      dbound = 0;
      stable = true;
      passes = 0;
      max_iters;
      ctx =
        {
          Semantics.d = (fun () -> t.dbound);
          global = (fun name ty -> global_hook t name ty);
          max_iters;
          iters = 0;
          capped = false;
          fv_cache = [];
        };
    }
  in
  let main = Infer.main_ground prog in
  absorb_tree_depth t main;
  t

let of_source ?max_iters src =
  make ?max_iters (Infer.infer_program (Nml.Surface.of_string src))

let program t = t.prog
let d t = t.dbound

let widen_all t =
  List.iter (fun e -> e.value <- Dvalue.top ~d:t.dbound e.tast.Tast.ty) t.order;
  t.ctx.Semantics.capped <- true;
  t.stable <- true

let stabilize t =
  let rounds = ref 0 in
  while not t.stable do
    if !rounds >= t.max_iters then widen_all t
    else begin
      incr rounds;
      t.passes <- t.passes + 1;
      (* application memos from the previous pass may reflect lower
         iterates of other entries; drop them so the final pass evaluates
         everything against the final values *)
      Dvalue.clear_cache ();
      t.stable <- true;
      (* new demands during the pass reset [stable] and are picked up on
         the next round *)
      let entries = List.rev t.order in
      List.iter
        (fun e ->
          t.ctx.Semantics.iters <- t.ctx.Semantics.iters + 1;
          let v = Semantics.eval t.ctx Semantics.Env.empty e.tast in
          if not (Probe.equal ~d:t.dbound e.value v) then begin
            e.value <- Dvalue.join e.value v;
            t.stable <- false
          end)
        entries
    end
  done

let value t name inst =
  if not (is_def t name) then
    invalid_arg (Printf.sprintf "Fixpoint.value: unknown definition %s" name);
  let e =
    match inst with
    | Some ty -> demand t name ty
    | None ->
        (* materialize the simplest instance, then demand it by its
           ground type so repeated calls share the entry *)
        let tast = Infer.instantiate_def t.prog name None in
        demand t name tast.Tast.ty
  in
  stabilize t;
  e.value

let instance_ty t name =
  let tast = Infer.instantiate_def t.prog name None in
  tast.Tast.ty

let eval_expr t tast =
  absorb_tree_depth t tast;
  stabilize t;
  let v = ref (Semantics.eval t.ctx Semantics.Env.empty tast) in
  (* evaluation may have demanded new instances (still at bottom): iterate
     to a consistent result *)
  while not t.stable do
    stabilize t;
    v := Semantics.eval t.ctx Semantics.Env.empty tast
  done;
  !v

let main_value t = eval_expr t (Infer.main_ground t.prog)
let iterations t = t.ctx.Semantics.iters
let passes t = t.passes
let instances t = List.rev_map (fun e -> (e.name, e.inst)) t.order
let capped t = t.ctx.Semantics.capped
