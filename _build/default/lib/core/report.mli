(** Human-readable analysis reports (used by the [nmlc] driver and the
    examples). *)

val program : Format.formatter -> Fixpoint.t -> unit
(** For every definition of the program: its simplest instance type, the
    global escape verdict of every parameter, and the sharing guarantee
    for its result (Theorem 2, worst case). *)

val definition : Format.formatter -> Fixpoint.t -> string -> unit
(** The same report for a single definition. *)

val call : Format.formatter -> Fixpoint.t -> string -> Nml.Ast.expr list -> unit
(** Local escape verdicts for one call [f e1 ... en]. *)

val kleene_trace : ?max_iters:int -> Format.formatter -> Nml.Infer.program -> unit
(** The appendix A.1 iteration table: runs Jacobi iteration on the
    top-level group from bottom (at the simplest instances) and prints,
    for every iterate, the global-test escape value of each definition's
    parameters — e.g. for [append]:

    {v
      iterate 0   append: <0,0> <0,0>   (all bottom)
      iterate 1   append: <1,0> <1,1>
      iterate 2   append: <1,0> <1,1>   (stable)
    v} *)

val spines_figure : Format.formatter -> Nml.Eval.value -> unit
(** The paper's Figure 1: renders a list value with its cons cells
    labelled by top/bottom spine indices, e.g. for
    [[[1,2],[3,4]]] the outer chain is top spine 1 / bottom spine 2 and
    the element chains are top spine 2 / bottom spine 1. *)
