(** Hindley-Milner type inference for [nml].

    The paper assumes type inference has been performed before the escape
    analysis runs (section 3.1); this module provides it.  Top-level
    [letrec] definitions are generalized (parametric polymorphism,
    section 5); nested [letrec]s and the [let] sugar are monomorphic.

    Because the escape analysis needs the {e monomorphic instances} of
    polymorphic definitions (the [car^s] annotations depend on the
    instance), a typed {!program} keeps the surface right-hand sides and
    re-types them on demand at any ground instance with
    {!instantiate_def}. *)

exception Error of Loc.t * string

type scheme
(** A type scheme [forall a1...an. t]. *)

val scheme_ty : scheme -> Ty.t
(** A fresh instantiation of the scheme (new variables every call). *)

val scheme_arity : scheme -> int
(** {!Ty.arity} of the scheme body (instance independent). *)

val pp_scheme : Format.formatter -> scheme -> unit

type env

val empty_env : env
val bind_scheme : string -> scheme -> env -> env

val infer_expr : ?env:env -> Ast.expr -> Tast.texpr
(** Types a standalone expression (no generalization anywhere).  Unbound
    identifiers, type clashes and infinite types raise {!Error}. *)

type program = {
  surface : Surface.t;
  schemes : (string * scheme) list;  (** one scheme per definition, in order *)
  main : Tast.texpr;  (** typed main expression *)
}

val infer_program : Surface.t -> program
(** Types the whole program: all definitions are inferred as one mutually
    recursive group, then generalized; the main expression is typed under
    the resulting schemes. *)

val def_scheme : program -> string -> scheme
(** @raise Not_found for unknown names. *)

val instantiate_def : program -> string -> Ty.t option -> Tast.texpr
(** [instantiate_def p f (Some ty)] re-types the right-hand side of [f]
    with recursive occurrences of [f] fixed at type [ty] (monomorphic
    recursion), then grounds every remaining type variable to [int].
    [instantiate_def p f None] produces the {e simplest monotyped
    instance} of [f] (section 5): a fresh instance grounded to [int].
    The resulting tree is fully ground: every [car] has a definite spine
    annotation. *)

val simplest_instance : program -> string -> Ty.t
(** Ground type of the simplest monotyped instance of a definition. *)

val main_ground : program -> Tast.texpr
(** The typed main expression with any residual variables grounded to
    [int].  (Types in [p.main] may be partially polymorphic when the
    value's type is unconstrained.) *)
