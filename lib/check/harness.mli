(** The differential soundness harness behind [nmlc check].

    Every program is executed several ways — the reference interpreter
    ({!Nml.Eval}), the machine on the unoptimized IR, the machine on the
    optimized IR, and the machine on the optimized IR under fault
    injection (fixed-size tiny heaps, forced collections at pseudo-random
    allocation points, freed-cell poisoning) with arena validation on —
    and all outcomes are compared.  A run stopped by a resource limit
    ({!Runtime.Machine.Out_of_memory}/[Out_of_fuel]) proves nothing and
    is accepted; a crash or a different answer where the reference
    produced a value is a soundness divergence.  After every machine run
    the {!Runtime.Stats} counters are checked against the store's
    bookkeeping identities ([live = allocs - swept - arena_freed], ...).

    On a divergence the offending program is greedily minimized with
    {!Shrink} and reported as a {!counterexample}. *)

type fault =
  | No_fault
  | Widen_arena
      (** allocate the program's first cons site in an arena spanning the
          whole program — an unsound stack/block verdict *)
  | Misuse_dcons
      (** rewrite the first cons site to destructively reuse its own tail
          cell — an unsound reuse verdict *)

type config = {
  heap : int;  (** capacity of the fixed-size chaos heaps *)
  fuel : int;  (** step budget per run; [<= 0] means unlimited *)
  chaos : bool;  (** forced collections + freed-cell poisoning *)
  seed : int;  (** seeds program generation and the machine PRNG *)
  fault : fault;  (** deliberately break one optimizer verdict *)
}

val default : config
(** [{ heap = 24; fuel = 200_000; chaos = false; seed = 42; fault = No_fault }] *)

type outcome =
  | Value of Nml.Eval.value
  | Limit of string  (** stopped by a resource budget: proves nothing *)
  | Crash of string  (** dynamic error: divergence unless the reference crashed too *)

val pp_outcome : Format.formatter -> outcome -> unit
val outcome_to_string : outcome -> string

type failure = { stage : string; expected : string; got : string }
type verdict = Pass | Skip of string | Fail of failure

val run_reference : config -> Nml.Surface.t -> outcome

val run_machine :
  config ->
  ?config:Runtime.Heap.config ->
  heap:int ->
  grow:bool ->
  chaos:Runtime.Machine.chaos ->
  Runtime.Ir.expr ->
  outcome * Runtime.Machine.t
(** One machine execution with arena validation on; reading the result
    back is part of the run (a dangling result is a [Crash]).  [?config]
    selects the heap organization (default {!Runtime.Heap.legacy}); the
    oracle itself runs every program on legacy {e and} generational
    configurations (tiny nursery, regions off, a seed-drawn config), so
    chaos collections also land mid-region on the generational heap. *)

val run_vm :
  config ->
  ?config:Runtime.Heap.config ->
  heap:int ->
  grow:bool ->
  chaos:Runtime.Machine.chaos ->
  Runtime.Ir.expr ->
  outcome * Backend.Vm.t
(** The same execution on the bytecode VM (compile + run, arena
    validation on) — the oracle's third leg.  Every machine stage of
    {!check_src} is also run here, so Eval, machine and VM must agree
    under every heap configuration and chaos schedule.  A
    {!Backend.Vm.Internal} propagates: a broken backend invariant must
    abort the oracle, not masquerade as a program crash. *)

val stats_violations : Runtime.Machine.t -> string list
(** Violated bookkeeping identities of the machine's counters, empty
    when consistent. *)

val vm_stats_violations : Backend.Vm.t -> string list
(** The same identities over a VM run's counters. *)

val sabotage : fault -> Nml.Surface.t -> Runtime.Ir.expr option
(** The deliberately broken IR of a program, or [None] when the fault
    does not apply (e.g. no cons site). *)

val check_src : config -> string -> verdict
(** The full differential oracle on one program (concrete syntax). *)

val check_ir : config -> src:string -> Runtime.Ir.expr -> verdict
(** Compare the reference interpreter on [src] against the machine on a
    caller-supplied IR — the hook scratch tests use to feed the oracle a
    hand-broken transformation result. *)

type summary = { checked : int; passed : int; skipped : int }

type counterexample = {
  name : string;
  original : string;
  shrunk : string;
  failure : failure;
}

val pp_counterexample : Format.formatter -> counterexample -> unit

val builtin_corpus : (string * string) list
(** Named complete programs covering lists, pairs, trees, higher-order
    functions and the paper's running examples. *)

val check_corpus : config -> (string * string) list -> (summary, counterexample) result

val check_random : config -> count:int -> (summary, counterexample) result
(** Draws [count] programs from {!Gen.gen_any_program} (deterministic in
    [config.seed]) and runs the oracle on each; the first divergence is
    minimized and returned. *)
