test/test_nml.mli:
