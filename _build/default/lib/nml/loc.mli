(** Source locations for [nml] programs.

    A location is a half-open span of characters in a named source buffer,
    tracked as (line, column) pairs.  Columns are 1-based; lines are
    1-based.  The pseudo-location {!dummy} is used for synthesized syntax
    (desugared list literals, generated programs). *)

type pos = {
  line : int;  (** 1-based line number *)
  col : int;  (** 1-based column number *)
}

type t = {
  file : string;  (** name of the source buffer, e.g. a file name *)
  start_pos : pos;
  end_pos : pos;
}

val dummy : t
(** Location of synthesized syntax; prints as ["<synthetic>"]. *)

val make : file:string -> start_pos:pos -> end_pos:pos -> t

val merge : t -> t -> t
(** [merge a b] spans from the start of [a] to the end of [b]; both must
    come from the same buffer (the file of [a] wins otherwise). *)

val is_dummy : t -> bool

val pp : Format.formatter -> t -> unit
(** Renders as ["file:line.col-line.col"] (or just ["file:line.col"] for
    single-character spans). *)

val to_string : t -> string
