type t = {
  mutable heap_allocs : int;
  mutable arena_allocs : int;
  mutable dcons_reuses : int;
  mutable gc_runs : int;
  mutable marked : int;
  mutable swept : int;
  mutable arena_freed : int;
  mutable heap_capacity : int;
  mutable peak_live : int;
  mutable steps : int;
  mutable chaos_gcs : int;
  mutable poisoned : int;
}

let create () =
  {
    heap_allocs = 0;
    arena_allocs = 0;
    dcons_reuses = 0;
    gc_runs = 0;
    marked = 0;
    swept = 0;
    arena_freed = 0;
    heap_capacity = 0;
    peak_live = 0;
    steps = 0;
    chaos_gcs = 0;
    poisoned = 0;
  }

let reset t =
  t.heap_allocs <- 0;
  t.arena_allocs <- 0;
  t.dcons_reuses <- 0;
  t.gc_runs <- 0;
  t.marked <- 0;
  t.swept <- 0;
  t.arena_freed <- 0;
  t.heap_capacity <- 0;
  t.peak_live <- 0;
  t.steps <- 0;
  t.chaos_gcs <- 0;
  t.poisoned <- 0

let total_allocs t = t.heap_allocs + t.arena_allocs
let gc_work t = t.marked + t.swept

let to_row t =
  [
    ("heap_allocs", t.heap_allocs);
    ("arena_allocs", t.arena_allocs);
    ("dcons_reuses", t.dcons_reuses);
    ("gc_runs", t.gc_runs);
    ("marked", t.marked);
    ("swept", t.swept);
    ("arena_freed", t.arena_freed);
    ("heap_capacity", t.heap_capacity);
    ("peak_live", t.peak_live);
  ]
  (* chaos counters only appear when fault injection was active, so the
     output of plain runs is unchanged *)
  @ (if t.chaos_gcs > 0 then [ ("chaos_gcs", t.chaos_gcs) ] else [])
  @ if t.poisoned > 0 then [ ("poisoned", t.poisoned) ] else []

let pp ppf t =
  Format.fprintf ppf "@[<v 0>";
  List.iter (fun (k, v) -> Format.fprintf ppf "%-13s %d@ " k v) (to_row t);
  Format.fprintf ppf "@]"
