examples/map_pair.mli:
