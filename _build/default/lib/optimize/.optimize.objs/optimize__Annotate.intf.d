lib/optimize/annotate.mli: Escape Nml Runtime
