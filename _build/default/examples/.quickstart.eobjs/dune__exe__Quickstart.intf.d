examples/quickstart.mli:
