module Ty = Nml.Ty
module Tast = Nml.Tast
module Ast = Nml.Ast
module Infer = Nml.Infer

exception Higher_order of string

let unsupported fmt = Format.kasprintf (fun msg -> raise (Higher_order msg)) fmt

type def = {
  name : string;
  params : string list;
  arg_tys : Ty.t list;
  body : Tast.texpr;
  table : (Besc.t list, Besc.t) Hashtbl.t;
}

type t = {
  defs : (string * def) list;
  dbound : int;
  mutable iters : int;
}

module Env = Map.Make (String)

let rec strip_lams (e : Tast.texpr) =
  match e.Tast.desc with
  | Tast.Lam (x, b) ->
      let ps, body = strip_lams b in
      (x :: ps, body)
  | _ -> ([], e)

let base_shaped ty =
  match Ty.shape ty with Ty.Sbase -> true | Ty.Sarrow _ | Ty.Sprod _ -> false

let split_app e =
  let rec go acc (e : Tast.texpr) =
    match e.Tast.desc with Tast.App (f, a) -> go (a :: acc) f | _ -> (e, acc)
  in
  go [] e

(* Evaluates a base-shaped expression to its basic escape value. *)
let rec eval t env (e : Tast.texpr) : Besc.t =
  match e.Tast.desc with
  | Tast.Const _ -> Besc.zero
  | Tast.Var x -> (
      match Env.find_opt x env with
      | Some b -> b
      | None -> unsupported "definition %s used as a value" x)
  | Tast.If (_, th, el) -> Besc.join (eval t env th) (eval t env el)
  | Tast.Letrec _ -> unsupported "nested letrec"
  | Tast.Lam _ -> unsupported "lambda outside definition or let position"
  | Tast.Prim _ -> unsupported "partially applied primitive"
  | Tast.App _ -> (
      let head, args = split_app e in
      match head.Tast.desc with
      | Tast.Prim p when List.length args = Ast.prim_arity p -> eval_prim t env head p args
      | Tast.Prim _ -> unsupported "partially applied primitive"
      | Tast.Var f -> (
          match Env.find_opt f env with
          | Some _ -> unsupported "applying a parameter (higher order)"
          | None -> (
              match List.assoc_opt f t.defs with
              | Some d when List.length args = List.length d.params ->
                  let key = List.map (eval t env) args in
                  Option.value ~default:Besc.zero (Hashtbl.find_opt d.table key)
              | Some _ -> unsupported "partial application of %s" f
              | None -> unsupported "unknown identifier %s" f))
      | Tast.Lam (x, b) -> (
          (* the let sugar, one argument at a time *)
          match args with
          | [ rhs ] -> eval t (Env.add x (eval t env rhs) env) b
          | _ -> unsupported "immediately applied lambda with several arguments")
      | _ -> unsupported "higher-order application")

and eval_prim t env (head : Tast.texpr) p args =
  match (p, args) with
  | Ast.Cons, [ x; y ] -> Besc.join (eval t env x) (eval t env y)
  | Ast.Node, [ l; x; r ] ->
      Besc.join (eval t env l) (Besc.join (eval t env x) (eval t env r))
  | Ast.Car, [ x ] | Ast.Label, [ x ] ->
      let s = Tast.car_spines head in
      Besc.sub ~s (eval t env x)
  | Ast.Cdr, [ x ] | Ast.Left, [ x ] | Ast.Right, [ x ] -> eval t env x
  | (Ast.Pair | Ast.Fst | Ast.Snd), _ -> unsupported "pair primitives are not first order"
  | ( ( Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Eq | Ast.Ne | Ast.Lt
      | Ast.Le | Ast.Gt | Ast.Ge | Ast.And | Ast.Or | Ast.Not | Ast.Null | Ast.Isleaf ),
      args ) ->
      (* results of primitive operations contain nothing, but their
         arguments must still be well formed *)
      List.iter (fun a -> ignore (eval t env a)) args;
      Besc.zero
  | (Ast.Cons | Ast.Car | Ast.Cdr | Ast.Node | Ast.Label | Ast.Left | Ast.Right), _ ->
      unsupported "misapplied list or tree primitive"

let rec tuples n escs =
  if n = 0 then [ [] ]
  else
    let rest = tuples (n - 1) escs in
    List.concat_map (fun b -> List.map (fun t -> b :: t) rest) escs

let solve (prog : Infer.program) =
  let dbound = ref 0 in
  let defs =
    List.map
      (fun (name, _) ->
        let typed = Infer.instantiate_def prog name None in
        Tast.iter_tys (fun ty -> dbound := max !dbound (Ty.max_list_depth ty)) typed;
        let params, body = strip_lams typed in
        let arg_tys = Ty.arg_tys typed.Tast.ty (List.length params) in
        if not (List.for_all base_shaped arg_tys && base_shaped body.Tast.ty) then
          unsupported "%s has a non-base (function or pair) parameter or result" name;
        (name, { name; params; arg_tys; body; table = Hashtbl.create 64 }))
      prog.Infer.schemes
  in
  let t = { defs; dbound = !dbound; iters = 0 } in
  let escs = Besc.all ~d:t.dbound in
  let keys =
    List.map (fun (_, d) -> (d, tuples (List.length d.params) escs)) defs
  in
  (* initialize every entry at bottom *)
  List.iter
    (fun (d, ks) -> List.iter (fun k -> Hashtbl.replace d.table k Besc.zero) ks)
    keys;
  let changed = ref true in
  while !changed do
    changed := false;
    t.iters <- t.iters + 1;
    List.iter
      (fun (d, ks) ->
        List.iter
          (fun key ->
            let env =
              List.fold_left2 (fun env x b -> Env.add x b env) Env.empty d.params key
            in
            let v = eval t env d.body in
            let old = Hashtbl.find d.table key in
            let v' = Besc.join old v in
            if not (Besc.equal v' old) then begin
              Hashtbl.replace d.table key v';
              changed := true
            end)
          ks)
      keys
  done;
  t

let of_source src = solve (Infer.infer_program (Nml.Surface.of_string src))
let d t = t.dbound

let lookup t name key =
  match List.assoc_opt name t.defs with
  | None -> invalid_arg (Printf.sprintf "Enumerate.lookup: unknown definition %s" name)
  | Some d -> (
      match Hashtbl.find_opt d.table key with
      | Some v -> v
      | None -> invalid_arg "Enumerate.lookup: malformed key")

let global t name ~arg =
  match List.assoc_opt name t.defs with
  | None -> invalid_arg (Printf.sprintf "Enumerate.global: unknown definition %s" name)
  | Some d ->
      if arg < 1 || arg > List.length d.params then
        invalid_arg "Enumerate.global: argument position out of range";
      let key =
        List.mapi
          (fun j ty -> if j + 1 = arg then Besc.one (Ty.spines ty) else Besc.zero)
          d.arg_tys
      in
      lookup t name key

let iterations t = t.iters
let entries t = List.fold_left (fun acc (_, d) -> acc + Hashtbl.length d.table) 0 t.defs
