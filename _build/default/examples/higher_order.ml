(* Higher-order functions: the part of the analysis that sets the paper
   apart from first-order predecessors (section 2).  The abstract value
   of a function is itself a function (Hudak-Young style), so escapement
   flows through unknown functional parameters via the worst-case
   function W (Definition 2) globally, and through the actual arguments
   locally.

     dune exec examples/higher_order.exe *)

module An = Escape.Analysis
module B = Escape.Besc

let program =
  Nml.Examples.wrap
    [
      Nml.Examples.map_def;
      Nml.Examples.filter_def;
      Nml.Examples.foldr_def;
      Nml.Examples.compose_def;
      Nml.Examples.append_def;
    ]
    "foldr (fun a b -> cons (a * 2) b) nil [1, 2, 3]"

let () =
  let surface = Nml.Surface.of_string program in
  Format.printf "--- program ---@.%a@.@." Nml.Surface.pp surface;
  let t = Escape.Fixpoint.make (Nml.Infer.infer_program surface) in

  Format.printf "--- global analysis (worst case over all calls) ---@.";
  Format.printf "%a@." Escape.Report.program t;

  (* The same list argument, under different functional arguments: the
     local test is strictly sharper than the global one. *)
  Format.printf "--- local tests: map under different functions ---@.";
  let show label fsrc =
    let v =
      An.local t "map" [ Nml.Parser.parse fsrc; Nml.Parser.parse "[1, 2, 3]" ] ~arg:2
    in
    Format.printf "  L(map, 2) with f = %-24s : %s@." label (B.to_string v.An.esc)
  in
  show "fun n -> 0 (discards)" "lambda(n). 0";
  show "fun n -> n (element id)" "lambda(n). n";
  Format.printf
    "  (globally, G(map, 2) = %s: the unknown f is assumed worst-case)@.@."
    (B.to_string (An.global t "map" ~arg:2).An.esc);

  (* foldr with a consing function rebuilds the spine: elements escape
     through f, the spine does not *)
  Format.printf "--- the program's own call ---@.";
  (match surface.Nml.Surface.main with
  | Nml.Ast.App _ ->
      let v =
        An.local t "foldr"
          [
            Nml.Parser.parse "fun a b -> cons (a * 2) b";
            Nml.Parser.parse "nil";
            Nml.Parser.parse "[1, 2, 3]";
          ]
          ~arg:3
      in
      Format.printf "  L(foldr, 3) = %s -- the spine of [1,2,3] stays local@."
        (B.to_string v.An.esc)
  | _ -> ());
  Format.printf "  result: %a@." Nml.Eval.pp_value (Nml.Eval.run surface)
