(* Binary trees: the second datatype the paper's conclusion points at
   ("tuples, trees, etc.").  The list collapse generalizes unchanged:
   a tree's node cells form one spine-like level
   (spines (t tree) = 1 + spines t), [label] strips a level exactly as
   [car^s] does, [left]/[right] are abstractly the identity like [cdr],
   and [node] joins like [cons].

     dune exec examples/trees.exe *)

module An = Escape.Analysis
module B = Escape.Besc

let program =
  Nml.Examples.wrap
    [
      Nml.Examples.tinsert_def;
      Nml.Examples.tmap_def;
      Nml.Examples.mirror_def;
      Nml.Examples.tsum_def;
      Nml.Examples.append_def;
      Nml.Examples.flatten_def;
    ]
    "flatten (tinsert 2 (tinsert 5 (tinsert 1 (tinsert 4 leaf))))"

let () =
  let surface = Nml.Surface.of_string program in
  Format.printf "--- program ---@.%a@.@." Nml.Surface.pp surface;
  Format.printf "result: %a@.@." Nml.Eval.pp_value (Nml.Eval.run surface);

  let t = Escape.Fixpoint.make (Nml.Infer.infer_program surface) in
  Format.printf "--- analysis ---@.%a@." Escape.Report.program t;

  Format.printf "--- what the verdicts mean ---@.";
  let explain name arg expectation =
    let v = An.global t name ~arg in
    Format.printf "  G(%s, %d) = %-6s %s@." name arg (B.to_string v.An.esc) expectation
  in
  explain "tmap" 2 "-- every node is rebuilt: the argument's nodes are dead after the call";
  explain "mirror" 1 "-- likewise: mirrors can reuse or stack-allocate their input's nodes";
  explain "tinsert" 2
    "-- BST insert SHARES the untouched subtrees: nothing can be reclaimed";
  explain "flatten" 1 "-- labels escape into the list, the node cells do not";
  explain "tsum" 1 "-- pure fold: no part of the tree survives the call";

  (* the dynamic observer confirms the sharing in tinsert *)
  let ob =
    Escape.Exact.observe_call surface ~fname:"tinsert"
      ~args:[ Nml.Parser.parse "9"; Nml.Parser.parse "tinsert 1 (tinsert 5 (tinsert 3 leaf))" ]
      ~arg:2
  in
  Format.printf
    "@.dynamically, inserting 9 into a 3-node BST lets %d of %d node cells escape@."
    ob.Escape.Exact.escaped_cells ob.Escape.Exact.total_cells;

  (* trees live in the simulated store like everything else *)
  let m = Runtime.Machine.create ~heap_size:64 ~check_arenas:true () in
  let w = Runtime.Machine.run m surface in
  Format.printf "machine: %a (%d cells, %d GC runs)@." Nml.Eval.pp_value
    (Runtime.Machine.read_value m w)
    (Runtime.Machine.stats m).Runtime.Stats.heap_allocs
    (Runtime.Machine.stats m).Runtime.Stats.gc_runs
