(** Content-addressed keys for the persistent summary cache: one hex
    digest per SCC of the definition callgraph, covering the members'
    normalized bodies, their simplest-instance types, the cone's chain
    bound and — recursively — the keys of every callee SCC, so editing a
    definition re-keys exactly its SCC and its transitive readers. *)

val schema_version : string
(** Digested into every key and stamped into every stored record; bump it
    to invalidate the on-disk format wholesale. *)

type t

val of_program : ?analysis:string -> Nml.Infer.program -> t
(** [analysis] (default ["escape"]) is the registered Spec the keys
    namespace: the same program stores each analysis' summaries under
    distinct keys, so warm reruns stay at zero evaluations per
    analysis and a record can never be decoded by the wrong Spec. *)

val sccs : t -> (string * string list) list
(** [(key, member names)] per SCC, dependencies first. *)

val key_of_def : t -> string -> string option
(** The key of the SCC a definition belongs to. *)
