lib/nml/infer.ml: Ast Format Hashtbl List Loc Map Printf String Surface Tast Ty
