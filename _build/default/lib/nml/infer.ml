exception Error of Loc.t * string

type scheme = { vars : int list; body : Ty.t }

module Env = Map.Make (String)

type env = scheme Env.t

let empty_env = Env.empty
let bind_scheme x s env = Env.add x s env
let error loc fmt = Format.kasprintf (fun msg -> raise (Error (loc, msg))) fmt

(* ---- unification ------------------------------------------------------ *)

(* Occurs check for [id], lowering the levels of free variables of [t] to
   at most [level] so that they are not generalized too early. *)
let rec occurs_adjust loc id level t =
  match Ty.repr t with
  | Ty.Int | Ty.Bool -> ()
  | Ty.List e | Ty.Tree e -> occurs_adjust loc id level e
  | Ty.Prod (a, b) | Ty.Arrow (a, b) ->
      occurs_adjust loc id level a;
      occurs_adjust loc id level b
  | Ty.Var ({ contents = Ty.Unbound (id', level') } as r) ->
      if id = id' then error loc "this expression would have an infinite (cyclic) type"
      else if level' > level then r := Ty.Unbound (id', level)
  | Ty.Var { contents = Ty.Link _ } -> assert false

let rec unify loc t1 t2 =
  let t1 = Ty.repr t1 and t2 = Ty.repr t2 in
  match (t1, t2) with
  | Ty.Int, Ty.Int | Ty.Bool, Ty.Bool -> ()
  | Ty.List a, Ty.List b | Ty.Tree a, Ty.Tree b -> unify loc a b
  | Ty.Prod (a1, b1), Ty.Prod (a2, b2) | Ty.Arrow (a1, b1), Ty.Arrow (a2, b2) ->
      unify loc a1 a2;
      unify loc b1 b2
  | Ty.Var r1, Ty.Var r2 when r1 == r2 -> ()
  | Ty.Var ({ contents = Ty.Unbound (id, level) } as r), t
  | t, Ty.Var ({ contents = Ty.Unbound (id, level) } as r) ->
      occurs_adjust loc id level t;
      r := Ty.Link t
  | _ ->
      error loc "type mismatch: this expression has type %s but was expected of type %s"
        (Ty.to_string t2) (Ty.to_string t1)

(* ---- schemes ----------------------------------------------------------- *)

let instantiate ~level { vars; body } =
  if vars = [] then body
  else
    let table = Hashtbl.create 8 in
    List.iter (fun id -> Hashtbl.add table id (Ty.fresh_var ~level)) vars;
    let rec copy t =
      match Ty.repr t with
      | Ty.Int -> Ty.Int
      | Ty.Bool -> Ty.Bool
      | Ty.List e -> Ty.List (copy e)
      | Ty.Tree e -> Ty.Tree (copy e)
      | Ty.Prod (a, b) -> Ty.Prod (copy a, copy b)
      | Ty.Arrow (a, b) -> Ty.Arrow (copy a, copy b)
      | Ty.Var { contents = Ty.Unbound (id, _) } as t -> (
          match Hashtbl.find_opt table id with Some fresh -> fresh | None -> t)
      | Ty.Var { contents = Ty.Link _ } -> assert false
    in
    copy body

let generalize ~level t =
  let vars = ref [] in
  let rec collect t =
    match Ty.repr t with
    | Ty.Int | Ty.Bool -> ()
    | Ty.List e | Ty.Tree e -> collect e
    | Ty.Prod (a, b) | Ty.Arrow (a, b) ->
        collect a;
        collect b
    | Ty.Var { contents = Ty.Unbound (id, level') } ->
        if level' > level && not (List.mem id !vars) then vars := id :: !vars
    | Ty.Var { contents = Ty.Link _ } -> assert false
  in
  collect t;
  { vars = List.rev !vars; body = t }

let mono t = { vars = []; body = t }
let scheme_ty s = instantiate ~level:1 s
let scheme_arity s = Ty.arity s.body

let pp_scheme ppf s =
  (* a fresh instantiation prints with canonical variable names *)
  Ty.pp ppf (instantiate ~level:1 s)

(* ---- primitive types --------------------------------------------------- *)

let prim_ty ~level (p : Ast.prim) =
  let a () = Ty.fresh_var ~level in
  match p with
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
      Ty.Arrow (Ty.Int, Ty.Arrow (Ty.Int, Ty.Int))
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      Ty.Arrow (Ty.Int, Ty.Arrow (Ty.Int, Ty.Bool))
  | Ast.And | Ast.Or -> Ty.Arrow (Ty.Bool, Ty.Arrow (Ty.Bool, Ty.Bool))
  | Ast.Not -> Ty.Arrow (Ty.Bool, Ty.Bool)
  | Ast.Cons ->
      let e = a () in
      Ty.Arrow (e, Ty.Arrow (Ty.List e, Ty.List e))
  | Ast.Car ->
      let e = a () in
      Ty.Arrow (Ty.List e, e)
  | Ast.Cdr ->
      let e = a () in
      Ty.Arrow (Ty.List e, Ty.List e)
  | Ast.Null ->
      let e = a () in
      Ty.Arrow (Ty.List e, Ty.Bool)
  | Ast.Pair ->
      let x = a () in
      let y = a () in
      Ty.Arrow (x, Ty.Arrow (y, Ty.Prod (x, y)))
  | Ast.Fst ->
      let x = a () in
      let y = a () in
      Ty.Arrow (Ty.Prod (x, y), x)
  | Ast.Snd ->
      let x = a () in
      let y = a () in
      Ty.Arrow (Ty.Prod (x, y), y)
  | Ast.Node ->
      let e = a () in
      Ty.Arrow (Ty.Tree e, Ty.Arrow (e, Ty.Arrow (Ty.Tree e, Ty.Tree e)))
  | Ast.Isleaf ->
      let e = a () in
      Ty.Arrow (Ty.Tree e, Ty.Bool)
  | Ast.Label ->
      let e = a () in
      Ty.Arrow (Ty.Tree e, e)
  | Ast.Left | Ast.Right ->
      let e = a () in
      Ty.Arrow (Ty.Tree e, Ty.Tree e)

(* ---- inference --------------------------------------------------------- *)

let rec infer ~level (env : env) (e : Ast.expr) : Tast.texpr =
  match e with
  | Ast.Const (loc, c) ->
      let ty =
        match c with
        | Ast.Cint _ -> Ty.Int
        | Ast.Cbool _ -> Ty.Bool
        | Ast.Cnil -> Ty.List (Ty.fresh_var ~level)
        | Ast.Cleaf -> Ty.Tree (Ty.fresh_var ~level)
      in
      { Tast.desc = Tast.Const c; ty; loc }
  | Ast.Prim (loc, p) -> { Tast.desc = Tast.Prim p; ty = prim_ty ~level p; loc }
  | Ast.Var (loc, x) -> (
      match Env.find_opt x env with
      | Some s -> { Tast.desc = Tast.Var x; ty = instantiate ~level s; loc }
      | None -> error loc "unbound identifier %s" x)
  | Ast.App (loc, f, a) ->
      let tf = infer ~level env f in
      let ta = infer ~level env a in
      let res = Ty.fresh_var ~level in
      unify (Ast.loc f) tf.Tast.ty (Ty.Arrow (ta.Tast.ty, res));
      { Tast.desc = Tast.App (tf, ta); ty = res; loc }
  | Ast.Lam (loc, x, body) ->
      let a = Ty.fresh_var ~level in
      let tb = infer ~level (Env.add x (mono a) env) body in
      { Tast.desc = Tast.Lam (x, tb); ty = Ty.Arrow (a, tb.Tast.ty); loc }
  | Ast.If (loc, c, t, f) ->
      let tc = infer ~level env c in
      unify (Ast.loc c) tc.Tast.ty Ty.Bool;
      let tt = infer ~level env t in
      let tf = infer ~level env f in
      unify loc tt.Tast.ty tf.Tast.ty;
      { Tast.desc = Tast.If (tc, tt, tf); ty = tt.Tast.ty; loc }
  | Ast.Letrec (loc, bs, body) ->
      (* Nested letrec: monomorphic (only the top-level group of a program
         is generalized, via [infer_program]). *)
      check_distinct loc bs;
      let fresh = List.map (fun (x, _) -> (x, Ty.fresh_var ~level)) bs in
      let env' = List.fold_left (fun env (x, t) -> Env.add x (mono t) env) env fresh in
      let tbs =
        List.map2
          (fun (x, rhs) (_, t) ->
            let trhs = infer ~level env' rhs in
            unify (Ast.loc rhs) trhs.Tast.ty t;
            (x, trhs))
          bs fresh
      in
      let tbody = infer ~level env' body in
      { Tast.desc = Tast.Letrec (tbs, tbody); ty = tbody.Tast.ty; loc }

and check_distinct loc bs =
  let rec go = function
    | [] -> ()
    | (x, _) :: rest ->
        if List.exists (fun (y, _) -> String.equal x y) rest then
          error loc "duplicate definition of %s in letrec"  x
        else go rest
  in
  go bs

let infer_expr ?(env = empty_env) e = infer ~level:1 env e

type program = {
  surface : Surface.t;
  schemes : (string * scheme) list;
  main : Tast.texpr;
}

let infer_group ~level env (defs : (string * Ast.expr) list) =
  let fresh = List.map (fun (x, _) -> (x, Ty.fresh_var ~level)) defs in
  let env' = List.fold_left (fun env (x, t) -> Env.add x (mono t) env) env fresh in
  List.map2
    (fun (x, rhs) (_, t) ->
      let trhs = infer ~level env' rhs in
      unify (Ast.loc rhs) trhs.Tast.ty t;
      (x, trhs))
    defs fresh

let infer_program (surface : Surface.t) : program =
  check_distinct
    (match surface.Surface.defs with
    | (_, rhs) :: _ -> Ast.loc rhs
    | [] -> Loc.dummy)
    surface.Surface.defs;
  let typed = infer_group ~level:1 empty_env surface.Surface.defs in
  let schemes = List.map (fun (x, trhs) -> (x, generalize ~level:0 trhs.Tast.ty)) typed in
  let env = List.fold_left (fun env (x, s) -> Env.add x s env) empty_env schemes in
  let main = infer ~level:1 env surface.Surface.main in
  { surface; schemes; main }

let def_scheme p name = List.assoc name p.schemes

let instantiate_def p name inst =
  let rhs =
    try Surface.def p.surface name
    with Not_found -> invalid_arg (Printf.sprintf "Infer.instantiate_def: unknown definition %s" name)
  in
  let self_ty = match inst with Some t -> t | None -> Ty.fresh_var ~level:1 in
  let env =
    List.fold_left
      (fun env (x, s) ->
        if String.equal x name then Env.add x (mono self_ty) env else Env.add x s env)
      empty_env p.schemes
  in
  let trhs = infer ~level:1 env rhs in
  unify (Ast.loc rhs) trhs.Tast.ty self_ty;
  Tast.default_ground trhs;
  trhs

let simplest_instance p name =
  let t = instantiate_def p name None in
  t.Tast.ty

let main_ground p =
  Tast.default_ground p.main;
  p.main
