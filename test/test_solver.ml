(* Tests for the worklist fixpoint engine: the call-graph/SCC machinery it
   schedules with, differential agreement with the retained round-robin
   baseline (fixed programs, the paper's appendix values and a random
   corpus), isolation of concurrently live solvers (every solver owns a
   private Dvalue.state, including across domains), and the efficiency
   claim the engine exists for — strictly fewer entry evaluations. *)

module B = Escape.Besc
module D = Escape.Dvalue
module Fix = Escape.Fixpoint
module An = Escape.Analysis
module Cg = Nml.Callgraph
module Surface = Nml.Surface
module Ty = Nml.Ty
module Examples = Nml.Examples

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let infer src = Nml.Infer.infer_program (Surface.of_string src)

(* ---- call graph / SCC ---------------------------------------------------- *)

let mutual_src =
  Examples.wrap
    [
      "take xs = if null xs then nil else cons (car xs) (skip (cdr xs))";
      "skip xs = if null xs then nil else take (cdr xs)";
      "len xs = if null xs then 0 else 1 + len (cdr xs)";
    ]
    "len (take [1, 2, 3, 4])"

let callgraph_units =
  [
    Alcotest.test_case "scc-order-is-dependencies-first" `Quick (fun () ->
        (* 0 -> 1 -> 2, 2 -> 1 (cycle {1,2}), 3 isolated *)
        let succs = function 0 -> [ 1 ] | 1 -> [ 2 ] | 2 -> [ 1 ] | _ -> [] in
        let comps = Cg.Scc.compute ~n:4 ~succs in
        checki "count" 3 (List.length comps);
        let pos v =
          let rec go i = function
            | [] -> -1
            | c :: rest -> if List.mem v c then i else go (i + 1) rest
          in
          go 0 comps
        in
        checkb "cycle before its reader" true (pos 1 < pos 0);
        checkb "1 and 2 share a component" true (pos 1 = pos 2));
    Alcotest.test_case "out-of-range-successors-ignored" `Quick (fun () ->
        let comps = Cg.Scc.compute ~n:2 ~succs:(fun _ -> [ 5; -1 ]) in
        checki "count" 2 (List.length comps));
    Alcotest.test_case "refs-and-recursion" `Quick (fun () ->
        let g = Cg.of_program (infer mutual_src) in
        checkb "take refs skip" true (List.mem "skip" (Cg.refs g "take"));
        checkb "mutual pair is recursive" true
          (Cg.is_recursive g "take" && Cg.is_recursive g "skip");
        checkb "len is recursive (self)" true (Cg.is_recursive g "len");
        checkb "unknown name" false (Cg.is_recursive g "nosuch"));
    Alcotest.test_case "program-sccs" `Quick (fun () ->
        let g = Cg.of_program (infer Examples.partition_sort_program) in
        (* append and split are self-cycles; ps depends on both *)
        let comps = Cg.sccs g in
        checki "three components" 3 (List.length comps);
        checks "ps last" "ps" (List.hd (List.nth comps 2)));
  ]

(* ---- differential: worklist vs round-robin ------------------------------- *)

(* Every global verdict of every definition, under the given engine.  The
   solvers share the process-global application memo; agreement must hold
   without any reset in between — that is the selective-invalidation
   correctness claim. *)
let verdicts ~engine src =
  let t = Fix.of_source ~engine src in
  List.concat_map
    (fun (name, _) ->
      List.map
        (fun (v : An.verdict) -> (name, v.An.arg, B.to_string v.An.esc))
        (An.global_all t name))
    (infer src).Nml.Infer.schemes

let check_differential src =
  let wl = verdicts ~engine:Fix.Worklist src in
  let rr = verdicts ~engine:Fix.Round_robin src in
  List.iter2
    (fun (name, arg, a) (name', arg', b) ->
      checks "same verdict order" name name';
      checki "same arg" arg arg';
      checks (Printf.sprintf "G(%s, %d)" name arg) a b)
    wl rr

let fixed_programs =
  [
    ("partition-sort", Examples.partition_sort_program);
    ("map-pair", Examples.map_pair_program);
    ("rev", Examples.rev_program);
    ("mutual", mutual_src);
    ( "zip",
      Examples.wrap [ Examples.zip_def ] "zip [1, 2, 3] [4, 5, 6]" );
    ( "trees",
      Examples.wrap
        [ Examples.tmap_def; Examples.mirror_def; Examples.tinsert_def ]
        "0" );
  ]

let differential_units =
  List.map
    (fun (name, src) ->
      Alcotest.test_case ("engines-agree-" ^ name) `Quick (fun () ->
          check_differential src))
    fixed_programs
  @ [
      Alcotest.test_case "engines-agree-random-corpus" `Slow (fun () ->
          let rand = Random.State.make [| 20260807 |] in
          for _ = 1 to 40 do
            let src = QCheck.Gen.generate1 ~rand Gen.gen_any_program in
            check_differential src
          done);
    ]

(* ---- appendix values under the worklist engine --------------------------- *)

let appendix_units =
  [
    Alcotest.test_case "appendix-values" `Quick (fun () ->
        let t = Fix.of_source Examples.partition_sort_program in
        let g name arg = B.to_string (An.global t name ~arg).An.esc in
        checks "G(append,1)" "<1,0>" (g "append" 1);
        checks "G(append,2)" "<1,1>" (g "append" 2);
        checks "G(split,1)" "<0,0>" (g "split" 1);
        checks "G(split,2)" "<1,0>" (g "split" 2);
        checks "G(split,3)" "<1,1>" (g "split" 3);
        checks "G(split,4)" "<1,1>" (g "split" 4);
        checks "G(ps,1)" "<1,0>" (g "ps" 1);
        checkb "not capped" true (not (Fix.capped t)));
    Alcotest.test_case "worklist-single-pass-on-appendix" `Quick (fun () ->
        let t = Fix.of_source Examples.partition_sort_program in
        ignore (Fix.value t "ps" None);
        checkb "few passes" true (Fix.passes t <= 2));
  ]

(* ---- solver isolation (per-solver Dvalue state) --------------------------- *)

let isolation_units =
  [
    Alcotest.test_case "interleaved-solvers-match-solo" `Quick (fun () ->
        (* solo reference runs *)
        let solo_a =
          B.to_string
            (An.global (Fix.of_source Examples.partition_sort_program) "append" ~arg:2)
              .An.esc
        in
        let solo_b =
          B.to_string
            (An.global (Fix.of_source Examples.map_pair_program) "map" ~arg:2).An.esc
        in
        (* two live solvers with interleaved queries, mixed engines: the
           round-robin solver clears its memo wholesale and the worklist
           solver touches generations; each owns a private state, so
           neither may perturb the other *)
        let a = Fix.of_source ~engine:Fix.Worklist Examples.partition_sort_program in
        let b = Fix.of_source ~engine:Fix.Round_robin Examples.map_pair_program in
        let a1 = B.to_string (An.global a "append" ~arg:2).An.esc in
        let b1 = B.to_string (An.global b "map" ~arg:2).An.esc in
        let a2 = B.to_string (An.global a "append" ~arg:2).An.esc in
        let b2 = B.to_string (An.global b "map" ~arg:2).An.esc in
        checks "a matches solo" solo_a a1;
        checks "b matches solo" solo_b b1;
        checks "a stable across interleaving" a1 a2;
        checks "b stable across interleaving" b1 b2);
    Alcotest.test_case "per-solver-stats-are-cold" `Quick (fun () ->
        (* every solver starts from its own cold state: the second,
           interleaved solver reports exactly the counters of a solo run,
           not the residue of the first solver's work *)
        let t = Fix.of_source Examples.partition_sort_program in
        ignore (Fix.value t "ps" None);
        let misses1 = (Fix.stats t).Fix.stats_cache_misses in
        let t2 = Fix.of_source Examples.partition_sort_program in
        ignore (Fix.value t2 "ps" None);
        let misses2 = (Fix.stats t2).Fix.stats_cache_misses in
        checkb "a cold run misses" true (misses1 > 0);
        checki "cold start reproduced" misses1 misses2);
    Alcotest.test_case "with-state-scopes-the-engine" `Quick (fun () ->
        (* chain bound and counters are confined to the installed state *)
        let s1 = D.create_state () and s2 = D.create_state () in
        D.with_state s1 (fun () -> D.ensure_d 3);
        checki "s1 sees its bound" 3 (D.with_state s1 D.current_d);
        checki "s2 unaffected" 0 (D.with_state s2 D.current_d);
        D.with_state s2 (fun () ->
            checki "s2 stays cold inside its scope" 0 (D.current_d ());
            checki "s1 keeps its bound across scopes" 3 (D.with_state s1 D.current_d)));
    Alcotest.test_case "concurrent-domains-match-solo" `Quick (fun () ->
        (* shared-nothing across domains: concurrent solvers on separate
           domains reproduce the solo verdicts and solo cost counters *)
        let solve src f arg () =
          let t = Fix.of_source src in
          let esc = B.to_string (An.global t f ~arg).An.esc in
          (esc, Fix.evaluations t)
        in
        let job_a = solve Examples.partition_sort_program "ps" 1 in
        let job_b = solve Examples.map_pair_program "map" 2 in
        let solo_a = job_a () and solo_b = job_b () in
        let da = Domain.spawn job_a and db = Domain.spawn job_b in
        let ra = Domain.join da and rb = Domain.join db in
        checks "a verdict" (fst solo_a) (fst ra);
        checks "b verdict" (fst solo_b) (fst rb);
        checki "a evaluations" (snd solo_a) (snd ra);
        checki "b evaluations" (snd solo_b) (snd rb));
  ]

(* ---- efficiency: the reason the engine exists ----------------------------- *)

let wide_chain n =
  Examples.wrap
    (List.init n (fun i ->
         if i = 0 then "w0 x = cons 0 x"
         else Printf.sprintf "w%d x = w%d (cons %d x)" i (i - 1) i))
    (Printf.sprintf "w%d [1, 2]" (n - 1))

let efficiency_units =
  [
    Alcotest.test_case "worklist-beats-round-robin-on-wide-chain" `Quick (fun () ->
        let n = 12 in
        let solve engine =
          let t = Fix.of_source ~max_iters:1000 ~engine (wide_chain n) in
          ignore (Fix.value t (Printf.sprintf "w%d" (n - 1)) None);
          (Fix.evaluations t, Fix.capped t)
        in
        let wl, wl_capped = solve Fix.Worklist in
        let rr, rr_capped = solve Fix.Round_robin in
        checkb "neither capped" false (wl_capped || rr_capped);
        checki "worklist is linear" n wl;
        checkb
          (Printf.sprintf "strictly fewer evaluations (%d < %d)" wl rr)
          true (wl < rr));
    Alcotest.test_case "non-recursive-entries-evaluated-once" `Quick (fun () ->
        let t = Fix.of_source ~engine:Fix.Worklist (wide_chain 6) in
        ignore (Fix.value t "w5" None);
        let s = Fix.stats t in
        checki "entries" 6 s.Fix.stats_entries;
        checki "evaluations" 6 s.Fix.stats_evaluations;
        checki "one pass" 1 s.Fix.stats_passes;
        checki "six singleton sccs" 6 s.Fix.stats_sccs;
        checki "largest scc" 1 s.Fix.stats_largest_scc);
  ]

let () =
  Alcotest.run "solver"
    [
      ("callgraph", callgraph_units);
      ("differential", differential_units);
      ("appendix", appendix_units);
      ("isolation", isolation_units);
      ("efficiency", efficiency_units);
    ]
