(* The direct-product combinator: two Specs solved in lockstep by one
   engine.  Values, lattice operations and transfer functions are
   pointwise; a product source pairs one source of each component, so a
   read noted by the solver lands in both components' frames and a touch
   stales both components' memos.  The product's [global] hook splits
   the solver's paired answer back into the component each transfer
   function expects, which is what lets e.g. [Espec] and [Usage.D] run
   unmodified inside the pair.

   This is the {e direct} product; the reduction (one component's
   verdict sharpening the other's, e.g. usage [Consumed] licensing an
   escape-side reclaim) happens at the report level in
   [Analyses.Product], where both components are in hand.  The functor
   is generative because it owns ambient registries mapping component
   source ids back to product sources. *)

module Make (A : Spec.S) (B : Spec.S) () : sig
  include Spec.S with type value = A.value * B.value
end = struct
  let name = A.name ^ "-x-" ^ B.name

  type value = A.value * B.value

  let bottom ty = (A.bottom ty, B.bottom ty)
  let top ~d ty = (A.top ~d ty, B.top ~d ty)
  let join (a1, b1) (a2, b2) = (A.join a1 a2, B.join b1 b2)
  let equal ~d (a1, b1) (a2, b2) = A.equal ~d a1 a2 && B.equal ~d b1 b2
  let leq ~d (a1, b1) (a2, b2) = A.leq ~d a1 a2 && B.leq ~d b1 b2
  let widen ~d ty (a, b) = (A.widen ~d ty a, B.widen ~d ty b)

  (* ---- per-solver state --------------------------------------------------- *)

  type source = { id : int; a : A.source; b : B.source }

  type state = {
    sa : A.state;
    sb : B.state;
    by_a : (int, source) Hashtbl.t;  (* A source id -> product source *)
    by_b : (int, source) Hashtbl.t;
  }

  let create_state () =
    {
      sa = A.create_state ();
      sb = B.create_state ();
      by_a = Hashtbl.create 32;
      by_b = Hashtbl.create 32;
    }

  let ambient : state Domain.DLS.key = Domain.DLS.new_key create_state
  let installed : state option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

  let current_state () =
    match Domain.DLS.get installed with
    | Some s -> s
    | None -> Domain.DLS.get ambient

  let with_state s f =
    let prev = Domain.DLS.get installed in
    Domain.DLS.set installed (Some s);
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set installed prev)
      (fun () -> A.with_state s.sa (fun () -> B.with_state s.sb f))

  let ensure_d d =
    A.ensure_d d;
    B.ensure_d d

  (* ---- sources ------------------------------------------------------------ *)

  let next_id = Atomic.make 0

  let new_source () =
    let st = current_state () in
    let s =
      { id = Atomic.fetch_and_add next_id 1; a = A.new_source (); b = B.new_source () }
    in
    Hashtbl.replace st.by_a (A.source_id s.a) s;
    Hashtbl.replace st.by_b (B.source_id s.b) s;
    s

  let source_id s = s.id

  let touch s =
    A.touch s.a;
    B.touch s.b

  let note_read s =
    A.note_read s.a;
    B.note_read s.b

  (* Both components collect their own frames; the union (mapped back to
     product sources, deduplicated) is the product's read set.  A read
     noted through [note_read] appears on both sides; a read a component
     makes privately (e.g. probing inside [A.equal]) appears on one. *)
  let with_reads f =
    let st = current_state () in
    let (x, breads), areads = A.with_reads (fun () -> B.with_reads f) in
    let seen = Hashtbl.create 16 in
    let out = ref [] in
    let add s gen =
      if not (Hashtbl.mem seen s.id) then begin
        Hashtbl.add seen s.id ();
        out := (s, gen) :: !out
      end
    in
    List.iter
      (fun (a, gen) ->
        match Hashtbl.find_opt st.by_a (A.source_id a) with
        | Some s -> add s gen
        | None -> ())
      areads;
    List.iter
      (fun (b, gen) ->
        match Hashtbl.find_opt st.by_b (B.source_id b) with
        | Some s -> add s gen
        | None -> ())
      breads;
    (x, !out)

  (* ---- memo (delegated) --------------------------------------------------- *)

  let clear_memo () =
    A.clear_memo ();
    B.clear_memo ()

  let memo_stats () =
    let ha, ma = A.memo_stats () and hb, mb = B.memo_stats () in
    (ha + hb, ma + mb)

  let invalidations () = A.invalidations () + B.invalidations ()

  (* ---- transfer ----------------------------------------------------------- *)

  type ctx = { ca : A.ctx; cb : B.ctx }

  let make_ctx ~d ~global ~max_iters =
    {
      ca = A.make_ctx ~d ~global:(fun n ty -> fst (global n ty)) ~max_iters;
      cb = B.make_ctx ~d ~global:(fun n ty -> snd (global n ty)) ~max_iters;
    }

  let transfer ctx tast = (A.transfer ctx.ca tast, B.transfer ctx.cb tast)
  let iterations ctx = A.iterations ctx.ca
  let record_iteration ctx =
    A.record_iteration ctx.ca;
    B.record_iteration ctx.cb
  let capped ctx = A.capped ctx.ca || B.capped ctx.cb
  let set_capped ctx =
    A.set_capped ctx.ca;
    B.set_capped ctx.cb

  let demand_key fname ty = name ^ ": " ^ fname ^ " @ " ^ Nml.Ty.to_string ty
end
