(* The introduction's example: map pair [[1,2],[3,4],[5,6]].

   The paper derives three compile-time properties (section 1):
     1. the top spine of pair's parameter does not escape pair;
     2. the top spine of map's second parameter does not escape map,
        and the elements escape only to the extent the unknown f lets
        them;
     3. in this particular call, the top TWO spines of the literal do
        not escape,
   and concludes that both spine levels can be stack allocated.

     dune exec examples/map_pair.exe *)

module An = Escape.Analysis

let () =
  let src = Nml.Examples.map_pair_program in
  Format.printf "--- program ---@.%s@.@." src;
  let surface = Nml.Surface.of_string src in
  let t = Escape.Fixpoint.of_source src in

  (* property 1 *)
  let p1 = An.global t "pair" ~arg:1 in
  Format.printf "1. G(pair, 1) = %s: top spine of pair's parameter never escapes@."
    (Escape.Besc.to_string p1.An.esc);

  (* property 2 *)
  let p2 = An.global t "map" ~arg:2 in
  let pf = An.global t "map" ~arg:1 in
  Format.printf
    "2. G(map, 2) = %s (top spine stays), G(map, 1) = %s (f itself never escapes)@."
    (Escape.Besc.to_string p2.An.esc)
    (Escape.Besc.to_string pf.An.esc);

  (* property 3: the local test on this very call *)
  let args = [ Nml.Parser.parse "pair"; Nml.Parser.parse "[[1,2],[3,4],[5,6]]" ] in
  let p3 = An.local t "map" args ~arg:2 in
  Format.printf "3. L(map, 2) = %s on s = %d spines: top %d spines stay inside the call@.@."
    (Escape.Besc.to_string p3.An.esc)
    p3.An.spines
    (An.non_escaping_top_spines p3);

  (* Figure 1, on this very value *)
  let v = Nml.Eval.run (Nml.Surface.of_string "[[1,2],[3,4],[5,6]]") in
  Format.printf "--- Figure 1 ---@.%a@.@." Escape.Report.spines_figure v;

  (* stack-allocate both spine levels, as the paper suggests *)
  let r =
    Optimize.Transform.optimize ~options:{ Optimize.Transform.none with stack = true }
      surface
  in
  Format.printf "--- stack allocation ---@.%a@." Optimize.Transform.pp_report r;
  let run ir =
    let m = Runtime.Machine.create ~heap_size:64 ~check_arenas:true () in
    let w = Runtime.Machine.eval m ir in
    (Runtime.Machine.read_value m w, Runtime.Machine.stats m)
  in
  let v0, s0 = run (Runtime.Ir.of_program surface) in
  let v1, s1 = run r.Optimize.Transform.ir in
  Format.printf "baseline : %a  (heap %d, region %d)@." Nml.Eval.pp_value v0
    s0.Runtime.Stats.heap_allocs s0.Runtime.Stats.arena_allocs;
  Format.printf
    "stack    : %a  (heap %d, region %d, all %d region cells freed at call exit)@."
    Nml.Eval.pp_value v1 s1.Runtime.Stats.heap_allocs s1.Runtime.Stats.arena_allocs
    s1.Runtime.Stats.arena_freed
