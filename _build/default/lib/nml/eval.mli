(** Standard (call-by-value) semantics of [nml].

    This is the reference interpreter: the exact escape semantics of the
    paper is an abstraction of a concrete execution, and the taint
    interpreter ({!Core.Exact}) as well as the storage simulator
    ({!Runtime.Machine}) must agree with the results produced here. *)

type value =
  | Vint of int
  | Vbool of bool
  | Vnil
  | Vcons of value * value
  | Vpair of value * value
  | Vleaf
  | Vnode of value * value * value  (** left, label, right *)
  | Vclos of string * Ast.expr * env  (** parameter, body, captured env *)
  | Vprim of Ast.prim * value list  (** partially applied primitive *)

and env
(** Environments map identifiers to values; [letrec] is implemented with
    backpatched references, so reading a binding before its definition has
    been evaluated is a runtime error (as in OCaml's [let rec]). *)

exception Runtime_error of string
exception Out_of_fuel

val empty_env : env
val bind : string -> value -> env -> env
val lookup : env -> string -> value

val env_values : env -> value list
(** All values bound in the environment (pending [letrec] slots that have
    not been evaluated yet are skipped).  Used by the escape observer to
    traverse what a closure captures. *)

val eval : ?fuel:int -> ?env:env -> Ast.expr -> value
(** Evaluates an expression.  [fuel] bounds the number of evaluation steps
    (default: unlimited) and protects property-based tests against
    divergent generated programs: @raise Out_of_fuel when exhausted.
    @raise Runtime_error for [car]/[cdr] of [nil], division by zero,
    application of a non-function, and unbound identifiers. *)

val run : ?fuel:int -> Surface.t -> value
(** Evaluates a whole program. *)

val defs_env : ?fuel:int -> Surface.t -> env
(** Evaluates just the definitions of a program, returning the recursive
    environment binding them (the program's main expression is not
    evaluated). *)

val apply_value : ?fuel:int -> value -> value list -> value
(** Applies an already evaluated function value to evaluated arguments —
    used by the dynamic escape observer, which must tag argument values
    before the call. *)

val value_of_int_list : int list -> value
val int_list_of_value : value -> int list
(** @raise Runtime_error if the value is not a flat list of integers. *)

val list_of_value : value -> value list
(** Spine of a list value as an OCaml list.
    @raise Runtime_error on non-lists. *)

val equal_value : value -> value -> bool
(** Structural equality on first-order values; closures and partial
    applications are never equal to anything (returns [false]). *)

val pp_value : Format.formatter -> value -> unit
