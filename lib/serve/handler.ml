(* The per-request worker job: dispatches one parsed request to the
   same per-file entry points [nmlc batch] uses, so a successful server
   response is byte-identical to the batch output for the same input —
   the three-way differential (server ≡ warm batch ≡ cold batch) holds
   by construction, not by re-implementation.

   Toolchain failures of the analyzed program (parse errors, type
   errors, even internal errors) are *successful* RPCs whose result
   carries the rendered diagnostics and the batch exit code; only
   server-side conditions (expired deadline, quarantined input, injected
   crash) surface as SRV errors.  [Crash] and [Out_of_memory] are the
   two exceptions deliberately allowed to escape — they kill the worker
   domain so the supervisor's reap-respawn-quarantine path gets
   exercised for real. *)

module J = Nml.Json

exception Crash of string

let () =
  Printexc.register_printer (function
    | Crash msg -> Some (Printf.sprintf "injected crash: %s" msg)
    | _ -> None)

type t = {
  store : Cache.Store.t option;
  fault : Fault.t;
  quarantined : string -> bool;
}

(* The quarantine identity of a request's input.  Content-sensitive on
   purpose: a file that crashed a worker is quarantined as its current
   bytes, so fixing the file lifts the quarantine without a restart.
   The boom marker is part of the identity — a fault-injected crash
   quarantines only the boom-marked request, not the file itself. *)
let quarantine_key (req : Protocol.request) =
  (if req.boom then "boom:" else "")
  ^
  match req.source, req.path with
  | Some src, _ -> "src:" ^ Digest.to_hex (Digest.string src)
  | None, Some path ->
      let content =
        match In_channel.with_open_bin path In_channel.input_all with
        | s -> Digest.to_hex (Digest.string s)
        | exception Sys_error _ -> "unreadable"
      in
      Printf.sprintf "path:%s:%s" path content
  | None, None -> "none"

(* A [Slow_request] stall that honors cooperative cancellation: 5 ms
   slices, stopping as soon as the client abandons the job. *)
let cancellable_sleep (job : Pool.job) seconds =
  let stop_at = Unix.gettimeofday () +. seconds in
  while
    (not (Atomic.get job.Pool.cancelled))
    && Unix.gettimeofday () < stop_at
  do
    Thread.delay 0.005
  done

let result_json (r : Cache.Batch.result) =
  J.Obj
    [
      ("path", J.Str r.path);
      ("code", J.int r.code);
      ("defs", J.int r.defs);
      ("findings", J.int r.findings);
      ("evaluations", J.int r.evaluations);
      ("scc_hits", J.int r.scc_hits);
      ("scc_misses", J.int r.scc_misses);
      ("output", J.Str r.output);
      ("errors", J.Str r.errors);
    ]

let vet_result ~path src =
  Cache.Batch.protect path (fun () ->
      let s = Nml.Surface.of_string ~file:path src in
      let ir =
        (Optimize.Transform.optimize ~options:Optimize.Transform.all s)
          .Optimize.Transform.ir
      in
      let ds, summary = Vet.Verify.audit ~source:s ir in
      let rendered =
        if ds = [] then ""
        else
          Format.asprintf "%a@." (Nml.Diagnostic.render Nml.Diagnostic.Human) ds
      in
      {
        Cache.Batch.path;
        output =
          rendered
          ^ Printf.sprintf "vet: %d annotation(s) audited, %d finding(s)\n"
              summary.Vet.Verify.audited summary.Vet.Verify.findings;
        errors = "";
        code = (if summary.Vet.Verify.findings > 0 then 1 else 0);
        defs = 0;
        findings = summary.Vet.Verify.findings;
        evaluations = 0;
        scc_hits = 0;
        scc_misses = 0;
      })

let dispatch t (req : Protocol.request) =
  let read path = In_channel.with_open_text path In_channel.input_all in
  match req.meth with
  | Protocol.Analyze -> (
      match req.analysis with
      | None | Some "escape" -> (
          match req.path, req.source with
          | Some path, _ -> Cache.Batch.analyze_file ?store:t.store path
          | None, Some src ->
              Cache.Batch.analyze_source ?store:t.store ~path:"<request>" src
          | None, None -> assert false (* rejected by Protocol.parse *))
      | Some name -> (
          match Analyses.Registry.find name with
          | None ->
              (* a user error, not a crash: rendered as a code-1 diagnostic
                 through the same protection the default path uses *)
              Cache.Batch.protect "<request>" (fun () ->
                  failwith (Printf.sprintf "unknown analysis %s" name))
          | Some e -> (
              match req.path, req.source with
              | Some path, _ -> Analyses.Registry.batch_job e ~store:t.store path
              | None, Some src ->
                  Cache.Batch.protect "<request>" (fun () ->
                      let prog =
                        Nml.Infer.infer_program
                          (Nml.Surface.of_string ~file:"<request>" src)
                      in
                      let o = e.Analyses.Registry.run ?store:t.store prog in
                      {
                        Cache.Batch.path = "<request>";
                        output = o.Analyses.Registry.output;
                        errors = "";
                        code = 0;
                        defs = o.Analyses.Registry.defs;
                        findings = 0;
                        evaluations = o.Analyses.Registry.evaluations;
                        scc_hits = o.Analyses.Registry.scc_hits;
                        scc_misses = o.Analyses.Registry.scc_misses;
                      })
              | None, None -> assert false)))
  | Protocol.Lint -> (
      match req.path, req.source with
      | Some path, _ -> Lint.Batch.analyze_file ~store:t.store path
      | None, Some src -> Lint.Batch.analyze_source ~store:t.store ~path:"<request>" src
      | None, None -> assert false)
  | Protocol.Vet -> (
      match req.path, req.source with
      | Some path, _ ->
          Cache.Batch.protect path (fun () -> vet_result ~path (read path))
      | None, Some src -> vet_result ~path:"<request>" src
      | None, None -> assert false)
  | Protocol.Status | Protocol.Shutdown ->
      assert false (* answered inline by the server, never queued *)

let handle t (job : Pool.job) : Pool.resp =
  let req = job.Pool.req in
  let err ?retry_after_ms ~code msg =
    { Pool.body = Protocol.error ?id:req.Protocol.id ?retry_after_ms ~code msg;
      is_error = true }
  in
  if Pool.expired ~now:(Unix.gettimeofday ()) job then
    err ~code:Protocol.srv_deadline "deadline exceeded before analysis began"
  else if t.quarantined job.Pool.key then
    err ~code:Protocol.srv_quarantined
      "input quarantined after crashing a worker; edit it to lift the quarantine"
  else begin
    if t.fault = Fault.Slow_request then cancellable_sleep job 0.25;
    (match t.fault, req.Protocol.boom with
    | Fault.Worker_crash, true -> raise (Crash "worker-crash fault armed and boom set")
    | Fault.Oom, true -> raise Out_of_memory
    | _ -> ());
    let r = dispatch t req in
    { Pool.body = Protocol.ok ?id:req.Protocol.id (result_json r); is_error = false }
  end
