(** Human-readable analysis reports (used by the [nmlc] driver and the
    examples). *)

val program : Format.formatter -> Fixpoint.t -> unit
(** For every definition of the program: its simplest instance type, the
    global escape verdict of every parameter, and the sharing guarantee
    for its result (Theorem 2, worst case). *)

val definition : Format.formatter -> Fixpoint.t -> string -> unit
(** The same report for a single definition. *)

(** {2 Definition summaries}

    The data behind {!definition}, split from the rendering so the
    persistent summary cache can store it and replay it without a solver.
    [definition ppf t name] is by construction byte-identical to
    [pp_def_summary ppf (summarize t name)]. *)

type arg_summary = {
  s_arg : int;  (** 1-based parameter position *)
  s_spines : int;  (** spine count of the parameter's type *)
  s_esc : Besc.t;  (** the global test's verdict *)
  s_components : (string * Besc.t) list;
      (** per-component verdicts for pair-typed parameters (rendered
          projection path, escape value); empty otherwise *)
}

type def_summary = {
  s_name : string;
  s_inst : string;  (** rendered simplest-instance type *)
  s_args : arg_summary list;
  s_sharing : (int * int) option;
      (** (unshared top spines, result spines) when the result is
          list-shaped *)
}

val summarize : Fixpoint.t -> string -> def_summary
(** Runs the global tests for one definition and packages the result. *)

val summarize_program : Fixpoint.t -> def_summary list
(** One summary per definition, in program order. *)

val pp_def_summary : Format.formatter -> def_summary -> unit
(** Pure printer: renders a summary exactly as {!definition} would. *)

val pp_program_summaries : Format.formatter -> def_summary list -> unit
(** Pure printer: renders summaries exactly as {!program} would. *)

val call : Format.formatter -> Fixpoint.t -> string -> Nml.Ast.expr list -> unit
(** Local escape verdicts for one call [f e1 ... en]. *)

val kleene_trace : ?max_iters:int -> Format.formatter -> Nml.Infer.program -> unit
(** The appendix A.1 iteration table: runs Jacobi iteration on the
    top-level group from bottom (at the simplest instances) and prints,
    for every iterate, the global-test escape value of each definition's
    parameters — e.g. for [append]:

    {v
      iterate 0   append: <0,0> <0,0>   (all bottom)
      iterate 1   append: <1,0> <1,1>
      iterate 2   append: <1,0> <1,1>   (stable)
    v} *)

val spines_figure : Format.formatter -> Nml.Eval.value -> unit
(** The paper's Figure 1: renders a list value with its cons cells
    labelled by top/bottom spine indices, e.g. for
    [[[1,2],[3,4]]] the outer chain is top spine 1 / bottom spine 2 and
    the element chains are top spine 2 / bottom spine 1. *)
