module A = Nml.Ast

let head_and_args e =
  let rec go acc = function
    | A.App (_, f, a) -> go (a :: acc) f
    | head -> (head, acc)
  in
  go [] e

let rec strip_lams = function
  | A.Lam (_, x, b) ->
      let ps, body = strip_lams b in
      (x :: ps, body)
  | e -> ([], e)

let rec is_literal_list = function
  | A.Const (_, A.Cnil) -> true
  | A.App (_, A.App (_, A.Prim (_, A.Cons), _), tl) -> is_literal_list tl
  | _ -> false

let rec literal_depth e =
  let rec elems = function
    | A.Const (_, A.Cnil) -> []
    | A.App (_, A.App (_, A.Prim (_, A.Cons), hd), tl) -> hd :: elems tl
    | _ -> []
  in
  if not (is_literal_list e) then 0
  else
    match elems e with
    | [] -> 1
    | es -> 1 + List.fold_left (fun acc el -> min acc (literal_depth el)) max_int es

let rec is_suffix_of x = function
  | A.Var (_, v) -> String.equal v x
  | A.App (_, A.Prim (_, (A.Cdr | A.Left | A.Right)), e) -> is_suffix_of x e
  | _ -> false

let rec is_literal_tree = function
  | A.Const (_, A.Cleaf) -> true
  | A.App (_, A.App (_, A.App (_, A.Prim (_, A.Node), l), _), r) ->
      is_literal_tree l && is_literal_tree r
  | _ -> false
