The batch driver and its persistent summary cache.

  $ alias nmlc=../../bin/nmlc.exe

A little corpus: two clean programs, one of them sharing a definition
with the other.

  $ mkdir corpus
  $ cat > corpus/rev.nml <<'EOF'
  > letrec
  >   append x y = if null x then y else cons (car x) (append (cdr x) y);
  >   rev l = if null l then nil else append (rev (cdr l)) (cons (car l) nil)
  > in rev [1, 2, 3]
  > EOF
  $ cat > corpus/use.nml <<'EOF'
  > letrec
  >   append x y = if null x then y else cons (car x) (append (cdr x) y)
  > in append [1] [2]
  > EOF

A cold run analyzes everything once and fills the cache (the shared
append SCC is content-addressed, so the second file already hits it;
one job, so the hit does not race the first file's save):

  $ nmlc batch corpus --jobs 1 --cache cache
  == corpus/rev.nml ==
  append : int list -> int list -> int list
    G(append, 1) = <1,0>  -- no spine of argument 1 escapes, only elements may
    G(append, 2) = <1,1>  -- top 0 of 1 spine(s) never escape; bottom 1 may escape
    sharing: top 0 of the result's 1 spine(s) are unshared in any call
  
  rev : int list -> int list
    G(rev, 1) = <1,0>  -- no spine of argument 1 escapes, only elements may
    sharing: top 1 of the result's 1 spine(s) are unshared in any call
  
  
  == corpus/use.nml ==
  append : int list -> int list -> int list
    G(append, 1) = <1,0>  -- no spine of argument 1 escapes, only elements may
    G(append, 2) = <1,1>  -- top 0 of 1 spine(s) never escape; bottom 1 may escape
    sharing: top 0 of the result's 1 spine(s) are unshared in any call
  
  
  batch: 2 file(s), 2 ok, 0 error(s); 4 entry evaluation(s), 1 scc hit(s), 2 scc miss(es)




A warm rerun of the unchanged corpus performs zero entry evaluations and
prints the identical reports:

  $ nmlc batch corpus --jobs 2 --cache cache > warm.out
  $ grep '^batch:' warm.out
  batch: 2 file(s), 2 ok, 0 error(s); 0 entry evaluation(s), 3 scc hit(s), 0 scc miss(es)
  $ nmlc batch corpus --jobs 2 --no-cache | grep -v '^batch:' > cold.reports
  $ grep -v '^batch:' warm.out | diff - cold.reports

--no-cache neither reads nor writes the store:

  $ nmlc batch corpus --no-cache | grep '^batch:'
  batch: 2 file(s), 2 ok, 0 error(s); 6 entry evaluation(s), 0 scc hit(s), 0 scc miss(es)

The JSON form is a single deterministic document (no timing data):

  $ nmlc batch corpus/use.nml --cache cache --format json
  {"schema": "nmlc/batch-v1", "files": [
    {"path": "corpus/use.nml", "code": 0, "defs": 1, "evaluations": 0, "scc_hits": 1, "scc_misses": 0}
  ], "evaluations": 0, "scc_hits": 1, "scc_misses": 0, "errors": 0}

A file that fails to analyze gets its diagnostic, doesn't disturb its
neighbours, and sets the exit code:

  $ cat > corpus/broken.nml <<'EOF'
  > letrec f l = cons x nil in f [1]
  > EOF
  $ nmlc batch corpus --cache cache > partial.out 2> partial.err; echo "exit $?"
  exit 1
  $ grep -c '^==' partial.out
  3
  $ cat partial.err
  corpus/broken.nml:1.19-1.20: error[TYPE001]: unbound identifier x
  
  $ rm corpus/broken.nml

A missing path is a user error:

  $ nmlc batch corpus/nosuch.nml 2>&1 | tail -1; nmlc batch corpus/nosuch.nml 2> /dev/null; echo "exit $?"
  Try 'nmlc batch --help' or 'nmlc --help' for more information.
  exit 124

The batch respects the exit-code regime on internal errors:

  $ NMLC_INTERNAL_ERROR=1 nmlc batch corpus 2> /dev/null; echo "exit $?"
  exit 124

analyze --stats only prints statistics when the whole command succeeded
(a failing --local used to leave a half-report with stats attached):

  $ nmlc analyze -e "letrec id = fun x -> x in 5" --stats --local
  id : int -> int
    G(id, 1) = <1,0>  -- argument 1 (not a list) may escape
  
  
  error: --local: the main expression is not a call
  [1]

