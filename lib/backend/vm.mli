(** A compact register VM executing closure-converted bytecode.

    The third leg of the differential oracle next to the reference
    interpreter and the storage machine: same storage policy layer
    ({!Runtime.Heap}), same collection discipline (minor collections
    stop at old cells, chaos mode forces collections at deterministic
    pseudo-random points and poisons freed cells), same observable
    semantics — but flat closure environments, direct known calls, real
    tail calls, and heap primitives that honor the optimizer's verdicts
    natively ([Alloc] carries its placement, [Reuse] overwrites in
    place, arenas bump-allocate and free wholesale). *)

type value =
  | Int of int
  | Bool of bool
  | Nil
  | Leaf
  | Ptr of int
  | Pair of int
  | Tree of int
  | Clos of clos
  | Slotv of slot

and clos = {
  fn : int;
  env : value array;
  pap : value list;
  mutable cmark : bool;
  mutable hints : int list;
}

and slot = { sname : string; mutable sv : value option }

type code
(** A compiled program: one bytecode function per lambda nest plus the
    entry sequence. *)

exception Error of string  (** a program fault: the user's bug *)

exception Out_of_memory
exception Out_of_fuel

exception Internal of string  (** a backend invariant broke: our bug *)

val compile : Runtime.Ir.expr -> code
(** ANF-lower, verify, closure-convert, and emit bytecode.  Raises
    {!Internal} if the ANF verifier rejects the lowering (a backend
    bug). *)

val report : code -> Closure.report

type chaos = Runtime.Machine.chaos = {
  gc_period : int;
  poison : bool;
  chaos_seed : int;
}

val no_chaos : chaos

type t

val create :
  ?heap_size:int ->
  ?grow:bool ->
  ?check_arenas:bool ->
  ?fuel:int ->
  ?chaos:chaos ->
  ?config:Runtime.Heap.config ->
  unit ->
  t
(** Same knobs and defaults as {!Runtime.Machine.create}: 4096-cell
    heap, growth on, arena escape checking off, unlimited fuel, no
    chaos, legacy storage config. *)

val eval : t -> code -> value
(** Execute, folding this run's counters into the process-global
    telemetry even on abnormal exit. *)

val run_ir : t -> Runtime.Ir.expr -> value
(** [compile] + [eval]. *)

val read_value : t -> value -> Nml.Eval.value
(** Chase the result into an interpreter-level value (for differential
    comparison); fails on functions, dangling cells, or structures over
    a million nodes. *)

val cell_values : t -> int -> value * value * value
(** The [car], [cdr] and [lbl] values of the live cell at an address —
    the window the concrete-sharing oracle in the test harness uses to
    walk a result's cell graph (the VM-side twin of
    {!Runtime.Machine.cell_words}).
    @raise Error on a freed cell. *)

val stats : t -> Runtime.Stats.t
val live_cells : t -> int
val config : t -> Runtime.Heap.config

val pp_code : Format.formatter -> code -> unit
(** Disassembly, for [nmlc compile --dump-bytecode]. *)
