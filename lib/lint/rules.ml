(* The shipped rules.

   LINT001 missed-reuse     escape+sharing license in-place reuse but
                            Optimize.Reuse produced no primed version
   LINT002 heap-doomed      every call of the definition may return a
                            result sharing an argument spine, so no
                            storage optimization can ever target it
   LINT003 invariance       Theorem-1 self-audit: s_i - k_i must agree
                            across the monomorphic instances Nml.Mono
                            demands (a solver-soundness cross-check)
   LINT004 dead-spine       a parameter spine with global escape <0,0>
                            that the function also never traverses
   LINT005 unused-binding   classic structural rule
   LINT006 unreachable      branch under a constant condition
   LINT007 wasted-spine     a fresh multi-cell spine is passed to a
                            parameter that never needs it (spine-liveness)
   LINT008 shared-mutation  a destructive reuse candidate's consumed
                            parameter is spine-shared per the sharing
                            analysis: escape and sharing disagree

   Every rule anchors its finding at a parsed source span (a parameter
   binder, a definition body, a dead branch) so suppression comments
   and SARIF regions are meaningful. *)

module A = Nml.Ast
module An = Escape.Analysis
module B = Escape.Besc
module D = Nml.Diagnostic
module Fix = Escape.Fixpoint
module Sh = Escape.Sharing
module Ty = Nml.Ty

(* ---- shared syntactic helpers ---------------------------------------------- *)

let strip_lams rhs =
  let rec go acc = function
    | A.Lam (l, x, b) -> go ((l, x) :: acc) b
    | body -> (List.rev acc, body)
  in
  go [] rhs

(* Binder location of the [i]-th (1-based) leading parameter; the body's
   own span when the walk runs out of lambdas. *)
let param_binder_loc rhs i =
  let rec walk j = function
    | A.Lam (l, _, b) -> if j = i then l else walk (j + 1) b
    | e -> A.loc e
  in
  walk 1 rhs

let member_defs ctx members =
  List.filter (fun (n, _) -> List.mem n members) ctx.Rule.surface.Nml.Surface.defs

(* The underscore convention: [_acc] opts a binder out of the unused /
   dead-parameter rules. *)
let exempt x = String.length x > 0 && x.[0] = '_'

(* ---- dead-parameter analysis (evidence for LINT004) ------------------------- *)

(* A leading parameter is *used* when some free occurrence in the body
   sits anywhere other than being passed whole to a leading parameter
   position of a top-level definition whose own parameter there is
   unused.  The "else" cases form pass-through edges (f,i) -> (g,j) and
   usedness is the least fixpoint over them, so a parameter that is only
   ever forwarded — even through mutual recursion — stays dead:

     f n l = if n < 1 then 0 else f (n - 1) l     l occurs, never used

   while [g l = length l] marks (g,1) used because (length,1) is. *)
let dead_params (surface : Nml.Surface.t) =
  let defs = surface.Nml.Surface.defs in
  let params_of =
    List.map (fun (name, rhs) -> (name, List.map snd (fst (strip_lams rhs)))) defs
  in
  let arity g =
    match List.assoc_opt g params_of with Some ps -> List.length ps | None -> 0
  in
  let occurs = Hashtbl.create 16 in
  let hard = Hashtbl.create 16 in
  let flows = Hashtbl.create 16 in
  let add_flow k v =
    Hashtbl.replace flows k (v :: Option.value ~default:[] (Hashtbl.find_opt flows k))
  in
  let flatten e =
    let rec go acc = function A.App (_, f, a) -> go (a :: acc) f | h -> (h, acc) in
    go [] e
  in
  List.iter
    (fun (fname, rhs) ->
      let params, body = strip_lams rhs in
      let index = List.mapi (fun i (_, x) -> (x, i + 1)) params in
      let rec walk bound e =
        match e with
        | A.Const _ | A.Prim _ -> ()
        | A.Var (_, x) ->
            if not (List.mem x bound) then (
              match List.assoc_opt x index with
              | Some i ->
                  Hashtbl.replace occurs (fname, i) ();
                  Hashtbl.replace hard (fname, i) ()
              | None -> ())
        | A.App _ -> (
            let head, args = flatten e in
            match head with
            | A.Var (_, g)
              when (not (List.mem g bound))
                   && (not (List.mem_assoc g index))
                   && List.mem_assoc g params_of ->
                let n = arity g in
                List.iteri
                  (fun j a ->
                    let j = j + 1 in
                    match a with
                    | A.Var (_, x)
                      when j <= n
                           && (not (List.mem x bound))
                           && List.mem_assoc x index ->
                        let i = List.assoc x index in
                        Hashtbl.replace occurs (fname, i) ();
                        add_flow (fname, i) (g, j)
                    | _ -> walk bound a)
                  args
            | _ ->
                walk bound head;
                List.iter (walk bound) args)
        | A.Lam (_, x, b) -> walk (x :: bound) b
        | A.If (_, c, t, f) ->
            walk bound c;
            walk bound t;
            walk bound f
        | A.Letrec (_, bs, b) ->
            let bound = List.map fst bs @ bound in
            List.iter (fun (_, r) -> walk bound r) bs;
            walk bound b
      in
      walk [] body)
    defs;
  let used = Hashtbl.create 16 in
  Hashtbl.iter (fun k () -> Hashtbl.replace used k ()) hard;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun k targets ->
        if
          (not (Hashtbl.mem used k))
          && List.exists (fun t -> Hashtbl.mem used t) targets
        then begin
          Hashtbl.replace used k ();
          changed := true
        end)
      flows
  done;
  List.concat_map
    (fun (name, rhs) ->
      let params, _ = strip_lams rhs in
      List.mapi (fun i (_, x) -> (i + 1, x)) params
      |> List.filter_map (fun (i, x) ->
             if
               (not (exempt x))
               && Hashtbl.mem occurs (name, i)
               && not (Hashtbl.mem used (name, i))
             then Some (name, i)
             else None))
    defs

(* ---- LINT001: missed reuse -------------------------------------------------- *)

let missed_reuse ctx ~members =
  let defs = member_defs ctx members in
  if defs = [] then []
  else
    let t = Rule.solver ctx in
    let sub = { ctx.Rule.surface with Nml.Surface.defs = defs } in
    let annotated =
      List.map (fun c -> c.Optimize.Reuse.def) (Optimize.Reuse.candidates t sub)
    in
    List.filter_map
      (fun (name, rhs) ->
        if List.mem name annotated then None
        else
          let params, body = strip_lams rhs in
          let n = List.length params in
          if n = 0 then None
          else
            let inst = Fix.instance_ty t name in
            if Ty.arity inst < n then None
            else
              let full = Ty.arity inst in
              let args_unshared = List.map Ty.spines (Ty.arg_tys inst full) in
              let site_kind ty =
                match Ty.repr ty with
                | Ty.List _ ->
                    if Optimize.Liveness.cons_sites body <> [] then Some "cons"
                    else None
                | Ty.Tree _ ->
                    if Optimize.Liveness.node_sites body <> [] then Some "node"
                    else None
                | _ -> None
              in
              let candidate i ty =
                match site_kind ty with
                | None -> None
                | Some kind ->
                    if
                      Ty.spines ty >= 1
                      && An.non_escaping_top_spines (An.global ~arity:n t name ~arg:i)
                         >= 1
                      && Sh.argument_unshared_after t name ~arg:i ~args_unshared >= 1
                    then Some (i, kind)
                    else None
              in
              let rec first i = function
                | [] -> None
                | ty :: rest -> (
                    match candidate i ty with
                    | Some hit -> Some hit
                    | None -> first (i + 1) rest)
              in
              match first 1 (Ty.arg_tys inst n) with
              | None -> None
              | Some (i, kind) ->
                  let _, param = List.nth params (i - 1) in
                  let budget =
                    Sh.argument_unshared_after t name ~arg:i ~args_unshared
                  in
                  Some
                    (D.make D.Warning ~code:"LINT001" (param_binder_loc rhs i)
                       (Printf.sprintf
                          "%s misses in-place reuse of parameter %s: its top \
                           spine is unshared and non-escaping (reuse budget %d) \
                           yet no %s site was rewritten to a destructive one — \
                           every site either precedes a later use of %s or is \
                           not guarded by the emptiness test"
                          name param budget kind param)))
      defs

(* ---- LINT002: heap-doomed result -------------------------------------------- *)

let heap_doomed ctx ~members =
  let defs = member_defs ctx members in
  if defs = [] then []
  else
    let t = Rule.solver ctx in
    List.filter_map
      (fun (name, rhs) ->
        let info = Sh.result_unshared t name in
        if info.Sh.result_spines >= 1 && info.Sh.unshared_top = 0 then
          Some
            (D.make D.Note ~code:"LINT002" (A.loc rhs)
               (Printf.sprintf
                  "the result of %s may share an argument's spine at every call \
                   site (0 of %d top spine(s) provably unshared): the result is \
                   heap-doomed — neither reuse nor stack/block placement can \
                   ever target it"
                  name info.Sh.result_spines))
        else None)
      defs

(* ---- LINT003: Theorem-1 invariance self-audit -------------------------------- *)

(* The comparison itself, separated so tests can feed it corrupted rows
   directly: rows are (escapes, kept-top-spines) per instance, and
   Theorem 1 demands equal escape verdicts and — whenever something
   escapes — equal kept counts (when nothing escapes, k = 0 and the
   kept count is just s_i, which legitimately varies with the
   instance). *)
let invariant_rows rows =
  match rows with
  | [] | [ _ ] -> true
  | (esc0, keep0) :: rest ->
      List.for_all
        (fun (esc, keep) -> esc = esc0 && ((not esc0) || keep = keep0))
        rest

let invariance ctx =
  match Nml.Mono.run ctx.Rule.surface with
  | exception Nml.Mono.Too_many_instances -> []
  | mono ->
      let by_orig =
        List.fold_left
          (fun acc (orig, spec, ty) ->
            let prev = Option.value ~default:[] (List.assoc_opt orig acc) in
            (orig, prev @ [ (spec, ty) ]) :: List.remove_assoc orig acc)
          [] mono.Nml.Mono.instances
        |> List.rev
      in
      let injected = ref false in
      List.concat_map
        (fun (orig, insts) ->
          match List.assoc_opt orig ctx.Rule.surface.Nml.Surface.defs with
          | None -> []
          | Some _ when List.length insts < 2 -> []
          | Some rhs ->
              let t = Rule.solver ctx in
              let arity =
                Nml.Infer.scheme_arity (Nml.Infer.def_scheme ctx.Rule.prog orig)
              in
              List.filter_map
                (fun i ->
                  let rows =
                    List.map
                      (fun (spec, ty) ->
                        let v = An.global ~inst:ty ~arity t orig ~arg:i in
                        (spec, ty, An.escapes v, An.non_escaping_top_spines v))
                      insts
                  in
                  let rows =
                    if ctx.Rule.fault = Rule.Corrupt_invariance && not !injected
                    then begin
                      injected := true;
                      match List.rev rows with
                      | (spec, ty, _, keep) :: tl ->
                          List.rev ((spec, ty, true, keep + 1) :: tl)
                      | [] -> rows
                    end
                    else rows
                  in
                  if invariant_rows (List.map (fun (_, _, e, k) -> (e, k)) rows)
                  then None
                  else
                    let loc = param_binder_loc rhs i in
                    Some
                      (D.make D.Error ~code:"LINT003" loc
                         ~notes:
                           (List.map
                              (fun (spec, ty, e, k) ->
                                ( loc,
                                  Printf.sprintf
                                    "instance %s at %s: escapes=%b, kept top \
                                     spines %d"
                                    spec (Ty.to_string ty) e k ))
                              rows)
                         (Printf.sprintf
                            "Theorem 1 violated for parameter %d of %s: s_i - \
                             k_i differs across its monomorphic instances — \
                             the solver's summaries are inconsistent"
                            i orig)))
                (List.init arity (fun i -> i + 1)))
        by_orig

(* ---- LINT004: dead spine ----------------------------------------------------- *)

let dead_spine ctx ~members =
  let dead = Lazy.force ctx.Rule.dead_params in
  List.filter_map
    (fun (name, i) ->
      if not (List.mem name members) then None
      else
        match List.assoc_opt name ctx.Rule.surface.Nml.Surface.defs with
        | None -> None
        | Some rhs ->
            let params, _ = strip_lams rhs in
            let n = List.length params in
            (* the scheme, not the simplest instance: a parameter the
               definition never constrains shows up as a bare variable,
               and it is spiny at the instances that matter *)
            let sty = Nml.Infer.scheme_ty (Nml.Infer.def_scheme ctx.Rule.prog name) in
            if Ty.arity sty < n then None
            else
              let ty = List.nth (Ty.arg_tys sty n) (i - 1) in
              let spine_desc =
                match Ty.repr ty with
                | Ty.List _ | Ty.Tree _ ->
                    Some (Printf.sprintf "its %d spine(s) escape" (Ty.spines ty))
                | Ty.Var _ -> Some "it is spine-polymorphic and escapes"
                | _ -> None
              in
              match spine_desc with
              | None -> None
              | Some desc ->
                  let t = Rule.solver ctx in
                  let v = An.global ~arity:n t name ~arg:i in
                  if B.equal v.An.esc B.zero then
                    let _, param = List.nth params (i - 1) in
                    Some
                      (D.make D.Warning ~code:"LINT004" (param_binder_loc rhs i)
                         (Printf.sprintf
                            "parameter %s of %s is a dead spine: %s nowhere \
                             (<0,0>) and %s never traverses it — the whole \
                             structure is passed around for nothing"
                            param name desc name))
                  else None)
    dead

(* ---- LINT005: unused binding ------------------------------------------------- *)

let unused_finding l x =
  D.make D.Warning ~code:"LINT005" l
    (Printf.sprintf "binding %s is never used" x)

let rec unused_in_expr e =
  match e with
  | A.Const _ | A.Prim _ | A.Var _ -> []
  | A.App (_, f, a) -> unused_in_expr f @ unused_in_expr a
  | A.Lam (l, x, b) ->
      (if (not (exempt x)) && not (List.mem x (A.free_vars b)) then
         [ unused_finding l x ]
       else [])
      @ unused_in_expr b
  | A.If (_, c, t, f) -> unused_in_expr c @ unused_in_expr t @ unused_in_expr f
  | A.Letrec (_, bs, body) ->
      (* a nested binding is used when the body reaches it, possibly
         through other bindings of the group (mutual recursion that the
         body never enters is still unused) *)
      let names = List.map fst bs in
      let reachable = Hashtbl.create 8 in
      let rec reach x =
        if List.mem x names && not (Hashtbl.mem reachable x) then begin
          Hashtbl.replace reachable x ();
          List.iter reach (A.free_vars (List.assoc x bs))
        end
      in
      List.iter reach (A.free_vars body);
      List.filter_map
        (fun (x, rhs) ->
          if (not (exempt x)) && not (Hashtbl.mem reachable x) then
            Some (unused_finding (A.loc rhs) x)
          else None)
        bs
      @ List.concat_map (fun (_, rhs) -> unused_in_expr rhs) bs
      @ unused_in_expr body

let unused_scc ctx ~members =
  List.concat_map (fun (_, rhs) -> unused_in_expr rhs) (member_defs ctx members)

let unused_program ctx = unused_in_expr ctx.Rule.surface.Nml.Surface.main

(* ---- LINT006: unreachable branch ---------------------------------------------- *)

let rec unreachable_in_expr e =
  match e with
  | A.Const _ | A.Prim _ | A.Var _ -> []
  | A.App (_, f, a) -> unreachable_in_expr f @ unreachable_in_expr a
  | A.Lam (_, _, b) -> unreachable_in_expr b
  | A.If (_, A.Const (_, A.Cbool c), t, f) ->
      let dead = if c then f else t in
      D.make D.Warning ~code:"LINT006" (A.loc dead)
        (Printf.sprintf "this branch is unreachable: the condition is always %b"
           c)
      :: (unreachable_in_expr t @ unreachable_in_expr f)
  | A.If (_, c, t, f) ->
      unreachable_in_expr c @ unreachable_in_expr t @ unreachable_in_expr f
  | A.Letrec (_, bs, body) ->
      List.concat_map (fun (_, rhs) -> unreachable_in_expr rhs) bs
      @ unreachable_in_expr body

let unreachable_scc ctx ~members =
  List.concat_map (fun (_, rhs) -> unreachable_in_expr rhs) (member_defs ctx members)

let unreachable_program ctx = unreachable_in_expr ctx.Rule.surface.Nml.Surface.main

(* ---- LINT007: wasted spine at a call site ------------------------------------- *)

(* Cells of a syntactic cons-literal spine: [cons a (cons b nil)] has 2.
   The count stops at the first non-cons tail — even with a variable
   tail, the prefix cells are freshly allocated by the caller. *)
let rec spine_cells = function
  | A.App (_, A.App (_, A.Prim (_, A.Cons), _), tl) -> 1 + spine_cells tl
  | _ -> 0

(* A caller builds a fresh spine of two or more cells and passes it to a
   parameter whose spine-liveness verdict says the callee never needs
   the spine ([Dead]) or needs only its head cell ([Head_only]): every
   cell past what the callee reads is allocated for nothing.  The
   evidence is the callee's summary, which lives in the caller's
   dependency cone, so the finding is cacheable per SCC like the
   escape-backed rules. *)
let wasted_spine_in ctx e =
  let is_def g = List.mem_assoc g ctx.Rule.prog.Nml.Infer.schemes in
  let flatten e =
    let rec go acc = function A.App (_, f, a) -> go (a :: acc) f | h -> (h, acc) in
    go [] e
  in
  let findings = ref [] in
  let rec walk bound e =
    match e with
    | A.Const _ | A.Prim _ | A.Var _ -> ()
    | A.Lam (_, x, b) -> walk (x :: bound) b
    | A.If (_, c, t, f) ->
        walk bound c;
        walk bound t;
        walk bound f
    | A.Letrec (_, bs, body) ->
        let bound = List.map fst bs @ bound in
        List.iter (fun (_, rhs) -> walk bound rhs) bs;
        walk bound body
    | A.App _ -> (
        let head, args = flatten e in
        walk bound head;
        List.iter (walk bound) args;
        match head with
        | A.Var (_, g) when (not (List.mem g bound)) && is_def g ->
            let t = Lazy.force ctx.Rule.spinelive in
            let m = Ty.arity (Framework.Spinelive.Solver.instance_ty t g) in
            List.iteri
              (fun j a ->
                let j = j + 1 in
                let cells = spine_cells a in
                if j <= m && cells >= 2 then
                  match Framework.Spinelive.arg_verdict t g ~arg:j with
                  | Framework.Spinelive.Dead ->
                      findings :=
                        D.make D.Warning ~code:"LINT007" (A.loc a)
                          (Printf.sprintf
                             "a fresh %d-cell spine is passed to parameter %d of \
                              %s, but %s never needs any of it — the whole \
                              allocation is wasted"
                             cells j g g)
                        :: !findings
                  | Framework.Spinelive.Head_only ->
                      findings :=
                        D.make D.Warning ~code:"LINT007" (A.loc a)
                          (Printf.sprintf
                             "a fresh %d-cell spine is passed to parameter %d of \
                              %s, but %s only ever needs its head cell — every \
                              cell past the first is allocated for nothing"
                             cells j g g)
                        :: !findings
                  | Framework.Spinelive.Spine_live | Framework.Spinelive.Live -> ())
              args
        | _ -> ())
  in
  walk [] e;
  List.rev !findings

let wasted_spine ctx ~members =
  List.concat_map (fun (_, rhs) -> wasted_spine_in ctx rhs) (member_defs ctx members)

let wasted_spine_program ctx = wasted_spine_in ctx ctx.Rule.surface.Nml.Surface.main

(* ---- LINT008: mutation through a shared spine ---------------------------------- *)

(* The sharing side of the reuse licence, audited independently: a
   destructive candidate recycles parameter [i]'s spine cells, which is
   only coherent when the sharing analysis agrees those cells cannot
   reappear on the result's spine ([S(f, i) <> spine-shared] — the
   escape analysis already found the top spine non-escaping, and a
   spine-shared verdict would contradict it).  On a sound solver pair
   the rule is silent; [Corrupt_sharing] seeds the disagreement the
   cross-check must catch. *)
let mutation_shared ctx ~members =
  let defs = member_defs ctx members in
  if defs = [] then []
  else
    let t = Rule.solver ctx in
    let sub = { ctx.Rule.surface with Nml.Surface.defs = defs } in
    let cands = Optimize.Reuse.candidates t sub in
    if cands = [] then []
    else
      let al = Lazy.force ctx.Rule.alias in
      let injected = ref false in
      List.filter_map
        (fun (c : Optimize.Reuse.candidate) ->
          let v =
            match
              Framework.Alias.arg_verdict al c.Optimize.Reuse.def
                ~arg:c.Optimize.Reuse.arg
            with
            | v -> v
            | exception (Invalid_argument _ | Not_found) ->
                Framework.Alias.Unshared
          in
          let v =
            if ctx.Rule.fault = Rule.Corrupt_sharing && not !injected then begin
              injected := true;
              Framework.Alias.Shared_spine
            end
            else v
          in
          match v with
          | Framework.Alias.Shared_spine ->
              Some
                (D.make D.Error ~code:"LINT008" c.Optimize.Reuse.loc
                   (Printf.sprintf
                      "destructive reuse of parameter %s in %s mutates through \
                       a possibly shared spine: the sharing analysis reports \
                       S(%s, %d) = spine-shared, so the recycled cells may \
                       still be reachable through the result — the escape and \
                       sharing analyses disagree about this parameter"
                      c.Optimize.Reuse.param c.Optimize.Reuse.primed
                      c.Optimize.Reuse.def c.Optimize.Reuse.arg))
          | Framework.Alias.Unshared | Framework.Alias.Shared_elem -> None)
        cands

(* ---- the registry data -------------------------------------------------------- *)

let all : Rule.t list =
  [
    {
      Rule.code = "LINT001";
      title = "missed-reuse";
      summary =
        "in-place reuse is licensed by the escape and sharing analyses but no \
         destructive version was produced";
      severity = D.Warning;
      check_scc = missed_reuse;
      check_program = Rule.no_program;
    };
    {
      Rule.code = "LINT002";
      title = "heap-doomed-result";
      summary =
        "the definition's result may share an argument spine at every call \
         site, so no storage optimization can target it";
      severity = D.Note;
      check_scc = heap_doomed;
      check_program = Rule.no_program;
    };
    {
      Rule.code = "LINT003";
      title = "instance-invariance";
      summary =
        "Theorem-1 self-audit: s_i - k_i must agree across all monomorphic \
         instances of a definition";
      severity = D.Error;
      check_scc = Rule.no_scc;
      check_program = invariance;
    };
    {
      Rule.code = "LINT004";
      title = "dead-spine";
      summary =
        "a parameter spine with global escape <0,0> that the function never \
         traverses";
      severity = D.Warning;
      check_scc = dead_spine;
      check_program = Rule.no_program;
    };
    {
      Rule.code = "LINT005";
      title = "unused-binding";
      summary = "a binding that is never used";
      severity = D.Warning;
      check_scc = unused_scc;
      check_program = unused_program;
    };
    {
      Rule.code = "LINT006";
      title = "unreachable-branch";
      summary = "a conditional branch under a constant condition";
      severity = D.Warning;
      check_scc = unreachable_scc;
      check_program = unreachable_program;
    };
    {
      Rule.code = "LINT007";
      title = "wasted-spine";
      summary =
        "a fresh multi-cell spine is passed to a parameter whose spine-liveness \
         verdict is dead or head-only, so the callee never needs the cells";
      severity = D.Warning;
      check_scc = wasted_spine;
      check_program = wasted_spine_program;
    };
    {
      Rule.code = "LINT008";
      title = "mutation-through-shared-spine";
      summary =
        "a destructive reuse candidate's consumed parameter is reported \
         spine-shared by the sharing analysis: the in-place mutation would \
         write through cells still reachable from the result";
      severity = D.Error;
      check_scc = mutation_shared;
      check_program = Rule.no_program;
    };
  ]
