lib/nml/parser.mli: Ast Loc
