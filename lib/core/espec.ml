(* The escape analysis as a [Framework.Spec.S]: a thin delegation layer
   over the existing domain engine ([Dvalue]), extensional comparison
   ([Probe]) and abstract semantics ([Semantics]).  [Fixpoint] is the
   generic solver instantiated at this Spec; the correctness bar is that
   the instantiation is byte-identical to the pre-framework hand-wired
   solver — reports, entry-evaluation counts, solver stats — which the
   differential suite ([test/test_framework.ml]) and bench S5 enforce
   against a frozen copy of the old engine. *)

let name = "escape"

type value = Dvalue.t

let bottom = Dvalue.bottom
let top = Dvalue.top
let join = Dvalue.join
let equal = Probe.equal
let leq = Probe.leq
let widen ~d ty _v = Dvalue.top ~d ty

type state = Dvalue.state

let create_state = Dvalue.create_state
let with_state = Dvalue.with_state
let ensure_d = Dvalue.ensure_d

type source = Dvalue.source

let new_source = Dvalue.new_source
let source_id = Dvalue.source_id
let touch = Dvalue.touch
let note_read = Dvalue.note_read
let with_reads = Dvalue.with_reads
let clear_memo = Dvalue.clear_cache
let memo_stats = Dvalue.cache_stats
let invalidations = Dvalue.invalidations

type ctx = Semantics.ctx

let make_ctx ~d ~global ~max_iters =
  { Semantics.d; global; max_iters; iters = 0; capped = false; fv_cache = [] }

let transfer ctx tast = Semantics.eval ctx Semantics.Env.empty tast
let iterations (ctx : ctx) = ctx.Semantics.iters
let record_iteration (ctx : ctx) = ctx.Semantics.iters <- ctx.Semantics.iters + 1
let capped (ctx : ctx) = ctx.Semantics.capped
let set_capped (ctx : ctx) = ctx.Semantics.capped <- true

let demand_key name ty = name ^ " @ " ^ Nml.Ty.to_string ty
