lib/core/probe.ml: Dvalue
