type prim =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
  | Not
  | Cons
  | Car
  | Cdr
  | Null
  | Pair
  | Fst
  | Snd
  | Node
  | Isleaf
  | Label
  | Left
  | Right

type const = Cint of int | Cbool of bool | Cnil | Cleaf

type expr =
  | Const of Loc.t * const
  | Prim of Loc.t * prim
  | Var of Loc.t * string
  | App of Loc.t * expr * expr
  | Lam of Loc.t * string * expr
  | If of Loc.t * expr * expr * expr
  | Letrec of Loc.t * (string * expr) list * expr

type program = expr

let loc = function
  | Const (l, _)
  | Prim (l, _)
  | Var (l, _)
  | App (l, _, _)
  | Lam (l, _, _)
  | If (l, _, _, _)
  | Letrec (l, _, _) ->
      l

let prim_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "div"
  | Mod -> "mod"
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "and"
  | Or -> "or"
  | Not -> "not"
  | Cons -> "cons"
  | Car -> "car"
  | Cdr -> "cdr"
  | Null -> "null"
  | Pair -> "mkpair"
  | Fst -> "fst"
  | Snd -> "snd"
  | Node -> "node"
  | Isleaf -> "isleaf"
  | Label -> "label"
  | Left -> "left"
  | Right -> "right"

let prim_of_name = function
  | "cons" -> Some Cons
  | "car" -> Some Car
  | "cdr" -> Some Cdr
  | "null" -> Some Null
  | "mkpair" -> Some Pair
  | "fst" -> Some Fst
  | "snd" -> Some Snd
  | "node" -> Some Node
  | "isleaf" -> Some Isleaf
  | "label" -> Some Label
  | "left" -> Some Left
  | "right" -> Some Right
  | _ -> None

let prim_arity = function
  | Not | Car | Cdr | Null | Fst | Snd | Isleaf | Label | Left | Right -> 1
  | Add | Sub | Mul | Div | Mod | Eq | Ne | Lt | Le | Gt | Ge | And | Or | Cons | Pair
    ->
      2
  | Node -> 3

let equal_prim (a : prim) (b : prim) = a = b
let equal_const (a : const) (b : const) = a = b

let rec equal a b =
  match (a, b) with
  | Const (_, c1), Const (_, c2) -> equal_const c1 c2
  | Prim (_, p1), Prim (_, p2) -> equal_prim p1 p2
  | Var (_, x1), Var (_, x2) -> String.equal x1 x2
  | App (_, f1, a1), App (_, f2, a2) -> equal f1 f2 && equal a1 a2
  | Lam (_, x1, e1), Lam (_, x2, e2) -> String.equal x1 x2 && equal e1 e2
  | If (_, c1, t1, e1), If (_, c2, t2, e2) -> equal c1 c2 && equal t1 t2 && equal e1 e2
  | Letrec (_, bs1, e1), Letrec (_, bs2, e2) ->
      List.length bs1 = List.length bs2
      && List.for_all2
           (fun (x1, b1) (x2, b2) -> String.equal x1 x2 && equal b1 b2)
           bs1 bs2
      && equal e1 e2
  | ( ( Const _ | Prim _ | Var _ | App _ | Lam _ | If _ | Letrec _ ),
      ( Const _ | Prim _ | Var _ | App _ | Lam _ | If _ | Letrec _ ) ) ->
      false

let free_vars e =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let add x =
    if not (Hashtbl.mem seen x) then (
      Hashtbl.add seen x ();
      acc := x :: !acc)
  in
  let rec go bound = function
    | Const _ | Prim _ -> ()
    | Var (_, x) -> if not (List.mem x bound) then add x
    | App (_, f, a) ->
        go bound f;
        go bound a
    | Lam (_, x, b) -> go (x :: bound) b
    | If (_, c, t, f) ->
        go bound c;
        go bound t;
        go bound f
    | Letrec (_, bs, body) ->
        let bound' = List.map fst bs @ bound in
        List.iter (fun (_, b) -> go bound' b) bs;
        go bound' body
  in
  go [] e;
  List.rev !acc

let rec subst_var x y e =
  match e with
  | Const _ | Prim _ -> e
  | Var (l, z) -> if String.equal z x then Var (l, y) else e
  | App (l, f, a) -> App (l, subst_var x y f, subst_var x y a)
  | Lam (l, z, b) -> if String.equal z x then e else Lam (l, z, subst_var x y b)
  | If (l, c, t, f) -> If (l, subst_var x y c, subst_var x y t, subst_var x y f)
  | Letrec (l, bs, body) ->
      if List.exists (fun (z, _) -> String.equal z x) bs then e
      else
        Letrec (l, List.map (fun (z, b) -> (z, subst_var x y b)) bs, subst_var x y body)

let app f args = List.fold_left (fun acc a -> App (Loc.merge (loc acc) (loc a), acc, a)) f args
let lams xs e = List.fold_right (fun x acc -> Lam (loc acc, x, acc)) xs e

let list_lit l elems =
  List.fold_right
    (fun e acc -> App (l, App (l, Prim (l, Cons), e), acc))
    elems (Const (l, Cnil))

let int n = Const (Loc.dummy, Cint n)
let bool b = Const (Loc.dummy, Cbool b)
let nil = Const (Loc.dummy, Cnil)
let var x = Var (Loc.dummy, x)

let rec size = function
  | Const _ | Prim _ | Var _ -> 1
  | App (_, f, a) -> 1 + size f + size a
  | Lam (_, _, b) -> 1 + size b
  | If (_, c, t, f) -> 1 + size c + size t + size f
  | Letrec (_, bs, body) ->
      1 + List.fold_left (fun acc (_, b) -> acc + size b) (size body) bs
