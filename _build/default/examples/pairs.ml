(* Products: the extension the paper sketches in its introduction and
   conclusion ("our approach for lists could be applied to other data
   structures such as tuples, trees, etc.").

   The abstract domain tracks pair components separately
   (D^{t1 * t2} = D^{t1} x D^{t2}), so the analysis can tell which
   component of an argument escapes — per projection path.

     dune exec examples/pairs.exe *)

module An = Escape.Analysis
module B = Escape.Besc

let program =
  Nml.Examples.wrap
    [
      Nml.Examples.zip_def;
      Nml.Examples.unzip_fsts_def;
      Nml.Examples.unzip_snds_def;
      Nml.Examples.swap_def;
      Nml.Examples.assoc_def;
    ]
    "snds (zip [1, 2, 3] [[10], [20], [30]])"

let () =
  let surface = Nml.Surface.of_string program in
  Format.printf "--- program ---@.%a@.@." Nml.Surface.pp surface;
  Format.printf "result: %a@.@." Nml.Eval.pp_value (Nml.Eval.run surface);

  let t = Escape.Fixpoint.make (Nml.Infer.infer_program surface) in
  Format.printf "--- whole-argument analysis ---@.%a@." Escape.Report.program t;

  (* component-resolved verdicts at the instance the program uses:
     (int * int list) list *)
  Format.printf "--- component-resolved analysis of snds ---@.";
  let ilist = Nml.Ty.List Nml.Ty.Int in
  let inst = Nml.Ty.Arrow (Nml.Ty.List (Nml.Ty.Prod (Nml.Ty.Int, ilist)), Nml.Ty.List ilist) in
  List.iter
    (fun (path, (v : An.verdict)) ->
      Format.printf "  G(snds, 1)%a = %s%s@." An.pp_path path (B.to_string v.An.esc)
        (if An.escapes v then
           Printf.sprintf "  -- the component (s=%d) may escape" v.An.spines
         else "  -- never escapes: reusable/stack-allocatable"))
    (An.global_components ~inst t "snds" ~arg:1);
  Format.printf
    "@.The .fst components (the keys) are consumed and never escape; the@.";
  Format.printf ".snd components (the payload lists) are returned wholesale.@.@.";

  (* pairs are heap cells in the simulator, so they are counted and
     collected like cons cells *)
  let m = Runtime.Machine.create ~heap_size:32 ~check_arenas:true () in
  let w = Runtime.Machine.run m surface in
  Format.printf "--- storage ---@.machine result %a; %d cells allocated, %d GC runs@."
    Nml.Eval.pp_value (Runtime.Machine.read_value m w)
    (Runtime.Machine.stats m).Runtime.Stats.heap_allocs
    (Runtime.Machine.stats m).Runtime.Stats.gc_runs
