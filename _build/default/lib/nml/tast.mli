(** Typed abstract syntax.

    Every node carries its inferred type; primitive occurrences carry their
    instantiated type, which is how the paper's [car^s] annotation is
    realized: for an occurrence of [car] at type [t list -> t], the spine
    annotation is [s = spines (t list)] (read with {!car_spines}). *)

type texpr = { desc : desc; ty : Ty.t; loc : Loc.t }

and desc =
  | Const of Ast.const
  | Prim of Ast.prim
  | Var of string
  | App of texpr * texpr
  | Lam of string * texpr
  | If of texpr * texpr * texpr
  | Letrec of (string * texpr) list * texpr

val param_ty : texpr -> Ty.t
(** Parameter type of a [Lam] node (the domain of its arrow type).
    @raise Invalid_argument on other nodes. *)

val car_spines : texpr -> int
(** For a [Prim Car] or [Prim Cdr] occurrence, the [s] of the paper's
    [car^s]: the spine count of its list argument type.
    @raise Invalid_argument on other nodes. *)

val erase : texpr -> Ast.expr
(** Forgets types, recovering the surface AST. *)

val default_ground : texpr -> unit
(** Replaces every unification variable still unbound anywhere in the
    tree's types by [int] (in place).  This selects the paper's "simplest
    monotyped instance" of a polymorphic definition (section 5). *)

val free_vars : texpr -> string list
(** Free identifiers in order of first occurrence. *)

val iter_tys : (Ty.t -> unit) -> texpr -> unit
(** Applies the function to the type of every node (used to compute the
    per-program spine bound [d]). *)

val size : texpr -> int

val pp : Format.formatter -> texpr -> unit
(** Pretty-prints the erased expression (no type decoration). *)

val pp_typed : Format.formatter -> texpr -> unit
(** One-line rendering with the node's type: [expr : ty]. *)
