(** Storage statistics collected by {!Machine}.

    The paper's optimizations do not change {e what} a program computes,
    only {e where} cons cells live and how they are reclaimed; these
    counters are the quantities its claims are about. *)

type t = {
  mutable heap_allocs : int;  (** cells allocated from the GC heap *)
  mutable arena_allocs : int;  (** cells allocated in regions/blocks *)
  mutable dcons_reuses : int;  (** cells recycled in place by [DCONS]/[DNODE] *)
  mutable gc_runs : int;
  mutable marked : int;  (** total cells marked over all collections *)
  mutable swept : int;  (** total cells reclaimed by sweeping *)
  mutable arena_freed : int;  (** cells reclaimed wholesale at arena exit *)
  mutable heap_capacity : int;  (** final size of the cell store *)
  mutable peak_live : int;  (** maximum simultaneously live cells *)
  mutable steps : int;  (** evaluation steps *)
  mutable chaos_gcs : int;  (** collections forced by fault injection *)
  mutable poisoned : int;  (** freed cells scribbled over by poisoning *)
}

val create : unit -> t
val reset : t -> unit

val total_allocs : t -> int
(** [heap_allocs + arena_allocs] (a [DCONS] is not an allocation). *)

val gc_work : t -> int
(** [marked + swept]: cells the collector had to touch. *)

val pp : Format.formatter -> t -> unit

val to_row : t -> (string * int) list
(** Labelled counters, for the bench tables. *)
