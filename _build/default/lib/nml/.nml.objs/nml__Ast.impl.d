lib/nml/ast.ml: Hashtbl List Loc String
