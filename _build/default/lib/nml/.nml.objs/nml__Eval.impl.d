lib/nml/eval.ml: Ast Format List Map String Surface
