examples/pairs.mli:
