(** Fault-injection kinds for [nmlc serve --inject-fault], mirroring the
    chaos mode of the soundness harness: each kind deliberately breaks
    one layer of the daemon (worker, scheduler, framing, in-memory
    cache) so the robustness machinery around it is demonstrably
    exercised. *)

type t = None_ | Worker_crash | Slow_request | Malformed_frame | Cache_corrupt | Oom

val to_string : t -> string
val of_string : string -> t option
val all : t list
