(** The request/response layer of the analysis server: JSON-RPC-style
    documents over {!Frame}, reusing [Nml.Json].

    Server-side failures carry stable [SRV0xx] codes; toolchain
    diagnostics for the analyzed file travel {e inside} a success
    result, rendered exactly as [nmlc batch] renders them (the basis of
    the server ≡ warm batch ≡ cold batch differential). *)

type meth = Analyze | Vet | Lint | Status | Shutdown

val meth_name : meth -> string
val meth_of_name : string -> meth option

type request = {
  id : Nml.Json.t option;  (** [Str] or [Num], echoed verbatim *)
  meth : meth;
  path : string option;
  source : string option;
  analysis : string option;
      (** [analyze] only: the registered analysis to run (default escape) *)
  deadline_ms : int option;
  boom : bool;
      (** fault-injection marker; honored only under [--inject-fault] *)
}

val parse :
  string -> (request, Nml.Json.t option * string * string) result
(** [parse payload] is the request, or [(id, srv_code, message)]. *)

val ok : ?id:Nml.Json.t -> Nml.Json.t -> string
(** A rendered success response. *)

val error :
  ?id:Nml.Json.t -> ?retry_after_ms:int -> code:string -> string -> string
(** A rendered error response. *)

(** {2 The SRV code registry} *)

val srv_malformed : string  (** SRV001 *)

val srv_invalid : string  (** SRV002 *)

val srv_oversized : string  (** SRV003 *)

val srv_deadline : string  (** SRV004 *)

val srv_overload : string  (** SRV005 *)

val srv_crash : string  (** SRV006 *)

val srv_quarantined : string  (** SRV007 *)

val srv_draining : string  (** SRV008 *)

val srv_codes : (string * string) list
(** Every code with its one-line meaning, for docs and the smoke
    tests. *)
