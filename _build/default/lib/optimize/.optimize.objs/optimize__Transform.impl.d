lib/optimize/transform.ml: Annotate Blockalloc Escape Format List Nml Reuse Runtime Stackalloc
