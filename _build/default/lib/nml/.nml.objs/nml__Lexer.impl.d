lib/nml/lexer.ml: List Loc Printf String Token
