(* On-disk half of the persistent summary cache.

   Layout: [root/ab/abcdef....json] — entries are sharded by the first
   two hex characters of their key so no directory grows unboundedly.
   Writes go through a temporary file in the same shard followed by
   [Sys.rename], so readers never observe a half-written entry from a
   well-behaved writer; 16 striped in-process mutexes serialize writers
   from different domains of one process.  Entries are content-addressed
   (the key digests everything the payload depends on), so concurrent
   writers of one key write identical bytes and the last rename wins.

   The cache is strictly best-effort: every failure to read, parse or
   decode is a miss, and every failure to write is ignored.  A corrupted
   or truncated entry can cost a re-solve, never an error. *)

type t = { root : string; locks : Mutex.t array }

let stripes = 16

let create root = { root; locks = Array.init stripes (fun _ -> Mutex.create ()) }

let root t = t.root

let shard_of key = if String.length key >= 2 then String.sub key 0 2 else "xx"

let path_of t key = Filename.concat (Filename.concat t.root (shard_of key)) (key ^ ".json")

let stripe_of key = (Hashtbl.hash key) land (stripes - 1)

let with_stripe t key f =
  let m = t.locks.(stripe_of key) in
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let mkdir_p dir =
  (* no recursion needed beyond root/shard; tolerate races with other
     processes creating the same directories *)
  let ensure d = try Sys.mkdir d 0o755 with Sys_error _ -> () in
  ensure (Filename.dirname dir);
  ensure dir

let load t ~key =
  match In_channel.with_open_bin (path_of t key) In_channel.input_all with
  | contents -> ( try Some (Nml.Json.parse contents) with _ -> None)
  | exception _ -> None

let save t ~key json =
  with_stripe t key @@ fun () ->
  try
    let final = path_of t key in
    mkdir_p (Filename.dirname final);
    let tmp =
      Printf.sprintf "%s.tmp.%d" final (Domain.self () :> int)
    in
    Out_channel.with_open_bin tmp (fun oc ->
        Out_channel.output_string oc (Nml.Json.to_string json));
    Sys.rename tmp final
  with _ -> ()
