examples/reverse_reuse.mli:
