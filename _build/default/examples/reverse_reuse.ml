(* Naive reverse and the paper's REV' (A.3.2): quadratic allocation
   becomes linear-plus-reuse, and the collector goes quiet.

     dune exec examples/reverse_reuse.exe *)

let rev_src n =
  let elems = List.init n (fun i -> string_of_int (i + 1)) in
  Nml.Examples.wrap
    [ Nml.Examples.append_def; Nml.Examples.rev_def ]
    (Printf.sprintf "rev [%s]" (String.concat ", " elems))

let () =
  Format.printf "--- REV vs REV' (in-place reuse) ---@.";
  Format.printf "%-6s %12s %12s %10s %8s %8s@." "n" "base-allocs" "opt-allocs"
    "reuses" "base-gc" "opt-gc";
  List.iter
    (fun n ->
      let src = rev_src n in
      let surface = Nml.Surface.of_string src in
      let run ir =
        let m = Runtime.Machine.create ~heap_size:256 ~check_arenas:true () in
        let w = Runtime.Machine.eval m ir in
        ignore (Runtime.Machine.read_value m w);
        Runtime.Machine.stats m
      in
      let s0 = run (Runtime.Ir.of_program surface) in
      let r =
        Optimize.Transform.optimize
          ~options:{ Optimize.Transform.none with reuse = true }
          surface
      in
      let s1 = run r.Optimize.Transform.ir in
      Format.printf "%-6d %12d %12d %10d %8d %8d@." n s0.Runtime.Stats.heap_allocs
        s1.Runtime.Stats.heap_allocs s1.Runtime.Stats.dcons_reuses
        s0.Runtime.Stats.gc_runs s1.Runtime.Stats.gc_runs)
    [ 4; 8; 16; 32; 64 ];
  Format.printf
    "@.REV allocates O(n^2) cells; REV' recycles every spine cell it consumes:@.";
  Format.printf "the optimized version performs the same O(n^2) cons *operations*,@.";
  Format.printf "but all except the n singleton cells are in-place reuses.@."
