lib/nml/loc.ml: Format
