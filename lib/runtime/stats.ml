type t = {
  mutable heap_allocs : int;
  mutable arena_allocs : int;
  mutable dcons_reuses : int;
  mutable gc_runs : int;
  mutable marked : int;
  mutable swept : int;
  mutable arena_freed : int;
  mutable heap_capacity : int;
  mutable peak_live : int;
  mutable steps : int;
  mutable chaos_gcs : int;
  mutable poisoned : int;
  mutable generational : bool;
  mutable minor_gcs : int;
  mutable major_gcs : int;
  mutable promoted : int;
  mutable pretenured : int;
  mutable remembered : int;
  mutable regions_reclaimed : int;
  mutable hint_sites : int;
  mutable hints_accepted : int;
  mutable pause_ns : float array;
  mutable pause_cells : int array;
  mutable pauses : int;
}

let create () =
  {
    heap_allocs = 0;
    arena_allocs = 0;
    dcons_reuses = 0;
    gc_runs = 0;
    marked = 0;
    swept = 0;
    arena_freed = 0;
    heap_capacity = 0;
    peak_live = 0;
    steps = 0;
    chaos_gcs = 0;
    poisoned = 0;
    generational = false;
    minor_gcs = 0;
    major_gcs = 0;
    promoted = 0;
    pretenured = 0;
    remembered = 0;
    regions_reclaimed = 0;
    hint_sites = 0;
    hints_accepted = 0;
    pause_ns = [||];
    pause_cells = [||];
    pauses = 0;
  }

let reset t =
  t.heap_allocs <- 0;
  t.arena_allocs <- 0;
  t.dcons_reuses <- 0;
  t.gc_runs <- 0;
  t.marked <- 0;
  t.swept <- 0;
  t.arena_freed <- 0;
  t.heap_capacity <- 0;
  t.peak_live <- 0;
  t.steps <- 0;
  t.chaos_gcs <- 0;
  t.poisoned <- 0;
  t.minor_gcs <- 0;
  t.major_gcs <- 0;
  t.promoted <- 0;
  t.pretenured <- 0;
  t.remembered <- 0;
  t.regions_reclaimed <- 0;
  t.hint_sites <- 0;
  t.hints_accepted <- 0;
  t.pause_ns <- [||];
  t.pause_cells <- [||];
  t.pauses <- 0

let total_allocs t = t.heap_allocs + t.arena_allocs
let gc_work t = t.marked + t.swept

(* ---- pause samples ------------------------------------------------------- *)

let record_pause t ~cells ~ns =
  let cap = Array.length t.pause_cells in
  if t.pauses >= cap then begin
    let cap' = max 16 (2 * cap) in
    let ns' = Array.make cap' 0.0 and cs' = Array.make cap' 0 in
    Array.blit t.pause_ns 0 ns' 0 t.pauses;
    Array.blit t.pause_cells 0 cs' 0 t.pauses;
    t.pause_ns <- ns';
    t.pause_cells <- cs'
  end;
  t.pause_ns.(t.pauses) <- ns;
  t.pause_cells.(t.pauses) <- cells;
  t.pauses <- t.pauses + 1

(* nearest-rank percentile over the first [t.pauses] samples *)
let percentiles sub sort get t =
  if t.pauses = 0 then None
  else begin
    let a = sub t 0 t.pauses in
    sort a;
    let rank p =
      let n = Array.length a in
      min (n - 1) (max 0 (int_of_float (Float.round (p *. float_of_int (n - 1)))))
    in
    Some (get a (rank 0.50), get a (rank 0.95), get a (Array.length a - 1))
  end

let pause_percentiles_cells t =
  percentiles
    (fun t -> Array.sub t.pause_cells)
    (fun a -> Array.sort compare a)
    (fun a i -> a.(i))
    t

let pause_percentiles_ns t =
  percentiles
    (fun t -> Array.sub t.pause_ns)
    (fun a -> Array.sort compare a)
    (fun a i -> a.(i))
    t

(* ---- rendering ----------------------------------------------------------- *)

let to_row t =
  [
    ("heap_allocs", t.heap_allocs);
    ("arena_allocs", t.arena_allocs);
    ("dcons_reuses", t.dcons_reuses);
    ("gc_runs", t.gc_runs);
    ("marked", t.marked);
    ("swept", t.swept);
    ("arena_freed", t.arena_freed);
    ("heap_capacity", t.heap_capacity);
    ("peak_live", t.peak_live);
  ]
  (* chaos counters only appear when fault injection was active, so the
     output of plain runs is unchanged *)
  @ (if t.chaos_gcs > 0 then [ ("chaos_gcs", t.chaos_gcs) ] else [])
  @ (if t.poisoned > 0 then [ ("poisoned", t.poisoned) ] else [])
  (* generational counters only appear for generational runs, so legacy
     output stays byte-identical *)
  @
  if not t.generational then []
  else
    [
      ("minor_gcs", t.minor_gcs);
      ("major_gcs", t.major_gcs);
      ("promoted", t.promoted);
      ("pretenured", t.pretenured);
      ("remembered", t.remembered);
      ("regions_reclaimed", t.regions_reclaimed);
    ]
    (* advisory dead-spine hints: rendered only when the run actually
       tagged a binding, so hint-free output stays byte-identical *)
    @ (if t.hint_sites > 0 then
         [ ("hint_sites", t.hint_sites); ("hints_accepted", t.hints_accepted) ]
       else [])
    @
    match pause_percentiles_cells t with
    | None -> []
    | Some (p50, p95, mx) ->
        [
          ("pause_cells_p50", p50); ("pause_cells_p95", p95); ("pause_cells_max", mx);
        ]

let pp ppf t =
  Format.fprintf ppf "@[<v 0>";
  List.iter (fun (k, v) -> Format.fprintf ppf "%-13s %d@ " k v) (to_row t);
  Format.fprintf ppf "@]"

(* ---- process-global telemetry -------------------------------------------- *)

let snapshot t = { t with heap_allocs = t.heap_allocs }

let g_evals = Atomic.make 0
let g_steps = Atomic.make 0
let g_heap_allocs = Atomic.make 0
let g_arena_allocs = Atomic.make 0
let g_dcons_reuses = Atomic.make 0
let g_gc_runs = Atomic.make 0
let g_minor_gcs = Atomic.make 0
let g_major_gcs = Atomic.make 0
let g_promoted = Atomic.make 0
let g_pretenured = Atomic.make 0
let g_swept = Atomic.make 0
let g_arena_freed = Atomic.make 0
let g_regions_reclaimed = Atomic.make 0
let g_hint_sites = Atomic.make 0
let g_hints_accepted = Atomic.make 0

let add_delta cell a b = ignore (Atomic.fetch_and_add cell (max 0 (a - b)))

let global_add ~before ~after =
  ignore (Atomic.fetch_and_add g_evals 1);
  add_delta g_steps after.steps before.steps;
  add_delta g_heap_allocs after.heap_allocs before.heap_allocs;
  add_delta g_arena_allocs after.arena_allocs before.arena_allocs;
  add_delta g_dcons_reuses after.dcons_reuses before.dcons_reuses;
  add_delta g_gc_runs after.gc_runs before.gc_runs;
  add_delta g_minor_gcs after.minor_gcs before.minor_gcs;
  add_delta g_major_gcs after.major_gcs before.major_gcs;
  add_delta g_promoted after.promoted before.promoted;
  add_delta g_pretenured after.pretenured before.pretenured;
  add_delta g_swept after.swept before.swept;
  add_delta g_arena_freed after.arena_freed before.arena_freed;
  add_delta g_regions_reclaimed after.regions_reclaimed before.regions_reclaimed;
  add_delta g_hint_sites after.hint_sites before.hint_sites;
  add_delta g_hints_accepted after.hints_accepted before.hints_accepted

let global_row () =
  [
    ("evals", Atomic.get g_evals);
    ("steps", Atomic.get g_steps);
    ("heap_allocs", Atomic.get g_heap_allocs);
    ("arena_allocs", Atomic.get g_arena_allocs);
    ("dcons_reuses", Atomic.get g_dcons_reuses);
    ("gc_runs", Atomic.get g_gc_runs);
    ("minor_gcs", Atomic.get g_minor_gcs);
    ("major_gcs", Atomic.get g_major_gcs);
    ("promoted", Atomic.get g_promoted);
    ("pretenured", Atomic.get g_pretenured);
    ("swept", Atomic.get g_swept);
    ("arena_freed", Atomic.get g_arena_freed);
    ("regions_reclaimed", Atomic.get g_regions_reclaimed);
  ]
