lib/nml/tast.mli: Ast Format Loc Ty
