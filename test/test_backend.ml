(* Tests for the ANF + closure-conversion middle-end and the bytecode
   VM: the three-way differential oracle (Eval / machine / VM) over the
   builtin corpus and seeded random programs with and without chaos, the
   ANF verifier as a property over generated programs, known-call and
   closure-conversion unit checks on the report counters, exact
   agreement of the storage counters between machine and VM on optimized
   IR, and the VM's resource-limit exceptions. *)

module H = Check.Harness
module Anf = Backend.Anf
module Vm = Backend.Vm
module Ir = Runtime.Ir
module T = Optimize.Transform
module M = Runtime.Machine

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let surface src = Nml.Surface.of_string src
let baseline_ir src = Ir.of_program (surface src)
let opt_ir src = (T.optimize ~options:T.all (surface src)).T.ir

let vm_run ?(heap = 4096) ?(grow = true) ?(chaos = Vm.no_chaos) ?fuel
    ?(config = Runtime.Heap.legacy) ir =
  let m = Vm.create ~heap_size:heap ~grow ~check_arenas:true ?fuel ~chaos ~config () in
  let v = Vm.eval m (Vm.compile ir) in
  (Vm.read_value m v, m)

let machine_run ?(heap = 4096) ?(grow = true) ?(chaos = M.no_chaos) ?fuel
    ?(config = Runtime.Heap.legacy) ir =
  let m = M.create ~heap_size:heap ~grow ~check_arenas:true ?fuel ~chaos ~config () in
  let w = M.eval m ir in
  (M.read_value m w, m)

let fail_counterexample c =
  Alcotest.failf "unexpected divergence: %a" H.pp_counterexample c

let chaos_cfg = { H.default with H.chaos = true }

(* ---- three-way differential: Eval = machine = VM ---------------------------- *)

let differential_tests =
  [
    (* [check_src] runs the VM as a third leg on every machine stage
       (legacy, generational, chaos, sabotage baseline), so a green
       corpus run here is a three-way agreement claim *)
    Alcotest.test_case "corpus-three-way" `Quick (fun () ->
        match H.check_corpus H.default H.builtin_corpus with
        | Ok s -> checki "all passed" s.H.checked s.H.passed
        | Error c -> fail_counterexample c);
    Alcotest.test_case "corpus-three-way-under-chaos" `Quick (fun () ->
        match H.check_corpus chaos_cfg H.builtin_corpus with
        | Ok s -> checki "all passed" s.H.checked s.H.passed
        | Error c -> fail_counterexample c);
    Alcotest.test_case "random-40-three-way-under-chaos" `Quick (fun () ->
        match H.check_random { chaos_cfg with H.seed = 2026 } ~count:40 with
        | Ok s -> checki "all checked" 40 s.H.checked
        | Error c -> fail_counterexample c);
    (* direct agreement, independent of the harness plumbing: reference
       value vs. VM value on both the baseline and the optimized IR *)
    Alcotest.test_case "corpus-vm-matches-reference" `Quick (fun () ->
        List.iter
          (fun (name, src) ->
            match H.run_reference H.default (surface src) with
            | H.Value expect ->
                List.iter
                  (fun ir ->
                    let v, _ = vm_run ir in
                    checkb (name ^ " agrees") true
                      (Nml.Eval.equal_value expect v))
                  [ baseline_ir src; opt_ir src ]
            | H.Limit _ -> ()
            | H.Crash m -> Alcotest.failf "%s: reference crashed: %s" name m)
          H.builtin_corpus);
    (* the VM honors the optimizer's annotations natively: on the same
       optimized IR, machine and VM perform the identical storage work *)
    Alcotest.test_case "corpus-vm-storage-counters-match-machine" `Quick
      (fun () ->
        List.iter
          (fun (name, src) ->
            let ir = opt_ir src in
            let _, m = machine_run ir in
            let _, v = vm_run ir in
            let ms = M.stats m and vs = Vm.stats v in
            checki (name ^ " heap_allocs") ms.Runtime.Stats.heap_allocs
              vs.Runtime.Stats.heap_allocs;
            checki (name ^ " arena_allocs") ms.Runtime.Stats.arena_allocs
              vs.Runtime.Stats.arena_allocs;
            checki (name ^ " dcons_reuses") ms.Runtime.Stats.dcons_reuses
              vs.Runtime.Stats.dcons_reuses)
          H.builtin_corpus);
  ]

(* ---- the ANF verifier as a property ----------------------------------------- *)

let anf_verifies src =
  match surface src with
  | exception _ -> true (* unparseable: nothing to lower *)
  | s -> (
      match
        (Ir.of_program s, (T.optimize ~options:T.all s).T.ir)
      with
      | exception _ -> true (* ill-typed: the front end rejects it first *)
      | b, o ->
          List.for_all
            (fun ir ->
              match Anf.verify (Anf.lower ir) with
              | Ok () -> true
              | Error m ->
                  QCheck.Test.fail_reportf "lowering of %s broke ANF: %s" src m)
            [ b; o ])

let anf_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:200 ~name:"lowered-programs-always-verify"
         (QCheck.make Gen.gen_any_program ~print:Fun.id)
         anf_verifies);
    Alcotest.test_case "eta-expanded-constructor-keeps-source-arity" `Quick
      (fun () ->
        (* the rhs is a 3-lambda nest whose body eta-expands [cons] with
           [$p] lambdas; grouping must stop at the user arity 3, and the
           program must still run the trailing applications generically *)
        let src = "letrec f x y z = cons in (f 1 2 3) 4 nil" in
        let ir = baseline_ir src in
        (match Anf.verify (Anf.lower ir) with
        | Ok () -> ()
        | Error m -> Alcotest.failf "verifier rejected the lowering: %s" m);
        let v, _ = vm_run ir in
        match H.run_reference H.default (surface src) with
        | H.Value expect ->
            checkb "agrees" true (Nml.Eval.equal_value expect v)
        | o -> Alcotest.failf "reference: %s" (H.outcome_to_string o));
    Alcotest.test_case "verifier-rejects-unsaturated-prim" `Quick (fun () ->
        let bad =
          Anf.Aret (Anf.Cprim (Nml.Ast.Add, [ Anf.Aconst (Nml.Ast.Cint 1) ]))
        in
        checkb "rejected" true (Result.is_error (Anf.verify bad)));
    Alcotest.test_case "verifier-rejects-unbound-variable" `Quick (fun () ->
        checkb "rejected" true
          (Result.is_error (Anf.verify (Anf.Aret (Anf.Catom (Anf.Avar "ghost"))))));
    Alcotest.test_case "eta-params-are-recognized" `Quick (fun () ->
        checkb "$p0" true (Anf.is_eta_param "$p0");
        checkb "user name" false (Anf.is_eta_param "param");
        checkb "temp" false (Anf.is_eta_param "$0"));
  ]

(* ---- closure conversion and known calls ------------------------------------- *)

let report_of src = Vm.report (Vm.compile (baseline_ir src))

let closure_tests =
  [
    Alcotest.test_case "saturated-letrec-call-is-known" `Quick (fun () ->
        let r = report_of "letrec add2 x y = x + y in add2 1 2" in
        checki "functions" 1 r.Backend.Closure.functions;
        checki "known calls" 1 r.Backend.Closure.known_call_sites;
        checki "generic apps" 0 r.Backend.Closure.generic_app_sites);
    Alcotest.test_case "partial-application-stays-generic" `Quick (fun () ->
        let src = "letrec add2 x y = x + y in let inc = add2 1 in inc 41" in
        let r = report_of src in
        checki "known calls" 0 r.Backend.Closure.known_call_sites;
        checkb "generic apps" true (r.Backend.Closure.generic_app_sites >= 2);
        let v, _ = vm_run (baseline_ir src) in
        checkb "value" true (Nml.Eval.equal_value v (Nml.Eval.Vint 42)));
    Alcotest.test_case "mutual-recursion-is-known-both-ways" `Quick (fun () ->
        let src =
          "letrec ev n = if n = 0 then true else od (n - 1); od n = if n = 0 \
           then false else ev (n - 1) in ev 10"
        in
        let r = report_of src in
        checki "functions" 2 r.Backend.Closure.functions;
        (* ev->od, od->ev, and the entry call of ev *)
        checki "known calls" 3 r.Backend.Closure.known_call_sites;
        checki "generic apps" 0 r.Backend.Closure.generic_app_sites;
        let v, _ = vm_run (baseline_ir src) in
        checkb "value" true (Nml.Eval.equal_value v (Nml.Eval.Vbool true)));
    Alcotest.test_case "flat-environment-captures-all-frees" `Quick (fun () ->
        let r =
          report_of "let a = 1 in let b = 2 in letrec f x = x + a + b in f 3"
        in
        checkb "max env >= 2" true (r.Backend.Closure.max_env >= 2));
    Alcotest.test_case "anonymous-lambdas-stay-generic" `Quick (fun () ->
        let r = report_of "let g = fun x -> x + 1 in g 5" in
        checki "known calls" 0 r.Backend.Closure.known_call_sites;
        checkb "generic apps" true (r.Backend.Closure.generic_app_sites >= 1);
        checkb "closure sites" true (r.Backend.Closure.closure_sites >= 1));
  ]

(* ---- VM resource limits and chaos determinism ------------------------------- *)

let vm_tests =
  [
    Alcotest.test_case "fuel-exhaustion-raises-out-of-fuel" `Quick (fun () ->
        let ir = baseline_ir "letrec loop n = loop (n + 1) in loop 0" in
        Alcotest.check_raises "out of fuel" Vm.Out_of_fuel (fun () ->
            ignore (vm_run ~fuel:1_000 ir)));
    Alcotest.test_case "fixed-heap-raises-out-of-memory" `Quick (fun () ->
        let ir =
          baseline_ir
            "letrec build n = if n = 0 then nil else cons n (build (n - 1)) \
             in build 100"
        in
        Alcotest.check_raises "out of memory" Vm.Out_of_memory (fun () ->
            ignore (vm_run ~heap:8 ~grow:false ir)));
    Alcotest.test_case "tail-calls-run-deep" `Quick (fun () ->
        let ir =
          baseline_ir
            "letrec count n = if n = 0 then 0 else count (n - 1) in count \
             200000"
        in
        let v, _ = vm_run ir in
        checkb "value" true (Nml.Eval.equal_value v (Nml.Eval.Vint 0)));
    Alcotest.test_case "chaos-runs-are-deterministic" `Quick (fun () ->
        let src = "letrec rev l a = if null l then a else rev (cdr l) (cons (car l) a) in rev [1, 2, 3, 4, 5] nil" in
        let chaos = { Vm.gc_period = 7; poison = true; chaos_seed = 5 } in
        let run () =
          let _, m = vm_run ~heap:24 ~chaos (opt_ir src) in
          let s = Vm.stats m in
          Runtime.Stats.
            (s.heap_allocs, s.gc_runs, s.chaos_gcs, s.poisoned, s.steps)
        in
        checkb "identical counters" true (run () = run ()));
    Alcotest.test_case "generational-hints-are-counted" `Quick (fun () ->
        let src = "letrec hd l = car l in hd [1, 2, 3]" in
        let s = surface src in
        let liveness_hints =
          let t = Framework.Spinelive.Solver.make (Nml.Infer.infer_program s) in
          Framework.Spinelive.dead_spine_params t
        in
        let config =
          { Runtime.Heap.generational with Runtime.Heap.liveness_hints }
        in
        let ir = (T.optimize ~options:T.all s).T.ir in
        let check_stats label st =
          checki (label ^ " hint sites") 1 st.Runtime.Stats.hint_sites;
          checkb (label ^ " accepted") true
            (st.Runtime.Stats.hints_accepted >= 1)
        in
        let _, m = machine_run ~config ir in
        check_stats "machine" (M.stats m);
        let _, v = vm_run ~config ir in
        check_stats "vm" (Vm.stats v));
  ]

let () =
  Alcotest.run "backend"
    [
      ("differential", differential_tests);
      ("anf", anf_tests);
      ("closure", closure_tests);
      ("vm", vm_tests);
    ]
