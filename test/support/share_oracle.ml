(* The concrete-sharing oracle: ground truth for the abstract sharing
   analysis.  After a program has been evaluated on a storage backend,
   walk the result's cell graph through the backend's cell window
   ([Runtime.Machine.cell_words] / [Backend.Vm.cell_values]) and measure
   which cells are {e actually} shared, so a qcheck property can
   confront [Framework.Alias]'s per-argument verdicts with reality on
   both backends:

   - [reachable] is the address set of a value's cell graph;
   - [overlap] is the cells two values share — a verdict of [Unshared]
     for (definition, argument) is refuted by a non-empty overlap
     between the call's result and that argument;
   - [shared_cells] are the addresses reached along two or more distinct
     edges (in-degree >= 2 counting the root), the internal-sharing
     count the two backends must agree on for first-order results.

   The walker is backend-generic: a backend is just a way to read a
   value's cell address and a live cell's three fields. *)

module IS = Set.Make (Int)

type 'v cells = {
  addr : 'v -> int option;  (* cell address of a Ptr/Pair/Tree value *)
  fields : int -> 'v * 'v * 'v;  (* car, cdr, lbl of a live cell *)
}

let machine m =
  {
    addr =
      (function
      | Runtime.Machine.Wptr a | Runtime.Machine.Wpair a
      | Runtime.Machine.Wtree a ->
          Some a
      | _ -> None);
    fields = (fun a -> Runtime.Machine.cell_words m a);
  }

let vm m =
  {
    addr =
      (function
      | Backend.Vm.Ptr a | Backend.Vm.Pair a | Backend.Vm.Tree a -> Some a
      | _ -> None);
    fields = (fun a -> Backend.Vm.cell_values m a);
  }

let reachable c v =
  let seen = ref IS.empty in
  let rec go v =
    match c.addr v with
    | None -> ()
    | Some a ->
        if not (IS.mem a !seen) then begin
          seen := IS.add a !seen;
          let car, cdr, lbl = c.fields a in
          go car;
          go cdr;
          go lbl
        end
  in
  go v;
  !seen

let overlap c a b = IS.inter (reachable c a) (reachable c b)

let shared_cells c v =
  let indeg = Hashtbl.create 64 in
  let seen = ref IS.empty in
  let rec go v =
    match c.addr v with
    | None -> ()
    | Some a ->
        Hashtbl.replace indeg a
          (1 + Option.value ~default:0 (Hashtbl.find_opt indeg a));
        if not (IS.mem a !seen) then begin
          seen := IS.add a !seen;
          let car, cdr, lbl = c.fields a in
          go car;
          go cdr;
          go lbl
        end
  in
  go v;
  Hashtbl.fold (fun a n acc -> if n >= 2 then IS.add a acc else acc) indeg
    IS.empty

let shared_count c v = IS.cardinal (shared_cells c v)
