lib/nml/ty.mli: Format
