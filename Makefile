.PHONY: all build test check ci clean

all: build

build:
	dune build

test: build
	dune runtest

# The differential soundness harness with fault injection on.
check: build
	dune exec bin/nmlc.exe -- check --count 200 --seed 42 --chaos

# Everything a merge must survive.
ci: build
	dune runtest
	dune build @soundness

clean:
	dune clean
