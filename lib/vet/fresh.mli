(** Syntactic freshness: how many top spines of an expression's value
    are certainly fresh and unshared (Theorem 2, clause 1, applied
    syntactically — the verifier's independent counterpart of the
    optimizer's redirection test).

    A destructive call [f' e] is only sound when [e]'s top spine is
    unshared and dead after the call; the verifier demands
    [depth e >= 1] for every consumed argument that is not a recursive
    suffix of a parameter the surrounding definition itself consumes. *)

val inf : int
(** Freshness of [nil] and [leaf]: no cells, nothing to share. *)

val depth :
  ?share:Share.t ->
  Escape.Fixpoint.t ->
  defs:string list ->
  (string * int) list ->
  Runtime.Ir.expr ->
  int
(** [depth t ~defs env e]: certainly-fresh top spines of [e].  [env]
    gives the freshness of let-bound variables whose occurrences project
    pairwise disjoint substructures; [defs] are the monomorphized
    definition names ({!Erase.base} resolves derived names against
    them).  With [share], a definition call is additionally credited
    with the verifier's own interprocedural sharing rule
    ({!Share.call_unshared}) — the independent re-derivation of the
    optimizer's alias-licensed redirections. *)
