lib/core/fixpoint.ml: Dvalue Hashtbl List Nml Printf Probe Semantics
