let append_def =
  "append x y = if null x then y else cons (car x) (append (cdr x) y)"

let split_def =
  "split p x l h =\n\
  \  if null x then cons l (cons h nil)\n\
  \  else if car x < p then split p (cdr x) (cons (car x) l) h\n\
  \  else split p (cdr x) l (cons (car x) h)"

let ps_def =
  "ps x =\n\
  \  if null x then nil\n\
  \  else let s = split (car x) (cdr x) nil nil in\n\
  \       append (ps (car s)) (cons (car x) (ps (car (cdr s))))"

let rev_def = "rev l = if null l then nil else append (rev (cdr l)) (cons (car l) nil)"
let map_def = "map f l = if null l then nil else cons (f (car l)) (map f (cdr l))"
let pair_def = "pair x = cons (car x) (cons (car (cdr x)) nil)"
let length_def = "length l = if null l then 0 else 1 + length (cdr l)"
let sum_def = "sum l = if null l then 0 else car l + sum (cdr l)"

let member_def =
  "member n l = if null l then false else if car l = n then true else member n (cdr l)"

let take_def =
  "take n l = if n = 0 then nil else if null l then nil else cons (car l) (take (n - 1) (cdr l))"

let drop_def = "drop n l = if n = 0 then l else if null l then nil else drop (n - 1) (cdr l)"
let nth_def = "nth n l = if n = 0 then car l else nth (n - 1) (cdr l)"
let last_def = "last l = if null (cdr l) then car l else last (cdr l)"

let filter_def =
  "filter p l =\n\
  \  if null l then nil\n\
  \  else if p (car l) then cons (car l) (filter p (cdr l))\n\
  \  else filter p (cdr l)"

let insert_def =
  "insert n l =\n\
  \  if null l then cons n nil\n\
  \  else if n <= car l then cons n l\n\
  \  else cons (car l) (insert n (cdr l))"

let isort_def = "isort l = if null l then nil else insert (car l) (isort (cdr l))"
let concat_def = "concat ls = if null ls then nil else append (car ls) (concat (cdr ls))"
let create_list_def = "create_list n = if n = 0 then nil else cons n (create_list (n - 1))"
let id_def = "id x = x"
let const_def = "konst x y = x"
let compose_def = "compose f g x = f (g x)"
let foldr_def = "foldr f z l = if null l then z else f (car l) (foldr f z (cdr l))"

let zip_def =
  "zip a b =\n\
  \  if null a then nil\n\
  \  else if null b then nil\n\
  \  else cons (mkpair (car a) (car b)) (zip (cdr a) (cdr b))"

let unzip_fsts_def = "fsts l = if null l then nil else cons (fst (car l)) (fsts (cdr l))"
let unzip_snds_def = "snds l = if null l then nil else cons (snd (car l)) (snds (cdr l))"
let swap_def = "swap p = mkpair (snd p) (fst p)"

let assoc_def =
  "assoc d k l =\n\
  \  if null l then d\n\
  \  else if fst (car l) = k then snd (car l)\n\
  \  else assoc d k (cdr l)"

let tmap_def =
  "tmap f t =\n\
  \  if isleaf t then leaf\n\
  \  else node (tmap f (left t)) (f (label t)) (tmap f (right t))"

let tinsert_def =
  "tinsert n t =\n\
  \  if isleaf t then node leaf n leaf\n\
  \  else if n < label t then node (tinsert n (left t)) (label t) (right t)\n\
  \  else node (left t) (label t) (tinsert n (right t))"

let tsum_def = "tsum t = if isleaf t then 0 else tsum (left t) + label t + tsum (right t)"

let mirror_def =
  "mirror t = if isleaf t then leaf else node (mirror (right t)) (label t) (mirror (left t))"

let flatten_def =
  "flatten t =\n\
  \  if isleaf t then nil\n\
  \  else append (flatten (left t)) (cons (label t) (flatten (right t)))"

let wrap defs main =
  match defs with
  | [] -> main
  | _ -> Printf.sprintf "letrec\n%s\nin %s" (String.concat ";\n" defs) main

let partition_sort_program = wrap [ append_def; split_def; ps_def ] "ps [5, 2, 7, 1, 3, 4]"
let map_pair_program = wrap [ map_def; pair_def ] "map pair [[1, 2], [3, 4], [5, 6]]"
let rev_program = wrap [ append_def; rev_def ] "rev [1, 2, 3, 4, 5]"

let all_defs =
  [
    ("append", append_def);
    ("split", split_def);
    ("ps", ps_def);
    ("rev", rev_def);
    ("map", map_def);
    ("pair", pair_def);
    ("length", length_def);
    ("sum", sum_def);
    ("member", member_def);
    ("take", take_def);
    ("drop", drop_def);
    ("nth", nth_def);
    ("last", last_def);
    ("filter", filter_def);
    ("insert", insert_def);
    ("isort", isort_def);
    ("concat", concat_def);
    ("create_list", create_list_def);
    ("id", id_def);
    ("konst", const_def);
    ("compose", compose_def);
    ("foldr", foldr_def);
    ("zip", zip_def);
    ("fsts", unzip_fsts_def);
    ("snds", unzip_snds_def);
    ("swap", swap_def);
    ("assoc", assoc_def);
    ("tmap", tmap_def);
    ("tinsert", tinsert_def);
    ("tsum", tsum_def);
    ("mirror", mirror_def);
    ("flatten", flatten_def);
  ]
