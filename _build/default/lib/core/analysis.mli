(** The escape tests of section 4: global ([G]) and local ([L]).

    Both tests ask the same question — how many bottom spines of the
    [i]-th argument of [f] can be contained in the result of a call —
    and differ in what they assume about the call:

    - {!global} applies the abstract value of [f] to worst-case arguments
      [⟨<1,s_i>, W⟩] / [⟨<0,0>, W⟩], so its verdict holds for {e every}
      call of [f];
    - {!local} uses the abstract function components of the actual
      argument expressions of one particular call, which is more precise.

    A {!verdict} packages the resulting basic escape value together with
    the spine count [s_i] of the parameter, from which the actionable
    number — how many {e top} spines can never escape, hence can be
    stack-allocated or reused — is derived ({!non_escaping_top_spines}). *)

type verdict = {
  func : string;  (** analyzed definition *)
  arg : int;  (** 1-based parameter position [i] *)
  arity : int;  (** number of arguments [n] the test applied *)
  inst : Nml.Ty.t;  (** ground instance of [f] used *)
  spines : int;  (** [s_i], spine count of the parameter's type *)
  esc : Besc.t;  (** the test's result: [G(f,i)] or [L(f,i,e1..en)] *)
}

val escaping_spines : verdict -> int
(** [k] such that the bottom [k] spines of the argument may escape
    ([0] when nothing escapes). *)

val escapes : verdict -> bool
(** Whether any part of the argument may escape ([esc <> <0,0>]). *)

val non_escaping_top_spines : verdict -> int
(** [s_i - k]: how many top spines of the argument are guaranteed not to
    escape — the quantity that is invariant across polymorphic instances
    (Theorem 1) and that licenses storage optimizations. *)

val global : ?inst:Nml.Ty.t -> ?arity:int -> Fixpoint.t -> string -> arg:int -> verdict
(** [global t f ~arg:i] is the paper's [G(f, i, env_e)] at the simplest
    instance of [f] (or at [inst]).  [arity] defaults to the number of
    arguments [f] can take before returning a primitive value.
    @raise Invalid_argument if [arg] is not in [1..arity]. *)

val global_all : ?inst:Nml.Ty.t -> Fixpoint.t -> string -> verdict list
(** One global verdict per parameter position. *)

val local : Fixpoint.t -> string -> Nml.Ast.expr list -> arg:int -> verdict
(** [local t f [e1;...;en] ~arg:i] is the paper's [L(f, i, e1...en,
    env_e)]: the argument expressions are typed in the program's
    environment (fixing [f]'s instance), the interesting argument keeps
    its actual abstract function component but is marked [<1,s_i>], and
    the others are marked [<0,0>]. *)

val local_all : Fixpoint.t -> string -> Nml.Ast.expr list -> verdict list

val local_call : Fixpoint.t -> Nml.Tast.texpr -> arg:int -> verdict
(** Local test on an already-typed application node [f e1 ... en] (the
    head must be a variable naming a definition). *)

(** {2 Component-resolved verdicts for pair-typed parameters}

    A pair argument has several substructures with their own spine
    chains; a single verdict joins them.  These run the test once per
    projection path (the paper's "once per interesting object" applied
    to components), so e.g. for
    [snds : (int * int list) list -> int list list] the [.fst] component
    is reported non-escaping and [.snd] fully escaping. *)

val component_paths : Nml.Ty.t -> Dvalue.component list list
(** The projection paths to the non-pair leaves of a type: a non-pair
    type has the single path []; [a * (b * c)] has [.fst], [.snd.fst],
    [.snd.snd]. *)

val global_components :
  ?inst:Nml.Ty.t -> Fixpoint.t -> string -> arg:int ->
  (Dvalue.component list * verdict) list
(** One global verdict per component path of the parameter; the
    verdict's [spines] is the component's own spine count. *)

val pp_path : Format.formatter -> Dvalue.component list -> unit
(** [".fst.snd"], or ["(whole)"] for the empty path. *)

val pp_verdict : Format.formatter -> verdict -> unit
(** e.g. ["G(append, 1) = <1,0>: top 1 of 1 spine(s) do not escape"]. *)
