exception Error of Loc.t * string

type spanned = { token : Token.t; loc : Loc.t }

type state = {
  src : string;
  file : string;
  mutable off : int;
  mutable line : int;
  mutable col : int;
  mutable comments : (Loc.t * string) list;  (* block comments, reversed *)
}

let pos_of st : Loc.pos = { line = st.line; col = st.col }

let loc_from st start_pos =
  Loc.make ~file:st.file ~start_pos ~end_pos:(pos_of st)

let error st start_pos msg = raise (Error (loc_from st start_pos, msg))

let peek st = if st.off < String.length st.src then Some st.src.[st.off] else None

let peek2 st =
  if st.off + 1 < String.length st.src then Some st.src.[st.off + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.off <- st.off + 1

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_ident_start c = is_alpha c || c = '_'
let is_ident_char c = is_ident_start c || is_digit c || c = '\''

(* Skips whitespace, "--" line comments, and nested "(* *)" comments.
   Returns [true] when progress was made. *)
let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      ignore (skip_trivia st);
      true
  | Some '-' when peek2 st = Some '-' ->
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      ignore (skip_trivia st);
      true
  | Some '(' when peek2 st = Some '*' ->
      let start = pos_of st in
      let start_off = st.off in
      advance st;
      advance st;
      skip_comment st start 1;
      (* record the body (between the outermost markers) with the span of
         the whole comment — the lint suppression directives live here *)
      let text = String.sub st.src (start_off + 2) (max 0 (st.off - start_off - 4)) in
      st.comments <- (loc_from st start, text) :: st.comments;
      ignore (skip_trivia st);
      true
  | _ -> false

and skip_comment st start depth =
  if depth = 0 then ()
  else
    match (peek st, peek2 st) with
    | Some '*', Some ')' ->
        advance st;
        advance st;
        skip_comment st start (depth - 1)
    | Some '(', Some '*' ->
        advance st;
        advance st;
        skip_comment st start (depth + 1)
    | Some _, _ ->
        advance st;
        skip_comment st start depth
    | None, _ -> error st start "unterminated comment"

let lex_int st =
  let start_pos = pos_of st in
  let start_off = st.off in
  while match peek st with Some c -> is_digit c | None -> false do
    advance st
  done;
  let text = String.sub st.src start_off (st.off - start_off) in
  match int_of_string_opt text with
  | Some n -> Token.INT n
  | None -> error st start_pos (Printf.sprintf "integer literal %s is out of range" text)

let lex_ident st =
  let start_off = st.off in
  while match peek st with Some c -> is_ident_char c | None -> false do
    advance st
  done;
  let text = String.sub st.src start_off (st.off - start_off) in
  match Token.keyword_of_string text with
  | Some tok -> tok
  | None -> Token.IDENT text

let next_token st : spanned =
  ignore (skip_trivia st);
  let start_pos = pos_of st in
  let single tok =
    advance st;
    tok
  in
  let token =
    match peek st with
    | None -> Token.EOF
    | Some c when is_digit c -> lex_int st
    | Some c when is_ident_start c -> lex_ident st
    | Some '(' -> single Token.LPAREN
    | Some ')' -> single Token.RPAREN
    | Some '[' -> single Token.LBRACKET
    | Some ']' -> single Token.RBRACKET
    | Some '+' -> single Token.PLUS
    | Some '*' -> single Token.STAR
    | Some '.' -> single Token.DOT
    | Some ',' -> single Token.COMMA
    | Some ';' -> single Token.SEMI
    | Some '=' -> single Token.EQ
    | Some '-' ->
        advance st;
        if peek st = Some '>' then (
          advance st;
          Token.ARROW)
        else Token.MINUS
    | Some '<' ->
        advance st;
        (match peek st with
        | Some '=' ->
            advance st;
            Token.LE
        | Some '>' ->
            advance st;
            Token.NE
        | _ -> Token.LT)
    | Some '>' ->
        advance st;
        if peek st = Some '=' then (
          advance st;
          Token.GE)
        else Token.GT
    | Some ':' ->
        advance st;
        if peek st = Some ':' then (
          advance st;
          Token.CONS_OP)
        else error st start_pos "expected '::' (single ':' is not a token)"
    | Some '\\' -> single Token.LAMBDA
    | Some c -> error st start_pos (Printf.sprintf "unexpected character %C" c)
  in
  { token; loc = loc_from st start_pos }

let tokenize ?(file = "<string>") src =
  let st = { src; file; off = 0; line = 1; col = 1; comments = [] } in
  let rec loop acc =
    let sp = next_token st in
    if Token.equal sp.token Token.EOF then List.rev (sp :: acc) else loop (sp :: acc)
  in
  loop []

let tokens ?file src = List.map (fun sp -> sp.token) (tokenize ?file src)

let comments ?(file = "<string>") src =
  let st = { src; file; off = 0; line = 1; col = 1; comments = [] } in
  let rec loop () =
    if not (Token.equal (next_token st).token Token.EOF) then loop ()
  in
  loop ();
  List.rev st.comments
