module Ty = Nml.Ty
module Eval = Nml.Eval

let pp_verdict_line ppf (v : Analysis.verdict) =
  let keep = Analysis.non_escaping_top_spines v in
  Format.fprintf ppf "  G(%s, %d) = %-6s" v.Analysis.func v.Analysis.arg
    (Besc.to_string v.Analysis.esc);
  if not (Analysis.escapes v) then
    Format.fprintf ppf " -- no part of argument %d ever escapes" v.Analysis.arg
  else if v.Analysis.spines = 0 then
    Format.fprintf ppf " -- argument %d (not a list) may escape" v.Analysis.arg
  else if Analysis.escaping_spines v = 0 then
    Format.fprintf ppf " -- no spine of argument %d escapes, only elements may"
      v.Analysis.arg
  else
    Format.fprintf ppf
      " -- top %d of %d spine(s) never escape; bottom %d may escape" keep
      v.Analysis.spines
      (Analysis.escaping_spines v)

let definition ppf t name =
  let inst = Fixpoint.instance_ty t name in
  Format.fprintf ppf "@[<v 0>%s : %s@," name (Ty.to_string inst);
  let verdicts = Analysis.global_all ~inst t name in
  List.iter
    (fun (v : Analysis.verdict) ->
      Format.fprintf ppf "%a@," pp_verdict_line v;
      (* pair-typed parameters additionally get per-component verdicts *)
      match Analysis.component_paths (List.nth (Ty.arg_tys inst v.Analysis.arity) (v.Analysis.arg - 1)) with
      | [ [] ] -> ()
      | _ ->
          List.iter
            (fun (path, (cv : Analysis.verdict)) ->
              Format.fprintf ppf "    component %a = %s%s@," Analysis.pp_path path
                (Besc.to_string cv.Analysis.esc)
                (if Analysis.escapes cv then "" else "  (never escapes)"))
            (Analysis.global_components ~inst t name ~arg:v.Analysis.arg))
    verdicts;
  (if verdicts <> [] then
     let info = Sharing.result_unshared ~inst t name in
     if info.Sharing.result_spines > 0 then
       Format.fprintf ppf
         "  sharing: top %d of the result's %d spine(s) are unshared in any call@,"
         info.Sharing.unshared_top info.Sharing.result_spines);
  Format.fprintf ppf "@]"

let program ppf t =
  let prog = Fixpoint.program t in
  Format.fprintf ppf "@[<v 0>";
  List.iter
    (fun (name, _) -> Format.fprintf ppf "%a@," (fun ppf () -> definition ppf t name) ())
    prog.Nml.Infer.schemes;
  Format.fprintf ppf "@]"

let call ppf t fname args =
  Format.fprintf ppf "@[<v 0>call: %s on %d argument(s)@,"  fname (List.length args);
  List.iteri
    (fun j _ ->
      let v = Analysis.local t fname args ~arg:(j + 1) in
      let keep = Analysis.non_escaping_top_spines v in
      Format.fprintf ppf "  L(%s, %d) = %-6s" fname (j + 1) (Besc.to_string v.Analysis.esc);
      if not (Analysis.escapes v) then Format.fprintf ppf " -- nothing escapes this call@,"
      else if v.Analysis.spines = 0 then Format.fprintf ppf " -- the argument may escape@,"
      else
        Format.fprintf ppf " -- top %d of %d spine(s) stay inside this call@," keep
          v.Analysis.spines)
    args;
  Format.fprintf ppf "@]"

let kleene_trace ?(max_iters = 12) ppf (prog : Nml.Infer.program) =
  let defs =
    List.map (fun (name, _) -> (name, Nml.Infer.instantiate_def prog name None)) prog.Nml.Infer.schemes
  in
  let d =
    List.fold_left
      (fun acc (_, tast) ->
        let m = ref acc in
        Nml.Tast.iter_tys (fun ty -> m := max !m (Ty.max_list_depth ty)) tast;
        !m)
      0 defs
  in
  Dvalue.ensure_d d;
  (* the G-style probe application of a definition's current iterate *)
  let g_escs value tast =
    let n = Ty.arity tast.Nml.Tast.ty in
    let arg_tys = Ty.arg_tys tast.Nml.Tast.ty n in
    List.mapi
      (fun i _ ->
        let ys =
          List.mapi
            (fun j ty -> if j = i then Dvalue.interesting ty else Dvalue.boring ty)
            arg_tys
        in
        (Dvalue.total_esc (Dvalue.apply_all value ys)))
      arg_tys
  in
  let pp_row ppf vals =
    List.iter
      (fun (name, escs) ->
        Format.fprintf ppf "  %s: %s" name
          (String.concat " " (List.map Besc.to_string escs)))
      vals
  in
  Format.fprintf ppf "@[<v 0>";
  let current = ref (List.map (fun (n, tast) -> (n, Dvalue.bottom tast.Nml.Tast.ty)) defs) in
  let stable = ref false in
  let k = ref 0 in
  while (not !stable) && !k <= max_iters do
    let snapshot = !current in
    let row =
      List.map (fun ((n, tast), (_, v)) -> (n, (g_escs v tast : Besc.t list)))
        (List.combine defs snapshot)
    in
    Format.fprintf ppf "iterate %d %a@," !k pp_row row;
    (* Jacobi: next iterate of every body under the snapshot *)
    let ctx =
      {
        Semantics.d = (fun () -> Dvalue.current_d ());
        global =
          (fun x _ty ->
            match List.assoc_opt x snapshot with
            | Some v -> v
            | None -> invalid_arg (Printf.sprintf "kleene_trace: unknown %s" x));
        max_iters = 100;
        iters = 0;
        capped = false;
        fv_cache = [];
      }
    in
    let next =
      List.map (fun (n, tast) -> (n, Semantics.eval ctx Semantics.Env.empty tast)) defs
    in
    stable :=
      List.for_all2 (fun (_, a) (_, b) -> Dvalue.equal a b) snapshot next;
    current := next;
    incr k
  done;
  if !stable then Format.fprintf ppf "stable after %d iterate(s)@," (!k - 1)
  else Format.fprintf ppf "(trace cut off at %d iterates)@," max_iters;
  Format.fprintf ppf "@]"

(* Figure 1: label every cons chain with its top spine index; the bottom
   index is derived from the value's total spine depth. *)
let spines_figure ppf value =
  let rec depth = function
    | Eval.Vcons (hd, tl) -> max (1 + depth hd) (depth tl)
    | _ -> 0
  in
  let total = depth value in
  let rec render ppf (v, top) =
    match v with
    | Eval.Vnil -> Format.fprintf ppf "[]"
    | Eval.Vcons _ ->
        let elems =
          let rec go = function
            | Eval.Vcons (hd, tl) -> hd :: go tl
            | _ -> []
          in
          go v
        in
        Format.fprintf ppf "@[<hov 2>(spine top=%d bottom=%d:@ %a)@]" top
          (total - top + 1)
          (Format.pp_print_list ~pp_sep:Format.pp_print_space (fun ppf e ->
               render ppf (e, top + 1)))
          elems
    | other -> Eval.pp_value ppf other
  in
  Format.fprintf ppf "@[<v 0>value with %d spine(s):@,%a@]" total render (value, 1)
