lib/nml/parser.ml: Array Ast Lexer List Loc Printf String Token
