(* The differential soundness harness.

   Each program is run several ways — reference interpreter, machine on
   the unoptimized IR, machine on the optimized IR, and machine on the
   optimized IR under fault injection (tiny fixed heaps, forced
   collections, freed-cell poisoning) with arena validation on — and the
   outcomes are compared.  A run stopped by a resource limit proves
   nothing and is accepted; a run that crashes or answers differently
   while the reference interpreter produced a value is a soundness
   divergence.  After every machine run the Stats counters are checked
   against the store's bookkeeping identities.

   [fault] deliberately breaks one optimizer verdict, to demonstrate
   that the oracle catches exactly this kind of bug. *)

module M = Runtime.Machine
module Ir = Runtime.Ir
module Stats = Runtime.Stats
module Eval = Nml.Eval

type fault = No_fault | Widen_arena | Misuse_dcons

type config = {
  heap : int;  (* capacity of the fixed-size chaos heaps *)
  fuel : int;  (* step budget per run; <= 0 means unlimited *)
  chaos : bool;  (* forced collections + freed-cell poisoning *)
  seed : int;  (* seeds both program generation and the machine PRNG *)
  fault : fault;
}

let default = { heap = 24; fuel = 200_000; chaos = false; seed = 42; fault = No_fault }

type outcome = Value of Eval.value | Limit of string | Crash of string

let pp_outcome ppf = function
  | Value v -> Eval.pp_value ppf v
  | Limit msg -> Format.fprintf ppf "<resource limit: %s>" msg
  | Crash msg -> Format.fprintf ppf "<crash: %s>" msg

let outcome_to_string o = Format.asprintf "%a" pp_outcome o

type failure = { stage : string; expected : string; got : string }
type verdict = Pass | Skip of string | Fail of failure

(* ---- the ways to run one program ----------------------------------------- *)

let fuel_opt cfg = if cfg.fuel > 0 then Some cfg.fuel else None

let run_reference cfg surface =
  match Eval.run ?fuel:(fuel_opt cfg) surface with
  | v -> Value v
  | exception Eval.Out_of_fuel -> Limit "reference interpreter out of fuel"
  | exception Eval.Runtime_error msg -> Crash msg

let chaos_of cfg =
  if cfg.chaos then { M.gc_period = 3; poison = true; chaos_seed = cfg.seed }
  else M.no_chaos

let run_machine cfg ?(config = Runtime.Heap.legacy) ~heap ~grow ~chaos ir =
  let m =
    M.create ~heap_size:heap ~grow ~check_arenas:true ?fuel:(fuel_opt cfg) ~chaos
      ~config ()
  in
  let outcome =
    match M.eval m ir with
    | w -> (
        match M.read_value m w with
        | v -> Value v
        | exception M.Error msg -> Crash msg)
    | exception M.Error msg -> Crash msg
    | exception M.Out_of_memory -> Limit "machine out of memory"
    | exception M.Out_of_fuel -> Limit "machine out of fuel"
  in
  (outcome, m)

(* The same execution on the bytecode VM: ANF, flat closures, known
   calls, tail calls — but the identical heap policy, chaos discipline
   and arena validation, so every machine stage doubles as a VM stage.
   A [Vm.Internal] is a backend bug, not a program outcome, and is
   deliberately left to propagate (it must abort the oracle loudly). *)
let run_vm cfg ?(config = Runtime.Heap.legacy) ~heap ~grow ~chaos ir =
  let module V = Backend.Vm in
  let m =
    V.create ~heap_size:heap ~grow ~check_arenas:true ?fuel:(fuel_opt cfg) ~chaos
      ~config ()
  in
  let outcome =
    match V.eval m (V.compile ir) with
    | w -> (
        match V.read_value m w with
        | v -> Value v
        | exception V.Error msg -> Crash msg)
    | exception V.Error msg -> Crash msg
    | exception V.Out_of_memory -> Limit "vm out of memory"
    | exception V.Out_of_fuel -> Limit "vm out of fuel"
  in
  (outcome, m)

(* ---- invariant counters --------------------------------------------------- *)

let stats_violations_of s ~live =
  let total = Stats.total_allocs s in
  List.filter_map
    (fun (ok, msg) -> if ok then None else Some msg)
    [
      ( live = total - s.Stats.swept - s.Stats.arena_freed,
        Printf.sprintf "live (%d) <> allocs (%d) - swept (%d) - arena_freed (%d)" live
          total s.Stats.swept s.Stats.arena_freed );
      (s.Stats.swept <= s.Stats.heap_allocs, "swept more cells than were heap-allocated");
      ( s.Stats.arena_freed <= s.Stats.arena_allocs,
        "freed more arena cells than were arena-allocated" );
      (s.Stats.peak_live <= total, "peak_live exceeds total allocations");
      (live <= s.Stats.peak_live, "live cells exceed peak_live");
      (s.Stats.heap_capacity >= 1, "heap capacity vanished");
      (* generational bookkeeping: a cell is promoted at most once and
         only heap cells ever live in (or skip) the nursery *)
      ( (not s.Stats.generational)
        || s.Stats.promoted + s.Stats.pretenured <= s.Stats.heap_allocs,
        "promoted + pretenured exceed heap allocations" );
      ( (not s.Stats.generational)
        || s.Stats.minor_gcs + s.Stats.major_gcs <= s.Stats.gc_runs,
        "minor + major collections exceed gc_runs" );
    ]

let stats_violations m = stats_violations_of (M.stats m) ~live:(M.live_cells m)

let vm_stats_violations m =
  stats_violations_of (Backend.Vm.stats m) ~live:(Backend.Vm.live_cells m)

(* ---- comparison ------------------------------------------------------------ *)

(* A resource-limited run proves nothing (fixed-size heaps and fuel
   budgets legitimately stop correct programs); everything else must
   match the reference interpreter's verdict. *)
let agree reference got =
  match (reference, got) with
  | _, Limit _ -> true
  | Value v, Value w -> Eval.equal_value v w
  | Crash _, Crash _ -> true
  | Value _, Crash _ | Crash _, Value _ -> false
  | Limit _, _ -> true (* unreachable: the caller skips limited references *)

(* ---- deliberate optimizer sabotage ----------------------------------------- *)

(* Rewrite the first cons site into "reuse the tail cell in place" — a
   verdict no sound reuse analysis can produce, since the tail is live
   inside the very result being built. *)
let rec break_first_cons e =
  let open Ir in
  match e with
  | Prim Nml.Ast.Cons | ConsAt _ ->
      ( Lam ("!h", Lam ("!t", App (App (App (Dcons, Var "!t"), Var "!h"), Var "!t"))),
        true )
  | Const _ | Prim _ | NodeAt _ | Dcons | Dnode | Var _ -> (e, false)
  | App (f, a) ->
      let f', hit = break_first_cons f in
      if hit then (App (f', a), true)
      else
        let a', hit = break_first_cons a in
        (App (f, a'), hit)
  | Lam (x, b) ->
      let b', hit = break_first_cons b in
      (Lam (x, b'), hit)
  | If (c, t, f) ->
      let c', hit = break_first_cons c in
      if hit then (If (c', t, f), true)
      else
        let t', hit = break_first_cons t in
        if hit then (If (c, t', f), true)
        else
          let f', hit = break_first_cons f in
          (If (c, t, f'), hit)
  | Letrec (bs, body) ->
      let rec go acc = function
        | [] -> (List.rev acc, false)
        | (x, rhs) :: rest ->
            let rhs', hit = break_first_cons rhs in
            if hit then (List.rev_append acc ((x, rhs') :: rest), true)
            else go ((x, rhs) :: acc) rest
      in
      let bs', hit = go [] bs in
      if hit then (Letrec (bs', body), true)
      else
        let body', hit = break_first_cons body in
        (Letrec (bs, body'), hit)
  | WithArena (k, i, b) ->
      let b', hit = break_first_cons b in
      (WithArena (k, i, b'), hit)

let sabotage fault surface =
  let ir = Ir.of_program surface in
  match fault with
  | No_fault -> None
  | Widen_arena ->
      (* pretend the analysis proved the first cons site local to the
         whole program: any cell of it reaching the result escapes *)
      Some
        (Ir.WithArena
           ( Ir.Region,
             997,
             Ir.map_conses (fun i -> if i = 0 then Ir.Arena 997 else Ir.Heap) ir ))
  | Misuse_dcons ->
      let ir', hit = break_first_cons ir in
      if hit then Some ir' else None

(* ---- the per-program oracle ------------------------------------------------ *)

(* stage name, IR, heap capacity, growth, chaos, heap configuration *)
let machine_stages cfg surface =
  let baseline = Ir.of_program surface in
  let optimized = (Optimize.Transform.optimize surface).Optimize.Transform.ir in
  let pretenured =
    let options =
      { Optimize.Transform.all with Optimize.Transform.pretenure = true }
    in
    (Optimize.Transform.optimize ~options surface).Optimize.Transform.ir
  in
  let chaos = chaos_of cfg in
  let tiny = max 2 cfg.heap in
  let leg = Runtime.Heap.legacy in
  let gen = Runtime.Heap.generational in
  (* a seeded draw over the heap-configuration space, so repeated chaos
     runs sample different nursery sizes and region/pretenure toggles
     while any divergence stays reproducible from the seed *)
  let drawn =
    let st = Random.State.make [| cfg.seed; 0x9e3779b9 |] in
    {
      gen with
      Runtime.Heap.regions = Random.State.bool st;
      pretenure = Random.State.bool st;
      nursery = 1 + Random.State.int st 16;
    }
  in
  [
    ("baseline machine", baseline, 4096, true, M.no_chaos, leg);
    ("optimized machine", optimized, 4096, true, M.no_chaos, leg);
    ("optimized, fixed heap", optimized, tiny, false, chaos, leg);
    ("optimized, tiny fixed heap", optimized, max 2 (tiny / 4), false, chaos, leg);
    ( "optimized, growing heap under pressure",
      optimized,
      max 2 (tiny / 8),
      true,
      chaos,
      leg );
    (* the same optimized program on every generational configuration:
       forced chaos collections now also land mid-region, while the
       tiny-nursery stage drives promotion on every program *)
    ("optimized, generational heap", pretenured, 4096, true, chaos, gen);
    ( "optimized, generational tiny nursery",
      pretenured,
      4096,
      true,
      chaos,
      { gen with Runtime.Heap.nursery = 2 } );
    ( "optimized, generational no regions",
      pretenured,
      4096,
      true,
      chaos,
      { gen with Runtime.Heap.regions = false } );
    ("optimized, generational drawn config", pretenured, 4096, true, chaos, drawn);
    ( "optimized, generational under pressure",
      pretenured,
      max 2 (tiny / 4),
      true,
      chaos,
      { gen with Runtime.Heap.nursery = 3 } );
  ]
  @
  match sabotage cfg.fault surface with
  | None -> []
  | Some ir -> [ ("sabotaged", ir, tiny, true, { chaos with M.poison = true }, leg) ]

let check_src cfg src =
  match Nml.Surface.of_string src with
  | exception _ -> Skip "unparseable"
  | surface -> (
      match Nml.Infer.infer_program surface with
      | exception _ -> Skip "ill-typed"
      | _ -> (
          match run_reference cfg surface with
          | Limit msg -> Skip msg
          | Value (Eval.Vclos _ | Eval.Vprim _) ->
              (* a functional result cannot be read out of the store, so
                 there is nothing to compare *)
              Skip "the result is a function"
          | reference -> (
              let expected = outcome_to_string reference in
              match machine_stages cfg surface with
              | exception e ->
                  Fail { stage = "transform"; expected; got = Printexc.to_string e }
              | stages ->
                  let rec go = function
                    | [] -> Pass
                    | (stage, ir, heap, grow, chaos, config) :: rest -> (
                        let outcome, m =
                          run_machine cfg ~config ~heap ~grow ~chaos ir
                        in
                        if not (agree reference outcome) then
                          Fail { stage; expected; got = outcome_to_string outcome }
                        else
                          match stats_violations m with
                          | v :: _ ->
                              Fail
                                {
                                  stage = stage ^ " (stats)";
                                  expected = "consistent invariant counters";
                                  got = v;
                                }
                          | [] -> (
                              (* the same stage on the bytecode VM: the
                                 third differential leg *)
                              let outcome, vm =
                                run_vm cfg ~config ~heap ~grow ~chaos ir
                              in
                              if not (agree reference outcome) then
                                Fail
                                  {
                                    stage = stage ^ " (vm)";
                                    expected;
                                    got = outcome_to_string outcome;
                                  }
                              else
                                match vm_stats_violations vm with
                                | [] -> go rest
                                | v :: _ ->
                                    Fail
                                      {
                                        stage = stage ^ " (vm stats)";
                                        expected = "consistent invariant counters";
                                        got = v;
                                      }))
                  in
                  go stages)))

let check_ir cfg ~src ir =
  match run_reference cfg (Nml.Surface.of_string src) with
  | Limit msg -> Skip msg
  | Value (Eval.Vclos _ | Eval.Vprim _) -> Skip "the result is a function"
  | reference -> (
      let expected = outcome_to_string reference in
      let outcome, m = run_machine cfg ~heap:4096 ~grow:true ~chaos:(chaos_of cfg) ir in
      if not (agree reference outcome) then
        Fail { stage = "supplied ir"; expected; got = outcome_to_string outcome }
      else
        match stats_violations m with
        | [] -> Pass
        | v :: _ ->
            Fail
              {
                stage = "supplied ir (stats)";
                expected = "consistent invariant counters";
                got = v;
              })

(* ---- corpus and random search ---------------------------------------------- *)

type summary = { checked : int; passed : int; skipped : int }

type counterexample = {
  name : string;
  original : string;
  shrunk : string;
  failure : failure;
}

let pp_counterexample ppf c =
  Format.fprintf ppf
    "@[<v 0>soundness divergence in %s, stage %s@,\
    \  expected: %s@,\
    \  got:      %s@,\
     counterexample (shrunk):@,\
    \  %s@,\
     original:@,\
    \  %s@]"
    c.name c.failure.stage c.failure.expected c.failure.got c.shrunk c.original

let shrink_failing cfg src failure =
  (* a candidate must reproduce the divergence at the same stage, so the
     minimizer cannot drift into an unrelated failure class *)
  let still_failing s =
    match check_src cfg s with
    | Fail f -> String.equal f.stage failure.stage
    | Pass | Skip _ -> false
  in
  let shrunk = Shrink.minimize ~still_failing src in
  let failure = match check_src cfg shrunk with Fail f -> f | _ -> failure in
  (shrunk, failure)

let builtin_corpus =
  let open Nml.Examples in
  [
    ("partition-sort", partition_sort_program);
    ("map-pair", map_pair_program);
    ("reverse", rev_program);
    ("isort", wrap [ insert_def; isort_def ] "isort [9, 3, 7, 1, 8, 2]");
    ("concat", wrap [ append_def; concat_def ] "concat [[1], [2, 3], [], [4]]");
    ("create-list", wrap [ create_list_def ] "create_list 12");
    ( "filter-member",
      wrap [ filter_def; member_def ] "filter (fun n -> member n [1, 2, 3]) [3, 1, 4, 1, 5]"
    );
    ( "take-drop",
      wrap [ take_def; drop_def ] "cons (take 2 [1, 2, 3, 4]) (cons (drop 2 [1, 2, 3, 4]) nil)"
    );
    ("foldr", wrap [ foldr_def ] "foldr (fun a b -> cons (a * 2) b) nil [1, 2, 3]");
    ("zip", wrap [ zip_def ] "zip [1, 2, 3] [4, 5, 6]");
    ("swap", wrap [ swap_def ] "swap (mkpair [1] [2])");
    ("assoc", wrap [ assoc_def ] "assoc 0 2 [mkpair 1 10, mkpair 2 20]");
    ("bst", wrap [ tinsert_def; tsum_def ] "tsum (tinsert 4 (tinsert 9 (tinsert 1 leaf)))");
    ( "mirror",
      wrap [ tinsert_def; mirror_def; tsum_def ] "tsum (mirror (tinsert 4 (tinsert 9 leaf)))"
    );
    ( "tmap",
      wrap [ tmap_def; tinsert_def; tsum_def ]
        "tsum (tmap (fun n -> n + 1) (tinsert 2 (tinsert 5 leaf)))" );
    ( "flatten",
      wrap [ append_def; flatten_def; tinsert_def ]
        "flatten (tinsert 3 (tinsert 1 (tinsert 2 leaf)))" );
  ]

let check_corpus cfg corpus =
  let passed = ref 0 and skipped = ref 0 in
  let rec go = function
    | [] -> Ok { checked = List.length corpus; passed = !passed; skipped = !skipped }
    | (name, src) :: rest -> (
        match check_src cfg src with
        | Pass ->
            incr passed;
            go rest
        | Skip _ ->
            incr skipped;
            go rest
        | Fail failure ->
            let shrunk, failure = shrink_failing cfg src failure in
            Error { name; original = src; shrunk; failure })
  in
  go corpus

let check_random cfg ~count =
  let rand = Random.State.make [| cfg.seed |] in
  let passed = ref 0 and skipped = ref 0 in
  let rec go i =
    if i >= count then Ok { checked = count; passed = !passed; skipped = !skipped }
    else
      let src = QCheck.Gen.generate1 ~rand Gen.gen_any_program in
      match check_src cfg src with
      | Pass ->
          incr passed;
          go (i + 1)
      | Skip _ ->
          incr skipped;
          go (i + 1)
      | Fail failure ->
          let shrunk, failure = shrink_failing cfg src failure in
          Error
            {
              name = Printf.sprintf "generated program %d (seed %d)" i cfg.seed;
              original = src;
              shrunk;
              failure;
            }
  in
  go 0
