examples/higher_order.ml: Escape Format Nml
