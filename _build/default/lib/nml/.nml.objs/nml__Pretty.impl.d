lib/nml/pretty.ml: Ast Format List Option
