(** The runtime's annotated intermediate representation.

    [Ir] is the surface AST plus the storage annotations that the paper's
    optimizations need (section 6, appendix A.3):

    - every [cons] site carries an {e allocation target} — the garbage
      collected heap, or an arena (a region modelling an activation
      record for stack allocation, or a block for block
      allocation/reclamation);
    - [Dcons] is the paper's destructive cons
      [DCONS a b c = {p := a; car.a := b; cdr.a := c; return p}], used by
      the in-place reuse transformation;
    - [WithArena (kind, id, e)] delimits an arena's lifetime: the arena is
      created, [e] is evaluated, and every cell allocated into the arena
      is freed wholesale — without any garbage collection work — before
      the value of [e] is returned.

    Unannotated programs convert with {!of_ast}, mapping every [cons] to
    a heap allocation. *)

type arena_kind =
  | Region  (** models allocation in an activation record (stack) *)
  | Block  (** models a contiguous block in a local heap *)

type alloc =
  | Heap
  | Arena of int  (** id of an enclosing [WithArena] *)
  | Pretenured
      (** heap allocation that the analysis proved escaping: under a
          generational heap the cell is tenured at birth, skipping the
          nursery; semantically identical to [Heap] everywhere else *)

type expr =
  | Const of Nml.Ast.const
  | Prim of Nml.Ast.prim  (** [Cons] here always means heap allocation *)
  | ConsAt of alloc  (** a [cons] with an explicit allocation target *)
  | NodeAt of alloc  (** a tree [node] with an explicit allocation target *)
  | Dcons  (** 3-argument destructive cons *)
  | Dnode  (** 4-argument destructive node: source cell, left, label, right *)
  | Var of string
  | App of expr * expr
  | Lam of string * expr
  | If of expr * expr * expr
  | Letrec of (string * expr) list * expr
  | WithArena of arena_kind * int * expr

val of_ast : Nml.Ast.expr -> expr
(** Plain conversion: every [cons] allocates from the heap. *)

val of_program : Nml.Surface.t -> expr

val map_conses : (int -> alloc) -> expr -> expr
(** Re-targets allocation sites: cons sites are numbered in evaluation
    (pre-)order by a left-to-right traversal, and the function decides
    each site's target.  [Dcons] and arena delimiters are preserved. *)

val count_sites : expr -> int
(** Number of cons sites ([Prim Cons] or [ConsAt]). *)

val pp : Format.formatter -> expr -> unit
(** Debug printing with annotations, e.g. [cons@r0], [dcons]. *)
