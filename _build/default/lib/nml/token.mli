(** Lexical tokens of the [nml] surface syntax. *)

type t =
  | INT of int
  | IDENT of string
  | TRUE
  | FALSE
  | NIL
  | IF
  | THEN
  | ELSE
  | LET
  | LETREC
  | IN
  | LAMBDA
  | FUN
  | AND  (** keyword [and] (boolean conjunction) *)
  | OR
  | NOT
  | DIV
  | MOD
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | EQ  (** [=] *)
  | NE  (** [<>] *)
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | ARROW  (** [->] *)
  | DOT
  | COMMA
  | SEMI
  | CONS_OP  (** [::] *)
  | EOF

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints the token as it appears in source (e.g. [CONS_OP] as ["::"]). *)

val to_string : t -> string

val keyword_of_string : string -> t option
(** Maps reserved words ([if], [letrec], [nil], ...) to their tokens. *)
