lib/nml/lexer.mli: Loc Token
