(** The analysis [Spec]: everything the generic fixpoint engine
    ({!Solver.Make}) needs to know about one abstract interpretation.

    The shape follows Goblint's [Analyses.Spec] — a swappable abstract
    domain plus transfer functions behind one solver — specialized to
    this compiler's demand-driven, instance-memoizing engine:

    - an {e abstract domain} over the monomorphized types
      ([bottom]/[top], [join]/[leq], probe-based [equal], [widen]);
    - {e per-solver state} ([create_state]/[with_state]): every solver
      owns a private state (memo tables, chain bound, read frames) so
      concurrently live solvers — including solvers in different
      domains — are shared-nothing;
    - {e dependency sources} (generation-stamped cells with recorded
      read frames), which is how the engine gets the instance-level
      dependency graph for free and invalidates selectively;
    - a {e transfer function} over the typed AST, evaluated under a
      context whose [global] hook resolves top-level definitions at
      ground instance types (the solver supplies it and memoizes per
      {e (definition, instance)} demand key).

    An implementation with no cross-evaluation application memo can
    leave [clear_memo] a no-op and report zero
    [memo_stats]/[invalidations]; {!Flow} provides the complete
    state/source/memo machinery for taint-flag domains. *)

module type S = sig
  val name : string
  (** Registry / cache-namespace identifier (e.g. ["escape"]). *)

  (** {2 Abstract domain} *)

  type value

  val bottom : Nml.Ty.t -> value
  (** Least element of the domain at a type. *)

  val top : d:int -> Nml.Ty.t -> value
  (** Greatest element at a type, bounded by the chain bound [d]. *)

  val join : value -> value -> value
  (** Least upper bound; keeps the left operand's type. *)

  val equal : d:int -> value -> value -> bool
  (** Convergence test (extensional / probe-based where needed). *)

  val leq : d:int -> value -> value -> bool
  (** Partial order consistent with [join] (used by law tests and
      clients; the engine itself decides convergence with [equal]). *)

  val widen : d:int -> Nml.Ty.t -> value -> value
  (** Safe over-approximation applied when iteration hits the cap.
      Must be an upper bound of its argument; the canonical
      implementation is [fun ~d ty _ -> top ~d ty]. *)

  (** {2 Per-solver state} *)

  type state

  val create_state : unit -> state
  val with_state : state -> (unit -> 'a) -> 'a

  val ensure_d : int -> unit
  (** Raise the current state's chain bound to at least the given
      value (monotone: growing [d] only refines comparisons). *)

  (** {2 Dependency sources and read frames} *)

  type source

  val new_source : unit -> source
  val source_id : source -> int

  val touch : source -> unit
  (** Advance the generation: dependents become stale. *)

  val note_read : source -> unit
  (** Record a read in the innermost open frame (no-op outside). *)

  val with_reads : (unit -> 'a) -> 'a * (source * int) list
  (** Run in a fresh isolated read frame; return the result and every
      (source, generation-at-read) pair noted during the run. *)

  (** {2 Application memo (optional)} *)

  val clear_memo : unit -> unit
  val memo_stats : unit -> int * int  (** (hits, misses) *)

  val invalidations : unit -> int

  (** {2 Transfer function} *)

  type ctx

  val make_ctx :
    d:(unit -> int) ->
    global:(string -> Nml.Ty.t -> value) ->
    max_iters:int ->
    ctx
  (** [d] reads the solver's current chain bound (it may grow as
      instances are demanded); [global] resolves a top-level definition
      at a ground instance type (the solver's demand hook). *)

  val transfer : ctx -> Nml.Tast.texpr -> value
  (** Abstract value of a closed typed expression (definition body)
      under the context. *)

  val iterations : ctx -> int
  val record_iteration : ctx -> unit
  val capped : ctx -> bool
  val set_capped : ctx -> unit

  (** {2 Demand keys} *)

  val demand_key : string -> Nml.Ty.t -> string
  (** Memo key for a (definition, ground instance) pair. *)
end
