module Ast = Nml.Ast

type arena_kind = Region | Block
type alloc = Heap | Arena of int | Pretenured

type expr =
  | Const of Ast.const
  | Prim of Ast.prim
  | ConsAt of alloc
  | NodeAt of alloc
  | Dcons
  | Dnode
  | Var of string
  | App of expr * expr
  | Lam of string * expr
  | If of expr * expr * expr
  | Letrec of (string * expr) list * expr
  | WithArena of arena_kind * int * expr

let rec of_ast (e : Ast.expr) =
  match e with
  | Ast.Const (_, c) -> Const c
  | Ast.Prim (_, p) -> Prim p
  | Ast.Var (_, x) -> Var x
  | Ast.App (_, f, a) -> App (of_ast f, of_ast a)
  | Ast.Lam (_, x, b) -> Lam (x, of_ast b)
  | Ast.If (_, c, t, f) -> If (of_ast c, of_ast t, of_ast f)
  | Ast.Letrec (_, bs, body) ->
      Letrec (List.map (fun (x, b) -> (x, of_ast b)) bs, of_ast body)

let of_program p = of_ast (Nml.Surface.to_expr p)

let map_conses f e =
  let n = ref 0 in
  let rec go e =
    match e with
    | Prim Ast.Cons | ConsAt _ ->
        let i = !n in
        incr n;
        ConsAt (f i)
    | Const _ | Prim _ | NodeAt _ | Dcons | Dnode | Var _ -> e
    | App (g, a) ->
        let g = go g in
        let a = go a in
        App (g, a)
    | Lam (x, b) -> Lam (x, go b)
    | If (c, t, fa) ->
        let c = go c in
        let t = go t in
        let fa = go fa in
        If (c, t, fa)
    | Letrec (bs, body) ->
        let bs = List.map (fun (x, b) -> (x, go b)) bs in
        Letrec (bs, go body)
    | WithArena (k, id, b) -> WithArena (k, id, go b)
  in
  go e

let count_sites e =
  let n = ref 0 in
  ignore
    (map_conses
       (fun _ ->
         incr n;
         Heap)
       e);
  !n

let pp_alloc ppf = function
  | Heap -> ()
  | Arena i -> Format.fprintf ppf "@@a%d" i
  | Pretenured -> Format.pp_print_string ppf "@@old"

let rec pp ppf = function
  | Const (Ast.Cint n) -> Format.pp_print_int ppf n
  | Const (Ast.Cbool b) -> Format.pp_print_bool ppf b
  | Const Ast.Cnil -> Format.pp_print_string ppf "nil"
  | Const Ast.Cleaf -> Format.pp_print_string ppf "leaf"
  | Prim p -> Format.pp_print_string ppf (Ast.prim_name p)
  | ConsAt a -> Format.fprintf ppf "cons%a" pp_alloc a
  | NodeAt a -> Format.fprintf ppf "node%a" pp_alloc a
  | Dcons -> Format.pp_print_string ppf "dcons"
  | Dnode -> Format.pp_print_string ppf "dnode"
  | Var x -> Format.pp_print_string ppf x
  | App (f, a) -> Format.fprintf ppf "@[<hov 2>(%a@ %a)@]" pp f pp a
  | Lam (x, b) -> Format.fprintf ppf "@[<hov 2>(fun %s ->@ %a)@]" x pp b
  | If (c, t, f) ->
      Format.fprintf ppf "@[<hv 0>(if %a@ then %a@ else %a)@]" pp c pp t pp f
  | Letrec (bs, body) ->
      let pp_b ppf (x, b) = Format.fprintf ppf "@[<hov 2>%s =@ %a@]" x pp b in
      Format.fprintf ppf "@[<v 0>(letrec@;<1 2>%a@ in %a)@]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp_b)
        bs pp body
  | WithArena (k, id, b) ->
      let kw = match k with Region -> "region" | Block -> "block" in
      Format.fprintf ppf "@[<hov 2>(%s a%d in@ %a)@]" kw id pp b
