(* The supervised worker pool: [jobs] OCaml domains pulling requests
   from the bounded queue, plus a supervisor thread that reaps crashed
   domains and respawns them with exponential backoff.

   A *crash* is any exception that escapes the handler — the handler
   protects ordinary toolchain failures itself, so what reaches the
   domain's top is either an injected fault ([Handler.Crash],
   [Out_of_memory]) or a genuine bug.  The supervisor answers the
   victim's client through [on_crash] (which also quarantines the
   offending input) and brings a replacement domain up; consecutive
   crashes of one slot double the respawn delay (5 ms, capped at
   500 ms), so a poisoned workload cannot turn the pool into a
   fork-bomb, while one successfully-served request resets the backoff.

   Result handoff is a one-shot slot per job: the connection thread
   polls it under its deadline; whoever loses the race (a worker
   finishing after the client timed out, or a client abandoning a
   result already posted) simply drops its side — a timed-out request
   returns a structured SRV004 response and the stale result is
   discarded, never delivered. *)

type resp = { body : string; is_error : bool }

type slot = {
  sm : Mutex.t;
  mutable cell : resp option;
  mutable abandoned : bool;
}

type job = {
  req : Protocol.request;
  key : string;  (* quarantine identity of the input *)
  deadline : float option;  (* absolute, [Unix.gettimeofday] basis *)
  cancelled : bool Atomic.t;  (* cooperative cancellation hint *)
  slot : slot;
}

let make_job ~req ~key ~deadline =
  {
    req;
    key;
    deadline;
    cancelled = Atomic.make false;
    slot = { sm = Mutex.create (); cell = None; abandoned = false };
  }

(* [true] if the response was accepted; [false] if the client already
   abandoned the job (the result is discarded). *)
let complete job resp =
  let s = job.slot in
  Mutex.lock s.sm;
  let accepted =
    if s.abandoned || s.cell <> None then false
    else begin
      s.cell <- Some resp;
      true
    end
  in
  Mutex.unlock s.sm;
  accepted

(* The client gave up (deadline); a late [complete] becomes a no-op. *)
let abandon job =
  let s = job.slot in
  Mutex.lock s.sm;
  s.abandoned <- true;
  Mutex.unlock s.sm;
  Atomic.set job.cancelled true

let peek job =
  let s = job.slot in
  Mutex.lock s.sm;
  let r = s.cell in
  Mutex.unlock s.sm;
  r

let expired ~now job =
  match job.deadline with None -> false | Some d -> now > d

(* ---- the pool ---------------------------------------------------------------- *)

type worker = {
  mutable domain : unit Domain.t option;
  current : job option Atomic.t;
  dead : exn option Atomic.t;
  finished : bool Atomic.t;
  healthy : bool Atomic.t;  (* served a job since the last respawn *)
  mutable failures : int;  (* supervisor-only: consecutive crashes *)
}

type t = {
  workers : worker array;
  queue : job Squeue.t;
  handler : job -> resp;
  on_crash : job option -> exn -> unit;
  draining : bool Atomic.t;
  respawns : int Atomic.t;
  discarded : int Atomic.t;
  mutable supervisor : Thread.t option;
}

let respawns t = Atomic.get t.respawns
let discarded t = Atomic.get t.discarded

let body t w () =
  let rec loop () =
    match Squeue.pop t.queue with
    | None -> ()
    | Some job ->
        Atomic.set w.current (Some job);
        let resp = t.handler job in
        if not (complete job resp) then Atomic.incr t.discarded;
        Atomic.set w.current None;
        Atomic.set w.healthy true;
        loop ()
  in
  (try loop () with e -> Atomic.set w.dead (Some e));
  Atomic.set w.finished true

let backoff failures = min 0.5 (0.005 *. (2. ** float_of_int (failures - 1)))

let reap t w =
  match Atomic.get w.dead with
  | None -> ()
  | Some e ->
      let job = Atomic.get w.current in
      Atomic.set w.current None;
      (match w.domain with
      | Some d -> ( try Domain.join d with _ -> ())
      | None -> ());
      w.domain <- None;
      t.on_crash job e;
      w.failures <- (if Atomic.exchange w.healthy false then 1 else w.failures + 1);
      Atomic.set w.dead None;
      Atomic.set w.finished false;
      Atomic.incr t.respawns;
      if Atomic.get t.draining then Atomic.set w.finished true
      else begin
        Thread.delay (backoff w.failures);
        w.domain <- Some (Domain.spawn (body t w))
      end

let supervise t () =
  while not (Atomic.get t.draining) do
    Thread.delay 0.01;
    Array.iter (reap t) t.workers
  done;
  (* one last sweep so a crash racing the drain still gets answered *)
  Array.iter (reap t) t.workers

let create ~jobs ~queue ~handler ~on_crash =
  let t =
    {
      workers =
        Array.init (max 1 jobs) (fun _ ->
            {
              domain = None;
              current = Atomic.make None;
              dead = Atomic.make None;
              finished = Atomic.make false;
              healthy = Atomic.make false;
              failures = 0;
            });
      queue;
      handler;
      on_crash;
      draining = Atomic.make false;
      respawns = Atomic.make 0;
      discarded = Atomic.make 0;
      supervisor = None;
    }
  in
  Array.iter (fun w -> w.domain <- Some (Domain.spawn (body t w))) t.workers;
  t.supervisor <- Some (Thread.create (supervise t) ());
  t

(* Close the queue, let workers finish what is in flight, join what
   finishes within [grace] seconds and abandon the rest (a domain stuck
   in a runaway analysis cannot be killed — the process exits around
   it).  Returns the number of abandoned workers. *)
let drain ?(grace = 10.) t =
  Squeue.close t.queue;
  let deadline = Unix.gettimeofday () +. grace in
  let all_finished () =
    Array.for_all
      (fun w -> Atomic.get w.finished || w.domain = None)
      t.workers
  in
  while (not (all_finished ())) && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  Atomic.set t.draining true;
  (match t.supervisor with Some th -> Thread.join th | None -> ());
  let stuck = ref 0 in
  Array.iter
    (fun w ->
      if Atomic.get w.finished then (
        match w.domain with
        | Some d ->
            (try Domain.join d with _ -> ());
            w.domain <- None
        | None -> ())
      else incr stuck)
    t.workers;
  !stuck
