lib/core/dvalue.ml: Besc Format Hashtbl List Nml
