lib/optimize/blockalloc.ml: Annotate List
