(** Length-prefixed framing: an ASCII decimal byte count, ['\n'], then
    exactly that many payload bytes.

    The length line keeps the stream self-synchronizing at frame
    granularity — an unparsable payload is still fully consumed, so one
    bad request doesn't poison the connection; only a corrupted length
    line or an over-limit declaration loses the boundary. *)

type error =
  | Closed  (** EOF at a frame boundary — the peer is done *)
  | Malformed of string
      (** unrecoverable framing damage (bad length line, EOF mid-frame);
          the reader must drop the connection *)
  | Oversized of int  (** declared length beyond [max_len] *)

val pp_error : Format.formatter -> error -> unit

val default_max : int
(** 4 MiB. *)

val read : ?max_len:int -> Unix.file_descr -> (string, error) result
(** Blocking; retries EINTR.  On [Oversized] the payload is {e not}
    consumed. *)

val encode : string -> string
(** [encode payload] is the wire form ["<len>\n<payload>"]. *)

val write : Unix.file_descr -> string -> bool
(** Writes one encoded frame; [false] if the peer is gone (EPIPE and
    friends) instead of raising. *)
