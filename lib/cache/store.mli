(** Sharded, best-effort on-disk JSON store for the summary cache.

    Entries live at [root/<k[0..1]>/<key>.json]; writes are staged in a
    temporary file and published with an atomic rename, serialized per
    key stripe across the domains of one process.  Reading anything that
    is missing, truncated or unparsable is a miss ([None]); writing never
    raises — a failed write just forfeits the entry. *)

type t

val create : string -> t
(** Wraps a cache root directory (created lazily on first save). *)

val root : t -> string

val load : t -> key:string -> Nml.Json.t option

val save : t -> key:string -> Nml.Json.t -> unit
