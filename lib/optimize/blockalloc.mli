(** Block allocation and wholesale reclamation (appendix A.3.3).

    In [PS (create_list i)] the list built by [create_list] cannot go in
    [PS]'s activation record — it exists before that record does.  The
    paper's answer is a {e local heap}: [create_list] allocates the spine
    in a block, and because the spine does not escape [PS], the whole
    block returns to the free list when [PS] finishes, with no traversal.

    The transformation finds calls [f ... (g args) ...] in the main
    expression where [g] is a definition and the local escape test proves
    the argument's top spine does not escape [f]; it then adds a
    specialized [g_blk] whose result-position conses allocate into a
    block, and wraps the call in [WithArena (Block, ...)]. *)

type annotation = {
  consumer : string;  (** [f], whose return frees the block *)
  producer : string;  (** [g], whose result spine fills the block *)
  specialized : string;  (** name of the block-allocating copy of [g] *)
  arena : int;
  loc : Nml.Loc.t;  (** surface position of the producer call argument *)
}

type report = { annotations : annotation list }

val annotate : Escape.Fixpoint.t -> Nml.Surface.t -> Runtime.Ir.expr * report
