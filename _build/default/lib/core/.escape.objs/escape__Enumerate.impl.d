lib/core/enumerate.ml: Besc Format Hashtbl List Map Nml Option Printf String
