(** The annotation verifier.

    [audit ~source ir] re-derives, by its own flow-insensitive traversal
    of the annotated IR, the proof obligation behind every storage
    annotation and reports each violated obligation as a
    {!Nml.Diagnostic.t}.  It deliberately shares {e no} traversal code
    with the optimizer's emitters ({!Optimize.Reuse},
    {!Optimize.Annotate}): where the optimizer decides what is sound to
    emit, the verifier independently checks what was emitted.

    Obligations, with their stable diagnostic codes:

    - [VET001] an allocation (direct, or reachable through a call) targets
      an arena that is not open at that point;
    - [VET002] an arena delimiter does not delimit a saturated call of a
      known definition;
    - [VET003] a region allocation sits at a spine level deeper than the
      escape analysis' bound for that argument (or at a position the
      verifier cannot relate to a spine level);
    - [VET004] a block arena's producer violates the whole-structure
      discipline (escaping result, allocation outside result position,
      producer not the head of the argument);
    - [VET005] an arena id is opened again while already open;
    - [VET010] a destructive site's source is not an unshadowed leading
      parameter (reported by {!Claims});
    - [VET011] a destructive site is not nil/leaf-guarded;
    - [VET012] a consumed parameter is destroyed under a lambda, or read
      after one of its cells is destroyed;
    - [VET013] the recycled cell leaks into the destructive site's own
      arguments;
    - [VET014] the consumed parameter may escape its definition
      (Theorem 2's escape side);
    - [VET015] a destructive call's consumed argument is not provably
      fresh and unshared (and is no suffix of a consumed parameter), or
      the destructive definition is partially applied / used as a value;
    - [VET016] an obligation could not be checked at all;
    - [VET017] a destructive primitive is unsaturated (reported by
      {!Claims});
    - [VET018] an advisory dead-spine heap hint
      ({!Runtime.Heap.hinted_dead_spine}) cannot be re-derived by the
      verifier's own spine-liveness fixpoint ({!Share}). *)

type summary = {
  audited : int;
      (** discharged obligations: reuse claims + arena claims +
          destructive call-site audits + hinted dead spines *)
  findings : int;
}

val audit :
  ?hints:(string * int list) list ->
  source:Nml.Surface.t ->
  Runtime.Ir.expr ->
  Nml.Diagnostic.t list * summary
(** [hints] are the advisory [(definition, 1-based parameter indices)]
    dead-spine pairs the driver would hand the heap
    ({!Runtime.Heap.config}); each is independently re-derived and
    violations are reported as [VET018].  The diagnostics come back
    deduplicated and sorted ({!Nml.Diagnostic.compare}). *)
