(** Fixpoint solver for a whole program's top-level [letrec] group.

    The meaning of a recursive definition in the escape domain is its
    least fixpoint (section 3.5).  Because the spine annotations inside a
    polymorphic definition depend on the monomorphic instance at which it
    is used, the solver memoizes abstract values per
    {e (definition, ground instance type)} pair, re-typing the definition
    at each demanded instance ({!Nml.Infer.instantiate_def}) — the lazy
    equivalent of whole-program monomorphization.

    Two engines solve the resulting equation system:

    {ul
    {- {!Worklist} (default): dependency-driven.  Every evaluation runs
       inside a read frame ({!Dvalue.with_reads}) that records which other
       entries it consulted, giving the instance-level dependency graph
       for free.  Fresh entries are solved by recursive descent
       (dependencies settle before their reader is evaluated, so a
       non-recursive definition is evaluated exactly once); the cyclic
       remainder is condensed into strongly connected components
       ({!Nml.Callgraph.Scc}) and settled bottom-up, re-evaluating only
       entries whose recorded dependencies actually changed.  Application
       memos survive across the whole solve: a value change bumps the
       entry's {!Dvalue.source} generation and only memos that read it
       are invalidated.}
    {- {!Round_robin}: the original solver, retained as a differential
       baseline.  Every pass drops the application memo wholesale and
       re-evaluates every demanded instance until a pass changes
       nothing.}}

    Both compute the same least fixpoint; convergence is decided by
    {!Probe.equal} in either case.  Iteration is capped ([max_iters],
    default 200 rounds); on a cap hit every cached value is widened to
    the top of its type — the safe direction (everything escapes) — and
    {!capped} reports it. *)

type engine = Framework.Solver.engine = Worklist | Round_robin

val engine_name : engine -> string
(** ["worklist"] / ["round-robin"]. *)

type t

val make : ?max_iters:int -> ?engine:engine -> Nml.Infer.program -> t
(** Builds a solver; nothing is computed until a value is demanded. *)

val of_source : ?max_iters:int -> ?engine:engine -> string -> t
(** Parse, infer and wrap a program given as source text. *)

val program : t -> Nml.Infer.program

val engine : t -> engine

val d : t -> int
(** Current chain bound: the largest spine count of any list type seen in
    the main expression or any demanded instance. *)

val value : t -> string -> Nml.Ty.t option -> Dvalue.t
(** [value t f (Some ty)] is the abstract value of definition [f] at the
    ground instance [ty]; [value t f None] uses the simplest monotyped
    instance.  Stabilizes the memo table before returning.
    @raise Invalid_argument for unknown definitions, {!Nml.Infer.Error}
    if [ty] is not an instance of [f]'s scheme. *)

val instance_ty : t -> string -> Nml.Ty.t
(** Ground type of the simplest instance of a definition. *)

val eval_expr : t -> Nml.Tast.texpr -> Dvalue.t
(** Abstract value of an arbitrary ground typed expression (local
    environment empty), resolving definition references through the
    solver. *)

val main_value : t -> Dvalue.t
(** Abstract value of the program's main expression. *)

val stabilize : t -> unit
(** Runs the selected engine until no entry's value changes. *)

val with_state : t -> (unit -> 'a) -> 'a
(** Runs a computation with this solver's private {!Dvalue.state}
    installed.  Every solver owns its own engine state (application memo,
    probe tables, chain bound), created at {!make}; the solver's own
    entry points install it automatically.  Use this wrapper for any
    {e direct} [Dvalue] operation on values obtained from the solver
    (probing, comparison, application), so the operation sees the chain
    bound and caches those values were built under — and so concurrent
    solvers in other domains stay isolated. *)

(** {2 Statistics (for the cost experiments)} *)

val iterations : t -> int
(** Total Kleene rounds, including nested [letrec]s. *)

val passes : t -> int
(** Worklist: outer passes (descent + SCC sweep); round-robin: chaotic
    iteration passes over the memo table. *)

val evaluations : t -> int
(** Top-level entry evaluations — the head-to-head cost metric between
    the engines (each evaluation runs the abstract semantics over one
    definition body). *)

val instances : t -> (string * Nml.Ty.t) list
(** Every (definition, instance) pair materialized so far. *)

val capped : t -> bool

type stats = Framework.Solver.stats = {
  stats_engine : engine;
  stats_passes : int;
  stats_iterations : int;
  stats_entries : int;
  stats_evaluations : int;
  stats_sccs : int;  (** components in the last condensation (worklist) *)
  stats_largest_scc : int;
  stats_cache_hits : int;  (** application-memo hits since [make] *)
  stats_cache_misses : int;
  stats_cache_invalidated : int;  (** memos discarded as stale since [make] *)
  stats_dbound : int;
  stats_capped : bool;
}

val stats : t -> stats
(** Snapshot of the solver counters.  The cache numbers come from the
    solver's private {!Dvalue.state}, so they count exactly this solver's
    work no matter how many solvers are alive. *)

val pp_stats : Format.formatter -> stats -> unit
