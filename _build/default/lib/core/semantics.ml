module Ty = Nml.Ty
module Tast = Nml.Tast
module Ast = Nml.Ast
module Env = Map.Make (String)

type ctx = {
  d : unit -> int;
  global : string -> Nml.Ty.t -> Dvalue.t;
  max_iters : int;
  mutable iters : int;
  mutable capped : bool;
  mutable fv_cache : (Tast.texpr * string list) list;
      (** free variables per lambda node (physical identity): a lambda is
          abstractly evaluated once per application of its enclosing
          function, so recomputing its free variables dominates *)
}

let arrow_parts ty =
  match Ty.repr ty with
  | Ty.Arrow (a, b) -> (a, b)
  | _ -> invalid_arg "Semantics: primitive occurrence with non-arrow type"

let const_value ~ty (c : Ast.const) =
  match c with
  | Ast.Cint _ | Ast.Cbool _ -> Dvalue.base ~ty Besc.zero
  | Ast.Cnil | Ast.Cleaf -> Dvalue.bottom ty

let prim_value ~ty (p : Ast.prim) =
  let t1, rest = arrow_parts ty in
  match p with
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Eq | Ast.Ne | Ast.Lt
  | Ast.Le | Ast.Gt | Ast.Ge | Ast.And | Ast.Or ->
      (* ⟨<0,0>, λx.⟨x₁, λy.⟨<0,0>, err⟩⟩⟩ *)
      let _t2, tr = arrow_parts rest in
      Dvalue.v ~ty ~esc:Besc.zero ~app:(fun x ->
          Dvalue.v ~ty:rest ~esc:(Dvalue.total_esc x) ~app:(fun _y ->
              Dvalue.base ~ty:tr Besc.zero))
  | Ast.Not ->
      Dvalue.v ~ty ~esc:Besc.zero ~app:(fun _x -> Dvalue.base ~ty:rest Besc.zero)
  | Ast.Null ->
      (* ⟨<0,0>, λx.⟨<0,0>, err⟩⟩ *)
      Dvalue.v ~ty ~esc:Besc.zero ~app:(fun _x -> Dvalue.base ~ty:rest Besc.zero)
  | Ast.Cons ->
      (* ⟨<0,0>, λx.⟨x₁, λy. x ⊔ y⟩⟩ *)
      let _t2, tr = arrow_parts rest in
      Dvalue.v ~ty ~esc:Besc.zero ~app:(fun x ->
          Dvalue.v ~ty:rest ~esc:(Dvalue.total_esc x) ~app:(fun y ->
              Dvalue.with_ty tr (Dvalue.join x y)))
  | Ast.Car ->
      (* car^s = ⟨<0,0>, λx. sub^s(x)⟩ with s the spine count of the
         argument list type *)
      let s = Ty.spines t1 in
      Dvalue.v ~ty ~esc:Besc.zero ~app:(fun x ->
          Dvalue.with_ty rest (Dvalue.with_esc (Besc.sub ~s x.Dvalue.esc) x))
  | Ast.Cdr ->
      (* D_e^{t list} = D_e^t: the tail may contain exactly as many spines
         as the list itself, so cdr is the identity *)
      Dvalue.v ~ty ~esc:Besc.zero ~app:(fun x -> Dvalue.with_ty rest x)
  | Ast.Pair ->
      (* components are tracked separately: D_e^{t1 * t2} = D_e^t1 x D_e^t2 *)
      let _t2, tr = arrow_parts rest in
      Dvalue.v ~ty ~esc:Besc.zero ~app:(fun x ->
          Dvalue.v ~ty:rest ~esc:(Dvalue.total_esc x) ~app:(fun y ->
              Dvalue.pair ~ty:tr ~esc:Besc.zero (x, y)))
  | Ast.Fst ->
      Dvalue.v ~ty ~esc:Besc.zero ~app:(fun p -> Dvalue.with_ty rest (Dvalue.fst_of p))
  | Ast.Snd ->
      Dvalue.v ~ty ~esc:Besc.zero ~app:(fun p -> Dvalue.with_ty rest (Dvalue.snd_of p))
  | Ast.Node ->
      (* node cells form the tree's spine-like level: like cons, the
         result joins everything (children, label, the cell itself) *)
      let t2, rest2 = arrow_parts rest in
      ignore t2;
      let _t3, tr = arrow_parts rest2 in
      Dvalue.v ~ty ~esc:Besc.zero ~app:(fun l ->
          Dvalue.v ~ty:rest ~esc:(Dvalue.total_esc l) ~app:(fun x ->
              Dvalue.v ~ty:rest2
                ~esc:(Besc.join (Dvalue.total_esc l) (Dvalue.total_esc x))
                ~app:(fun r -> Dvalue.with_ty tr (Dvalue.join (Dvalue.join l x) r))))
  | Ast.Isleaf ->
      Dvalue.v ~ty ~esc:Besc.zero ~app:(fun _x -> Dvalue.base ~ty:rest Besc.zero)
  | Ast.Label ->
      (* label^s strips the tree level, exactly as car^s does a spine *)
      let s = Ty.spines t1 in
      Dvalue.v ~ty ~esc:Besc.zero ~app:(fun x ->
          Dvalue.with_ty rest (Dvalue.with_esc (Besc.sub ~s x.Dvalue.esc) x))
  | Ast.Left | Ast.Right ->
      (* a subtree may contain exactly as much as the tree: identity,
         like cdr *)
      Dvalue.v ~ty ~esc:Besc.zero ~app:(fun x -> Dvalue.with_ty rest x)

let rec eval ctx env (e : Tast.texpr) : Dvalue.t =
  match e.Tast.desc with
  | Tast.Const c -> const_value ~ty:e.Tast.ty c
  | Tast.Prim p -> prim_value ~ty:e.Tast.ty p
  | Tast.Var x -> (
      match Env.find_opt x env with
      | Some v -> v
      | None -> ctx.global x e.Tast.ty)
  | Tast.App (f, a) ->
      let vf = eval ctx env f in
      let va = eval ctx env a in
      Dvalue.apply vf va
  | Tast.Lam (x, body) ->
      (* V = <0,0> ⊔ ⨆ { esc of z | z free in the lambda } (section 3.4);
         globals contribute <0,0>. *)
      let fvs =
        match List.assq_opt e ctx.fv_cache with
        | Some fvs -> fvs
        | None ->
            let fvs = Tast.free_vars e in
            ctx.fv_cache <- (e, fvs) :: ctx.fv_cache;
            fvs
      in
      let esc =
        List.fold_left
          (fun acc z ->
            match Env.find_opt z env with
            | Some v -> Besc.join acc (Dvalue.total_esc v)
            | None -> acc)
          Besc.zero fvs
      in
      Dvalue.v ~ty:e.Tast.ty ~esc ~app:(fun y -> eval ctx (Env.add x y env) body)
  | Tast.If (_c, t, f) ->
      (* both branches may be taken at compile time *)
      Dvalue.join (eval ctx env t) (eval ctx env f)
  | Tast.Letrec (bs, body) ->
      let env' = solve_group ctx env bs in
      eval ctx env' body

(* Kleene iteration for a (nested) letrec group, Jacobi style: every
   right-hand side of round k+1 is evaluated under the round-k values. *)
and solve_group ctx env bs =
  let current =
    ref (List.map (fun (x, rhs) -> (x, Dvalue.bottom rhs.Tast.ty)) bs)
  in
  let build vals = List.fold_left (fun env (x, v) -> Env.add x v env) env vals in
  let rec iterate n =
    if n >= ctx.max_iters then (
      ctx.capped <- true;
      current := List.map (fun (x, rhs) -> (x, Dvalue.top ~d:(ctx.d ()) rhs.Tast.ty)) bs)
    else begin
      ctx.iters <- ctx.iters + 1;
      let envk = build !current in
      let next = List.map (fun (x, rhs) -> (x, eval ctx envk rhs)) bs in
      let d = ctx.d () in
      let converged =
        List.for_all2
          (fun (_, v_old) (_, v_new) -> Probe.equal ~d v_old v_new)
          !current next
      in
      current := next;
      if not converged then iterate (n + 1)
    end
  in
  iterate 0;
  build !current
