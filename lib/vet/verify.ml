module A = Nml.Ast
module Ir = Runtime.Ir
module D = Nml.Diagnostic
module An = Escape.Analysis
module Fix = Escape.Fixpoint
module IS = Set.Make (Int)

type summary = { audited : int; findings : int }

let split = function Ir.Letrec (ds, m) -> (ds, m) | e -> ([], e)

(* ---- occurrence paths ------------------------------------------------------

   The same projection-path discipline as the paper's linearity argument:
   an occurrence's path is the chain of projections immediately wrapping
   it, innermost first; a destroyed cdr/left/right-suffix conflicts with
   any later occurrence whose path is prefix-related to it.

   Occurrences come in two kinds.  A [`Struct] occurrence reads the
   whole structure reachable from its path; a [`Cell] occurrence — the
   source of a destructive site — reads exactly one cell.  Destroying
   the suffix at path [pi] leaves every cell {e above} [pi] intact, so a
   later [`Cell] read at [sigma] only conflicts when [sigma] lies inside
   the destroyed suffix ([is_prefix pi sigma]); this is what licenses
   the paper's [REV']: [rev' (cdr l)] destroys [l]'s suffix while the
   following [DCONS l ...] recycles only [l]'s own cell. *)

let occs_of watched e =
  let out = ref [] in
  let rec go watched ctx e =
    if watched = [] then ()
    else
      match e with
      | Ir.Var v -> if List.mem v watched then out := (v, ctx, `Struct) :: !out
      | Ir.App (Ir.App (Ir.App (Ir.Dcons, src), h), t) ->
          cell watched ctx src;
          go watched [] h;
          go watched [] t
      | Ir.App (Ir.App (Ir.App (Ir.App (Ir.Dnode, src), l), x), r) ->
          cell watched ctx src;
          go watched [] l;
          go watched [] x;
          go watched [] r
      | Ir.App (Ir.Prim ((A.Car | A.Cdr | A.Label | A.Left | A.Right) as p), e')
        ->
          go watched (p :: ctx) e'
      | Ir.App (f, a) ->
          go watched [] f;
          go watched [] a
      | Ir.Lam (x, b) -> go (List.filter (fun w -> w <> x) watched) [] b
      | Ir.If (c, t, f) ->
          go watched [] c;
          go watched [] t;
          go watched [] f
      | Ir.Letrec (bs, b) ->
          let watched =
            List.filter (fun w -> not (List.mem_assoc w bs)) watched
          in
          List.iter (fun (_, r) -> go watched [] r) bs;
          go watched [] b
      | Ir.WithArena (_, _, b) -> go watched ctx b
      | Ir.Const _ | Ir.Prim _ | Ir.ConsAt _ | Ir.NodeAt _ | Ir.Dcons | Ir.Dnode
        ->
          ()
  and cell watched ctx e =
    match e with
    | Ir.Var v -> if List.mem v watched then out := (v, ctx, `Cell) :: !out
    | Ir.App (Ir.Prim ((A.Car | A.Cdr | A.Label | A.Left | A.Right) as p), e')
      ->
        cell watched (p :: ctx) e'
    | e -> go watched [] e
  in
  go watched [] e;
  !out

let rec is_prefix p q =
  match (p, q) with
  | [], _ -> true
  | _, [] -> false
  | a :: p', b :: q' -> a = b && is_prefix p' q'

let overlap p q = is_prefix p q || is_prefix q p

let pairwise_disjoint paths =
  let rec check = function
    | [] -> true
    | p :: rest -> List.for_all (fun q -> not (overlap p q)) rest && check rest
  in
  check paths

let rec suffix_of p e =
  match e with
  | Ir.Var v when String.equal v p -> Some []
  | Ir.App (Ir.Prim ((A.Cdr | A.Left | A.Right) as s), e') ->
      Option.map (fun path -> path @ [ s ]) (suffix_of p e')
  | _ -> None

(* ---- free and under-lambda occurrences ------------------------------------- *)

let rec occurs_free p e =
  match e with
  | Ir.Var x -> String.equal x p
  | Ir.Lam (x, b) -> x <> p && occurs_free p b
  | Ir.App (f, a) -> occurs_free p f || occurs_free p a
  | Ir.If (c, t, f) -> occurs_free p c || occurs_free p t || occurs_free p f
  | Ir.Letrec (bs, b) ->
      if List.exists (fun (x, _) -> String.equal x p) bs then false
      else List.exists (fun (_, r) -> occurs_free p r) bs || occurs_free p b
  | Ir.WithArena (_, _, b) -> occurs_free p b
  | _ -> false

(* the let sugar [App (Lam (x, b), rhs)] is not a real lambda *)
let rec under_lambda p e =
  match e with
  | Ir.App (Ir.Lam (x, b), a) ->
      (x <> p && under_lambda p b) || under_lambda p a
  | Ir.Lam (x, b) -> x <> p && occurs_free p b
  | Ir.App (f, a) -> under_lambda p f || under_lambda p a
  | Ir.If (c, t, f) -> under_lambda p c || under_lambda p t || under_lambda p f
  | Ir.Letrec (bs, b) ->
      if List.exists (fun (x, _) -> String.equal x p) bs then false
      else List.exists (fun (_, r) -> under_lambda p r) bs || under_lambda p b
  | Ir.WithArena (_, _, b) -> under_lambda p b
  | _ -> false

(* ---- arena needs -----------------------------------------------------------

   [needs g] is the set of arena ids that must be open around any call of
   [g]: ids targeted by allocation sites in [g]'s body that no local
   delimiter covers, plus — transitively — the undischarged needs of the
   definitions [g] references. *)

let compute_needs def_names ir_defs =
  let info =
    List.map
      (fun (name, rhs) ->
        let own = ref IS.empty and refs = ref [] in
        let rec go bound opened e =
          match e with
          | Ir.ConsAt (Ir.Arena i) | Ir.NodeAt (Ir.Arena i) ->
              if not (IS.mem i opened) then own := IS.add i !own
          | Ir.Var x ->
              if (not (List.mem x bound)) && List.mem x def_names then
                refs := (x, opened) :: !refs
          | Ir.App (f, a) ->
              go bound opened f;
              go bound opened a
          | Ir.Lam (x, b) -> go (x :: bound) opened b
          | Ir.If (c, t, f) ->
              go bound opened c;
              go bound opened t;
              go bound opened f
          | Ir.Letrec (bs, b) ->
              let bound = List.map fst bs @ bound in
              List.iter (fun (_, r) -> go bound opened r) bs;
              go bound opened b
          | Ir.WithArena (_, i, b) -> go bound (IS.add i opened) b
          | Ir.Const _ | Ir.Prim _ | Ir.ConsAt _ | Ir.NodeAt _ | Ir.Dcons
          | Ir.Dnode ->
              ()
        in
        go [] IS.empty rhs;
        (name, !own, !refs))
      ir_defs
  in
  let needs = Hashtbl.create 16 in
  List.iter (fun (n, own, _) -> Hashtbl.replace needs n own) info;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (n, own, refs) ->
        let cur = Hashtbl.find needs n in
        let nxt =
          List.fold_left
            (fun acc (g, opened) ->
              match Hashtbl.find_opt needs g with
              | Some ng -> IS.union acc (IS.diff ng opened)
              | None -> acc)
            own refs
        in
        if not (IS.equal cur nxt) then begin
          Hashtbl.replace needs n nxt;
          changed := true
        end)
      info
  done;
  needs

(* ---- source locations (presentation only) ---------------------------------- *)

let orig_of instances n =
  match List.find_opt (fun (_, spec, _) -> String.equal spec n) instances with
  | Some (orig, _, _) -> orig
  | None -> n

let find_def_rhs (source : Nml.Surface.t) orig =
  List.assoc_opt orig source.Nml.Surface.defs

let param_binder_loc (source : Nml.Surface.t) orig i =
  match find_def_rhs source orig with
  | None -> A.loc source.Nml.Surface.main
  | Some rhs ->
      let rec walk j = function
        | A.Lam (l, _, b) -> if j = i then l else walk (j + 1) b
        | e -> A.loc e
      in
      walk 1 rhs

let rec find_call f e =
  match e with
  | A.App _ ->
      let rec head = function A.App (_, g, _) -> head g | h -> h in
      let rec parts = function A.App (_, g, a) -> a :: parts g | _ -> [] in
      (match head e with
      | A.Var (_, g) when String.equal g f -> Some (A.loc e)
      | _ -> List.find_map (find_call f) (List.rev (parts e)))
  | A.Lam (_, _, b) -> find_call f b
  | A.If (_, c, t, e') -> List.find_map (find_call f) [ c; t; e' ]
  | A.Letrec (_, bs, b) -> List.find_map (find_call f) (List.map snd bs @ [ b ])
  | _ -> None

(* ---- the verifier ---------------------------------------------------------- *)

type ctx = {
  t : Fix.t;
  share : Share.t;
  mono_names : string list;
  ir_defs : (string * Ir.expr) list;
  def_names : string list;
  destructive : (string * Claims.reuse_claim list) list;
  needs : (string, IS.t) Hashtbl.t;
  add : D.t -> unit;
  calls : int ref;
  loc_of_def : string -> Nml.Loc.t;
  claim_loc : Claims.reuse_claim -> Nml.Loc.t;
  call_loc : owner:string option -> string -> Nml.Loc.t;
}

type frame = {
  owner : string option;
  claimed : Claims.reuse_claim list;
  bound : string list;  (** every local binder, leading parameters included *)
  shadow : string list;  (** binders introduced after the leading parameters *)
  env : (string * int) list;  (** freshness of let-bound variables *)
  cells : string list;  (** parameters known non-nil (else of [null p]) *)
  nodes : string list;  (** parameters known non-leaf (else of [isleaf p]) *)
  under : bool;  (** inside a real lambda *)
  opened : IS.t;  (** arena ids open here *)
}

let frame_name fr =
  match fr.owner with Some n -> n | None -> "the main expression"

let watched fr =
  List.filter_map
    (fun (c : Claims.reuse_claim) ->
      if List.mem c.param fr.shadow then None else Some c.param)
    fr.claimed

let occs fr e = occs_of (watched fr) e

let bind fr x =
  {
    fr with
    bound = x :: fr.bound;
    shadow = x :: fr.shadow;
    env = List.remove_assoc x fr.env;
    cells = List.filter (fun q -> q <> x) fr.cells;
    nodes = List.filter (fun q -> q <> x) fr.nodes;
  }

let claimed_param fr p =
  List.exists (fun (c : Claims.reuse_claim) -> String.equal c.param p) fr.claimed
  && not (List.mem p fr.shadow)

(* condition of an [If]: refine the guard sets for the two branches *)
let guards fr c =
  match c with
  | Ir.App (Ir.Prim A.Null, Ir.Var p) when claimed_param fr p ->
      ( { fr with cells = List.filter (fun q -> q <> p) fr.cells },
        { fr with cells = p :: fr.cells } )
  | Ir.App (Ir.Prim A.Isleaf, Ir.Var p) when claimed_param fr p ->
      ( { fr with nodes = List.filter (fun q -> q <> p) fr.nodes },
        { fr with nodes = p :: fr.nodes } )
  | _ -> (fr, fr)

let fresh_of ctx fr e =
  Fresh.depth ~share:ctx.share ctx.t ~defs:ctx.mono_names fr.env e

(* a reference to a definition whose body allocates into arenas that are
   not open here (checked at the main level only: inside a definition the
   undischarged needs are part of that definition's own needs) *)
let ref_check ctx fr x =
  if fr.owner = None && not (List.mem x fr.bound) then
    match Hashtbl.find_opt ctx.needs x with
    | Some need when not (IS.subset need fr.opened) ->
        let missing = IS.min_elt (IS.diff need fr.opened) in
        ctx.add
          (D.errorf ~code:"VET001"
             (ctx.call_loc ~owner:fr.owner x)
             "the call of %s allocates into arena %d, which is not open here" x
             missing)
    | _ -> ()

(* the destroy events of a call of a destructive definition *)
let destructive_call ctx fr g args ~after =
  match List.assoc_opt g ctx.destructive with
  | _ when List.mem g fr.bound -> ()
  | None -> ()
  | Some cls ->
      List.iter
        (fun (c : Claims.reuse_claim) ->
          incr ctx.calls;
          let loc = ctx.call_loc ~owner:fr.owner g in
          if List.length args < c.arg then
            ctx.add
              (D.errorf ~code:"VET015" loc
                 "partial application of destructive %s in %s hides its \
                  consumed argument %d"
                 g (frame_name fr) c.arg)
          else
            let a = List.nth args (c.arg - 1) in
            let own_suffix =
              List.find_map
                (fun (oc : Claims.reuse_claim) ->
                  if List.mem oc.param fr.shadow then None
                  else
                    Option.map
                      (fun pi -> (oc.param, pi))
                      (suffix_of oc.param a))
                fr.claimed
            in
            match own_suffix with
            | Some (p, pi) ->
                if
                  List.exists
                    (fun (v, path, kind) ->
                      String.equal v p
                      &&
                      match kind with
                      | `Struct -> overlap pi path
                      | `Cell -> is_prefix pi path)
                    after
                then
                  ctx.add
                    (D.errorf ~code:"VET012" loc
                       "the suffix of %s consumed by %s is read again later \
                        in %s"
                       p g (frame_name fr))
            | None ->
                if fresh_of ctx fr a < 1 then
                  ctx.add
                    (D.errorf ~code:"VET015" loc
                       "argument %d of destructive %s in %s is not provably \
                        fresh and unshared"
                       c.arg g (frame_name fr)))
        cls

(* a saturated destructive site recycling a claimed parameter *)
let destructive_site ctx fr ~tree ~src ~args ~after =
  match src with
  | Ir.Var p when claimed_param fr p ->
      let c =
        List.find
          (fun (c : Claims.reuse_claim) -> String.equal c.param p)
          fr.claimed
      in
      let loc = ctx.claim_loc c in
      let prim = if tree then "dnode" else "dcons" in
      if fr.under then
        ctx.add
          (D.errorf ~code:"VET012" loc
             "the %s site recycling %s in %s is under a lambda" prim p
             (frame_name fr));
      let guarded = if tree then List.mem p fr.nodes else List.mem p fr.cells in
      if not guarded then
        ctx.add
          (D.errorf ~code:"VET011" loc
             "the %s site recycling %s in %s is not %s-guarded" prim p
             (frame_name fr)
             (if tree then "leaf" else "nil"));
      if
        List.exists
          (fun (v, path, _) -> String.equal v p && path = [])
          (List.concat_map (occs fr) args)
      then
        ctx.add
          (D.errorf ~code:"VET013" loc
             "the recycled cell of %s leaks into the arguments of its own %s \
              in %s"
             p prim (frame_name fr));
      if List.exists (fun (v, _, _) -> String.equal v p) after then
        ctx.add
          (D.errorf ~code:"VET012" loc
             "%s is read after its cell is recycled in %s" p (frame_name fr))
  | _ -> () (* VET010, reported at extraction *)

let rec walk ctx fr e ~after =
  match e with
  | Ir.Const _ | Ir.Prim _ | Ir.Dcons | Ir.Dnode -> ()
  | Ir.ConsAt a | Ir.NodeAt a -> site_check ctx fr a
  | Ir.Var x -> (
      ref_check ctx fr x;
      match List.assoc_opt x ctx.destructive with
      | Some _ when not (List.mem x fr.bound) ->
          ctx.add
            (D.errorf ~code:"VET015"
               (ctx.call_loc ~owner:fr.owner x)
               "destructive %s is used as a value in %s (its call sites \
                cannot be audited)"
               x (frame_name fr))
      | _ -> ())
  | Ir.Lam (x, b) -> walk ctx { (bind fr x) with under = true } b ~after
  | Ir.If (c, t, f) ->
      walk ctx fr c ~after:(occs fr t @ occs fr f @ after);
      let ft, ff = guards fr c in
      walk ctx ft t ~after;
      walk ctx ff f ~after
  | Ir.Letrec (bs, body) ->
      let fr = List.fold_left bind fr (List.map fst bs) in
      let rec rhss = function
        | [] -> ()
        | (_, r) :: rest ->
            walk ctx fr r
              ~after:
                (List.concat_map (fun (_, r') -> occs fr r') rest
                @ occs fr body @ after);
            rhss rest
      in
      rhss bs;
      walk ctx fr body ~after
  | Ir.WithArena (_, id, b) ->
      if IS.mem id fr.opened then
        ctx.add
          (D.errorf ~code:"VET005" (ctx.loc_of_def (frame_name fr))
             "arena %d is opened again in %s while already open" id
             (frame_name fr));
      walk ctx { fr with opened = IS.add id fr.opened } b ~after
  | Ir.App (Ir.Lam (x, b), rhs) ->
      (* let sugar: rhs first, then the body with x bound *)
      walk ctx fr rhs ~after:(occs fr (Ir.Lam (x, b)) @ after);
      let d =
        if
          pairwise_disjoint
            (List.map (fun (_, path, _) -> path) (occs_of [ x ] b))
        then fresh_of ctx fr rhs
        else 0
      in
      let frb = bind fr x in
      walk ctx { frb with env = (x, d) :: frb.env } b ~after
  | Ir.App _ -> (
      let head, args = Claims.head_and_args e in
      let rec seq = function
        | [] -> ()
        | a :: rest ->
            walk ctx fr a ~after:(List.concat_map (occs fr) rest @ after);
            rhs_tail rest
      and rhs_tail rest = seq rest in
      match (head, args) with
      | Ir.Dcons, [ src; h; t ] ->
          seq [ src; h; t ];
          destructive_site ctx fr ~tree:false ~src ~args:[ h; t ] ~after
      | Ir.Dnode, [ src; l; x; r ] ->
          seq [ src; l; x; r ];
          destructive_site ctx fr ~tree:true ~src ~args:[ l; x; r ] ~after
      | (Ir.Dcons | Ir.Dnode), _ -> seq args (* VET017 at extraction *)
      | (Ir.ConsAt a | Ir.NodeAt a), _ ->
          site_check ctx fr a;
          seq args
      | Ir.Var g, _ when not (List.mem g fr.bound) ->
          ref_check ctx fr g;
          seq args;
          destructive_call ctx fr g args ~after
      | _ ->
          walk ctx fr head ~after:(List.concat_map (occs fr) args @ after);
          seq args)

(* a direct allocation site: inside a definition an uncovered site only
   contributes to the definition's needs; at the main level it must be
   covered lexically *)
and site_check ctx fr a =
  match a with
  | Ir.Arena i when fr.owner = None && not (IS.mem i fr.opened) ->
      ctx.add
        (D.errorf ~code:"VET001" (ctx.loc_of_def (frame_name fr))
           "an allocation in %s targets arena %d, which is not open here"
           (frame_name fr) i)
  | _ -> ()

(* ---- arena obligations ------------------------------------------------------ *)

(* spine levels (1 = top) at which [arg] allocates into arena [id];
   [opaque] when a site sits somewhere the level cannot be derived *)
let site_levels id arg =
  let levels = ref [] and opaque = ref false in
  let rec contains e =
    match e with
    | Ir.ConsAt (Ir.Arena i) | Ir.NodeAt (Ir.Arena i) -> i = id
    | Ir.App (f, a) -> contains f || contains a
    | Ir.Lam (_, b) | Ir.WithArena (_, _, b) -> contains b
    | Ir.If (c, t, f) -> contains c || contains t || contains f
    | Ir.Letrec (bs, b) -> List.exists (fun (_, r) -> contains r) bs || contains b
    | _ -> false
  in
  let rec go lvl e =
    match e with
    | Ir.App (Ir.App (Ir.ConsAt a, h), t) ->
        if a = Ir.Arena id then levels := lvl :: !levels;
        go (lvl + 1) h;
        go lvl t
    | Ir.App (Ir.App (Ir.App (Ir.NodeAt a, l), x), r) ->
        if a = Ir.Arena id then levels := lvl :: !levels;
        go lvl l;
        go (lvl + 1) x;
        go lvl r
    | Ir.App (Ir.App (Ir.Prim A.Cons, h), t) ->
        go (lvl + 1) h;
        go lvl t
    | Ir.App (Ir.App (Ir.App (Ir.Prim A.Node, l), x), r) ->
        go lvl l;
        go (lvl + 1) x;
        go lvl r
    | Ir.If (c, t, f) ->
        if contains c then opaque := true;
        go lvl t;
        go lvl f
    | Ir.App (Ir.Lam (_, b), rhs) ->
        if contains rhs then opaque := true;
        go lvl b
    | Ir.WithArena (_, _, b) -> go lvl b
    | Ir.ConsAt a | Ir.NodeAt a ->
        if a = Ir.Arena id then opaque := true (* unsaturated site *)
    | Ir.Const _ | Ir.Prim _ | Ir.Var _ | Ir.Dcons | Ir.Dnode -> ()
    | e -> if contains e then opaque := true
  in
  go 1 arg;
  (List.sort_uniq compare !levels, !opaque)

(* free references in [arg] to definitions that allocate into [id] *)
let producer_refs ctx id arg =
  let out = ref [] in
  let rec go bound e =
    match e with
    | Ir.Var g ->
        if
          (not (List.mem g bound))
          && List.mem g ctx.def_names
          &&
          match Hashtbl.find_opt ctx.needs g with
          | Some n -> IS.mem id n
          | None -> false
        then out := g :: !out
    | Ir.App (f, a) ->
        go bound f;
        go bound a
    | Ir.Lam (x, b) -> go (x :: bound) b
    | Ir.If (c, t, f) ->
        go bound c;
        go bound t;
        go bound f
    | Ir.Letrec (bs, b) ->
        let bound = List.map fst bs @ bound in
        List.iter (fun (_, r) -> go bound r) bs;
        go bound b
    | Ir.WithArena (_, _, b) -> go bound b
    | _ -> ()
  in
  go [] arg;
  List.sort_uniq compare !out

(* every allocation of a block producer must build the producer's result:
   cells die exactly when the consumer's delimiter is left *)
let check_producer ctx id g =
  match List.assoc_opt g ctx.ir_defs with
  | None -> ()
  | Some rhs ->
      let _, body = Claims.leading_params rhs in
      let flag () =
        ctx.add
          (D.errorf ~code:"VET004" (ctx.loc_of_def g)
             "%s allocates into block %d outside its result position" g id)
      in
      let rec contains e =
        match e with
        | Ir.ConsAt (Ir.Arena i) | Ir.NodeAt (Ir.Arena i) -> i = id
        | Ir.App (f, a) -> contains f || contains a
        | Ir.Lam (_, b) | Ir.WithArena (_, _, b) -> contains b
        | Ir.If (c, t, f) -> contains c || contains t || contains f
        | Ir.Letrec (bs, b) ->
            List.exists (fun (_, r) -> contains r) bs || contains b
        | _ -> false
      in
      let nonres e = if contains e then flag () in
      let rec result e =
        match e with
        | Ir.If (c, t, f) ->
            nonres c;
            result t;
            result f
        | Ir.Letrec (bs, b) ->
            List.iter (fun (_, r) -> nonres r) bs;
            result b
        | Ir.App (Ir.Lam (_, b), rhs) ->
            nonres rhs;
            result b
        | Ir.App (Ir.App (Ir.ConsAt (Ir.Arena i), h), t) when i = id ->
            nonres h;
            result t
        | Ir.App (Ir.App (Ir.App (Ir.NodeAt (Ir.Arena i), l), x), r)
          when i = id ->
            result l;
            nonres x;
            result r
        | Ir.WithArena (_, _, b) -> result b
        | e -> nonres e
      in
      result body

let keep_of ctx f eargs n j =
  match An.local ctx.t f eargs ~arg:(j + 1) with
  | v -> Some (An.non_escaping_top_spines v)
  | exception (Nml.Infer.Error _ | Invalid_argument _ | Not_found | Failure _)
    -> (
      match An.global ~arity:n ctx.t f ~arg:(j + 1) with
      | v -> Some (An.non_escaping_top_spines v)
      | exception
          (Nml.Infer.Error _ | Invalid_argument _ | Not_found | Failure _) ->
          None)

let check_arena ctx (ac : Claims.arena_claim) =
  let rec peel = function Ir.WithArena (_, _, b) -> peel b | e -> e in
  let where =
    match ac.owner with Some n -> n | None -> "the main expression"
  in
  let head, args = Claims.head_and_args (peel ac.body) in
  match (head, args) with
  | Ir.Var f0, _ :: _ when List.mem (Erase.base ~defs:ctx.mono_names f0) ctx.mono_names
    ->
      let f = Erase.base ~defs:ctx.mono_names f0 in
      let loc = ctx.call_loc ~owner:ac.owner f0 in
      let eargs = List.map (Erase.expr ~defs:ctx.mono_names) args in
      let n = List.length args in
      List.iteri
        (fun j a ->
          let levels, opaque = site_levels ac.id a in
          let producers = producer_refs ctx ac.id a in
          if levels <> [] || opaque || producers <> [] then
            match keep_of ctx f eargs n j with
            | None ->
                ctx.add
                  (D.errorf ~code:"VET016" loc
                     "cannot verify the escape of argument %d of %s (arena %d)"
                     (j + 1) f ac.id)
            | Some keep ->
                if opaque then
                  ctx.add
                    (D.errorf ~code:"VET003" loc
                       "an allocation into arena %d sits at a position of \
                        argument %d of %s whose spine level cannot be derived"
                       ac.id (j + 1) f);
                List.iter
                  (fun lvl ->
                    if keep < lvl then
                      ctx.add
                        (D.errorf ~code:"VET003" loc
                           "allocation into arena %d at spine level %d of \
                            argument %d of %s exceeds its escape bound %d"
                           ac.id lvl (j + 1) f keep))
                  levels;
                (match producers with
                | [] -> ()
                | [ g ]
                  when (match Claims.head_and_args a with
                       | Ir.Var h, _ :: _ -> String.equal h g
                       | _ -> false) ->
                    if keep < 1 then
                      ctx.add
                        (D.errorf ~code:"VET004" loc
                           "the result of block producer %s (arena %d) may \
                            escape %s: the escape test keeps %d top spine(s)"
                           g ac.id f keep);
                    check_producer ctx ac.id g
                | gs ->
                    List.iter
                      (fun g ->
                        ctx.add
                          (D.errorf ~code:"VET004" loc
                             "block producer %s (arena %d) is not the head of \
                              argument %d of %s"
                             g ac.id (j + 1) f))
                      gs))
        args
  | _ ->
      ctx.add
        (D.errorf ~code:"VET002" (ctx.loc_of_def where)
           "arena %d in %s does not delimit a saturated call of a known \
            definition"
           ac.id where)

(* ---- entry point ------------------------------------------------------------ *)

let audit ?(hints = []) ~source ir =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let finish audited =
    let ds = List.sort_uniq D.compare !diags in
    (ds, { audited; findings = List.length ds })
  in
  match Nml.Mono.run source with
  | exception Nml.Infer.Error (loc, msg) ->
      add (D.errorf ~code:"VET016" loc "cannot verify: %s" msg);
      finish 0
  | exception Nml.Mono.Too_many_instances ->
      add
        (D.errorf ~code:"VET016"
           (A.loc source.Nml.Surface.main)
           "cannot verify: monomorphization exceeds the instance budget");
      finish 0
  | mono -> (
      let msurf = mono.Nml.Mono.program in
      match Fix.make (Nml.Infer.infer_program msurf) with
      | exception Nml.Infer.Error (loc, msg) ->
          add (D.errorf ~code:"VET016" loc "cannot verify: %s" msg);
          finish 0
      | t ->
          let instances = mono.Nml.Mono.instances in
          let mono_names = List.map fst msurf.Nml.Surface.defs in
          let ir_defs, main = split ir in
          let def_names = List.map fst ir_defs in
          let surface_name n = orig_of instances (Erase.base ~defs:mono_names n) in
          let loc_of_def n =
            match find_def_rhs source (surface_name n) with
            | Some rhs -> A.loc rhs
            | None ->
                (* findings about the main expression (or a synthesized
                   name) anchor at the main expression's span *)
                A.loc source.Nml.Surface.main
          in
          let claim_loc (c : Claims.reuse_claim) =
            param_binder_loc source (surface_name c.def) c.arg
          in
          let call_loc ~owner callee =
            let target = surface_name callee in
            let scope =
              match owner with
              | None -> Some source.Nml.Surface.main
              | Some d -> find_def_rhs source (surface_name d)
            in
            match Option.bind scope (find_call target) with
            | Some l -> l
            | None -> (
                match find_call target source.Nml.Surface.main with
                | Some l -> l
                | None -> loc_of_def (match owner with Some d -> d | None -> target))
          in
          let claims, arenas, ediags =
            Claims.extract ~loc_of_def
              ~main_loc:(A.loc source.Nml.Surface.main)
              ~mono_names ir_defs main
          in
          List.iter add ediags;
          let destructive =
            List.fold_left
              (fun acc (c : Claims.reuse_claim) ->
                match List.assoc_opt c.def acc with
                | Some cls ->
                    (c.def, cls @ [ c ]) :: List.remove_assoc c.def acc
                | None -> (c.def, [ c ]) :: acc)
              [] claims
          in
          let ctx =
            {
              t;
              share = Share.make ~base:(Erase.base ~defs:mono_names) ir_defs;
              mono_names;
              ir_defs;
              def_names;
              destructive;
              needs = compute_needs def_names ir_defs;
              add;
              calls = ref 0;
              loc_of_def;
              claim_loc;
              call_loc;
            }
          in
          (* Theorem 2's escape side, and the static shape of each claim *)
          List.iter
            (fun (c : Claims.reuse_claim) ->
              (match An.global ~arity:c.arity ctx.t c.base ~arg:c.arg with
              | v ->
                  let keep = An.non_escaping_top_spines v in
                  if keep < 1 then
                    add
                      (D.errorf ~code:"VET014" (claim_loc c)
                         "the consumed parameter %s of %s may escape: the \
                          escape test keeps %d top spine(s)"
                         c.param c.def keep)
              | exception (Nml.Infer.Error _ | Invalid_argument _) ->
                  add
                    (D.errorf ~code:"VET016" (claim_loc c)
                       "cannot verify the escape of parameter %s of %s"
                       c.param c.def));
              match List.assoc_opt c.def ir_defs with
              | Some rhs ->
                  let _, body = Claims.leading_params rhs in
                  if under_lambda c.param body then
                    add
                      (D.errorf ~code:"VET012" (claim_loc c)
                         "%s is destroyed in %s but also occurs under a lambda"
                         c.param c.def)
              | None -> ())
            claims;
          (* the linear walk of every body *)
          List.iter
            (fun (name, rhs) ->
              let params, body = Claims.leading_params rhs in
              let fr =
                {
                  owner = Some name;
                  claimed =
                    List.filter
                      (fun (c : Claims.reuse_claim) -> String.equal c.def name)
                      claims;
                  bound = params;
                  shadow = [];
                  env = [];
                  cells = [];
                  nodes = [];
                  under = false;
                  opened = IS.empty;
                }
              in
              walk ctx fr body ~after:[])
            ir_defs;
          walk ctx
            {
              owner = None;
              claimed = [];
              bound = [];
              shadow = [];
              env = [];
              cells = [];
              nodes = [];
              under = false;
              opened = IS.empty;
            }
            main ~after:[];
          (* arena delimiters *)
          List.iter (check_arena ctx) arenas;
          (* advisory dead-spine heap hints: independently re-derive
             each claimed (definition, parameter) with the verifier's
             own liveness fixpoint instead of trusting the analysis
             that produced it.  Every monomorphized instance of the
             hinted definition must re-derive; a hint about a
             definition that monomorphization dropped entirely is
             vacuous (no closure of that name ever exists). *)
          let hint_count = ref 0 in
          List.iter
            (fun (f, idxs) ->
              let instances =
                List.filter
                  (fun n ->
                    String.equal (Erase.base ~defs:mono_names n) n
                    && String.equal (surface_name n) f)
                  def_names
              in
              List.iter
                (fun i ->
                  incr hint_count;
                  match
                    List.find_opt
                      (fun n -> not (Share.spine_dead ctx.share ~def:n ~arg:i))
                      instances
                  with
                  | Some n ->
                      add
                        (D.errorf ~code:"VET018"
                           (param_binder_loc source f i)
                           "the dead-spine hint for parameter %d of %s cannot \
                            be re-derived: %s may need that argument's spine \
                            past the head"
                           i f n)
                  | None -> ())
                idxs)
            hints;
          finish
            (List.length claims + List.length arenas + !(ctx.calls) + !hint_count))
