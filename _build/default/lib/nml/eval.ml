module Env = Map.Make (String)

type value =
  | Vint of int
  | Vbool of bool
  | Vnil
  | Vcons of value * value
  | Vpair of value * value
  | Vleaf
  | Vnode of value * value * value  (** left, label, right *)
  | Vclos of string * Ast.expr * env
  | Vprim of Ast.prim * value list

and env = cell Env.t
and cell = Ready of value | Pending of value option ref

exception Runtime_error of string
exception Out_of_fuel

let error fmt = Format.kasprintf (fun msg -> raise (Runtime_error msg)) fmt
let empty_env = Env.empty
let bind x v env = Env.add x (Ready v) env

let lookup env x =
  match Env.find_opt x env with
  | Some (Ready v) -> v
  | Some (Pending { contents = Some v }) -> v
  | Some (Pending { contents = None }) ->
      error "letrec binding %s is used before its definition is evaluated" x
  | None -> error "unbound identifier %s at run time" x

let env_values env =
  Env.fold
    (fun _ cell acc ->
      match cell with
      | Ready v -> v :: acc
      | Pending { contents = Some v } -> v :: acc
      | Pending { contents = None } -> acc)
    env []

let type_name = function
  | Vint _ -> "int"
  | Vbool _ -> "bool"
  | Vnil | Vcons _ -> "list"
  | Vpair _ -> "pair"
  | Vleaf | Vnode _ -> "tree"
  | Vclos _ | Vprim _ -> "function"

let as_int = function Vint n -> n | v -> error "expected an int, got a %s" (type_name v)
let as_bool = function Vbool b -> b | v -> error "expected a bool, got a %s" (type_name v)

let delta p args =
  match (p, args) with
  | Ast.Add, [ a; b ] -> Vint (as_int a + as_int b)
  | Ast.Sub, [ a; b ] -> Vint (as_int a - as_int b)
  | Ast.Mul, [ a; b ] -> Vint (as_int a * as_int b)
  | Ast.Div, [ a; b ] ->
      let d = as_int b in
      if d = 0 then error "division by zero" else Vint (as_int a / d)
  | Ast.Mod, [ a; b ] ->
      let d = as_int b in
      if d = 0 then error "modulo by zero" else Vint (as_int a mod d)
  | Ast.Eq, [ a; b ] -> Vbool (as_int a = as_int b)
  | Ast.Ne, [ a; b ] -> Vbool (as_int a <> as_int b)
  | Ast.Lt, [ a; b ] -> Vbool (as_int a < as_int b)
  | Ast.Le, [ a; b ] -> Vbool (as_int a <= as_int b)
  | Ast.Gt, [ a; b ] -> Vbool (as_int a > as_int b)
  | Ast.Ge, [ a; b ] -> Vbool (as_int a >= as_int b)
  | Ast.And, [ a; b ] -> Vbool (as_bool a && as_bool b)
  | Ast.Or, [ a; b ] -> Vbool (as_bool a || as_bool b)
  | Ast.Not, [ a ] -> Vbool (not (as_bool a))
  | Ast.Cons, [ hd; tl ] -> (
      match tl with
      | Vnil | Vcons _ -> Vcons (hd, tl)
      | v -> error "cons: tail must be a list, got a %s" (type_name v))
  | Ast.Car, [ Vcons (hd, _) ] -> hd
  | Ast.Car, [ Vnil ] -> error "car of nil"
  | Ast.Car, [ v ] -> error "car of a %s" (type_name v)
  | Ast.Cdr, [ Vcons (_, tl) ] -> tl
  | Ast.Cdr, [ Vnil ] -> error "cdr of nil"
  | Ast.Cdr, [ v ] -> error "cdr of a %s" (type_name v)
  | Ast.Null, [ Vnil ] -> Vbool true
  | Ast.Null, [ Vcons _ ] -> Vbool false
  | Ast.Null, [ v ] -> error "null of a %s" (type_name v)
  | Ast.Pair, [ a; b ] -> Vpair (a, b)
  | Ast.Fst, [ Vpair (a, _) ] -> a
  | Ast.Fst, [ v ] -> error "fst of a %s" (type_name v)
  | Ast.Snd, [ Vpair (_, b) ] -> b
  | Ast.Snd, [ v ] -> error "snd of a %s" (type_name v)
  | Ast.Node, [ l; x; r ] -> (
      match (l, r) with
      | (Vleaf | Vnode _), (Vleaf | Vnode _) -> Vnode (l, x, r)
      | _ -> error "node: children must be trees")
  | Ast.Isleaf, [ Vleaf ] -> Vbool true
  | Ast.Isleaf, [ Vnode _ ] -> Vbool false
  | Ast.Isleaf, [ v ] -> error "isleaf of a %s" (type_name v)
  | Ast.Label, [ Vnode (_, x, _) ] -> x
  | Ast.Label, [ Vleaf ] -> error "label of leaf"
  | Ast.Label, [ v ] -> error "label of a %s" (type_name v)
  | Ast.Left, [ Vnode (l, _, _) ] -> l
  | Ast.Left, [ Vleaf ] -> error "left of leaf"
  | Ast.Left, [ v ] -> error "left of a %s" (type_name v)
  | Ast.Right, [ Vnode (_, _, r) ] -> r
  | Ast.Right, [ Vleaf ] -> error "right of leaf"
  | Ast.Right, [ v ] -> error "right of a %s" (type_name v)
  | _ -> error "primitive %s applied to %d arguments" (Ast.prim_name p) (List.length args)

let eval ?fuel ?(env = empty_env) expr =
  let steps = ref (match fuel with Some n -> n | None -> -1) in
  let tick () =
    if !steps = 0 then raise Out_of_fuel;
    if !steps > 0 then decr steps
  in
  let rec go env expr =
    tick ();
    match expr with
    | Ast.Const (_, Ast.Cint n) -> Vint n
    | Ast.Const (_, Ast.Cbool b) -> Vbool b
    | Ast.Const (_, Ast.Cnil) -> Vnil
    | Ast.Const (_, Ast.Cleaf) -> Vleaf
    | Ast.Prim (_, p) -> Vprim (p, [])
    | Ast.Var (_, x) -> lookup env x
    | Ast.Lam (_, x, body) -> Vclos (x, body, env)
    | Ast.App (_, f, a) ->
        (* left-to-right: function first, then argument *)
        let vf = go env f in
        let va = go env a in
        apply vf va
    | Ast.If (_, c, t, f) -> if as_bool (go env c) then go env t else go env f
    | Ast.Letrec (_, bs, body) ->
        let slots = List.map (fun (x, _) -> (x, ref None)) bs in
        let env' =
          List.fold_left (fun env (x, slot) -> Env.add x (Pending slot) env) env slots
        in
        List.iter2 (fun (_, rhs) (_, slot) -> slot := Some (go env' rhs)) bs slots;
        go env' body
  and apply vf va =
    tick ();
    match vf with
    | Vclos (x, body, cenv) -> go (bind x va cenv) body
    | Vprim (p, collected) ->
        let args = collected @ [ va ] in
        if List.length args = Ast.prim_arity p then delta p args else Vprim (p, args)
    | v -> error "cannot apply a %s as a function" (type_name v)
  in
  go env expr

let run ?fuel (p : Surface.t) = eval ?fuel (Surface.to_expr p)

let defs_env ?fuel (p : Surface.t) =
  match p.Surface.defs with
  | [] -> empty_env
  | defs ->
      let slots = List.map (fun (x, _) -> (x, ref None)) defs in
      let env' =
        List.fold_left (fun env (x, slot) -> Env.add x (Pending slot) env) empty_env slots
      in
      List.iter2 (fun (_, rhs) (_, slot) -> slot := Some (eval ?fuel ~env:env' rhs)) defs slots;
      env'

let apply_value ?fuel vf args =
  let apply1 vf va =
    match vf with
    | Vclos (x, body, cenv) -> eval ?fuel ~env:(bind x va cenv) body
    | Vprim (p, collected) ->
        let args = collected @ [ va ] in
        if List.length args = Ast.prim_arity p then delta p args else Vprim (p, args)
    | v -> error "cannot apply a %s as a function" (type_name v)
  in
  List.fold_left apply1 vf args
let value_of_int_list xs = List.fold_right (fun n acc -> Vcons (Vint n, acc)) xs Vnil

let rec list_of_value = function
  | Vnil -> []
  | Vcons (hd, tl) -> hd :: list_of_value tl
  | v -> error "expected a list, got a %s" (type_name v)

let int_list_of_value v = List.map as_int (list_of_value v)

let rec equal_value a b =
  match (a, b) with
  | Vint x, Vint y -> x = y
  | Vbool x, Vbool y -> x = y
  | Vnil, Vnil -> true
  | Vcons (h1, t1), Vcons (h2, t2) | Vpair (h1, t1), Vpair (h2, t2) ->
      equal_value h1 h2 && equal_value t1 t2
  | Vleaf, Vleaf -> true
  | Vnode (l1, x1, r1), Vnode (l2, x2, r2) ->
      equal_value l1 l2 && equal_value x1 x2 && equal_value r1 r2
  | (Vclos _ | Vprim _), _ | _, (Vclos _ | Vprim _) -> false
  | (Vint _ | Vbool _ | Vnil | Vcons _ | Vpair _ | Vleaf | Vnode _), _ -> false

let rec pp_value ppf = function
  | Vint n -> Format.pp_print_int ppf n
  | Vbool b -> Format.pp_print_bool ppf b
  | Vnil -> Format.pp_print_string ppf "[]"
  | Vcons _ as v ->
      let elems = list_of_value v in
      Format.fprintf ppf "@[<hov 1>[%a]@]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_value)
        elems
  | Vpair (a, b) -> Format.fprintf ppf "@[<hov 1>(%a,@ %a)@]" pp_value a pp_value b
  | Vleaf -> Format.pp_print_string ppf "leaf"
  | Vnode (l, x, r) ->
      Format.fprintf ppf "@[<hov 1>(node %a %a %a)@]" pp_value l pp_value x pp_value r
  | Vclos (x, _, _) -> Format.fprintf ppf "<fun %s>" x
  | Vprim (p, args) -> Format.fprintf ppf "<prim %s/%d>" (Ast.prim_name p) (List.length args)
