module Ty = Nml.Ty

type t = {
  id : int;
  ty : Ty.t;
  esc : Besc.t;
  app : t -> t;
  prod : (t * t) option;
}

exception Err_applied

let err _ = raise Err_applied

(* Value ids are process-global and atomic: they are pure identity tags
   (the application memo and [key_of] rely on their uniqueness), so two
   solver states — even in different domains — must never mint the same
   id.  Everything else mutable is per-{!state}. *)
let next_id = Atomic.make 0
let fresh_id () = Atomic.fetch_and_add next_id 1 + 1

let make ~prod ~ty ~esc ~app = { id = fresh_id (); ty; esc; app; prod }
let v ~ty ~esc ~app = make ~prod:None ~ty ~esc ~app
let base ~ty esc = v ~ty ~esc ~app:err
let pair ~ty ~esc (a, b) = make ~prod:(Some (a, b)) ~ty ~esc ~app:err

let with_esc esc t =
  if Besc.equal esc t.esc then t else { t with id = fresh_id (); esc }

let with_ty ty t = { t with ty }

(* ---- dependency sources ------------------------------------------------- *)

(* A [source] is a generation-stamped cell of mutable analysis state (one
   per fixpoint entry).  Computations register the sources they read in
   the innermost open frame; a memoized application records its read set
   and is discarded only when one of those sources has since been
   touched — the selective replacement for wholesale cache clearing. *)

type source = { sid : int; mutable gen : int }

(* Source ids share the global atomic regime of value ids: a solver maps
   them back to entries, so two states colliding on an id would alias
   unrelated entries. *)
let next_sid = Atomic.make 0
let new_source () = { sid = Atomic.fetch_and_add next_sid 1 + 1; gen = 0 }
let touch s = s.gen <- s.gen + 1
let source_id s = s.sid

type frame = { reads : (int, source * int) Hashtbl.t; isolated : bool }

(* ---- solver state --------------------------------------------------------- *)

(* Everything mutable the application engine works over, hoisted out of
   module-level globals so each solver owns one and two solvers — in one
   domain or in different domains — cannot interfere.  The members:

   - [d]: the chain bound, the largest spine count seen so far;
   - [frames]: the stack of open read frames;
   - [intern_table]: probe/worst-case value interning (one physical value,
     hence one id, per (kind, esc, type));
   - [cache]: the application memo;
   - [probe_table]: probe families per (d, type);
   - hit/miss/invalidation counters. *)

type arg_key = Kbase of Besc.t | Kfun of int | Kprod of Besc.t * arg_key * arg_key

type centry = {
  mutable value : t;
  mutable complete : bool;
  mutable reentered : bool;
  mutable sources : (source * int) list;
      (* sources read while computing, with the generation read; the
         entry is stale as soon as any of them has been touched since *)
}

type state = {
  mutable d : int;
  mutable frames : frame list;
  intern_table : (string, t) Hashtbl.t;
  cache : (int * arg_key, centry) Hashtbl.t;
  probe_table : (int * string, t list) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable invalidated : int;
}

let create_state () =
  {
    d = 0;
    frames = [];
    intern_table = Hashtbl.create 64;
    cache = Hashtbl.create 4096;
    probe_table = Hashtbl.create 64;
    hits = 0;
    misses = 0;
    invalidated = 0;
  }

(* The ambient state is domain-local: a domain that never installs a
   state (unit tests poking at values directly, the kleene trace) gets a
   private default, and worker domains of the batch driver are
   shared-nothing by construction. *)
let ambient : state Domain.DLS.key = Domain.DLS.new_key create_state
let current_state () = Domain.DLS.get ambient

let with_state s f =
  let old = Domain.DLS.get ambient in
  Domain.DLS.set ambient s;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient old) f

(* ---- chain bound ------------------------------------------------------- *)

let ensure_d d =
  let st = current_state () in
  if d > st.d then st.d <- d

let current_d () = (current_state ()).d

(* ---- read frames ---------------------------------------------------------- *)

(* Keep the generation of the *first* read: if the source moved on since,
   the computation that used the older value must be considered stale. *)
let note_read_gen s g =
  match (current_state ()).frames with
  | [] -> ()
  | f :: _ -> if not (Hashtbl.mem f.reads s.sid) then Hashtbl.add f.reads s.sid (s, g)

let note_read s = note_read_gen s s.gen

let push_frame ~isolated =
  let st = current_state () in
  st.frames <- { reads = Hashtbl.create 8; isolated } :: st.frames

let pop_frame () =
  let st = current_state () in
  match st.frames with
  | [] -> []
  | f :: rest ->
      st.frames <- rest;
      let srcs = Hashtbl.fold (fun _ sg acc -> sg :: acc) f.reads [] in
      (* an application's reads are also reads of whatever computation
         encloses it; an isolated frame (a solver evaluating one entry)
         keeps them to itself *)
      if not f.isolated then List.iter (fun (s, g) -> note_read_gen s g) srcs;
      srcs

let with_reads fn =
  push_frame ~isolated:true;
  match fn () with
  | v -> (v, pop_frame ())
  | exception exn ->
      ignore (pop_frame ());
      raise exn

(* ---- interning ----------------------------------------------------------- *)

(* Probe and worst-case values are deterministic in (esc, type), so
   repeated constructions can share one physical value — and therefore
   one [id], which is what lets [equal]/[leq] and the escape tests hit
   the application memo across passes and across queries. *)

let interned key build =
  let st = current_state () in
  match Hashtbl.find_opt st.intern_table key with
  | Some v -> v
  | None ->
      let v = build () in
      Hashtbl.add st.intern_table key v;
      v

(* ---- lattice constants --------------------------------------------------- *)

let rec bottom ty =
  match Ty.shape ty with
  | Ty.Sbase -> base ~ty Besc.bottom
  | Ty.Sarrow (_, b) -> v ~ty ~esc:Besc.bottom ~app:(fun _ -> bottom b)
  | Ty.Sprod (a, b) -> pair ~ty ~esc:Besc.bottom (bottom a, bottom b)

let rec top ~d ty =
  match Ty.shape ty with
  | Ty.Sbase -> base ~ty (Besc.top ~d)
  | Ty.Sarrow (_, b) -> v ~ty ~esc:(Besc.top ~d) ~app:(fun _ -> top ~d b)
  | Ty.Sprod (a, b) -> pair ~ty ~esc:(Besc.top ~d) (top ~d a, top ~d b)

(* [saturate ~esc ty]: the conservative value "something with containment
   [esc] of unknown structure": functions absorb their arguments'
   containment, pair components inherit [esc].  Used when a component is
   projected out of a value that carries no structural information. *)
let rec saturate ~esc ty =
  match Ty.shape ty with
  | Ty.Sbase -> base ~ty esc
  | Ty.Sarrow (_, b) ->
      v ~ty ~esc ~app:(fun x -> saturate ~esc:(Besc.join esc (total_esc x)) b)
  | Ty.Sprod (a, b) -> pair ~ty ~esc (saturate ~esc a, saturate ~esc b)

(* Everything of the interesting object contained anywhere in the value's
   (product) structure. *)
and total_esc t =
  match t.prod with
  | None -> t.esc
  | Some (a, b) -> Besc.join t.esc (Besc.join (total_esc a) (total_esc b))

let prod_tys ty =
  match Ty.shape ty with
  | Ty.Sprod (a, b) -> (a, b)
  | Ty.Sbase | Ty.Sarrow _ -> invalid_arg "Dvalue: projection from a non-pair value"

let fst_of t =
  match t.prod with
  | Some (a, _) -> a
  | None -> saturate ~esc:t.esc (fst (prod_tys t.ty))

let snd_of t =
  match t.prod with
  | Some (_, b) -> b
  | None -> saturate ~esc:t.esc (snd (prod_tys t.ty))

(* ---- worst-case functions ---------------------------------------------- *)

(* [w_stage acc ty]: the value W yields after consuming arguments whose
   containment joins to [acc]. *)
let rec w_stage acc ty =
  match Ty.shape ty with
  | Ty.Sbase -> base ~ty acc
  | Ty.Sarrow (_, b) ->
      v ~ty ~esc:acc ~app:(fun x -> w_stage (Besc.join acc (total_esc x)) b)
  | Ty.Sprod _ -> saturate ~esc:acc ty

let w_value ~esc ty =
  interned (Printf.sprintf "w:%s:%s" (Besc.to_string esc) (Ty.to_string ty))
  @@ fun () ->
  match Ty.shape ty with
  | Ty.Sbase -> base ~ty esc
  | Ty.Sarrow (_, b) -> v ~ty ~esc ~app:(fun x -> w_stage (total_esc x) b)
  | Ty.Sprod _ -> saturate ~esc ty

(* Probe argument values for the global test: each level of the structure
   is marked with its own spine count (the interesting case) or <0,0>
   (the boring case); function components are worst-case. *)
let rec probe_arg ~interesting ty =
  let esc = if interesting then Besc.one (Ty.spines ty) else Besc.zero in
  match Ty.shape ty with
  | Ty.Sbase -> base ~ty esc
  | Ty.Sarrow _ -> w_value ~esc ty
  | Ty.Sprod (a, b) ->
      pair ~ty ~esc (probe_arg ~interesting a, probe_arg ~interesting b)

let interesting ty =
  interned ("pi:" ^ Ty.to_string ty) (fun () -> probe_arg ~interesting:true ty)

let boring ty =
  interned ("pb:" ^ Ty.to_string ty) (fun () -> probe_arg ~interesting:false ty)

(* Local-test marking (section 4.2): keep the value's actual behaviour
   but replace its containment — every structural level gets its own
   spine count (interesting) or <0,0> (boring). *)
let rec mark ~interesting t =
  let esc = if interesting then Besc.one (Ty.spines t.ty) else Besc.zero in
  match t.prod with
  | None -> with_esc esc t
  | Some (a, b) ->
      make
        ~prod:(Some (mark ~interesting a, mark ~interesting b))
        ~ty:t.ty ~esc ~app:t.app

let mark_interesting t = mark ~interesting:true t
let mark_boring t = mark ~interesting:false t

(* Component-resolved tests: only the sub-structure at [path] is the
   interesting object. *)
type component = Cfst | Csnd

let rec probe_component ~path ty =
  interned
    (Printf.sprintf "pc:%s:%s"
       (String.concat ""
          (List.map (function Cfst -> "f" | Csnd -> "s") path))
       (Ty.to_string ty))
  @@ fun () ->
  match (path, Ty.shape ty) with
  | [], _ -> probe_arg ~interesting:true ty
  | Cfst :: rest, Ty.Sprod (a, b) ->
      pair ~ty ~esc:Besc.zero
        (probe_component ~path:rest a, probe_arg ~interesting:false b)
  | Csnd :: rest, Ty.Sprod (a, b) ->
      pair ~ty ~esc:Besc.zero
        (probe_arg ~interesting:false a, probe_component ~path:rest b)
  | _ :: _, (Ty.Sbase | Ty.Sarrow _) ->
      invalid_arg "Dvalue.probe_component: path does not name a pair component"

let rec mark_component ~path t =
  match path with
  | [] -> mark_interesting t
  | c :: rest ->
      let a = fst_of t and b = snd_of t in
      let a', b' =
        match c with
        | Cfst -> (mark_component ~path:rest a, mark_boring b)
        | Csnd -> (mark_boring a, mark_component ~path:rest b)
      in
      make ~prod:(Some (a', b')) ~ty:t.ty ~esc:Besc.zero ~app:t.app

(* ---- application engine ------------------------------------------------ *)

let rec key_of arg =
  match Ty.shape arg.ty with
  | Ty.Sbase -> Kbase arg.esc
  | Ty.Sarrow _ -> Kfun arg.id
  | Ty.Sprod _ -> Kprod (arg.esc, key_of (fst_of arg), key_of (snd_of arg))

let entry_valid e = List.for_all (fun (s, g) -> s.gen = g) e.sources

(* Probe values are cached per (bound, type) so repeated comparisons apply
   the same values and hit the application cache. *)
let rec probes ty =
  let st = current_state () in
  let d = st.d in
  let k = (d, Ty.to_string ty) in
  match Hashtbl.find_opt st.probe_table k with
  | Some ps -> ps
  | None ->
      let escs = Besc.all ~d in
      let ps =
        match Ty.shape ty with
        | Ty.Sbase -> List.map (fun esc -> base ~ty esc) escs
        | Ty.Sarrow _ ->
            List.concat_map
              (fun esc -> [ w_value ~esc ty; with_esc esc (bottom ty) ])
              escs
        | Ty.Sprod (a, b) ->
            (* cross product of component probes, top esc zero (the pair
               cell itself carries its components' containment) *)
            List.concat_map
              (fun pa ->
                List.map (fun pb -> pair ~ty ~esc:Besc.zero (pa, pb)) (probes b))
              (probes a)
      in
      Hashtbl.add st.probe_table k ps;
      ps

let rec cmp ~op a b =
  op a.esc b.esc
  &&
  match Ty.shape a.ty with
  | Ty.Sbase -> true
  | Ty.Sarrow (arg, _) ->
      List.for_all (fun p -> cmp ~op (apply a p) (apply b p)) (probes arg)
  | Ty.Sprod _ ->
      cmp ~op (fst_of a) (fst_of b) && cmp ~op (snd_of a) (snd_of b)

and equal a b = cmp ~op:Besc.equal a b
and leq a b = cmp ~op:Besc.leq a b

and join a b =
  if a.id = b.id then a
  else
    let prod =
      match (a.prod, b.prod) with
      | None, None -> None
      | _ -> Some (join (fst_of a) (fst_of b), join (snd_of a) (snd_of b))
    in
    make ~prod ~ty:a.ty
      ~esc:(Besc.join a.esc b.esc)
      ~app:(fun x -> join (apply a x) (apply b x))

(* Pending analysis: a cyclic re-entry on the same (function, argument)
   returns the entry's current approximation; the outer activation then
   re-runs the body until the approximation is stable.  The domain is
   finite and all operators are monotone, so the loop terminates; the
   iteration cap is a defensive backstop that widens to top (the safe
   direction). *)
and apply f x =
  let st = current_state () in
  let key = (f.id, key_of x) in
  match Hashtbl.find_opt st.cache key with
  | Some e when e.complete ->
      if entry_valid e then begin
        st.hits <- st.hits + 1;
        (* a hit stands in for the computation: its reads become reads of
           whatever computation encloses this application *)
        List.iter (fun (s, g) -> note_read_gen s g) e.sources;
        e.value
      end
      else begin
        (* an entry this application depended on changed: discard just
           this memo and recompute against the current values *)
        st.invalidated <- st.invalidated + 1;
        Hashtbl.remove st.cache key;
        apply f x
      end
  | Some e ->
      (* re-entered while computing: yield the approximation *)
      e.reentered <- true;
      e.value
  | None ->
      st.misses <- st.misses + 1;
      let result_ty =
        match Ty.shape f.ty with
        | Ty.Sarrow (_, b) -> b
        | Ty.Sbase | Ty.Sprod _ -> f.ty (* err will raise before the type is used *)
      in
      let e =
        { value = bottom result_ty; complete = false; reentered = false; sources = [] }
      in
      Hashtbl.add st.cache key e;
      push_frame ~isolated:false;
      let rec loop n =
        e.reentered <- false;
        let r = f.app x in
        let widened = join e.value r in
        if e.reentered && not (equal widened e.value) then begin
          e.value <- widened;
          if n >= 64 then e.value <- top ~d:st.d result_ty else loop (n + 1)
        end
        else e.value <- widened
      in
      (try loop 0
       with exn ->
         ignore (pop_frame ());
         Hashtbl.remove st.cache key;
         raise exn);
      e.sources <- pop_frame ();
      e.complete <- true;
      e.value

let apply_all f xs = List.fold_left apply f xs
let clear_cache () = Hashtbl.reset (current_state ()).cache

let cache_stats () =
  let st = current_state () in
  (st.hits, st.misses)

let invalidations () = (current_state ()).invalidated

let reset_stats () =
  let st = current_state () in
  st.hits <- 0;
  st.misses <- 0;
  st.invalidated <- 0

let pp ppf t = Format.fprintf ppf "@[%a : %a@]" Besc.pp t.esc Ty.pp t.ty
