examples/reverse_reuse.ml: Format List Nml Optimize Printf Runtime String
