(* Generic forward taint-flow interpretation over the monomorphized AST:
   the shared value structure and abstract semantics behind the usage
   (strictness) and spine-liveness Specs.

   A [Flow] value mirrors [Escape.Dvalue]'s shape discipline — the list
   collapse [D^{t list} = D^t] from the paper carries over, so a value
   follows {!Nml.Ty.shape}: base shapes carry only flags, arrow shapes a
   real abstract function, product shapes one value per component — but
   the lattice at each level is a small record of {e taint flags}
   supplied by the [FLAGS] parameter instead of a basic escape value.
   One flag (the [dep] bit) means "derives from / may retain the
   interesting argument"; the remaining flags are {e evidence} bits
   accumulated as primitives touch dep-marked structure (an element was
   observed, a head cell was read, the spine was traversed...).  The
   per-analysis meaning lives entirely in the FLAGS callbacks the
   abstract primitives invoke.

   Analyses ask questions exactly like the escape engine's global test:
   mark one parameter interesting ([probe]), every other boring
   ([bottom]), apply the definition's abstract value, and read the
   accumulated flags off the result.

   Application performs the same pending analysis as [Escape.Dvalue]:
   each (function id, argument key) pair gets a memo entry; a cyclic
   re-entry returns the entry's current approximation (initially the
   bottom of the result type) and the application is re-run until it
   stabilizes — flag domains are finite, so this terminates for
   first-order argument positions exactly as the escape engine does.
   The memo is valid within one solver evaluation (entry values it read
   may move between fixpoint iterations), so it is dropped whenever a
   fresh read frame opens; there is no cross-evaluation source tracking
   to invalidate, hence [invalidations] is always 0.

   [Make] is generative: each instantiation owns private per-domain
   ambient state, and every solver installs its own [state], so two
   analyses — or two solvers of the same analysis in different domains —
   are shared-nothing, the same isolation contract [Escape.Dvalue]
   gives the escape solver. *)

module Ty = Nml.Ty
module Tast = Nml.Tast
module Ast = Nml.Ast

(* process-global identity tags, exactly like [Dvalue]'s: globally
   unique ids make values safe to carry across states — a foreign value
   at worst misses a memo, it can never collide *)
let next_id = Atomic.make 0
let next_sid = Atomic.make 0

module type FLAGS = sig
  val analysis_name : string

  type t

  val bot : t
  val top : t  (** must have the dep bit set: it bounds every value *)

  val join : t -> t -> t
  val equal : t -> t -> bool
  val leq : t -> t -> bool

  val dep : t -> bool
  val mark_dep : t -> t
  val detach : t -> t  (** clear the dep bit, keep the evidence bits *)

  (** Evidence callbacks, invoked on the flags of the value a primitive
      consumes (dep-marked input => evidence recorded): *)

  val observe : t -> t  (** used as a base datum: arith, comparison, condition *)

  val elem_view : spined:bool -> boxed:bool -> t -> t
  (** [car]/[label]: head cell read, element extracted.  Two facts about
      the element's type qualify the read: [spined] is true when the
      element carries list/tree structure of its own — an analysis
      tracking {e spine} retention may clear its dep bit otherwise (the
      element is not a spine); [boxed] is true when the element owns heap
      cells at all ({!Nml.Ty.owns_cells}: lists, trees, pairs, closures)
      — an analysis tracking {e cell sharing} may clear its dep bit only
      when even that is false (an [int] element cannot retain the
      argument's heap, but a pair element is one of its cells).  A usage
      analysis ignores both (the element is still the argument's data). *)

  val force_tail : t -> t  (** [cdr]/[left]/[right]: a spine cell traversed *)

  val force_test : t -> t  (** [null]/[isleaf]: spine inspected, result detached *)

  val force_proj : t -> t  (** [fst]/[snd]: the pair itself forced *)
end

module Make (F : FLAGS) () = struct
  let name = F.analysis_name

  module Env = Map.Make (String)

  type value = {
    id : int;  (* unique per constructed value; memo key for arrow shapes *)
    ty : Ty.t;
    flags : F.t;
    app : (value -> value) option;  (* arrow shapes only *)
    prod : (value * value) option;  (* product shapes only *)
  }

  let mk ~ty ~flags ~app ~prod =
    { id = Atomic.fetch_and_add next_id 1; ty; flags; app; prod }

  (* ---- per-solver state -------------------------------------------------- *)

  type source = { sid : int; mutable gen : int }

  type akey = Kflags of F.t | Kid of int | Kpair of akey * akey

  type centry = {
    mutable cvalue : value;
    mutable complete : bool;
    mutable reentered : bool;
  }

  type state = {
    mutable d : int;  (* chain bound (kept for parity; flags ignore it) *)
    mutable frames : (source * int) list ref list;  (* innermost first *)
    memo : (int * akey, centry) Hashtbl.t;  (* pending/memoized applications *)
    mutable hits : int;
    mutable misses : int;
  }

  let create_state () =
    { d = 0; frames = []; memo = Hashtbl.create 64; hits = 0; misses = 0 }

  let ambient : state Domain.DLS.key = Domain.DLS.new_key create_state
  let installed : state option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

  let current_state () =
    match Domain.DLS.get installed with
    | Some s -> s
    | None -> Domain.DLS.get ambient

  let with_state s f =
    let prev = Domain.DLS.get installed in
    Domain.DLS.set installed (Some s);
    Fun.protect ~finally:(fun () -> Domain.DLS.set installed prev) f

  let ensure_d d =
    let s = current_state () in
    if d > s.d then s.d <- d

  let new_source () = { sid = Atomic.fetch_and_add next_sid 1; gen = 0 }
  let source_id s = s.sid
  let touch s = s.gen <- s.gen + 1

  let note_read src =
    match (current_state ()).frames with
    | [] -> ()
    | frame :: _ -> frame := (src, src.gen) :: !frame

  let with_reads f =
    let s = current_state () in
    (* the memo's reads are not generation-tracked, so it must not
       outlive the evaluation it was filled by *)
    Hashtbl.reset s.memo;
    let frame = ref [] in
    s.frames <- frame :: s.frames;
    let pop () = s.frames <- List.tl s.frames in
    match f () with
    | v ->
        pop ();
        (v, List.rev !frame)
    | exception e ->
        pop ();
        raise e

  let clear_memo () = Hashtbl.reset (current_state ()).memo
  let memo_stats () =
    let s = current_state () in
    (s.hits, s.misses)
  let invalidations () = 0

  (* ---- values ------------------------------------------------------------ *)

  (* worst-case evidence: a callee we know nothing about may do all of
     the above to its argument *)
  let worst f =
    F.observe
      (F.elem_view ~spined:true ~boxed:true
         (F.force_tail (F.force_test (F.force_proj f))))

  let rec total v =
    match v.prod with
    | None -> v.flags
    | Some (a, b) -> F.join v.flags (F.join (total a) (total b))

  let rec bottom ty =
    match Ty.shape ty with
    | Ty.Sbase -> mk ~ty ~flags:F.bot ~app:None ~prod:None
    | Ty.Sarrow (_, b) ->
        mk ~ty ~flags:F.bot ~app:(Some (fun _ -> bottom b)) ~prod:None
    | Ty.Sprod (t1, t2) ->
        mk ~ty ~flags:F.bot ~app:None ~prod:(Some (bottom t1, bottom t2))

  (* "something with these flags of unknown structure": functions absorb
     and fully exercise their arguments, components inherit the flags *)
  let rec saturate flags ty =
    match Ty.shape ty with
    | Ty.Sbase -> mk ~ty ~flags ~app:None ~prod:None
    | Ty.Sarrow (_, b) ->
        mk ~ty ~flags
          ~app:(Some (fun x -> saturate (F.join flags (worst (total x))) b))
          ~prod:None
    | Ty.Sprod (t1, t2) ->
        mk ~ty ~flags ~app:None ~prod:(Some (saturate flags t1, saturate flags t2))

  let top ~d:_ ty = saturate F.top ty

  let probe ty = saturate (F.mark_dep F.bot) ty
  (* the interesting argument: dep at every structural level *)

  let with_ty ty v = { v with ty }
  let map_flags f v = { v with id = Atomic.fetch_and_add next_id 1; flags = f v.flags }

  let rec join a b =
    mk ~ty:a.ty
      ~flags:(F.join a.flags b.flags)
      ~app:
        (match (a.app, b.app) with
        | Some f, Some g -> Some (fun x -> join (f x) (g x))
        | (Some _ as f), None | None, (Some _ as f) -> f
        | None, None -> None)
      ~prod:
        (match (a.prod, b.prod) with
        | Some (a1, a2), Some (b1, b2) -> Some (join a1 b1, join a2 b2)
        | (Some _ as p), None | None, (Some _ as p) -> p
        | None, None -> None)

  let rec akey_of v =
    match v.prod with
    | Some (a, b) -> Kpair (akey_of a, akey_of b)
    | None -> ( match v.app with Some _ -> Kid v.id | None -> Kflags v.flags)

  let result_ty_of f =
    match Ty.repr f.ty with Ty.Arrow (_, b) -> b | _ -> f.ty

  (* Pending, memoized application (the [Dvalue.apply] engine).  The
     argument key is structural for base and product shapes — exact and
     finite — and the value id for arrow shapes (sound: same id, same
     value). *)
  let rec apply f x =
    match f.app with
    | None ->
        (* a worst-case stage lost the structure: absorb and exercise *)
        saturate (F.join f.flags (worst (total x))) (result_ty_of f)
    | Some g -> (
        let st = current_state () in
        let k = (f.id, akey_of x) in
        match Hashtbl.find_opt st.memo k with
        | Some ce when ce.complete ->
            st.hits <- st.hits + 1;
            ce.cvalue
        | Some ce ->
            (* cyclic re-entry: current approximation *)
            ce.reentered <- true;
            ce.cvalue
        | None ->
            st.misses <- st.misses + 1;
            let ce =
              { cvalue = bottom (result_ty_of f); complete = false; reentered = false }
            in
            Hashtbl.add st.memo k ce;
            let rec run n =
              ce.reentered <- false;
              let v = g x in
              let v' = join ce.cvalue v in
              let changed = not (equal_v ce.cvalue v') in
              ce.cvalue <- v';
              if changed && ce.reentered then
                if n >= 64 then ce.cvalue <- top ~d:0 (result_ty_of f)
                else run (n + 1)
            in
            run 0;
            ce.complete <- true;
            ce.cvalue)

  (* extensional comparison on the canonical probe set {interesting,
     bottom} per arrow level — finite and monotone, which is all the
     solver's convergence test needs *)
  and equal_v a b =
    F.equal a.flags b.flags
    && (match (a.prod, b.prod) with
       | Some (a1, a2), Some (b1, b2) -> equal_v a1 b1 && equal_v a2 b2
       | None, None -> true
       | _ -> false)
    &&
    match (a.app, b.app) with
    | None, None -> true
    | _ -> (
        match Ty.repr a.ty with
        | Ty.Arrow (arg, _) ->
            equal_v (apply a (probe arg)) (apply b (probe arg))
            && equal_v (apply a (bottom arg)) (apply b (bottom arg))
        | _ -> true)

  let rec leq_v a b =
    F.leq a.flags b.flags
    && (match (a.prod, b.prod) with
       | Some (a1, a2), Some (b1, b2) -> leq_v a1 b1 && leq_v a2 b2
       | None, None -> true
       | Some (a1, a2), None -> leq_v a1 b && leq_v a2 b
       | None, Some _ -> true)
    &&
    match (a.app, b.app) with
    | None, None -> true
    | _ -> (
        match Ty.repr a.ty with
        | Ty.Arrow (arg, _) ->
            leq_v (apply a (probe arg)) (apply b (probe arg))
            && leq_v (apply a (bottom arg)) (apply b (bottom arg))
        | _ -> true)

  let apply_all f xs = List.fold_left apply f xs

  (* ---- abstract semantics ------------------------------------------------ *)

  type ctx = {
    d : unit -> int;
    global : string -> Ty.t -> value;
    max_iters : int;
    mutable iters : int;
    mutable capped : bool;
    mutable fv_cache : (Tast.texpr * string list) list;
  }

  let make_ctx ~d ~global ~max_iters =
    { d; global; max_iters; iters = 0; capped = false; fv_cache = [] }

  let iterations ctx = ctx.iters
  let record_iteration ctx = ctx.iters <- ctx.iters + 1
  let capped ctx = ctx.capped
  let set_capped ctx = ctx.capped <- true

  let arrow_parts ty =
    match Ty.repr ty with
    | Ty.Arrow (a, b) -> (a, b)
    | _ -> invalid_arg "Flow: primitive occurrence with non-arrow type"

  let base ~ty flags = mk ~ty ~flags ~app:None ~prod:None
  let func ~ty ~flags app = mk ~ty ~flags ~app:(Some app) ~prod:None

  let fst_of p =
    match p.prod with
    | Some (a, _) -> map_flags (fun f -> F.join f (F.detach (F.force_proj p.flags))) a
    | None -> saturate (F.force_proj p.flags) p.ty

  let snd_of p =
    match p.prod with
    | Some (_, b) -> map_flags (fun f -> F.join f (F.detach (F.force_proj p.flags))) b
    | None -> saturate (F.force_proj p.flags) p.ty

  let const_value ~ty (c : Ast.const) =
    match c with
    | Ast.Cint _ | Ast.Cbool _ -> base ~ty F.bot
    | Ast.Cnil | Ast.Cleaf -> bottom ty

  let prim_value ~ty (p : Ast.prim) =
    let _t1, rest = arrow_parts ty in
    let binop_base () =
      (* λx.λy. base datum computed from both operands *)
      let _t2, tr = arrow_parts rest in
      func ~ty ~flags:F.bot (fun x ->
          func ~ty:rest ~flags:(total x) (fun y ->
              base ~ty:tr (F.detach (F.observe (F.join (total x) (total y))))))
    in
    match p with
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Eq | Ast.Ne | Ast.Lt
    | Ast.Le | Ast.Gt | Ast.Ge | Ast.And | Ast.Or ->
        binop_base ()
    | Ast.Not ->
        func ~ty ~flags:F.bot (fun x ->
            base ~ty:rest (F.detach (F.observe (total x))))
    | Ast.Null | Ast.Isleaf ->
        func ~ty ~flags:F.bot (fun x ->
            base ~ty:rest (F.detach (F.force_test (total x))))
    | Ast.Cons ->
        (* the new cell contains both; building it touches neither *)
        let _t2, tr = arrow_parts rest in
        func ~ty ~flags:F.bot (fun x ->
            func ~ty:rest ~flags:(total x) (fun y -> with_ty tr (join x y)))
    | Ast.Car | Ast.Label ->
        (* element view of the collapsed list value; reading it accesses
           the head cell.  Whether the element still counts as retainable
           structure is the analysis' call (see [FLAGS.elem_view]). *)
        let spined = Ty.max_list_depth rest > 0 in
        let boxed = Ty.owns_cells rest in
        func ~ty ~flags:F.bot (fun x ->
            with_ty rest (map_flags (F.elem_view ~spined ~boxed) x))
    | Ast.Cdr | Ast.Left | Ast.Right ->
        (* the tail is as interesting as the list; taking it traverses a
           spine cell *)
        func ~ty ~flags:F.bot (fun x -> with_ty rest (map_flags F.force_tail x))
    | Ast.Pair ->
        let _t2, tr = arrow_parts rest in
        func ~ty ~flags:F.bot (fun x ->
            func ~ty:rest ~flags:(total x) (fun y ->
                mk ~ty:tr ~flags:F.bot ~app:None ~prod:(Some (x, y))))
    | Ast.Fst -> func ~ty ~flags:F.bot (fun p -> with_ty rest (fst_of p))
    | Ast.Snd -> func ~ty ~flags:F.bot (fun p -> with_ty rest (snd_of p))
    | Ast.Node ->
        let _t2, rest2 = arrow_parts rest in
        let _t3, tr = arrow_parts rest2 in
        func ~ty ~flags:F.bot (fun l ->
            func ~ty:rest ~flags:(total l) (fun x ->
                func ~ty:rest2
                  ~flags:(F.join (total l) (total x))
                  (fun r -> with_ty tr (join (join l x) r))))

  let rec eval ctx env (e : Tast.texpr) : value =
    match e.Tast.desc with
    | Tast.Const c -> const_value ~ty:e.Tast.ty c
    | Tast.Prim p -> prim_value ~ty:e.Tast.ty p
    | Tast.Var x -> (
        match Env.find_opt x env with
        | Some v -> v
        | None -> ctx.global x e.Tast.ty)
    | Tast.App (f, a) ->
        let vf = eval ctx env f in
        let va = eval ctx env a in
        apply vf va
    | Tast.Lam (x, body) ->
        (* the closure retains its free variables *)
        let fvs =
          match List.assq_opt e ctx.fv_cache with
          | Some fvs -> fvs
          | None ->
              let fvs = Tast.free_vars e in
              ctx.fv_cache <- (e, fvs) :: ctx.fv_cache;
              fvs
        in
        let flags =
          List.fold_left
            (fun acc z ->
              match Env.find_opt z env with
              | Some v -> F.join acc (total v)
              | None -> acc)
            F.bot fvs
        in
        func ~ty:e.Tast.ty ~flags (fun y -> eval ctx (Env.add x y env) body)
    | Tast.If (c, t, f) ->
        (* unlike the escape semantics, the condition is consumed: its
           dep evidence becomes observation evidence on the result *)
        let vc = eval ctx env c in
        let r = join (eval ctx env t) (eval ctx env f) in
        map_flags (fun fl -> F.join fl (F.detach (F.observe (total vc)))) r
    | Tast.Letrec (bs, body) ->
        let env' = solve_group ctx env bs in
        eval ctx env' body

  (* Kleene iteration for a (nested) letrec group, Jacobi style, like the
     escape semantics' [solve_group] *)
  and solve_group ctx env bs =
    let current = ref (List.map (fun (x, rhs) -> (x, bottom rhs.Tast.ty)) bs) in
    let build vals = List.fold_left (fun env (x, v) -> Env.add x v env) env vals in
    let rec iterate n =
      if n >= ctx.max_iters then (
        ctx.capped <- true;
        current := List.map (fun (x, rhs) -> (x, top ~d:(ctx.d ()) rhs.Tast.ty)) bs)
      else begin
        ctx.iters <- ctx.iters + 1;
        let envk = build !current in
        let next = List.map (fun (x, rhs) -> (x, eval ctx envk rhs)) bs in
        let converged =
          List.for_all2 (fun (_, v_old) (_, v_new) -> equal_v v_old v_new) !current next
        in
        current := next;
        if not converged then iterate (n + 1)
      end
    in
    iterate 0;
    build !current

  let transfer ctx tast = eval ctx Env.empty tast

  (* ---- Spec plumbing ----------------------------------------------------- *)

  let equal ~d:_ a b = equal_v a b
  let leq ~d:_ a b = leq_v a b
  let widen ~d ty _v = top ~d ty
  let demand_key name ty = name ^ " @ " ^ Ty.to_string ty
end
