(* Tests for the optimizer: last-use analysis, the DCONS transformation
   (checked against the paper's transformed programs), arena annotations,
   and — most importantly — semantic preservation: every optimized
   program computes the same value as the original, validated with the
   machine's arena-safety checks enabled. *)

module L = Optimize.Liveness
module R = Optimize.Reuse
module T = Optimize.Transform
module Sh = Optimize.Shape
module M = Runtime.Machine
module Ir = Runtime.Ir
module Stats = Runtime.Stats
module Eval = Nml.Eval
module Surface = Nml.Surface
module P = Nml.Parser
module Ex = Nml.Examples

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let value : Eval.value Alcotest.testable =
  Alcotest.testable (fun ppf v -> Eval.pp_value ppf v) Eval.equal_value

let solver src = Escape.Fixpoint.of_source src

(* parse "x y = rhs" definitions the way Surface does *)
let def_body src name =
  let surface = Surface.of_string (Ex.wrap [ src ] "0") in
  snd (Sh.strip_lams (Surface.def surface name))

(* ---- shape helpers --------------------------------------------------------- *)

let shape_tests =
  [
    Alcotest.test_case "literal-depth" `Quick (fun () ->
        checki "flat" 1 (Sh.literal_depth (P.parse "[1, 2]"));
        checki "nested" 2 (Sh.literal_depth (P.parse "[[1], [2]]"));
        checki "empty" 1 (Sh.literal_depth (P.parse "nil"));
        checki "mixed" 1 (Sh.literal_depth (P.parse "[x, [1]]"));
        checki "not-literal" 0 (Sh.literal_depth (P.parse "cons 1 x")));
    Alcotest.test_case "suffix" `Quick (fun () ->
        checkb "x" true (Sh.is_suffix_of "x" (P.parse "x"));
        checkb "cdr" true (Sh.is_suffix_of "x" (P.parse "cdr (cdr x)"));
        checkb "car" false (Sh.is_suffix_of "x" (P.parse "car x"));
        checkb "other" false (Sh.is_suffix_of "x" (P.parse "y")));
    Alcotest.test_case "head-and-args" `Quick (fun () ->
        let h, args = Sh.head_and_args (P.parse "f 1 2 3") in
        checkb "head" true (match h with Nml.Ast.Var (_, "f") -> true | _ -> false);
        checki "args" 3 (List.length args));
  ]

(* ---- liveness --------------------------------------------------------------- *)

let liveness_tests =
  [
    Alcotest.test_case "append-one-eligible" `Quick (fun () ->
        let body = def_body Ex.append_def "append" in
        let sites = L.eligible_sites body ~param:"x" in
        checki "eligible" 1 (List.length sites);
        checkb "guarded" true (List.for_all (fun s -> s.L.nil_guarded) sites));
    Alcotest.test_case "append-y-eligible-but-useless" `Quick (fun () ->
        (* y is also dead after the cons, but it is not nil-guarded by a
           test on y *)
        let body = def_body Ex.append_def "append" in
        let sites = L.eligible_sites body ~param:"y" in
        checkb "not nil-guarded" true (List.for_all (fun s -> not s.L.nil_guarded) sites));
    Alcotest.test_case "split-two-exclusive" `Quick (fun () ->
        let body = def_body Ex.split_def "split" in
        let sites =
          L.eligible_sites body ~param:"x" |> List.filter (fun s -> s.L.nil_guarded)
        in
        checki "eligible" 2 (List.length sites);
        match sites with
        | [ a; b ] -> checkb "exclusive" true (L.exclusive a b)
        | _ -> Alcotest.fail "expected two sites");
    Alcotest.test_case "ps-eligible-through-let" `Quick (fun () ->
        let body = def_body Ex.ps_def "ps" in
        let sites =
          L.eligible_sites body ~param:"x" |> List.filter (fun s -> s.L.nil_guarded)
        in
        checki "one site" 1 (List.length sites));
    Alcotest.test_case "use-after-cons-blocks" `Quick (fun () ->
        (* x is used after the cons (in the outer sum) *)
        let body = def_body "f x = sum (cons (car x) nil) + sum x" "f" in
        checki "none" 0 (List.length (L.eligible_sites body ~param:"x")));
    Alcotest.test_case "lambda-defeats" `Quick (fun () ->
        (* the inner lambda is passed as an argument, not immediately
           applied, so its body may run at any time *)
        let body =
          def_body "f x = (lambda(h). h 0) (lambda(y). cons (car x) nil)" "f"
        in
        checki "none" 0 (List.length (L.eligible_sites body ~param:"x")));
    Alcotest.test_case "immediate-application-is-let" `Quick (fun () ->
        (* an immediately applied lambda runs exactly once: orderable *)
        let body = def_body "f x = (lambda(y). cons (car x) nil) 0" "f" in
        checki "one" 1 (List.length (L.eligible_sites body ~param:"x")));
    Alcotest.test_case "let-does-not-defeat" `Quick (fun () ->
        let body = def_body "f x = let t = car x in cons t nil" "f" in
        checki "one" 1 (List.length (L.eligible_sites body ~param:"x")));
    Alcotest.test_case "shadowing-blocks" `Quick (fun () ->
        (* the cons mentions the let-bound x, not the parameter, so a
           DCONS on the parameter name would grab the wrong value *)
        let body = def_body "f x = let x = cdr x in cons (car x) nil" "f" in
        checki "none" 0 (List.length (L.eligible_sites body ~param:"x")));
    Alcotest.test_case "selection-prevents-same-path-pairs" `Quick (fun () ->
        (* both conses of [a, b] are eligible but on one path *)
        let body = def_body "f x = if null x then nil else cons 1 (cons 2 nil)" "f" in
        let sites = L.eligible_sites body ~param:"x" in
        checki "both eligible" 2 (List.length sites);
        checki "one selected" 1 (List.length (L.select sites)));
    Alcotest.test_case "cons-sites-count" `Quick (fun () ->
        checki "three" 3 (List.length (L.cons_sites (P.parse "[1, 2, 3]"))));
  ]

(* ---- reuse ------------------------------------------------------------------ *)

let reuse_tests =
  [
    Alcotest.test_case "candidates-catalogue" `Quick (fun () ->
        let src =
          Ex.wrap
            [ Ex.append_def; Ex.split_def; Ex.ps_def; Ex.rev_def; Ex.length_def; Ex.map_def ]
            "0"
        in
        let cands = R.candidates (solver src) (Surface.of_string src) in
        let names = List.map (fun c -> c.R.def) cands in
        checkb "append" true (List.mem "append" names);
        checkb "split" true (List.mem "split" names);
        checkb "ps" true (List.mem "ps" names);
        checkb "rev" true (List.mem "rev" names);
        checkb "map" true (List.mem "map" names);
        checkb "length has no cons" true (not (List.mem "length" names)));
    Alcotest.test_case "append-prime-shape" `Quick (fun () ->
        (* the paper's APPEND': DCONS x (car x) (append' (cdr x) y) *)
        let src = Ex.wrap [ Ex.append_def ] "0" in
        let t = solver src in
        let surface = Surface.of_string src in
        let c = List.hd (R.candidates t surface) in
        checki "arg" 1 c.R.arg;
        let rhs = R.primed_rhs t surface c in
        let rec has_dcons = function
          | Ir.Dcons -> true
          | Ir.App (f, a) -> has_dcons f || has_dcons a
          | Ir.Lam (_, b) -> has_dcons b
          | Ir.If (c, t, f) -> has_dcons c || has_dcons t || has_dcons f
          | Ir.Letrec (bs, b) ->
              List.exists (fun (_, r) -> has_dcons r) bs || has_dcons b
          | _ -> false
        in
        checkb "contains dcons" true (has_dcons rhs);
        let rec calls_primed = function
          | Ir.Var "append'" -> true
          | Ir.App (f, a) -> calls_primed f || calls_primed a
          | Ir.Lam (_, b) -> calls_primed b
          | Ir.If (c, t, f) -> calls_primed c || calls_primed t || calls_primed f
          | Ir.Letrec (bs, b) ->
              List.exists (fun (_, r) -> calls_primed r) bs || calls_primed b
          | _ -> false
        in
        checkb "self-call primed" true (calls_primed rhs));
    Alcotest.test_case "main-literal-redirected" `Quick (fun () ->
        let src = Ex.wrap [ Ex.append_def; Ex.rev_def ] "rev [1, 2, 3]" in
        let _, report = R.program (solver src) (Surface.of_string src) in
        checkb "redirected" true (report.R.substituted_calls >= 1));
    Alcotest.test_case "var-arg-not-redirected" `Quick (fun () ->
        (* xs is shared between two calls: neither may destroy it *)
        let src =
          Ex.wrap
            [ Ex.append_def; Ex.rev_def ]
            "let xs = [1, 2] in append (rev xs) xs"
        in
        let ir, _ = R.program (solver src) (Surface.of_string src) in
        let m = M.create ~check_arenas:true () in
        let got = M.read_value m (M.eval m ir) in
        Alcotest.check value "still correct" (Eval.run (Surface.of_string src)) got);
  ]

(* ---- end-to-end: every optimization preserves semantics ------------------- *)

let programs =
  [
    ("ps", Ex.partition_sort_program);
    ("map-pair", Ex.map_pair_program);
    ("rev", Ex.rev_program);
    ("ps-create", Ex.wrap
       [ Ex.append_def; Ex.split_def; Ex.ps_def; Ex.create_list_def ]
       "ps (create_list 12)");
    ("isort", Ex.wrap [ Ex.insert_def; Ex.isort_def ] "isort [4, 2, 9, 1]");
    ("concat", Ex.wrap [ Ex.append_def; Ex.concat_def ] "concat [[1, 2], [3], []]");
    ("take-drop", Ex.wrap [ Ex.take_def; Ex.drop_def ] "take 2 (drop 1 [1, 2, 3, 4, 5])");
    ("map-inc", Ex.wrap [ Ex.map_def ] "map (fun n -> n + 1) [1, 2, 3]");
  ]

let option_sets =
  [
    ("reuse", { T.none with T.reuse = true });
    ("stack", { T.none with T.stack = true });
    ("block", { T.none with T.block = true });
    ("all", T.all);
  ]

let preservation_tests =
  List.concat_map
    (fun (pname, src) ->
      List.map
        (fun (oname, options) ->
          Alcotest.test_case (pname ^ "-" ^ oname) `Quick (fun () ->
              let surface = Surface.of_string src in
              let expected = Eval.run surface in
              let r = T.optimize ~options surface in
              let m = M.create ~heap_size:32 ~check_arenas:true () in
              let got = M.read_value m (M.eval m r.T.ir) in
              Alcotest.check value "same result" expected got))
        option_sets)
    programs

(* ---- the optimizations actually fire --------------------------------------- *)

let run_with options src =
  let surface = Surface.of_string src in
  let r = T.optimize ~options surface in
  let m = M.create ~heap_size:32 ~check_arenas:true () in
  ignore (M.eval m r.T.ir);
  (r, M.stats m)

let effect_tests =
  [
    Alcotest.test_case "rev-reuse-fires" `Quick (fun () ->
        let _, s = run_with { T.none with T.reuse = true } Ex.rev_program in
        checkb "reuses" true (s.Stats.dcons_reuses > 0));
    Alcotest.test_case "rev-reuse-cuts-allocations" `Quick (fun () ->
        let baseline =
          let m = M.create ~heap_size:32 () in
          ignore (M.run m (Surface.of_string Ex.rev_program));
          (M.stats m).Stats.heap_allocs
        in
        let _, s = run_with { T.none with T.reuse = true } Ex.rev_program in
        checkb "fewer heap allocs" true (s.Stats.heap_allocs < baseline));
    Alcotest.test_case "map-pair-stack-fires" `Quick (fun () ->
        let r, s = run_with { T.none with T.stack = true } Ex.map_pair_program in
        (match r.T.stack_report with
        | Some rep -> checkb "annotated" true (rep.Optimize.Stackalloc.annotations <> [])
        | None -> Alcotest.fail "no stack report");
        checkb "arena cells" true (s.Stats.arena_allocs > 0);
        checki "all freed" s.Stats.arena_allocs s.Stats.arena_freed);
    Alcotest.test_case "ps-create-block-fires" `Quick (fun () ->
        let src =
          Ex.wrap
            [ Ex.append_def; Ex.split_def; Ex.ps_def; Ex.create_list_def ]
            "ps (create_list 12)"
        in
        let r, s = run_with { T.none with T.block = true } src in
        (match r.T.block_report with
        | Some rep -> checkb "annotated" true (rep.Optimize.Blockalloc.annotations <> [])
        | None -> Alcotest.fail "no block report");
        checki "block cells" 12 s.Stats.arena_allocs;
        checki "freed wholesale" 12 s.Stats.arena_freed);
    Alcotest.test_case "ps-all-no-gc" `Quick (fun () ->
        (* with reuse on, partition sort on a literal runs without any
           collection in a heap that the baseline overflows *)
        let _, s = run_with T.all Ex.partition_sort_program in
        checkb "reuse happened" true (s.Stats.dcons_reuses > 0));
  ]

(* ---- tree reuse (DNODE) -------------------------------------------------------- *)

let tree_reuse_tests =
  [
    Alcotest.test_case "mirror-gets-dnode" `Quick (fun () ->
        let src = Ex.wrap [ Ex.mirror_def ] "0" in
        let cands = R.candidates (solver src) (Surface.of_string src) in
        match cands with
        | [ c ] ->
            checkb "tree param" true (String.equal c.R.param "t");
            checki "node sites" 1 (List.length c.R.node_sites);
            checki "no cons sites" 0 (List.length c.R.sites)
        | _ -> Alcotest.fail "expected exactly one candidate");
    Alcotest.test_case "tinsert-not-a-candidate" `Quick (fun () ->
        (* its argument's nodes escape: nothing to reuse *)
        let src = Ex.wrap [ Ex.tinsert_def ] "0" in
        let cands = R.candidates (solver src) (Surface.of_string src) in
        checkb "none" true
          (List.for_all (fun c -> not (String.equal c.R.def "tinsert")) cands));
    Alcotest.test_case "mirror-dnode-executes" `Quick (fun () ->
        let src =
          Ex.wrap [ Ex.mirror_def; Ex.tinsert_def ]
            "mirror (tinsert 3 (tinsert 1 (tinsert 5 leaf)))"
        in
        let surface = Surface.of_string src in
        let expected = Eval.run surface in
        let ir, _ = R.program (solver src) surface in
        let m = M.create ~heap_size:64 ~check_arenas:true () in
        let got = M.read_value m (M.eval m ir) in
        Alcotest.check value "same" expected got;
        checkb "nodes recycled" true ((M.stats m).Stats.dcons_reuses > 0));
    Alcotest.test_case "shared-input-not-redirected" `Quick (fun () ->
        (* the variable is used twice: mirror must not destroy it *)
        let src =
          Ex.wrap
            [ Ex.mirror_def; Ex.tsum_def; Ex.tinsert_def ]
            "let t = tinsert 1 (tinsert 2 leaf) in tsum (mirror t) + tsum t"
        in
        let surface = Surface.of_string src in
        let expected = Eval.run surface in
        let ir, _ = R.program (solver src) surface in
        let m = M.create ~heap_size:64 ~check_arenas:true () in
        let got = M.read_value m (M.eval m ir) in
        Alcotest.check value "still correct" expected got);
    Alcotest.test_case "tmap-gets-dnode" `Quick (fun () ->
        let src = Ex.wrap [ Ex.tmap_def ] "0" in
        let cands = R.candidates (solver src) (Surface.of_string src) in
        checkb "tmap primed" true
          (List.exists
             (fun c -> String.equal c.R.def "tmap" && c.R.node_sites <> [])
             cands));
  ]

(* ---- monomorphize + optimize -------------------------------------------------- *)

let mono_opt_tests =
  [
    Alcotest.test_case "two-instances-both-primed" `Quick (fun () ->
        (* rev used at int list and int list list: with monomorphization
           both copies get destructive versions and the program still
           computes the same value *)
        let src =
          Ex.wrap
            [ Ex.append_def; Ex.rev_def ]
            "append (rev [1, 2]) (car (rev [[3], [4]]))"
        in
        let surface = Surface.of_string src in
        let expected = Eval.run surface in
        let r = T.optimize ~options:T.all surface in
        let m = M.create ~heap_size:32 ~check_arenas:true () in
        let got = M.read_value m (M.eval m r.T.ir) in
        Alcotest.check value "same result" expected got;
        (match r.T.reuse_report with
        | Some rr ->
            let rev_cands =
              List.filter
                (fun c -> String.length c.R.def >= 3 && String.sub c.R.def 0 3 = "rev")
                rr.R.candidates
            in
            checki "both rev copies primed" 2 (List.length rev_cands)
        | None -> Alcotest.fail "no reuse report");
        checkb "reuse executed" true ((M.stats m).Stats.dcons_reuses > 0));
    Alcotest.test_case "mono-off-keeps-program" `Quick (fun () ->
        let src = Ex.rev_program in
        let surface = Surface.of_string src in
        let r = T.optimize ~options:{ T.all with T.monomorphize = false } surface in
        let m = M.create ~heap_size:32 ~check_arenas:true () in
        let got = M.read_value m (M.eval m r.T.ir) in
        Alcotest.check value "same result" (Eval.run surface) got);
  ]

(* ---- random differential: optimized == reference --------------------------- *)

let differential =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~name:"optimized program agrees with reference" ~count:200
        (QCheck.make ~print:(fun s -> s) Gen.gen_program)
        (fun src ->
          let surface = Surface.of_string src in
          let expected = Eval.run surface in
          let r = T.optimize ~options:T.all surface in
          let m = M.create ~heap_size:8 ~check_arenas:true () in
          let got = M.read_value m (M.eval m r.T.ir) in
          Eval.equal_value expected got);
      QCheck.Test.make ~name:"optimized tree program agrees with reference" ~count:150
        (QCheck.make
           ~print:(fun (def, input) ->
             Printf.sprintf "%s on %s" def (Gen.tree_input_src input))
           QCheck.Gen.(pair Gen.gen_tree_def Gen.gen_input))
        (fun (def, input) ->
          let src =
            Ex.wrap [ def ] (Printf.sprintf "f %s" (Gen.tree_input_src input))
          in
          let surface = Surface.of_string src in
          let expected = Eval.run surface in
          let r = T.optimize ~options:T.all surface in
          let m = M.create ~heap_size:8 ~check_arenas:true () in
          let got = M.read_value m (M.eval m r.T.ir) in
          Eval.equal_value expected got);
      QCheck.Test.make ~name:"optimized pair program agrees with reference" ~count:150
        (QCheck.make
           ~print:(fun (def, input) ->
             Printf.sprintf "%s on %s" def (Gen.pair_input_src input))
           QCheck.Gen.(pair Gen.gen_pair_def Gen.gen_pair_input))
        (fun (def, input) ->
          let src =
            Ex.wrap [ def ] (Printf.sprintf "f %s" (Gen.pair_input_src input))
          in
          let surface = Surface.of_string src in
          let expected = Eval.run surface in
          let r = T.optimize ~options:T.all surface in
          let m = M.create ~heap_size:8 ~check_arenas:true () in
          let got = M.read_value m (M.eval m r.T.ir) in
          Eval.equal_value expected got);
    ]

let () =
  Alcotest.run "optimize"
    [
      ("shape", shape_tests);
      ("liveness", liveness_tests);
      ("reuse", reuse_tests);
      ("preservation", preservation_tests);
      ("effects", effect_tests);
      ("tree-reuse", tree_reuse_tests);
      ("mono-optimize", mono_opt_tests);
      ("differential", differential);
    ]
