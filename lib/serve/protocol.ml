(* The JSON-RPC-style request/response layer over [Frame], reusing the
   toolchain's own [Nml.Json] tree.

   Request:  {"id": 1, "method": "analyze",
              "params": {"path": "foo.nml", "deadline_ms": 500}}
   Success:  {"id": 1, "result": {...}}
   Failure:  {"id": 1, "error": {"code": "SRV004", "message": "...",
              "retry_after_ms": 50}}

   Server-side failures carry stable SRV0xx codes (the toolchain's
   diagnostic-code registry), distinct from per-file toolchain
   diagnostics, which travel *inside* a success result exactly as
   [nmlc batch] renders them — so a parse error in the analyzed file is
   a successful RPC whose result has code 1, and the three-way
   differential against batch output stays byte-exact. *)

module J = Nml.Json

type meth = Analyze | Vet | Lint | Status | Shutdown

let meth_name = function
  | Analyze -> "analyze"
  | Vet -> "vet"
  | Lint -> "lint"
  | Status -> "status"
  | Shutdown -> "shutdown"

let meth_of_name = function
  | "analyze" -> Some Analyze
  | "vet" -> Some Vet
  | "lint" -> Some Lint
  | "status" -> Some Status
  | "shutdown" -> Some Shutdown
  | _ -> None

type request = {
  id : J.t option;  (* Str or Num; echoed verbatim *)
  meth : meth;
  path : string option;
  source : string option;
  analysis : string option;  (* analyze only: a registered analysis name *)
  deadline_ms : int option;
  boom : bool;  (* fault-injection marker, honored only under --inject-fault *)
}

(* ---- the SRV code registry -------------------------------------------------- *)

let srv_malformed = "SRV001"
let srv_invalid = "SRV002"
let srv_oversized = "SRV003"
let srv_deadline = "SRV004"
let srv_overload = "SRV005"
let srv_crash = "SRV006"
let srv_quarantined = "SRV007"
let srv_draining = "SRV008"

let srv_codes =
  [
    (srv_malformed, "malformed frame or unparsable JSON payload");
    (srv_invalid, "invalid request: bad id, unknown method or bad params");
    (srv_oversized, "frame exceeds the server's size limit");
    (srv_deadline, "deadline exceeded; the in-flight result is discarded");
    (srv_overload, "request shed under load; retry after retry_after_ms");
    (srv_crash, "a worker crashed while processing the request");
    (srv_quarantined, "input quarantined after crashing a worker");
    (srv_draining, "server is draining and accepts no new work");
  ]

(* ---- parsing ---------------------------------------------------------------- *)

let parse payload =
  match J.parse payload with
  | exception J.Parse_error msg ->
      Error (None, srv_malformed, "unparsable JSON payload: " ^ msg)
  | json -> (
      let id =
        match J.member "id" json with
        | Some (J.Str _ as v) | Some (J.Num _ as v) -> Some v
        | _ -> None
      in
      let invalid msg = Error (id, srv_invalid, msg) in
      match J.member "method" json with
      | Some (J.Str m) -> (
          match meth_of_name m with
          | None -> invalid (Printf.sprintf "unknown method %S" m)
          | Some meth ->
              let params = J.member "params" json in
              let pmem k =
                match params with None -> None | Some p -> J.member k p
              in
              let str k =
                match pmem k with Some (J.Str s) -> Some s | _ -> None
              in
              let num k =
                match pmem k with
                | Some (J.Num f) -> Some (int_of_float f)
                | _ -> None
              in
              let boom =
                match pmem "boom" with Some (J.Bool b) -> b | _ -> false
              in
              let req =
                {
                  id;
                  meth;
                  path = str "path";
                  source = str "source";
                  analysis = str "analysis";
                  deadline_ms = num "deadline_ms";
                  boom;
                }
              in
              if
                (meth = Analyze || meth = Vet || meth = Lint)
                && req.path = None && req.source = None
              then invalid "params must carry a \"path\" or a \"source\""
              else Ok req)
      | _ -> invalid "missing \"method\"")

(* ---- rendering --------------------------------------------------------------- *)

let with_id id fields =
  match id with None -> fields | Some id -> ("id", id) :: fields

let ok ?id result = J.to_string (J.Obj (with_id id [ ("result", result) ]))

let error ?id ?retry_after_ms ~code message =
  let retry =
    match retry_after_ms with
    | None -> []
    | Some ms -> [ ("retry_after_ms", J.int ms) ]
  in
  J.to_string
    (J.Obj
       (with_id id
          [
            ( "error",
              J.Obj
                ([ ("code", J.Str code); ("message", J.Str message) ] @ retry) );
          ]))
