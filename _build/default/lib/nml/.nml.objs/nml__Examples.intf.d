lib/nml/examples.mli:
