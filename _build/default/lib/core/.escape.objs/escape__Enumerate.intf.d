lib/core/enumerate.mli: Besc Nml
