lib/core/sharing.ml: Analysis Fixpoint Format List Nml
