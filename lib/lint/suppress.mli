(** Inline suppression comments.

    {v
      (* nmlc-disable *)                   suppress every rule
      (* nmlc-disable LINT001 *)           one rule
      (* nmlc-disable LINT001, LINT005 *)  several
    v}

    A directive suppresses findings that {e start} on the comment's own
    starting line (trailing position) or on the line right after the
    comment ends (preceding position).  Only block comments are scanned
    ({!Nml.Lexer.comments}), so directives obey the language's comment
    nesting. *)

type entry = { start_line : int; end_line : int; codes : string list }
(** [codes = []] means every code. *)

val parse_body : string -> string list option
(** Recognizes a directive in a comment body: [None] when the comment is
    not a directive, [Some codes] otherwise (codes upper-cased, [[]] for
    a bare [nmlc-disable]). *)

val scan : ?file:string -> string -> entry list
(** All directives of a source text.
    @raise Nml.Lexer.Error on malformed input. *)

val matches : entry -> Nml.Diagnostic.t -> bool

val apply : entry list -> Nml.Diagnostic.t list -> Nml.Diagnostic.t list * int
(** Partitions findings into (kept, number suppressed). *)
