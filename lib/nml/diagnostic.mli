(** Structured, source-located diagnostics.

    Every user-facing complaint of the toolchain — parse and type errors
    as well as the annotation verifier's findings — is a value of this
    type: a severity, a stable machine-readable code (["TYPE001"],
    ["VET003"], ...), a source {!Loc.t} span, a message and optional
    secondary notes.  Two renderers are provided: a human one
    (["file:1.2-1.9: error[VET003]: ..."]) and a JSON one for tooling
    ([--format json]). *)

type severity = Error | Warning | Note

type t = {
  severity : severity;
  code : string;  (** stable identifier, e.g. ["VET003"] *)
  loc : Loc.t;
  message : string;
  notes : (Loc.t * string) list;  (** secondary spans, rendered indented *)
}

val make : severity -> ?notes:(Loc.t * string) list -> code:string -> Loc.t -> string -> t
val error : ?notes:(Loc.t * string) list -> code:string -> Loc.t -> string -> t
val warning : ?notes:(Loc.t * string) list -> code:string -> Loc.t -> string -> t

val errorf :
  ?notes:(Loc.t * string) list ->
  code:string ->
  Loc.t ->
  ('a, Format.formatter, unit, t) format4 ->
  'a
(** [errorf ~code loc fmt ...] builds an error with a formatted message. *)

val severity_name : severity -> string
(** ["error"], ["warning"], ["note"]. *)

val severity_of_name : string -> severity option
(** Inverse of {!severity_name}. *)

val compare : t -> t -> int
(** Orders by source position, then code — the rendering order. *)

val pp : Format.formatter -> t -> unit
(** One diagnostic in the human format, notes included. *)

val to_json : t -> Json.t

val of_json : Json.t -> t option
(** Inverse of {!to_json}; [None] on any shape mismatch.  Persisted
    diagnostics (the lint findings cache) round-trip exactly:
    [of_json (to_json d) = Some d]. *)

val to_sarif :
  ?tool_name:string ->
  ?tool_version:string ->
  ?rules:(string * string) list ->
  t list ->
  Json.t
(** The diagnostics as a SARIF 2.1.0 document (one run, one driver).
    [rules] supplies the driver's rule metadata as [(id, description)]
    pairs; without it the distinct codes of the diagnostics are listed
    with no descriptions.  Severities map to the SARIF levels [error],
    [warning] and [note]. *)

type format = Human | Json | Sarif

val render : format -> Format.formatter -> t list -> unit
(** All diagnostics, sorted with {!compare}.  The JSON form is a single
    document [{"schema": "nmlc/diagnostics-v1", "diagnostics": [...]}];
    the SARIF form is {!to_sarif} with default tool metadata. *)

val has_errors : t list -> bool
