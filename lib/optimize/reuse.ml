module A = Nml.Ast
module Ty = Nml.Ty
module Ir = Runtime.Ir
module Fix = Escape.Fixpoint
module An = Escape.Analysis
module Sh = Escape.Sharing
module Alias = Framework.Alias

type candidate = {
  def : string;
  primed : string;
  arg : int;
  param : string;
  loc : Nml.Loc.t;  (** surface position of the reused parameter's binder *)
  sites : Liveness.site list;  (** cons sites rewritten to [DCONS] *)
  node_sites : Liveness.site list;  (** node sites rewritten to [DNODE] *)
}

type report = {
  candidates : candidate list;
  substituted_calls : int;
  alias_licensed : int;
      (* redirected call sites where only the sharing analysis (not the
         Theorem-2 freshness recursion) proved the argument unshared *)
}

(* Location of the [i]-th (1-based) leading lambda binder of a
   definition's right-hand side — where the reused parameter is bound in
   the surface program (locations survive monomorphization). *)
let param_loc rhs i =
  let rec walk j = function
    | A.Lam (l, _, b) -> if j = i then l else walk (j + 1) b
    | e -> A.loc e
  in
  walk 1 rhs

let candidates t (surface : Nml.Surface.t) =
  List.filter_map
    (fun (name, rhs) ->
      let params, body = Shape.strip_lams rhs in
      let n = List.length params in
      if n = 0 then None
      else
        let inst = Fix.instance_ty t name in
        if Ty.arity inst < n then None
        else
          let arg_tys = Ty.arg_tys inst n in
          let rec pick i = function
            | [] -> None
            | ty :: rest ->
                let next () = pick (i + 1) rest in
                if Ty.spines ty < 1 then next ()
                else
                  let v = An.global ~arity:n t name ~arg:i in
                  if An.non_escaping_top_spines v < 1 then next ()
                  else
                    let param = List.nth params (i - 1) in
                    let sites, node_sites =
                      match Ty.repr ty with
                      | Ty.List _ ->
                          ( Liveness.eligible_sites body ~param
                            |> List.filter (fun s -> s.Liveness.nil_guarded)
                            |> Liveness.select,
                            [] )
                      | Ty.Tree _ ->
                          ( [],
                            Liveness.eligible_node_sites body ~param
                            |> List.filter (fun s -> s.Liveness.nil_guarded)
                            |> Liveness.select )
                      | _ -> ([], [])
                    in
                    if sites = [] && node_sites = [] then next ()
                    else
                      Some
                        {
                          def = name;
                          primed = name ^ "'";
                          arg = i;
                          param;
                          loc = param_loc rhs i;
                          sites;
                          node_sites;
                        }
          in
          pick 1 arg_tys)
    surface.Nml.Surface.defs

(* ---- freshness ------------------------------------------------------------ *)

(* [fresh_depth env e]: how many top spines of [e]'s value are certainly
   fresh and unshared — Theorem 2, clause 1, applied syntactically:
   literals are fresh to their literal depth; a definition call is fresh
   to the depth the sharing analysis derives from its arguments'
   freshness; [car] strips a level, [cdr] preserves the remaining ones;
   a let-bound variable inherits the freshness of its right-hand side
   (our uses project disjoint substructures, as in the paper's PS''). *)
let base_of cands h =
  match List.find_opt (fun c -> String.equal c.primed h) cands with
  | Some c -> c.def
  | None -> h

let fresh_depth t (surface : Nml.Surface.t) cands =
  let base_of = base_of cands in
  let rec depth env e =
    if Shape.is_literal_list e then
      match e with
      | A.Const (_, A.Cnil) -> max_int (* nil has no cells to share *)
      | _ -> Shape.literal_depth e
    else
      match e with
      | A.Const (_, A.Cleaf) -> max_int (* a leaf has no cells to share *)
      | A.Var (_, v) -> ( match List.assoc_opt v env with Some d -> d | None -> 0)
      | A.App (_, A.Prim (_, (A.Car | A.Label)), e') -> max 0 (depth env e' - 1)
      | A.App (_, A.Prim (_, (A.Cdr | A.Left | A.Right)), e') -> depth env e'
      | A.App (_, A.App (_, A.App (_, A.Prim (_, A.Node), l), x), r) ->
          (* fresh node cell; level 1 holds as far as both children are
             fresh, deeper levels as far as the label is *)
          min (min (depth env l) (depth env r)) (1 + depth env x)
      | _ -> (
          match Shape.head_and_args e with
          | A.Var (_, h), (_ :: _ as args) -> (
              let g = base_of h in
              if not (List.mem_assoc g surface.Nml.Surface.defs) then 0
              else
                Sh.call_fresh_depth t g
                  ~args_unshared:(List.map (depth env) args))
          | _ -> 0)
  in
  depth

(* ---- alias-informed freshness ---------------------------------------------- *)

(* The call clause of {!Framework.Alias.Local.depth}: resolve a head name
   to the {b max} of the Theorem-2 spine arithmetic and the sharing
   summaries' all-or-nothing rule (every argument unshared-into-result or
   itself fully fresh ⇒ the result is fresh to its full spine count).
   The max is sound because each side is an independent lower bound on
   the certainly-fresh depth. *)
let alias_resolve t (surface : Nml.Surface.t) cands at =
  let base_of = base_of cands in
  fun h ->
    let g = base_of h in
    if not (List.mem_assoc g surface.Nml.Surface.defs) then None
    else
      Some
        (fun args_fresh ->
          let m = List.length args_fresh in
          let t2 = Sh.call_fresh_depth t g ~args_unshared:args_fresh in
          let by_alias =
            match
              let ty = Alias.Solver.instance_ty at g in
              if Ty.arity ty <> m then 0
              else
                let verdicts =
                  List.init m (fun i -> Alias.arg_verdict at g ~arg:(i + 1))
                in
                Alias.Local.call_unshared ~verdicts
                  ~arg_spines:(List.map Ty.spines (Ty.arg_tys ty m))
                  ~result_spines:(Ty.spines (Ty.result_ty ty m))
                  ~args_fresh
            with
            | d -> d
            | exception (Nml.Infer.Error _ | Invalid_argument _ | Not_found) -> 0
          in
          max t2 by_alias)

(* ---- occurrence linearity --------------------------------------------------- *)

(* Occurrence paths of [x] in [e]: for each free occurrence, the chain of
   car/cdr projections immediately wrapping it, innermost first; a bare
   occurrence has the empty path.  Two paths denote disjoint substructures
   iff neither is a prefix of the other ([car s] and [car (cdr s)] are
   disjoint, [s] overlaps everything). *)
let occurrence_paths x e =
  let paths = ref [] in
  let rec go ctx e =
    match e with
    | A.Var (_, v) -> if String.equal v x then paths := ctx :: !paths
    | A.App (_, A.Prim (_, ((A.Car | A.Cdr | A.Label | A.Left | A.Right) as p)), e') ->
        go (p :: ctx) e'
    | A.App (_, f, a) ->
        go [] f;
        go [] a
    | A.Lam (_, p, b) -> if not (String.equal p x) then go [] b
    | A.If (_, c, t, f) ->
        go [] c;
        go [] t;
        go [] f
    | A.Letrec (_, bs, body) ->
        if not (List.exists (fun (p, _) -> String.equal p x) bs) then begin
          List.iter (fun (_, b) -> go [] b) bs;
          go [] body
        end
    | A.Const _ | A.Prim _ -> ()
  in
  go [] e;
  !paths

let rec is_prefix p q =
  match (p, q) with
  | [], _ -> true
  | _, [] -> false
  | a :: p', b :: q' -> a = b && is_prefix p' q'

let pairwise_disjoint paths =
  let rec check = function
    | [] -> true
    | p :: rest ->
        List.for_all (fun q -> (not (is_prefix p q)) && not (is_prefix q p)) rest
        && check rest
  in
  check paths

(* ---- call-site redirection ------------------------------------------------ *)

(* The projection path of a suffix expression ([x], [cdr x], [left x],
   ...), innermost projection first. *)
let rec suffix_path x = function
  | A.Var (_, v) when String.equal v x -> Some []
  | A.App (_, A.Prim (_, ((A.Cdr | A.Left | A.Right) as p)), e) ->
      (* innermost projection first, matching {!occurrence_paths} *)
      Option.map (fun path -> path @ [ p ]) (suffix_path x e)
  | _ -> None

let overlaps path others =
  List.exists (fun q -> is_prefix path q || is_prefix q path) others

(* Renames call heads [g ...] to [g' ...] when the reused argument is
   certainly fresh-unshared, or — inside g's own primed body — a
   cdr/left/right-suffix of the reused parameter that no later-evaluated
   occurrence of the parameter overlaps.  The latter condition is the
   linearity side of the paper's "no further use": a primed call destroys
   its argument's cells when it runs, so nothing evaluated afterwards in
   the same activation may read that substructure (in
   [node (f (right t)) 0 (f (right t))] only the second call may be
   redirected). *)
let subst_calls ?alias t surface cands ~self ~count ~alias_count e =
  let t2_depth = fresh_depth t surface cands in
  (* certainly-fresh depth: the Theorem-2 recursion, raised by the
     flow-sensitive sharing judgment when a solver is supplied — the
     latter additionally joins [if] branches, credits a just-built
     cons/node cell with its own fresh level, and carries let-bound
     freshness through the abstract heap *)
  let fresh_depth =
    match alias with
    | None -> t2_depth
    | Some at ->
        let resolve = alias_resolve t surface cands at in
        fun env e -> max (t2_depth env e) (Alias.Local.depth ~resolve env e)
  in
  (* projection paths of the reused parameter occurring in [e] *)
  let self_paths e =
    match self with Some (_, sparam) -> occurrence_paths sparam e | None -> []
  in
  (* [tenv] carries let-bound depths as the pure Theorem-2 recursion
     would derive them, [env] the alias-joined ones — so [alias_count]
     reports exactly the sites the baseline could not have licensed
     (without the alias solver the two environments coincide) *)
  let rec go tenv env ~k e =
    match e with
    | A.Const _ | A.Prim _ | A.Var _ -> e
    | A.Lam (l, x, b) ->
        A.Lam (l, x, go (List.remove_assoc x tenv) (List.remove_assoc x env) ~k:[] b)
    | A.If (l, c, t', f) ->
        let kc = self_paths t' @ self_paths f @ k in
        A.If (l, go tenv env ~k:kc c, go tenv env ~k t', go tenv env ~k f)
    | A.Letrec (l, bs, body) ->
        let drop acc = List.fold_left (fun acc (x, _) -> List.remove_assoc x acc) acc bs in
        let tenv' = drop tenv and env' = drop env in
        let rec conv_bs = function
          | [] -> []
          | (x, b) :: rest ->
              let later =
                List.concat_map (fun (_, b') -> self_paths b') rest
                @ self_paths body @ k
              in
              (x, go tenv' env' ~k:later b) :: conv_bs rest
        in
        let bs' = conv_bs bs in
        A.Letrec (l, bs', go tenv' env' ~k body)
    | A.App (l, A.Lam (ll, x, b), rhs) ->
        (* let sugar: the variable inherits the right-hand side's
           freshness, but only when its occurrences project pairwise
           disjoint substructures — otherwise one occurrence could
           destroy cells another still reads *)
        let rhs' = go tenv env ~k:(self_paths b @ k) rhs in
        let disjoint = pairwise_disjoint (occurrence_paths x b) in
        let d_t2 = if disjoint then t2_depth tenv rhs' else 0 in
        let d = if disjoint then fresh_depth env rhs' else 0 in
        let tenv' = (x, d_t2) :: List.remove_assoc x tenv in
        let env' = (x, d) :: List.remove_assoc x env in
        A.App (l, A.Lam (ll, x, go tenv' env' ~k b), rhs')
    | A.App (_, _, _) -> (
        let head, args = Shape.head_and_args e in
        (* argument i's continuation: the later arguments, then whatever
           follows the whole application *)
        let rec conv_args = function
          | [] -> []
          | a :: rest ->
              let later = List.concat_map self_paths rest @ k in
              go tenv env ~k:later a :: conv_args rest
        in
        let args' = conv_args args in
        let rebuild head' = A.app head' args' in
        match head with
        | A.Var (hl, g) -> (
            match List.find_opt (fun c -> String.equal c.def g) cands with
            | Some c when List.length args' >= c.arg ->
                let actual = List.nth args' (c.arg - 1) in
                let self_ok =
                  match self with
                  | Some (sname, sparam) when String.equal sname g -> (
                      match suffix_path sparam actual with
                      | Some path -> not (overlaps path k)
                      | None -> false)
                  | _ -> false
                in
                if self_ok || fresh_depth env actual >= 1 then begin
                  incr count;
                  if (not self_ok) && t2_depth tenv actual < 1 then
                    incr alias_count;
                  rebuild (A.Var (hl, c.primed))
                end
                else rebuild head
            | _ -> rebuild head)
        | _ -> rebuild (go tenv env ~k head))
  in
  go [] [] ~k:[] e

(* ---- the DCONS rewrite ----------------------------------------------------- *)

(* Mirrors the traversal (and cons/node numbering) of
   {!Liveness.collect}. *)
let rewrite_to_ir ~param ~selected ~selected_nodes body =
  let counter = ref 0 in
  let node_counter = ref 0 in
  let selected_ids = List.map (fun s -> s.Liveness.id) selected in
  let selected_node_ids = List.map (fun s -> s.Liveness.id) selected_nodes in
  let rec go e =
    match e with
    | A.Const (_, c) -> Ir.Const c
    | A.Prim (_, p) -> Ir.Prim p
    | A.Var (_, x) -> Ir.Var x
    | A.App (_, A.App (_, A.Prim (_, A.Cons), e1), e2) ->
        let id = !counter in
        incr counter;
        let e1' = go e1 in
        let e2' = go e2 in
        if List.mem id selected_ids then
          Ir.App (Ir.App (Ir.App (Ir.Dcons, Ir.Var param), e1'), e2')
        else Ir.App (Ir.App (Ir.Prim A.Cons, e1'), e2')
    | A.App (_, A.App (_, A.App (_, A.Prim (_, A.Node), e1), e2), e3) ->
        let id = !node_counter in
        incr node_counter;
        let e1' = go e1 in
        let e2' = go e2 in
        let e3' = go e3 in
        if List.mem id selected_node_ids then
          Ir.App (Ir.App (Ir.App (Ir.App (Ir.Dnode, Ir.Var param), e1'), e2'), e3')
        else Ir.App (Ir.App (Ir.App (Ir.Prim A.Node, e1'), e2'), e3')
    | A.App (_, f, a) ->
        (* children are numbered in the same order as Liveness.collect
           visits them, so evaluation order must be made explicit *)
        let f' = go f in
        let a' = go a in
        Ir.App (f', a')
    | A.Lam (_, x, b) -> Ir.Lam (x, go b)
    | A.If (_, c, t, f) ->
        let c' = go c in
        let t' = go t in
        let f' = go f in
        Ir.If (c', t', f')
    | A.Letrec (_, bs, body) ->
        let bs' =
          List.fold_left (fun acc (x, b) -> (x, go b) :: acc) [] bs |> List.rev
        in
        let body' = go body in
        Ir.Letrec (bs', body')
  in
  go body

let primed_rhs_with ?alias t surface cands ~count ~alias_count c =
  let rhs = Nml.Surface.def surface c.def in
  let params, body = Shape.strip_lams rhs in
  let body' =
    subst_calls ?alias t surface cands ~self:(Some (c.def, c.param)) ~count
      ~alias_count body
  in
  let ir_body =
    rewrite_to_ir ~param:c.param ~selected:c.sites ~selected_nodes:c.node_sites body'
  in
  List.fold_right (fun x acc -> Ir.Lam (x, acc)) params ir_body

let primed_rhs ?alias t surface c =
  primed_rhs_with ?alias t surface (candidates t surface) ~count:(ref 0)
    ~alias_count:(ref 0) c

let apply ?alias t (surface : Nml.Surface.t) =
  let cands = candidates t surface in
  let count = ref 0 in
  let alias_count = ref 0 in
  let primed =
    List.map
      (fun c -> (c.primed, primed_rhs_with ?alias t surface cands ~count ~alias_count c))
      cands
  in
  let main' =
    subst_calls ?alias t surface cands ~self:None ~count ~alias_count
      surface.Nml.Surface.main
  in
  ( primed,
    main',
    { candidates = cands; substituted_calls = !count; alias_licensed = !alias_count } )

let program ?alias t (surface : Nml.Surface.t) =
  let primed, main', report = apply ?alias t surface in
  let originals = List.map (fun (n, rhs) -> (n, Ir.of_ast rhs)) surface.Nml.Surface.defs in
  let prog =
    match originals @ primed with
    | [] -> Ir.of_ast main'
    | defs -> Ir.Letrec (defs, Ir.of_ast main')
  in
  (prog, report)
