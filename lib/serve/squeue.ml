(* A bounded, load-shedding job queue shared between the connection
   threads (producers) and the worker domains (consumers).

   Capacity is a hard bound: pushing onto a full queue evicts the
   *oldest* queued element and hands it back to the caller ([`Shed]),
   who rejects it with a retry-after hint — the newest request is the
   one most likely to still have a waiting client, and memory stays
   bounded no matter how fast requests arrive.  [close] starts the
   drain: pushes are refused, consumers finish what is queued and then
   receive [None]. *)

type 'a t = {
  m : Mutex.t;
  nonempty : Condition.t;
  q : 'a Queue.t;
  cap : int;
  mutable closed : bool;
}

let create ~cap =
  {
    m = Mutex.create ();
    nonempty = Condition.create ();
    q = Queue.create ();
    cap = max 1 cap;
    closed = false;
  }

let with_lock t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let push t x =
  with_lock t @@ fun () ->
  if t.closed then `Closed
  else begin
    let shed = if Queue.length t.q >= t.cap then Some (Queue.pop t.q) else None in
    Queue.push x t.q;
    Condition.signal t.nonempty;
    match shed with None -> `Ok | Some old -> `Shed old
  end

let pop t =
  with_lock t @@ fun () ->
  let rec wait () =
    if not (Queue.is_empty t.q) then Some (Queue.pop t.q)
    else if t.closed then None
    else begin
      Condition.wait t.nonempty t.m;
      wait ()
    end
  in
  wait ()

let close t =
  with_lock t @@ fun () ->
  t.closed <- true;
  Condition.broadcast t.nonempty

let length t = with_lock t @@ fun () -> Queue.length t.q
