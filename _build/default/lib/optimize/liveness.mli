(** Last-use analysis for the in-place reuse transformation.

    The paper's side condition for rewriting [(cons e1 e2)] into
    [(DCONS x e1 e2)] is that {e there is no further use of the parameter
    [x] after the evaluation of the cons} (section 6).  Evaluation order
    in this implementation is left to right: in [e1 e2] the function part
    is evaluated first, in a conditional the condition first and then one
    branch, in a [letrec] the right-hand sides in order and then the
    body.  The arguments of the cons itself are evaluated {e before} the
    allocation, so uses of [x] inside them are harmless.

    A cons site is {e eligible} for a parameter [x] when no free
    occurrence of [x] can be evaluated after it.  Occurrences of [x]
    under an inner [lambda] defeat the analysis (the closure may run at
    any later time), in which case no site is eligible.

    Two eligible sites may both be rewritten only if they cannot both
    execute in one activation — i.e. they sit in different branches of
    some conditional.  {!selected_sites} returns a maximal prefix-greedy
    set of pairwise-exclusive eligible sites. *)

type site = {
  id : int;  (** index of the cons application in traversal (pre-)order *)
  branch : (int * bool) list;
      (** path of (conditional id, then-branch?) choices enclosing the
          site, outermost first *)
  nil_guarded : bool;
      (** the site sits in the else-branch of a test [null param], so the
          parameter is certainly a cons cell there — a precondition for
          [DCONS param] (only meaningful when a [param] was supplied) *)
}

val cons_sites : Nml.Ast.expr -> site list
(** All saturated cons applications [(cons e1 e2)] in the expression, in
    traversal order. *)

val eligible_sites : Nml.Ast.expr -> param:string -> site list
(** The cons sites after which [param] is dead. *)

val node_sites : Nml.Ast.expr -> site list
(** All saturated tree-node applications [(node l x r)], numbered
    independently of cons sites; [nil_guarded] then means "inside the
    else branch of [isleaf param]". *)

val eligible_node_sites : Nml.Ast.expr -> param:string -> site list
(** The node sites after which [param] is dead. *)

val select : site list -> site list
(** Greedy maximal pairwise-exclusive subset, preferring earlier sites. *)

val selected_sites : Nml.Ast.expr -> param:string -> site list
(** [select (eligible_sites e ~param)]. *)

val exclusive : site -> site -> bool
(** Whether two sites are in different branches of a common conditional
    (so at most one of them executes per activation). *)
