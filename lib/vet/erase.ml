module A = Nml.Ast
module Ir = Runtime.Ir

let base ~defs n =
  if List.mem n defs then n
  else
    let strip suffix =
      if String.length n > String.length suffix
         && String.sub n (String.length n - String.length suffix) (String.length suffix)
            = suffix
      then
        let b = String.sub n 0 (String.length n - String.length suffix) in
        if List.mem b defs then Some b else None
      else None
    in
    match strip "'" with
    | Some b -> b
    | None -> ( match strip "_blk" with Some b -> b | None -> n)

let expr ~defs e =
  let l = Nml.Loc.dummy in
  let rec go e =
    match e with
    (* saturated destructive sites: forget the recycled cell *)
    | Ir.App (Ir.App (Ir.App (Ir.Dcons, _src), h), t) ->
        A.App (l, A.App (l, A.Prim (l, A.Cons), go h), go t)
    | Ir.App (Ir.App (Ir.App (Ir.App (Ir.Dnode, _src), lt), x), rt) ->
        A.App (l, A.App (l, A.App (l, A.Prim (l, A.Node), go lt), go x), go rt)
    (* an unsaturated dcons/dnode still erases to the allocating primitive *)
    | Ir.Dcons -> A.Lam (l, "!c", A.Prim (l, A.Cons))
    | Ir.Dnode -> A.Lam (l, "!n", A.Prim (l, A.Node))
    | Ir.Const c -> A.Const (l, c)
    | Ir.Prim p -> A.Prim (l, p)
    | Ir.ConsAt _ -> A.Prim (l, A.Cons)
    | Ir.NodeAt _ -> A.Prim (l, A.Node)
    | Ir.Var x -> A.Var (l, base ~defs x)
    | Ir.App (f, a) -> A.App (l, go f, go a)
    | Ir.Lam (x, b) -> A.Lam (l, x, go b)
    | Ir.If (c, t, f) -> A.If (l, go c, go t, go f)
    | Ir.Letrec (bs, b) -> A.Letrec (l, List.map (fun (x, r) -> (x, go r)) bs, go b)
    | Ir.WithArena (_, _, b) -> go b
  in
  go e
