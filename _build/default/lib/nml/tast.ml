type texpr = { desc : desc; ty : Ty.t; loc : Loc.t }

and desc =
  | Const of Ast.const
  | Prim of Ast.prim
  | Var of string
  | App of texpr * texpr
  | Lam of string * texpr
  | If of texpr * texpr * texpr
  | Letrec of (string * texpr) list * texpr

let param_ty e =
  match (e.desc, Ty.repr e.ty) with
  | Lam _, Ty.Arrow (a, _) -> a
  | Lam _, _ -> invalid_arg "Tast.param_ty: lambda with non-arrow type"
  | _ -> invalid_arg "Tast.param_ty: not a lambda"

let car_spines e =
  match (e.desc, Ty.repr e.ty) with
  | Prim (Ast.Car | Ast.Cdr | Ast.Label | Ast.Left | Ast.Right), Ty.Arrow (arg, _) ->
      let s = Ty.spines arg in
      if s < 1 then invalid_arg "Tast.car_spines: argument type is not a list or tree"
      else s
  | Prim (Ast.Car | Ast.Cdr | Ast.Label | Ast.Left | Ast.Right), _ ->
      invalid_arg "Tast.car_spines: primitive with non-arrow type"
  | _ -> invalid_arg "Tast.car_spines: not a projection occurrence"

let rec erase e =
  match e.desc with
  | Const c -> Ast.Const (e.loc, c)
  | Prim p -> Ast.Prim (e.loc, p)
  | Var x -> Ast.Var (e.loc, x)
  | App (f, a) -> Ast.App (e.loc, erase f, erase a)
  | Lam (x, b) -> Ast.Lam (e.loc, x, erase b)
  | If (c, t, f) -> Ast.If (e.loc, erase c, erase t, erase f)
  | Letrec (bs, body) ->
      Ast.Letrec (e.loc, List.map (fun (x, b) -> (x, erase b)) bs, erase body)

let rec default_ty t =
  match Ty.repr t with
  | Ty.Int | Ty.Bool -> ()
  | Ty.Var ({ contents = Ty.Unbound _ } as r) -> r := Ty.Link Ty.Int
  | Ty.Var { contents = Ty.Link _ } -> assert false
  | Ty.List e | Ty.Tree e -> default_ty e
  | Ty.Prod (a, b) | Ty.Arrow (a, b) ->
      default_ty a;
      default_ty b

let rec default_ground e =
  default_ty e.ty;
  match e.desc with
  | Const _ | Prim _ | Var _ -> ()
  | App (f, a) ->
      default_ground f;
      default_ground a
  | Lam (_, b) -> default_ground b
  | If (c, t, f) ->
      default_ground c;
      default_ground t;
      default_ground f
  | Letrec (bs, body) ->
      List.iter (fun (_, b) -> default_ground b) bs;
      default_ground body

let rec iter_tys f e =
  f e.ty;
  match e.desc with
  | Const _ | Prim _ | Var _ -> ()
  | App (g, a) ->
      iter_tys f g;
      iter_tys f a
  | Lam (_, b) -> iter_tys f b
  | If (c, t, fa) ->
      iter_tys f c;
      iter_tys f t;
      iter_tys f fa
  | Letrec (bs, body) ->
      List.iter (fun (_, b) -> iter_tys f b) bs;
      iter_tys f body

let free_vars e = Ast.free_vars (erase e)
let size e = Ast.size (erase e)
let pp ppf e = Pretty.pp ppf (erase e)
let pp_typed ppf e = Format.fprintf ppf "@[<hov 2>%a@ : %a@]" pp e Ty.pp e.ty
