lib/core/analysis.mli: Besc Dvalue Fixpoint Format Nml
