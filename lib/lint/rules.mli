(** The shipped lint rules.

    {ul
    {- [LINT001] {e missed-reuse} (warning): the escape and sharing
       analyses license in-place reuse of a parameter's top spine, but
       {!Optimize.Reuse} produced no primed version — every constructor
       site either precedes a later use of the parameter or is not
       nil-guarded.}
    {- [LINT002] {e heap-doomed-result} (note): Theorem 2 proves zero
       unshared top spines for the definition's result, at every call
       site, so no storage optimization can ever target it.}
    {- [LINT003] {e instance-invariance} (error): Theorem-1 self-audit —
       the solver's verdicts at the monomorphic instances demanded by the
       program disagree on [s_i - k_i].  Firing means the solver (or a
       corrupted cache) is unsound.}
    {- [LINT004] {e dead-spine} (warning): a parameter whose spines
       escape nowhere ([<0,0>]) and that the function never actually
       uses (only forwards); see {!dead_params}.}
    {- [LINT005] {e unused-binding} (warning): a [lambda]/[letrec]/[let]
       binding never used.  Binders starting with [_] are exempt.}
    {- [LINT006] {e unreachable-branch} (warning): a conditional branch
       under a constant [true]/[false] condition.}} *)

val all : Rule.t list
(** In code order. *)

val dead_params : Nml.Surface.t -> (string * int) list
(** [(definition, 1-based parameter)] pairs that occur in their body but
    are never truly used: every occurrence is a whole-argument
    pass-through into a parameter position that is itself dead (least
    fixpoint over the pass-through edges, so forwarding through mutual
    recursion stays dead).  Underscore-prefixed binders are exempt. *)

val invariant_rows : (bool * int) list -> bool
(** The Theorem-1 comparison on [(escapes, kept top spines)] rows, one
    per instance: escape verdicts must agree, and whenever something
    escapes the kept counts must agree too (when nothing escapes the
    kept count is the instance's own [s_i], which may legitimately
    vary).  Exposed for direct corruption tests. *)
