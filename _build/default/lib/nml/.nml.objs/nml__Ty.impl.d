lib/nml/ty.ml: Char Format Hashtbl Printf
