lib/optimize/reuse.mli: Escape Liveness Nml Runtime
