(** Stack allocation of list spines (section 6, appendix A.3.1).

    For a call [f e1 ... en] in the main expression whose [j]-th argument
    is a list literal, the local escape test tells how many of its top
    spines cannot escape the call; those spines can live in [f]'s
    activation record.  The transformation wraps the call in
    [WithArena (Region, ...)] and redirects the literal's spine conses
    (to the proven depth) into the arena: the machine frees them all,
    without garbage collection work, when the call returns. *)

type annotation = {
  func : string;  (** callee *)
  arg : int;  (** annotated argument position *)
  levels : int;  (** how many top spine levels go to the region *)
  arena : int;  (** static arena id *)
  loc : Nml.Loc.t;  (** surface position of the annotated literal *)
}

type report = { annotations : annotation list }

val annotate : Escape.Fixpoint.t -> Nml.Surface.t -> Runtime.Ir.expr * report
(** The program with definitions unchanged and the main expression's
    eligible calls wrapped in regions. *)
