(* Benchmark harness: regenerates every figure and table of the paper's
   evaluation material (the worked appendix and the claimed storage
   optimizations), plus the cost and ablation studies DESIGN.md calls
   out.  One experiment per table; run all with

     dune exec bench/main.exe

   or a subset with  dune exec bench/main.exe -- T1 T4 F1.
   EXPERIMENTS.md records paper-vs-measured for each experiment. *)

module An = Escape.Analysis
module B = Escape.Besc
module Fix = Escape.Fixpoint
module Sh = Escape.Sharing
module T = Optimize.Transform
module M = Runtime.Machine
module Stats = Runtime.Stats
module Ex = Nml.Examples
module Surface = Nml.Surface
module Ty = Nml.Ty

(* ---- small infrastructure -------------------------------------------------- *)

let section id title =
  Printf.printf "\n================ %s: %s ================\n" id title

let print_table header rows =
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let print_row cells =
    List.iteri (fun i c -> Printf.printf "%-*s  " (List.nth widths i) c) cells;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

(* Wall time per run (nanoseconds) via bechamel's OLS estimate. *)
let measure_ns name fn =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage fn) in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] test in
  let res =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  match Hashtbl.fold (fun _ v acc -> v :: acc) res [] with
  | [ v ] -> ( match Analyze.OLS.estimates v with Some [ e ] -> e | _ -> Float.nan)
  | _ -> Float.nan

let ms ns = Printf.sprintf "%.3f" (ns /. 1e6)
let us ns = Printf.sprintf "%.1f" (ns /. 1e3)

(* Deterministic pseudo-random integers (no wall-clock seeds: bench output
   is reproducible). *)
let lcg_list ~seed n =
  let state = ref seed in
  List.init n (fun _ ->
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      !state mod 1000)

let int_list_src xs = "[" ^ String.concat ", " (List.map string_of_int xs) ^ "]"

let run_machine ?(heap = 4096) ir =
  let m = M.create ~heap_size:heap ~check_arenas:true () in
  let w = M.eval m ir in
  ignore (M.read_value m w);
  M.stats m

let optimized options surface = (T.optimize ~options surface).T.ir

(* ---- F1: Figure 1, spines of a list ---------------------------------------- *)

let f1 () =
  section "F1" "Figure 1 -- spines of a list";
  let v = Nml.Eval.run (Surface.of_string "[[1,2],[3,4],[5,6]]") in
  Format.printf "%a@." Escape.Report.spines_figure v;
  Printf.printf
    "paper: the outer chain is the top 1st / bottom 2nd spine; the element\n\
     chains are the top 2nd / bottom 1st spines.\n"

(* ---- T1: appendix A.1, global escape analysis ------------------------------- *)

let t1 () =
  section "T1" "Appendix A.1 -- global escape tests for APPEND, SPLIT, PS";
  let t = Fix.of_source Ex.partition_sort_program in
  let expected =
    [
      ("append", [ "<1,0>"; "<1,1>" ]);
      ("split", [ "<0,0>"; "<1,0>"; "<1,1>"; "<1,1>" ]);
      ("ps", [ "<1,0>" ]);
    ]
  in
  let rows =
    List.concat_map
      (fun (name, exp) ->
        List.mapi
          (fun i e ->
            let v = An.global t name ~arg:(i + 1) in
            let got = B.to_string v.An.esc in
            [
              Printf.sprintf "G(%s, %d)" name (i + 1);
              e;
              got;
              string_of_int (An.non_escaping_top_spines v);
              (if String.equal e got then "ok" else "MISMATCH");
            ])
          exp)
      expected
  in
  print_table [ "test"; "paper"; "computed"; "kept top spines"; "status" ] rows;
  Printf.printf "fixpoint: %d passes, %d iterations, capped=%b, d=%d\n" (Fix.passes t)
    (Fix.iterations t) (Fix.capped t) (Fix.d t);
  Printf.printf "\nKleene iterates (the appendix's fixpoint table):\n";
  let prog = Nml.Infer.infer_program (Surface.of_string Ex.partition_sort_program) in
  Format.printf "%a@." (Escape.Report.kleene_trace ?max_iters:None) prog

(* ---- T2: introduction, properties 1-3 ---------------------------------------- *)

let t2 () =
  section "T2" "Introduction -- map/pair properties 1-3";
  let t = Fix.of_source Ex.map_pair_program in
  let p1 = An.global t "pair" ~arg:1 in
  let p2f = An.global t "map" ~arg:1 in
  let p2l = An.global t "map" ~arg:2 in
  let p3 =
    An.local t "map"
      [ Nml.Parser.parse "pair"; Nml.Parser.parse "[[1,2],[3,4],[5,6]]" ]
      ~arg:2
  in
  print_table
    [ "property"; "paper"; "computed"; "status" ]
    [
      [
        "1. top spine of pair's parameter";
        "does not escape";
        B.to_string p1.An.esc;
        (if B.equal p1.An.esc (B.one 0) then "ok" else "MISMATCH");
      ];
      [
        "2a. top spine of map's list";
        "does not escape";
        B.to_string p2l.An.esc;
        (if B.equal p2l.An.esc (B.one 0) then "ok" else "MISMATCH");
      ];
      [
        "2b. map's functional argument";
        "does not escape";
        B.to_string p2f.An.esc;
        (if B.equal p2f.An.esc B.zero then "ok" else "MISMATCH");
      ];
      [
        "3. this call's literal (s=2)";
        "top two spines stay";
        Printf.sprintf "%s, keep %d" (B.to_string p3.An.esc)
          (An.non_escaping_top_spines p3);
        (if An.non_escaping_top_spines p3 = 2 then "ok" else "MISMATCH");
      ];
    ]

(* ---- T3: appendix A.2, sharing ------------------------------------------------ *)

let t3 () =
  section "T3" "Appendix A.2 -- sharing derived from escape information";
  let t = Fix.of_source Ex.partition_sort_program in
  let rows =
    List.map
      (fun (name, paper) ->
        let i = Sh.result_unshared t name in
        [
          name;
          paper;
          Printf.sprintf "top %d of %d unshared" i.Sh.unshared_top i.Sh.result_spines;
          (if i.Sh.unshared_top >= 1 then "ok" else "MISMATCH");
        ])
      [
        ("ps", "top spine of result unshared");
        ("split", "top spine of result unshared");
      ]
  in
  print_table [ "function"; "paper"; "computed"; "status" ] rows

(* ---- T4: in-place reuse (A.3.2) ----------------------------------------------- *)

let t4 () =
  section "T4" "A.3.2 -- in-place reuse: PS vs PS'' and REV vs REV'";
  let reuse_only = { T.none with T.reuse = true } in
  let bench name mk_src sizes =
    Printf.printf "\n%s:\n" name;
    let rows =
      List.map
        (fun n ->
          let src = mk_src n in
          let surface = Surface.of_string src in
          let base_ir = Runtime.Ir.of_program surface in
          let opt_ir = optimized reuse_only surface in
          let s0 = run_machine ~heap:1024 base_ir in
          let s1 = run_machine ~heap:1024 opt_ir in
          let t0 = measure_ns "base" (fun () -> run_machine ~heap:1024 base_ir) in
          let t1 = measure_ns "opt" (fun () -> run_machine ~heap:1024 opt_ir) in
          [
            string_of_int n;
            string_of_int s0.Stats.heap_allocs;
            string_of_int s1.Stats.heap_allocs;
            string_of_int s1.Stats.dcons_reuses;
            string_of_int s0.Stats.gc_runs;
            string_of_int s1.Stats.gc_runs;
            string_of_int (Stats.gc_work s0);
            string_of_int (Stats.gc_work s1);
            ms t0;
            ms t1;
          ])
        sizes
    in
    print_table
      [
        "n"; "allocs"; "allocs'"; "reuses"; "gc"; "gc'"; "gc-work"; "gc-work'";
        "ms"; "ms'";
      ]
      rows
  in
  bench "partition sort (random list)"
    (fun n ->
      Ex.wrap
        [ Ex.append_def; Ex.split_def; Ex.ps_def ]
        ("ps " ^ int_list_src (lcg_list ~seed:42 n)))
    [ 50; 100; 200; 400; 800 ];
  bench "naive reverse"
    (fun n ->
      Ex.wrap
        [ Ex.append_def; Ex.rev_def ]
        ("rev " ^ int_list_src (lcg_list ~seed:7 n)))
    [ 16; 32; 64; 128; 256 ];
  Printf.printf
    "\nexpected shape: allocs' << allocs (spine cells recycled), gc' <= gc.\n"

(* ---- T5: stack allocation (A.3.1) ---------------------------------------------- *)

let t5 () =
  section "T5" "A.3.1 -- stack allocation of non-escaping argument spines";
  let stack_only = { T.none with T.stack = true } in
  let mk_src n =
    let pairs =
      List.init n (fun i -> Printf.sprintf "[%d, %d]" (2 * i) ((2 * i) + 1))
    in
    Ex.wrap [ Ex.map_def; Ex.pair_def ]
      (Printf.sprintf "map pair [%s]" (String.concat ", " pairs))
  in
  let rows =
    List.map
      (fun n ->
        let surface = Surface.of_string (mk_src n) in
        let base_ir = Runtime.Ir.of_program surface in
        let opt_ir = optimized stack_only surface in
        let s0 = run_machine ~heap:256 base_ir in
        let s1 = run_machine ~heap:256 opt_ir in
        let t0 = measure_ns "base" (fun () -> run_machine ~heap:256 base_ir) in
        let t1 = measure_ns "opt" (fun () -> run_machine ~heap:256 opt_ir) in
        [
          string_of_int n;
          string_of_int s0.Stats.heap_allocs;
          string_of_int s1.Stats.heap_allocs;
          string_of_int s1.Stats.arena_allocs;
          string_of_int s1.Stats.arena_freed;
          string_of_int (Stats.gc_work s0);
          string_of_int (Stats.gc_work s1);
          us t0;
          us t1;
        ])
      [ 8; 16; 32; 64; 128 ]
  in
  print_table
    [
      "pairs"; "heap"; "heap'"; "region"; "region-freed"; "gc-work"; "gc-work'";
      "us"; "us'";
    ]
    rows;
  Printf.printf
    "\nexpected shape: both spine levels of the literal move from the heap to\n\
     the region and are freed wholesale; GC work drops accordingly.\n"

(* ---- T6: block allocation/reclamation (A.3.3) ----------------------------------- *)

let t6 () =
  section "T6" "A.3.3 -- block allocation: ps (create_list n)";
  let block_only = { T.none with T.block = true } in
  let mk_src n =
    Ex.wrap
      [ Ex.append_def; Ex.split_def; Ex.ps_def; Ex.create_list_def ]
      (Printf.sprintf "ps (create_list %d)" n)
  in
  let rows =
    List.map
      (fun n ->
        let surface = Surface.of_string (mk_src n) in
        let base_ir = Runtime.Ir.of_program surface in
        let opt_ir = optimized block_only surface in
        let s0 = run_machine ~heap:512 base_ir in
        let s1 = run_machine ~heap:512 opt_ir in
        let t0 = measure_ns "base" (fun () -> run_machine ~heap:512 base_ir) in
        let t1 = measure_ns "opt" (fun () -> run_machine ~heap:512 opt_ir) in
        [
          string_of_int n;
          string_of_int s0.Stats.heap_allocs;
          string_of_int s1.Stats.heap_allocs;
          string_of_int s1.Stats.arena_allocs;
          string_of_int s1.Stats.arena_freed;
          string_of_int s0.Stats.swept;
          string_of_int s1.Stats.swept;
          ms t0;
          ms t1;
        ])
      [ 25; 50; 100; 200; 400 ]
  in
  print_table
    [ "n"; "heap"; "heap'"; "block"; "block-freed"; "swept"; "swept'"; "ms"; "ms'" ]
    rows;
  Printf.printf
    "\nexpected shape: the n spine cells of create_list's result live in the\n\
     block and return to the free list wholesale, without being swept\n\
     individually (the mark phase still traverses them while live, exactly\n\
     as the paper's local heap would be).\n"

(* ---- T7: polymorphic invariance (Theorem 1) -------------------------------------- *)

let t7 () =
  section "T7" "Theorem 1 -- polymorphic invariance across monomorphic instances";
  let ilist = Ty.List Ty.Int in
  let iilist = Ty.List ilist in
  let iiilist = Ty.List iilist in
  let blist = Ty.List Ty.Bool in
  let arrow1 a b = Ty.Arrow (a, b) in
  let arrow2 a b c = Ty.Arrow (a, Ty.Arrow (b, c)) in
  let cases =
    [
      ( "append", "append",
        Ex.wrap [ Ex.append_def ] "0",
        1,
        [
          ("int list", arrow2 ilist ilist ilist);
          ("int list list", arrow2 iilist iilist iilist);
          ("int list^3", arrow2 iiilist iiilist iiilist);
          ("bool list", arrow2 blist blist blist);
        ] );
      ( "rev", "rev",
        Ex.rev_program,
        1,
        [ ("int list", arrow1 ilist ilist); ("int list list", arrow1 iilist iilist) ] );
      ( "length", "length",
        Ex.wrap [ Ex.length_def ] "0",
        1,
        [ ("int list", arrow1 ilist Ty.Int); ("int list list", arrow1 iilist Ty.Int) ] );
      ( "map(arg 2)", "map",
        Ex.wrap [ Ex.map_def ] "0",
        2,
        [
          ("int->int, int list", arrow2 (arrow1 Ty.Int Ty.Int) ilist ilist);
          ( "int list->int list, int list list",
            arrow2 (arrow1 ilist ilist) iilist iilist );
        ] );
    ]
  in
  let rows =
    List.concat_map
      (fun (label0, fname, src, arg, insts) ->
        let t = Fix.of_source src in
        let base = ref None in
        List.map
          (fun (label, inst) ->
            let v = An.global ~inst t fname ~arg in
            let keep = An.non_escaping_top_spines v in
            let invariant =
              match !base with
              | None ->
                  base := Some (An.escapes v, keep);
                  "reference"
              | Some (esc0, keep0) ->
                  if An.escapes v = esc0 && ((not esc0) || keep = keep0) then "ok"
                  else "VIOLATION"
            in
            [
              label0;
              label;
              B.to_string v.An.esc;
              string_of_int v.An.spines;
              string_of_int keep;
              invariant;
            ])
          insts)
      cases
  in
  print_table [ "function"; "instance"; "G"; "s_i"; "s_i - k"; "Theorem 1" ] rows

(* ---- T8: analysis cost and the enumeration ablation ------------------------------- *)

let t8 () =
  section "T8" "analysis cost: probe engine vs full enumeration; scaling";

  (* (a) probe vs enumeration on first-order programs *)
  Printf.printf "\n(a) probe engine vs full first-order enumeration:\n";
  let programs =
    [
      ("append", Ex.wrap [ Ex.append_def ] "0");
      ("ps program", Ex.partition_sort_program);
      ("isort", Ex.wrap [ Ex.insert_def; Ex.isort_def ] "0");
      ( "six defs",
        Ex.wrap
          [ Ex.append_def; Ex.split_def; Ex.ps_def; Ex.create_list_def; Ex.length_def;
            Ex.sum_def ]
          "0" );
    ]
  in
  let rows =
    List.map
      (fun (name, src) ->
        let probe_ns =
          measure_ns "probe" (fun () ->
              let t = Fix.of_source src in
              List.iter
                (fun (d, _) -> ignore (An.global_all t d))
                (Surface.of_string src).Surface.defs)
        in
        let enum_ns =
          measure_ns "enum" (fun () -> ignore (Escape.Enumerate.of_source src))
        in
        let e = Escape.Enumerate.of_source src in
        let t = Fix.of_source src in
        let agree =
          List.for_all
            (fun (d, _) ->
              List.for_all
                (fun (v : An.verdict) ->
                  B.equal v.An.esc (Escape.Enumerate.global e d ~arg:v.An.arg))
                (An.global_all t d))
            (Surface.of_string src).Surface.defs
        in
        [
          name;
          ms probe_ns;
          ms enum_ns;
          string_of_int (Escape.Enumerate.entries e);
          string_of_int (Escape.Enumerate.iterations e);
          (if agree then "agree" else "DISAGREE");
        ])
      programs
  in
  print_table
    [ "program"; "probe ms"; "enum ms"; "table entries"; "enum rounds"; "results" ]
    rows;

  (* (b) lattice-height effect: analyzing append at deeper list instances *)
  Printf.printf "\n(b) chain-bound (d) sweep -- append at deeper instances:\n";
  let rec deep k = if k = 0 then Ty.Int else Ty.List (deep (k - 1)) in
  let rows =
    List.map
      (fun k ->
        let inst = Ty.Arrow (deep k, Ty.Arrow (deep k, deep k)) in
        let src = Ex.wrap [ Ex.append_def ] "0" in
        let ns =
          measure_ns "inst" (fun () ->
              let t = Fix.of_source src in
              ignore (An.global ~inst t "append" ~arg:1))
        in
        let t = Fix.of_source src in
        ignore (An.global ~inst t "append" ~arg:1);
        [
          string_of_int k;
          string_of_int (Fix.d t);
          string_of_int (Fix.iterations t);
          ms ns;
        ])
      [ 1; 2; 3; 4; 5; 6 ]
  in
  print_table [ "spine depth"; "d"; "iterations"; "ms" ] rows;

  (* (c) program-size scaling: a chain of k append-like definitions *)
  Printf.printf "\n(c) definition-chain scaling:\n";
  let chain k =
    let defs =
      List.init k (fun i ->
          if i = 0 then "f0 x y = if null x then y else cons (car x) (f0 (cdr x) y)"
          else
            Printf.sprintf
              "f%d x y = if null x then f%d y nil else f%d (cdr x) (cons (car x) y)" i
              (i - 1) (i - 1))
    in
    Ex.wrap defs "0"
  in
  let rows =
    List.map
      (fun k ->
        let src = chain k in
        let ns =
          measure_ns "chain" (fun () ->
              let t = Fix.of_source src in
              ignore (An.global t (Printf.sprintf "f%d" (k - 1)) ~arg:1))
        in
        let t = Fix.of_source src in
        ignore (An.global t (Printf.sprintf "f%d" (k - 1)) ~arg:1);
        [
          string_of_int k;
          string_of_int (Nml.Ast.size (Surface.to_expr (Surface.of_string src)));
          string_of_int (Fix.passes t);
          string_of_int (Fix.iterations t);
          ms ns;
        ])
      [ 2; 4; 8; 16; 32 ]
  in
  print_table [ "defs"; "AST nodes"; "passes"; "iterations"; "ms" ] rows

(* ---- T9: randomized safety audit --------------------------------------------------- *)

let t9 () =
  section "T9" "safety audit: dynamic <= local <= global on random programs";
  let count = 300 in
  let ok = ref 0 in
  let gen = QCheck.Gen.pair Gen.gen_def Gen.gen_input in
  let rand = Random.State.make [| 20260706 |] in
  for _ = 1 to count do
    let def, input = QCheck.Gen.generate1 ~rand gen in
    let src = Ex.wrap [ def ] "0" in
    let prog = Surface.of_string src in
    let input_src = Gen.input_src input in
    let t = Fix.of_source src in
    let g = An.global t "f" ~arg:1 in
    let l = An.local t "f" [ Nml.Parser.parse input_src ] ~arg:1 in
    let ob =
      Escape.Exact.observe_call ~fuel:200000 prog ~fname:"f"
        ~args:[ Nml.Parser.parse input_src ] ~arg:1
    in
    if B.leq ob.Escape.Exact.esc l.An.esc && B.leq l.An.esc g.An.esc then incr ok
  done;
  Printf.printf "random first-order programs checked : %d\n" count;
  Printf.printf "dynamic <= local <= global held for : %d\n" !ok;
  Printf.printf "%s\n"
    (if !ok = count then "SAFE (as the safety theorem of section 3.5 demands)"
     else "UNSOUND RESULTS FOUND")

(* ---- X1: products extension -------------------------------------------------------- *)

let x1 () =
  section "X1" "extension: escape analysis over pairs (tuples)";
  let src =
    Ex.wrap [ Ex.zip_def; Ex.unzip_fsts_def; Ex.unzip_snds_def; Ex.swap_def; Ex.assoc_def ] "0"
  in
  let t = Fix.of_source src in
  let rows =
    List.concat_map
      (fun name ->
        List.concat_map
          (fun (v : An.verdict) ->
            let whole =
              [
                Printf.sprintf "G(%s, %d)" name v.An.arg;
                "(whole)";
                B.to_string v.An.esc;
                string_of_int (An.non_escaping_top_spines v);
              ]
            in
            let comps =
              match An.global_components t name ~arg:v.An.arg with
              | [ ([], _) ] -> []
              | cs ->
                  List.map
                    (fun (path, (cv : An.verdict)) ->
                      [
                        "";
                        Format.asprintf "%a" An.pp_path path;
                        B.to_string cv.An.esc;
                        string_of_int (An.non_escaping_top_spines cv);
                      ])
                    cs
            in
            whole :: comps)
          (An.global_all t name))
      [ "zip"; "fsts"; "snds"; "swap"; "assoc" ]
  in
  print_table [ "test"; "component"; "escape"; "kept top spines" ] rows;
  (* the machine allocates pair cells like cons cells *)
  let run_src = Ex.wrap [ Ex.zip_def ] ("zip " ^ int_list_src (lcg_list ~seed:5 64) ^ " " ^ int_list_src (lcg_list ~seed:9 64)) in
  let s = run_machine (Runtime.Ir.of_program (Surface.of_string run_src)) in
  Printf.printf "\nzip of two 64-lists on the simulator: %d cells (64 pairs + 64 spine + literals)\n"
    s.Stats.heap_allocs

(* ---- X2: trees extension ------------------------------------------------------------ *)

let x2 () =
  section "X2" "extension: escape analysis over binary trees";
  let src =
    Ex.wrap
      [ Ex.tmap_def; Ex.tinsert_def; Ex.tsum_def; Ex.mirror_def; Ex.append_def;
        Ex.flatten_def ]
      "0"
  in
  let t = Fix.of_source src in
  let rows =
    List.concat_map
      (fun name ->
        List.map
          (fun (v : An.verdict) ->
            [
              Printf.sprintf "G(%s, %d)" name v.An.arg;
              B.to_string v.An.esc;
              string_of_int v.An.spines;
              string_of_int (An.non_escaping_top_spines v);
            ])
          (An.global_all t name))
      [ "tmap"; "tinsert"; "tsum"; "mirror"; "flatten" ]
  in
  print_table [ "test"; "escape"; "levels"; "kept top levels" ] rows;
  Printf.printf
    "\nshape: rebuilding traversals (tmap, mirror, flatten) keep their node\n\
     cells reclaimable; BST insert shares subtrees, so the whole tree may\n\
     escape -- the textbook reason persistent structures defeat reuse.\n";
  (* DNODE in-place reuse for mirror over growing BSTs *)
  Printf.printf "\nmirror vs mirror' (DNODE reuse) over a BST of n nodes:\n";
  let reuse_only = { T.none with T.reuse = true } in
  let mk_src n =
    let rec build acc = function
      | [] -> acc
      | v :: rest -> build (Printf.sprintf "(tinsert %d %s)" v acc) rest
    in
    Ex.wrap [ Ex.mirror_def; Ex.tinsert_def ]
      (Printf.sprintf "mirror %s" (build "leaf" (lcg_list ~seed:3 n)))
  in
  let rows =
    List.map
      (fun n ->
        let surface = Surface.of_string (mk_src n) in
        let base_ir = Runtime.Ir.of_program surface in
        let opt_ir = optimized reuse_only surface in
        let s0 = run_machine ~heap:512 base_ir in
        let s1 = run_machine ~heap:512 opt_ir in
        [
          string_of_int n;
          string_of_int s0.Stats.heap_allocs;
          string_of_int s1.Stats.heap_allocs;
          string_of_int s1.Stats.dcons_reuses;
        ])
      [ 8; 16; 32; 64 ]
  in
  print_table [ "n"; "allocs"; "allocs'"; "reuses" ] rows

(* ---- S1/S2: solver stress and the JSON benchmark trajectory ----------------------- *)

(* Machine-checkable benchmark artifact without new dependencies: the
   shared hand-rolled JSON tree lives in [Nml.Json]. *)
module J = Nml.Json

let smoke = ref false
let json_records : J.t list ref = ref []

(* Wide program: a chain of n non-recursive wrappers.  Dependency-driven
   solving needs exactly one evaluation per definition; the round-robin
   baseline re-evaluates everything demanded so far on every pass. *)
let wide_chain_src n =
  let defs =
    List.init n (fun i ->
        if i = 0 then "w0 x = cons 0 x"
        else Printf.sprintf "w%d x = w%d (cons %d x)" i (i - 1) i)
  in
  Ex.wrap defs (Printf.sprintf "w%d [1, 2]" (n - 1))

(* Deep program: a nest of k self-recursive definitions, each also calling
   its predecessor — every entry sits in a cycle, so this stresses the SCC
   sweep rather than the recursive descent. *)
let rec_chain_src k =
  let defs =
    List.init k (fun i ->
        if i = 0 then "f0 x y = if null x then y else cons (car x) (f0 (cdr x) y)"
        else
          Printf.sprintf
            "f%d x y = if null x then f%d y x else f%d (cdr x) (cons (car x) y)" i
            (i - 1) i)
  in
  Ex.wrap defs "0"

(* One cold-start solver run: every [Fix.of_source] owns a fresh private
   solver state, so each run is cold by construction — solve, snapshot
   the statistics, then time identical runs. *)
let run_engine ~engine ~demand src =
  let t = Fix.of_source ~max_iters:1000 ~engine src in
  demand t;
  let stats = Fix.stats t in
  let wall =
    measure_ns (Fix.engine_name engine) (fun () ->
        let t = Fix.of_source ~max_iters:1000 ~engine src in
        demand t)
  in
  (stats, wall)

let push_record ~experiment ~workload ~size ~wall (s : Fix.stats) =
  json_records :=
    J.Obj
      [
        ("experiment", J.Str experiment);
        ("workload", J.Str workload);
        ("size", J.int size);
        ("engine", J.Str (Fix.engine_name s.Fix.stats_engine));
        ("entries", J.int s.Fix.stats_entries);
        ("evaluations", J.int s.Fix.stats_evaluations);
        ("passes", J.int s.Fix.stats_passes);
        ("iterations", J.int s.Fix.stats_iterations);
        ("sccs", J.int s.Fix.stats_sccs);
        ("largest_scc", J.int s.Fix.stats_largest_scc);
        ("cache_hits", J.int s.Fix.stats_cache_hits);
        ("cache_misses", J.int s.Fix.stats_cache_misses);
        ("cache_invalidated", J.int s.Fix.stats_cache_invalidated);
        ("dbound", J.int s.Fix.stats_dbound);
        ("capped", J.Bool s.Fix.stats_capped);
        ("wall_ns", J.int (int_of_float wall));
      ]
    :: !json_records

let solver_row size (s : Fix.stats) wall =
  [
    string_of_int size;
    Fix.engine_name s.Fix.stats_engine;
    string_of_int s.Fix.stats_entries;
    string_of_int s.Fix.stats_evaluations;
    string_of_int s.Fix.stats_passes;
    string_of_int s.Fix.stats_iterations;
    string_of_int s.Fix.stats_sccs;
    string_of_int s.Fix.stats_cache_hits;
    string_of_int s.Fix.stats_cache_invalidated;
    ms wall;
  ]

let solver_header =
  [ "size"; "engine"; "entries"; "evals"; "passes"; "iters"; "sccs"; "hits";
    "invalidated"; "ms" ]

let stress workload ~experiment ~sizes ~src_of ~demand_of =
  let rows = ref [] in
  let wins = ref true in
  List.iter
    (fun n ->
      let src = src_of n in
      let demand = demand_of n in
      let wl, wl_ns = run_engine ~engine:Fix.Worklist ~demand src in
      let rr, rr_ns = run_engine ~engine:Fix.Round_robin ~demand src in
      push_record ~experiment ~workload ~size:n ~wall:wl_ns wl;
      push_record ~experiment ~workload ~size:n ~wall:rr_ns rr;
      if wl.Fix.stats_evaluations >= rr.Fix.stats_evaluations then wins := false;
      rows := solver_row n rr rr_ns :: solver_row n wl wl_ns :: !rows)
    sizes;
  print_table solver_header (List.rev !rows);
  Printf.printf "\nworklist needs strictly fewer entry evaluations on every size: %s\n"
    (if !wins then "yes" else "NO (regression)")

let s1 () =
  section "S1" "solver stress -- wide chain of non-recursive definitions";
  let sizes = if !smoke then [ 6; 12 ] else [ 10; 20; 40; 80 ] in
  stress "wide-chain" ~experiment:"S1" ~sizes ~src_of:wide_chain_src
    ~demand_of:(fun n t -> ignore (Fix.value t (Printf.sprintf "w%d" (n - 1)) None));
  Printf.printf
    "expected shape: worklist evaluations grow linearly in the chain length,\n\
     round-robin quadratically (every pass re-evaluates the whole prefix).\n"

let s2 () =
  section "S2" "solver stress -- deep recursion nests at chain bound d = 3";
  let ks = if !smoke then [ 3 ] else [ 4; 8; 16 ] in
  let rec deep k = if k = 0 then Ty.Int else Ty.List (deep (k - 1)) in
  let inst = Ty.Arrow (deep 3, Ty.Arrow (deep 3, deep 3)) in
  stress "deep-recursion" ~experiment:"S2" ~sizes:ks ~src_of:rec_chain_src
    ~demand_of:(fun k t ->
      ignore (Fix.value t (Printf.sprintf "f%d" (k - 1)) (Some inst)));
  Printf.printf
    "expected shape: every definition is cyclic, so both engines iterate; the\n\
     worklist still wins by re-evaluating only entries whose dependencies moved\n\
     and by keeping application memos alive across passes.\n"

(* ---- S3/S4: batch scaling and the persistent summary cache ------------------------- *)

(* Single-shot wall time (nanoseconds).  Cache experiments mutate the
   store, so the repeated-run OLS estimate of [measure_ns] would time the
   warm path; cold and edited phases are timed once instead. *)
let time_once fn =
  let t0 = Unix.gettimeofday () in
  fn ();
  (Unix.gettimeofday () -. t0) *. 1e9

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let scratch_dir name =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "nmlc-bench-%s-%d" name (Unix.getpid ()))
  in
  if Sys.file_exists d then rm_rf d;
  Sys.mkdir d 0o755;
  d

(* The batch corpus: every named program of the soundness harness written
   out as a file, plus the shipped examples when run from the repo root. *)
let batch_corpus dir =
  let builtin =
    List.map
      (fun (name, src) ->
        let path = Filename.concat dir (name ^ ".nml") in
        Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc src);
        path)
      Check.Harness.builtin_corpus
  in
  let shipped =
    let root = Filename.concat "examples" "programs" in
    if Sys.file_exists root && Sys.is_directory root then
      Sys.readdir root |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".nml")
      |> List.sort compare
      |> List.map (Filename.concat root)
    else []
  in
  builtin @ shipped

let batch_totals results =
  List.fold_left
    (fun (ev, hits, misses, errs) (r : Cache.Batch.result) ->
      ( ev + r.Cache.Batch.evaluations,
        hits + r.Cache.Batch.scc_hits,
        misses + r.Cache.Batch.scc_misses,
        errs + if r.Cache.Batch.code = 0 then 0 else 1 ))
    (0, 0, 0, 0) results

let s3 () =
  section "S3" "batch scaling -- domain pool over the soundness corpus + examples";
  let cores = Domain.recommended_domain_count () in
  let dir = scratch_dir "s3" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let files = batch_corpus dir in
  let jobs_list = if !smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let base = ref Float.nan in
  let rows =
    List.map
      (fun jobs ->
        let results = Cache.Batch.run ~jobs files in
        let ev, _, _, errs = batch_totals results in
        let wall =
          measure_ns
            (Printf.sprintf "jobs%d" jobs)
            (fun () -> ignore (Cache.Batch.run ~jobs files))
        in
        if jobs = 1 then base := wall;
        json_records :=
          J.Obj
            [
              ("experiment", J.Str "S3");
              ("workload", J.Str "batch-scaling");
              ("jobs", J.int jobs);
              ("files", J.int (List.length files));
              ("cores", J.int cores);
              ("evaluations", J.int ev);
              ("errors", J.int errs);
              ("wall_ns", J.int (int_of_float wall));
            ]
          :: !json_records;
        [
          string_of_int jobs;
          string_of_int (List.length files);
          string_of_int ev;
          string_of_int errs;
          ms wall;
          Printf.sprintf "%.2fx" (!base /. wall);
        ])
      jobs_list
  in
  print_table [ "jobs"; "files"; "evals"; "errors"; "ms"; "speedup" ] rows;
  Printf.printf
    "\nthis machine reports %d available core(s); speedups above 1x are only\n\
     reachable when the pool actually gets more than one core.\n"
    cores

let s4 () =
  section "S4" "persistent summary cache -- cold, warm, and one-definition edits";
  let dir = scratch_dir "s4" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let corpus = Filename.concat dir "corpus" in
  Sys.mkdir corpus 0o755;
  let edited_file = Filename.concat corpus "zz_edit.nml" in
  let edit_src body =
    Ex.wrap
      [
        Printf.sprintf "callee l = %s" body;
        "reader l = callee (cons (car l) l)";
        "loner l = cons 1 l";
      ]
      "reader [1, 2]"
  in
  let write path src =
    Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc src)
  in
  write edited_file (edit_src "cons (car l) nil");
  let files = batch_corpus corpus @ [ edited_file ] in
  let store = Cache.Store.create (Filename.concat dir "cache") in
  let rows = ref [] in
  let record phase wall results =
    let ev, hits, misses, _ = batch_totals results in
    json_records :=
      J.Obj
        [
          ("experiment", J.Str "S4");
          ("workload", J.Str "summary-cache");
          ("phase", J.Str phase);
          ("files", J.int (List.length files));
          ("evaluations", J.int ev);
          ("scc_hits", J.int hits);
          ("scc_misses", J.int misses);
          ("wall_ns", J.int (int_of_float wall));
        ]
      :: !json_records;
    rows :=
      [
        phase; string_of_int (List.length files); string_of_int ev;
        string_of_int hits; string_of_int misses; ms wall;
      ]
      :: !rows
  in
  (* cold: empty store, every SCC is solved and written (timed once --
     a second run would be warm) *)
  let cold = ref [] in
  let cold_ns = time_once (fun () -> cold := Cache.Batch.run ~store ~jobs:1 files) in
  record "cold" cold_ns !cold;
  (* warm: nothing changed, the whole corpus is served from the store *)
  let warm = Cache.Batch.run ~store ~jobs:1 files in
  let warm_ns =
    measure_ns "warm" (fun () -> ignore (Cache.Batch.run ~store ~jobs:1 files))
  in
  record "warm" warm_ns warm;
  (* edited: one definition's body changes, so only its SCC and the
     readers above it re-solve; everything else still hits *)
  write edited_file (edit_src "cons 7 nil");
  let edited = ref [] in
  let edited_ns =
    time_once (fun () -> edited := Cache.Batch.run ~store ~jobs:1 files)
  in
  record "edited" edited_ns !edited;
  print_table
    [ "phase"; "files"; "evals"; "scc hits"; "scc misses"; "ms" ]
    (List.rev !rows);
  let ev_of rs = let ev, _, _, _ = batch_totals rs in ev in
  Printf.printf
    "\nexpected shape: warm = 0 evaluations with bit-identical reports;\n\
     the edit re-solves only its invalidation cone (%d of %d cold evaluations).\n"
    (ev_of !edited) (ev_of !cold)

(* ---- S5: the analysis framework -- functor overhead and per-analysis caching -------- *)

(* Part A: the frozen pre-framework escape solver (test/support/
   legacy_fixpoint.ml, kept verbatim as the differential baseline)
   against [Framework.Solver.Make (Escape.Espec)] on the two solver
   stress shapes.  The functorized engine must perform {e exactly} the
   same entry evaluations -- the test suite proves value equality; the
   bench records the counts so the artifact can re-assert it -- and its
   wall overhead is the headline: the aggregate framework/legacy ratio
   must stay within 1.05x (plus a small absolute noise floor, since a
   smoke run's workloads are microseconds).

   Part B: every registered analysis (escape, usage, spine-liveness and
   the reduced product) over the soundness corpus through its own cache
   namespace: the cold run solves and writes, the warm rerun must be
   completely evaluation-free. *)
let s5 () =
  section "S5" "analysis framework -- functorized solver overhead, per-analysis cache";
  let shapes =
    if !smoke then [ ("wide-chain", [ 12 ]); ("deep-recursion", [ 3 ]) ]
    else [ ("wide-chain", [ 20; 40; 80 ]); ("deep-recursion", [ 4; 8; 16 ]) ]
  in
  let src_of shape n =
    match shape with
    | "wide-chain" -> wide_chain_src n
    | _ -> rec_chain_src n
  in
  let demand_of shape n =
    match shape with
    | "wide-chain" ->
        fun value -> value (Printf.sprintf "w%d" (n - 1)) None
    | _ ->
        let rec deep k = if k = 0 then Ty.Int else Ty.List (deep (k - 1)) in
        let inst = Ty.Arrow (deep 3, Ty.Arrow (deep 3, deep 3)) in
        fun value -> value (Printf.sprintf "f%d" (n - 1)) (Some inst)
  in
  let rows = ref [] in
  let legacy_total = ref 0. and framework_total = ref 0. in
  List.iter
    (fun (shape, sizes) ->
      List.iter
        (fun n ->
          let src = src_of shape n in
          let demand = demand_of shape n in
          let lt = Legacy_fixpoint.of_source ~max_iters:1000 src in
          demand (fun name inst -> ignore (Legacy_fixpoint.value lt name inst));
          let l_ev = Legacy_fixpoint.evaluations lt in
          let l_ns =
            measure_ns "legacy" (fun () ->
                let t = Legacy_fixpoint.of_source ~max_iters:1000 src in
                demand (fun name inst -> ignore (Legacy_fixpoint.value t name inst)))
          in
          let ft = Fix.of_source ~max_iters:1000 src in
          demand (fun name inst -> ignore (Fix.value ft name inst));
          let f_ev = Fix.evaluations ft in
          let f_ns =
            measure_ns "framework" (fun () ->
                let t = Fix.of_source ~max_iters:1000 src in
                demand (fun name inst -> ignore (Fix.value t name inst)))
          in
          legacy_total := !legacy_total +. l_ns;
          framework_total := !framework_total +. f_ns;
          List.iter
            (fun (solver, ev, ns) ->
              json_records :=
                J.Obj
                  [
                    ("experiment", J.Str "S5");
                    ("workload", J.Str "framework-overhead");
                    ("shape", J.Str shape);
                    ("solver", J.Str solver);
                    ("size", J.int n);
                    ("evaluations", J.int ev);
                    ("wall_ns", J.int (int_of_float ns));
                  ]
                :: !json_records)
            [ ("legacy", l_ev, l_ns); ("framework", f_ev, f_ns) ];
          rows :=
            [
              shape; string_of_int n; string_of_int l_ev; string_of_int f_ev;
              ms l_ns; ms f_ns; Printf.sprintf "%.3fx" (f_ns /. l_ns);
            ]
            :: !rows)
        sizes)
    shapes;
  print_table
    [ "shape"; "size"; "legacy evals"; "fw evals"; "legacy ms"; "fw ms"; "ratio" ]
    (List.rev !rows);
  Printf.printf
    "\naggregate framework/legacy wall ratio: %.3fx (budget 1.05x)\n"
    (!framework_total /. !legacy_total);
  (* part B: cold/warm of every registered analysis, each in its own
     cache namespace inside one shared store *)
  let dir = scratch_dir "s5" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let corpus = Filename.concat dir "corpus" in
  Sys.mkdir corpus 0o755;
  let files =
    List.map
      (fun (name, src) ->
        let path = Filename.concat corpus (name ^ ".nml") in
        Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc src);
        path)
      Check.Harness.builtin_corpus
  in
  let store = Cache.Store.create (Filename.concat dir "cache") in
  let crows = ref [] in
  List.iter
    (fun (e : Analyses.Registry.entry) ->
      let sweep () =
        List.map (fun p -> Analyses.Registry.batch_job e ~store:(Some store) p) files
      in
      let cold = ref [] in
      let cold_ns = time_once (fun () -> cold := sweep ()) in
      let warm = sweep () in
      let warm_ns = measure_ns "warm" (fun () -> ignore (sweep ())) in
      let record phase wall results =
        let ev, hits, misses, _ = batch_totals results in
        json_records :=
          J.Obj
            [
              ("experiment", J.Str "S5");
              ("workload", J.Str "analysis-cache");
              ("analysis", J.Str e.Analyses.Registry.name);
              ("phase", J.Str phase);
              ("files", J.int (List.length files));
              ("evaluations", J.int ev);
              ("scc_hits", J.int hits);
              ("scc_misses", J.int misses);
              ("wall_ns", J.int (int_of_float wall));
            ]
          :: !json_records;
        crows :=
          [
            e.Analyses.Registry.name; phase; string_of_int ev;
            string_of_int hits; string_of_int misses; ms wall;
          ]
          :: !crows
      in
      record "cold" cold_ns !cold;
      record "warm" warm_ns warm)
    Analyses.Registry.all;
  print_table
    [ "analysis"; "phase"; "evals"; "scc hits"; "scc misses"; "ms" ]
    (List.rev !crows);
  Printf.printf
    "\nexpected shape: per (shape, size) the two solvers' evaluation counts\n\
     are identical; every analysis' warm rerun is evaluation-free in its\n\
     own key namespace.\n"

(* ---- S6: sharing-licensed reuse vs the Theorem-2 baseline --------------------------- *)

(* Part A measures, per shipped example, what each freshness judgment
   licenses: the Theorem-2 syntactic recursion alone (the seed baseline,
   [alias_reuse = false]) against the flow-sensitive sharing analysis
   joined with it.  Reuse is isolated from the arena optimizations so the
   storage delta is attributable: fewer heap cells allocated exactly
   where a DCONS recycles a spine the baseline could not prove fresh.
   Part B is the sharing analysis' persistent summary cache over the same
   corpus: the warm rerun must be evaluation-free in its own namespace. *)
let s6_examples () =
  let root = Filename.concat "examples" "programs" in
  if Sys.file_exists root && Sys.is_directory root then
    Sys.readdir root |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".nml")
    |> List.sort compare
    |> List.map (fun f ->
           ( Filename.chop_suffix f ".nml",
             In_channel.with_open_text (Filename.concat root f)
               In_channel.input_all ))
  else []

let s6_modes =
  [
    ("t2-baseline", { T.none with T.monomorphize = true; T.reuse = true });
    ( "alias-informed",
      { T.none with T.monomorphize = true; T.reuse = true; T.alias_reuse = true }
    );
  ]

let s6_measure options surface =
  let r = T.optimize ~options surface in
  let rep = Option.get r.T.reuse_report in
  (rep, run_machine r.T.ir)

let s6 () =
  section "S6" "sharing-licensed reuse -- Theorem-2 baseline vs alias-informed";
  let examples = s6_examples () in
  if examples = [] then
    Printf.printf
      "examples/programs/ not found (run from the repository root); skipping\n"
  else begin
    let rows =
      List.concat_map
        (fun (name, src) ->
          let surface = Surface.of_string src in
          List.map
            (fun (mode, options) ->
              let rep, stats = s6_measure options surface in
              let wall =
                if !smoke then time_once (fun () -> ignore (s6_measure options surface))
                else measure_ns mode (fun () -> ignore (s6_measure options surface))
              in
              json_records :=
                J.Obj
                  [
                    ("experiment", J.Str "S6");
                    ("workload", J.Str "alias-reuse");
                    ("example", J.Str name);
                    ("mode", J.Str mode);
                    ("candidates", J.int (List.length rep.Optimize.Reuse.candidates));
                    ( "substituted_calls",
                      J.int rep.Optimize.Reuse.substituted_calls );
                    ("alias_licensed", J.int rep.Optimize.Reuse.alias_licensed);
                    ("heap_allocs", J.int stats.Stats.heap_allocs);
                    ("dcons_reuses", J.int stats.Stats.dcons_reuses);
                    ("wall_ns", J.int (int_of_float wall));
                  ]
                :: !json_records;
              [
                name; mode;
                string_of_int (List.length rep.Optimize.Reuse.candidates);
                string_of_int rep.Optimize.Reuse.substituted_calls;
                string_of_int rep.Optimize.Reuse.alias_licensed;
                string_of_int stats.Stats.heap_allocs;
                string_of_int stats.Stats.dcons_reuses;
                ms wall;
              ])
            s6_modes)
        examples
    in
    print_table
      [
        "example"; "mode"; "cands"; "redirected"; "alias-only"; "heap";
        "reuses"; "ms";
      ]
      rows;
    (* part B: the sharing analysis' cold/warm cache over the examples *)
    match Analyses.Registry.find "sharing" with
    | None -> Printf.printf "\nno registered sharing analysis?\n"
    | Some e ->
        let dir = scratch_dir "s6" in
        Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
        let corpus = Filename.concat dir "corpus" in
        Sys.mkdir corpus 0o755;
        let files =
          List.map
            (fun (name, src) ->
              let path = Filename.concat corpus (name ^ ".nml") in
              Out_channel.with_open_text path (fun oc ->
                  Out_channel.output_string oc src);
              path)
            examples
        in
        let store = Cache.Store.create (Filename.concat dir "cache") in
        let sweep () =
          List.map (fun p -> Analyses.Registry.batch_job e ~store:(Some store) p) files
        in
        let cold = ref [] in
        let cold_ns = time_once (fun () -> cold := sweep ()) in
        let warm = sweep () in
        let warm_ns = measure_ns "warm" (fun () -> ignore (sweep ())) in
        let crows = ref [] in
        let record phase wall results =
          let ev, hits, misses, _ = batch_totals results in
          json_records :=
            J.Obj
              [
                ("experiment", J.Str "S6");
                ("workload", J.Str "sharing-cache");
                ("phase", J.Str phase);
                ("files", J.int (List.length files));
                ("evaluations", J.int ev);
                ("scc_hits", J.int hits);
                ("scc_misses", J.int misses);
                ("wall_ns", J.int (int_of_float wall));
              ]
            :: !json_records;
          crows :=
            [
              phase; string_of_int (List.length files); string_of_int ev;
              string_of_int hits; string_of_int misses; ms wall;
            ]
            :: !crows
        in
        record "cold" cold_ns !cold;
        record "warm" warm_ns warm;
        Printf.printf "\nsharing summary cache over the same corpus:\n";
        print_table
          [ "phase"; "files"; "evals"; "scc hits"; "scc misses"; "ms" ]
          (List.rev !crows);
        Printf.printf
          "\nexpected shape: alias-informed redirects at least as many call sites\n\
           as the Theorem-2 baseline and allocates no more; on the branch-,\n\
           stitch- and let-spine examples it redirects strictly more (the\n\
           alias-only column) and heap allocations drop.  The warm cache rerun\n\
           is evaluation-free.\n"
  end

(* ---- L1: lint throughput through the summary cache --------------------------------- *)

let l1 () =
  section "L1" "lint cache -- cold vs warm batch linting over a mixed corpus";
  let dir = scratch_dir "l1" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  (* the soundness corpus and shipped examples, plus a deterministic batch
     of random programs so per-SCC lint records face unfamiliar shapes *)
  let random_count = if !smoke then 8 else 40 in
  let rand = Random.State.make [| 20260807 |] in
  let random_files =
    List.init random_count (fun i ->
        let src = QCheck.Gen.generate1 ~rand Gen.gen_any_program in
        let path = Filename.concat dir (Printf.sprintf "rand%02d.nml" i) in
        Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc src);
        path)
  in
  let files = batch_corpus dir @ random_files in
  let store = Cache.Store.create (Filename.concat dir "cache") in
  let lint ~store path = Lint.Batch.analyze_file ~store path in
  let totals results =
    List.fold_left
      (fun (f, ev, hits, misses) (r : Cache.Batch.result) ->
        ( f + r.Cache.Batch.findings,
          ev + r.Cache.Batch.evaluations,
          hits + r.Cache.Batch.scc_hits,
          misses + r.Cache.Batch.scc_misses ))
      (0, 0, 0, 0) results
  in
  let rows = ref [] in
  let record phase wall ?identical results =
    let f, ev, hits, misses = totals results in
    let extra =
      match identical with None -> [] | Some b -> [ ("identical", J.Bool b) ]
    in
    json_records :=
      J.Obj
        ([
           ("experiment", J.Str "L1");
           ("workload", J.Str "lint-cache");
           ("phase", J.Str phase);
           ("files", J.int (List.length files));
           ("findings", J.int f);
           ("evaluations", J.int ev);
           ("scc_hits", J.int hits);
           ("scc_misses", J.int misses);
           ("wall_ns", J.int (int_of_float wall));
         ]
        @ extra)
      :: !json_records;
    rows :=
      [
        phase; string_of_int (List.length files); string_of_int f;
        string_of_int ev; string_of_int hits; string_of_int misses; ms wall;
      ]
      :: !rows
  in
  (* cold: every SCC's findings are computed and written (timed once --
     a second run would be warm) *)
  let cold = ref [] in
  let cold_ns =
    time_once (fun () -> cold := Cache.Batch.run ~analyze:lint ~store ~jobs:1 files)
  in
  record "cold" cold_ns !cold;
  (* warm: every record replays without forcing the fixpoint solver *)
  let warm = Cache.Batch.run ~analyze:lint ~store ~jobs:1 files in
  let warm_ns =
    measure_ns "warm" (fun () ->
        ignore (Cache.Batch.run ~analyze:lint ~store ~jobs:1 files))
  in
  let identical =
    List.length !cold = List.length warm
    && List.for_all2
         (fun (c : Cache.Batch.result) (w : Cache.Batch.result) ->
           String.equal c.Cache.Batch.output w.Cache.Batch.output)
         !cold warm
  in
  record "warm" warm_ns ~identical warm;
  print_table
    [ "phase"; "files"; "findings"; "evals"; "scc hits"; "scc misses"; "ms" ]
    (List.rev !rows);
  let _, warm_ev, _, _ = totals warm in
  (* per-rule audit: count each code's tag in the rendered findings *)
  let count_tag tag =
    let needle = Printf.sprintf "[%s]" tag in
    let nlen = String.length needle in
    List.fold_left
      (fun acc (r : Cache.Batch.result) ->
        let s = r.Cache.Batch.output in
        let n = ref 0 in
        for i = 0 to String.length s - nlen do
          if String.equal (String.sub s i nlen) needle then incr n
        done;
        acc + !n)
      0 !cold
  in
  Printf.printf "\nper-rule findings over the corpus:\n";
  print_table [ "rule"; "findings" ]
    (List.map
       (fun code -> [ code; string_of_int (count_tag code) ])
       (Lint.Registry.codes ()));
  Printf.printf
    "\nexpected shape: the warm rerun performs zero entry evaluations (got %d)\n\
     and replays byte-identical findings (got %b).\n"
    warm_ev identical

(* ---- E1: per-edit re-analysis latency through the daemon ---------------------------- *)

(* An editor session against [nmlc serve]: a warm phase (repeated
   analysis of unchanged files, every summary served from the hot
   in-memory tier) and an edit storm (each request re-analyzes a file
   whose one definition body just changed, so exactly its invalidation
   cone re-solves).  Latencies are per-request wall times over one
   persistent connection; the headline numbers are p50/p99. *)
let e1 () =
  section "E1" "analysis daemon -- per-edit re-analysis latency under an edit storm";
  let dir = scratch_dir "e1" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let nfiles = if !smoke then 6 else 12 in
  let requests = if !smoke then 30 else 120 in
  let path i = Filename.concat dir (Printf.sprintf "edit%02d.nml" i) in
  (* per-file unique bodies (the [i] constant), with a togglable [c]:
     cache keys digest normalized bodies, so only a body change -- not
     a reformat -- invalidates the file's cone *)
  let write i c =
    Out_channel.with_open_text (path i) (fun oc ->
        Out_channel.output_string oc
          (Ex.wrap
             [
               Printf.sprintf "gen x = cons %d (cons x nil)" ((1000 * i) + c);
               "use l = gen (car l)";
             ]
             "use [1]"))
  in
  let files = List.init nfiles (fun i -> write i 0; path i) in
  let sock = Filename.concat dir "s.sock" in
  let store =
    Cache.Store.create ~memory:true ~write_back:true (Filename.concat dir "cache")
  in
  let cfg =
    {
      (Serve.Server.default_config (Serve.Server.Socket sock)) with
      Serve.Server.jobs = 1;
      store = Some store;
      handle_signals = false;
      quiet = true;
    }
  in
  let stop = Serve.Server.spawn cfg in
  let deadline = Unix.gettimeofday () +. 5. in
  while (not (Sys.file_exists sock)) && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  Fun.protect ~finally:(fun () -> stop ()) @@ fun () ->
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  (* one request over the persistent connection: (latency_ns, evaluations) *)
  let analyze p =
    let payload =
      J.to_string
        (J.Obj
           [
             ("id", J.int 1);
             ("method", J.Str "analyze");
             ("params", J.Obj [ ("path", J.Str p) ]);
           ])
    in
    let t0 = Unix.gettimeofday () in
    if not (Serve.Frame.write fd payload) then failwith "E1: server gone";
    match Serve.Frame.read fd with
    | Error _ -> failwith "E1: no response"
    | Ok resp ->
        let t1 = Unix.gettimeofday () in
        let ev =
          match J.member "result" (J.parse resp) with
          | Some r -> (
              match J.member "evaluations" r with
              | Some (J.Num f) -> int_of_float f
              | _ -> failwith "E1: result without evaluations")
          | None -> failwith ("E1: error response: " ^ resp)
        in
        ((t1 -. t0) *. 1e9, ev)
  in
  (* fill the hot tier *)
  List.iter (fun p -> ignore (analyze p)) files;
  let percentile sorted q =
    sorted.(min (Array.length sorted - 1) (Array.length sorted * q / 100))
  in
  let rows = ref [] in
  let run_phase phase mutate =
    let lat = Array.make requests 0. in
    let evs = ref 0 in
    for r = 0 to requests - 1 do
      let i = r mod nfiles in
      mutate i r;
      let ns, ev = analyze (path i) in
      lat.(r) <- ns;
      evs := !evs + ev
    done;
    Array.sort compare lat;
    let p50 = percentile lat 50 and p99 = percentile lat 99 in
    json_records :=
      J.Obj
        [
          ("experiment", J.Str "E1");
          ("workload", J.Str "edit-storm");
          ("phase", J.Str phase);
          ("files", J.int nfiles);
          ("requests", J.int requests);
          ("p50_ns", J.int (int_of_float p50));
          ("p99_ns", J.int (int_of_float p99));
          ("evaluations", J.int !evs);
        ]
      :: !json_records;
    rows :=
      [
        phase; string_of_int requests; string_of_int !evs; ms p50; ms p99;
      ]
      :: !rows;
    (p50, p99, !evs)
  in
  (* warm: nothing changes, every request is a hot-tier replay *)
  let _, _, warm_evs = run_phase "warm" (fun _ _ -> ()) in
  (* edit storm: before each request, the target file's definition body
     changes, so its cone (and nothing else) re-solves *)
  let _, _, edit_evs = run_phase "edit" (fun i r -> write i (1 + r)) in
  print_table [ "phase"; "requests"; "evals"; "p50 ms"; "p99 ms" ] (List.rev !rows);
  Printf.printf
    "\nexpected shape: the warm phase is evaluation-free (got %d) while every\n\
     edit re-solves just its file's cone (%d evaluations over %d edits).\n"
    warm_evs edit_evs requests

(* ---- H1/H2: escape-guided heap -- throughput and pause distribution --------------- *)

(* Streaming workloads with a long-lived result and short-lived
   intermediates: the storage profile the generational/region heap is
   built for.  Each runs three ways -- the unannotated program on the
   legacy heap (analysis off), the same program on the generational heap
   (nursery only), and the fully annotated program on the generational
   heap (regions + pretenuring; analysis on).  The pause distribution is
   double-tracked: wall-clock nanoseconds for the headline, the
   deterministic cells-touched proxy for gates. *)

let h_sources =
  [
    ( "H1",
      "stream-pipeline",
      fun n ->
        Ex.wrap
          [ Ex.create_list_def; Ex.filter_def; Ex.map_def; Ex.sum_def ]
          (Printf.sprintf
             "sum (map (fun x -> x + 1) (filter (fun x -> x < %d) (create_list %d)))"
             (n / 2) n) );
    ( "H2",
      "sort-pipeline",
      fun n ->
        Ex.wrap
          [ Ex.create_list_def; Ex.filter_def; Ex.map_def; Ex.insert_def;
            Ex.isort_def; Ex.sum_def ]
          (Printf.sprintf
             "sum (isort (map (fun x -> x * x) (filter (fun x -> x < %d) \
              (create_list %d))))"
             (n / 2) n) );
  ]

let h_sizes experiment =
  match experiment with
  | "H1" -> if !smoke then [ 200 ] else [ 2000; 5000; 10000 ]
  | _ -> if !smoke then [ 50 ] else [ 100; 200; 400 ]

(* (config, policy, ir, heap configuration) -- the three measured setups *)
let h_configs surface =
  let base_ir = Runtime.Ir.of_program surface in
  (* Placement only: stack/block verdicts route intermediates into
     regions and pretenuring routes the escaping spine past the
     nursery.  Reuse stays off -- DCONS rewrites would claim the very
     call sites the region story is about and change the allocation
     counts the H invariants compare. *)
  let opt_ir =
    (T.optimize
       ~options:
         { T.none with T.monomorphize = true; T.stack = true; T.block = true;
           T.pretenure = true }
       surface)
      .T.ir
  in
  let gen = Runtime.Heap.generational in
  [
    ("analysis-off", "legacy", base_ir, Runtime.Heap.legacy);
    ("analysis-off", "generational", base_ir, gen);
    ("analysis-on", "generational", opt_ir, gen);
  ]

(* arena validation off: it is a debugging oracle that taxes exactly the
   config under measurement; the soundness harness runs it instead *)
let h_exec ir hcfg =
  let m = M.create ~heap_size:2048 ~config:hcfg () in
  let w = M.eval m ir in
  ignore (M.read_value m w);
  M.stats m

let h_run ~experiment ~workload n src =
  List.map
    (fun (config, policy, ir, hcfg) ->
      let stats = h_exec ir hcfg in
      let wall = time_once (fun () -> ignore (h_exec ir hcfg)) in
      let cp50, cp95, cmax =
        match Stats.pause_percentiles_cells stats with
        | Some t -> t
        | None -> (0, 0, 0)
      in
      let np50, np95, nmax =
        match Stats.pause_percentiles_ns stats with
        | Some t -> t
        | None -> (0., 0., 0.)
      in
      (* Headline throughput is workload items per second -- the
         optimized program allocates {e fewer} cells by design, so an
         allocation-count rate would punish exactly the win being
         measured.  The raw allocation rate is still recorded.  Like the
         pauses, throughput is double-tracked: machine_work (evaluation
         steps + GC work) is the deterministic proxy the gates compare;
         wall-clock is the headline. *)
      let throughput = float_of_int n /. (wall /. 1e9) in
      let alloc_rate =
        float_of_int (Stats.total_allocs stats) /. (wall /. 1e9)
      in
      let machine_work = stats.Stats.steps + Stats.gc_work stats in
      json_records :=
        J.Obj
          [
            ("experiment", J.Str experiment);
            ("workload", J.Str workload);
            ("config", J.Str config);
            ("policy", J.Str policy);
            ("size", J.int n);
            ("heap_allocs", J.int stats.Stats.heap_allocs);
            ("arena_allocs", J.int stats.Stats.arena_allocs);
            ("gc_runs", J.int stats.Stats.gc_runs);
            ("minor_gcs", J.int stats.Stats.minor_gcs);
            ("major_gcs", J.int stats.Stats.major_gcs);
            ("gc_work", J.int (Stats.gc_work stats));
            ("promoted", J.int stats.Stats.promoted);
            ("pretenured", J.int stats.Stats.pretenured);
            ("regions_reclaimed", J.int stats.Stats.regions_reclaimed);
            ("pause_cells_p50", J.int cp50);
            ("pause_cells_p95", J.int cp95);
            ("pause_cells_max", J.int cmax);
            ("pause_ns_p50", J.int (int_of_float np50));
            ("pause_ns_p95", J.int (int_of_float np95));
            ("pause_ns_max", J.int (int_of_float nmax));
            ("wall_ns", J.int (int_of_float wall));
            ("machine_work", J.int machine_work);
            ("throughput_ips", J.int (int_of_float throughput));
            ("alloc_rate_cps", J.int (int_of_float alloc_rate));
          ]
        :: !json_records;
      [
        config;
        policy;
        string_of_int n;
        string_of_int stats.Stats.heap_allocs;
        string_of_int stats.Stats.arena_allocs;
        string_of_int stats.Stats.gc_runs;
        string_of_int stats.Stats.minor_gcs;
        string_of_int (Stats.gc_work stats);
        string_of_int cmax;
        us nmax;
        Printf.sprintf "%.1f" (float_of_int machine_work /. float_of_int n);
        ms wall;
        Printf.sprintf "%.1f" (throughput /. 1e3);
      ])
    (h_configs (Surface.of_string src))

let h_bench experiment =
  let _, workload, mk_src =
    List.find (fun (e, _, _) -> String.equal e experiment) h_sources
  in
  section experiment
    (Printf.sprintf "escape-guided heap -- %s: throughput and pauses" workload);
  let rows =
    List.concat_map
      (fun n -> h_run ~experiment ~workload n (mk_src n))
      (h_sizes experiment)
  in
  print_table
    [
      "config"; "policy"; "n"; "heap"; "arena"; "gc"; "minor"; "gc-work";
      "pause-max"; "pause-us-max"; "work/item"; "wall-ms"; "kitems/s";
    ]
    rows;
  Printf.printf
    "\nexpected shape: analysis-on moves the intermediates into regions and the\n\
     escaping result out of the nursery, so gc-work and the pause maxima\n\
     collapse while allocation throughput rises; analysis-off generational\n\
     already bounds pauses by the nursery, legacy marks the whole live heap.\n"

let h1 () = h_bench "H1"
let h2 () = h_bench "H2"

(* ---- V1/V2: the bytecode VM -- storage optimizations at compiled speed ------------ *)

(* The same programs, heap configurations and storage policies as H1/H2
   and T4-T6, but executed on the compiled bytecode VM instead of the
   tree-walking machine.  The deterministic storage counters are the
   gates (the VM honors the optimizer's annotations natively, so
   opts-on must beat opts-off exactly as it does on the machine); the
   VM-vs-interpreter wall ratio is the headline and stays advisory. *)

module Vm = Backend.Vm

(* compile outside the timed loop; arena validation off like [h_exec] *)
let v_exec ?(heap = 2048) code hcfg =
  let m = Vm.create ~heap_size:heap ~config:hcfg () in
  ignore (Vm.read_value m (Vm.eval m code));
  Vm.stats m

let v1_run ~workload n src =
  List.map
    (fun (config, policy, ir, hcfg) ->
      let code = Vm.compile ir in
      let stats = v_exec code hcfg in
      let wall = time_once (fun () -> ignore (v_exec code hcfg)) in
      let interp_wall = time_once (fun () -> ignore (h_exec ir hcfg)) in
      let cp50, cp95, cmax =
        match Stats.pause_percentiles_cells stats with
        | Some t -> t
        | None -> (0, 0, 0)
      in
      let np50, np95, nmax =
        match Stats.pause_percentiles_ns stats with
        | Some t -> t
        | None -> (0., 0., 0.)
      in
      let throughput = float_of_int n /. (wall /. 1e9) in
      let alloc_rate = float_of_int (Stats.total_allocs stats) /. (wall /. 1e9) in
      let machine_work = stats.Stats.steps + Stats.gc_work stats in
      json_records :=
        J.Obj
          [
            ("experiment", J.Str "V1");
            ("workload", J.Str workload);
            ("config", J.Str config);
            ("policy", J.Str policy);
            ("size", J.int n);
            ("heap_allocs", J.int stats.Stats.heap_allocs);
            ("arena_allocs", J.int stats.Stats.arena_allocs);
            ("gc_runs", J.int stats.Stats.gc_runs);
            ("minor_gcs", J.int stats.Stats.minor_gcs);
            ("major_gcs", J.int stats.Stats.major_gcs);
            ("gc_work", J.int (Stats.gc_work stats));
            ("promoted", J.int stats.Stats.promoted);
            ("pretenured", J.int stats.Stats.pretenured);
            ("regions_reclaimed", J.int stats.Stats.regions_reclaimed);
            ("pause_cells_p50", J.int cp50);
            ("pause_cells_p95", J.int cp95);
            ("pause_cells_max", J.int cmax);
            ("pause_ns_p50", J.int (int_of_float np50));
            ("pause_ns_p95", J.int (int_of_float np95));
            ("pause_ns_max", J.int (int_of_float nmax));
            ("wall_ns", J.int (int_of_float wall));
            ("interp_wall_ns", J.int (int_of_float interp_wall));
            ("machine_work", J.int machine_work);
            ("throughput_ips", J.int (int_of_float throughput));
            ("alloc_rate_cps", J.int (int_of_float alloc_rate));
          ]
        :: !json_records;
      [
        config;
        policy;
        string_of_int n;
        string_of_int stats.Stats.heap_allocs;
        string_of_int stats.Stats.arena_allocs;
        string_of_int (Stats.gc_work stats);
        string_of_int cmax;
        ms wall;
        ms interp_wall;
        Printf.sprintf "%.1fx" (interp_wall /. wall);
      ])
    (h_configs (Surface.of_string src))

let v1 () =
  section "V1" "bytecode VM -- the H1/H2 streaming pipelines, analysis on/off";
  List.iter
    (fun (hexp, workload, mk_src) ->
      Printf.printf "\n%s on the VM:\n" workload;
      let rows =
        List.concat_map
          (fun n -> v1_run ~workload n (mk_src n))
          (h_sizes hexp)
      in
      print_table
        [
          "config"; "policy"; "n"; "heap"; "arena"; "gc-work"; "pause-max";
          "vm-ms"; "interp-ms"; "speedup";
        ]
        rows)
    h_sources;
  Printf.printf
    "\nexpected shape: the storage counters replay the machine's H1/H2 story\n\
     exactly (the VM honors the same annotations against the same heap);\n\
     the wall column shows the compiled backend running each configuration\n\
     faster than the tree-walking interpreter (advisory, never gated).\n"

(* T4-T6 workloads, shared with the gate so it can re-derive today's
   opts-off/opts-on ratios: (workload, optimizer options, heap, source) *)
let v2_workloads =
  [
    ( "t4-ps",
      { T.none with T.reuse = true },
      1024,
      fun n ->
        Ex.wrap
          [ Ex.append_def; Ex.split_def; Ex.ps_def ]
          ("ps " ^ int_list_src (lcg_list ~seed:42 n)) );
    ( "t4-rev",
      { T.none with T.reuse = true },
      1024,
      fun n ->
        Ex.wrap [ Ex.append_def; Ex.rev_def ]
          ("rev " ^ int_list_src (lcg_list ~seed:7 n)) );
    ( "t5-map-pair",
      { T.none with T.stack = true },
      256,
      fun n ->
        let pairs =
          List.init n (fun i -> Printf.sprintf "[%d, %d]" (2 * i) ((2 * i) + 1))
        in
        Ex.wrap [ Ex.map_def; Ex.pair_def ]
          (Printf.sprintf "map pair [%s]" (String.concat ", " pairs)) );
    ( "t6-ps-create",
      { T.none with T.block = true },
      512,
      fun n ->
        Ex.wrap
          [ Ex.append_def; Ex.split_def; Ex.ps_def; Ex.create_list_def ]
          (Printf.sprintf "ps (create_list %d)" n) );
  ]

let v2_sizes workload =
  if !smoke then
    [ (match workload with "t5-map-pair" -> 16 | "t4-rev" -> 32 | _ -> 50) ]
  else
    match workload with
    | "t4-ps" -> [ 100; 200; 400 ]
    | "t4-rev" -> [ 32; 64; 128 ]
    | "t5-map-pair" -> [ 16; 32; 64 ]
    | _ -> [ 50; 100; 200 ]

(* the two measured setups of a V2 workload: (config, ir) on the legacy heap *)
let v2_configs options surface =
  [
    ("opts-off", Runtime.Ir.of_program surface);
    ("opts-on", (T.optimize ~options surface).T.ir);
  ]

let v2_exec ~heap ir =
  let code = Vm.compile ir in
  v_exec ~heap code Runtime.Heap.legacy

let v2 () =
  section "V2" "bytecode VM -- the T4-T6 storage optimizations, opts on/off";
  List.iter
    (fun (workload, options, heap, mk_src) ->
      Printf.printf "\n%s on the VM:\n" workload;
      let rows =
        List.concat_map
          (fun n ->
            let surface = Surface.of_string (mk_src n) in
            List.map
              (fun (config, ir) ->
                let code = Vm.compile ir in
                let stats = v_exec ~heap code Runtime.Heap.legacy in
                let wall =
                  time_once (fun () ->
                      ignore (v_exec ~heap code Runtime.Heap.legacy))
                in
                let interp_wall =
                  time_once (fun () -> ignore (run_machine ~heap ir))
                in
                let alloc_rate =
                  float_of_int (Stats.total_allocs stats) /. (wall /. 1e9)
                in
                let machine_work = stats.Stats.steps + Stats.gc_work stats in
                json_records :=
                  J.Obj
                    [
                      ("experiment", J.Str "V2");
                      ("workload", J.Str workload);
                      ("config", J.Str config);
                      ("size", J.int n);
                      ("heap_allocs", J.int stats.Stats.heap_allocs);
                      ("arena_allocs", J.int stats.Stats.arena_allocs);
                      ("dcons_reuses", J.int stats.Stats.dcons_reuses);
                      ("gc_runs", J.int stats.Stats.gc_runs);
                      ("gc_work", J.int (Stats.gc_work stats));
                      ("swept", J.int stats.Stats.swept);
                      ("machine_work", J.int machine_work);
                      ("wall_ns", J.int (int_of_float wall));
                      ("interp_wall_ns", J.int (int_of_float interp_wall));
                      ("alloc_rate_cps", J.int (int_of_float alloc_rate));
                    ]
                  :: !json_records;
                [
                  config;
                  string_of_int n;
                  string_of_int stats.Stats.heap_allocs;
                  string_of_int stats.Stats.arena_allocs;
                  string_of_int stats.Stats.dcons_reuses;
                  string_of_int (Stats.gc_work stats);
                  ms wall;
                  ms interp_wall;
                  Printf.sprintf "%.1fx" (interp_wall /. wall);
                ])
              (v2_configs options surface))
          (v2_sizes workload)
      in
      print_table
        [
          "config"; "n"; "heap"; "arena"; "reuses"; "gc-work"; "vm-ms";
          "interp-ms"; "speedup";
        ]
        rows)
    v2_workloads;
  Printf.printf
    "\nexpected shape: per size, opts-on allocates fewer heap cells and does\n\
     less GC work than opts-off (T4 recycles spine cells with DCONS, T5/T6\n\
     divert spines into regions/blocks), and every optimization actually\n\
     fires (reuses or arena cells > 0); the VM-vs-interpreter speedup is\n\
     the headline, never the gate.\n"

(* ---- JSON validation ---------------------------------------------------------------- *)

let field = J.member

(* Three record families share one "records" array: solver runs (S1/S2,
   recognized by their "engine" field), batch-scaling runs (S3) and
   summary-cache runs (S4).  Each family carries its own shape and its
   own headline invariant, checked from the artifact itself. *)
let validate_json file =
  let src = In_channel.with_open_text file In_channel.input_all in
  match J.parse src with
  | exception J.Parse_error msg ->
      Printf.eprintf "%s: invalid JSON: %s\n" file msg;
      false
  | json -> (
      match field "records" json with
      | Some (J.Arr records) when records <> [] ->
          let get_num k r = match field k r with Some (J.Num f) -> f | _ -> Float.nan in
          let get_str k r = match field k r with Some (J.Str s) -> s | _ -> "" in
          let shaped ~strs ~nums r =
            List.for_all
              (fun k -> match field k r with Some (J.Str _) -> true | _ -> false)
              strs
            && List.for_all
                 (fun k -> match field k r with Some (J.Num _) -> true | _ -> false)
                 nums
          in
          let well_formed r =
            match get_str "experiment" r with
            | "S3" ->
                shaped ~strs:[ "workload" ]
                  ~nums:[ "jobs"; "files"; "cores"; "evaluations"; "errors"; "wall_ns" ]
                  r
            | "S4" ->
                shaped
                  ~strs:[ "workload"; "phase" ]
                  ~nums:[ "files"; "evaluations"; "scc_hits"; "scc_misses"; "wall_ns" ]
                  r
            | "L1" ->
                shaped
                  ~strs:[ "workload"; "phase" ]
                  ~nums:
                    [ "files"; "findings"; "evaluations"; "scc_hits"; "scc_misses";
                      "wall_ns" ]
                  r
            | "E1" ->
                shaped
                  ~strs:[ "workload"; "phase" ]
                  ~nums:[ "files"; "requests"; "p50_ns"; "p99_ns"; "evaluations" ]
                  r
            | "S5" -> (
                match get_str "workload" r with
                | "framework-overhead" ->
                    shaped
                      ~strs:[ "workload"; "shape"; "solver" ]
                      ~nums:[ "size"; "evaluations"; "wall_ns" ]
                      r
                | _ ->
                    shaped
                      ~strs:[ "workload"; "analysis"; "phase" ]
                      ~nums:
                        [ "files"; "evaluations"; "scc_hits"; "scc_misses";
                          "wall_ns" ]
                      r)
            | "S6" -> (
                match get_str "workload" r with
                | "alias-reuse" ->
                    shaped
                      ~strs:[ "workload"; "example"; "mode" ]
                      ~nums:
                        [ "candidates"; "substituted_calls"; "alias_licensed";
                          "heap_allocs"; "dcons_reuses"; "wall_ns" ]
                      r
                | _ ->
                    shaped
                      ~strs:[ "workload"; "phase" ]
                      ~nums:
                        [ "files"; "evaluations"; "scc_hits"; "scc_misses";
                          "wall_ns" ]
                      r)
            | "H1" | "H2" ->
                shaped
                  ~strs:[ "workload"; "config"; "policy" ]
                  ~nums:
                    [ "size"; "heap_allocs"; "arena_allocs"; "gc_runs"; "minor_gcs";
                      "major_gcs"; "gc_work"; "pause_cells_max"; "pause_ns_max";
                      "machine_work"; "wall_ns"; "throughput_ips";
                      "alloc_rate_cps" ]
                  r
            | "V1" ->
                shaped
                  ~strs:[ "workload"; "config"; "policy" ]
                  ~nums:
                    [ "size"; "heap_allocs"; "arena_allocs"; "gc_runs"; "minor_gcs";
                      "major_gcs"; "gc_work"; "pause_cells_max"; "pause_ns_max";
                      "machine_work"; "wall_ns"; "interp_wall_ns";
                      "throughput_ips"; "alloc_rate_cps" ]
                  r
            | "V2" ->
                shaped
                  ~strs:[ "workload"; "config" ]
                  ~nums:
                    [ "size"; "heap_allocs"; "arena_allocs"; "dcons_reuses";
                      "gc_runs"; "gc_work"; "swept"; "machine_work"; "wall_ns";
                      "interp_wall_ns"; "alloc_rate_cps" ]
                  r
            | _ ->
                shaped
                  ~strs:[ "workload"; "engine" ]
                  ~nums:
                    [ "size"; "entries"; "evaluations"; "passes"; "iterations";
                      "sccs"; "largest_scc"; "cache_hits"; "cache_misses";
                      "cache_invalidated"; "dbound"; "wall_ns" ]
                  r
                && (match field "capped" r with Some (J.Bool _) -> true | _ -> false)
          in
          let shape_ok = List.for_all well_formed records in
          if not shape_ok then
            Printf.eprintf "%s: record with missing/ill-typed fields\n" file;
          let solver =
            List.filter (fun r -> match field "engine" r with Some _ -> true | None -> false) records
          in
          let s4 = List.filter (fun r -> get_str "experiment" r = "S4") records in
          (* solver headline: strictly fewer entry evaluations on every
             wide-chain size *)
          let wide = List.filter (fun r -> get_str "workload" r = "wide-chain") solver in
          let sizes =
            List.sort_uniq compare (List.map (fun r -> get_num "size" r) wide)
          in
          let beats =
            solver = []
            || wide <> []
               && List.for_all
                    (fun sz ->
                      let of_engine e =
                        List.find_opt
                          (fun r -> get_num "size" r = sz && get_str "engine" r = e)
                          wide
                      in
                      match (of_engine "worklist", of_engine "round-robin") with
                      | Some w, Some r ->
                          get_num "evaluations" w < get_num "evaluations" r
                      | _ -> false)
                    sizes
          in
          if not beats then
            Printf.eprintf
              "%s: worklist does not beat round-robin on every wide-chain size\n" file;
          (* cache headline: a warm rerun performs zero entry evaluations,
             and an edit costs strictly less than the cold solve *)
          let phase p = List.filter (fun r -> get_str "phase" r = p) s4 in
          let cache_ok =
            s4 = []
            || phase "warm" <> []
               && List.for_all (fun r -> get_num "evaluations" r = 0.) (phase "warm")
               && List.for_all (fun r -> get_num "evaluations" r > 0.) (phase "cold")
               && List.exists
                    (fun e ->
                      List.exists
                        (fun c -> get_num "evaluations" e < get_num "evaluations" c)
                        (phase "cold"))
                    (phase "edited")
          in
          if not cache_ok then
            Printf.eprintf
              "%s: cache invariants broken (warm must be 0 evaluations, an edit \
               cheaper than cold)\n"
              file;
          (* lint headline: a warm lint rerun is evaluation-free and replays
             the cold run's findings byte for byte *)
          let l1r = List.filter (fun r -> get_str "experiment" r = "L1") records in
          let lphase p = List.filter (fun r -> get_str "phase" r = p) l1r in
          let get_bool k r =
            match field k r with Some (J.Bool b) -> b | _ -> false
          in
          let sum_findings p =
            List.fold_left (fun a r -> a +. get_num "findings" r) 0. (lphase p)
          in
          let lint_ok =
            l1r = []
            || lphase "warm" <> []
               && lphase "cold" <> []
               && List.for_all
                    (fun r ->
                      get_num "evaluations" r = 0. && get_bool "identical" r)
                    (lphase "warm")
               && sum_findings "warm" = sum_findings "cold"
          in
          if not lint_ok then
            Printf.eprintf
              "%s: lint-cache invariants broken (warm must be 0 evaluations with \
               identical findings)\n"
              file;
          (* daemon headline: the warm phase is evaluation-free, and its
             median latency does not exceed the edit storm's *)
          let e1r = List.filter (fun r -> get_str "experiment" r = "E1") records in
          let ephase p = List.filter (fun r -> get_str "phase" r = p) e1r in
          let serve_ok =
            e1r = []
            || ephase "warm" <> []
               && ephase "edit" <> []
               && List.for_all
                    (fun r ->
                      get_num "p50_ns" r <= get_num "p99_ns" r
                      && get_num "requests" r > 0.)
                    e1r
               && List.for_all (fun r -> get_num "evaluations" r = 0.) (ephase "warm")
               && List.for_all (fun r -> get_num "evaluations" r > 0.) (ephase "edit")
               && List.for_all
                    (fun w ->
                      List.for_all
                        (fun e -> get_num "p50_ns" w <= get_num "p99_ns" e)
                        (ephase "edit"))
                    (ephase "warm")
          in
          if not serve_ok then
            Printf.eprintf
              "%s: daemon invariants broken (warm phase must be 0 evaluations with \
               p50 <= the edit storm's p99, and p50 <= p99 everywhere)\n"
              file;
          (* framework headline: the functorized escape solver performs
             exactly the frozen solver's entry evaluations on every
             (shape, size), the aggregate wall overhead stays within
             1.05x (plus a 0.5ms noise floor for smoke-sized runs), and
             every registered analysis' warm rerun is evaluation-free *)
          let s5r = List.filter (fun r -> get_str "experiment" r = "S5") records in
          let overhead =
            List.filter (fun r -> get_str "workload" r = "framework-overhead") s5r
          in
          let s5cache =
            List.filter (fun r -> get_str "workload" r = "analysis-cache") s5r
          in
          let framework_ok =
            s5r = []
            || overhead <> []
               && s5cache <> []
               && (let keys =
                     List.sort_uniq compare
                       (List.map
                          (fun r -> (get_str "shape" r, get_num "size" r))
                          overhead)
                   in
                   List.for_all
                     (fun (shape, sz) ->
                       let of_solver s =
                         List.find_opt
                           (fun r ->
                             get_str "solver" r = s
                             && get_str "shape" r = shape
                             && get_num "size" r = sz)
                           overhead
                       in
                       match (of_solver "legacy", of_solver "framework") with
                       | Some l, Some f ->
                           get_num "evaluations" l = get_num "evaluations" f
                       | _ -> false)
                     keys)
               && (let total s =
                     List.fold_left
                       (fun a r ->
                         if get_str "solver" r = s then a +. get_num "wall_ns" r
                         else a)
                       0. overhead
                   in
                   total "framework" <= (total "legacy" *. 1.05) +. 5e5)
               && (let analyses =
                     List.sort_uniq compare (List.map (get_str "analysis") s5cache)
                   in
                   analyses <> []
                   && List.for_all
                        (fun a ->
                          let at p =
                            List.find_opt
                              (fun r ->
                                get_str "analysis" r = a && get_str "phase" r = p)
                              s5cache
                          in
                          match (at "cold", at "warm") with
                          | Some c, Some w ->
                              get_num "evaluations" c > 0.
                              && get_num "evaluations" w = 0.
                              && get_num "scc_misses" w = 0.
                          | _ -> false)
                        analyses)
          in
          if not framework_ok then
            Printf.eprintf
              "%s: framework invariants broken (functorized evaluations must equal \
               the frozen solver's, aggregate wall overhead within 1.05x, and every \
               analysis' warm rerun evaluation-free)\n"
              file;
          (* heap headline: on every workload size, analysis-on must not
             do more GC work or pause longer (deterministic cells proxy)
             than analysis-off on the same generational heap, and must
             not pause longer than legacy wherever legacy paused at all
             (a growing legacy heap dodges collection on small inputs by
             spending footprint instead -- nothing beats zero pauses).
             Where the optimization had real room (>4096 cells of GC
             work saved -- above the whole working set of a smoke run)
             the throughput must follow on the deterministic proxy:
             strictly less machine_work (steps + GC work) per run.  Both
             the pause and throughput beats are gated on deterministic
             proxies; the recorded wall-clock numbers are the headline,
             not the gate. *)
          let hrec =
            List.filter
              (fun r ->
                let e = get_str "experiment" r in
                String.equal e "H1" || String.equal e "H2"
                || String.equal e "V1")
              records
          in
          let heap_ok =
            hrec = []
            || List.for_all
                 (fun exp ->
                   let recs =
                     List.filter (fun r -> get_str "experiment" r = exp) hrec
                   in
                   recs = []
                   ||
                   let sizes =
                     List.sort_uniq compare
                       (List.map
                          (fun r -> (get_str "workload" r, get_num "size" r))
                          recs)
                   in
                   sizes <> []
                   && List.for_all
                        (fun (wl, sz) ->
                          let at config policy =
                            List.find_opt
                              (fun r ->
                                get_str "workload" r = wl
                                && get_num "size" r = sz
                                && get_str "config" r = config
                                && get_str "policy" r = policy)
                              recs
                          in
                          (* the VM's frame/register roots differ from the
                             machine's environment chains by a handful of
                             cells at any given collection point, so its
                             pause comparisons get a small absolute slack *)
                          let slack =
                            if String.equal exp "V1" then 16. else 0.
                          in
                          match
                            ( at "analysis-on" "generational",
                              at "analysis-off" "legacy",
                              at "analysis-off" "generational" )
                          with
                          | Some on, Some leg, Some gen ->
                              get_num "gc_work" on <= get_num "gc_work" gen
                              && get_num "pause_cells_max" on
                                 <= get_num "pause_cells_max" gen +. slack
                              && (get_num "pause_cells_max" leg = 0.
                                 || get_num "pause_cells_max" on
                                    <= get_num "pause_cells_max" leg +. slack)
                              && (get_num "gc_work" gen -. get_num "gc_work" on
                                  <= 4096.
                                 || get_num "machine_work" on
                                    < get_num "machine_work" gen)
                          | _ -> false)
                        sizes)
                 [ "H1"; "H2"; "V1" ]
          in
          if not heap_ok then
            Printf.eprintf
              "%s: heap invariants broken (analysis-on must beat analysis-off in \
               gc_work and max pause, and in throughput where the gap is real)\n"
              file;
          (* VM headline: per (workload, size), opts-on allocates no more
             heap cells and does no more GC work than opts-off, and the
             optimization actually fires (reuses or arena cells).  The
             recorded wall and allocation-rate numbers stay advisory. *)
          let v2r = List.filter (fun r -> get_str "experiment" r = "V2") records in
          let vm_ok =
            v2r = []
            || (let keys =
                  List.sort_uniq compare
                    (List.map
                       (fun r -> (get_str "workload" r, get_num "size" r))
                       v2r)
                in
                keys <> []
                && List.for_all
                     (fun (wl, sz) ->
                       let at config =
                         List.find_opt
                           (fun r ->
                             get_str "workload" r = wl
                             && get_num "size" r = sz
                             && get_str "config" r = config)
                           v2r
                       in
                       match (at "opts-off", at "opts-on") with
                       | Some off, Some on ->
                           get_num "heap_allocs" on <= get_num "heap_allocs" off
                           && get_num "gc_work" on <= get_num "gc_work" off
                           && get_num "dcons_reuses" on
                              +. get_num "arena_allocs" on
                              > 0.
                       | _ -> false)
                     keys)
          in
          if not vm_ok then
            Printf.eprintf
              "%s: VM invariants broken (opts-on must allocate no more heap cells \
               and do no more GC work than opts-off, with the optimization firing)\n"
              file;
          (* sharing headline: per example, alias-informed reuse redirects
             at least as many call sites and allocates no more heap cells
             than the Theorem-2 baseline; the baseline licenses nothing of
             its own ([alias_licensed = 0]); some sites are licensed only
             by the sharing analysis, and on at least three examples the
             heap-allocation count strictly drops; the sharing analysis'
             warm summary-cache rerun is evaluation-free *)
          let s6r = List.filter (fun r -> get_str "experiment" r = "S6") records in
          let s6reuse =
            List.filter (fun r -> get_str "workload" r = "alias-reuse") s6r
          in
          let s6cache =
            List.filter (fun r -> get_str "workload" r = "sharing-cache") s6r
          in
          let sharing_ok =
            s6r = []
            || s6reuse <> []
               && s6cache <> []
               && (let names =
                     List.sort_uniq compare
                       (List.map (get_str "example") s6reuse)
                   in
                   let at name mode =
                     List.find_opt
                       (fun r ->
                         get_str "example" r = name && get_str "mode" r = mode)
                       s6reuse
                   in
                   let drops =
                     List.filter
                       (fun name ->
                         match (at name "t2-baseline", at name "alias-informed") with
                         | Some t2, Some al ->
                             get_num "heap_allocs" al < get_num "heap_allocs" t2
                         | _ -> false)
                       names
                   in
                   names <> []
                   && List.for_all
                        (fun name ->
                          match
                            (at name "t2-baseline", at name "alias-informed")
                          with
                          | Some t2, Some al ->
                              get_num "substituted_calls" al
                              >= get_num "substituted_calls" t2
                              && get_num "heap_allocs" al
                                 <= get_num "heap_allocs" t2
                              && get_num "alias_licensed" t2 = 0.
                          | _ -> false)
                        names
                   && List.fold_left
                        (fun a r -> a +. get_num "alias_licensed" r)
                        0. s6reuse
                      > 0.
                   && List.length drops >= 3)
               && (let at p =
                     List.find_opt (fun r -> get_str "phase" r = p) s6cache
                   in
                   match (at "cold", at "warm") with
                   | Some c, Some w ->
                       get_num "evaluations" c > 0.
                       && get_num "evaluations" w = 0.
                       && get_num "scc_misses" w = 0.
                   | _ -> false)
          in
          if not sharing_ok then
            Printf.eprintf
              "%s: sharing invariants broken (alias-informed reuse must redirect \
               at least as much and allocate no more than the Theorem-2 baseline, \
               license sites of its own with heap allocs dropping on >=3 examples, \
               and the warm sharing-cache rerun must be evaluation-free)\n"
              file;
          if shape_ok && beats && cache_ok && lint_ok && serve_ok && heap_ok
             && framework_ok && vm_ok && sharing_ok
          then
            Printf.printf
              "%s: OK (%d records; %d solver, %d cache, %d lint, %d serve, %d heap, \
               %d framework, %d vm, %d sharing)\n"
              file (List.length records) (List.length solver) (List.length s4)
              (List.length l1r) (List.length e1r) (List.length hrec)
              (List.length s5r) (List.length v2r) (List.length s6r);
          shape_ok && beats && cache_ok && lint_ok && serve_ok && heap_ok
          && framework_ok && vm_ok && sharing_ok
      | _ ->
          Printf.eprintf "%s: no \"records\" array\n" file;
          false)

(* ---- the benchmark time series ------------------------------------------------------- *)

(* Every committed artifact (BENCH_PR2 .. BENCH_PR7) folds into one
   schema-stable series: whatever family a record belongs to, it
   contributes to the same five columns, so the trajectory stays
   comparable as new PRs add new experiment families. *)
let history files =
  let ok = ref true in
  let rows =
    List.concat_map
      (fun file ->
        match J.parse (In_channel.with_open_text file In_channel.input_all) with
        | exception Sys_error msg ->
            Printf.eprintf "%s\n" msg;
            ok := false;
            []
        | exception J.Parse_error msg ->
            Printf.eprintf "%s: invalid JSON: %s\n" file msg;
            ok := false;
            []
        | json -> (
            match field "records" json with
            | Some (J.Arr records) when records <> [] ->
                let exp_of r =
                  match field "experiment" r with Some (J.Str s) -> s | _ -> "?"
                in
                let exps = List.sort_uniq compare (List.map exp_of records) in
                List.map
                  (fun e ->
                    let rs = List.filter (fun r -> String.equal (exp_of r) e) records in
                    let total k =
                      List.fold_left
                        (fun a r ->
                          a +. (match field k r with Some (J.Num f) -> f | _ -> 0.))
                        0. rs
                    in
                    [
                      Filename.basename file;
                      e;
                      string_of_int (List.length rs);
                      Printf.sprintf "%.0f" (total "evaluations");
                      ms (total "wall_ns");
                    ])
                  exps
            | _ ->
                Printf.eprintf "%s: no \"records\" array\n" file;
                ok := false;
                []))
      files
  in
  print_table [ "artifact"; "experiment"; "records"; "evaluations"; "wall ms" ] rows;
  Printf.printf "\nhistory: %d artifact(s), %d series row(s)\n" (List.length files)
    (List.length rows);
  !ok

(* ---- the perf-trajectory gate -------------------------------------------------------- *)

(* CI smoke: every committed artifact must still validate, and the
   deterministic headline metrics must be reproducible today within 20%
   of what the artifact recorded.  Wall-clock metrics are never gated
   (E1 and the throughput fields are machine-dependent); the gated
   quantities are evaluation and cell counts, which the engines produce
   exactly. *)
let gate files =
  let ok = ref true in
  let failgate fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "bench-gate: %s\n" msg;
        ok := false)
      fmt
  in
  List.iter (fun f -> if not (validate_json f) then ok := false) files;
  let records =
    List.concat_map
      (fun file ->
        match J.parse (In_channel.with_open_text file In_channel.input_all) with
        | exception _ -> []
        | json -> (
            match field "records" json with Some (J.Arr rs) -> rs | _ -> []))
      files
  in
  let get_num k r = match field k r with Some (J.Num f) -> f | _ -> Float.nan in
  let get_str k r = match field k r with Some (J.Str s) -> s | _ -> "" in
  let within_120pct ~what ~recorded ~now =
    (* regression = today exceeds the recorded count by more than 20%
       (+2 absolute slack so a recorded 0 stays checkable) *)
    if float_of_int now > (recorded *. 1.2) +. 2. then
      failgate "%s regressed: recorded %.0f, now %d" what recorded now
  in
  (* S1: the worklist engine's entry evaluations on the largest recorded
     wide-chain size are exact; re-run and compare *)
  let s1_wide =
    List.filter
      (fun r ->
        get_str "experiment" r = "S1"
        && get_str "workload" r = "wide-chain"
        && get_str "engine" r = "worklist")
      records
  in
  (match
     List.sort (fun a b -> compare (get_num "size" b) (get_num "size" a)) s1_wide
   with
  | [] -> ()
  | biggest :: _ ->
      let n = int_of_float (get_num "size" biggest) in
      let stats, _ =
        run_engine ~engine:Fix.Worklist
          ~demand:(fun t -> ignore (Fix.value t (Printf.sprintf "w%d" (n - 1)) None))
          (wide_chain_src n)
      in
      within_120pct
        ~what:(Printf.sprintf "S1 worklist evaluations (wide chain of %d)" n)
        ~recorded:(get_num "evaluations" biggest) ~now:stats.Fix.stats_evaluations);
  (* S5: each registered analysis' cold evaluation count over the builtin
     soundness corpus is exact; re-run coldly (no store) and compare *)
  let s5_cold =
    List.filter
      (fun r ->
        get_str "experiment" r = "S5"
        && get_str "workload" r = "analysis-cache"
        && get_str "phase" r = "cold")
      records
  in
  List.iter
    (fun recorded ->
      let name = get_str "analysis" recorded in
      match Analyses.Registry.find name with
      | None -> failgate "S5 records unknown analysis %s" name
      | Some e ->
          let now =
            List.fold_left
              (fun acc (_, src) ->
                let prog = Nml.Infer.infer_program (Surface.of_string src) in
                let o = e.Analyses.Registry.run prog in
                acc + o.Analyses.Registry.evaluations)
              0 Check.Harness.builtin_corpus
          in
          within_120pct
            ~what:(Printf.sprintf "S5 %s cold evaluations (builtin corpus)" name)
            ~recorded:(get_num "evaluations" recorded) ~now)
    s5_cold;
  (* H1/H2: re-run the smallest recorded size of each workload and compare
     the deterministic storage counters per configuration *)
  List.iter
    (fun (experiment, _, mk_src) ->
      let recs =
        List.filter (fun r -> get_str "experiment" r = experiment) records
      in
      match List.sort compare (List.map (get_num "size") recs) with
      | [] -> ()
      | sz :: _ ->
          let n = int_of_float sz in
          List.iter
            (fun (config, policy, ir, hcfg) ->
              match
                List.find_opt
                  (fun r ->
                    get_num "size" r = sz
                    && get_str "config" r = config
                    && get_str "policy" r = policy)
                  recs
              with
              | None ->
                  failgate "%s has no recorded %s/%s row at size %d" experiment
                    config policy n
              | Some recorded ->
                  let stats = h_exec ir hcfg in
                  let cmax =
                    match Stats.pause_percentiles_cells stats with
                    | Some (_, _, m) -> m
                    | None -> 0
                  in
                  let check what r n = within_120pct
                    ~what:(Printf.sprintf "%s %s/%s (n=%d) %s" experiment config
                             policy (int_of_float sz) what)
                    ~recorded:r ~now:n
                  in
                  check "heap_allocs" (get_num "heap_allocs" recorded)
                    stats.Stats.heap_allocs;
                  check "gc_work" (get_num "gc_work" recorded) (Stats.gc_work stats);
                  check "pause_cells_max" (get_num "pause_cells_max" recorded) cmax)
            (h_configs (Surface.of_string (mk_src n))))
    h_sources;
  (* V1/V2: the optimization speedup itself is gated, not just the raw
     counters -- today's opts-off/opts-on ratio on the deterministic
     metrics must be at least 80% of what the artifact recorded.  (+1 on
     both sides keeps a zero denominator harmless.)  Wall-clock speedups
     are re-derived and printed, never gated. *)
  let vratio off on = (off +. 1.) /. (on +. 1.) in
  let check_ratio ~what ~recorded ~now =
    if now < 0.8 *. recorded then
      failgate "%s speedup regressed: artifact %.2fx, now %.2fx" what recorded
        now
  in
  let v1r =
    List.filter (fun r -> get_str "experiment" r = "V1") records
  in
  List.iter
    (fun (hexp, workload, mk_src) ->
      let recs =
        List.filter (fun r -> get_str "workload" r = workload) v1r
      in
      match List.sort compare (List.map (get_num "size") recs) with
      | [] -> ()
      | sz :: _ ->
          let n = int_of_float sz in
          ignore hexp;
          let at config policy =
            List.find_opt
              (fun r ->
                get_num "size" r = sz
                && get_str "config" r = config
                && get_str "policy" r = policy)
              recs
          in
          let now =
            List.map
              (fun (config, policy, ir, hcfg) ->
                let stats = v_exec (Vm.compile ir) hcfg in
                (match at config policy with
                | None ->
                    failgate "V1 %s has no recorded %s/%s row at size %d"
                      workload config policy n
                | Some recorded ->
                    let check what r v =
                      within_120pct
                        ~what:
                          (Printf.sprintf "V1 %s %s/%s (n=%d) %s" workload
                             config policy n what)
                        ~recorded:r ~now:v
                    in
                    check "heap_allocs"
                      (get_num "heap_allocs" recorded)
                      stats.Stats.heap_allocs;
                    check "gc_work" (get_num "gc_work" recorded)
                      (Stats.gc_work stats));
                ((config, policy), float_of_int (Stats.gc_work stats)))
              (h_configs (Surface.of_string (mk_src n)))
          in
          let gc_of config policy which =
            match which with
            | `Now -> List.assoc_opt (config, policy) now
            | `Recorded ->
                Option.map (get_num "gc_work") (at config policy)
          in
          (match
             ( gc_of "analysis-off" "generational" `Recorded,
               gc_of "analysis-on" "generational" `Recorded,
               gc_of "analysis-off" "generational" `Now,
               gc_of "analysis-on" "generational" `Now )
           with
          | Some roff, Some ron, Some noff, Some non ->
              check_ratio
                ~what:(Printf.sprintf "V1 %s (n=%d) gc_work" workload n)
                ~recorded:(vratio roff ron) ~now:(vratio noff non)
          | _ -> ()))
    h_sources;
  List.iter
    (fun (workload, options, heap, mk_src) ->
      let recs =
        List.filter
          (fun r ->
            get_str "experiment" r = "V2" && get_str "workload" r = workload)
          records
      in
      match List.sort compare (List.map (get_num "size") recs) with
      | [] -> ()
      | sz :: _ ->
          let n = int_of_float sz in
          let at config =
            List.find_opt
              (fun r ->
                get_num "size" r = sz && get_str "config" r = config)
              recs
          in
          let surface = Surface.of_string (mk_src n) in
          let now =
            List.map
              (fun (config, ir) ->
                let stats = v2_exec ~heap ir in
                (match at config with
                | None ->
                    failgate "V2 %s has no recorded %s row at size %d" workload
                      config n
                | Some recorded ->
                    let check what r v =
                      within_120pct
                        ~what:
                          (Printf.sprintf "V2 %s %s (n=%d) %s" workload config
                             n what)
                        ~recorded:r ~now:v
                    in
                    check "heap_allocs"
                      (get_num "heap_allocs" recorded)
                      stats.Stats.heap_allocs;
                    check "gc_work" (get_num "gc_work" recorded)
                      (Stats.gc_work stats));
                (config, stats))
              (v2_configs options surface)
          in
          (match (at "opts-off", at "opts-on", List.assoc_opt "opts-off" now,
                  List.assoc_opt "opts-on" now)
           with
          | Some roff, Some ron, Some noff, Some non ->
              List.iter
                (fun (what, key, nval) ->
                  check_ratio
                    ~what:(Printf.sprintf "V2 %s (n=%d) %s" workload n what)
                    ~recorded:(vratio (get_num key roff) (get_num key ron))
                    ~now:nval)
                [
                  ( "heap_allocs", "heap_allocs",
                    vratio
                      (float_of_int noff.Stats.heap_allocs)
                      (float_of_int non.Stats.heap_allocs) );
                  ( "gc_work", "gc_work",
                    vratio
                      (float_of_int (Stats.gc_work noff))
                      (float_of_int (Stats.gc_work non)) );
                ];
              (* advisory: today's wall speedup of the optimization *)
              let now_wall =
                let t c =
                  let _, ir = List.find (fun (k, _) -> k = c) (v2_configs options surface) in
                  let code = Vm.compile ir in
                  time_once (fun () -> ignore (v_exec ~heap code Runtime.Heap.legacy))
                in
                vratio (t "opts-off") (t "opts-on")
              in
              Printf.printf
                "bench-gate: V2 %s (n=%d) wall speedup %.2fx now vs %.2fx \
                 recorded (advisory)\n"
                workload n now_wall
                (vratio (get_num "wall_ns" roff) (get_num "wall_ns" ron))
          | _ -> ()))
    v2_workloads;
  (* S6: the sharing analysis' licensing power is a deterministic counter,
     so it is re-derived exactly -- per recorded example, today's counts
     must stay within the 20% band, today's Theorem-2-to-alias allocation
     ratio must keep at least 80% of the recorded speedup, and the sites
     only the sharing analysis licenses must not vanish *)
  let s6recs =
    List.filter
      (fun r ->
        get_str "experiment" r = "S6" && get_str "workload" r = "alias-reuse")
      records
  in
  (if s6recs <> [] then
     let examples = s6_examples () in
     if examples = [] then
       failgate
         "S6 rows recorded but examples/programs/ not found (run bench-gate \
          from the repository root)"
     else begin
       let licensed_now = ref 0. in
       let licensed_rec = ref 0. in
       List.iter
         (fun (name, src) ->
           let at mode =
             List.find_opt
               (fun r ->
                 get_str "example" r = name && get_str "mode" r = mode)
               s6recs
           in
           match (at "t2-baseline", at "alias-informed") with
           | Some rt2, Some ral ->
               let surface = Surface.of_string src in
               let now =
                 List.map
                   (fun (mode, options) ->
                     let rep, stats = s6_measure options surface in
                     (mode, (rep, stats)))
                   s6_modes
               in
               let nt2 = List.assoc "t2-baseline" now in
               let nal = List.assoc "alias-informed" now in
               let check mode what r v =
                 within_120pct
                   ~what:(Printf.sprintf "S6 %s %s %s" name mode what)
                   ~recorded:r ~now:v
               in
               List.iter
                 (fun (mode, recorded, (rep, stats)) ->
                   check mode "substituted_calls"
                     (get_num "substituted_calls" recorded)
                     rep.Optimize.Reuse.substituted_calls;
                   check mode "heap_allocs"
                     (get_num "heap_allocs" recorded)
                     stats.Stats.heap_allocs)
                 [ ("t2-baseline", rt2, nt2); ("alias-informed", ral, nal) ];
               licensed_rec := !licensed_rec +. get_num "alias_licensed" ral;
               licensed_now :=
                 !licensed_now
                 +. float_of_int (fst nal).Optimize.Reuse.alias_licensed;
               check_ratio
                 ~what:(Printf.sprintf "S6 %s heap_allocs" name)
                 ~recorded:
                   (vratio
                      (get_num "heap_allocs" rt2)
                      (get_num "heap_allocs" ral))
                 ~now:
                   (vratio
                      (float_of_int (snd nt2).Stats.heap_allocs)
                      (float_of_int (snd nal).Stats.heap_allocs))
           | _ -> ())
         examples;
       if !licensed_rec > 0. && !licensed_now <= 0. then
         failgate
           "S6 alias-licensed reuse sites vanished: artifact recorded %.0f, \
            now 0"
           !licensed_rec
     end);
  if !ok then
    Printf.printf
      "bench-gate: OK (%d artifact(s), %d record(s); headline metrics within 20%%)\n"
      (List.length files) (List.length records);
  !ok

(* ---- driver -------------------------------------------------------------------------- *)

let experiments =
  [
    ("F1", f1); ("T1", t1); ("T2", t2); ("T3", t3); ("T4", t4); ("T5", t5);
    ("T6", t6); ("T7", t7); ("T8", t8); ("T9", t9); ("X1", x1); ("X2", x2);
    ("S1", s1); ("S2", s2); ("S3", s3); ("S4", s4); ("S5", s5); ("S6", s6);
    ("L1", l1);
    ("E1", e1); ("H1", h1); ("H2", h2); ("V1", v1); ("V2", v2);
  ]

let () =
  let json_file = ref None in
  let validate = ref None in
  let mode = ref `Run in
  let rec parse_args ids = function
    | [] -> List.rev ids
    | "--smoke" :: rest ->
        smoke := true;
        parse_args ids rest
    | "--json" :: file :: rest ->
        json_file := Some file;
        parse_args ids rest
    | "--validate" :: file :: rest ->
        validate := Some file;
        parse_args ids rest
    | "--history" :: rest ->
        mode := `History;
        parse_args ids rest
    | "--gate" :: rest ->
        mode := `Gate;
        parse_args ids rest
    | id :: rest -> parse_args (id :: ids) rest
  in
  let ids = parse_args [] (List.tl (Array.to_list Sys.argv)) in
  match (!mode, !validate) with
  | `History, _ -> if not (history ids) then exit 1
  | `Gate, _ -> if not (gate ids) then exit 1
  | `Run, Some file -> if not (validate_json file) then exit 1
  | `Run, None -> (
      let requested = if ids = [] then List.map fst experiments else ids in
      List.iter
        (fun id ->
          match List.assoc_opt (String.uppercase_ascii id) experiments with
          | Some f -> f ()
          | None ->
              Printf.eprintf
                "unknown experiment %s (known: F1, T1..T9, X1, X2, S1..S6, L1, E1, \
                 H1, H2, V1, V2)\n"
                id)
        requested;
      match !json_file with
      | None -> ()
      | Some file ->
          let doc =
            J.Obj
              [
                ("schema", J.Str "escape-bench/solver-v1");
                ("records", J.Arr (List.rev !json_records));
              ]
          in
          Out_channel.with_open_text file (fun oc ->
              Out_channel.output_string oc (J.to_string doc));
          Printf.printf "\nwrote %d records to %s\n" (List.length !json_records) file)
