lib/nml/surface.ml: Ast List Parser Pretty
