(** Sharing analysis derived from escape information (section 6,
    Theorem 2).

    For a strict language, escape analysis makes sharing analysis of
    lists easy: if [f] takes [n] parameters with [d_i] spines of which at
    most [esc_i] (bottom) spines escape, and returns a list with [d_f]
    spines, then

    + with [u_i] unshared top spines known for each actual argument, all
      cells in the top
      [d_f - max_i (min (esc_i) (d_i - u_i))] spines of the result are
      unshared;
    + for arbitrary arguments (worst case [u_i = 0]), all cells in the
      top [d_f - max_i esc_i] spines of the result are unshared.

    "Unshared" licenses in-place reuse: a cell that is both non-escaping
    (dead after the call) and unshared (no other live pointer) can be
    recycled by [DCONS] (see {!Optimize.Reuse}). *)

type info = {
  func : string;
  result_spines : int;  (** [d_f] *)
  arg_spines : int list;  (** [d_i], in parameter order *)
  arg_escapes : int list;  (** [esc_i] from the global escape test *)
  unshared_top : int;  (** Theorem 2's guarantee for this query *)
}

val result_unshared : ?inst:Nml.Ty.t -> Fixpoint.t -> string -> info
(** Clause 2: how many top spines of the result of any call of the
    definition are guaranteed unshared. *)

val result_unshared_given :
  ?inst:Nml.Ty.t -> Fixpoint.t -> string -> args_unshared:int list -> info
(** Clause 1: the sharper bound when the number of unshared top spines
    [u_i] of each actual argument is known.
    @raise Invalid_argument if the list length differs from the arity. *)

val call_fresh_depth : Fixpoint.t -> string -> args_unshared:int list -> int
(** Total form of clause 1 for optimizer call sites: [unshared_top] of
    {!result_unshared_given} at the definition's simplest instance, or 0
    — the sound "proves nothing" answer — when the name is unknown to
    the solver, the applied arity disagrees with the instance, or
    inference fails.  This is the Theorem-2 leg that [Optimize.Reuse]
    maxes against the flow-sensitive sharing analysis' judgment
    ([Framework.Alias.Local.call_unshared]); the max is sound because
    each side is an independent lower bound on the certainly-fresh
    spine depth of the call's result. *)

val argument_unshared_after :
  ?inst:Nml.Ty.t -> Fixpoint.t -> string -> arg:int -> args_unshared:int list -> int
(** How many top spines of argument [arg] are unshared {e and} do not
    escape the call — i.e. the paper's reuse budget
    [min u_i (d_i - esc_i)] (section 6, in-place reuse). *)

val pp_info : Format.formatter -> info -> unit
