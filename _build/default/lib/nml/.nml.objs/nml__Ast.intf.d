lib/nml/ast.mli: Loc
