lib/core/fixpoint.mli: Dvalue Nml
