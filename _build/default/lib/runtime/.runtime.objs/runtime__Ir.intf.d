lib/runtime/ir.mli: Format Nml
