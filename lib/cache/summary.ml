(* Serialization of definition summaries and the cache-aware analysis:
   one stored record per callgraph SCC, holding the member definitions'
   settled global-test summaries ({!Escape.Report.def_summary}).

   Abstract values contain closures and cannot be persisted; what the
   reports actually consume — and therefore what the cache stores — is
   the summary data behind them.  A fully warm program is reported
   without constructing a solver at all (zero entry evaluations); a
   partial hit builds one solver and summarizes only the missing SCCs'
   members, whose solve demand-evaluates just their cones. *)

module J = Nml.Json
module Report = Escape.Report
module Besc = Escape.Besc

exception Decode of string

let besc_to_string = Besc.to_string

let besc_of_string s =
  match Scanf.sscanf_opt s "<%d,%d>" (fun a b -> (a, b)) with
  | Some (0, 0) -> Besc.zero
  | Some (1, k) when k >= 0 -> Besc.one k
  | _ -> raise (Decode ("bad escape value " ^ s))

let arg_to_json (a : Report.arg_summary) =
  J.Obj
    [
      ("arg", J.int a.Report.s_arg);
      ("spines", J.int a.Report.s_spines);
      ("esc", J.Str (besc_to_string a.Report.s_esc));
      ( "components",
        J.Arr
          (List.map
             (fun (path, esc) -> J.Arr [ J.Str path; J.Str (besc_to_string esc) ])
             a.Report.s_components) );
    ]

let def_to_json (s : Report.def_summary) =
  let sharing =
    match s.Report.s_sharing with
    | None -> []
    | Some (top, spines) -> [ ("sharing", J.Arr [ J.int top; J.int spines ]) ]
  in
  J.Obj
    ([
       ("name", J.Str s.Report.s_name);
       ("inst", J.Str s.Report.s_inst);
       ("args", J.Arr (List.map arg_to_json s.Report.s_args));
     ]
    @ sharing)

let get field j =
  match J.member field j with
  | Some v -> v
  | None -> raise (Decode ("missing field " ^ field))

let str = function J.Str s -> s | _ -> raise (Decode "expected a string")
let num = function J.Num f -> int_of_float f | _ -> raise (Decode "expected a number")
let arr = function J.Arr xs -> xs | _ -> raise (Decode "expected an array")

let arg_of_json j =
  {
    Report.s_arg = num (get "arg" j);
    s_spines = num (get "spines" j);
    s_esc = besc_of_string (str (get "esc" j));
    s_components =
      List.map
        (function
          | J.Arr [ p; e ] -> (str p, besc_of_string (str e))
          | _ -> raise (Decode "bad component"))
        (arr (get "components" j));
  }

let def_of_json j =
  {
    Report.s_name = str (get "name" j);
    s_inst = str (get "inst" j);
    s_args = List.map arg_of_json (arr (get "args" j));
    s_sharing =
      (match J.member "sharing" j with
      | None -> None
      | Some (J.Arr [ a; b ]) -> Some (num a, num b)
      | Some _ -> raise (Decode "bad sharing"));
  }

(* ---- cache-aware analysis -------------------------------------------------- *)

(* The escape analysis as an [Engine] instance; the per-SCC loop, lazy
   session construction, record stamping and self-healing all live
   there, shared with every Spec in [Analyses.Registry]. *)
let engine_spec : Report.def_summary Engine.spec =
  {
    Engine.analysis = "escape";
    def_name = (fun d -> d.Report.s_name);
    to_json = def_to_json;
    of_json = def_of_json;
    session =
      (fun prog ->
        let t = Escape.Fixpoint.make prog in
        {
          Engine.summarize = Report.summarize t;
          evaluations = (fun () -> Escape.Fixpoint.evaluations t);
        });
  }

let record_to_json ~key summaries = Engine.record_to_json engine_spec ~key summaries
let record_of_json ~key ~members j = Engine.record_of_json engine_spec ~key ~members j

type outcome = {
  summaries : Report.def_summary list;  (* one per definition, program order *)
  evaluations : int;  (* solver entry evaluations actually performed *)
  scc_hits : int;
  scc_misses : int;
}

let analyze ?store prog =
  let o = Engine.analyze engine_spec ?store prog in
  {
    summaries = o.Engine.summaries;
    evaluations = o.Engine.evaluations;
    scc_hits = o.Engine.scc_hits;
    scc_misses = o.Engine.scc_misses;
  }
