examples/map_pair.ml: Escape Format Nml Optimize Runtime
