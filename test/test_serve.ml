(* Tests for the analysis daemon and the robustness work around it:
   framing, protocol, the load-shedding queue, the in-memory store tier
   (write-back, flush, corruption self-heal), concurrent-writer torn
   reads, crash isolation in the batch pool, and — against a real
   in-process server on a Unix socket — the chaos storm with its
   three-way differential oracle (server responses ≡ warm batch ≡ cold
   batch), deadlines, quarantine, load shedding and the drain. *)

module J = Nml.Json
module Frame = Serve.Frame
module Protocol = Serve.Protocol
module Squeue = Serve.Squeue
module Server = Serve.Server
module Fault = Serve.Fault
module Store = Cache.Store
module Batch = Cache.Batch
module Examples = Nml.Examples

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let tmp_counter = ref 0

let fresh_dir prefix =
  incr tmp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "nmlc-%s-%d-%d" prefix (Unix.getpid ()) !tmp_counter)
  in
  Sys.mkdir d 0o755;
  d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_dir prefix f =
  let d = fresh_dir prefix in
  Fun.protect ~finally:(fun () -> try rm_rf d with Sys_error _ -> ()) (fun () -> f d)

let write_file path contents =
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc contents)

(* ---- framing ---------------------------------------------------------------- *)

let frame_units =
  let pipe_roundtrip writer =
    let r, w = Unix.pipe () in
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
          [ r; w ])
      (fun () ->
        writer w;
        Unix.close w;
        Frame.read r)
  in
  [
    Alcotest.test_case "roundtrip" `Quick (fun () ->
        let payload = "{\"id\": 1}\n" in
        match
          pipe_roundtrip (fun w ->
              ignore
                (Unix.write_substring w (Frame.encode payload) 0
                   (String.length (Frame.encode payload))))
        with
        | Ok got -> checks "payload" payload got
        | Error _ -> Alcotest.fail "expected the payload back");
    Alcotest.test_case "eof-at-boundary-is-closed" `Quick (fun () ->
        match pipe_roundtrip (fun _ -> ()) with
        | Error Frame.Closed -> ()
        | _ -> Alcotest.fail "expected Closed");
    Alcotest.test_case "eof-mid-frame-is-malformed" `Quick (fun () ->
        match
          pipe_roundtrip (fun w -> ignore (Unix.write_substring w "100\nabc" 0 7))
        with
        | Error (Frame.Malformed _) -> ()
        | _ -> Alcotest.fail "expected Malformed");
    Alcotest.test_case "bad-length-line-is-malformed" `Quick (fun () ->
        match
          pipe_roundtrip (fun w -> ignore (Unix.write_substring w "nope\n{}" 0 7))
        with
        | Error (Frame.Malformed _) -> ()
        | _ -> Alcotest.fail "expected Malformed");
    Alcotest.test_case "over-limit-is-oversized" `Quick (fun () ->
        match
          pipe_roundtrip (fun w ->
              ignore (Unix.write_substring w "99999999\n" 0 9))
        with
        | Error (Frame.Oversized n) -> checki "declared" 99999999 n
        | _ -> Alcotest.fail "expected Oversized");
  ]

(* ---- protocol --------------------------------------------------------------- *)

let protocol_units =
  [
    Alcotest.test_case "parses-a-full-request" `Quick (fun () ->
        let payload =
          J.to_string
            (J.Obj
               [
                 ("id", J.int 7);
                 ("method", J.Str "analyze");
                 ( "params",
                   J.Obj
                     [
                       ("path", J.Str "a.nml");
                       ("deadline_ms", J.int 250);
                       ("boom", J.Bool true);
                     ] );
               ])
        in
        match Protocol.parse payload with
        | Ok req ->
            checkb "method" true (req.Protocol.meth = Protocol.Analyze);
            checks "path" "a.nml" (Option.get req.Protocol.path);
            checki "deadline" 250 (Option.get req.Protocol.deadline_ms);
            checkb "boom" true req.Protocol.boom
        | Error _ -> Alcotest.fail "expected a request");
    Alcotest.test_case "garbage-is-srv001" `Quick (fun () ->
        match Protocol.parse "]]]" with
        | Error (None, code, _) -> checks "code" Protocol.srv_malformed code
        | _ -> Alcotest.fail "expected SRV001");
    Alcotest.test_case "unknown-method-is-srv002-with-id" `Quick (fun () ->
        match
          Protocol.parse
            (J.to_string
               (J.Obj [ ("id", J.int 3); ("method", J.Str "transmogrify") ]))
        with
        | Error (Some (J.Num n), code, _) ->
            checki "id echoed" 3 (int_of_float n);
            checks "code" Protocol.srv_invalid code
        | _ -> Alcotest.fail "expected SRV002 with the id");
    Alcotest.test_case "analyze-needs-an-input" `Quick (fun () ->
        match
          Protocol.parse
            (J.to_string (J.Obj [ ("method", J.Str "analyze") ]))
        with
        | Error (_, code, _) -> checks "code" Protocol.srv_invalid code
        | Ok _ -> Alcotest.fail "expected SRV002");
    Alcotest.test_case "error-rendering-carries-retry-hint" `Quick (fun () ->
        let resp =
          Protocol.error ~id:(J.int 1) ~retry_after_ms:150
            ~code:Protocol.srv_overload "shed"
        in
        match J.member "error" (J.parse resp) with
        | Some err ->
            checkb "code" true
              (J.member "code" err = Some (J.Str Protocol.srv_overload));
            checkb "retry" true (J.member "retry_after_ms" err = Some (J.int 150))
        | None -> Alcotest.fail "expected an error object");
  ]

(* ---- the load-shedding queue ------------------------------------------------ *)

let squeue_units =
  [
    Alcotest.test_case "sheds-the-oldest" `Quick (fun () ->
        let q = Squeue.create ~cap:2 in
        checkb "a" true (Squeue.push q 1 = `Ok);
        checkb "b" true (Squeue.push q 2 = `Ok);
        (match Squeue.push q 3 with
        | `Shed 1 -> ()
        | _ -> Alcotest.fail "expected to shed the oldest");
        checkb "pop 2" true (Squeue.pop q = Some 2);
        checkb "pop 3" true (Squeue.pop q = Some 3));
    Alcotest.test_case "close-drains-then-stops" `Quick (fun () ->
        let q = Squeue.create ~cap:4 in
        ignore (Squeue.push q 1);
        Squeue.close q;
        checkb "refused" true (Squeue.push q 2 = `Closed);
        checkb "drains" true (Squeue.pop q = Some 1);
        checkb "stops" true (Squeue.pop q = None));
  ]

(* ---- the in-memory store tier ----------------------------------------------- *)

let infer src = Nml.Infer.infer_program (Nml.Surface.of_string src)

let render summaries =
  Format.asprintf "%a@." Escape.Report.pp_program_summaries summaries

let store_units =
  [
    Alcotest.test_case "write-back-defers-then-flushes" `Quick (fun () ->
        with_dir "wb" @@ fun dir ->
        let root = Filename.concat dir "cache" in
        let store = Store.create ~memory:true ~write_back:true root in
        ignore (Cache.Summary.analyze ~store (infer Examples.map_pair_program));
        checkb "dirty entries pending" true (Store.dirty_entries store > 0);
        let cold_disk = Store.create root in
        (* nothing on disk yet: a second process sees nothing *)
        checki "nothing published" 0
          (if Sys.file_exists root then Array.length (Sys.readdir root) else 0);
        let flushed = Store.flush store in
        checkb "flushed" true (flushed > 0);
        checki "nothing left dirty" 0 (Store.dirty_entries store);
        (* now a cold reader analyzes for free *)
        let o = Cache.Summary.analyze ~store:cold_disk (infer Examples.map_pair_program) in
        checki "warm from disk" 0 o.Cache.Summary.evaluations);
    Alcotest.test_case "memory-corruption-self-heals-from-disk" `Quick (fun () ->
        with_dir "heal" @@ fun dir ->
        let store = Store.create ~memory:true (Filename.concat dir "cache") in
        let cold = Cache.Summary.analyze ~store (infer Examples.partition_sort_program) in
        let corrupted = Store.corrupt_memory store in
        checkb "something to corrupt" true (corrupted > 0);
        let healed =
          Cache.Summary.analyze ~store (infer Examples.partition_sort_program)
        in
        checki "no re-solve: healed from disk" 0 healed.Cache.Summary.evaluations;
        checks "identical report" (render cold.Cache.Summary.summaries)
          (render healed.Cache.Summary.summaries));
    Alcotest.test_case "corrupted-memory-without-disk-re-solves" `Quick (fun () ->
        with_dir "resolve" @@ fun dir ->
        (* write-back + corruption before any flush: the disk has
           nothing, so healing falls back to a fresh solve *)
        let store =
          Store.create ~memory:true ~write_back:true (Filename.concat dir "cache")
        in
        let cold = Cache.Summary.analyze ~store (infer Examples.rev_program) in
        ignore (Store.corrupt_memory store);
        let again = Cache.Summary.analyze ~store (infer Examples.rev_program) in
        checkb "re-solved" true (again.Cache.Summary.evaluations > 0);
        checks "identical report" (render cold.Cache.Summary.summaries)
          (render again.Cache.Summary.summaries));
  ]

(* ---- satellite: concurrent writers never produce a torn read ---------------- *)

let stress_units =
  [
    Alcotest.test_case "two-writers-one-root-no-torn-reads" `Slow (fun () ->
        with_dir "stress" @@ fun dir ->
        let root = Filename.concat dir "cache" in
        let keys = Array.init 5 (Printf.sprintf "shared-key-%d") in
        (* a deliberately chunky value so a torn write would be visible *)
        let value tag i =
          J.Obj
            [
              ("writer", J.Str tag);
              ("i", J.int i);
              ("pad", J.Str (String.make 4096 'x'));
            ]
        in
        let anomalies = Atomic.make 0 in
        let writer tag () =
          (* separate [Store.t] per domain: emulates two processes
             sharing one cache root *)
          let store = Store.create root in
          for i = 1 to 200 do
            let key = keys.(i mod Array.length keys) in
            Store.save store ~key (value tag i);
            match Store.load store ~key with
            | None -> ()  (* a miss is always legal, a torn read never *)
            | Some (J.Obj fields) ->
                if
                  (match List.assoc_opt "writer" fields with
                  | Some (J.Str ("a" | "b")) -> false
                  | _ -> true)
                  ||
                  match List.assoc_opt "pad" fields with
                  | Some (J.Str p) -> String.length p <> 4096
                  | _ -> true
                then Atomic.incr anomalies
            | Some _ -> Atomic.incr anomalies
          done
        in
        let d1 = Domain.spawn (writer "a") in
        let d2 = Domain.spawn (writer "b") in
        Domain.join d1;
        Domain.join d2;
        checki "no torn reads" 0 (Atomic.get anomalies);
        (* the shards hold only published entries, no staging debris *)
        let store = Store.create root in
        checki "no staging leftovers" 0 (Store.cleanup_tmp store);
        Array.iter
          (fun key -> checkb key true (Store.load store ~key <> None))
          keys);
  ]

(* ---- satellite: one crashing file never aborts the pool --------------------- *)

let pool_units =
  [
    Alcotest.test_case "crashing-job-costs-only-its-slot" `Quick (fun () ->
        with_dir "crash" @@ fun dir ->
        let files =
          List.map
            (fun (name, src) ->
              let p = Filename.concat dir name in
              write_file p src;
              p)
            [
              ("a.nml", Examples.map_pair_program);
              ("b.nml", Examples.rev_program);
              ("c.nml", Examples.partition_sort_program);
            ]
        in
        let analyze ~store path =
          if Filename.basename path = "b.nml" then failwith "kaboom"
          else Batch.analyze_file ?store path
        in
        let rs = Batch.run ~analyze ~jobs:2 files in
        (match rs with
        | [ a; b; c ] ->
            checki "a ok" 0 a.Batch.code;
            checki "b internal error" 124 b.Batch.code;
            checkb "b diagnosed" true (b.Batch.errors <> "");
            checki "c ok" 0 c.Batch.code
        | _ -> Alcotest.fail "expected three results");
        checki "batch exit code" 124 (Batch.exit_code rs));
    Alcotest.test_case "raising-through-protect-is-contained" `Quick (fun () ->
        let rs =
          Batch.run
            ~analyze:(fun ~store:_ _ -> raise (Batch.Injected_crash "x"))
            ~jobs:1 [ "x.nml" ]
        in
        match rs with
        | [ r ] -> checki "code" 124 r.Batch.code
        | _ -> Alcotest.fail "expected one result");
  ]

(* ---- the in-process server -------------------------------------------------- *)

let corpus dir =
  List.map
    (fun (name, src) ->
      let p = Filename.concat dir name in
      write_file p src;
      p)
    [
      ("map_pair.nml", Examples.map_pair_program);
      ("rev.nml", Examples.rev_program);
      ("psort.nml", Examples.partition_sort_program);
      ( "mixed.nml",
        Examples.wrap
          [ Examples.append_def; Examples.length_def; Examples.sum_def ]
          "sum (append [1] [2])" );
      ("bad.nml", "letrec f l = cons x nil in f [1]");
    ]

let server_config ?(fault = Fault.None_) ?(jobs = 2) ?(queue_cap = 64)
    ?(deadline_ms = 30_000) ~dir () =
  let sock = Filename.concat dir "s.sock" in
  let store =
    Store.create ~memory:true ~write_back:true (Filename.concat dir "cache")
  in
  ( sock,
    store,
    {
      (Server.default_config (Server.Socket sock)) with
      Server.jobs;
      queue_cap;
      default_deadline_ms = deadline_ms;
      store = Some store;
      fault;
      handle_signals = false;
      quiet = true;
    } )

let wait_for_socket sock =
  let deadline = Unix.gettimeofday () +. 5. in
  while (not (Sys.file_exists sock)) && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done

(* one request/response over a fresh connection *)
let rpc sock payload =
  let fd = Chaos_client.connect sock in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      if not (Frame.write fd payload) then Alcotest.fail "request not written";
      match Frame.read fd with
      | Ok resp -> J.parse resp
      | Error e ->
          Alcotest.fail (Format.asprintf "no response: %a" Frame.pp_error e))

let call sock ?boom ?deadline_ms ~meth path =
  let params =
    [ ("path", J.Str path) ]
    @ (match deadline_ms with Some d -> [ ("deadline_ms", J.int d) ] | None -> [])
    @ match boom with Some true -> [ ("boom", J.Bool true) ] | _ -> []
  in
  rpc sock
    (J.to_string
       (J.Obj
          [ ("id", J.int 1); ("method", J.Str meth); ("params", J.Obj params) ]))

let error_code json =
  match J.member "error" json with
  | Some err -> (
      match J.member "code" err with Some (J.Str c) -> Some c | _ -> None)
  | None -> None

let with_server ?fault ?jobs ?queue_cap ?deadline_ms f =
  with_dir "srv" @@ fun dir ->
  let sock, store, cfg = server_config ?fault ?jobs ?queue_cap ?deadline_ms ~dir () in
  let stop = Server.spawn cfg in
  wait_for_socket sock;
  Fun.protect ~finally:stop (fun () -> f ~dir ~sock ~store)

(* the batch rendering of a result, in the chaos client's format *)
let batch_rendering (r : Batch.result) =
  Printf.sprintf "[%d]\n%s%s" r.Batch.code r.Batch.output r.Batch.errors

let server_units =
  [
    Alcotest.test_case "chaos-storm-with-three-way-differential" `Slow (fun () ->
        with_server @@ fun ~dir ~sock ~store:_ ->
        let files = corpus dir in
        let o = Chaos_client.storm ~socket:sock ~files ~seed:20260809 ~count:600 in
        checkb "at least 500 requests" true (o.Chaos_client.sent >= 500);
        checkb "mostly served" true (o.Chaos_client.results > 200);
        (match o.Chaos_client.anomalies with
        | [] -> ()
        | a :: _ ->
            Alcotest.fail
              (Printf.sprintf "%d protocol anomal(ies), first: %s"
                 (List.length o.Chaos_client.anomalies)
                 a));
        (* the malformed paths were actually exercised *)
        let count code =
          Option.value ~default:0 (List.assoc_opt code o.Chaos_client.errors)
        in
        checkb "SRV001 seen" true (count "SRV001" > 0);
        checkb "SRV002 seen" true (count "SRV002" > 0);
        checkb "SRV003 seen" true (count "SRV003" > 0);
        (* three-way differential: every path's server responses are one
           distinct rendering, equal to the cold and the warm batch *)
        with_dir "diff" @@ fun cache_dir ->
        let warm_store = Store.create (Filename.concat cache_dir "cache") in
        List.iter
          (fun path ->
            match Hashtbl.find_opt o.Chaos_client.outputs path with
            | None | Some [] ->
                Alcotest.fail (path ^ ": never analyzed by the storm")
            | Some (_ :: _ :: _) ->
                Alcotest.fail (path ^ ": server responses disagree with each other")
            | Some [ served ] ->
                let cold = batch_rendering (Batch.analyze_file path) in
                ignore (Batch.analyze_file ~store:warm_store path);
                let warm =
                  batch_rendering (Batch.analyze_file ~store:warm_store path)
                in
                checks (path ^ " server = cold batch") cold served;
                checks (path ^ " server = warm batch") warm served)
          files);
    Alcotest.test_case "worker-crash-is-reaped-and-quarantined" `Slow (fun () ->
        with_server ~fault:Fault.Worker_crash ~jobs:1 @@ fun ~dir ~sock ~store:_ ->
        let files = corpus dir in
        let victim = List.hd files in
        (* first boom: the worker dies, the supervisor answers SRV006 *)
        checkb "SRV006" true (error_code (call sock ~boom:true ~meth:"analyze" victim) = Some "SRV006");
        (* same input again: quarantined without another crash *)
        checkb "SRV007" true (error_code (call sock ~boom:true ~meth:"analyze" victim) = Some "SRV007");
        (* the respawned worker serves ordinary requests *)
        checkb "still serving" true (error_code (call sock ~meth:"analyze" victim) = None);
        (* and the counters saw the crash and the respawn *)
        match J.member "result" (rpc sock (J.to_string (J.Obj [ ("method", J.Str "status") ]))) with
        | Some st ->
            let n k = match J.member k st with Some (J.Num f) -> int_of_float f | _ -> -1 in
            checkb "crashes counted" true (n "crashes" >= 1);
            checkb "respawns counted" true (n "respawns" >= 1);
            checkb "quarantine counted" true (n "quarantined" >= 1)
        | None -> Alcotest.fail "no status result");
    Alcotest.test_case "storm-survives-injected-crashes" `Slow (fun () ->
        with_server ~fault:Fault.Worker_crash ~jobs:2 @@ fun ~dir ~sock ~store:_ ->
        let files = corpus dir in
        let o = Chaos_client.storm ~socket:sock ~files ~seed:42 ~count:500 in
        checkb "no anomalies" true (o.Chaos_client.anomalies = []);
        checkb "crash responses seen" true
          (List.exists
             (fun (c, _) -> c = "SRV006" || c = "SRV007")
             o.Chaos_client.errors);
        checkb "still mostly served" true (o.Chaos_client.results > 200));
    Alcotest.test_case "deadline-expires-with-srv004" `Quick (fun () ->
        with_server ~fault:Fault.Slow_request ~jobs:1 @@ fun ~dir ~sock ~store:_ ->
        let files = corpus dir in
        let json = call sock ~deadline_ms:30 ~meth:"analyze" (List.hd files) in
        checkb "SRV004" true (error_code json = Some "SRV004"));
    Alcotest.test_case "overload-sheds-with-retry-hint" `Quick (fun () ->
        with_server ~fault:Fault.Slow_request ~jobs:1 ~queue_cap:1
        @@ fun ~dir ~sock ~store:_ ->
        let files = corpus dir in
        let path = List.hd files in
        let responses = Array.make 3 None in
        let threads = ref [] in
        for i = 0 to 2 do
          threads :=
            Thread.create
              (fun () ->
                responses.(i) <-
                  Some (call sock ~deadline_ms:10_000 ~meth:"analyze" path))
              ()
            :: !threads;
          Thread.delay 0.03
        done;
        List.iter Thread.join !threads;
        let codes =
          Array.to_list responses
          |> List.map (function
               | None -> Alcotest.fail "a request got no response"
               | Some json -> error_code json)
        in
        checkb "someone was shed" true (List.mem (Some "SRV005") codes);
        checkb "someone was served" true (List.mem None codes);
        (* the shed response carries the retry-after contract *)
        Array.iter
          (fun r ->
            match r with
            | Some json when error_code json = Some "SRV005" -> (
                match J.member "error" json with
                | Some err ->
                    checkb "retry_after_ms present" true
                      (J.member "retry_after_ms" err <> None)
                | None -> ())
            | _ -> ())
          responses);
    Alcotest.test_case "cache-corruption-degrades-gracefully" `Slow (fun () ->
        with_server ~fault:Fault.Cache_corrupt @@ fun ~dir ~sock ~store:_ ->
        let files = corpus dir in
        let path = List.nth files 2 in
        let renderings = Hashtbl.create 1 in
        for _ = 1 to 12 do
          match J.member "result" (call sock ~meth:"analyze" path) with
          | Some r ->
              let s k = match J.member k r with Some (J.Str v) -> v | _ -> "" in
              Hashtbl.replace renderings (s "output" ^ s "errors") ()
          | None -> Alcotest.fail "corrupted cache produced an error response"
        done;
        checki "one distinct report despite corruption" 1 (Hashtbl.length renderings));
    Alcotest.test_case "drain-flushes-dirty-summaries" `Quick (fun () ->
        with_dir "drain" @@ fun dir ->
        let sock, store, cfg = server_config ~dir () in
        let stop = Server.spawn cfg in
        wait_for_socket sock;
        let files = corpus dir in
        checkb "served" true
          (error_code (call sock ~meth:"analyze" (List.hd files)) = None);
        checkb "dirty before drain" true (Store.dirty_entries store > 0);
        stop ();
        checki "flushed on drain" 0 (Store.dirty_entries store);
        checkb "socket unlinked" true (not (Sys.file_exists sock));
        (* a cold process is warm from the flushed entries *)
        let disk = Store.create (Store.root store) in
        let r = Batch.analyze_file ~store:disk (List.hd files) in
        checki "warm from the drained store" 0 r.Batch.evaluations);
    Alcotest.test_case "draining-server-refuses-new-work" `Quick (fun () ->
        with_server @@ fun ~dir ~sock ~store:_ ->
        ignore dir;
        (* hold a live connection open across the shutdown: its later
           requests must be answered SRV008, not dropped *)
        let fd = Chaos_client.connect sock in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            let ask payload =
              if not (Frame.write fd payload) then
                Alcotest.fail "request not written";
              match Frame.read fd with
              | Ok resp -> J.parse resp
              | Error e ->
                  Alcotest.fail
                    (Format.asprintf "no response: %a" Frame.pp_error e)
            in
            (* prove the connection is accepted and served first *)
            checkb "status served" true
              (J.member "result" (ask (J.to_string (J.Obj [ ("method", J.Str "status") ]))) <> None);
            (* shutdown arrives on a different connection *)
            checkb "shutdown acknowledged" true
              (J.member "result"
                 (rpc sock (J.to_string (J.Obj [ ("method", J.Str "shutdown") ])))
              <> None);
            match
              error_code
                (ask
                   (J.to_string
                      (J.Obj
                         [
                           ("method", J.Str "analyze");
                           ("params", J.Obj [ ("path", J.Str "x.nml") ]);
                         ])))
            with
            | Some "SRV008" -> ()
            | c ->
                Alcotest.fail
                  ("expected SRV008, got " ^ Option.value ~default:"a result" c)));
  ]

let () =
  Alcotest.run "serve"
    [
      ("frame", frame_units);
      ("protocol", protocol_units);
      ("squeue", squeue_units);
      ("store", store_units);
      ("stress", stress_units);
      ("pool", pool_units);
      ("server", server_units);
    ]
