(* Fault-injection configuration for the analysis server, mirroring
   [nmlc check --chaos]: each kind deliberately breaks one layer of the
   daemon so the supervision/deadline/self-heal machinery around it can
   be demonstrated (and chaos-tested) rather than merely claimed.

   - [Worker_crash]: a request whose input carries the "boom" marker
     raises an uncatchable crash out of the worker domain — exercises
     reaping, respawn with backoff, and input quarantine.
   - [Slow_request]: every job stalls (cancellably) before analyzing —
     exercises the deadline watchdog and abandoned-result discard.
   - [Malformed_frame]: every third inbound payload has a byte flipped
     before parsing — exercises the SRV001 malformed-input path.
   - [Cache_corrupt]: every fifth request corrupts the in-memory summary
     tier — exercises graceful degradation and the rebuild-from-disk
     self-heal.
   - [Oom]: a "boom"-marked request raises [Out_of_memory] inside the
     worker — exercises the crash path with a resource-exhaustion
     exception instead of a synthetic one. *)

type t = None_ | Worker_crash | Slow_request | Malformed_frame | Cache_corrupt | Oom

let to_string = function
  | None_ -> "none"
  | Worker_crash -> "worker-crash"
  | Slow_request -> "slow-request"
  | Malformed_frame -> "malformed-frame"
  | Cache_corrupt -> "cache-corrupt"
  | Oom -> "oom"

let all = [ None_; Worker_crash; Slow_request; Malformed_frame; Cache_corrupt; Oom ]

let of_string s = List.find_opt (fun f -> String.equal (to_string f) s) all
