(** The lint rule interface: a stable code, default severity, SARIF
    metadata, and a checker per scope.

    SCC-scoped checkers see only an SCC's members (plus anything
    reachable through the shared solver and program), which is the
    contract that makes their findings cacheable per SCC: the cache key
    digests the members and their transitive callees, so a finding can
    only change when its key does.  Program-scoped checkers run once per
    program and are cached under a whole-source key. *)

type fault = No_fault | Corrupt_invariance | Corrupt_sharing
(** [Corrupt_invariance] makes LINT003 corrupt one instance's result
    before comparing — a seeded lie the self-audit must catch (the
    lint-side analogue of [nmlc vet --inject-fault]).
    [Corrupt_sharing] makes LINT008 see one reuse candidate's sharing
    verdict as spine-shared, so the escape/sharing cross-check must
    fire. *)

type ctx = {
  surface : Nml.Surface.t;
  prog : Nml.Infer.program;
  solver : Escape.Fixpoint.t Lazy.t;
      (** forced on first use; a fully warm cache run never forces it *)
  dead_params : (string * int) list Lazy.t;
      (** [(definition, 1-based parameter)] pairs that occur in their
          body but are never truly used *)
  spinelive : Framework.Spinelive.Solver.t Lazy.t;
      (** the spine-liveness solver backing LINT007; forced on first
          use, so runs without liveness findings never solve it *)
  alias : Framework.Alias.Solver.t Lazy.t;
      (** the sharing solver backing LINT008; forced on first use *)
  fault : fault;
}

type t = {
  code : string;  (** stable identifier, e.g. ["LINT001"] *)
  title : string;  (** short slug, e.g. ["missed-reuse"] *)
  summary : string;  (** one line, surfaced as SARIF rule metadata *)
  severity : Nml.Diagnostic.severity;  (** default severity *)
  check_scc : ctx -> members:string list -> Nml.Diagnostic.t list;
  check_program : ctx -> Nml.Diagnostic.t list;
}

val solver : ctx -> Escape.Fixpoint.t
(** Forces the shared solver. *)

val no_scc : ctx -> members:string list -> Nml.Diagnostic.t list
val no_program : ctx -> Nml.Diagnostic.t list
(** Empty checkers, for rules scoped to only one of the two. *)
