(* The reduced product escape × usage, surfaced as the registry's
   [escape-x-usage] analysis.

   The domain-level pairing is {!Framework.Product.Make} applied to the
   escape Spec and the usage Spec: one solver run settles both
   components in lockstep (same demand keys, same read frames, shared
   invalidation).  The {e reduction} happens where both components are
   in hand, per (definition, parameter):

   - usage [Unused]/[Consumed] proves the argument is never retained in
     the result, so the escape component refines to [<0,0>] even when
     the escape side over-approximated;
   - escape [<0,0>] proves no part of the argument reaches the result,
     so a usage [Carried]/[Used] verdict sheds its retention bit.

   The combined verdict is the storage story the heap layer wants:

   - [Dead]          — never inspected, never retained: garbage at call
                       entry;
   - [Scratch]       — inspected only: every cell is reclaimable the
                       moment the call returns (the DCONS / unboxing
                       license);
   - [Spine_scratch] — elements may be retained but the top
                       [reclaimable] spine levels never escape: those
                       cells can be reused per Theorem 2;
   - [Retained]      — (part of) the argument may live on in the
                       result. *)

module Usage = Framework.Usage
module Besc = Escape.Besc
module Ty = Nml.Ty

module PD = Framework.Product.Make (Escape.Espec) (Usage.D) ()
module Solver = Framework.Solver.Make (PD)

type verdict = Dead | Scratch | Spine_scratch | Retained

let verdict_name = function
  | Dead -> "dead"
  | Scratch -> "scratch"
  | Spine_scratch -> "spine-scratch"
  | Retained -> "retained"

let verdict_of_name = function
  | "dead" -> Some Dead
  | "scratch" -> Some Scratch
  | "spine-scratch" -> Some Spine_scratch
  | "retained" -> Some Retained
  | _ -> None

let verdict_doc = function
  | Dead -> "never inspected, never retained: dead at call entry"
  | Scratch -> "inspected only: reclaimable when the call returns"
  | Spine_scratch -> "elements may be retained; the unescaping top spines are reusable"
  | Retained -> "the argument may live on in the result"

(* The mutual refinement; each direction uses one component's soundness
   to discharge the other's over-approximation. *)
let reduce ~(usage : Usage.verdict) ~(esc : Besc.t) =
  let esc =
    match usage with Usage.Unused | Usage.Consumed -> Besc.zero | _ -> esc
  in
  let usage =
    if Besc.equal esc Besc.zero then
      match usage with
      | Usage.Carried -> Usage.Unused
      | Usage.Used -> Usage.Consumed
      | v -> v
    else usage
  in
  (usage, esc)

let classify ~spines (usage, esc) =
  match usage with
  | Usage.Unused -> Dead
  | Usage.Consumed -> Scratch
  | Usage.Carried | Usage.Used ->
      if spines > 0 && Besc.spines esc < spines then Spine_scratch else Retained

type arg_report = {
  a_index : int;  (* 1-based parameter position *)
  a_usage : Usage.verdict;  (* reduced usage component *)
  a_esc : Besc.t;  (* reduced escape component *)
  a_spines : int;  (* spine count of the parameter's type *)
  a_verdict : verdict;
}

type def_report = {
  r_name : string;
  r_ty : string;  (* rendered simplest ground instance *)
  r_args : arg_report list;
}

(* Both global tests against the same product value: the escape side
   applies [interesting]/[boring] worst-case arguments to the first
   component, the usage side probes the second — then the pair is
   reduced.  Runs inside the product solver's state, which installs both
   components' ambient engines. *)
let arg_report t name ~arg =
  let ty = Solver.instance_ty t name in
  let m = Ty.arity ty in
  if arg < 1 || arg > m then
    invalid_arg (Printf.sprintf "Product.arg_report: %s has arity %d" name m);
  let va, vb = Solver.value t name (Some ty) in
  Solver.with_state t @@ fun () ->
  let arg_tys = Ty.arg_tys ty m in
  let pick j a b = List.mapi (fun i aty -> if i = arg - 1 then a aty else b aty) j in
  let esc =
    Escape.Dvalue.total_esc
      (Escape.Dvalue.apply_all va
         (pick arg_tys Escape.Dvalue.interesting Escape.Dvalue.boring))
  in
  let u = Usage.D.total (Usage.D.apply_all vb (pick arg_tys Usage.D.probe Usage.D.bottom)) in
  let usage =
    match (Usage.Flags.dep u, u.Usage.Flags.use) with
    | false, false -> Usage.Unused
    | true, false -> Usage.Carried
    | false, true -> Usage.Consumed
    | true, true -> Usage.Used
  in
  let spines = Ty.max_list_depth (List.nth arg_tys (arg - 1)) in
  let usage, esc = reduce ~usage ~esc in
  {
    a_index = arg;
    a_usage = usage;
    a_esc = esc;
    a_spines = spines;
    a_verdict = classify ~spines (usage, esc);
  }

let report t name =
  let ty = Solver.instance_ty t name in
  let m = Ty.arity ty in
  {
    r_name = name;
    r_ty = Ty.to_string ty;
    r_args = List.init m (fun i -> arg_report t name ~arg:(i + 1));
  }

let reclaimable a =
  match a.a_verdict with
  | Dead | Scratch -> a.a_spines
  | Spine_scratch -> a.a_spines - Besc.spines a.a_esc
  | Retained -> 0

let pp_def_report ppf r =
  Format.fprintf ppf "@[<v 0>%s : %s" r.r_name r.r_ty;
  List.iter
    (fun a ->
      Format.fprintf ppf "@,  P(%s, %d) = %s  [usage %s, escape %s]  -- %s"
        r.r_name a.a_index (verdict_name a.a_verdict)
        (Usage.verdict_name a.a_usage) (Besc.to_string a.a_esc)
        (verdict_doc a.a_verdict);
      let k = reclaimable a in
      if k > 0 && a.a_spines > 0 then
        Format.fprintf ppf " (%d of %d spine level%s reclaimable)" k a.a_spines
          (if k = 1 then "" else "s"))
    r.r_args;
  Format.fprintf ppf "@]"
