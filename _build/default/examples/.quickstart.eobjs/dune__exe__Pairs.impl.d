examples/pairs.ml: Escape Format List Nml Printf Runtime
