(** Probe sets and extensional comparison of abstract values.

    The domains [D_e^t] are finite, so fixpoint iteration terminates and
    convergence is decidable (section 3.5); but enumerating full function
    spaces at higher types is intractable.  Following standard practice
    for Hudak-Young style higher-order analyses, we compare abstract
    functions extensionally on a finite {e probe set} per argument type:
    every basic escape value in the chain [B_e] crossed with the two
    canonical function components that the analysis itself feeds in — the
    worst-case function [W^t] and the bottom function.

    For first-order argument types (everything in the paper's examples)
    the function component of an argument is degenerate, so probing is
    exact: the probe set covers the whole domain.  For higher-order
    argument positions the comparison is approximate; the fixpoint engine
    additionally caps iteration and falls back to the safe top value
    (see {!Fixpoint}).  The full-enumeration alternative for first-order
    types lives in {!Enumerate} and is compared in the benches.

    This module is a thin veneer over the engine in {!Dvalue}: the bound
    [d] is pushed into the module-level maximum ({!Dvalue.ensure_d}) and
    the shared, id-stable probe cache is reused. *)

val probes : d:int -> Nml.Ty.t -> Dvalue.t list
(** Canonical argument values for an argument of the given type.  Base
    shapes get one probe per element of [B_e]; arrow shapes get the cross
    product of [B_e] with [{W, bottom}] function components. *)

val equal : d:int -> Dvalue.t -> Dvalue.t -> bool
(** Extensional equality with respect to {!probes}, recursing through the
    (finite) type structure of the values. *)

val leq : d:int -> Dvalue.t -> Dvalue.t -> bool
(** Extensional ordering with respect to {!probes}. *)
