lib/nml/surface.mli: Ast Format
