type t =
  | INT of int
  | IDENT of string
  | TRUE
  | FALSE
  | NIL
  | IF
  | THEN
  | ELSE
  | LET
  | LETREC
  | IN
  | LAMBDA
  | FUN
  | AND
  | OR
  | NOT
  | DIV
  | MOD
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | ARROW
  | DOT
  | COMMA
  | SEMI
  | CONS_OP
  | EOF

let equal (a : t) (b : t) = a = b

let to_string = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | TRUE -> "true"
  | FALSE -> "false"
  | NIL -> "nil"
  | IF -> "if"
  | THEN -> "then"
  | ELSE -> "else"
  | LET -> "let"
  | LETREC -> "letrec"
  | IN -> "in"
  | LAMBDA -> "lambda"
  | FUN -> "fun"
  | AND -> "and"
  | OR -> "or"
  | NOT -> "not"
  | DIV -> "div"
  | MOD -> "mod"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | EQ -> "="
  | NE -> "<>"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | ARROW -> "->"
  | DOT -> "."
  | COMMA -> ","
  | SEMI -> ";"
  | CONS_OP -> "::"
  | EOF -> "<eof>"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let keyword_of_string = function
  | "true" -> Some TRUE
  | "false" -> Some FALSE
  | "nil" -> Some NIL
  | "if" -> Some IF
  | "then" -> Some THEN
  | "else" -> Some ELSE
  | "let" -> Some LET
  | "letrec" -> Some LETREC
  | "in" -> Some IN
  | "lambda" -> Some LAMBDA
  | "fun" -> Some FUN
  | "and" -> Some AND
  | "or" -> Some OR
  | "not" -> Some NOT
  | "div" -> Some DIV
  | "mod" -> Some MOD
  | _ -> None
