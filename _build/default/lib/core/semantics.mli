(** The abstract escape semantic functions [E] and [C] (section 3.4).

    Evaluation maps a typed expression to a {!Dvalue.t} under

    - a local environment for lambda- and letrec-bound identifiers, and
    - a global hook used to resolve the program's top-level definitions
      at the ground instance recorded on the occurrence (supplied by
      {!Fixpoint}, which memoizes per (name, instance) and iterates).

    Conditionals join both branches; nested [letrec]s are solved inline
    by Kleene iteration with probe-based convergence. *)

module Env : Map.S with type key = string

type ctx = {
  d : unit -> int;
      (** current chain bound [d] (may grow as instances are demanded) *)
  global : string -> Nml.Ty.t -> Dvalue.t;
      (** resolve a top-level definition at a ground instance type *)
  max_iters : int;  (** per-letrec Kleene iteration cap *)
  mutable iters : int;  (** total iterations performed (statistics) *)
  mutable capped : bool;  (** true if any fixpoint hit the cap *)
  mutable fv_cache : (Nml.Tast.texpr * string list) list;
      (** per-lambda free-variable sets, keyed by physical node *)
}

val eval : ctx -> Dvalue.t Env.t -> Nml.Tast.texpr -> Dvalue.t
(** @raise Invalid_argument on identifiers bound neither locally nor
    globally (cannot happen for trees produced by {!Nml.Infer}). *)

val prim_value : ty:Nml.Ty.t -> Nml.Ast.prim -> Dvalue.t
(** The semantic function [C] for primitive constants, at the
    occurrence's instantiated type; exposed for direct testing against
    the paper's definitions. *)

val const_value : ty:Nml.Ty.t -> Nml.Ast.const -> Dvalue.t
(** [C] for literal constants; [nil] is the bottom of its element
    domain. *)
