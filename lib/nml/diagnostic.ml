type severity = Error | Warning | Note

type t = {
  severity : severity;
  code : string;
  loc : Loc.t;
  message : string;
  notes : (Loc.t * string) list;
}

let make severity ?(notes = []) ~code loc message =
  { severity; code; loc; message; notes }

let error ?notes ~code loc message = make Error ?notes ~code loc message
let warning ?notes ~code loc message = make Warning ?notes ~code loc message

let errorf ?notes ~code loc fmt =
  Format.kasprintf (fun message -> error ?notes ~code loc message) fmt

let severity_name = function Error -> "error" | Warning -> "warning" | Note -> "note"

let compare a b =
  let pos d = (d.loc.Loc.file, d.loc.Loc.start_pos.Loc.line, d.loc.Loc.start_pos.Loc.col) in
  match Stdlib.compare (pos a) (pos b) with
  | 0 -> Stdlib.compare (a.code, a.message) (b.code, b.message)
  | c -> c

let pp ppf d =
  Format.fprintf ppf "%a: %s[%s]: %s" Loc.pp d.loc (severity_name d.severity) d.code
    d.message;
  List.iter
    (fun (loc, note) ->
      Format.fprintf ppf "@.  note: %a: %s" Loc.pp loc note)
    d.notes

let pos_json p = Json.Obj [ ("line", Json.int p.Loc.line); ("col", Json.int p.Loc.col) ]

let loc_json (loc : Loc.t) =
  Json.Obj
    [
      ("file", Json.Str loc.Loc.file);
      ("start", pos_json loc.Loc.start_pos);
      ("end", pos_json loc.Loc.end_pos);
    ]

let to_json d =
  Json.Obj
    [
      ("severity", Json.Str (severity_name d.severity));
      ("code", Json.Str d.code);
      ("loc", loc_json d.loc);
      ("message", Json.Str d.message);
      ( "notes",
        Json.Arr
          (List.map
             (fun (loc, note) ->
               Json.Obj [ ("loc", loc_json loc); ("message", Json.Str note) ])
             d.notes) );
    ]

type format = Human | Json

let render format ppf ds =
  let ds = List.sort compare ds in
  match format with
  | Human -> List.iter (fun d -> Format.fprintf ppf "%a@." pp d) ds
  | Json ->
      let doc =
        Json.Obj
          [
            ("schema", Json.Str "nmlc/diagnostics-v1");
            ("diagnostics", Json.Arr (List.map to_json ds));
          ]
      in
      Format.fprintf ppf "%s" (Json.to_string doc)

let has_errors ds = List.exists (fun d -> d.severity = Error) ds
