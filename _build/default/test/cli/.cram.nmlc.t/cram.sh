  $ alias nmlc=../../bin/nmlc.exe
  $ nmlc eval ../../examples/programs/partition_sort.nml
  $ nmlc eval ../../examples/programs/zip_assoc.nml
  $ nmlc typecheck ../../examples/programs/reverse.nml
  $ nmlc analyze ../../examples/programs/partition_sort.nml --local
  $ nmlc run ../../examples/programs/reverse.nml --compare --heap 64
  $ nmlc mono -e 'letrec length l = if null l then 0 else 1 + length (cdr l) in length [1] + length [[2]]'
  $ nmlc eval -e 'car nil'
  $ nmlc typecheck -e '1 + [2]'
  $ nmlc eval ../../examples/programs/calculator.nml
  $ nmlc analyze ../../examples/programs/calculator.nml --fun exec
  $ nmlc eval ../../examples/programs/bst.nml
  $ nmlc analyze ../../examples/programs/bst.nml --fun tinsert
  $ nmlc analyze ../../examples/programs/bst.nml --fun mirror
