(* Quickstart: parse an nml program, run the escape analysis, apply the
   storage optimizations, and execute both versions on the storage
   simulator.

     dune exec examples/quickstart.exe *)

let program =
  {|
letrec
  append x y = if null x then y else cons (car x) (append (cdr x) y);
  rev l = if null l then nil else append (rev (cdr l)) (cons (car l) nil)
in rev [1, 2, 3, 4, 5, 6, 7, 8]
|}

let () =
  (* 1. parse *)
  let surface = Nml.Surface.of_string ~file:"quickstart.nml" program in
  Format.printf "--- program ---@.%a@.@." Nml.Surface.pp surface;

  (* 2. type inference *)
  let typed = Nml.Infer.infer_program surface in
  Format.printf "--- types ---@.";
  List.iter
    (fun (name, s) -> Format.printf "%s : %a@." name Nml.Infer.pp_scheme s)
    typed.Nml.Infer.schemes;
  Format.printf "@.";

  (* 3. escape analysis: which spines of which arguments can escape? *)
  let solver = Escape.Fixpoint.make typed in
  Format.printf "--- escape analysis ---@.%a@." Escape.Report.program solver;

  (* 4. one specific verdict, programmatically *)
  let v = Escape.Analysis.global solver "rev" ~arg:1 in
  Format.printf "rev keeps the top %d spine(s) of its argument in-house@.@."
    (Escape.Analysis.non_escaping_top_spines v);

  (* 5. optimize: the analysis licenses the paper's REV' (in-place reuse) *)
  let result = Optimize.Transform.optimize surface in
  Format.printf "--- optimizations applied ---@.%a@." Optimize.Transform.pp_report result;

  (* 6. run both versions on the storage simulator *)
  let run ir =
    let m = Runtime.Machine.create ~heap_size:64 ~check_arenas:true () in
    let w = Runtime.Machine.eval m ir in
    (Runtime.Machine.read_value m w, Runtime.Machine.stats m)
  in
  let v0, s0 = run (Runtime.Ir.of_program surface) in
  let v1, s1 = run result.Optimize.Transform.ir in
  Format.printf "--- execution ---@.";
  Format.printf "baseline : %a@." Nml.Eval.pp_value v0;
  Format.printf "optimized: %a@." Nml.Eval.pp_value v1;
  Format.printf "baseline  heap allocs %d, reuses %d, GC runs %d@."
    s0.Runtime.Stats.heap_allocs s0.Runtime.Stats.dcons_reuses s0.Runtime.Stats.gc_runs;
  Format.printf "optimized heap allocs %d, reuses %d, GC runs %d@."
    s1.Runtime.Stats.heap_allocs s1.Runtime.Stats.dcons_reuses s1.Runtime.Stats.gc_runs
