test/test_optimize.ml: Alcotest Escape Gen List Nml Optimize Printf QCheck QCheck_alcotest Runtime String
