(* Parallel batch analysis: every input file is parsed, inferred and
   analyzed (through the summary cache when one is given) independently,
   on a pool of [Domain.spawn] workers pulling file indices from a shared
   atomic counter.  Workers share nothing but the striped store and the
   results array — each solver owns its private [Dvalue.state] — and
   every result carries its rendered output, so the driver can print a
   merged report in input order no matter which domain finished first.

   The pool is analysis-agnostic: [run ~analyze] distributes any
   per-file job with the same result shape (the lint engine rides it
   via [Lint.Batch]); the default job is the escape-summary analysis. *)

type result = {
  path : string;
  output : string;  (* what the corresponding subcommand prints on stdout *)
  errors : string;  (* ... and on stderr *)
  code : int;  (* 0 clean, 1 diagnostics/user error, 124 internal *)
  defs : int;
  findings : int;  (* lint findings (0 in analyze mode) *)
  evaluations : int;
  scc_hits : int;
  scc_misses : int;
}

let render_diag ~code loc msg =
  Format.asprintf "%a@."
    (Nml.Diagnostic.render Nml.Diagnostic.Human)
    [ Nml.Diagnostic.error ~code loc msg ]

let failed path ~code ~errors =
  {
    path;
    output = "";
    errors;
    code;
    defs = 0;
    findings = 0;
    evaluations = 0;
    scc_hits = 0;
    scc_misses = 0;
  }

(* The per-file part of the driver's exception regime, with the rendered
   text captured instead of printed.  Every analysis callback runs under
   it so one bad file never takes down the pool. *)
let protect path f =
  match f () with
  | r -> r
  | exception Nml.Lexer.Error (loc, msg) ->
      failed path ~code:1 ~errors:(render_diag ~code:"LEX001" loc msg)
  | exception Nml.Parser.Error (loc, msg) ->
      failed path ~code:1 ~errors:(render_diag ~code:"PARSE001" loc msg)
  | exception Nml.Infer.Error (loc, msg) ->
      failed path ~code:1 ~errors:(render_diag ~code:"TYPE001" loc msg)
  | exception Sys_error msg ->
      failed path ~code:1 ~errors:(Printf.sprintf "error: %s\n" msg)
  | exception (Failure msg | Invalid_argument msg) ->
      failed path ~code:1 ~errors:(Printf.sprintf "error: %s\n" msg)
  | exception e ->
      failed path ~code:124
        ~errors:(Printf.sprintf "nmlc: internal error: %s\n" (Printexc.to_string e))

let analyze_file ?store path =
  protect path (fun () ->
      let src = In_channel.with_open_text path In_channel.input_all in
      let prog = Nml.Infer.infer_program (Nml.Surface.of_string ~file:path src) in
      let o = Summary.analyze ?store prog in
      {
        path;
        output = Format.asprintf "%a@." Escape.Report.pp_program_summaries o.Summary.summaries;
        errors = "";
        code = 0;
        defs = List.length o.Summary.summaries;
        findings = 0;
        evaluations = o.Summary.evaluations;
        scc_hits = o.Summary.scc_hits;
        scc_misses = o.Summary.scc_misses;
      })

let run ?analyze ?store ~jobs paths =
  let analyze =
    match analyze with
    | Some f -> f
    | None -> fun ~store path -> analyze_file ?store path
  in
  let paths = Array.of_list paths in
  let n = Array.length paths in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- Some (analyze ~store paths.(i));
        loop ()
      end
    in
    loop ()
  in
  let workers = max 1 (min jobs n) in
  if workers = 1 then worker ()
  else begin
    let spawned = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned
  end;
  Array.to_list (Array.map Option.get results)

let exit_code results =
  List.fold_left
    (fun acc r ->
      if r.code = 124 || acc = 124 then 124 else max acc (min r.code 1))
    0 results
