(* Tests for the storage simulator: evaluation agrees with the reference
   interpreter, the collector reclaims exactly the garbage, arenas free
   wholesale and are validated, DCONS recycles cells, and the statistics
   add up. *)

module M = Runtime.Machine
module Ir = Runtime.Ir
module Stats = Runtime.Stats
module Eval = Nml.Eval
module Surface = Nml.Surface
module Ex = Nml.Examples

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let value : Eval.value Alcotest.testable =
  Alcotest.testable (fun ppf v -> Eval.pp_value ppf v) Eval.equal_value

let run_src ?(heap_size = 64) ?(grow = true) src =
  let m = M.create ~heap_size ~grow ~check_arenas:true () in
  let w = M.run m (Surface.of_string src) in
  (M.read_value m w, m)

let eval_src src = Eval.run (Surface.of_string src)

(* ---- agreement with the reference interpreter --------------------------- *)

let agreement_tests =
  let case name src =
    Alcotest.test_case name `Quick (fun () ->
        let v, _ = run_src src in
        Alcotest.check value name (eval_src src) v)
  in
  [
    case "arith" "1 + 2 * 3";
    case "list" "[1, 2, 3]";
    case "nested-list" "[[1], [2, 3], []]";
    case "if" "if 1 < 2 then [1] else [2]";
    case "let" "let x = [1, 2] in cons 0 x";
    case "closure" "(fun f x -> f (f x)) (fun n -> n + 1) 5";
    case "partial-prim" "(cons 1) [2]";
    case "ps" Ex.partition_sort_program;
    case "map-pair" Ex.map_pair_program;
    case "rev" Ex.rev_program;
    case "isort" (Ex.wrap [ Ex.insert_def; Ex.isort_def ] "isort [9, 3, 7, 1]");
    case "concat" (Ex.wrap [ Ex.append_def; Ex.concat_def ] "concat [[1], [2, 3]]");
    case "create-list" (Ex.wrap [ Ex.create_list_def ] "create_list 6");
    case "foldr" (Ex.wrap [ Ex.foldr_def ] "foldr (fun a b -> cons (a * 2) b) nil [1, 2]");
    case "mutual"
      "letrec even n = if n = 0 then true else odd (n - 1); odd n = if n = 0 then false else even (n - 1) in even 9";
    case "pairs" "mkpair (1 + 2) [true]";
    case "pair-projections" "fst (mkpair 1 2) + snd (mkpair 3 4)";
    case "zip" (Ex.wrap [ Ex.zip_def ] "zip [1, 2] [3, 4]");
    case "swap" (Ex.wrap [ Ex.swap_def ] "swap (mkpair [1] [2])");
    case "assoc" (Ex.wrap [ Ex.assoc_def ] "assoc 0 2 [mkpair 1 10, mkpair 2 20]");
    case "trees" (Ex.wrap [ Ex.tinsert_def; Ex.tsum_def ] "tsum (tinsert 4 (tinsert 9 leaf))");
    case "tree-structure" "node (node leaf 1 leaf) 2 (node leaf 3 leaf)";
    case "tmap-on-machine" (Ex.wrap [ Ex.tmap_def ] "tmap (fun n -> n + 1) (node leaf 1 leaf)");
  ]

(* ---- collector ------------------------------------------------------------ *)

let gc_tests =
  [
    Alcotest.test_case "tiny-heap-still-correct" `Quick (fun () ->
        (* forces many collections *)
        let src = Ex.wrap [ Ex.append_def; Ex.rev_def ] "rev [1,2,3,4,5,6,7,8]" in
        let v, m = run_src ~heap_size:20 src in
        Alcotest.check value "result" (eval_src src) v;
        checkb "collected" true ((M.stats m).Stats.gc_runs > 0);
        checkb "swept" true ((M.stats m).Stats.swept > 0));
    Alcotest.test_case "no-growth-when-garbage-suffices" `Quick (fun () ->
        let src = Ex.wrap [ Ex.append_def; Ex.rev_def ] "rev [1,2,3,4,5,6,7,8]" in
        let m = M.create ~heap_size:24 ~grow:false () in
        let w = M.run m (Surface.of_string src) in
        checki "result head" 8
          (match M.read_value m w with
          | Eval.Vcons (Eval.Vint n, _) -> n
          | _ -> -1);
        checkb "collected" true ((M.stats m).Stats.gc_runs > 0);
        checki "capacity unchanged" 24 (M.stats m).Stats.heap_capacity);
    Alcotest.test_case "out-of-memory" `Quick (fun () ->
        (* all cells stay live: the whole result is returned *)
        let src = Ex.wrap [ Ex.create_list_def ] "create_list 50" in
        let m = M.create ~heap_size:16 ~grow:false () in
        match M.run m (Surface.of_string src) with
        | exception M.Out_of_memory -> ()
        | _ -> Alcotest.fail "expected Out_of_memory");
    Alcotest.test_case "growth-doubles" `Quick (fun () ->
        let src = Ex.wrap [ Ex.create_list_def ] "create_list 40" in
        let _, m = run_src ~heap_size:16 src in
        checkb "grew" true ((M.stats m).Stats.heap_capacity >= 40));
    Alcotest.test_case "live-cells-track" `Quick (fun () ->
        let m = M.create ~heap_size:16 () in
        let w = M.eval m (Ir.of_ast (Nml.Parser.parse "[1, 2, 3]")) in
        checki "live" 3 (M.live_cells m);
        ignore w;
        (* the result is not a root once we drop it: a forced collection
           with no roots reclaims everything *)
        M.collect m;
        checki "after gc" 0 (M.live_cells m));
    Alcotest.test_case "peak-live" `Quick (fun () ->
        let src = Ex.wrap [ Ex.create_list_def ] "create_list 10" in
        let _, m = run_src src in
        checkb "peak >= 10" true ((M.stats m).Stats.peak_live >= 10));
    Alcotest.test_case "fuel" `Quick (fun () ->
        let m = M.create ~fuel:50 () in
        match M.run m (Surface.of_string "letrec f x = f x in f 0") with
        | exception M.Out_of_fuel -> ()
        | _ -> Alcotest.fail "expected Out_of_fuel");
  ]

(* ---- resource limits leave the counters consistent -------------------------- *)

(* live cells = allocations - sweeps - arena frees, even when the run is
   cut short by an exception *)
let check_live_invariant m =
  let s = M.stats m in
  checki "live invariant"
    (Stats.total_allocs s - s.Stats.swept - s.Stats.arena_freed)
    (M.live_cells m)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let limit_tests =
  [
    Alcotest.test_case "oom-only-after-a-collection" `Quick (fun () ->
        (* a fixed-size heap raises only once a collection failed to help *)
        let src = Ex.wrap [ Ex.create_list_def ] "create_list 50" in
        let m = M.create ~heap_size:16 ~grow:false () in
        (match M.run m (Surface.of_string src) with
        | exception M.Out_of_memory -> ()
        | _ -> Alcotest.fail "expected Out_of_memory");
        checkb "collected first" true ((M.stats m).Stats.gc_runs >= 1);
        checki "capacity unchanged" 16 (M.stats m).Stats.heap_capacity;
        check_live_invariant m);
    Alcotest.test_case "fuel-exhaustion-stats" `Quick (fun () ->
        let m = M.create ~fuel:100 () in
        (match M.run m (Surface.of_string "letrec f x = f x in f 0") with
        | exception M.Out_of_fuel -> ()
        | _ -> Alcotest.fail "expected Out_of_fuel");
        checkb "steps consumed the budget" true ((M.stats m).Stats.steps >= 100);
        check_live_invariant m);
    Alcotest.test_case "oom-mid-build-stats" `Quick (fun () ->
        (* interrupted while consing: counters still add up *)
        let src = Ex.wrap [ Ex.append_def; Ex.rev_def ] "rev (append [1,2,3] [4,5,6])" in
        let m = M.create ~heap_size:4 ~grow:false () in
        (match M.run m (Surface.of_string src) with
        | exception M.Out_of_memory -> ()
        | _ -> Alcotest.fail "expected Out_of_memory");
        check_live_invariant m);
  ]

(* ---- arenas ---------------------------------------------------------------- *)

let ir_parse src = Ir.of_ast (Nml.Parser.parse src)

(* [length [1,2,3]] with the literal's spine in a region. *)
let region_program =
  let open Ir in
  let lst =
    App
      ( App (ConsAt (Arena 0), Const (Nml.Ast.Cint 1)),
        App (App (ConsAt (Arena 0), Const (Nml.Ast.Cint 2)), Const Nml.Ast.Cnil) )
  in
  Letrec
    ( [
        ( "length",
          Lam
            ( "l",
              If
                ( App (Prim Nml.Ast.Null, Var "l"),
                  Const (Nml.Ast.Cint 0),
                  App
                    ( App (Prim Nml.Ast.Add, Const (Nml.Ast.Cint 1)),
                      App (Var "length", App (Prim Nml.Ast.Cdr, Var "l")) ) ) ) );
      ],
      WithArena (Region, 0, App (Var "length", lst)) )

(* [id [1]] with the cell in a region: the cell escapes its arena. *)
let escaping_region_program =
  let open Ir in
  WithArena
    ( Region,
      0,
      App
        ( Lam ("x", Var "x"),
          App (App (ConsAt (Arena 0), Const (Nml.Ast.Cint 1)), Const Nml.Ast.Cnil) ) )

let arena_tests =
  [
    Alcotest.test_case "region-frees-wholesale" `Quick (fun () ->
        let m = M.create ~check_arenas:true () in
        let w = M.eval m region_program in
        checki "result" 2 (match w with M.Wint n -> n | _ -> -1);
        let s = M.stats m in
        checki "arena allocs" 2 s.Stats.arena_allocs;
        checki "arena freed" 2 s.Stats.arena_freed;
        checki "heap allocs" 0 s.Stats.heap_allocs;
        checki "gc untouched" 0 s.Stats.gc_runs;
        checki "nothing live" 0 (M.live_cells m));
    Alcotest.test_case "escape-detected" `Quick (fun () ->
        let m = M.create ~check_arenas:true () in
        match M.eval m escaping_region_program with
        | exception M.Error _ -> ()
        | _ -> Alcotest.fail "expected an arena safety violation");
    Alcotest.test_case "escape-undetected-gives-dangling" `Quick (fun () ->
        (* without the check the arena frees the escaping cell; reading the
           result then reports a dangling pointer *)
        let m = M.create ~check_arenas:false () in
        let w = M.eval m escaping_region_program in
        match M.read_value m w with
        | exception M.Error _ -> ()
        | _ -> Alcotest.fail "expected a dangling pointer");
    Alcotest.test_case "unknown-arena" `Quick (fun () ->
        let m = M.create () in
        let bad =
          Ir.App
            ( Ir.App (Ir.ConsAt (Ir.Arena 42), Ir.Const (Nml.Ast.Cint 1)),
              Ir.Const Nml.Ast.Cnil )
        in
        match M.eval m bad with
        | exception M.Error _ -> ()
        | _ -> Alcotest.fail "expected an error");
    Alcotest.test_case "nested-dynamic-arenas" `Quick (fun () ->
        (* the same static id nests: a recursive function opening an arena
           per activation allocates into its own *)
        let open Ir in
        let prog =
          Letrec
            ( [
                ( "f",
                  Lam
                    ( "n",
                      If
                        ( App (App (Prim Nml.Ast.Eq, Var "n"), Const (Nml.Ast.Cint 0)),
                          Const (Nml.Ast.Cint 0),
                          WithArena
                            ( Region,
                              7,
                              App
                                ( Lam
                                    ( "tmp",
                                      App
                                        ( Var "f",
                                          App
                                            ( App (Prim Nml.Ast.Sub, Var "n"),
                                              Const (Nml.Ast.Cint 1) ) ) ),
                                  App
                                    ( App (ConsAt (Arena 7), Var "n"),
                                      Const Nml.Ast.Cnil ) ) ) ) ) );
              ],
              App (Var "f", Const (Nml.Ast.Cint 4)) )
        in
        let m = M.create ~check_arenas:true () in
        let w = M.eval m prog in
        checki "result" 0 (match w with M.Wint n -> n | _ -> -1);
        checki "arena allocs" 4 (M.stats m).Stats.arena_allocs;
        checki "arena freed" 4 (M.stats m).Stats.arena_freed);
  ]

(* ---- chaos mode -------------------------------------------------------------- *)

let chaos_on = { M.gc_period = 1; poison = true; chaos_seed = 7 }

(* [car] of a cell that died with its arena: the classic consequence of
   an unsound stack-allocation verdict *)
let use_after_free_program =
  let open Ir in
  App
    ( Prim Nml.Ast.Car,
      WithArena
        ( Region,
          0,
          App (App (ConsAt (Arena 0), Const (Nml.Ast.Cint 1)), Const Nml.Ast.Cnil) ) )

let chaos_tests =
  [
    Alcotest.test_case "chaos-gc-preserves-agreement" `Quick (fun () ->
        (* collecting at every allocation point must not change results *)
        let src = Ex.wrap [ Ex.append_def; Ex.rev_def ] "rev [1,2,3,4,5,6,7,8]" in
        let m = M.create ~heap_size:4 ~grow:true ~check_arenas:true ~chaos:chaos_on () in
        let v = M.read_value m (M.run m (Surface.of_string src)) in
        Alcotest.check value "result" (eval_src src) v;
        checkb "chaos collections happened" true ((M.stats m).Stats.chaos_gcs > 0);
        check_live_invariant m);
    Alcotest.test_case "chaos-is-deterministic" `Quick (fun () ->
        let src = Ex.wrap [ Ex.append_def; Ex.rev_def ] "rev [1,2,3,4,5]" in
        let run () =
          let m = M.create ~heap_size:4 ~chaos:chaos_on () in
          ignore (M.run m (Surface.of_string src));
          ((M.stats m).Stats.chaos_gcs, (M.stats m).Stats.gc_runs)
        in
        let a = run () and b = run () in
        checki "same forced collections" (fst a) (fst b);
        checki "same total collections" (snd a) (snd b));
    Alcotest.test_case "use-after-free-is-silent-without-poison" `Quick (fun () ->
        (* the machine of the seed scrubs freed cells to nil: the dangling
           car *succeeds* with a wrong answer — exactly what poisoning is
           there to catch *)
        let m = M.create ~check_arenas:false () in
        (match M.eval m use_after_free_program with
        | M.Wnil -> ()
        | w -> Alcotest.failf "expected the silent nil, got %a" (M.pp_word m) w));
    Alcotest.test_case "poison-crashes-use-after-free" `Quick (fun () ->
        let m =
          M.create ~check_arenas:false
            ~chaos:{ M.no_chaos with M.poison = true }
            ()
        in
        (match M.eval m use_after_free_program with
        | exception M.Error msg ->
            checkb "mentions use after free" true (contains_substring msg "freed")
        | w -> Alcotest.failf "expected a crash, got %a" (M.pp_word m) w);
        checkb "poisoned cells counted" true ((M.stats m).Stats.poisoned > 0));
    Alcotest.test_case "poison-does-not-disturb-sound-arenas" `Quick (fun () ->
        let m =
          M.create ~check_arenas:true
            ~chaos:{ chaos_on with M.gc_period = 2 }
            ()
        in
        let w = M.eval m region_program in
        checki "result" 2 (match w with M.Wint n -> n | _ -> -1);
        checki "arena freed" 2 (M.stats m).Stats.arena_freed;
        check_live_invariant m);
  ]

(* ---- pairs in the store ------------------------------------------------------ *)

let pair_tests =
  [
    Alcotest.test_case "pairs-allocate-cells" `Quick (fun () ->
        let m = M.create () in
        ignore (M.eval m (ir_parse "mkpair 1 2"));
        checki "one cell" 1 (M.stats m).Stats.heap_allocs);
    Alcotest.test_case "pairs-are-collected" `Quick (fun () ->
        let m = M.create ~heap_size:8 () in
        (* build and drop pairs: the collector reclaims them *)
        let src = "letrec spin n = if n = 0 then 0 else spin (n - 1) + fst (mkpair 1 2) in spin 30" in
        let w = M.run m (Surface.of_string src) in
        checki "result" 30 (match w with M.Wint n -> n | _ -> -1);
        checkb "collected" true ((M.stats m).Stats.gc_runs > 0));
    Alcotest.test_case "pair-cells-marked-through" `Quick (fun () ->
        (* a live pair keeps its components alive across a collection *)
        let m = M.create ~heap_size:4 ~grow:true () in
        let w = M.eval m (ir_parse "let p = mkpair [1] [2, 3] in mkpair (fst p) (snd p)") in
        ignore w);
    Alcotest.test_case "fst-of-list-fails" `Quick (fun () ->
        let m = M.create () in
        match M.eval m (ir_parse "fst [1]") with
        | exception M.Error _ -> ()
        | _ -> Alcotest.fail "expected an error");
    Alcotest.test_case "car-of-pair-fails" `Quick (fun () ->
        let m = M.create () in
        match M.eval m (ir_parse "car (mkpair 1 2)") with
        | exception M.Error _ -> ()
        | _ -> Alcotest.fail "expected an error");
    Alcotest.test_case "tree-node-allocates-one-cell" `Quick (fun () ->
        let m = M.create () in
        ignore (M.eval m (ir_parse "node leaf 1 leaf"));
        checki "one cell" 1 (M.stats m).Stats.heap_allocs);
    Alcotest.test_case "tree-label-survives-gc" `Quick (fun () ->
        (* the label field must be a GC root through the node *)
        let m = M.create ~heap_size:4 ~grow:true () in
        let src =
          Ex.wrap [ Ex.tinsert_def; Ex.tsum_def ]
            "tsum (tinsert 1 (tinsert 2 (tinsert 3 (tinsert 4 (tinsert 5 leaf)))))"
        in
        let w = M.run m (Surface.of_string src) in
        checki "sum" 15 (match w with M.Wint n -> n | _ -> -1));
    Alcotest.test_case "label-of-leaf-fails" `Quick (fun () ->
        let m = M.create () in
        match M.eval m (ir_parse "label leaf") with
        | exception M.Error _ -> ()
        | _ -> Alcotest.fail "expected an error");
  ]

(* ---- DCONS ---------------------------------------------------------------- *)

let dcons_tests =
  [
    Alcotest.test_case "reuses-in-place" `Quick (fun () ->
        (* dcons [9] 1 nil redefines the cell *)
        let src = Ir.App (Ir.App (Ir.App (Ir.Dcons, ir_parse "[9]"), ir_parse "1"), ir_parse "nil") in
        let m = M.create () in
        let w = M.eval m src in
        Alcotest.check value "value" (Eval.value_of_int_list [ 1 ]) (M.read_value m w);
        checki "one alloc" 1 (M.stats m).Stats.heap_allocs;
        checki "one reuse" 1 (M.stats m).Stats.dcons_reuses);
    Alcotest.test_case "dcons-on-nil-fails" `Quick (fun () ->
        let src = Ir.App (Ir.App (Ir.App (Ir.Dcons, ir_parse "nil"), ir_parse "1"), ir_parse "nil") in
        let m = M.create () in
        match M.eval m src with
        | exception M.Error _ -> ()
        | _ -> Alcotest.fail "expected an error");
    Alcotest.test_case "dcons-on-int-fails" `Quick (fun () ->
        let src = Ir.App (Ir.App (Ir.App (Ir.Dcons, ir_parse "7"), ir_parse "1"), ir_parse "nil") in
        let m = M.create () in
        match M.eval m src with
        | exception M.Error _ -> ()
        | _ -> Alcotest.fail "expected an error");
  ]

(* ---- ir --------------------------------------------------------------------- *)

let ir_tests =
  [
    Alcotest.test_case "count-sites" `Quick (fun () ->
        checki "three conses" 3 (Ir.count_sites (ir_parse "[1, 2, 3]"));
        checki "none" 0 (Ir.count_sites (ir_parse "1 + 2")));
    Alcotest.test_case "map-conses" `Quick (fun () ->
        let e = ir_parse "[1, 2]" in
        let e' = Ir.map_conses (fun i -> if i = 0 then Ir.Arena 5 else Ir.Heap) e in
        let rec count_arena = function
          | Ir.ConsAt (Ir.Arena 5) -> 1
          | Ir.ConsAt _ | Ir.NodeAt _ | Ir.Const _ | Ir.Prim _ | Ir.Dcons | Ir.Dnode
          | Ir.Var _ ->
              0
          | Ir.App (f, a) -> count_arena f + count_arena a
          | Ir.Lam (_, b) -> count_arena b
          | Ir.If (c, t, f) -> count_arena c + count_arena t + count_arena f
          | Ir.Letrec (bs, b) ->
              List.fold_left (fun acc (_, rhs) -> acc + count_arena rhs) (count_arena b) bs
          | Ir.WithArena (_, _, b) -> count_arena b
        in
        checki "one annotated" 1 (count_arena e'));
    Alcotest.test_case "machine-error-on-type-violation" `Quick (fun () ->
        let m = M.create () in
        match M.eval m (ir_parse "car 5") with
        | exception M.Error _ -> ()
        | _ -> Alcotest.fail "expected an error");
  ]

(* ---- the generational heap --------------------------------------------------- *)

let tiny_gen nursery = { Runtime.Heap.generational with Runtime.Heap.nursery }

let run_gen ?(config = tiny_gen 2) ?(heap_size = 64) src =
  let m = M.create ~heap_size ~check_arenas:true ~config () in
  let w = M.run m (Surface.of_string src) in
  (M.read_value m w, m)

(* cons 0 (dcons [9] 1 [2]): the reused cell is promoted long before the
   young tail is written into it — the old-to-young edge only survives
   the next minor collection if the write barrier remembered it *)
let barrier_program =
  let open Ir in
  App
    ( App (Prim Nml.Ast.Cons, Const (Nml.Ast.Cint 0)),
      App
        ( App (App (Dcons, ir_parse "[9]"), Const (Nml.Ast.Cint 1)),
          ir_parse "[2]" ) )

let generational_tests =
  [
    Alcotest.test_case "promotion-preserves-results" `Quick (fun () ->
        let src = Ex.wrap [ Ex.append_def; Ex.rev_def ] "rev [1,2,3,4,5,6,7,8]" in
        let v, m = run_gen src in
        Alcotest.check value "result" (eval_src src) v;
        let s = M.stats m in
        checkb "minor collections ran" true (s.Stats.minor_gcs > 0);
        checkb "survivors were promoted" true (s.Stats.promoted > 0);
        checkb "promoted within allocations" true
          (s.Stats.promoted + s.Stats.pretenured <= s.Stats.heap_allocs);
        check_live_invariant m);
    Alcotest.test_case "minor-then-major-stay-consistent" `Quick (fun () ->
        let src = Ex.wrap [ Ex.create_list_def ] "create_list 10" in
        let _, m = run_gen ~config:(tiny_gen 3) src in
        M.collect_minor m;
        M.collect m;
        let s = M.stats m in
        checkb "split covers all collections" true
          (s.Stats.minor_gcs + s.Stats.major_gcs <= s.Stats.gc_runs);
        checkb "major ran" true (s.Stats.major_gcs > 0);
        check_live_invariant m);
    Alcotest.test_case "pretenured-cells-skip-the-nursery" `Quick (fun () ->
        let prog =
          Ir.App
            ( Ir.App (Ir.ConsAt Ir.Pretenured, Ir.Const (Nml.Ast.Cint 1)),
              Ir.App
                ( Ir.App (Ir.ConsAt Ir.Pretenured, Ir.Const (Nml.Ast.Cint 2)),
                  Ir.Const Nml.Ast.Cnil ) )
        in
        let m = M.create ~config:Runtime.Heap.generational () in
        let w = M.eval m prog in
        Alcotest.check value "value"
          (Eval.value_of_int_list [ 1; 2 ])
          (M.read_value m w);
        let s = M.stats m in
        checki "pretenured" 2 s.Stats.pretenured;
        checki "no minors triggered" 0 s.Stats.minor_gcs);
    Alcotest.test_case "pretenure-hint-ignored-when-disabled" `Quick (fun () ->
        let prog =
          Ir.App
            ( Ir.App (Ir.ConsAt Ir.Pretenured, Ir.Const (Nml.Ast.Cint 1)),
              Ir.Const Nml.Ast.Cnil )
        in
        let m =
          M.create
            ~config:{ Runtime.Heap.generational with Runtime.Heap.pretenure = false }
            ()
        in
        let w = M.eval m prog in
        Alcotest.check value "value" (Eval.value_of_int_list [ 1 ]) (M.read_value m w);
        checki "hint ignored" 0 (M.stats m).Stats.pretenured);
    Alcotest.test_case "barrier-keeps-old-to-young-edge" `Quick (fun () ->
        (* nursery of 1: every allocation ages its predecessors *)
        let m = M.create ~config:(tiny_gen 1) () in
        let w = M.eval m barrier_program in
        Alcotest.check value "value"
          (Eval.value_of_int_list [ 0; 1; 2 ])
          (M.read_value m w);
        let s = M.stats m in
        checkb "promotion happened" true (s.Stats.promoted > 0);
        checkb "reuse happened" true (s.Stats.dcons_reuses = 1);
        check_live_invariant m);
    Alcotest.test_case "regions-reset-wholesale" `Quick (fun () ->
        let m =
          M.create ~check_arenas:true ~config:Runtime.Heap.generational ()
        in
        let w = M.eval m region_program in
        checki "result" 2 (match w with M.Wint n -> n | _ -> -1);
        let s = M.stats m in
        checki "arena allocs" 2 s.Stats.arena_allocs;
        checki "arena freed" 2 s.Stats.arena_freed;
        checki "one region reclaimed" 1 s.Stats.regions_reclaimed;
        checki "no gc needed" 0 s.Stats.gc_runs);
    Alcotest.test_case "arena-reset-poisons-under-generational" `Quick (fun () ->
        (* a dangling read into a reset region must crash, not read stale
           bits, exactly as on the legacy heap *)
        let m =
          M.create ~check_arenas:false
            ~chaos:{ M.no_chaos with M.poison = true }
            ~config:Runtime.Heap.generational ()
        in
        (match M.eval m use_after_free_program with
        | exception M.Error msg ->
            checkb "mentions use after free" true (contains_substring msg "freed")
        | w -> Alcotest.failf "expected a crash, got %a" (M.pp_word m) w);
        checkb "poisoned cells counted" true ((M.stats m).Stats.poisoned > 0));
    Alcotest.test_case "regions-off-falls-back-to-the-heap" `Quick (fun () ->
        let m =
          M.create ~check_arenas:true
            ~config:{ Runtime.Heap.generational with Runtime.Heap.regions = false }
            ()
        in
        let w = M.eval m region_program in
        checki "result" 2 (match w with M.Wint n -> n | _ -> -1);
        let s = M.stats m in
        checki "no arena cells" 0 s.Stats.arena_allocs;
        checki "spine on the gc heap" 2 s.Stats.heap_allocs;
        checki "nothing reclaimed wholesale" 0 s.Stats.regions_reclaimed);
    Alcotest.test_case "chaos-agrees-on-the-generational-heap" `Quick (fun () ->
        let src = Ex.wrap [ Ex.append_def; Ex.rev_def ] "rev [1,2,3,4,5,6,7,8]" in
        let m =
          M.create ~heap_size:4 ~grow:true ~check_arenas:true ~chaos:chaos_on
            ~config:(tiny_gen 2) ()
        in
        let v = M.read_value m (M.run m (Surface.of_string src)) in
        Alcotest.check value "result" (eval_src src) v;
        checkb "chaos collections happened" true ((M.stats m).Stats.chaos_gcs > 0);
        check_live_invariant m);
    Alcotest.test_case "fragmentation-witness-recycles-freed-cells" `Quick (fun () ->
        (* an alloc/free churn several times over capacity in a
           fixed-size store: every allocation after the first sweep must
           come off the intrusive free list, so capacity never moves *)
        let src =
          Ex.wrap
            [ Ex.insert_def; Ex.isort_def; Ex.last_def ]
            "last (isort [9,3,7,1,8,2,6,4,5]) + last (isort [5,4,6,2,8,1,7,3,9])"
        in
        List.iter
          (fun config ->
            let m = M.create ~heap_size:32 ~grow:false ~check_arenas:true ~config () in
            let w = M.run m (Surface.of_string src) in
            Alcotest.check value "result" (eval_src src) (M.read_value m w);
            let s = M.stats m in
            checkb "churn exceeded capacity" true (Stats.total_allocs s > 64);
            checki "capacity unchanged" 32 s.Stats.heap_capacity;
            check_live_invariant m)
          [ Runtime.Heap.legacy; tiny_gen 4 ]);
  ]

(* ---- pause statistics --------------------------------------------------------- *)

let pause_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~name:"pause percentiles are monotone" ~count:300
        QCheck.(list (int_bound 100_000))
        (fun cells ->
          let s = Stats.create () in
          List.iter (fun c -> Stats.record_pause s ~cells:c ~ns:(float_of_int c)) cells;
          match (Stats.pause_percentiles_cells s, Stats.pause_percentiles_ns s) with
          | None, None -> cells = []
          | Some (p50, p95, mx), Some (n50, n95, nmx) ->
              cells <> []
              && p50 <= p95 && p95 <= mx
              && mx = List.fold_left max 0 cells
              && n50 <= n95 && n95 <= nmx
              && int_of_float nmx = List.fold_left max 0 cells
          | _ -> false);
    ]

(* ---- differential property -------------------------------------------------- *)

let differential =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~name:"machine agrees with reference interpreter" ~count:300
        (QCheck.make ~print:(fun s -> s) Gen.gen_program)
        (fun src ->
          let expected = eval_src src in
          let m = M.create ~heap_size:8 ~grow:true ~check_arenas:true () in
          let got = M.read_value m (M.run m (Surface.of_string src)) in
          Eval.equal_value expected got);
      QCheck.Test.make ~name:"machine under memory pressure agrees" ~count:150
        (QCheck.make ~print:(fun s -> s) Gen.gen_program)
        (fun src ->
          let expected = eval_src src in
          let m = M.create ~heap_size:2 ~grow:true () in
          let got = M.read_value m (M.run m (Surface.of_string src)) in
          Eval.equal_value expected got);
      QCheck.Test.make ~name:"generational machine agrees with reference" ~count:200
        (QCheck.make ~print:(fun s -> s) Gen.gen_program)
        (fun src ->
          let expected = eval_src src in
          let m =
            M.create ~heap_size:8 ~grow:true ~check_arenas:true
              ~config:(tiny_gen 2) ()
          in
          let got = M.read_value m (M.run m (Surface.of_string src)) in
          Eval.equal_value expected got);
    ]

let () =
  Alcotest.run "runtime"
    [
      ("agreement", agreement_tests);
      ("gc", gc_tests);
      ("limits", limit_tests);
      ("arenas", arena_tests);
      ("chaos", chaos_tests);
      ("pairs", pair_tests);
      ("dcons", dcons_tests);
      ("ir", ir_tests);
      ("generational", generational_tests);
      ("pauses", pause_tests);
      ("differential", differential);
    ]
