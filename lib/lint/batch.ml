(* The per-file lint job for [nmlc batch --lint]: an [Engine.run] under
   the pool's exception regime, producing the same rendered text that
   [nmlc lint] prints so the driver can merge reports in input order. *)

let of_source ~config ~store ~path src =
  let o = Engine.run ~config ?store ~file:path src in
  let rendered =
    if o.Engine.findings = [] then ""
    else
      Format.asprintf "%a@."
        (Nml.Diagnostic.render Nml.Diagnostic.Human)
        o.Engine.findings
  in
  {
    Cache.Batch.path;
    output =
      rendered
      ^ Printf.sprintf "lint: %d finding(s), %d suppressed\n"
          (List.length o.Engine.findings)
          o.Engine.suppressed;
    errors = "";
    code = (if o.Engine.findings = [] then 0 else 1);
    defs = o.Engine.defs;
    findings = List.length o.Engine.findings;
    evaluations = o.Engine.evaluations;
    scc_hits = o.Engine.scc_hits;
    scc_misses = o.Engine.scc_misses;
  }

let analyze_source ?(config = Registry.default) ~store ~path src =
  Cache.Batch.protect path (fun () -> of_source ~config ~store ~path src)

let analyze_file ?(config = Registry.default) ~store path =
  Cache.Batch.protect path (fun () ->
      let src = In_channel.with_open_text path In_channel.input_all in
      of_source ~config ~store ~path src)
