(** The basic escape domain [B_e] (section 3.2).

    [B_e] is the finite chain

    {v <0,0> ⊑ <1,0> ⊑ <1,1> ⊑ ... ⊑ <1,d> v}

    where [d] is a per-program constant: the largest spine count of any
    list type in the program.  Under the abstract semantics (section 3.4)
    the element [<1,i>] means {e the bottom [i] spines of the interesting
    object may be contained in the value}; [<0,0>] means no part of the
    interesting object is contained.  For a non-list interesting object
    [i] is always [0]: [<1,0>] reads "the (indivisible) object may be
    contained". *)

type t =
  | Zero  (** [<0,0>]: no part of the interesting object *)
  | One of int  (** [<1,i>]: the bottom [i] spines (i >= 0) *)

val zero : t
val one : int -> t
(** @raise Invalid_argument if the spine count is negative. *)

val bottom : t
(** [Zero], the least element. *)

val top : d:int -> t
(** [One d], the greatest element of the chain bounded by [d]. *)

val join : t -> t -> t
val meet : t -> t -> t
val leq : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val spines : t -> int
(** [spines Zero = 0], [spines (One i) = i]: how many bottom spines escape
    (the paper's [esc_i] in Theorem 2). *)

val sub : s:int -> t -> t
(** The paper's [sub^s] on the first component (section 3.4, [car^s]):
    if the value is [<1,s>] — the [s]-th bottom spine of the interesting
    object is part of the top spine of the list being destructed — then
    taking [car] strips one spine, giving [<1,s-1>]; otherwise the value
    is unchanged.  @raise Invalid_argument when [s < 1]. *)

val all : d:int -> t list
(** Every element of the chain, bottom first:
    [[Zero; One 0; ...; One d]]. *)

val pp : Format.formatter -> t -> unit
(** Prints in the paper's notation: [<0,0>] or [<1,i>]. *)

val to_string : t -> string
