lib/optimize/annotate.ml: Escape Hashtbl List Nml Runtime Shape
