(** Parallel batch analysis over a list of program files.

    Files are distributed over [jobs] domains (spawned with the stdlib
    [Domain.spawn]; [jobs <= 1] runs inline).  Each file's analysis is
    exactly what [nmlc analyze] performs — optionally through the
    persistent summary cache — and each {!result} carries the rendered
    stdout/stderr text, so reporting is deterministic: results come back
    in input order regardless of completion order. *)

type result = {
  path : string;
  output : string;  (** what [nmlc analyze] would print on stdout *)
  errors : string;  (** what [nmlc analyze] would print on stderr *)
  code : int;  (** 0 clean, 1 diagnostics/user error, 124 internal *)
  defs : int;
  evaluations : int;  (** fixpoint entry evaluations ([0] = fully warm) *)
  scc_hits : int;
  scc_misses : int;
}

val analyze_file : ?store:Store.t -> string -> result
(** One file, inline (the sequential baseline the differential tests
    compare the pool against). *)

val run : ?store:Store.t -> jobs:int -> string list -> result list
(** Results in input order. *)

val exit_code : result list -> int
(** The batch exit code under the driver's regime: [124] if any file hit
    an internal error, else [1] if any file produced findings or errors,
    else [0]. *)
