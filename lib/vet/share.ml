(* The verifier's own interprocedural sharing and spine-liveness
   summaries, derived directly from the annotated IR by a syntactic
   fixpoint — deliberately sharing {e no} code with the analysis
   framework ({!Framework.Alias}, {!Framework.Spinelive}) or the
   optimizer: where those decide what is sound to emit, this module
   independently re-derives what was claimed.

   Two questions, both per (definition, parameter):

   - {e sharing}: may the definition's result contain cells of that
     argument ([dep]), and may such cells sit in spine/constructor
     position of the result ([sp])?  Everything is over-approximated
     syntactically (no types, no flow): [cons]/[node] join all fields,
     projections keep the bits, unknown applications go to top.  The
     call rule {!call_unshared} mirrors the optimizer's licensing clause
     so {!Fresh.depth} can re-derive alias-licensed redirections.

   - {e spine liveness}: is the parameter's spine past the head
     certainly never needed?  A claim holds when every occurrence of
     the parameter is a head read ([car]/[label]) or is forwarded whole
     to a parameter position that itself re-derives as spine-dead; any
     other context — a bare return, a [cdr]/[null], a construction, a
     destructive source, an unknown callee — refutes it.  This is the
     re-derivation behind the driver's advisory [hinted_dead_spine]
     heap hints (VET018). *)

module A = Nml.Ast
module Ir = Runtime.Ir

type flags = { dep : bool; sp : bool }

let bot = { dep = false; sp = false }
let top = { dep = true; sp = true }
let join a b = { dep = a.dep || b.dep; sp = a.sp || b.sp }
let flags_equal a b = a.dep = b.dep && a.sp = b.sp

type t = {
  base : string -> string;  (* derived name -> the definition it came from *)
  params : (string * string list) list;  (* base def -> leading parameters *)
  mutable sharing : (string * flags array) list;
  mutable dead : (string * bool array) list;
      (* spine past the head certainly never needed *)
}

let rec strip_lams = function
  | Ir.Lam (x, b) ->
      let ps, body = strip_lams b in
      (x :: ps, body)
  | e -> ([], e)

let head_and_args e =
  let rec go acc = function Ir.App (f, a) -> go (a :: acc) f | h -> (h, acc) in
  go [] e

(* ---- sharing --------------------------------------------------------------- *)

(* base-datum primitives: their value holds no heap cell of any operand *)
let detaching = function
  | A.Add | A.Sub | A.Mul | A.Div | A.Mod | A.Eq | A.Ne | A.Lt | A.Le | A.Gt
  | A.Ge | A.And | A.Or | A.Not | A.Null | A.Isleaf ->
      true
  | _ -> false

let eval_sharing t env e =
  let rec go env e =
    match e with
    | Ir.Const _ | Ir.Prim _ | Ir.ConsAt _ | Ir.NodeAt _ | Ir.Dcons | Ir.Dnode ->
        bot
    | Ir.Var x -> ( match List.assoc_opt x env with Some f -> f | None -> bot)
    | Ir.Lam (x, b) ->
        (* the closure's eventual result may expose whatever the body
           can reach; the binder itself carries nothing of the probe *)
        go ((x, bot) :: List.remove_assoc x env) b
    | Ir.If (_, th, el) -> join (go env th) (go env el)
    | Ir.WithArena (_, _, b) -> go env b
    | Ir.Letrec (bs, body) ->
        (* local bindings: iterate the small member lattice to a
           fixpoint so recursive local functions are covered *)
        let env = List.fold_left (fun acc (x, _) -> (x, bot) :: List.remove_assoc x acc) env bs in
        let rec stabilize env =
          let env' =
            List.fold_left
              (fun acc (x, rhs) ->
                let f = join (List.assoc x acc) (go acc rhs) in
                (x, f) :: List.remove_assoc x acc)
              env bs
          in
          if List.for_all (fun (x, _) -> flags_equal (List.assoc x env) (List.assoc x env')) bs
          then env'
          else stabilize env'
        in
        go (stabilize env) body
    | Ir.App (Ir.Lam (x, b), rhs) ->
        (* let sugar *)
        let f = go env rhs in
        go ((x, f) :: List.remove_assoc x env) b
    | Ir.App _ -> (
        match head_and_args e with
        | (Ir.Prim A.Cons | Ir.ConsAt _), [ h; tl ] -> join (go env h) (go env tl)
        | Ir.Dcons, [ src; h; tl ] ->
            (* the recycled source cell becomes a spine cell of the result *)
            let s = go env src in
            join { s with sp = s.sp || s.dep } (join (go env h) (go env tl))
        | (Ir.Prim A.Node | Ir.NodeAt _), [ l; x; r ] ->
            join (go env l) (join (go env x) (go env r))
        | Ir.Dnode, [ src; l; x; r ] ->
            let s = go env src in
            join
              { s with sp = s.sp || s.dep }
              (join (go env l) (join (go env x) (go env r)))
        | Ir.Prim (A.Car | A.Cdr | A.Label | A.Left | A.Right | A.Fst | A.Snd), [ e' ]
          ->
            go env e'
        | Ir.Prim A.Pair, [ a; b ] -> join (go env a) (go env b)
        | Ir.Prim p, args when detaching p ->
            List.iter (fun a -> ignore (go env a)) args;
            bot
        | Ir.Var g, args -> (
            match List.assoc_opt (t.base g) t.sharing with
            | Some s when Array.length s = List.length args ->
                List.fold_left
                  (fun acc (i, a) ->
                    if s.(i).dep || s.(i).sp then
                      let fa = go env a in
                      if fa.dep || fa.sp then
                        join acc { dep = true; sp = s.(i).sp || fa.sp }
                      else acc
                    else acc)
                  bot
                  (List.mapi (fun i a -> (i, a)) args)
            | _ ->
                (* unknown callee or partial application: anything any
                   argument (or the callee closure) can reach may end up
                   anywhere in the result *)
                let f =
                  List.fold_left (fun acc a -> join acc (go env a)) (go env (Ir.Var g)) args
                in
                if f.dep || f.sp then top else bot)
        | h, args ->
            let f = List.fold_left (fun acc a -> join acc (go env a)) (go env h) args in
            if f.dep || f.sp then top else bot)
  in
  go env e

(* ---- spine liveness --------------------------------------------------------- *)

(* Does [body] need the spine of [p] past the head?  [dead_of] resolves
   the current iterate for forwarded whole-parameter call arguments. *)
let spine_needs t dead_of p body =
  let rec needed p e =
    match e with
    | Ir.Var x -> String.equal x p (* bare use: retained or returned *)
    | Ir.Const _ | Ir.Prim _ | Ir.ConsAt _ | Ir.NodeAt _ | Ir.Dcons | Ir.Dnode ->
        false
    | Ir.Lam (x, b) -> (not (String.equal x p)) && needed p b
    | Ir.If (c, th, el) -> needed p c || needed p th || needed p el
    | Ir.WithArena (_, _, b) -> needed p b
    | Ir.Letrec (bs, b) ->
        if List.exists (fun (x, _) -> String.equal x p) bs then false
        else List.exists (fun (_, rhs) -> needed p rhs) bs || needed p b
    | Ir.App (Ir.Prim (A.Car | A.Label), Ir.Var x) when String.equal x p ->
        false (* a head read only *)
    | Ir.App _ -> (
        match head_and_args e with
        | Ir.Var g, args when List.mem_assoc (t.base g) t.params ->
            let params = List.assoc (t.base g) t.params in
            if List.length args <> List.length params then
              List.exists (needed p) args
            else
              List.exists2
                (fun i a ->
                  match a with
                  | Ir.Var x when String.equal x p ->
                      not (dead_of (t.base g) i) (* forwarded whole *)
                  | a -> needed p a)
                (List.init (List.length args) Fun.id)
                args
        | h, args -> needed p h || List.exists (needed p) args)
  in
  needed p body

(* ---- construction ----------------------------------------------------------- *)

let make ~base defs =
  let bases =
    List.filter (fun (n, _) -> String.equal (base n) n) defs
    |> List.map (fun (n, rhs) -> (n, strip_lams rhs))
  in
  let params = List.map (fun (n, (ps, _)) -> (n, ps)) bases in
  let t =
    {
      base;
      params;
      sharing =
        List.map (fun (n, (ps, _)) -> (n, Array.make (List.length ps) bot)) bases;
      dead =
        List.map (fun (n, (ps, _)) -> (n, Array.make (List.length ps) true)) bases;
    }
  in
  (* sharing: least fixpoint from bottom *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (n, (ps, body)) ->
        let cur = List.assoc n t.sharing in
        List.iteri
          (fun i pi ->
            let env = List.map (fun q -> (q, if String.equal q pi then top else bot)) ps in
            let f = join cur.(i) (eval_sharing t env body) in
            if not (flags_equal f cur.(i)) then begin
              cur.(i) <- f;
              changed := true
            end)
          ps)
      bases
  done;
  (* spine liveness: greatest fixpoint from all-dead *)
  let dead_of n i =
    match List.assoc_opt n t.dead with
    | Some d when i < Array.length d -> d.(i)
    | _ -> false
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (n, (ps, body)) ->
        let cur = List.assoc n t.dead in
        List.iteri
          (fun i pi ->
            if cur.(i) && spine_needs t dead_of pi body then begin
              cur.(i) <- false;
              changed := true
            end)
          ps)
      bases
  done;
  t

(* ---- queries ---------------------------------------------------------------- *)

let retained t ~def ~arg =
  match List.assoc_opt (t.base def) t.sharing with
  | Some s when arg >= 1 && arg <= Array.length s -> s.(arg - 1)
  | _ -> top

let spine_dead t ~def ~arg =
  match List.assoc_opt (t.base def) t.dead with
  | Some d when arg >= 1 && arg <= Array.length d -> d.(arg - 1)
  | _ -> false

(* The interprocedural licensing clause the optimizer's alias client
   uses, re-derived from this module's own summaries: when every
   argument either shares nothing into the result or is itself entirely
   fresh (to its full spine count, which must be positive — an
   arrow-typed argument has no spines yet its closure could smuggle
   cells), every cell of the result is fresh, so the result is unshared
   to its full spine count. *)
let call_unshared t ~def ~arg_spines ~result_spines ~args_fresh =
  let ok i u d =
    let f = retained t ~def ~arg:(i + 1) in
    ((not f.dep) && not f.sp) || (d > 0 && u >= d)
  in
  let rec all i us ds =
    match (us, ds) with
    | [], [] -> true
    | u :: us, d :: ds -> ok i u d && all (i + 1) us ds
    | _ -> false
  in
  if all 0 args_fresh arg_spines then result_spines else 0
