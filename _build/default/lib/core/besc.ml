type t = Zero | One of int

let zero = Zero

let one i =
  if i < 0 then invalid_arg "Besc.one: negative spine count" else One i

let bottom = Zero
let top ~d = One d

let join a b =
  match (a, b) with
  | Zero, x | x, Zero -> x
  | One i, One j -> One (max i j)

let meet a b =
  match (a, b) with
  | Zero, _ | _, Zero -> Zero
  | One i, One j -> One (min i j)

let leq a b =
  match (a, b) with
  | Zero, _ -> true
  | One _, Zero -> false
  | One i, One j -> i <= j

let equal a b = match (a, b) with
  | Zero, Zero -> true
  | One i, One j -> i = j
  | (Zero | One _), _ -> false

let compare a b =
  match (a, b) with
  | Zero, Zero -> 0
  | Zero, One _ -> -1
  | One _, Zero -> 1
  | One i, One j -> Int.compare i j

let spines = function Zero -> 0 | One i -> i

let sub ~s t =
  if s < 1 then invalid_arg "Besc.sub: car^s needs s >= 1";
  match t with One i when i = s -> One (i - 1) | t -> t

let all ~d = Zero :: List.init (d + 1) (fun i -> One i)

let pp ppf = function
  | Zero -> Format.pp_print_string ppf "<0,0>"
  | One i -> Format.fprintf ppf "<1,%d>" i

let to_string t = Format.asprintf "%a" pp t
