(* The lint engine: runs the registry's rules over one program, with
   findings optionally persisted per SCC in the same content-addressed
   store as the escape summaries.

   Keying.  An SCC's lint record is keyed by a digest of

     - the lint schema version,
     - the SCC's *escape* summary key (which already covers the members'
       normalized bodies, the chain bound and every transitive callee),
     - the file name, and
     - each member's name, source span and raw source slice.

   The raw slice matters because lint findings, unlike escape summaries,
   carry locations and are sensitive to comments: touching anything that
   moves a definition's span or text must invalidate its record, while
   editing an unrelated definition must not.  The main expression and
   the program-scoped rules (LINT003's instance set is a whole-program
   property) are cached under a separate record keyed by the entire
   source.

   Records store findings at *default* severities; --only/--disable/
   --severity and suppression comments are applied at replay, so one
   record serves every configuration.  Fault injection bypasses the
   store entirely — a seeded lie must neither read stale truth nor
   poison the cache. *)

module A = Nml.Ast
module D = Nml.Diagnostic
module J = Nml.Json

(* v2 (PR8): the rule set gained the spine-liveness-backed LINT007, so
   pre-PR8 finding records must not replay.
   v3 (PR10): the rule set gained the sharing-backed LINT008. *)
let schema_version = "nmlc/lint-cache-v3"

(* ---- source slices ---------------------------------------------------------- *)

let line_starts src =
  let n = String.length src in
  let starts = ref [ 0 ] in
  String.iteri (fun i c -> if c = '\n' && i + 1 < n then starts := (i + 1) :: !starts) src;
  Array.of_list (List.rev !starts)

let offset_of starts src (p : Nml.Loc.pos) =
  if p.Nml.Loc.line < 1 || p.Nml.Loc.line > Array.length starts then None
  else
    let off = starts.(p.Nml.Loc.line - 1) + (p.Nml.Loc.col - 1) in
    if off < 0 || off > String.length src then None else Some off

let slice starts src (loc : Nml.Loc.t) =
  if Nml.Loc.is_dummy loc then ""
  else
    match
      (offset_of starts src loc.Nml.Loc.start_pos, offset_of starts src loc.Nml.Loc.end_pos)
    with
    | Some a, Some b when a <= b -> String.sub src a (b - a)
    | _ -> ""

(* ---- cache keys and records -------------------------------------------------- *)

let scc_key ~escape_key ~file ~descriptors =
  Digest.to_hex
    (Digest.string
       (String.concat "\n" (schema_version :: escape_key :: file :: List.sort compare descriptors)))

let program_key ~file ~src =
  Digest.to_hex (Digest.string (String.concat "\n" [ schema_version; "program"; file; src ]))

let record_to_json ~key findings =
  J.Obj
    [
      ("schema", J.Str schema_version);
      ("key", J.Str key);
      ("findings", J.Arr (List.map D.to_json findings));
    ]

(* Any shape mismatch is a miss: an unreadable record is recomputed and
   overwritten, never trusted. *)
let record_of_json ~key json =
  match (J.member "schema" json, J.member "key" json, J.member "findings" json) with
  | Some (J.Str s), Some (J.Str k), Some (J.Arr fs)
    when s = schema_version && k = key ->
      let decoded = List.map D.of_json fs in
      if List.for_all Option.is_some decoded then
        Some (List.map Option.get decoded)
      else None
  | _ -> None

(* ---- running ----------------------------------------------------------------- *)

type outcome = {
  findings : D.t list;
  suppressed : int;
  defs : int;
  evaluations : int;
  scc_hits : int;
  scc_misses : int;
}

let run_rules_scc ctx ~members =
  List.concat_map (fun r -> r.Rule.check_scc ctx ~members) Registry.all

let run_rules_program ctx =
  List.concat_map (fun r -> r.Rule.check_program ctx) Registry.all

let run ?(config = Registry.default) ?store ?(fault = Rule.No_fault) ~file src =
  let surface = Nml.Surface.of_string ~file src in
  let prog = Nml.Infer.infer_program surface in
  let ctx =
    {
      Rule.surface;
      prog;
      solver = lazy (Escape.Fixpoint.make prog);
      dead_params = lazy (Rules.dead_params surface);
      spinelive = lazy (Framework.Spinelive.Solver.make prog);
      alias = lazy (Framework.Alias.Solver.make prog);
      fault;
    }
  in
  let hits = ref 0 and misses = ref 0 in
  let raw =
    match store with
    | Some store when fault = Rule.No_fault ->
        let starts = line_starts src in
        let skey = Cache.Skey.of_program prog in
        let scc_findings =
          List.concat_map
            (fun (escape_key, members) ->
              let descriptors =
                List.map
                  (fun name ->
                    let loc, text =
                      match List.assoc_opt name surface.Nml.Surface.defs with
                      | Some rhs ->
                          let l = A.loc rhs in
                          (Nml.Loc.to_string l, slice starts src l)
                      | None -> ("", "")
                    in
                    Printf.sprintf "%s@%s=%s" name loc text)
                  members
              in
              let key = scc_key ~escape_key ~file ~descriptors in
              match Option.bind (Cache.Store.load store ~key) (record_of_json ~key) with
              | Some findings ->
                  incr hits;
                  findings
              | None ->
                  incr misses;
                  let findings = run_rules_scc ctx ~members in
                  Cache.Store.save store ~key (record_to_json ~key findings);
                  findings)
            (Cache.Skey.sccs skey)
        in
        let key = program_key ~file ~src in
        let program_findings =
          match Option.bind (Cache.Store.load store ~key) (record_of_json ~key) with
          | Some findings ->
              incr hits;
              findings
          | None ->
              incr misses;
              let findings = run_rules_program ctx in
              Cache.Store.save store ~key (record_to_json ~key findings);
              findings
        in
        scc_findings @ program_findings
    | _ ->
        let members = List.map fst surface.Nml.Surface.defs in
        run_rules_scc ctx ~members @ run_rules_program ctx
  in
  let configured = Registry.apply config raw in
  let kept, suppressed = Suppress.apply (Suppress.scan ~file src) configured in
  {
    findings = List.sort D.compare kept;
    suppressed;
    defs = List.length surface.Nml.Surface.defs;
    evaluations =
      (if Lazy.is_val ctx.Rule.solver then
         Escape.Fixpoint.evaluations (Lazy.force ctx.Rule.solver)
       else 0);
    scc_hits = !hits;
    scc_misses = !misses;
  }
