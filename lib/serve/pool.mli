(** The supervised worker pool.

    [jobs] worker domains pull requests from the bounded queue; a
    supervisor thread reaps any domain whose handler let an exception
    escape, answers the victim's client through [on_crash], and
    respawns the domain with exponential backoff (5 ms doubling to a
    500 ms cap; one served request resets it).  Results travel through
    a one-shot slot per job so a client that times out abandons the
    slot and a late result is discarded, never delivered. *)

type resp = { body : string; is_error : bool }

type slot

type job = {
  req : Protocol.request;
  key : string;  (** quarantine identity of the input *)
  deadline : float option;  (** absolute, [Unix.gettimeofday] basis *)
  cancelled : bool Atomic.t;  (** cooperative cancellation hint *)
  slot : slot;
}

val make_job :
  req:Protocol.request -> key:string -> deadline:float option -> job

val complete : job -> resp -> bool
(** Posts the response; [false] if the client already abandoned the
    job (the result is discarded). *)

val abandon : job -> unit
(** The client gave up (deadline): a late {!complete} becomes a no-op
    and [cancelled] is raised for cooperative handlers. *)

val peek : job -> resp option

val expired : now:float -> job -> bool

type t

val create :
  jobs:int ->
  queue:job Squeue.t ->
  handler:(job -> resp) ->
  on_crash:(job option -> exn -> unit) ->
  t
(** Spawns the worker domains and the supervisor.  [handler] runs on a
    worker domain; [on_crash] runs on the supervisor thread with the
    job the dead worker was holding (if any) — it must answer that
    job's client. *)

val respawns : t -> int
val discarded : t -> int

val drain : ?grace:float -> t -> int
(** Closes the queue, lets workers finish what is in flight, joins
    what finishes within [grace] seconds and abandons the rest (a
    runaway domain cannot be killed — the process exits around it).
    Returns the number of abandoned workers. *)
