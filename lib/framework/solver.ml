(* The analysis-agnostic fixpoint engine: the worklist solver that grew
   up hard-wired to the escape domain in [lib/core/fixpoint.ml], factored
   over a {!Spec.S}.  Everything the escape solver learned — recorded
   read frames, recursive-descent fresh solves, Tarjan SCC condensation
   settled dependencies-first, generation-stamped selective invalidation,
   per-solver state isolation, cap-and-widen — is inherited by any Spec
   instance.

   The [engine] and [stats] types live outside the functor on purpose:
   they are shared across all instantiations, so [Escape.Fixpoint.Worklist]
   and [Analyses]-side pattern matches are the same constructors. *)

module Ty = Nml.Ty
module Tast = Nml.Tast
module Infer = Nml.Infer

type engine = Worklist | Round_robin

let engine_name = function Worklist -> "worklist" | Round_robin -> "round-robin"

type stats = {
  stats_engine : engine;
  stats_passes : int;
  stats_iterations : int;
  stats_entries : int;
  stats_evaluations : int;
  stats_sccs : int;
  stats_largest_scc : int;
  stats_cache_hits : int;
  stats_cache_misses : int;
  stats_cache_invalidated : int;
  stats_dbound : int;
  stats_capped : bool;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v 0>engine              %s@,\
     passes              %d@,\
     entries             %d@,\
     entry evaluations   %d@,\
     iterations          %d@,\
     sccs                %d (largest %d)@,\
     application cache   %d hits, %d misses, %d invalidated@,\
     chain bound d       %d@,\
     capped              %b@]"
    (engine_name s.stats_engine) s.stats_passes s.stats_entries s.stats_evaluations
    s.stats_iterations s.stats_sccs s.stats_largest_scc s.stats_cache_hits
    s.stats_cache_misses s.stats_cache_invalidated s.stats_dbound s.stats_capped

module Make (S : Spec.S) = struct
  type entry = {
    name : string;
    inst : Ty.t;
    tast : Tast.texpr;
    source : S.source;  (* generation stamp; touched when [value] changes *)
    mutable value : S.value;
    mutable deps : entry list;  (* entries read during the last evaluation *)
    rdeps : (int, entry) Hashtbl.t;  (* reader's source id -> reader *)
    mutable dirty : bool;  (* a dependency changed since the last evaluation *)
    mutable evals : int;
    mutable in_progress : bool;  (* on the recursive-descent evaluation stack *)
    mutable idx : int;  (* scratch index for the condensation *)
  }

  type t = {
    prog : Infer.program;
    engine : engine;
    state : S.state;  (* this solver's private engine state *)
    cache : (string, entry) Hashtbl.t;  (* key: [S.demand_key] *)
    by_sid : (int, entry) Hashtbl.t;  (* source id -> entry *)
    mutable order : entry list;  (* insertion order, newest first *)
    mutable dbound : int;
    mutable stable : bool;
    mutable passes : int;
    mutable evaluated : int;  (* top-level entry evaluations *)
    mutable scc_count : int;  (* components in the last condensation *)
    mutable largest_scc : int;
    max_iters : int;
    hits0 : int;  (* [state]'s memo counters at creation time *)
    misses0 : int;
    invalidated0 : int;
    mutable ctx : S.ctx;  (* hooks back into this record *)
  }

  let absorb_tree_depth t tast =
    Tast.iter_tys (fun ty -> t.dbound <- max t.dbound (Ty.max_list_depth ty)) tast;
    S.ensure_d t.dbound

  let is_def t name = List.mem_assoc name t.prog.Infer.schemes

  (* ---- evaluation -------------------------------------------------------- *)

  (* One evaluation of an entry: run the transfer function on its body
     and compare against the current value, all inside one read frame.
     The comparison matters for the read set: evaluating a definition
     mostly builds closures, and the reads of other entries happen when
     those closures are probed — which [S.equal] does.  The collected
     sources are therefore the entry's true dependency set.  On a change
     the value is joined upward, the entry's source is touched (staling
     every memo that read it) and all recorded readers become dirty. *)
  let rec evaluate t e =
    e.dirty <- false;
    e.evals <- e.evals + 1;
    t.evaluated <- t.evaluated + 1;
    S.record_iteration t.ctx;
    let grown, reads =
      S.with_reads (fun () ->
          let v = S.transfer t.ctx e.tast in
          if S.equal ~d:t.dbound e.value v then None
          else Some (S.join e.value v))
    in
    set_deps t e reads;
    match grown with
    | None -> ()
    | Some v ->
        e.value <- v;
        S.touch e.source;
        Hashtbl.iter (fun _ r -> r.dirty <- true) e.rdeps

  and set_deps t e reads =
    List.iter (fun d -> Hashtbl.remove d.rdeps (S.source_id e.source)) e.deps;
    let ds =
      List.filter_map
        (fun (s, _gen) -> Hashtbl.find_opt t.by_sid (S.source_id s))
        reads
    in
    e.deps <- ds;
    List.iter (fun d -> Hashtbl.replace d.rdeps (S.source_id e.source) e) ds

  (* First solve of a freshly demanded entry, called from the global hook:
     recursive descent.  Dependencies demanded during the evaluation are
     solved (recursively) before their value is returned, so on a
     cycle-free path every entry is evaluated exactly once, against
     already-final dependencies.  A self-cycle re-dirties the entry
     through its recorded self-dependency; the local loop iterates it to
     its own fixpoint. *)
  and solve_fresh t e =
    e.in_progress <- true;
    Fun.protect ~finally:(fun () -> e.in_progress <- false) @@ fun () ->
    evaluate t e;
    let n = ref 0 in
    while e.dirty && !n < t.max_iters do
      incr n;
      evaluate t e
    done

  and demand t name ty =
    let k = S.demand_key name ty in
    match Hashtbl.find_opt t.cache k with
    | Some e -> e
    | None ->
        let tast = Infer.instantiate_def t.prog name (Some ty) in
        absorb_tree_depth t tast;
        let e =
          {
            name;
            inst = ty;
            tast;
            source = S.new_source ();
            value = S.bottom tast.Tast.ty;
            deps = [];
            rdeps = Hashtbl.create 4;
            dirty = false;
            evals = 0;
            in_progress = false;
            idx = -1;
          }
        in
        Hashtbl.add t.cache k e;
        Hashtbl.add t.by_sid (S.source_id e.source) e;
        t.order <- e :: t.order;
        t.stable <- false;
        e

  and global_hook t name ty =
    if not (is_def t name) then
      invalid_arg (Printf.sprintf "Fixpoint: unknown identifier %s" name);
    let e = demand t name ty in
    (match t.engine with
    | Worklist -> if e.evals = 0 && not e.in_progress then solve_fresh t e
    | Round_robin -> ());
    (* record the read after any recursive solve: the caller consumes the
       settled value, not the intermediate iterates *)
    S.note_read e.source;
    e.value

  let make ?(max_iters = 200) ?(engine = Worklist) prog =
    let state = S.create_state () in
    let hits0, misses0 = S.with_state state S.memo_stats in
    let t =
      {
        prog;
        engine;
        state;
        cache = Hashtbl.create 32;
        by_sid = Hashtbl.create 32;
        order = [];
        dbound = 0;
        stable = true;
        passes = 0;
        evaluated = 0;
        scc_count = 0;
        largest_scc = 0;
        max_iters;
        hits0;
        misses0;
        invalidated0 = S.with_state state S.invalidations;
        ctx =
          S.make_ctx
            ~d:(fun () -> 0)
            ~global:(fun name _ ->
              invalid_arg
                (Printf.sprintf "Fixpoint: %s demanded before initialization" name))
            ~max_iters;
      }
    in
    (* the real context closes over [t]; the placeholder above only
       exists because the record cannot recursively mention itself
       through a function call *)
    t.ctx <-
      S.make_ctx
        ~d:(fun () -> t.dbound)
        ~global:(fun name ty -> global_hook t name ty)
        ~max_iters;
    let main = Infer.main_ground prog in
    S.with_state state (fun () -> absorb_tree_depth t main);
    t

  let with_state t f = S.with_state t.state f

  let of_source ?max_iters ?engine src =
    make ?max_iters ?engine (Infer.infer_program (Nml.Surface.of_string src))

  let program t = t.prog
  let d t = t.dbound
  let engine t = t.engine

  let widen_all t =
    List.iter
      (fun e ->
        e.value <- S.widen ~d:t.dbound e.tast.Tast.ty e.value;
        S.touch e.source;
        e.dirty <- false;
        if e.evals = 0 then e.evals <- 1)
      t.order;
    S.set_capped t.ctx;
    t.stable <- true

  exception Widened

  (* ---- worklist engine --------------------------------------------------- *)

  (* Condense the recorded instance-level dependency graph into SCCs and
     settle the components dependencies-first: within a component, a
     worklist re-evaluates dirty members until none remain (a change
     re-dirties only its recorded readers); entries outside any cycle are
     already final from the recursive descent and are not touched at all. *)
  let sweep t =
    let entries = Array.of_list (List.rev t.order) in
    let n = Array.length entries in
    Array.iteri (fun i e -> e.idx <- i) entries;
    let succs i =
      List.filter_map
        (fun d -> if d.idx >= 0 && d.idx < n && entries.(d.idx) == d then Some d.idx else None)
        entries.(i).deps
    in
    let comps = Nml.Callgraph.Scc.compute ~n ~succs in
    t.scc_count <- List.length comps;
    t.largest_scc <- List.fold_left (fun a c -> max a (List.length c)) 0 comps;
    List.iter
      (fun comp ->
        let members = List.map (fun i -> entries.(i)) comp in
        let budget = ref (t.max_iters * (List.length members + 1)) in
        let rec drain () =
          match List.find_opt (fun e -> e.dirty) members with
          | None -> ()
          | Some e ->
              if !budget <= 0 then begin
                widen_all t;
                raise Widened
              end;
              decr budget;
              evaluate t e;
              drain ()
        in
        drain ())
      comps

  let stabilize_worklist t =
    let pending () = List.exists (fun e -> e.dirty || e.evals = 0) t.order in
    let widened = ref false in
    let pass = ref 0 in
    (try
       while (not !widened) && pending () do
         if !pass >= t.max_iters then begin
           widen_all t;
           widened := true
         end
         else begin
           incr pass;
           t.passes <- t.passes + 1;
           (* first approximations by recursive descent (covers entries
              demanded outside any evaluation, e.g. by [value]) *)
           let rec fresh () =
             match
               List.find_opt (fun e -> e.evals = 0 && not e.in_progress) t.order
             with
             | Some e ->
                 solve_fresh t e;
                 fresh ()
             | None -> ()
           in
           fresh ();
           (* settle the cyclic remainder bottom-up *)
           sweep t
         end
       done
     with Widened -> widened := true);
    t.stable <- true

  (* ---- legacy round-robin engine ------------------------------------------ *)

  (* The seed solver, retained as the differential-testing baseline: every
     pass drops all application memos and re-evaluates every demanded
     instance, until a full pass changes nothing. *)
  let stabilize_round_robin t =
    let rounds = ref 0 in
    while not t.stable do
      if !rounds >= t.max_iters then widen_all t
      else begin
        incr rounds;
        t.passes <- t.passes + 1;
        (* application memos from the previous pass may reflect lower
           iterates of other entries; drop them so the final pass evaluates
           everything against the final values *)
        S.clear_memo ();
        t.stable <- true;
        (* new demands during the pass reset [stable] and are picked up on
           the next round *)
        let entries = List.rev t.order in
        List.iter
          (fun e ->
            S.record_iteration t.ctx;
            t.evaluated <- t.evaluated + 1;
            e.evals <- e.evals + 1;
            let v = S.transfer t.ctx e.tast in
            if not (S.equal ~d:t.dbound e.value v) then begin
              e.value <- S.join e.value v;
              S.touch e.source;
              t.stable <- false
            end)
          entries
      end
    done

  let stabilize t =
    with_state t @@ fun () ->
    match t.engine with
    | Worklist -> stabilize_worklist t
    | Round_robin -> stabilize_round_robin t

  let value t name inst =
    if not (is_def t name) then
      invalid_arg (Printf.sprintf "Fixpoint.value: unknown definition %s" name);
    with_state t @@ fun () ->
    let e =
      match inst with
      | Some ty -> demand t name ty
      | None ->
          (* materialize the simplest instance, then demand it by its
             ground type so repeated calls share the entry *)
          let tast = Infer.instantiate_def t.prog name None in
          demand t name tast.Tast.ty
    in
    stabilize t;
    e.value

  let instance_ty t name =
    let tast = Infer.instantiate_def t.prog name None in
    tast.Tast.ty

  let eval_expr t tast =
    with_state t @@ fun () ->
    absorb_tree_depth t tast;
    stabilize t;
    let v = ref (S.transfer t.ctx tast) in
    (* evaluation may have demanded new instances (still at bottom under
       the round-robin engine): iterate to a consistent result *)
    while not t.stable do
      stabilize t;
      v := S.transfer t.ctx tast
    done;
    !v

  let main_value t = eval_expr t (Infer.main_ground t.prog)
  let iterations t = S.iterations t.ctx
  let passes t = t.passes
  let evaluations t = t.evaluated
  let instances t = List.rev_map (fun e -> (e.name, e.inst)) t.order
  let capped t = S.capped t.ctx

  let stats t =
    let hits, misses = with_state t S.memo_stats in
    {
      stats_engine = t.engine;
      stats_passes = t.passes;
      stats_iterations = S.iterations t.ctx;
      stats_entries = List.length t.order;
      stats_evaluations = t.evaluated;
      stats_sccs = t.scc_count;
      stats_largest_scc = t.largest_scc;
      stats_cache_hits = max 0 (hits - t.hits0);
      stats_cache_misses = max 0 (misses - t.misses0);
      stats_cache_invalidated = max 0 (with_state t S.invalidations - t.invalidated0);
      stats_dbound = t.dbound;
      stats_capped = S.capped t.ctx;
    }

  let pp_stats = pp_stats
end
