lib/nml/pretty.mli: Ast Format
