(* Tests for the persistent summary cache and the parallel batch driver:
   key stability under re-formatting, transitive invalidation along the
   callgraph, robustness against corrupted stores, schema-version
   invalidation, warm-run identity (zero evaluations, bit-identical
   reports) and differential agreement between the domain pool and the
   sequential per-file baseline on a random corpus. *)

module Skey = Cache.Skey
module Store = Cache.Store
module Summary = Cache.Summary
module Batch = Cache.Batch
module Report = Escape.Report
module Examples = Nml.Examples

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let infer src = Nml.Infer.infer_program (Nml.Surface.of_string src)

let render summaries = Format.asprintf "%a@." Report.pp_program_summaries summaries

let tmp_counter = ref 0

let fresh_dir prefix =
  incr tmp_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "nmlc-%s-%d-%d" prefix (Unix.getpid ()) !tmp_counter)
  in
  Sys.mkdir d 0o755;
  d

let write_file path contents = Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc contents)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_dir prefix f =
  let d = fresh_dir prefix in
  Fun.protect ~finally:(fun () -> try rm_rf d with Sys_error _ -> ()) (fun () -> f d)

(* a three-definition program with a clean dependency shape:
   reader -> callee, loner independent *)
let src_of ~callee_body =
  Examples.wrap
    [
      Printf.sprintf "callee l = %s" callee_body;
      "reader l = callee (cons (car l) l)";
      "loner l = cons 1 l";
    ]
    "reader [1, 2]"

let base_src = src_of ~callee_body:"cons (car l) nil"

let key_units =
  [
    Alcotest.test_case "key-ignores-whitespace-and-comments" `Quick (fun () ->
        let reformatted =
          "-- a comment\nletrec\n  callee l   =   cons (car l) nil;\n\n\
           reader l = callee (cons (car l) l);\n\
           loner l = cons 1 l\n\
           in  reader [1,    2]"
        in
        let k1 = Skey.of_program (infer base_src) in
        let k2 = Skey.of_program (infer reformatted) in
        List.iter
          (fun d ->
            checks d
              (Option.get (Skey.key_of_def k1 d))
              (Option.get (Skey.key_of_def k2 d)))
          [ "callee"; "reader"; "loner" ]);
    Alcotest.test_case "invalidation-is-transitive" `Quick (fun () ->
        let k1 = Skey.of_program (infer base_src) in
        let k2 = Skey.of_program (infer (src_of ~callee_body:"cons 7 nil")) in
        let key keys d = Option.get (Skey.key_of_def keys d) in
        checkb "edited callee re-keys" true (key k1 "callee" <> key k2 "callee");
        checkb "reader re-keys through its callee" true
          (key k1 "reader" <> key k2 "reader");
        checks "unrelated definition keeps its key" (key k1 "loner") (key k2 "loner"));
  ]

let cache_units =
  [
    Alcotest.test_case "warm-run-is-free-and-identical" `Quick (fun () ->
        with_dir "warm" @@ fun dir ->
        let store = Store.create (Filename.concat dir "cache") in
        let prog = infer Examples.partition_sort_program in
        let cold = Summary.analyze ~store prog in
        checkb "cold run evaluates" true (cold.Summary.evaluations > 0);
        checki "cold run misses" 0 cold.Summary.scc_hits;
        let warm = Summary.analyze ~store (infer Examples.partition_sort_program) in
        checki "warm run is free" 0 warm.Summary.evaluations;
        checki "warm run all hits" 0 warm.Summary.scc_misses;
        checks "bit-identical report" (render cold.Summary.summaries)
          (render warm.Summary.summaries));
    Alcotest.test_case "one-edit-respects-the-cone" `Quick (fun () ->
        with_dir "edit" @@ fun dir ->
        let store = Store.create (Filename.concat dir "cache") in
        ignore (Summary.analyze ~store (infer base_src));
        let edited = Summary.analyze ~store (infer (src_of ~callee_body:"cons 7 nil")) in
        (* callee and reader re-solve; loner is served from the store *)
        checki "re-solved sccs" 2 edited.Summary.scc_misses;
        checki "warm sccs" 1 edited.Summary.scc_hits;
        let fresh = Summary.analyze (infer (src_of ~callee_body:"cons 7 nil")) in
        checks "same report as a fresh solve" (render fresh.Summary.summaries)
          (render edited.Summary.summaries);
        checkb "cheaper than the fresh solve" true
          (edited.Summary.evaluations < fresh.Summary.evaluations));
    Alcotest.test_case "corrupted-entries-are-misses" `Quick (fun () ->
        with_dir "corrupt" @@ fun dir ->
        let root = Filename.concat dir "cache" in
        let store = Store.create root in
        let prog = infer base_src in
        let cold = Summary.analyze ~store prog in
        (* truncate or garble every stored entry *)
        Array.iter
          (fun shard ->
            let sdir = Filename.concat root shard in
            if Sys.is_directory sdir then
              Array.iteri
                (fun i f ->
                  let p = Filename.concat sdir f in
                  if i mod 2 = 0 then write_file p "{\"schema\": \"nmlc/summary-cache-v1\", \"key\": \"tru"
                  else write_file p "not json at all")
                (Sys.readdir sdir))
          (Sys.readdir root);
        let again = Summary.analyze ~store (infer base_src) in
        checki "everything misses" 0 again.Summary.scc_hits;
        checkb "re-solved" true (again.Summary.evaluations > 0);
        checks "same report" (render cold.Summary.summaries)
          (render again.Summary.summaries);
        (* and the rewritten entries serve the next run *)
        let warm = Summary.analyze ~store (infer base_src) in
        checki "store healed" 0 warm.Summary.scc_misses);
    Alcotest.test_case "schema-bump-invalidates" `Quick (fun () ->
        with_dir "schema" @@ fun dir ->
        let store = Store.create (Filename.concat dir "cache") in
        let prog = infer Examples.map_pair_program in
        let cold = Summary.analyze ~store prog in
        (* rewrite every entry as a (well-formed) record of a future
           schema version: decoding must refuse it and re-solve *)
        let keys = Skey.of_program prog in
        List.iter
          (fun (key, _members) ->
            match Store.load store ~key with
            | None -> Alcotest.fail "expected a stored record"
            | Some (Nml.Json.Obj fields) ->
                Store.save store ~key
                  (Nml.Json.Obj
                     (List.map
                        (function
                          | "schema", _ -> ("schema", Nml.Json.Str "nmlc/summary-cache-v999")
                          | f -> f)
                        fields))
            | Some _ -> Alcotest.fail "expected an object")
          (Skey.sccs keys);
        let bumped = Summary.analyze ~store (infer Examples.map_pair_program) in
        checki "no hits across versions" 0 bumped.Summary.scc_hits;
        checks "same report" (render cold.Summary.summaries)
          (render bumped.Summary.summaries));
    Alcotest.test_case "codec-roundtrip" `Quick (fun () ->
        let t = Escape.Fixpoint.make (infer Examples.partition_sort_program) in
        List.iter
          (fun s ->
            let s' = Summary.def_of_json (Summary.def_to_json s) in
            checks s.Report.s_name
              (Format.asprintf "%a" Report.pp_def_summary s)
              (Format.asprintf "%a" Report.pp_def_summary s'))
          (Report.summarize_program t));
  ]

(* ---- differential: domain pool vs sequential baseline --------------------- *)

let write_corpus dir sources =
  List.mapi
    (fun i src ->
      let path = Filename.concat dir (Printf.sprintf "p%02d.nml" i) in
      write_file path src;
      path)
    sources

let result_triple (r : Batch.result) = (r.Batch.output, r.Batch.errors, r.Batch.code)

let differential_units =
  [
    Alcotest.test_case "pool-matches-sequential-on-random-corpus" `Slow (fun () ->
        let rand = Random.State.make [| 20260807 |] in
        let sources =
          List.init 40 (fun _ -> QCheck.Gen.generate1 ~rand Gen.gen_any_program)
        in
        with_dir "corpus" @@ fun dir ->
        let files = write_corpus dir sources in
        let sequential = List.map (fun f -> Batch.analyze_file f) files in
        let pooled = Batch.run ~jobs:8 files in
        List.iter2
          (fun s p ->
            let so, se, sc = result_triple s and po, pe, pc = result_triple p in
            checks (s.Batch.path ^ " stdout") so po;
            checks (s.Batch.path ^ " stderr") se pe;
            checki (s.Batch.path ^ " code") sc pc)
          sequential pooled;
        (* and through a shared store, the reports still match *)
        let store = Store.create (Filename.concat dir "cache") in
        let cached = Batch.run ~store ~jobs:8 files in
        List.iter2
          (fun s p ->
            checks (s.Batch.path ^ " cached stdout") s.Batch.output p.Batch.output)
          sequential cached;
        let warm = Batch.run ~store ~jobs:8 files in
        checki "warm corpus is free" 0
          (List.fold_left (fun acc r -> acc + r.Batch.evaluations) 0 warm));
    Alcotest.test_case "error-files-are-isolated" `Quick (fun () ->
        with_dir "errs" @@ fun dir ->
        let good = Filename.concat dir "good.nml" in
        let bad = Filename.concat dir "bad.nml" in
        let missing = Filename.concat dir "missing.nml" in
        write_file good base_src;
        write_file bad "letrec f l = cons x nil in f [1]";
        let rs = Batch.run ~jobs:2 [ good; bad; missing ] in
        checki "three results" 3 (List.length rs);
        (match rs with
        | [ g; b; m ] ->
            checki "good is clean" 0 g.Batch.code;
            checki "bad is a finding" 1 b.Batch.code;
            checkb "bad has a diagnostic" true (b.Batch.errors <> "");
            checki "missing is a user error" 1 m.Batch.code
        | _ -> Alcotest.fail "unexpected result shape");
        checki "merged exit code" 1 (Batch.exit_code rs));
  ]

let () =
  Alcotest.run "batch"
    [
      ("keys", key_units); ("cache", cache_units); ("differential", differential_units);
    ]
