lib/optimize/stackalloc.ml: Annotate List
