(** Precedence-aware pretty printer for {!Ast} expressions.

    The output is valid [nml] concrete syntax: for every expression [e],
    [Parser.parse (to_string e)] is structurally {!Ast.equal} to [e]
    (locations excepted).  Binary primitive applications are rendered in
    infix form, saturated [cons] chains ending in [nil] as list literals,
    and nested lambdas as [fun x1 ... xn -> e]. *)

val pp : Format.formatter -> Ast.expr -> unit
val to_string : Ast.expr -> string

val pp_flat : Format.formatter -> Ast.expr -> unit
(** Like {!pp} but never renders list-literal sugar, so every [cons] cell
    of a literal is visible as a [::] application. *)
