module Ast = Nml.Ast
module Env = Map.Make (String)

type word =
  | Wint of int
  | Wbool of bool
  | Wnil
  | Wptr of int
  | Wpair of int
  | Wleaf
  | Wtree of int  (** address of a tree node: car=left, cdr=right, lbl=label *)
  | Wclos of closure
  | Wprim of Ast.prim * word list
  | Wcons_at of Ir.alloc * word list
  | Wnode_at of Ir.alloc * word list
  | Wdcons of word list
  | Wdnode of word list

and closure = { param : string; body : Ir.expr; cenv : env; mutable cmark : bool }
and env = binding Env.t
and binding = Ready of word | Slot of word option ref

type cell = {
  mutable car : word;
  mutable cdr : word;
  mutable lbl : word;  (** tree-node label; [Wnil] for cons/pair cells *)
  mutable marked : bool;
  mutable free : bool;
  mutable arena : int;  (** arena id, or -1 for the GC heap *)
}

type arena = { kind : Ir.arena_kind; dyn_id : int; mutable acells : int list }

type chaos = {
  gc_period : int;
      (** >0: force a collection at pseudo-random allocation points, on
          average one every [gc_period] allocations; 0 disables *)
  poison : bool;
      (** scribble over freed cells and fail any read through a dangling
          pointer, so an unsound escape verdict crashes deterministically *)
  chaos_seed : int;  (** seed of the deterministic fault-injection PRNG *)
}

type t = {
  mutable cells : cell array;
  mutable next : int;  (** bump pointer over never-used cells *)
  mutable free_list : int list;
  mutable live : int;
  grow : bool;
  check_arenas : bool;
  stats : Stats.t;
  mutable shadow : word list;  (** explicit GC root stack *)
  mutable env_stack : env list;  (** environments of active frames *)
  arena_stacks : (int, arena list) Hashtbl.t;  (** static id -> dynamic arenas *)
  mutable next_dyn_arena : int;
  mutable marked_closures : closure list;
  mutable fuel : int;  (** -1 = unlimited *)
  chaos : chaos;
  mutable rng : int;  (** fault-injection PRNG state *)
}

exception Error of string
exception Out_of_memory
exception Out_of_fuel

let error fmt = Format.kasprintf (fun msg -> raise (Error msg)) fmt

let fresh_cell () =
  { car = Wnil; cdr = Wnil; lbl = Wnil; marked = false; free = true; arena = -1 }

let no_chaos = { gc_period = 0; poison = false; chaos_seed = 0 }

let create ?(heap_size = 4096) ?(grow = true) ?(check_arenas = false) ?fuel
    ?(chaos = no_chaos) () =
  let stats = Stats.create () in
  stats.Stats.heap_capacity <- heap_size;
  {
    cells = Array.init (max 1 heap_size) (fun _ -> fresh_cell ());
    next = 0;
    free_list = [];
    live = 0;
    grow;
    check_arenas;
    stats;
    shadow = [];
    env_stack = [];
    arena_stacks = Hashtbl.create 8;
    next_dyn_arena = 0;
    marked_closures = [];
    fuel = (match fuel with Some f -> f | None -> -1);
    chaos;
    rng = chaos.chaos_seed lxor 0x2545F4914F6CDD1D;
  }

let stats t = t.stats
let live_cells t = t.live

let tick m =
  m.stats.Stats.steps <- m.stats.Stats.steps + 1;
  if m.fuel = 0 then raise Out_of_fuel;
  if m.fuel > 0 then m.fuel <- m.fuel - 1

let push m w = m.shadow <- w :: m.shadow
let pop m = m.shadow <- List.tl m.shadow

(* ---- fault injection ---------------------------------------------------- *)

let poison_word = Wint 0x7EADBEEF
(** scribbled into freed cells under [chaos.poison]: a dangling read that
    slips past the barriers yields this recognizable junk instead of a
    plausible [Wnil] *)

(* the 48-bit LCG of java.util.Random; the low bits are weak, so draws
   use the high 32 *)
let chaos_draw m =
  m.rng <- ((m.rng * 0x5DEECE66D) + 0xB) land 0xFFFFFFFFFFFF;
  m.rng lsr 16

(* scrub a cell as it is freed; poisoning makes any later read through a
   stale pointer junk instead of a believable empty cell *)
let scrub m c =
  if m.chaos.poison then begin
    c.car <- poison_word;
    c.cdr <- poison_word;
    c.lbl <- poison_word;
    m.stats.Stats.poisoned <- m.stats.Stats.poisoned + 1
  end
  else begin
    c.car <- Wnil;
    c.cdr <- Wnil;
    c.lbl <- Wnil
  end

(* a cell read through [car]/[cdr]/[fst]/[snd]/[label]/[left]/[right];
   under poisoning a read of a freed cell is a deterministic crash *)
let cell_read m what a =
  let c = m.cells.(a) in
  if m.chaos.poison && c.free then
    error "chaos poison: %s reads cell %d after it was freed (use after free)" what a;
  c

(* ---- garbage collection ------------------------------------------------ *)

let rec mark_word m = function
  | Wint _ | Wbool _ | Wnil | Wleaf -> ()
  | Wptr a | Wpair a | Wtree a ->
      let c = m.cells.(a) in
      if m.chaos.poison && c.free then
        error "chaos poison: the collector reached freed cell %d from a live root" a;
      if not c.marked then begin
        c.marked <- true;
        m.stats.Stats.marked <- m.stats.Stats.marked + 1;
        mark_word m c.car;
        mark_word m c.cdr;
        mark_word m c.lbl
      end
  | Wclos c ->
      if not c.cmark then begin
        c.cmark <- true;
        m.marked_closures <- c :: m.marked_closures;
        mark_env m c.cenv
      end
  | Wprim (_, args) | Wcons_at (_, args) | Wnode_at (_, args) | Wdcons args
  | Wdnode args ->
      List.iter (mark_word m) args

and mark_env m env =
  Env.iter
    (fun _ b ->
      match b with
      | Ready w -> mark_word m w
      | Slot { contents = Some w } -> mark_word m w
      | Slot { contents = None } -> ())
    env

let collect m =
  m.stats.Stats.gc_runs <- m.stats.Stats.gc_runs + 1;
  List.iter (mark_word m) m.shadow;
  List.iter (mark_env m) m.env_stack;
  (* sweep the used prefix; arena cells are not the collector's to free *)
  for a = 0 to m.next - 1 do
    let c = m.cells.(a) in
    if c.marked then c.marked <- false
    else if (not c.free) && c.arena < 0 then begin
      c.free <- true;
      scrub m c;
      m.free_list <- a :: m.free_list;
      m.live <- m.live - 1;
      m.stats.Stats.swept <- m.stats.Stats.swept + 1
    end
  done;
  List.iter (fun c -> c.cmark <- false) m.marked_closures;
  m.marked_closures <- []

let grow_store m =
  let old = m.cells in
  let cap = Array.length old in
  let bigger = Array.init (2 * cap) (fun i -> if i < cap then old.(i) else fresh_cell ()) in
  m.cells <- bigger;
  m.stats.Stats.heap_capacity <- 2 * cap

(* ---- allocation --------------------------------------------------------- *)

let current_arena m = function
  | Ir.Heap -> None
  | Ir.Arena sid -> (
      match Hashtbl.find_opt m.arena_stacks sid with
      | Some (a :: _) -> Some a
      | Some [] | None -> error "cons targets arena %d, but no such arena is open" sid)

let take_addr m ~for_heap =
  match m.free_list with
  | a :: rest ->
      m.free_list <- rest;
      Some a
  | [] ->
      if m.next < Array.length m.cells then begin
        let a = m.next in
        m.next <- m.next + 1;
        Some a
      end
      else if for_heap then None (* caller collects, then retries *)
      else begin
        (* arena allocation models stack / local-heap storage: it never
           triggers a collection, the store just grows *)
        grow_store m;
        let a = m.next in
        m.next <- m.next + 1;
        Some a
      end

let alloc_cell m target hd tl =
  (* gc chaos: force a collection at pseudo-random allocation points, so
     any value the evaluator failed to root is swept out from under it *)
  if m.chaos.gc_period > 0 && chaos_draw m mod m.chaos.gc_period = 0 then begin
    m.stats.Stats.chaos_gcs <- m.stats.Stats.chaos_gcs + 1;
    collect m
  end;
  let arena = current_arena m target in
  let addr =
    match take_addr m ~for_heap:(arena = None) with
    | Some a -> a
    | None -> (
        (* heap allocation with an exhausted store: collect, then retry *)
        collect m;
        match take_addr m ~for_heap:true with
        | Some a -> a
        | None ->
            if m.grow then begin
              grow_store m;
              let a = m.next in
              m.next <- m.next + 1;
              a
            end
            else raise Out_of_memory)
  in
  let c = m.cells.(addr) in
  assert c.free;
  c.free <- false;
  c.car <- hd;
  c.cdr <- tl;
  (match arena with
  | None ->
      c.arena <- -1;
      m.stats.Stats.heap_allocs <- m.stats.Stats.heap_allocs + 1
  | Some a ->
      c.arena <- a.dyn_id;
      a.acells <- addr :: a.acells;
      m.stats.Stats.arena_allocs <- m.stats.Stats.arena_allocs + 1);
  m.live <- m.live + 1;
  if m.live > m.stats.Stats.peak_live then m.stats.Stats.peak_live <- m.live;
  Wptr addr

(* ---- primitives ---------------------------------------------------------- *)

let type_name = function
  | Wint _ -> "int"
  | Wbool _ -> "bool"
  | Wnil | Wptr _ -> "list"
  | Wpair _ -> "pair"
  | Wleaf | Wtree _ -> "tree"
  | Wclos _ | Wprim _ | Wcons_at _ | Wnode_at _ | Wdcons _ | Wdnode _ -> "function"

let as_int = function Wint n -> n | w -> error "expected an int, got a %s" (type_name w)
let as_bool = function Wbool b -> b | w -> error "expected a bool, got a %s" (type_name w)

let delta m p args =
  match (p, args) with
  | Ast.Add, [ a; b ] -> Wint (as_int a + as_int b)
  | Ast.Sub, [ a; b ] -> Wint (as_int a - as_int b)
  | Ast.Mul, [ a; b ] -> Wint (as_int a * as_int b)
  | Ast.Div, [ a; b ] ->
      let d = as_int b in
      if d = 0 then error "division by zero" else Wint (as_int a / d)
  | Ast.Mod, [ a; b ] ->
      let d = as_int b in
      if d = 0 then error "modulo by zero" else Wint (as_int a mod d)
  | Ast.Eq, [ a; b ] -> Wbool (as_int a = as_int b)
  | Ast.Ne, [ a; b ] -> Wbool (as_int a <> as_int b)
  | Ast.Lt, [ a; b ] -> Wbool (as_int a < as_int b)
  | Ast.Le, [ a; b ] -> Wbool (as_int a <= as_int b)
  | Ast.Gt, [ a; b ] -> Wbool (as_int a > as_int b)
  | Ast.Ge, [ a; b ] -> Wbool (as_int a >= as_int b)
  | Ast.And, [ a; b ] -> Wbool (as_bool a && as_bool b)
  | Ast.Or, [ a; b ] -> Wbool (as_bool a || as_bool b)
  | Ast.Not, [ a ] -> Wbool (not (as_bool a))
  | Ast.Car, [ Wptr a ] -> (cell_read m "car" a).car
  | Ast.Car, [ Wnil ] -> error "car of nil"
  | Ast.Car, [ w ] -> error "car of a %s" (type_name w)
  | Ast.Cdr, [ Wptr a ] -> (cell_read m "cdr" a).cdr
  | Ast.Cdr, [ Wnil ] -> error "cdr of nil"
  | Ast.Cdr, [ w ] -> error "cdr of a %s" (type_name w)
  | Ast.Null, [ Wnil ] -> Wbool true
  | Ast.Null, [ Wptr _ ] -> Wbool false
  | Ast.Null, [ w ] -> error "null of a %s" (type_name w)
  | Ast.Fst, [ Wpair a ] -> (cell_read m "fst" a).car
  | Ast.Fst, [ w ] -> error "fst of a %s" (type_name w)
  | Ast.Snd, [ Wpair a ] -> (cell_read m "snd" a).cdr
  | Ast.Snd, [ w ] -> error "snd of a %s" (type_name w)
  | Ast.Isleaf, [ Wleaf ] -> Wbool true
  | Ast.Isleaf, [ Wtree _ ] -> Wbool false
  | Ast.Isleaf, [ w ] -> error "isleaf of a %s" (type_name w)
  | Ast.Label, [ Wtree a ] -> (cell_read m "label" a).lbl
  | Ast.Label, [ Wleaf ] -> error "label of leaf"
  | Ast.Label, [ w ] -> error "label of a %s" (type_name w)
  | Ast.Left, [ Wtree a ] -> (cell_read m "left" a).car
  | Ast.Left, [ Wleaf ] -> error "left of leaf"
  | Ast.Left, [ w ] -> error "left of a %s" (type_name w)
  | Ast.Right, [ Wtree a ] -> (cell_read m "right" a).cdr
  | Ast.Right, [ Wleaf ] -> error "right of leaf"
  | Ast.Right, [ w ] -> error "right of a %s" (type_name w)
  | (Ast.Cons | Ast.Pair | Ast.Node), _ -> assert false (* handled by the allocator *)
  | _, _ -> error "primitive %s applied to %d arguments" (Ast.prim_name p) (List.length args)

let do_dcons m p hd tl =
  match p with
  | Wptr a ->
      let c = m.cells.(a) in
      if c.free then error "DCONS on a freed cell";
      c.car <- hd;
      c.cdr <- tl;
      m.stats.Stats.dcons_reuses <- m.stats.Stats.dcons_reuses + 1;
      Wptr a
  | Wnil -> error "DCONS on nil (no cell to reuse)"
  | w -> error "DCONS on a %s (no cell to reuse)" (type_name w)

let do_dnode m p l x r =
  match p with
  | Wtree a ->
      let c = m.cells.(a) in
      if c.free then error "DNODE on a freed cell";
      c.car <- l;
      c.lbl <- x;
      c.cdr <- r;
      m.stats.Stats.dcons_reuses <- m.stats.Stats.dcons_reuses + 1;
      Wtree a
  | Wleaf -> error "DNODE on leaf (no cell to reuse)"
  | w -> error "DNODE on a %s (no cell to reuse)" (type_name w)

(* ---- arena safety check --------------------------------------------------- *)

let reachable_into_arena m roots sid =
  let seen = Hashtbl.create 256 in
  let seen_clos = ref [] in
  let hit = ref false in
  let rec walk = function
    | Wint _ | Wbool _ | Wnil | Wleaf -> ()
    | Wptr a | Wpair a | Wtree a ->
        if not (Hashtbl.mem seen a) then begin
          Hashtbl.add seen a ();
          let c = m.cells.(a) in
          if c.arena = sid then hit := true;
          walk c.car;
          walk c.cdr;
          walk c.lbl
        end
    | Wclos c ->
        if not (List.memq c !seen_clos) then begin
          seen_clos := c :: !seen_clos;
          Env.iter
            (fun _ b ->
              match b with
              | Ready w -> walk w
              | Slot { contents = Some w } -> walk w
              | Slot { contents = None } -> ())
            c.cenv
        end
    | Wprim (_, args) | Wcons_at (_, args) | Wnode_at (_, args) | Wdcons args
    | Wdnode args ->
        List.iter walk args
  in
  List.iter walk roots;
  !hit

(* ---- evaluation ------------------------------------------------------------ *)

let lookup env x =
  match Env.find_opt x env with
  | Some (Ready w) -> w
  | Some (Slot { contents = Some w }) -> w
  | Some (Slot { contents = None }) ->
      error "letrec binding %s is used before its definition is evaluated" x
  | None -> error "unbound identifier %s at run time" x

let rec eval_ir m env (e : Ir.expr) : word =
  tick m;
  match e with
  | Ir.Const (Ast.Cint n) -> Wint n
  | Ir.Const (Ast.Cbool b) -> Wbool b
  | Ir.Const Ast.Cnil -> Wnil
  | Ir.Const Ast.Cleaf -> Wleaf
  | Ir.Prim p -> Wprim (p, [])
  | Ir.ConsAt a -> Wcons_at (a, [])
  | Ir.NodeAt a -> Wnode_at (a, [])
  | Ir.Dcons -> Wdcons []
  | Ir.Dnode -> Wdnode []
  | Ir.Var x -> lookup env x
  | Ir.Lam (x, b) -> Wclos { param = x; body = b; cenv = env; cmark = false }
  | Ir.App (f, a) ->
      let vf = eval_ir m env f in
      push m vf;
      let va = eval_ir m env a in
      pop m;
      apply m vf va
  | Ir.If (c, t, f) -> if as_bool (eval_ir m env c) then eval_ir m env t else eval_ir m env f
  | Ir.Letrec (bs, body) ->
      let slots = List.map (fun (x, _) -> (x, ref None)) bs in
      let env' =
        List.fold_left (fun env (x, slot) -> Env.add x (Slot slot) env) env slots
      in
      m.env_stack <- env' :: m.env_stack;
      List.iter2 (fun (_, rhs) (_, slot) -> slot := Some (eval_ir m env' rhs)) bs slots;
      let v = eval_ir m env' body in
      m.env_stack <- List.tl m.env_stack;
      v
  | Ir.WithArena (kind, sid, body) ->
      let dyn_id = m.next_dyn_arena in
      m.next_dyn_arena <- m.next_dyn_arena + 1;
      let a = { kind; dyn_id; acells = [] } in
      let stack = Option.value ~default:[] (Hashtbl.find_opt m.arena_stacks sid) in
      Hashtbl.replace m.arena_stacks sid (a :: stack);
      let v = eval_ir m env body in
      Hashtbl.replace m.arena_stacks sid stack;
      if m.check_arenas then begin
        let roots = (v :: m.shadow) @ List.concat_map env_words m.env_stack in
        if reachable_into_arena m roots a.dyn_id then
          error "arena safety violation: a cell of arena %d escapes its scope" sid
      end;
      List.iter
        (fun addr ->
          let c = m.cells.(addr) in
          if not c.free then begin
            c.free <- true;
            c.arena <- -1;
            scrub m c;
            m.free_list <- addr :: m.free_list;
            m.live <- m.live - 1;
            m.stats.Stats.arena_freed <- m.stats.Stats.arena_freed + 1
          end)
        a.acells;
      v

and env_words env =
  Env.fold
    (fun _ b acc ->
      match b with
      | Ready w -> w :: acc
      | Slot { contents = Some w } -> w :: acc
      | Slot { contents = None } -> acc)
    env []

and apply m vf va =
  tick m;
  push m vf;
  push m va;
  let result =
    match vf with
    | Wclos { param; body; cenv; _ } ->
        let env' = Env.add param (Ready va) cenv in
        m.env_stack <- env' :: m.env_stack;
        let r = eval_ir m env' body in
        m.env_stack <- List.tl m.env_stack;
        r
    | Wprim (Ast.Cons, [ hd ]) -> alloc_cell m Ir.Heap hd va
    | Wprim (Ast.Pair, [ a ]) -> (
        match alloc_cell m Ir.Heap a va with
        | Wptr addr -> Wpair addr
        | _ -> assert false)
    | Wprim (Ast.Node, [ l; x ]) -> (
        (match (l, va) with
        | (Wleaf | Wtree _), (Wleaf | Wtree _) -> ()
        | _ -> error "node: children must be trees");
        match alloc_cell m Ir.Heap l va with
        | Wptr addr ->
            m.cells.(addr).lbl <- x;
            Wtree addr
        | _ -> assert false)
    | Wprim (p, collected) ->
        let args = collected @ [ va ] in
        if List.length args = Ast.prim_arity p then delta m p args else Wprim (p, args)
    | Wcons_at (target, []) -> Wcons_at (target, [ va ])
    | Wcons_at (target, [ hd ]) -> alloc_cell m target hd va
    | Wcons_at (_, _) -> error "annotated cons applied to too many arguments"
    | Wnode_at (target, ([] | [ _ ] as args)) -> Wnode_at (target, args @ [ va ])
    | Wnode_at (target, [ l; x ]) -> (
        (match (l, va) with
        | (Wleaf | Wtree _), (Wleaf | Wtree _) -> ()
        | _ -> error "node: children must be trees");
        match alloc_cell m target l va with
        | Wptr addr ->
            m.cells.(addr).lbl <- x;
            Wtree addr
        | _ -> assert false)
    | Wnode_at (_, _) -> error "annotated node applied to too many arguments"
    | Wdcons [ p; hd ] -> do_dcons m p hd va
    | Wdcons args when List.length args < 2 -> Wdcons (args @ [ va ])
    | Wdcons _ -> error "DCONS applied to too many arguments"
    | Wdnode [ p; l; x ] -> do_dnode m p l x va
    | Wdnode args when List.length args < 3 -> Wdnode (args @ [ va ])
    | Wdnode _ -> error "DNODE applied to too many arguments"
    | w -> error "cannot apply a %s as a function" (type_name w)
  in
  pop m;
  pop m;
  result

let eval m e = eval_ir m Env.empty e
let run m p = eval m (Ir.of_program p)

let read_value m w =
  let budget = ref 1_000_000 in
  let rec go w =
    decr budget;
    if !budget <= 0 then error "read_value: structure too large or cyclic";
    match w with
    | Wint n -> Nml.Eval.Vint n
    | Wbool b -> Nml.Eval.Vbool b
    | Wnil -> Nml.Eval.Vnil
    | Wptr a ->
        let c = m.cells.(a) in
        if c.free then error "read_value: dangling pointer to a freed cell";
        Nml.Eval.Vcons (go c.car, go c.cdr)
    | Wpair a ->
        let c = m.cells.(a) in
        if c.free then error "read_value: dangling pointer to a freed cell";
        Nml.Eval.Vpair (go c.car, go c.cdr)
    | Wleaf -> Nml.Eval.Vleaf
    | Wtree a ->
        let c = m.cells.(a) in
        if c.free then error "read_value: dangling pointer to a freed cell";
        Nml.Eval.Vnode (go c.car, go c.lbl, go c.cdr)
    | Wclos _ | Wprim _ | Wcons_at _ | Wnode_at _ | Wdcons _ | Wdnode _ ->
        error "read_value: result is a function"
  in
  go w

let rec pp_word m ppf = function
  | Wint n -> Format.pp_print_int ppf n
  | Wbool b -> Format.pp_print_bool ppf b
  | Wnil -> Format.pp_print_string ppf "[]"
  | Wptr a ->
      let c = m.cells.(a) in
      Format.fprintf ppf "@[<hov 1>(%a ::@ %a)@]" (pp_word m) c.car (pp_word m) c.cdr
  | Wpair a ->
      let c = m.cells.(a) in
      Format.fprintf ppf "@[<hov 1>(%a,@ %a)@]" (pp_word m) c.car (pp_word m) c.cdr
  | Wleaf -> Format.pp_print_string ppf "leaf"
  | Wtree a ->
      let c = m.cells.(a) in
      Format.fprintf ppf "@[<hov 1>(node %a %a %a)@]" (pp_word m) c.car (pp_word m) c.lbl
        (pp_word m) c.cdr
  | Wclos { param; _ } -> Format.fprintf ppf "<fun %s>" param
  | Wprim (p, args) -> Format.fprintf ppf "<prim %s/%d>" (Ast.prim_name p) (List.length args)
  | Wcons_at (_, args) -> Format.fprintf ppf "<cons@/%d>" (List.length args)
  | Wnode_at (_, args) -> Format.fprintf ppf "<node@/%d>" (List.length args)
  | Wdcons args -> Format.fprintf ppf "<dcons/%d>" (List.length args)
  | Wdnode args -> Format.fprintf ppf "<dnode/%d>" (List.length args)
