(** The analysis-agnostic cached analysis: per-SCC content-addressed
    persistence for any registered Spec, parameterized by the analysis'
    summary codec and solve session.  [Summary] instantiates it for the
    escape analysis; [Analyses.Registry] for every other Spec. *)

type 'summary session = {
  summarize : string -> 'summary;
      (** settled summary of one definition, by name *)
  evaluations : unit -> int;  (** solver entry evaluations so far *)
}

type 'summary spec = {
  analysis : string;  (** registry name; also the [Skey] namespace *)
  def_name : 'summary -> string;
  to_json : 'summary -> Nml.Json.t;
  of_json : Nml.Json.t -> 'summary;
      (** may raise; any exception makes the record a miss *)
  session : Nml.Infer.program -> 'summary session;
      (** created lazily, on the first SCC miss *)
}

type 'summary outcome = {
  summaries : 'summary list;  (** one per definition, program order *)
  evaluations : int;  (** solver entry evaluations actually performed *)
  scc_hits : int;
  scc_misses : int;
}

val record_to_json : 'summary spec -> key:string -> 'summary list -> Nml.Json.t

val record_of_json :
  'summary spec ->
  key:string ->
  members:string list ->
  Nml.Json.t ->
  'summary list option
(** [None] on any mismatch — schema, analysis stamp, key, member set, or
    a decoder exception: the caller treats it as a miss. *)

val analyze : 'summary spec -> ?store:Store.t -> Nml.Infer.program -> 'summary outcome
(** Without [store], one cold session summarizes every definition.  With
    it, warm SCCs are decoded from their stored records (self-healing a
    corrupted in-memory tier from disk) and only the missing SCCs'
    members are solved; a fully warm program performs zero entry
    evaluations. *)
