(** Storage statistics collected by {!Machine}.

    The paper's optimizations do not change {e what} a program computes,
    only {e where} cons cells live and how they are reclaimed; these
    counters are the quantities its claims are about.

    The generational heap (PR7) adds pause-distribution samples and
    promotion/pretenuring counters.  They are collected unconditionally
    but only rendered by {!to_row} when {!field-generational} is set, so
    the output of legacy runs is byte-for-byte what it always was. *)

type t = {
  mutable heap_allocs : int;  (** cells allocated from the GC heap *)
  mutable arena_allocs : int;  (** cells allocated in regions/blocks *)
  mutable dcons_reuses : int;  (** cells recycled in place by [DCONS]/[DNODE] *)
  mutable gc_runs : int;
  mutable marked : int;  (** total cells marked over all collections *)
  mutable swept : int;  (** total cells reclaimed by sweeping *)
  mutable arena_freed : int;  (** cells reclaimed wholesale at arena exit *)
  mutable heap_capacity : int;  (** final size of the cell store *)
  mutable peak_live : int;  (** maximum simultaneously live cells *)
  mutable steps : int;  (** evaluation steps *)
  mutable chaos_gcs : int;  (** collections forced by fault injection *)
  mutable poisoned : int;  (** freed cells scribbled over by poisoning *)
  (* -- generational heap ------------------------------------------- *)
  mutable generational : bool;
      (** set by {!Machine} for generational runs; gates the extra
          {!to_row} rows so legacy output never changes *)
  mutable minor_gcs : int;  (** nursery collections *)
  mutable major_gcs : int;  (** full-heap collections *)
  mutable promoted : int;  (** cells promoted nursery -> old *)
  mutable pretenured : int;  (** cells allocated directly old, on a hint *)
  mutable remembered : int;  (** write-barrier hits (remembered-set adds) *)
  mutable regions_reclaimed : int;  (** arenas reset wholesale at exit *)
  mutable hint_sites : int;
      (** letrec bindings tagged with an advisory dead-spine hint
          ({!Heap.hinted_dead_spine}) when their closure was created *)
  mutable hints_accepted : int;
      (** calls through a hinted binding that actually passed a list
          spine in a hinted-dead parameter position *)
  (* -- pause distribution ------------------------------------------ *)
  mutable pause_ns : float array;  (** per-collection wall time, ns *)
  mutable pause_cells : int array;  (** per-collection cells touched *)
  mutable pauses : int;  (** samples recorded in the two buffers *)
}

val create : unit -> t
val reset : t -> unit

val total_allocs : t -> int
(** [heap_allocs + arena_allocs] (a [DCONS] is not an allocation). *)

val gc_work : t -> int
(** [marked + swept]: cells the collector had to touch. *)

val record_pause : t -> cells:int -> ns:float -> unit
(** Appends one collection-pause sample.  [cells] is the deterministic
    pause proxy (cells marked + swept + remembered-set entries scanned);
    [ns] is wall-clock, kept separate so CI gates never compare it. *)

val pause_percentiles_cells : t -> (int * int * int) option
(** [(p50, p95, max)] over the deterministic cells-touched samples, or
    [None] when no collection ever ran. *)

val pause_percentiles_ns : t -> (float * float * float) option
(** [(p50, p95, max)] over the wall-clock samples, in nanoseconds. *)

val pp : Format.formatter -> t -> unit

val to_row : t -> (string * int) list
(** Labelled counters, for the bench tables.  Chaos counters appear only
    when fault injection fired; generational counters (including the
    cells-touched pause percentiles) only when {!field-generational} is
    set — plain legacy runs print exactly the historical rows. *)

(** {2 Process-global telemetry}

    Every {!Machine.eval} folds the counters it accumulated into a
    process-wide aggregate, so long-lived processes (the [nmlc serve]
    daemon) can report heap activity across all the machines they ever
    ran.  Thread-safe; counters only grow. *)

val global_add : before:t -> after:t -> unit
(** Adds the field-wise difference [after - before] to the global
    aggregate (the two snapshots bracket one evaluation). *)

val snapshot : t -> t
(** A copy of the integer counters (shares the sample buffers; only
    meant as the [before] argument of {!global_add}). *)

val global_row : unit -> (string * int) list
(** The aggregate, as labelled counters: evaluations served plus the
    allocation/collection totals across the whole process. *)
