lib/optimize/reuse.ml: Escape List Liveness Nml Option Runtime Shape String
