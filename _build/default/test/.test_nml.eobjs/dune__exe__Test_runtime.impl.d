test/test_runtime.ml: Alcotest Gen List Nml QCheck QCheck_alcotest Runtime
