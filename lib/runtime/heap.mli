(** The escape-guided cell store underneath {!Machine}.

    This layer owns storage and reclamation {e policy}; it is
    word-polymorphic because only {!Machine} knows what a word means.
    Traversal (marking) stays in the machine, which drives collections
    through the sweep entry points here.

    Two policies:

    - {e legacy}: one flat store, an intrusive free list, full mark-sweep
      — byte-for-byte the behavior (and the {!Stats} counters) of the
      original machine, just without an [int list] allocation per
      freed/reused cell;
    - {e generational}: unannotated allocations go to a nursery threaded
      through the cells' intrusive [link] field.  A minor collection
      marks from the roots {e stopping at old cells}, sweeps only the
      nursery chain, and promotes the survivors in place (a cell's
      generation is a bit, so "copying" is a flip — addresses are
      scattered immutably through OCaml-side environments and cannot
      move).  Old-to-young edges are caught by a write barrier into a
      transient remembered set; cells holding function-like words (whose
      captured environments can grow young references after the fact,
      e.g. letrec slots) go to a {e sticky} remembered set scanned by
      every minor collection.

    Arena (region/block) cells are bump-allocated onto a per-arena
    intrusive chain and freed wholesale — pointer-reset reclamation, no
    traversal — exactly as before; under the generational policy they
    count as old so that minor pause times never scale with the size of
    region-resident data. *)

type policy = Legacy | Generational

type config = {
  policy : policy;
  regions : bool;
      (** honor arena annotations; with [false] every annotated
          allocation falls back to the GC heap (coverage configuration
          for the chaos harness) *)
  pretenure : bool;
      (** honor [Ir.Pretenured] hints (generational policy only) *)
  nursery : int;  (** minor-collection threshold, in young cells *)
  liveness_hints : (string * int list) list;
      (** [(definition, 1-based parameter indices)] whose argument spine
          the callee provably never needs past the head — the
          spine-liveness analysis' [Dead]/[Head_only] verdicts
          ({!Framework.Spinelive.dead_spine_params}).  Advisory: the
          policies reclaim identically with or without them (the stats
          rows never change); a collector may use them to avoid
          scavenging provably dead spines. *)
}

val legacy : config
(** The seed machine: flat heap, full mark-sweep, regions on. *)

val generational : config
(** Nursery of 1024 cells, regions on, pretenuring on. *)

val config_name : config -> string
(** A short stable label, for harness stage names and bench rows.
    Deliberately independent of [liveness_hints]. *)

val hinted_dead_spine : config -> fname:string -> arg:int -> bool
(** Whether the hints mark the [arg]-th (1-based) parameter of [fname]
    as a dead spine. *)

type 'w cell = {
  mutable car : 'w;
  mutable cdr : 'w;
  mutable lbl : 'w;
  mutable marked : bool;
  mutable free : bool;
  mutable arena : int;  (** dynamic arena id, or -1 for the GC heap *)
  mutable old : bool;  (** generation bit; legacy cells are born old *)
  mutable link : int;
      (** intrusive chain next (-1 ends): the free list when [free], the
          nursery chain when young, the arena chain when [arena >= 0] *)
}

type 'w arena = {
  kind : Ir.arena_kind;
  dyn_id : int;
  mutable ahead : int;  (** head of the arena's intrusive cell chain *)
  mutable acount : int;
}

(** Word shapes the policy layer must distinguish, as told by the
    machine's [kind_of]: *)
type kind =
  | Scalar  (** no references *)
  | Ptr of int  (** a direct cell reference *)
  | Funval
      (** closure-like: may capture cell references, and those captures
          can change after the write (letrec slots) — sticky-remembered *)

type 'w t

val create :
  ?heap_size:int ->
  config:config ->
  nil:'w ->
  scrub:('w cell -> unit) ->
  kind_of:('w -> kind) ->
  stats:Stats.t ->
  unit ->
  'w t

val get : 'w t -> int -> 'w cell
val capacity : 'w t -> int
val live : 'w t -> int
val config : 'w t -> config

val is_generational : 'w t -> bool
(** [config.policy = Generational]. *)

val young_count : 'w t -> int
(** Cells currently on the nursery chain (0 under legacy policy). *)

val remembered_size : 'w t -> int
(** Transient + sticky remembered-set entries. *)

(** {2 Allocation} *)

type 'w where =
  | Young  (** the nursery (legacy policy: the flat heap) *)
  | Old  (** pretenured straight into the old generation *)
  | In_arena of 'w arena

val take_free : 'w t -> int option
(** Pop the intrusive free list. *)

val bump : 'w t -> int option
(** Advance the bump pointer, if the store has never-used cells left. *)

val grow_store : 'w t -> unit
(** Double the store (updates [Stats.heap_capacity]). *)

val register : 'w t -> int -> 'w where -> unit
(** Claim address for a new cell: clears [free], sets generation and
    arena id, threads the right intrusive chain, and bumps the
    allocation counters ([heap_allocs]/[arena_allocs], [pretenured],
    [peak_live]).  The caller has already written [car]/[cdr]. *)

(** {2 Write barrier} *)

val barrier : 'w t -> int -> unit
(** Record address in the remembered set if its cell is old (or
    arena-resident) and now holds young or function-like references.
    Call after initializing or mutating a non-young cell.  No-op under
    the legacy policy. *)

val iter_remembered : 'w t -> (int -> unit) -> unit
val clear_transient : 'w t -> unit

(** {2 Reclamation} *)

val free_cell : 'w t -> int -> reason:[ `Swept | `Arena ] -> unit
(** Scrub, push on the free list, maintain [live] and the
    [swept]/[arena_freed] counters.  Does not unlink from the nursery
    chain — only the sweeps below free young cells. *)

val sweep_nursery : 'w t -> unit
(** Minor sweep: walk the nursery chain only; free unmarked cells,
    promote marked ones in place (counting [promoted], and moving cells
    with function-like children to the sticky remembered set).  Ends
    with an empty nursery and a cleared transient remembered set. *)

val sweep_all : 'w t -> unit
(** Major sweep: walk the whole used prefix; free unmarked non-arena
    cells, unmark the rest.  Under the generational policy all survivors
    are promoted, the nursery chain is reset and the remembered sets are
    filtered — the generational invariant is restored wholesale. *)

val open_arena : 'w t -> kind:Ir.arena_kind -> 'w arena
val close_arena : 'w t -> 'w arena -> unit
(** Bulk reclamation: free the arena's whole chain by walking the
    intrusive links — no marking, no heap scan — and count one
    [regions_reclaimed]. *)
