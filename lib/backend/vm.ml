(* A compact register VM over the closure-converted bytecode.

   One instruction array per function, a flat register file per frame,
   flat closure environments, real tail calls (the frame is replaced,
   not stacked).  The heap primitives honor the optimizer's verdicts
   natively: [Alloc] carries its [Ir.alloc] target (nursery, arena, or
   tenured-at-birth), [Reuse] overwrites the scrutinee's cell in place,
   and [Openarena]/[Closearena] delimit bump-allocated regions that are
   reclaimed wholesale.

   Storage policy is the same word-polymorphic {!Runtime.Heap} the
   tree-walking machine uses, with the same collection discipline
   (minor collections stop at old cells, chaos mode forces collections
   at pseudo-random allocation points and poisons freed cells), so the
   VM slots directly into the differential soundness oracle as a third
   leg next to the reference interpreter and the storage simulator.

   Register hygiene: scoped temporaries (if-branches, arena bodies,
   letrec right-hand sides) are cleared with [Kill] when their scope
   exits, so the arena escape check and the poison-marking check see
   the same root precision the machine gets from its environment
   discipline. *)

module Ast = Nml.Ast
module Ir = Runtime.Ir
module H = Runtime.Heap
module Stats = Runtime.Stats

type value =
  | Int of int
  | Bool of bool
  | Nil
  | Leaf
  | Ptr of int
  | Pair of int
  | Tree of int
  | Clos of clos
  | Slotv of slot

and clos = {
  fn : int;
  env : value array;
  pap : value list;  (** collected arguments, in application order *)
  mutable cmark : bool;
  mutable hints : int list;
      (** 1-based parameters the spine-liveness analysis proved dead *)
}

and slot = { sname : string; mutable sv : value option }

type opnd =
  | Reg of int
  | Envv of int
  | Kint of int
  | Kbool of bool
  | Knil
  | Kleaf

type instr =
  | Move of int * opnd
  | Prim of int * Ast.prim * opnd array
  | Alloc of int * Anf.shape * Ir.alloc * opnd array
  | Reuse of int * Anf.reuse * opnd array
  | Clo of int * int * opnd array  (** dst, function id, raw captures *)
  | Call of int * int * opnd * opnd array
      (** dst, function id, the closure, the full argument row *)
  | Tailcall of int * opnd * opnd array
  | Apply of int * opnd * opnd
  | Tailapply of opnd * opnd
  | Jmp of int
  | Jifnot of opnd * int
  | Ret of opnd
  | Mkslot of int * string
  | Setslot of int * opnd * string
  | Openarena of Ir.arena_kind * int
  | Closearena of int * opnd
  | Kill of int  (** clear registers at and above this index *)

type func = {
  fid : int;
  fname : string;
  arity : int;
  nregs : int;
  nenv : int;
  code : instr array;
}

type code = { funcs : func array; entry : func; report : Closure.report }

let report (c : code) = c.report

exception Error of string
exception Out_of_memory
exception Out_of_fuel
exception Internal of string

let error fmt = Format.kasprintf (fun m -> raise (Error m)) fmt
let internal fmt = Format.kasprintf (fun m -> raise (Internal m)) fmt

(* ---- compilation ---------------------------------------------------------- *)

module SMap = Map.Make (String)

type emitter = {
  mutable instrs : instr list;  (* reversed *)
  mutable len : int;
  mutable maxreg : int;
}

let emit e i =
  e.instrs <- i :: e.instrs;
  e.len <- e.len + 1

(* emit a placeholder jump, returning its index for later patching *)
let emit_hole e i =
  let at = e.len in
  emit e i;
  at

let patch e at i =
  e.instrs <-
    List.mapi (fun j x -> if j = e.len - 1 - at then i else x) e.instrs

let note e depth = if depth > e.maxreg then e.maxreg <- depth

let opnd_of_atom map = function
  | Anf.Aconst (Ast.Cint n) -> Kint n
  | Anf.Aconst (Ast.Cbool b) -> Kbool b
  | Anf.Aconst Ast.Cnil -> Knil
  | Anf.Aconst Ast.Cleaf -> Kleaf
  | Anf.Avar x -> (
      match SMap.find_opt x map with
      | Some o -> o
      | None -> internal "compile: unbound variable %s" x)

let compile_prog (p : Closure.prog) : code =
  let compiled = Array.make (Array.length p.Closure.funs) None in
  let rec comp_fun (f : Closure.fundef) =
    let e = { instrs = []; len = 0; maxreg = 0 } in
    let map, nparams =
      List.fold_left
        (fun (m, i) x -> (SMap.add x (Reg i) m, i + 1))
        (SMap.empty, 0) f.Closure.params
    in
    let map =
      List.fold_left
        (fun (m, i) x -> (SMap.add x (Envv i) m, i + 1))
        (map, 0) f.Closure.free
      |> fst
    in
    note e nparams;
    comp_anf e map nparams ~tail:true f.Closure.body |> ignore;
    {
      fid = f.Closure.fid;
      fname = f.Closure.fname;
      arity = nparams;
      nregs = e.maxreg;
      nenv = List.length f.Closure.free;
      code = Array.of_list (List.rev e.instrs);
    }
  (* compile [a]; in tail position every path ends in Ret/Tailcall and
     [None] is returned, otherwise the result operand comes back *)
  and comp_anf e map depth ~tail (a : Closure.kanf) : opnd option =
    match a with
    | Closure.Klet (x, Closure.Katom at, body) ->
        (* alias: no move, no register *)
        comp_anf e (SMap.add x (opnd_of_atom map at) map) depth ~tail body
    | Closure.Klet (x, ce, body) ->
        let r = depth in
        note e (r + 1);
        comp_ce e map ~dst:r ~depth:(r + 1) ce;
        comp_anf e (SMap.add x (Reg r) map) (r + 1) ~tail body
    | Closure.Kletrec (bs, body) ->
        let map, depth =
          List.fold_left
            (fun (m, d) (x, _) ->
              note e (d + 1);
              emit e (Mkslot (d, x));
              (SMap.add x (Reg d) m, d + 1))
            (map, depth) bs
        in
        List.iter
          (fun (x, rhs) ->
            let o =
              match comp_anf e map depth ~tail:false rhs with
              | Some o -> o
              | None -> internal "compile: letrec rhs has no result"
            in
            let slot =
              match SMap.find x map with
              | Reg r -> r
              | _ -> internal "compile: letrec slot is not a register"
            in
            emit e (Setslot (slot, o, x));
            emit e (Kill depth))
          bs;
        comp_anf e map depth ~tail body
    | Closure.Kret ce -> (
        match (tail, ce) with
        | true, Closure.Kcall (fid, f, az) ->
            emit e
              (Tailcall
                 (fid, opnd_of_atom map f, Array.of_list (List.map (opnd_of_atom map) az)));
            None
        | true, Closure.Kapp (f, a) ->
            emit e (Tailapply (opnd_of_atom map f, opnd_of_atom map a));
            None
        | true, Closure.Kif (c, t, f) ->
            let hole = emit_hole e (Jifnot (opnd_of_atom map c, -1)) in
            comp_anf e map depth ~tail:true t |> ignore;
            patch e hole (Jifnot (opnd_of_atom map c, e.len));
            comp_anf e map depth ~tail:true f |> ignore;
            None
        | true, Closure.Kblock b ->
            comp_anf e map depth ~tail:true b |> ignore;
            None
        | true, Closure.Katom at ->
            emit e (Ret (opnd_of_atom map at));
            None
        | true, ce ->
            let r = depth in
            note e (r + 1);
            comp_ce e map ~dst:r ~depth:(r + 1) ce;
            emit e (Ret (Reg r));
            None
        | false, Closure.Katom at -> Some (opnd_of_atom map at)
        | false, ce ->
            let r = depth in
            note e (r + 1);
            comp_ce e map ~dst:r ~depth:(r + 1) ce;
            Some (Reg r))
  (* non-tail compilation of a computation into register [dst];
     temporaries live at [depth] and above and die with the scope *)
  and comp_ce e map ~dst ~depth (ce : Closure.cexpr) : unit =
    let opnds az = Array.of_list (List.map (opnd_of_atom map) az) in
    match ce with
    | Closure.Katom at -> emit e (Move (dst, opnd_of_atom map at))
    | Closure.Kprim (p, az) -> emit e (Prim (dst, p, opnds az))
    | Closure.Kalloc (al, sh, az) -> emit e (Alloc (dst, sh, al, opnds az))
    | Closure.Kreuse (r, az) -> emit e (Reuse (dst, r, opnds az))
    | Closure.Kclos (fid, caps) ->
        (if compiled.(fid) = None then
           match
             Array.to_list p.Closure.funs
             |> List.find_opt (fun f -> f.Closure.fid = fid)
           with
           | Some f ->
               compiled.(fid) <- Some (comp_fun f)
               (* recursion through [comp_fun] terminates: each id is
                  compiled at most once, marked before its body *)
           | None -> internal "compile: unknown function %d" fid);
        emit e (Clo (dst, fid, opnds caps))
    | Closure.Kcall (fid, f, az) ->
        emit e (Call (dst, fid, opnd_of_atom map f, opnds az))
    | Closure.Kapp (f, a) ->
        emit e (Apply (dst, opnd_of_atom map f, opnd_of_atom map a))
    | Closure.Kif (c, t, f) ->
        let hole = emit_hole e (Jifnot (opnd_of_atom map c, -1)) in
        let join o = emit e (Move (dst, o)) in
        (match comp_anf e map depth ~tail:false t with
        | Some o -> join o
        | None -> internal "compile: non-tail branch has no result");
        emit e (Kill depth);
        let jend = emit_hole e (Jmp (-1)) in
        patch e hole (Jifnot (opnd_of_atom map c, e.len));
        (match comp_anf e map depth ~tail:false f with
        | Some o -> join o
        | None -> internal "compile: non-tail branch has no result");
        emit e (Kill depth);
        patch e jend (Jmp e.len)
    | Closure.Karena (k, sid, b) ->
        emit e (Openarena (k, sid));
        (match comp_anf e map depth ~tail:false b with
        | Some o -> emit e (Move (dst, o))
        | None -> internal "compile: arena body has no result");
        emit e (Kill depth);
        emit e (Closearena (sid, Reg dst))
    | Closure.Kblock b ->
        (match comp_anf e map depth ~tail:false b with
        | Some o -> emit e (Move (dst, o))
        | None -> internal "compile: block has no result");
        emit e (Kill depth)
  in
  let entry =
    let e = { instrs = []; len = 0; maxreg = 0 } in
    (match comp_anf e SMap.empty 0 ~tail:false p.Closure.entry with
    | Some o -> emit e (Ret o)
    | None -> internal "compile: entry has no result");
    {
      fid = -1;
      fname = "entry";
      arity = 0;
      nregs = e.maxreg;
      nenv = 0;
      code = Array.of_list (List.rev e.instrs);
    }
  in
  (* compile anything not reached from the entry (dead letrec bindings
     still need bodies: a [Clo] for them may sit on a dead path) *)
  Array.iteri
    (fun i c ->
      if c = None then
        match
          Array.to_list p.Closure.funs |> List.find_opt (fun f -> f.Closure.fid = i)
        with
        | Some f -> compiled.(i) <- Some (comp_fun f)
        | None -> internal "compile: unknown function %d" i)
    compiled;
  let funcs =
    Array.map
      (function Some f -> f | None -> internal "compile: missing function")
      compiled
  in
  { funcs; entry; report = p.Closure.report }

let compile (ir : Ir.expr) : code =
  let a = Anf.lower ir in
  (match Anf.verify a with
  | Ok () -> ()
  | Error m -> internal "ANF verification failed: %s" m);
  compile_prog (Closure.convert a)

(* ---- the machine state ---------------------------------------------------- *)

type chaos = Runtime.Machine.chaos = {
  gc_period : int;
  poison : bool;
  chaos_seed : int;
}

let no_chaos = Runtime.Machine.no_chaos

type frame = {
  func : func;
  mutable pc : int;
  regs : value array;
  env : value array;
  dst : int;  (** caller register receiving the return value *)
}

type t = {
  heap : value H.t;
  grow : bool;
  check_arenas : bool;
  stats : Stats.t;
  chaos : chaos;
  mutable rng : int;
  mutable fuel : int;  (** -1 = unlimited *)
  mutable frames : frame list;  (** head = current *)
  arena_stacks : (int, value H.arena list) Hashtbl.t;
  mutable marked_closures : clos list;
}

let poison_value = Int 0x7EADBEEF

let create ?(heap_size = 4096) ?(grow = true) ?(check_arenas = false) ?fuel
    ?(chaos = no_chaos) ?(config = H.legacy) () =
  let stats = Stats.create () in
  let scrub (c : value H.cell) =
    if chaos.poison then begin
      c.H.car <- poison_value;
      c.H.cdr <- poison_value;
      c.H.lbl <- poison_value;
      stats.Stats.poisoned <- stats.Stats.poisoned + 1
    end
    else begin
      c.H.car <- Nil;
      c.H.cdr <- Nil;
      c.H.lbl <- Nil
    end
  in
  let kind_of = function
    | Int _ | Bool _ | Nil | Leaf -> H.Scalar
    | Ptr a | Pair a | Tree a -> H.Ptr a
    | Clos _ | Slotv _ -> H.Funval
  in
  {
    heap = H.create ~heap_size ~config ~nil:Nil ~scrub ~kind_of ~stats ();
    grow;
    check_arenas;
    stats;
    chaos;
    rng = chaos.chaos_seed lxor 0x2545F4914F6CDD1D;
    fuel = (match fuel with Some f -> f | None -> -1);
    frames = [];
    arena_stacks = Hashtbl.create 8;
    marked_closures = [];
  }

let stats t = t.stats
let live_cells t = H.live t.heap
let config t = H.config t.heap

let tick m =
  m.stats.Stats.steps <- m.stats.Stats.steps + 1;
  if m.fuel = 0 then raise Out_of_fuel;
  if m.fuel > 0 then m.fuel <- m.fuel - 1

let chaos_draw m =
  m.rng <- ((m.rng * 0x5DEECE66D) + 0xB) land 0xFFFFFFFFFFFF;
  m.rng lsr 16

let type_name = function
  | Int _ -> "int"
  | Bool _ -> "bool"
  | Nil | Ptr _ -> "list"
  | Pair _ -> "pair"
  | Leaf | Tree _ -> "tree"
  | Clos _ -> "function"
  | Slotv _ -> "binding"

let cell_read m what a =
  let c = H.get m.heap a in
  if m.chaos.poison && c.H.free then
    error "chaos poison: %s reads cell %d after it was freed (use after free)" what a;
  c

(* ---- garbage collection --------------------------------------------------- *)

let rec mark m ~stop_old v =
  match v with
  | Int _ | Bool _ | Nil | Leaf -> ()
  | Ptr a | Pair a | Tree a ->
      let c = H.get m.heap a in
      if m.chaos.poison && c.H.free then
        error "chaos poison: the collector reached freed cell %d from a live root" a;
      if (not (stop_old && c.H.old)) && not c.H.marked then begin
        c.H.marked <- true;
        m.stats.Stats.marked <- m.stats.Stats.marked + 1;
        mark m ~stop_old c.H.car;
        mark m ~stop_old c.H.cdr;
        mark m ~stop_old c.H.lbl
      end
  | Clos c ->
      if not c.cmark then begin
        c.cmark <- true;
        m.marked_closures <- c :: m.marked_closures;
        Array.iter (mark m ~stop_old) c.env;
        List.iter (mark m ~stop_old) c.pap
      end
  | Slotv s -> ( match s.sv with Some v -> mark m ~stop_old v | None -> ())

let mark_roots m ~stop_old =
  List.iter
    (fun fr ->
      Array.iter (mark m ~stop_old) fr.regs;
      Array.iter (mark m ~stop_old) fr.env)
    m.frames

let unmark_closures m =
  List.iter (fun c -> c.cmark <- false) m.marked_closures;
  m.marked_closures <- []

let now_ns () = Unix.gettimeofday () *. 1e9

let collect m =
  let t0 = now_ns () in
  let marked0 = m.stats.Stats.marked and swept0 = m.stats.Stats.swept in
  m.stats.Stats.gc_runs <- m.stats.Stats.gc_runs + 1;
  if H.is_generational m.heap then
    m.stats.Stats.major_gcs <- m.stats.Stats.major_gcs + 1;
  mark_roots m ~stop_old:false;
  H.sweep_all m.heap;
  unmark_closures m;
  let cells = m.stats.Stats.marked - marked0 + (m.stats.Stats.swept - swept0) in
  Stats.record_pause m.stats ~cells ~ns:(now_ns () -. t0)

let minor_collect m =
  let t0 = now_ns () in
  let marked0 = m.stats.Stats.marked and swept0 = m.stats.Stats.swept in
  let scanned = H.remembered_size m.heap in
  m.stats.Stats.gc_runs <- m.stats.Stats.gc_runs + 1;
  m.stats.Stats.minor_gcs <- m.stats.Stats.minor_gcs + 1;
  mark_roots m ~stop_old:true;
  H.iter_remembered m.heap (fun a ->
      let c = H.get m.heap a in
      if not c.H.free then begin
        mark m ~stop_old:true c.H.car;
        mark m ~stop_old:true c.H.cdr;
        mark m ~stop_old:true c.H.lbl
      end);
  H.sweep_nursery m.heap;
  unmark_closures m;
  let cells =
    m.stats.Stats.marked - marked0 + (m.stats.Stats.swept - swept0) + scanned
  in
  Stats.record_pause m.stats ~cells ~ns:(now_ns () -. t0)

(* ---- allocation ----------------------------------------------------------- *)

let current_arena m = function
  | Ir.Heap | Ir.Pretenured -> None
  | Ir.Arena sid -> (
      match Hashtbl.find_opt m.arena_stacks sid with
      | Some (a :: _) -> Some a
      | Some [] | None -> error "cons targets arena %d, but no such arena is open" sid)

(* identical policy to the machine's allocator: chaos collections at
   pseudo-random points, arena resolution, the nursery threshold,
   free-list reuse, collection on exhaustion, growth or Out_of_memory *)
let alloc_cell m target hd tl =
  let h = m.heap in
  let cfg = H.config h in
  let gen = H.is_generational h in
  if m.chaos.gc_period > 0 && chaos_draw m mod m.chaos.gc_period = 0 then begin
    m.stats.Stats.chaos_gcs <- m.stats.Stats.chaos_gcs + 1;
    if gen && chaos_draw m mod 4 <> 0 then minor_collect m else collect m
  end;
  let arena = if cfg.H.regions then current_arena m target else None in
  let where =
    match target with
    | Ir.Pretenured when gen && cfg.H.pretenure && arena = None -> H.Old
    | _ -> H.Young
  in
  (if gen && arena = None && where = H.Young
   && H.young_count h >= max 1 cfg.H.nursery
   then minor_collect m);
  let addr =
    match H.take_free h with
    | Some a -> a
    | None -> (
        match H.bump h with
        | Some a -> a
        | None ->
            if arena <> None then begin
              H.grow_store h;
              Option.get (H.bump h)
            end
            else begin
              if gen && H.young_count h > 0 then begin
                minor_collect m;
                if H.take_free h = None then collect m
              end
              else collect m;
              match H.take_free h with
              | Some a -> a
              | None ->
                  if m.grow then begin
                    H.grow_store h;
                    Option.get (H.bump h)
                  end
                  else raise Out_of_memory
            end)
  in
  let c = H.get h addr in
  c.H.car <- hd;
  c.H.cdr <- tl;
  H.register h addr (match arena with Some ar -> H.In_arena ar | None -> where);
  (match (arena, where) with
  | Some _, _ | None, H.Old -> H.barrier h addr
  | None, _ -> ());
  addr

(* ---- primitives ----------------------------------------------------------- *)

let as_int = function Int n -> n | v -> error "expected an int, got a %s" (type_name v)
let as_bool = function Bool b -> b | v -> error "expected a bool, got a %s" (type_name v)

let delta m p (args : value array) =
  match (p, args) with
  | Ast.Add, [| a; b |] -> Int (as_int a + as_int b)
  | Ast.Sub, [| a; b |] -> Int (as_int a - as_int b)
  | Ast.Mul, [| a; b |] -> Int (as_int a * as_int b)
  | Ast.Div, [| a; b |] ->
      let d = as_int b in
      if d = 0 then error "division by zero" else Int (as_int a / d)
  | Ast.Mod, [| a; b |] ->
      let d = as_int b in
      if d = 0 then error "modulo by zero" else Int (as_int a mod d)
  | Ast.Eq, [| a; b |] -> Bool (as_int a = as_int b)
  | Ast.Ne, [| a; b |] -> Bool (as_int a <> as_int b)
  | Ast.Lt, [| a; b |] -> Bool (as_int a < as_int b)
  | Ast.Le, [| a; b |] -> Bool (as_int a <= as_int b)
  | Ast.Gt, [| a; b |] -> Bool (as_int a > as_int b)
  | Ast.Ge, [| a; b |] -> Bool (as_int a >= as_int b)
  | Ast.And, [| a; b |] -> Bool (as_bool a && as_bool b)
  | Ast.Or, [| a; b |] -> Bool (as_bool a || as_bool b)
  | Ast.Not, [| a |] -> Bool (not (as_bool a))
  | Ast.Car, [| Ptr a |] -> (cell_read m "car" a).H.car
  | Ast.Car, [| Nil |] -> error "car of nil"
  | Ast.Car, [| v |] -> error "car of a %s" (type_name v)
  | Ast.Cdr, [| Ptr a |] -> (cell_read m "cdr" a).H.cdr
  | Ast.Cdr, [| Nil |] -> error "cdr of nil"
  | Ast.Cdr, [| v |] -> error "cdr of a %s" (type_name v)
  | Ast.Null, [| Nil |] -> Bool true
  | Ast.Null, [| Ptr _ |] -> Bool false
  | Ast.Null, [| v |] -> error "null of a %s" (type_name v)
  | Ast.Fst, [| Pair a |] -> (cell_read m "fst" a).H.car
  | Ast.Fst, [| v |] -> error "fst of a %s" (type_name v)
  | Ast.Snd, [| Pair a |] -> (cell_read m "snd" a).H.cdr
  | Ast.Snd, [| v |] -> error "snd of a %s" (type_name v)
  | Ast.Isleaf, [| Leaf |] -> Bool true
  | Ast.Isleaf, [| Tree _ |] -> Bool false
  | Ast.Isleaf, [| v |] -> error "isleaf of a %s" (type_name v)
  | Ast.Label, [| Tree a |] -> (cell_read m "label" a).H.lbl
  | Ast.Label, [| Leaf |] -> error "label of leaf"
  | Ast.Label, [| v |] -> error "label of a %s" (type_name v)
  | Ast.Left, [| Tree a |] -> (cell_read m "left" a).H.car
  | Ast.Left, [| Leaf |] -> error "left of leaf"
  | Ast.Left, [| v |] -> error "left of a %s" (type_name v)
  | Ast.Right, [| Tree a |] -> (cell_read m "right" a).H.cdr
  | Ast.Right, [| Leaf |] -> error "right of leaf"
  | Ast.Right, [| v |] -> error "right of a %s" (type_name v)
  | (Ast.Cons | Ast.Pair | Ast.Node), _ -> internal "allocating primitive in Prim"
  | _ -> internal "primitive %s applied to %d arguments" (Ast.prim_name p)
           (Array.length args)

let do_reuse m r (args : value array) =
  match (r, args) with
  | Anf.Rcons, [| p; hd; tl |] -> (
      match p with
      | Ptr a ->
          let c = H.get m.heap a in
          if c.H.free then error "DCONS on a freed cell";
          c.H.car <- hd;
          c.H.cdr <- tl;
          H.barrier m.heap a;
          m.stats.Stats.dcons_reuses <- m.stats.Stats.dcons_reuses + 1;
          Ptr a
      | Nil -> error "DCONS on nil (no cell to reuse)"
      | v -> error "DCONS on a %s (no cell to reuse)" (type_name v))
  | Anf.Rnode, [| p; l; x; r |] -> (
      match p with
      | Tree a ->
          let c = H.get m.heap a in
          if c.H.free then error "DNODE on a freed cell";
          c.H.car <- l;
          c.H.lbl <- x;
          c.H.cdr <- r;
          H.barrier m.heap a;
          m.stats.Stats.dcons_reuses <- m.stats.Stats.dcons_reuses + 1;
          Tree a
      | Leaf -> error "DNODE on leaf (no cell to reuse)"
      | v -> error "DNODE on a %s (no cell to reuse)" (type_name v))
  | _ -> internal "malformed reuse"

let do_alloc m sh al (args : value array) =
  match (sh, args) with
  | Anf.Scons, [| hd; tl |] -> Ptr (alloc_cell m al hd tl)
  | Anf.Spair, [| a; b |] -> Pair (alloc_cell m al a b)
  | Anf.Snode, [| l; x; r |] ->
      (match (l, r) with
      | (Leaf | Tree _), (Leaf | Tree _) -> ()
      | _ -> error "node: children must be trees");
      let addr = alloc_cell m al l r in
      (H.get m.heap addr).H.lbl <- x;
      H.barrier m.heap addr;
      Tree addr
  | _ -> internal "malformed allocation"

(* ---- arena safety check --------------------------------------------------- *)

let reachable_into_arena m roots sid =
  let seen = Hashtbl.create 256 in
  let seen_clos = ref [] in
  let hit = ref false in
  let rec walk = function
    | Int _ | Bool _ | Nil | Leaf -> ()
    | Ptr a | Pair a | Tree a ->
        if not (Hashtbl.mem seen a) then begin
          Hashtbl.add seen a ();
          let c = H.get m.heap a in
          if c.H.arena = sid then hit := true;
          walk c.H.car;
          walk c.H.cdr;
          walk c.H.lbl
        end
    | Clos c ->
        if not (List.memq c !seen_clos) then begin
          seen_clos := c :: !seen_clos;
          Array.iter walk c.env;
          List.iter walk c.pap
        end
    | Slotv s -> ( match s.sv with Some v -> walk v | None -> ())
  in
  List.iter walk roots;
  !hit

(* ---- execution ------------------------------------------------------------ *)

let deref = function
  | Slotv s -> (
      match s.sv with
      | Some v -> v
      | None ->
          error "letrec binding %s is used before its definition is evaluated"
            s.sname)
  | v -> v

(* count accepted liveness hints: a call binding a hinted-dead
   parameter to an actual spine is the moment the collector's advisory
   metadata pays off, and the counter makes that observable *)
let note_hints m (c : clos) (args : value array) =
  match c.hints with
  | [] -> ()
  | hints ->
      List.iter
        (fun i ->
          if i >= 1 && i <= Array.length args then
            match args.(i - 1) with
            | Ptr _ | Nil ->
                m.stats.Stats.hints_accepted <- m.stats.Stats.hints_accepted + 1
            | _ -> ())
        hints

let exec m (code : code) : value =
  let funcs = code.funcs in
  let frame_of ~dst (f : func) (env : value array) (args : value array) =
    let regs = Array.make (max f.nregs f.arity) Nil in
    Array.blit args 0 regs 0 (Array.length args);
    { func = f; pc = 0; regs; env; dst }
  in
  let invoke m (c : clos) (args : value array) ~dst ~tail =
    let f =
      if c.fn < 0 || c.fn >= Array.length funcs then
        internal "call of unknown function %d" c.fn
      else funcs.(c.fn)
    in
    if Array.length args <> f.arity then
      internal "function %s/%d called with %d arguments" f.fname f.arity
        (Array.length args);
    note_hints m c args;
    let fr = frame_of ~dst f c.env args in
    if tail then m.frames <- fr :: List.tl m.frames
    else m.frames <- fr :: m.frames
  in
  let result = ref None in
  m.frames <- [ frame_of ~dst:(-1) code.entry [||] [||] ];
  while !result = None do
    match m.frames with
    | [] -> internal "no active frame"
    | fr :: callers -> (
        tick m;
        let load o =
          match o with
          | Reg i -> deref fr.regs.(i)
          | Envv i -> deref fr.env.(i)
          | Kint n -> Int n
          | Kbool b -> Bool b
          | Knil -> Nil
          | Kleaf -> Leaf
        in
        let load_raw o =
          match o with
          | Reg i -> fr.regs.(i)
          | Envv i -> fr.env.(i)
          | Kint n -> Int n
          | Kbool b -> Bool b
          | Knil -> Nil
          | Kleaf -> Leaf
        in
        let loads az = Array.map load az in
        let i = fr.func.code.(fr.pc) in
        fr.pc <- fr.pc + 1;
        match i with
        | Move (d, o) -> fr.regs.(d) <- load o
        | Prim (d, p, az) -> fr.regs.(d) <- delta m p (loads az)
        | Alloc (d, sh, al, az) -> fr.regs.(d) <- do_alloc m sh al (loads az)
        | Reuse (d, r, az) -> fr.regs.(d) <- do_reuse m r (loads az)
        | Clo (d, fid, caps) ->
            fr.regs.(d) <-
              Clos
                { fn = fid; env = Array.map load_raw caps; pap = []; cmark = false;
                  hints = [] }
        | Call (d, fid, fo, az) -> (
            match load fo with
            | Clos c when c.fn = fid && c.pap = [] ->
                invoke m c (loads az) ~dst:d ~tail:false
            | Clos _ -> internal "known call resolved to the wrong function"
            | v -> error "cannot apply a %s as a function" (type_name v))
        | Tailcall (fid, fo, az) -> (
            match load fo with
            | Clos c when c.fn = fid && c.pap = [] ->
                invoke m c (loads az) ~dst:fr.dst ~tail:true
            | Clos _ -> internal "known call resolved to the wrong function"
            | v -> error "cannot apply a %s as a function" (type_name v))
        | Apply (d, fo, ao) -> (
            let a = load ao in
            match load fo with
            | Clos c ->
                let f = funcs.(c.fn) in
                let have = List.length c.pap + 1 in
                if have = f.arity then
                  invoke m c (Array.of_list (c.pap @ [ a ])) ~dst:d ~tail:false
                else
                  fr.regs.(d) <-
                    Clos
                      { fn = c.fn; env = c.env; pap = c.pap @ [ a ];
                        cmark = false; hints = c.hints }
            | v -> error "cannot apply a %s as a function" (type_name v))
        | Tailapply (fo, ao) -> (
            let a = load ao in
            match load fo with
            | Clos c ->
                let f = funcs.(c.fn) in
                let have = List.length c.pap + 1 in
                if have = f.arity then
                  invoke m c (Array.of_list (c.pap @ [ a ])) ~dst:fr.dst ~tail:true
                else begin
                  (* a partial application is a value: return it *)
                  let v =
                    Clos
                      { fn = c.fn; env = c.env; pap = c.pap @ [ a ];
                        cmark = false; hints = c.hints }
                  in
                  m.frames <- callers;
                  match callers with
                  | [] -> result := Some v
                  | caller :: _ -> caller.regs.(fr.dst) <- v
                end
            | v -> error "cannot apply a %s as a function" (type_name v))
        | Jmp t -> fr.pc <- t
        | Jifnot (o, t) -> if not (as_bool (load o)) then fr.pc <- t
        | Ret o -> (
            let v = load o in
            m.frames <- callers;
            match callers with
            | [] -> result := Some v
            | caller :: _ -> caller.regs.(fr.dst) <- v)
        | Mkslot (d, name) -> fr.regs.(d) <- Slotv { sname = name; sv = None }
        | Setslot (d, o, name) -> (
            let v = load o in
            (match fr.regs.(d) with
            | Slotv s -> s.sv <- Some v
            | _ -> internal "Setslot on a non-slot register");
            (* tag letrec-bound closures with the advisory dead-spine
               hints so calls through them are counted *)
            let cfg = H.config m.heap in
            if cfg.H.liveness_hints <> [] then
              match v with
              | Clos c when c.pap = [] ->
                  let arity =
                    if c.fn >= 0 && c.fn < Array.length funcs then
                      funcs.(c.fn).arity
                    else 0
                  in
                  let idxs = ref [] in
                  for i = arity downto 1 do
                    if H.hinted_dead_spine cfg ~fname:name ~arg:i then
                      idxs := i :: !idxs
                  done;
                  if !idxs <> [] then begin
                    c.hints <- !idxs;
                    m.stats.Stats.hint_sites <-
                      m.stats.Stats.hint_sites + List.length !idxs
                  end
              | _ -> ())
        | Openarena (kind, sid) ->
            if (H.config m.heap).H.regions then begin
              let a = H.open_arena m.heap ~kind in
              let stack =
                Option.value ~default:[] (Hashtbl.find_opt m.arena_stacks sid)
              in
              Hashtbl.replace m.arena_stacks sid (a :: stack)
            end
        | Closearena (sid, o) ->
            if (H.config m.heap).H.regions then begin
              let a, stack =
                match Hashtbl.find_opt m.arena_stacks sid with
                | Some (a :: rest) -> (a, rest)
                | Some [] | None -> internal "closing arena %d with none open" sid
              in
              Hashtbl.replace m.arena_stacks sid stack;
              if m.check_arenas then begin
                let roots =
                  load o
                  :: List.concat_map
                       (fun fr ->
                         Array.to_list fr.regs @ Array.to_list fr.env)
                       m.frames
                in
                if reachable_into_arena m roots a.H.dyn_id then
                  error "arena safety violation: a cell of arena %d escapes its scope"
                    sid
              end;
              H.close_arena m.heap a
            end
        | Kill n ->
            for i = n to Array.length fr.regs - 1 do
              fr.regs.(i) <- Nil
            done)
  done;
  match !result with Some v -> v | None -> internal "no result"

let eval m code =
  let before = Stats.snapshot m.stats in
  Fun.protect
    ~finally:(fun () -> Stats.global_add ~before ~after:m.stats)
    (fun () -> exec m code)

let run_ir m ir = eval m (compile ir)

(* ---- reading results ------------------------------------------------------ *)

let read_value m v =
  let budget = ref 1_000_000 in
  let rec go v =
    decr budget;
    if !budget <= 0 then error "read_value: structure too large or cyclic";
    match v with
    | Int n -> Nml.Eval.Vint n
    | Bool b -> Nml.Eval.Vbool b
    | Nil -> Nml.Eval.Vnil
    | Ptr a ->
        let c = H.get m.heap a in
        if c.H.free then error "read_value: dangling pointer to a freed cell";
        Nml.Eval.Vcons (go c.H.car, go c.H.cdr)
    | Pair a ->
        let c = H.get m.heap a in
        if c.H.free then error "read_value: dangling pointer to a freed cell";
        Nml.Eval.Vpair (go c.H.car, go c.H.cdr)
    | Leaf -> Nml.Eval.Vleaf
    | Tree a ->
        let c = H.get m.heap a in
        if c.H.free then error "read_value: dangling pointer to a freed cell";
        Nml.Eval.Vnode (go c.H.car, go c.H.lbl, go c.H.cdr)
    | Clos _ | Slotv _ -> error "read_value: result is a function"
  in
  go v

let cell_values m a =
  let c = H.get m.heap a in
  if c.H.free then error "cell_values: address %d is a freed cell" a;
  (c.H.car, c.H.cdr, c.H.lbl)

(* ---- disassembly ---------------------------------------------------------- *)

let pp_opnd ppf = function
  | Reg i -> Format.fprintf ppf "r%d" i
  | Envv i -> Format.fprintf ppf "e%d" i
  | Kint n -> Format.pp_print_int ppf n
  | Kbool b -> Format.pp_print_bool ppf b
  | Knil -> Format.pp_print_string ppf "nil"
  | Kleaf -> Format.pp_print_string ppf "leaf"

let pp_opnds ppf az =
  Array.iteri
    (fun i o ->
      if i > 0 then Format.pp_print_char ppf ' ';
      pp_opnd ppf o)
    az

let pp_alloc ppf = function
  | Ir.Heap -> ()
  | Ir.Arena i -> Format.fprintf ppf "@@a%d" i
  | Ir.Pretenured -> Format.pp_print_string ppf "@@old"

let pp_instr ppf = function
  | Move (d, o) -> Format.fprintf ppf "r%d <- %a" d pp_opnd o
  | Prim (d, p, az) ->
      Format.fprintf ppf "r%d <- %s %a" d (Ast.prim_name p) pp_opnds az
  | Alloc (d, sh, al, az) ->
      Format.fprintf ppf "r%d <- %s%a %a" d (Anf.shape_name sh) pp_alloc al
        pp_opnds az
  | Reuse (d, r, az) ->
      Format.fprintf ppf "r%d <- %s! %a" d (Anf.reuse_name r) pp_opnds az
  | Clo (d, fid, az) ->
      Format.fprintf ppf "r%d <- closure f%d [%a]" d fid pp_opnds az
  | Call (d, fid, fo, az) ->
      Format.fprintf ppf "r%d <- call f%d %a (%a)" d fid pp_opnd fo pp_opnds az
  | Tailcall (fid, fo, az) ->
      Format.fprintf ppf "tailcall f%d %a (%a)" fid pp_opnd fo pp_opnds az
  | Apply (d, fo, ao) ->
      Format.fprintf ppf "r%d <- apply %a %a" d pp_opnd fo pp_opnd ao
  | Tailapply (fo, ao) ->
      Format.fprintf ppf "tailapply %a %a" pp_opnd fo pp_opnd ao
  | Jmp t -> Format.fprintf ppf "jmp %d" t
  | Jifnot (o, t) -> Format.fprintf ppf "jifnot %a %d" pp_opnd o t
  | Ret o -> Format.fprintf ppf "ret %a" pp_opnd o
  | Mkslot (d, x) -> Format.fprintf ppf "r%d <- slot %s" d x
  | Setslot (d, o, x) -> Format.fprintf ppf "r%d.%s := %a" d x pp_opnd o
  | Openarena (k, sid) ->
      Format.fprintf ppf "open %s a%d"
        (match k with Ir.Region -> "region" | Ir.Block -> "block")
        sid
  | Closearena (sid, o) -> Format.fprintf ppf "close a%d (%a)" sid pp_opnd o
  | Kill n -> Format.fprintf ppf "kill r%d.." n

let pp_func ppf f =
  if f.fid < 0 then Format.fprintf ppf "@[<v 2>entry (regs %d):" f.nregs
  else
    Format.fprintf ppf "@[<v 2>fn f%d %s/%d (env %d, regs %d):" f.fid f.fname
      f.arity f.nenv f.nregs;
  Array.iteri
    (fun i inst -> Format.fprintf ppf "@,%3d: %a" i pp_instr inst)
    f.code;
  Format.fprintf ppf "@]"

let pp_code ppf (c : code) =
  Format.fprintf ppf "@[<v 0>%a" pp_func c.entry;
  Array.iter (fun f -> Format.fprintf ppf "@,%a" pp_func f) c.funcs;
  Format.fprintf ppf "@,%a@]" Closure.pp_report c.report
