examples/partition_sort.ml: Escape Format List Nml Optimize Runtime String
