type pos = { line : int; col : int }
type t = { file : string; start_pos : pos; end_pos : pos }

let no_pos = { line = 0; col = 0 }
let dummy = { file = "<synthetic>"; start_pos = no_pos; end_pos = no_pos }
let make ~file ~start_pos ~end_pos = { file; start_pos; end_pos }
let is_dummy t = t.start_pos.line = 0

let merge a b =
  if is_dummy a then b
  else if is_dummy b then a
  else { file = a.file; start_pos = a.start_pos; end_pos = b.end_pos }

let pp ppf t =
  if is_dummy t then Format.pp_print_string ppf t.file
  else if t.start_pos = t.end_pos then
    Format.fprintf ppf "%s:%d.%d" t.file t.start_pos.line t.start_pos.col
  else
    Format.fprintf ppf "%s:%d.%d-%d.%d" t.file t.start_pos.line t.start_pos.col
      t.end_pos.line t.end_pos.col

let to_string t = Format.asprintf "%a" pp t
