examples/higher_order.mli:
