lib/nml/mono.mli: Infer Surface Ty
