(** A minimal JSON tree, emitter and parser.

    One hand-rolled implementation shared by every machine-readable
    artifact the toolchain produces — the benchmark trajectory
    ([bench --json] / [--validate]), the solver statistics
    ([nmlc analyze --json]) and the diagnostics renderer
    ([nmlc vet --format json]) — so the project carries exactly one JSON
    emitter and no external dependency. *)

type t =
  | Obj of (string * t) list
  | Arr of t list
  | Str of string
  | Num of float
  | Bool of bool

val int : int -> t
(** [Num] of an integer. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on other constructors. *)

val emit : ?indent:int -> Buffer.t -> t -> unit
(** Appends the rendering to a buffer.  Objects print on one line;
    arrays break one element per line at [indent]. *)

val to_string : t -> string
(** The rendering followed by a newline. *)

exception Parse_error of string

val parse : string -> t
(** Strict parser for the subset {!emit} produces (no [null], no unicode
    escapes).  @raise Parse_error on malformed input. *)
