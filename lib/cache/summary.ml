(* Serialization of definition summaries and the cache-aware analysis:
   one stored record per callgraph SCC, holding the member definitions'
   settled global-test summaries ({!Escape.Report.def_summary}).

   Abstract values contain closures and cannot be persisted; what the
   reports actually consume — and therefore what the cache stores — is
   the summary data behind them.  A fully warm program is reported
   without constructing a solver at all (zero entry evaluations); a
   partial hit builds one solver and summarizes only the missing SCCs'
   members, whose solve demand-evaluates just their cones. *)

module J = Nml.Json
module Report = Escape.Report
module Besc = Escape.Besc

exception Decode of string

let besc_to_string = Besc.to_string

let besc_of_string s =
  match Scanf.sscanf_opt s "<%d,%d>" (fun a b -> (a, b)) with
  | Some (0, 0) -> Besc.zero
  | Some (1, k) when k >= 0 -> Besc.one k
  | _ -> raise (Decode ("bad escape value " ^ s))

let arg_to_json (a : Report.arg_summary) =
  J.Obj
    [
      ("arg", J.int a.Report.s_arg);
      ("spines", J.int a.Report.s_spines);
      ("esc", J.Str (besc_to_string a.Report.s_esc));
      ( "components",
        J.Arr
          (List.map
             (fun (path, esc) -> J.Arr [ J.Str path; J.Str (besc_to_string esc) ])
             a.Report.s_components) );
    ]

let def_to_json (s : Report.def_summary) =
  let sharing =
    match s.Report.s_sharing with
    | None -> []
    | Some (top, spines) -> [ ("sharing", J.Arr [ J.int top; J.int spines ]) ]
  in
  J.Obj
    ([
       ("name", J.Str s.Report.s_name);
       ("inst", J.Str s.Report.s_inst);
       ("args", J.Arr (List.map arg_to_json s.Report.s_args));
     ]
    @ sharing)

let get field j =
  match J.member field j with
  | Some v -> v
  | None -> raise (Decode ("missing field " ^ field))

let str = function J.Str s -> s | _ -> raise (Decode "expected a string")
let num = function J.Num f -> int_of_float f | _ -> raise (Decode "expected a number")
let arr = function J.Arr xs -> xs | _ -> raise (Decode "expected an array")

let arg_of_json j =
  {
    Report.s_arg = num (get "arg" j);
    s_spines = num (get "spines" j);
    s_esc = besc_of_string (str (get "esc" j));
    s_components =
      List.map
        (function
          | J.Arr [ p; e ] -> (str p, besc_of_string (str e))
          | _ -> raise (Decode "bad component"))
        (arr (get "components" j));
  }

let def_of_json j =
  {
    Report.s_name = str (get "name" j);
    s_inst = str (get "inst" j);
    s_args = List.map arg_of_json (arr (get "args" j));
    s_sharing =
      (match J.member "sharing" j with
      | None -> None
      | Some (J.Arr [ a; b ]) -> Some (num a, num b)
      | Some _ -> raise (Decode "bad sharing"));
  }

let record_to_json ~key summaries =
  J.Obj
    [
      ("schema", J.Str Skey.schema_version);
      ("key", J.Str key);
      ("defs", J.Arr (List.map def_to_json summaries));
    ]

(* [None] on any shape mismatch: the caller treats it as a miss. *)
let record_of_json ~key ~members j =
  match
    let schema = str (get "schema" j) in
    let stored_key = str (get "key" j) in
    let defs = List.map def_of_json (arr (get "defs" j)) in
    (schema, stored_key, defs)
  with
  | exception _ -> None
  | schema, stored_key, defs ->
      let names = List.sort String.compare (List.map (fun d -> d.Report.s_name) defs) in
      if
        String.equal schema Skey.schema_version
        && String.equal stored_key key
        && names = List.sort String.compare members
      then Some defs
      else None

(* ---- cache-aware analysis -------------------------------------------------- *)

type outcome = {
  summaries : Report.def_summary list;  (* one per definition, program order *)
  evaluations : int;  (* solver entry evaluations actually performed *)
  scc_hits : int;
  scc_misses : int;
}

let analyze ?store prog =
  match store with
  | None ->
      let t = Escape.Fixpoint.make prog in
      let summaries = Report.summarize_program t in
      {
        summaries;
        evaluations = Escape.Fixpoint.evaluations t;
        scc_hits = 0;
        scc_misses = 0;
      }
  | Some store ->
      let keys = Skey.of_program prog in
      let by_name = Hashtbl.create 16 in
      let solver = ref None in
      let the_solver () =
        match !solver with
        | Some t -> t
        | None ->
            let t = Escape.Fixpoint.make prog in
            solver := Some t;
            t
      in
      let hits = ref 0 and misses = ref 0 in
      List.iter
        (fun (key, members) ->
          let decode = record_of_json ~key ~members in
          let cached =
            match Store.load store ~key with
            | None -> None
            | Some j -> (
                match decode j with
                | Some defs -> Some defs
                | None -> (
                    (* the loaded copy (possibly the in-memory tier) is
                       corrupted: self-heal by rebuilding the entry from
                       the on-disk store before falling back to a cold
                       re-solve *)
                    match Store.reload store ~key with
                    | None -> None
                    | Some j -> decode j))
          in
          match cached with
          | Some defs ->
              incr hits;
              List.iter (fun d -> Hashtbl.replace by_name d.Report.s_name d) defs
          | None ->
              incr misses;
              let defs = List.map (Report.summarize (the_solver ())) members in
              List.iter (fun d -> Hashtbl.replace by_name d.Report.s_name d) defs;
              Store.save store ~key (record_to_json ~key defs))
        (Skey.sccs keys);
      {
        summaries =
          List.map
            (fun (name, _) -> Hashtbl.find by_name name)
            prog.Nml.Infer.schemes;
        evaluations =
          (match !solver with None -> 0 | Some t -> Escape.Fixpoint.evaluations t);
        scc_hits = !hits;
        scc_misses = !misses;
      }
