test/test_nml.ml: Alcotest Format Gen List Nml QCheck QCheck_alcotest String
