(* Tests for the escape analysis core: the basic domain, abstract values,
   the abstract semantics of constants, fixpoints, the global/local tests
   against the paper's appendix, sharing analysis, the dynamic exact
   semantics, polymorphic invariance, and the randomized safety property
   (dynamic escapement is below the abstract result). *)

module B = Escape.Besc
module D = Escape.Dvalue
module Sem = Escape.Semantics
module Fix = Escape.Fixpoint
module An = Escape.Analysis
module Sh = Escape.Sharing
module Ex = Escape.Exact
module Ty = Nml.Ty
module A = Nml.Ast
module P = Nml.Parser
module Surface = Nml.Surface
module Eval = Nml.Eval
module Examples = Nml.Examples

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let besc : B.t Alcotest.testable = Alcotest.testable (fun ppf b -> B.pp ppf b) B.equal
let zero = B.zero
let one = B.one

(* ---- basic escape domain ------------------------------------------------ *)

let besc_units =
  [
    Alcotest.test_case "chain-order" `Quick (fun () ->
        checkb "0<=10" true (B.leq zero (one 0));
        checkb "10<=11" true (B.leq (one 0) (one 1));
        checkb "11<=10" false (B.leq (one 1) (one 0));
        checkb "10<=0" false (B.leq (one 0) zero));
    Alcotest.test_case "join-meet" `Quick (fun () ->
        Alcotest.check besc "join" (one 2) (B.join (one 2) (one 1));
        Alcotest.check besc "join-zero" (one 1) (B.join zero (one 1));
        Alcotest.check besc "meet" (one 1) (B.meet (one 2) (one 1));
        Alcotest.check besc "meet-zero" zero (B.meet zero (one 1)));
    Alcotest.test_case "sub" `Quick (fun () ->
        (* car^s strips a spine exactly when the bottom index matches s *)
        Alcotest.check besc "match" (one 0) (B.sub ~s:1 (one 1));
        Alcotest.check besc "deeper" (one 1) (B.sub ~s:2 (one 2));
        Alcotest.check besc "below" (one 1) (B.sub ~s:2 (one 1));
        Alcotest.check besc "indivisible" (one 0) (B.sub ~s:1 (one 0));
        Alcotest.check besc "zero" zero (B.sub ~s:3 zero));
    Alcotest.test_case "sub-invalid" `Quick (fun () ->
        match B.sub ~s:0 (one 1) with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "sub needs s >= 1");
    Alcotest.test_case "all" `Quick (fun () ->
        Alcotest.(check int) "size" 4 (List.length (B.all ~d:2));
        Alcotest.check besc "first" zero (List.hd (B.all ~d:2)));
    Alcotest.test_case "pp" `Quick (fun () ->
        checks "zero" "<0,0>" (B.to_string zero);
        checks "one" "<1,3>" (B.to_string (one 3)));
    Alcotest.test_case "spines" `Quick (fun () ->
        checki "zero" 0 (B.spines zero);
        checki "one" 4 (B.spines (one 4)));
  ]

let all_bescs = B.all ~d:3

let besc_props =
  let arb = QCheck.make ~print:B.to_string (QCheck.Gen.oneofl all_bescs) in
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~name:"join commutative" ~count:200 (QCheck.pair arb arb)
        (fun (a, b) -> B.equal (B.join a b) (B.join b a));
      QCheck.Test.make ~name:"join associative" ~count:200 (QCheck.triple arb arb arb)
        (fun (a, b, c) -> B.equal (B.join a (B.join b c)) (B.join (B.join a b) c));
      QCheck.Test.make ~name:"join idempotent" ~count:50 arb (fun a ->
          B.equal (B.join a a) a);
      QCheck.Test.make ~name:"join is lub" ~count:200 (QCheck.pair arb arb) (fun (a, b) ->
          B.leq a (B.join a b) && B.leq b (B.join a b));
      QCheck.Test.make ~name:"leq total on the chain" ~count:200 (QCheck.pair arb arb)
        (fun (a, b) -> B.leq a b || B.leq b a);
      QCheck.Test.make ~name:"leq antisymmetric" ~count:200 (QCheck.pair arb arb)
        (fun (a, b) -> (not (B.leq a b && B.leq b a)) || B.equal a b);
      QCheck.Test.make ~name:"sub monotone" ~count:200
        (QCheck.triple arb arb (QCheck.int_range 1 4))
        (fun (a, b, s) -> (not (B.leq a b)) || B.leq (B.sub ~s a) (B.sub ~s b));
      QCheck.Test.make ~name:"sub decreasing" ~count:200
        (QCheck.pair arb (QCheck.int_range 1 4))
        (fun (a, s) -> B.leq (B.sub ~s a) a);
      QCheck.Test.make ~name:"compare agrees with leq" ~count:200 (QCheck.pair arb arb)
        (fun (a, b) -> B.compare a b <= 0 = B.leq a b);
    ]

(* ---- abstract values and the semantics of constants --------------------- *)

let ilist = Ty.List Ty.Int
let iilist = Ty.List ilist

let dvalue_units =
  [
    Alcotest.test_case "bottom-top" `Quick (fun () ->
        D.ensure_d 2;
        let bot = D.bottom (Ty.Arrow (ilist, ilist)) in
        let top = D.top ~d:2 (Ty.Arrow (ilist, ilist)) in
        checkb "bot<=top" true (D.leq bot top);
        checkb "top<=bot" false (D.leq top bot);
        checkb "bot=bot" true (D.equal bot (D.bottom (Ty.Arrow (ilist, ilist)))));
    Alcotest.test_case "join-is-lub-on-functions" `Quick (fun () ->
        D.ensure_d 2;
        let f = D.w_value ~esc:B.zero (Ty.Arrow (ilist, ilist)) in
        let g = D.bottom (Ty.Arrow (ilist, ilist)) in
        let j = D.join f g in
        checkb "f<=j" true (D.leq f j);
        checkb "g<=j" true (D.leq g j);
        checkb "j=f" true (D.equal j f) (* join with bottom is identity *));
    Alcotest.test_case "w-accumulates-args" `Quick (fun () ->
        (* W x y = ⟨x' ⊔ y', err⟩ for a two-list-argument function *)
        let ty = Ty.Arrow (ilist, Ty.Arrow (ilist, ilist)) in
        let w = D.w_value ~esc:B.zero ty in
        let r =
          D.apply_all w [ D.base ~ty:ilist (one 1); D.base ~ty:ilist (one 0) ]
        in
        Alcotest.check besc "joined" (one 1) r.D.esc;
        (* the partial application's first component is x' *)
        let partial = D.apply w (D.base ~ty:ilist (one 1)) in
        Alcotest.check besc "partial" (one 1) partial.D.esc);
    Alcotest.test_case "w-of-list-type-is-w-of-element" `Quick (fun () ->
        (* W^{(int->int) list} behaves as W^{int->int} *)
        let w = D.w_value ~esc:B.zero (Ty.List (Ty.Arrow (Ty.Int, Ty.Int))) in
        let r = D.apply w (D.base ~ty:Ty.Int (one 0)) in
        Alcotest.check besc "passes esc" (one 0) r.D.esc);
    Alcotest.test_case "err-raises" `Quick (fun () ->
        let b = D.base ~ty:Ty.Int B.zero in
        match b.D.app b with
        | exception D.Err_applied -> ()
        | _ -> Alcotest.fail "err must not be applicable");
    Alcotest.test_case "probes-cover-chain" `Quick (fun () ->
        D.ensure_d 2;
        checki "base probes" (List.length (B.all ~d:(D.current_d ()))) (List.length (D.probes ilist)));
  ]

let prim ~ty p = Sem.prim_value ~ty p

let semantics_units =
  let cons_ty = Ty.Arrow (Ty.Int, Ty.Arrow (ilist, ilist)) in
  let car1_ty = Ty.Arrow (ilist, Ty.Int) in
  let car2_ty = Ty.Arrow (iilist, ilist) in
  [
    Alcotest.test_case "cons-joins" `Quick (fun () ->
        let c = prim ~ty:cons_ty A.Cons in
        let x = D.base ~ty:Ty.Int (one 0) in
        let y = D.base ~ty:ilist (one 1) in
        Alcotest.check besc "partial carries x" (one 0) (D.apply c x).D.esc;
        Alcotest.check besc "full join" (one 1) (D.apply_all c [ x; y ]).D.esc);
    Alcotest.test_case "car1" `Quick (fun () ->
        let c = prim ~ty:car1_ty A.Car in
        Alcotest.check besc "strips" (one 0) (D.apply c (D.base ~ty:ilist (one 1))).D.esc;
        Alcotest.check besc "keeps-below" (one 0)
          (D.apply c (D.base ~ty:ilist (one 0))).D.esc;
        Alcotest.check besc "zero" zero (D.apply c (D.base ~ty:ilist zero)).D.esc);
    Alcotest.test_case "car2" `Quick (fun () ->
        let c = prim ~ty:car2_ty A.Car in
        Alcotest.check besc "strips-at-2" (one 1)
          (D.apply c (D.base ~ty:iilist (one 2))).D.esc;
        (* s > n: the n-th bottom spine is not in the top spine *)
        Alcotest.check besc "keeps-at-1" (one 1)
          (D.apply c (D.base ~ty:iilist (one 1))).D.esc);
    Alcotest.test_case "cdr-is-identity" `Quick (fun () ->
        let c = prim ~ty:(Ty.Arrow (ilist, ilist)) A.Cdr in
        Alcotest.check besc "same" (one 1) (D.apply c (D.base ~ty:ilist (one 1))).D.esc);
    Alcotest.test_case "null-discards" `Quick (fun () ->
        let c = prim ~ty:(Ty.Arrow (ilist, Ty.Bool)) A.Null in
        Alcotest.check besc "zero" zero (D.apply c (D.base ~ty:ilist (one 1))).D.esc);
    Alcotest.test_case "plus-discards-but-partial-carries" `Quick (fun () ->
        let c = prim ~ty:(Ty.Arrow (Ty.Int, Ty.Arrow (Ty.Int, Ty.Int))) A.Add in
        let x = D.base ~ty:Ty.Int (one 0) in
        Alcotest.check besc "partial" (one 0) (D.apply c x).D.esc;
        Alcotest.check besc "full" zero (D.apply_all c [ x; x ]).D.esc);
    Alcotest.test_case "nil-is-bottom" `Quick (fun () ->
        let v = Sem.const_value ~ty:iilist A.Cnil in
        Alcotest.check besc "esc" zero v.D.esc);
    Alcotest.test_case "int-const" `Quick (fun () ->
        Alcotest.check besc "esc" zero (Sem.const_value ~ty:Ty.Int (A.Cint 7)).D.esc);
  ]

(* ---- fixpoints and the appendix results --------------------------------- *)

let solver_of src = Fix.of_source src

let g_escs t name = List.map (fun v -> v.An.esc) (An.global_all t name)

let check_g name src fname expected =
  Alcotest.test_case name `Quick (fun () ->
      let t = solver_of src in
      Alcotest.(check (list besc)) name expected (g_escs t fname))

let wrapped defs = Examples.wrap defs "0"

let analysis_units =
  [
    (* the paper's appendix (A.1) *)
    check_g "G(append)" (wrapped [ Examples.append_def ]) "append" [ one 0; one 1 ];
    check_g "G(split)"
      (wrapped [ Examples.split_def ])
      "split"
      [ zero; one 0; one 1; one 1 ];
    check_g "G(ps)" Examples.partition_sort_program "ps" [ one 0 ];
    (* introduction's example (properties 1 and 2) *)
    check_g "G(pair)" (wrapped [ Examples.pair_def ]) "pair" [ one 0 ];
    check_g "G(map)" (wrapped [ Examples.map_def ]) "map" [ zero; one 0 ];
    (* naive reverse (A.3.2) *)
    check_g "G(rev)" Examples.rev_program "rev" [ one 0 ];
    (* a catalogue of classics, each reasoned by hand *)
    check_g "G(length)" (wrapped [ Examples.length_def ]) "length" [ zero ];
    check_g "G(sum)" (wrapped [ Examples.sum_def ]) "sum" [ zero ];
    check_g "G(member)" (wrapped [ Examples.member_def ]) "member" [ zero; zero ];
    check_g "G(take)" (wrapped [ Examples.take_def ]) "take" [ zero; one 0 ];
    check_g "G(drop)" (wrapped [ Examples.drop_def ]) "drop" [ zero; one 1 ];
    check_g "G(nth)" (wrapped [ Examples.nth_def ]) "nth" [ zero; one 0 ];
    check_g "G(last)" (wrapped [ Examples.last_def ]) "last" [ one 0 ];
    check_g "G(filter)" (wrapped [ Examples.filter_def ]) "filter" [ zero; one 0 ];
    check_g "G(insert)" (wrapped [ Examples.insert_def ]) "insert" [ one 0; one 1 ];
    check_g "G(isort)"
      (wrapped [ Examples.insert_def; Examples.isort_def ])
      "isort" [ one 0 ];
    check_g "G(concat)"
      (wrapped [ Examples.append_def; Examples.concat_def ])
      "concat" [ one 0 ];
    check_g "G(create_list)" (wrapped [ Examples.create_list_def ]) "create_list" [ one 0 ];
    check_g "G(id)" (wrapped [ Examples.id_def ]) "id" [ one 0 ];
    check_g "G(konst)" (wrapped [ Examples.const_def ]) "konst" [ one 0; zero ];
    check_g "G(compose)" (wrapped [ Examples.compose_def ]) "compose" [ zero; zero; one 0 ];
    check_g "G(foldr)" (wrapped [ Examples.foldr_def ]) "foldr" [ zero; one 0; one 0 ];
    (* applying an unknown function: worst case says the (simplest-instance,
       hence non-list) argument escapes *)
    check_g "G(apply)" "letrec apply f x = f x in 0" "apply" [ zero; one 0 ];
    (* a function returning its (non-list) argument inside a fresh cell *)
    check_g "G(box)" "letrec box x = cons x nil in 0" "box" [ one 0 ];
    (* self-append: both parameters are the same list *)
    check_g "G(double)" "letrec double x = append x x; append x y = if null x then y else cons (car x) (append (cdr x) y) in 0"
      "double" [ one 1 ];
    (* tail of the argument escapes: cdr is abstractly the identity *)
    check_g "G(tail)" "letrec tail x = cdr x in 0" "tail" [ one 1 ];
  ]

let fixpoint_units =
  [
    Alcotest.test_case "appendix-iteration-count" `Quick (fun () ->
        (* append converges on its 2nd Kleene iterate (appendix A.1) *)
        let t = solver_of (wrapped [ Examples.append_def ]) in
        ignore (Fix.value t "append" None);
        checkb "few passes" true (Fix.passes t <= 4);
        checkb "not capped" true (not (Fix.capped t)));
    Alcotest.test_case "d-of-ps-program" `Quick (fun () ->
        let t = solver_of Examples.partition_sort_program in
        ignore (Fix.value t "ps" None);
        checki "d" 2 (Fix.d t));
    Alcotest.test_case "instances-are-shared" `Quick (fun () ->
        let t = solver_of (wrapped [ Examples.append_def ]) in
        ignore (Fix.value t "append" None);
        ignore (Fix.value t "append" None);
        checki "one instance" 1 (List.length (Fix.instances t)));
    Alcotest.test_case "deeper-instance-demanded" `Quick (fun () ->
        let t = solver_of (wrapped [ Examples.append_def ]) in
        let inst =
          Ty.Arrow (iilist, Ty.Arrow (iilist, iilist))
        in
        let v = Fix.value t "append" (Some inst) in
        checkb "value" true (B.equal v.D.esc B.zero);
        checki "d grew" 2 (Fix.d t));
    Alcotest.test_case "main-value" `Quick (fun () ->
        let t = solver_of Examples.partition_sort_program in
        let v = Fix.main_value t in
        Alcotest.check besc "nothing interesting in main" zero v.D.esc);
    Alcotest.test_case "unknown-def" `Quick (fun () ->
        let t = solver_of (wrapped [ Examples.append_def ]) in
        match Fix.value t "nosuch" None with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "mutual-recursion" `Quick (fun () ->
        let src =
          "letrec evens l = if null l then nil else cons (car l) (odds (cdr l)); \
           odds l = if null l then nil else evens (cdr l) in 0"
        in
        let t = solver_of src in
        Alcotest.(check (list besc)) "evens" [ one 0 ] (g_escs t "evens");
        Alcotest.(check (list besc)) "odds" [ one 0 ] (g_escs t "odds"));
    Alcotest.test_case "capture-arity-choice" `Quick (fun () ->
        (* capture x = lambda(y). car x + y  has full arity 2.  Viewed as a
           one-argument call (n = 1), the returned closure captures x, so x
           escapes; viewed saturated (n = 2), the final int contains
           nothing. *)
        let t = solver_of "letrec capture x = lambda(y). car x + y in 0" in
        let v1 = An.global t "capture" ~arg:1 ~arity:1 in
        Alcotest.check besc "closure escape" (one 1) v1.An.esc;
        let v2 = An.global t "capture" ~arg:1 ~arity:2 in
        Alcotest.check besc "saturated" zero v2.An.esc);
    Alcotest.test_case "nested-letrec" `Quick (fun () ->
        let src =
          "letrec outer x = (letrec inner y = if null y then nil else cons (car y) (inner (cdr y)) in inner x) in 0"
        in
        let t = solver_of src in
        Alcotest.(check (list besc)) "outer" [ one 0 ] (g_escs t "outer"));
  ]

(* ---- local test ---------------------------------------------------------- *)

let local_units =
  [
    Alcotest.test_case "map-pair-local" `Quick (fun () ->
        (* introduction, property 3: top two spines of the second argument
           of (map pair [[1,2],[3,4],[5,6]]) do not escape *)
        let t = solver_of Examples.map_pair_program in
        let v =
          An.local t "map" [ P.parse "pair"; P.parse "[[1,2],[3,4],[5,6]]" ] ~arg:2
        in
        Alcotest.check besc "L" (one 0) v.An.esc;
        checki "spines" 2 v.An.spines;
        checki "keep" 2 (An.non_escaping_top_spines v));
    Alcotest.test_case "local-at-most-global" `Quick (fun () ->
        (* map with the identity lets elements escape globally; locally with
           a discarding function nothing escapes *)
        let src = wrapped [ Examples.map_def ] in
        let t = solver_of src in
        let g = An.global t "map" ~arg:2 in
        let l = An.local t "map" [ P.parse "lambda(n). 0"; P.parse "[1,2]" ] ~arg:2 in
        checkb "L <= G" true (B.leq l.An.esc g.An.esc);
        Alcotest.check besc "L is zero" zero l.An.esc);
    Alcotest.test_case "local-id-function" `Quick (fun () ->
        (* map id: elements escape, spine still copied *)
        let t = solver_of (wrapped [ Examples.map_def ]) in
        let l = An.local t "map" [ P.parse "lambda(n). n"; P.parse "[1,2]" ] ~arg:2 in
        Alcotest.check besc "elements" (one 0) l.An.esc);
    Alcotest.test_case "local-append-of-defs" `Quick (fun () ->
        let t = solver_of (wrapped [ Examples.append_def ]) in
        let l = An.local t "append" [ P.parse "[1,2]"; P.parse "[3]" ] ~arg:2 in
        Alcotest.check besc "whole second arg" (one 1) l.An.esc);
    Alcotest.test_case "local-call-node" `Quick (fun () ->
        let t = solver_of Examples.map_pair_program in
        let prog = Fix.program t in
        let main = Nml.Infer.main_ground prog in
        let v = An.local_call t main ~arg:2 in
        Alcotest.check besc "same as local" (one 0) v.An.esc);
    Alcotest.test_case "bad-positions" `Quick (fun () ->
        let t = solver_of (wrapped [ Examples.append_def ]) in
        (match An.global t "append" ~arg:0 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "arg 0");
        match An.global t "append" ~arg:3 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "arg 3");
  ]

(* ---- polymorphic invariance (Theorem 1) ---------------------------------- *)

let arrow2 a b c = Ty.Arrow (a, Ty.Arrow (b, c))

let invariance_units =
  (* Theorem 1: either both instances yield <0,0>, or both yield <1,k> with
     the same number of non-escaping top spines s_i - k. *)
  let invariant_pair v v' =
    match (An.escapes v, An.escapes v') with
    | false, false -> true
    | true, true -> An.non_escaping_top_spines v = An.non_escaping_top_spines v'
    | _ -> false
  in
  let check_invariant name src fname ~arg insts =
    Alcotest.test_case name `Quick (fun () ->
        let t = solver_of src in
        let vs = List.map (fun inst -> An.global ~inst t fname ~arg) insts in
        match vs with
        | [] -> ()
        | v :: rest ->
            List.iter (fun v' -> checkb "Theorem 1" true (invariant_pair v v')) rest)
  in
  let blist = Ty.List Ty.Bool in
  [
    check_invariant "append-invariant" (wrapped [ Examples.append_def ]) "append" ~arg:1
      [
        arrow2 ilist ilist ilist;
        arrow2 iilist iilist iilist;
        arrow2 (Ty.List iilist) (Ty.List iilist) (Ty.List iilist);
        arrow2 blist blist blist;
      ];
    check_invariant "append-invariant-arg2" (wrapped [ Examples.append_def ]) "append"
      ~arg:2
      [ arrow2 ilist ilist ilist; arrow2 (Ty.List iilist) (Ty.List iilist) (Ty.List iilist) ];
    check_invariant "rev-invariant" Examples.rev_program "rev" ~arg:1
      [ Ty.Arrow (ilist, ilist); Ty.Arrow (iilist, iilist) ];
    check_invariant "length-invariant" (wrapped [ Examples.length_def ]) "length" ~arg:1
      [ Ty.Arrow (ilist, Ty.Int); Ty.Arrow (iilist, Ty.Int) ];
    check_invariant "id-invariant" (wrapped [ Examples.id_def ]) "id" ~arg:1
      [ Ty.Arrow (Ty.Int, Ty.Int); Ty.Arrow (ilist, ilist); Ty.Arrow (iilist, iilist) ];
    Alcotest.test_case "map-deeper-instance" `Quick (fun () ->
        let t = solver_of (wrapped [ Examples.map_def ]) in
        let inst = arrow2 (Ty.Arrow (ilist, ilist)) iilist iilist in
        let v = An.global ~inst t "map" ~arg:2 in
        Alcotest.check besc "bottom spine may escape through f" (one 1) v.An.esc;
        checki "top spine kept" 1 (An.non_escaping_top_spines v));
  ]

(* ---- sharing (Theorem 2) -------------------------------------------------- *)

let sharing_units =
  [
    Alcotest.test_case "ps-result-unshared" `Quick (fun () ->
        let t = solver_of Examples.partition_sort_program in
        let i = Sh.result_unshared t "ps" in
        checki "d_f" 1 i.Sh.result_spines;
        checki "unshared" 1 i.Sh.unshared_top);
    Alcotest.test_case "split-result-unshared" `Quick (fun () ->
        let t = solver_of Examples.partition_sort_program in
        let i = Sh.result_unshared t "split" in
        checki "d_f" 2 i.Sh.result_spines;
        checki "unshared top spine only" 1 i.Sh.unshared_top);
    Alcotest.test_case "append-result-shares" `Quick (fun () ->
        (* append returns all of y: worst case nothing is unshared *)
        let t = solver_of (wrapped [ Examples.append_def ]) in
        let i = Sh.result_unshared t "append" in
        checki "unshared" 0 i.Sh.unshared_top);
    Alcotest.test_case "append-with-unshared-args" `Quick (fun () ->
        (* clause 1: if y's top spine is known unshared, the result's top
           spine is unshared *)
        let t = solver_of (wrapped [ Examples.append_def ]) in
        let i = Sh.result_unshared_given t "append" ~args_unshared:[ 1; 1 ] in
        checki "unshared" 1 i.Sh.unshared_top);
    Alcotest.test_case "reuse-budget" `Quick (fun () ->
        (* append can reuse min(u_1, d_1 - esc_1) = 1 spine of x *)
        let t = solver_of (wrapped [ Examples.append_def ]) in
        checki "x reusable" 1
          (Sh.argument_unshared_after t "append" ~arg:1 ~args_unshared:[ 1; 1 ]);
        checki "y not reusable" 0
          (Sh.argument_unshared_after t "append" ~arg:2 ~args_unshared:[ 1; 1 ]));
    Alcotest.test_case "bad-args" `Quick (fun () ->
        let t = solver_of (wrapped [ Examples.append_def ]) in
        match Sh.result_unshared_given t "append" ~args_unshared:[ 1 ] with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
  ]

(* ---- dynamic exact semantics --------------------------------------------- *)

let observe src fname args arg =
  Ex.observe_call (Surface.of_string src) ~fname ~args:(List.map P.parse args) ~arg

let exact_units =
  [
    Alcotest.test_case "append-arg1-copied" `Quick (fun () ->
        let ob = observe (wrapped [ Examples.append_def ]) "append" [ "[1,2,3]"; "[4]" ] 1 in
        Alcotest.check besc "dyn" zero ob.Ex.esc;
        checki "total" 3 ob.Ex.total_cells;
        checki "escaped" 0 ob.Ex.escaped_cells);
    Alcotest.test_case "append-arg2-escapes" `Quick (fun () ->
        let ob = observe (wrapped [ Examples.append_def ]) "append" [ "[1]"; "[2,3]" ] 2 in
        Alcotest.check besc "dyn" (one 1) ob.Ex.esc;
        checki "escaped" 2 ob.Ex.escaped_cells);
    Alcotest.test_case "id-whole-escape" `Quick (fun () ->
        let ob = observe (wrapped [ Examples.id_def ]) "id" [ "[[1],[2]]" ] 1 in
        Alcotest.check besc "dyn" (one 2) ob.Ex.esc);
    Alcotest.test_case "ps-nothing" `Quick (fun () ->
        let ob = observe Examples.partition_sort_program "ps" [ "[5,2,7,1,3]" ] 1 in
        Alcotest.check besc "dyn" zero ob.Ex.esc);
    Alcotest.test_case "drop-partial" `Quick (fun () ->
        (* drop 2 keeps a suffix: cells of the argument escape *)
        let ob = observe (wrapped [ Examples.drop_def ]) "drop" [ "2"; "[1,2,3,4]" ] 2 in
        Alcotest.check besc "dyn" (one 1) ob.Ex.esc;
        checki "two suffix cells" 2 ob.Ex.escaped_cells);
    Alcotest.test_case "concat-inner-spines" `Quick (fun () ->
        (* concat copies the outer spine; the *last* inner list is returned
           by append as-is only when it is the second argument of the final
           append — with our definition everything is rebuilt except via
           append's y, i.e. the final nil: no cells escape *)
        let ob =
          observe
            (wrapped [ Examples.append_def; Examples.concat_def ])
            "concat" [ "[[1],[2,3]]" ] 1
        in
        checkb "below abstract" true (B.leq ob.Ex.esc (one 0)));
    Alcotest.test_case "closure-capture-escape" `Quick (fun () ->
        (* the argument escapes inside the returned closure's environment *)
        let ob =
          observe "letrec capture x = lambda(y). car x + y in 0" "capture" [ "[1,2]" ] 1
        in
        Alcotest.check besc "dyn" (one 1) ob.Ex.esc);
    Alcotest.test_case "untrackable-int" `Quick (fun () ->
        let ob = observe (wrapped [ Examples.id_def ]) "id" [ "42" ] 1 in
        checkb "not trackable" false ob.Ex.trackable;
        Alcotest.check besc "dyn" zero ob.Ex.esc);
    Alcotest.test_case "nonlist-closure-escapes" `Quick (fun () ->
        let ob =
          observe "letrec pick f g = f in 0" "pick"
            [ "lambda(n). n + 1"; "lambda(n). n" ] 1
        in
        Alcotest.check besc "dyn" (one 0) ob.Ex.esc);
  ]

(* ---- products (the paper's "tuples" extension) ---------------------------- *)

let product_units =
  let iprod = Ty.Prod (Ty.Int, Ty.Int) in
  [
    check_g "G(zip)" (wrapped [ Examples.zip_def ]) "zip" [ one 0; one 0 ];
    check_g "G(fsts)" (wrapped [ Examples.unzip_fsts_def ]) "fsts" [ one 0 ];
    check_g "G(snds)" (wrapped [ Examples.unzip_snds_def ]) "snds" [ one 0 ];
    check_g "G(swap)" (wrapped [ Examples.swap_def ]) "swap" [ one 0 ];
    check_g "G(assoc)" (wrapped [ Examples.assoc_def ]) "assoc" [ one 0; zero; one 0 ];
    (* components consumed by arithmetic never escape *)
    check_g "G(addfst)" "letrec addfst p = fst p + snd p in 0" "addfst" [ zero ];
    (* a pair is built from both arguments: both escape *)
    check_g "G(mk)" "letrec mk x y = mkpair x y in 0" "mk" [ one 0; one 0 ];
    Alcotest.test_case "component-resolution" `Quick (fun () ->
        (* snds lets .snd escape but never .fst *)
        let t = solver_of (wrapped [ Examples.unzip_snds_def ]) in
        let vs = An.global_components t "snds" ~arg:1 in
        (match List.assoc [ D.Cfst ] vs with
        | v -> Alcotest.check besc ".fst stays" zero v.An.esc);
        match List.assoc [ D.Csnd ] vs with
        | v -> Alcotest.check besc ".snd escapes" (one 0) v.An.esc);
    Alcotest.test_case "component-with-list" `Quick (fun () ->
        (* at (int * int list) list, the whole .snd component list escapes *)
        let t = solver_of (wrapped [ Examples.unzip_snds_def ]) in
        let inst = Ty.Arrow (Ty.List (Ty.Prod (Ty.Int, ilist)), Ty.List ilist) in
        let vs = An.global_components ~inst t "snds" ~arg:1 in
        let v = List.assoc [ D.Csnd ] vs in
        Alcotest.check besc "whole component" (one 1) v.An.esc;
        checki "component spines" 1 v.An.spines);
    Alcotest.test_case "component-paths" `Quick (fun () ->
        checki "flat" 1 (List.length (An.component_paths Ty.Int));
        checki "pair" 2 (List.length (An.component_paths iprod));
        checki "nested" 3 (List.length (An.component_paths (Ty.Prod (Ty.Int, iprod))));
        checki "through-list" 2 (List.length (An.component_paths (Ty.List iprod))));
    Alcotest.test_case "whole-verdict-joins-components" `Quick (fun () ->
        let t = solver_of (wrapped [ Examples.unzip_snds_def ]) in
        let whole = An.global t "snds" ~arg:1 in
        let vs = An.global_components t "snds" ~arg:1 in
        checkb "whole is upper bound" true
          (List.for_all (fun (_, v) -> B.leq v.An.esc whole.An.esc) vs));
    Alcotest.test_case "local-with-pairs" `Quick (fun () ->
        (* in this call the pairs are fresh and only .snd escapes *)
        let src = wrapped [ Examples.unzip_snds_def ] in
        let t = solver_of src in
        let l = An.local t "snds" [ P.parse "[mkpair 1 [2], mkpair 3 [4]]" ] ~arg:1 in
        checkb "sound vs global" true
          (B.leq l.An.esc (An.global ~inst:l.An.inst t "snds" ~arg:1).An.esc));
    Alcotest.test_case "dynamic-pairs-escape" `Quick (fun () ->
        (* the snd component lists escape; the pairs and spine do not *)
        let src = wrapped [ Examples.unzip_snds_def ] in
        let ob = observe src "snds" [ "[mkpair 1 [2], mkpair 3 [4]]" ] 1 in
        Alcotest.check besc "element-level escape" (one 0) ob.Ex.esc;
        checki "two lists escape" 2 ob.Ex.escaped_cells);
    Alcotest.test_case "dynamic-swap" `Quick (fun () ->
        let src = wrapped [ Examples.swap_def ] in
        let ob = observe src "swap" [ "mkpair [1] [2]" ] 1 in
        Alcotest.check besc "components escape" (one 0) ob.Ex.esc);
    Alcotest.test_case "dynamic-zip-copies" `Quick (fun () ->
        let src = wrapped [ Examples.zip_def ] in
        let ob = observe src "zip" [ "[1, 2, 3]"; "[4, 5, 6]" ] 1 in
        Alcotest.check besc "spine copied" zero ob.Ex.esc);
  ]

(* ---- trees (the paper's "trees" extension) ----------------------------------- *)

let tree_units =
  [
    check_g "G(tmap)" (wrapped [ Examples.tmap_def ]) "tmap" [ zero; one 0 ];
    check_g "G(tinsert)" (wrapped [ Examples.tinsert_def ]) "tinsert" [ one 0; one 1 ];
    check_g "G(tsum)" (wrapped [ Examples.tsum_def ]) "tsum" [ zero ];
    check_g "G(mirror)" (wrapped [ Examples.mirror_def ]) "mirror" [ one 0 ];
    check_g "G(flatten)"
      (wrapped [ Examples.append_def; Examples.flatten_def ])
      "flatten" [ one 0 ];
    (* returning a subtree: the whole tree may escape (left is abstractly
       the identity, like cdr) *)
    check_g "G(lchild)" "letrec lchild t = left t in 0" "lchild" [ one 1 ];
    Alcotest.test_case "tree-invariance" `Quick (fun () ->
        (* Theorem 1 holds for tree instances too *)
        let t = solver_of (wrapped [ Examples.mirror_def ]) in
        let v1 = An.global t "mirror" ~arg:1 in
        let inst = Ty.Arrow (Ty.Tree ilist, Ty.Tree ilist) in
        let v2 = An.global ~inst t "mirror" ~arg:1 in
        checkb "both escape" true (An.escapes v1 && An.escapes v2);
        checki "s - k invariant" (An.non_escaping_top_spines v1)
          (An.non_escaping_top_spines v2));
    Alcotest.test_case "dynamic-tinsert-shares" `Quick (fun () ->
        (* inserting into a deep right spine shares the left subtree *)
        let src = wrapped [ Examples.tinsert_def ] in
        let ob =
          observe src "tinsert" [ "9"; "tinsert 1 (tinsert 5 (tinsert 3 leaf))" ] 2
        in
        checkb "some node escapes" true (ob.Ex.escaped_cells > 0);
        Alcotest.check besc "tree-level escape" (one 1) ob.Ex.esc);
    Alcotest.test_case "dynamic-mirror-copies" `Quick (fun () ->
        let src = wrapped [ Examples.mirror_def; Examples.tinsert_def ] in
        let ob = observe src "mirror" [ "tinsert 1 (tinsert 2 leaf)" ] 1 in
        ignore ob.Ex.total_cells;
        Alcotest.check besc "nothing escapes" zero ob.Ex.esc);
    Alcotest.test_case "dynamic-flatten" `Quick (fun () ->
        let src = wrapped [ Examples.append_def; Examples.flatten_def; Examples.tinsert_def ] in
        let ob = observe src "flatten" [ "tinsert 1 (tinsert 2 leaf)" ] 1 in
        Alcotest.check besc "labels only" zero ob.Ex.esc);
    Alcotest.test_case "tree-sharing-theorem" `Quick (fun () ->
        (* mirror rebuilds all nodes: its result is fully unshared *)
        let t = solver_of (wrapped [ Examples.mirror_def ]) in
        let i = Sh.result_unshared t "mirror" in
        checki "unshared" 1 i.Sh.unshared_top);
  ]

(* ---- the enumeration engine (ablation) ------------------------------------- *)

let enumerate_units =
  [
    Alcotest.test_case "appendix-agreement" `Quick (fun () ->
        let e = Escape.Enumerate.of_source Examples.partition_sort_program in
        let t = solver_of Examples.partition_sort_program in
        List.iter
          (fun (name, n) ->
            for i = 1 to n do
              let probe = (An.global t name ~arg:i).An.esc in
              Alcotest.check besc
                (Printf.sprintf "%s arg %d" name i)
                probe
                (Escape.Enumerate.global e name ~arg:i)
            done)
          [ ("append", 2); ("split", 4); ("ps", 1) ]);
    Alcotest.test_case "entry-count" `Quick (fun () ->
        (* d=2: chain has 4 points; append 4^2 + split 4^4 + ps 4^1 *)
        let e = Escape.Enumerate.of_source Examples.partition_sort_program in
        checki "entries" (16 + 256 + 4) (Escape.Enumerate.entries e);
        checki "d" 2 (Escape.Enumerate.d e));
    Alcotest.test_case "higher-order-rejected" `Quick (fun () ->
        match Escape.Enumerate.of_source (wrapped [ Examples.map_def ]) with
        | exception Escape.Enumerate.Higher_order _ -> ()
        | _ -> Alcotest.fail "map must be rejected");
    Alcotest.test_case "pairs-rejected" `Quick (fun () ->
        match Escape.Enumerate.of_source (wrapped [ Examples.swap_def ]) with
        | exception Escape.Enumerate.Higher_order _ -> ()
        | _ -> Alcotest.fail "pairs must be rejected");
    Alcotest.test_case "let-supported" `Quick (fun () ->
        let e = Escape.Enumerate.of_source (wrapped [ Examples.split_def; Examples.append_def; Examples.ps_def ]) in
        Alcotest.check besc "ps" (one 0) (Escape.Enumerate.global e "ps" ~arg:1));
    Alcotest.test_case "random-first-order-agreement" `Quick (fun () ->
        let rand = Random.State.make [| 7 |] in
        for _ = 1 to 40 do
          let def = QCheck.Gen.generate1 ~rand Gen.gen_def in
          let src = Examples.wrap [ def ] "0" in
          let e = Escape.Enumerate.of_source src in
          let t = solver_of src in
          Alcotest.check besc def (An.global t "f" ~arg:1).An.esc
            (Escape.Enumerate.global e "f" ~arg:1)
        done);
  ]

(* ---- reports ------------------------------------------------------------------ *)

let report_units =
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    ln = 0 || go 0
  in
  [
    Alcotest.test_case "program-report" `Quick (fun () ->
        let t = solver_of Examples.partition_sort_program in
        let s = Format.asprintf "%a" Escape.Report.program t in
        checkb "append verdict" true (contains s "G(append, 1) = <1,0>");
        checkb "split verdict" true (contains s "G(split, 3) = <1,1>");
        checkb "sharing line" true (contains s "unshared in any call"));
    Alcotest.test_case "kleene-trace" `Quick (fun () ->
        let prog = Nml.Infer.infer_program (Surface.of_string Examples.partition_sort_program) in
        let s = Format.asprintf "%a" (Escape.Report.kleene_trace ?max_iters:None) prog in
        checkb "starts at bottom" true (contains s "iterate 0   append: <0,0> <0,0>");
        checkb "reaches fixpoint" true (contains s "append: <1,0> <1,1>");
        checkb "stabilizes" true (contains s "stable after 2 iterate(s)"));
    Alcotest.test_case "spines-figure" `Quick (fun () ->
        let v = Eval.run (Surface.of_string "[[1,2],[3,4]]") in
        let s = Format.asprintf "%a" Escape.Report.spines_figure v in
        checkb "outer" true (contains s "top=1 bottom=2");
        checkb "inner" true (contains s "top=2 bottom=1"));
    Alcotest.test_case "call-report" `Quick (fun () ->
        let t = solver_of Examples.map_pair_program in
        let s =
          Format.asprintf "%a"
            (fun ppf () ->
              Escape.Report.call ppf t "map"
                [ P.parse "pair"; P.parse "[[1,2]]" ])
            ()
        in
        checkb "local verdicts" true (contains s "L(map, 2)"));
    Alcotest.test_case "component-report" `Quick (fun () ->
        let t = solver_of (wrapped [ Examples.unzip_snds_def ]) in
        let s =
          Format.asprintf "%a" (fun ppf () -> Escape.Report.definition ppf t "snds") ()
        in
        checkb "fst stays" true (contains s "component .fst = <0,0>");
        checkb "snd goes" true (contains s "component .snd = <1,0>"));
  ]

(* ---- randomized safety: dynamic ⊑ local ⊑ global ------------------------- *)

let arb_safety =
  QCheck.make
    ~print:(fun (def, input) ->
      Printf.sprintf "%s  on [%s]" def (String.concat "," (List.map string_of_int input)))
    QCheck.Gen.(pair Gen.gen_def Gen.gen_input)

let safety_props =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~name:"dynamic <= local <= global" ~count:300 arb_safety
        (fun (def, input) ->
          let src = Examples.wrap [ def ] "0" in
          let prog = Surface.of_string src in
          let input_src = Gen.input_src input in
          let t = Fix.of_source src in
          let g = An.global t "f" ~arg:1 in
          let l = An.local t "f" [ P.parse input_src ] ~arg:1 in
          let ob =
            Ex.observe_call ~fuel:200000 prog ~fname:"f" ~args:[ P.parse input_src ]
              ~arg:1
          in
          B.leq ob.Ex.esc l.An.esc && B.leq l.An.esc g.An.esc);
      QCheck.Test.make ~name:"polymorphic invariance on random defs" ~count:50
        (QCheck.make Gen.gen_def) (fun def ->
          (* Theorem 1 on the int list vs int list list instances; the
             random definitions are monomorphic in the element type only
             when they use arithmetic on car l, in which case the deeper
             instance is ill-typed and is skipped *)
          let src = Examples.wrap [ def ] "0" in
          let t = Fix.of_source src in
          let v1 = An.global t "f" ~arg:1 in
          let inst2 = Ty.Arrow (Ty.List (Ty.List Ty.Int), Ty.List (Ty.List Ty.Int)) in
          match An.global ~inst:inst2 t "f" ~arg:1 with
          | exception Nml.Infer.Error _ -> true
          | v2 -> (
              match (An.escapes v1, An.escapes v2) with
              | false, false -> true
              | true, true ->
                  An.non_escaping_top_spines v1 = An.non_escaping_top_spines v2
              | _ -> false));
    ]

let tree_safety_props =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~name:"tree programs: dynamic <= local <= global" ~count:200
        (QCheck.make
           ~print:(fun (def, input) ->
             Printf.sprintf "%s  on %s" def (Gen.tree_input_src input))
           QCheck.Gen.(pair Gen.gen_tree_def Gen.gen_input))
        (fun (def, input) ->
          let src = Examples.wrap [ def ] "0" in
          let prog = Surface.of_string src in
          let input_src = Gen.tree_input_src input in
          let t = Fix.of_source src in
          let g = An.global t "f" ~arg:1 in
          let l = An.local t "f" [ P.parse input_src ] ~arg:1 in
          let ob =
            Ex.observe_call ~fuel:200000 prog ~fname:"f" ~args:[ P.parse input_src ]
              ~arg:1
          in
          B.leq ob.Ex.esc l.An.esc && B.leq l.An.esc g.An.esc);
    ]

let pair_safety_props =
  List.map QCheck_alcotest.to_alcotest
    [
      QCheck.Test.make ~name:"pair programs: dynamic <= local <= global" ~count:200
        (QCheck.make
           ~print:(fun (def, input) ->
             Printf.sprintf "%s  on %s" def (Gen.pair_input_src input))
           QCheck.Gen.(pair Gen.gen_pair_def Gen.gen_pair_input))
        (fun (def, input) ->
          let src = Examples.wrap [ def ] "0" in
          let prog = Surface.of_string src in
          let input_src = Gen.pair_input_src input in
          let t = Fix.of_source src in
          let g = An.global t "f" ~arg:1 in
          let l = An.local t "f" [ P.parse input_src ] ~arg:1 in
          let ob =
            Ex.observe_call ~fuel:200000 prog ~fname:"f" ~args:[ P.parse input_src ]
              ~arg:1
          in
          B.leq ob.Ex.esc l.An.esc && B.leq l.An.esc g.An.esc);
      QCheck.Test.make ~name:"pair programs: component verdicts below whole" ~count:80
        (QCheck.make ~print:(fun s -> s) Gen.gen_pair_def)
        (fun def ->
          let src = Examples.wrap [ def ] "0" in
          let t = Fix.of_source src in
          let whole = An.global t "f" ~arg:1 in
          List.for_all
            (fun (_, (v : An.verdict)) -> B.leq v.An.esc whole.An.esc)
            (An.global_components t "f" ~arg:1));
    ]

let () =
  Alcotest.run "escape"
    [
      ("besc", besc_units);
      ("besc-laws", besc_props);
      ("dvalue", dvalue_units);
      ("semantics-constants", semantics_units);
      ("global-test", analysis_units);
      ("fixpoint", fixpoint_units);
      ("local-test", local_units);
      ("polymorphic-invariance", invariance_units);
      ("sharing", sharing_units);
      ("exact-dynamic", exact_units);
      ("products", product_units);
      ("trees", tree_units);
      ("enumeration", enumerate_units);
      ("reports", report_units);
      ("safety", safety_props);
      ("pair-safety", pair_safety_props);
      ("tree-safety", tree_safety_props);
    ]
