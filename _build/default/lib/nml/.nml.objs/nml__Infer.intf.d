lib/nml/infer.mli: Ast Format Loc Surface Tast Ty
